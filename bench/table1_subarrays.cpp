/**
 * @file
 * Table I: number of subarrays used to implement HDC (10 classes x
 * 8192 dims) for subarray sizes 16..256, cam-based vs cam-density.
 *
 * Paper values:
 *   cam-based   512 / 256 / 128 / 64 / 32
 *   cam-density 512 /  86 /  22 /  6 /  2
 */

#include <cstdio>

#include "BenchUtils.h"
#include "passes/CamMapping.h"

using namespace c4cam;
using namespace c4cam::bench;

int
main(int argc, char **argv)
{
    JsonOut jout;
    for (int i = 1; i < argc; ++i) {
        if (jout.tryParseArg(argc, argv, i))
            continue;
        std::fprintf(stderr,
                     "usage: bench_table1_subarrays [--json-out FILE]\n");
        return 2;
    }
    const std::int64_t classes = 10;
    const std::int64_t dims = 8192;
    const int sizes[] = {16, 32, 64, 128, 256};
    const std::int64_t paper_based[] = {512, 256, 128, 64, 32};
    const std::int64_t paper_density[] = {512, 86, 22, 6, 2};

    std::printf("Table I: number of subarrays used to implement HDC\n");
    std::printf("(%lld classes x %lld dims)\n\n",
                static_cast<long long>(classes),
                static_cast<long long>(dims));
    std::printf("%-14s", "config");
    for (int n : sizes)
        std::printf(" %7dx%-3d", n, n);
    std::printf("\n");
    rule();

    bool all_match = true;
    auto print_row = [&](const char *name, arch::OptTarget target,
                         const std::int64_t *expected) {
        std::printf("%-14s", name);
        for (int i = 0; i < 5; ++i) {
            arch::ArchSpec spec = arch::ArchSpec::dseSetup(sizes[i],
                                                           target);
            auto plan = passes::MappingPlan::compute(spec, 10000,
                                                     classes, dims);
            std::printf(" %11lld",
                        static_cast<long long>(plan.physicalSubarrays));
            if (plan.physicalSubarrays != expected[i])
                all_match = false;
        }
        std::printf("\n");
        std::printf("%-14s", "  (paper)");
        for (int i = 0; i < 5; ++i)
            std::printf(" %11lld", static_cast<long long>(expected[i]));
        std::printf("\n");
    };

    print_row("cam-based", arch::OptTarget::Base, paper_based);
    print_row("cam-density", arch::OptTarget::Density, paper_density);

    std::printf("\n%s\n", all_match
                              ? "all entries match the paper exactly"
                              : "MISMATCH against the paper values");

    jout.set("bench", std::string("table1_subarrays"));
    jout.set("all_match_paper", all_match ? 1.0 : 0.0);
    if (!jout.write())
        return 1;
    return all_match ? 0 : 1;
}
