/**
 * @file
 * §IV-B GPU comparison: end-to-end HDC/MNIST on the CAM system vs the
 * (modeled) NVIDIA Quadro RTX 6000.
 *
 * Paper: 48x execution-time improvement (within 5% of the manual
 * design's ratio) and 46.8x energy improvement -- nearly the same
 * because CAM arrays contribute minimally to the CIM *system* energy,
 * which is dominated by the host (so system power is GPU-like while
 * time shrinks 48x).
 */

#include <cstdio>

#include "BenchUtils.h"
#include "apps/Datasets.h"
#include "apps/GpuModel.h"
#include "apps/ManualBaseline.h"

using namespace c4cam;
using namespace c4cam::bench;

int
main(int argc, char **argv)
{
    JsonOut jout;
    for (int i = 1; i < argc; ++i) {
        if (jout.tryParseArg(argc, argv, i))
            continue;
        std::fprintf(stderr,
                     "usage: bench_gpu_comparison [--json-out FILE]\n");
        return 2;
    }
    const int kRunQueries = 6;
    const double kScaledQueries = 10000.0; // MNIST test set
    const int kDims = 8192;
    const int kClasses = 10;

    std::printf("GPU comparison (paper §IV-B): HDC/MNIST, %d dims, "
                "%.0f queries, int32 GPU kernels\n\n",
                kDims, kScaledQueries);

    apps::Dataset dataset = apps::makeMnistLike(10, kRunQueries);
    apps::HdcWorkload workload =
        apps::encodeHdc(dataset, kDims, 1, kRunQueries);

    // CAM system: the validation configuration (32x32).
    arch::ArchSpec spec = arch::ArchSpec::validationSetup(32, 1);
    Measurement cam =
        runHdcOnCam(spec, workload, kRunQueries, kScaledQueries);
    apps::ManualRunResult manual =
        apps::runManualHdc(workload, spec, kRunQueries);
    double manual_latency_ns = manual.perf.queryLatencyNs *
                               (kScaledQueries / kRunQueries);

    // GPU model.
    apps::GpuModel gpu;
    apps::GpuEstimate est = gpu.similarityKernel(
        static_cast<std::int64_t>(kScaledQueries), kClasses, kDims);

    double cam_latency_ns = cam.perf.queryLatencyNs * cam.scale;
    // System-level CIM energy: host power accompanies the CAM arrays.
    double cam_system_energy_pj =
        cam.perf.queryEnergyPj * cam.scale +
        apps::GpuModel::cimSystemPowerW() * cam_latency_ns * 1e3;

    double speedup = est.latencyNs / cam_latency_ns;
    double manual_speedup = est.latencyNs / manual_latency_ns;
    double energy_gain = est.energyPj / cam_system_energy_pj;

    std::printf("%-34s %14s %14s\n", "", "GPU (modeled)", "CAM system");
    rule(64);
    std::printf("%-34s %14.3f %14.3f\n", "end-to-end time (ms)",
                est.latencyNs * 1e-6, cam_latency_ns * 1e-6);
    std::printf("%-34s %14.3f %14.3f\n", "energy (mJ)",
                est.energyPj * 1e-9, cam_system_energy_pj * 1e-9);
    std::printf("%-34s %14.1f %14.3f\n", "avg power (W)", est.avgPowerW,
                cam_system_energy_pj / cam_latency_ns * 1e-3);
    std::printf("\n");
    std::printf("execution-time improvement: %.1fx (paper: 48x)\n",
                speedup);
    std::printf("  via manual design:        %.1fx (paper: within 5%% "
                "of C4CAM)\n",
                manual_speedup);
    std::printf("  C4CAM vs manual delta:    %.1f%%\n",
                100.0 * std::abs(speedup - manual_speedup) /
                    manual_speedup);
    std::printf("energy improvement:         %.1fx (paper: 46.8x)\n",
                energy_gain);
    std::printf("CAM-array share of system energy: %.2f%% "
                "(paper: \"CAMs contribute minimally\")\n",
                100.0 * cam.perf.queryEnergyPj * cam.scale /
                    cam_system_energy_pj);

    jout.set("bench", std::string("gpu_comparison"));
    jout.set("gpu_latency_ms", est.latencyNs * 1e-6);
    jout.set("cam_latency_ms", cam_latency_ns * 1e-6);
    jout.set("execution_time_improvement", speedup);
    jout.set("energy_improvement", energy_gain);
    return jout.write() ? 0 : 1;
}
