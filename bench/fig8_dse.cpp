/**
 * @file
 * Figure 8 (a, b, c): design-space exploration over subarray sizes
 * 16..256 with fixed 4/4/8 hierarchy for the four built-in targets
 * (cam-base, cam-density, cam-power, cam-density+power), HDC on
 * MNIST with 8k dimensions.
 *
 * Paper shapes:
 *  - energy (uJ, log scale): density saves energy at small sizes
 *    (~0.6x base for 16..64) but exceeds base at 128/256 (1.4x/5.1x);
 *  - latency (ms): power costs ~2x (32) to 4.86x (256) over base;
 *    density costs up to ~23x at 256; power+density up to ~121x;
 *  - power (mW): cam-power 0.57x base at 16 down to 0.20x at 256;
 *    power+density 23.4% down to 4.2% of base.
 */

#include <cstdio>

#include "BenchUtils.h"
#include "apps/Datasets.h"

using namespace c4cam;
using namespace c4cam::bench;

int
main(int argc, char **argv)
{
    JsonOut jout;
    for (int i = 1; i < argc; ++i) {
        if (jout.tryParseArg(argc, argv, i))
            continue;
        std::fprintf(stderr, "usage: bench_fig8_dse [--json-out FILE]\n");
        return 2;
    }
    const int kRunQueries = 6;
    const double kScaledQueries = 10000.0; // full MNIST test set
    const int kDims = 8192;
    const int sizes[] = {16, 32, 64, 128, 256};
    const arch::OptTarget targets[] = {
        arch::OptTarget::Base, arch::OptTarget::Density,
        arch::OptTarget::Power, arch::OptTarget::PowerDensity};
    const char *names[] = {"cam-base", "cam-density", "cam-power",
                           "cam-density+power"};

    std::printf("Figure 8: impact of subarray size and C4CAM "
                "optimizations (HDC/MNIST, %d dims, %.0f queries)\n\n",
                kDims, kScaledQueries);

    apps::Dataset dataset = apps::makeMnistLike(10, kRunQueries);
    apps::HdcWorkload workload =
        apps::encodeHdc(dataset, kDims, 1, kRunQueries);

    Measurement m[4][5];
    for (int t = 0; t < 4; ++t)
        for (int s = 0; s < 5; ++s)
            m[t][s] = runHdcOnCam(
                arch::ArchSpec::dseSetup(sizes[s], targets[t]), workload,
                kRunQueries, kScaledQueries);

    auto table = [&](const char *title, auto metric) {
        std::printf("%s\n", title);
        std::printf("%-20s", "subarray size");
        for (int n : sizes)
            std::printf(" %8dx%-3d", n, n);
        std::printf("\n");
        rule();
        for (int t = 0; t < 4; ++t) {
            std::printf("%-20s", names[t]);
            for (int s = 0; s < 5; ++s)
                std::printf(" %12.4g", metric(m[t][s]));
            std::printf("\n");
        }
        std::printf("\n");
    };

    table("Fig 8a: energy (uJ)",
          [](const Measurement &x) { return x.energyUj(); });
    table("Fig 8b: latency (ms)",
          [](const Measurement &x) { return x.latencyMs(); });
    table("Fig 8c: power (mW)",
          [](const Measurement &x) { return x.powerMw(); });

    std::printf("key ratios vs cam-base (paper expectations in "
                "brackets):\n");
    std::printf("  power@16   cam-power: %.2fx [0.57x]\n",
                m[2][0].powerMw() / m[0][0].powerMw());
    std::printf("  power@256  cam-power: %.2fx [0.20x]\n",
                m[2][4].powerMw() / m[0][4].powerMw());
    std::printf("  latency@32 cam-power: %.2fx [~2x]\n",
                m[2][1].latencyMs() / m[0][1].latencyMs());
    std::printf("  latency@256 cam-power: %.2fx [4.86x]\n",
                m[2][4].latencyMs() / m[0][4].latencyMs());
    std::printf("  latency@256 cam-density: %.2fx [~23x]\n",
                m[1][4].latencyMs() / m[0][4].latencyMs());
    std::printf("  latency@256 power+density: %.2fx [~121x]\n",
                m[3][4].latencyMs() / m[0][4].latencyMs());
    std::printf("  power@16   power+density: %.1f%% of base [23.4%%]\n",
                100.0 * m[3][0].powerMw() / m[0][0].powerMw());
    std::printf("  power@256  power+density: %.1f%% of base [4.2%%]\n",
                100.0 * m[3][4].powerMw() / m[0][4].powerMw());
    std::printf("  energy@16..64 cam-density: %.2fx / %.2fx / %.2fx of "
                "base [~0.6x]\n",
                m[1][0].energyUj() / m[0][0].energyUj(),
                m[1][1].energyUj() / m[0][1].energyUj(),
                m[1][2].energyUj() / m[0][2].energyUj());
    std::printf("  energy@128,256 cam-density: %.2fx, %.2fx of base "
                "[1.4x, 5.1x]\n",
                m[1][3].energyUj() / m[0][3].energyUj(),
                m[1][4].energyUj() / m[0][4].energyUj());

    jout.set("bench", std::string("fig8_dse"));
    const char *keys[] = {"base", "density", "power", "power_density"};
    for (int t = 0; t < 4; ++t)
        for (int s = 0; s < 5; ++s) {
            std::string tag = std::string(keys[t]) + "_" +
                              std::to_string(sizes[s]);
            jout.set("energy_uj_" + tag, m[t][s].energyUj());
            jout.set("latency_ms_" + tag, m[t][s].latencyMs());
            jout.set("power_mw_" + tag, m[t][s].powerMw());
        }
    return jout.write() ? 0 : 1;
}
