/**
 * @file
 * Figure 7 (a, b): validation of C4CAM-generated code against the
 * hand-crafted manual design of [22].
 *
 * Paper setup: HDC/MNIST with 8k dimensions, 32xC subarrays with
 * C in {16, 32, 64, 128}, 4 mats/bank, 4 arrays/mat, 8 subarrays/array,
 * binary (1b, TCAM) and multi-bit (2b, MCAM) implementations.
 *
 * Paper results: latency 6-14 ns rising with C; per-query energy
 * 200-500 pJ falling with C; binary below multi-bit in energy; geomean
 * deviation C4CAM vs manual 0.9% (latency) and 5.5% (energy).
 */

#include <cmath>
#include <cstdio>

#include "BenchUtils.h"
#include "apps/Datasets.h"
#include "apps/ManualBaseline.h"

using namespace c4cam;
using namespace c4cam::bench;

namespace {

struct Row
{
    int cols;
    int bits;
    double compiledLatency;
    double manualLatency;
    double compiledEnergy;
    double manualEnergy;
    double senseShare; ///< sense-amp fraction of query energy
    double cellShare;  ///< cell/ML fraction
};

} // namespace

int
main(int argc, char **argv)
{
    JsonOut jout;
    for (int i = 1; i < argc; ++i) {
        if (jout.tryParseArg(argc, argv, i))
            continue;
        std::fprintf(stderr,
                     "usage: bench_fig7_validation [--json-out FILE]\n");
        return 2;
    }
    const int kQueries = 6;
    const int kDims = 8192;

    std::printf("Figure 7: C4CAM validation against manual designs "
                "[Kazemi et al.]\n");
    std::printf("(HDC, %d dims, 32xC subarrays, per-query metrics)\n\n",
                kDims);

    apps::Dataset dataset = apps::makeMnistLike(10, kQueries);

    std::vector<Row> rows;
    for (int bits : {1, 2}) {
        apps::HdcWorkload workload =
            apps::encodeHdc(dataset, kDims, bits, kQueries);
        for (int cols : {16, 32, 64, 128}) {
            arch::ArchSpec spec = arch::ArchSpec::validationSetup(cols,
                                                                  bits);
            Measurement compiled =
                runHdcOnCam(spec, workload, kQueries, kQueries);
            apps::ManualRunResult manual =
                apps::runManualHdc(workload, spec, kQueries);
            Row row;
            row.cols = cols;
            row.bits = bits;
            row.compiledLatency =
                compiled.latencyNsPerQuery(kQueries);
            row.manualLatency =
                manual.perf.queryLatencyNs / kQueries;
            row.compiledEnergy = compiled.energyPjPerQuery(kQueries);
            row.manualEnergy = manual.perf.queryEnergyPj / kQueries;
            row.senseShare = compiled.perf.senseEnergyPj /
                             compiled.perf.queryEnergyPj;
            row.cellShare = compiled.perf.cellEnergyPj /
                            compiled.perf.queryEnergyPj;
            rows.push_back(row);
        }
    }

    std::printf("Fig 7a: latency per query (ns)\n");
    std::printf("%8s %14s %14s %14s %14s\n", "# cols", "C4CAM-1b",
                "Manual-1b", "C4CAM-2b", "Manual-2b");
    rule();
    for (std::size_t i = 0; i < 4; ++i) {
        const Row &b1 = rows[i];
        const Row &b2 = rows[i + 4];
        std::printf("%8d %14.2f %14.2f %14.2f %14.2f\n", b1.cols,
                    b1.compiledLatency, b1.manualLatency,
                    b2.compiledLatency, b2.manualLatency);
    }

    std::printf("\nFig 7b: energy per query (pJ)\n");
    std::printf("%8s %14s %14s %14s %14s\n", "# cols", "C4CAM-1b",
                "Manual-1b", "C4CAM-2b", "Manual-2b");
    rule();
    for (std::size_t i = 0; i < 4; ++i) {
        const Row &b1 = rows[i];
        const Row &b2 = rows[i + 4];
        std::printf("%8d %14.2f %14.2f %14.2f %14.2f\n", b1.cols,
                    b1.compiledEnergy, b1.manualEnergy,
                    b2.compiledEnergy, b2.manualEnergy);
    }

    std::printf("\nenergy breakdown (1b, C4CAM): the paper attributes "
                "the falling trend to fewer peripherals at larger C\n");
    std::printf("%8s %14s %14s\n", "# cols", "sense share",
                "cell share");
    rule(40);
    for (std::size_t i = 0; i < 4; ++i)
        std::printf("%8d %13.1f%% %13.1f%%\n", rows[i].cols,
                    100.0 * rows[i].senseShare,
                    100.0 * rows[i].cellShare);

    double lat_dev = 1.0;
    double energy_dev = 1.0;
    for (const Row &row : rows) {
        lat_dev *= 1.0 + std::abs(row.compiledLatency -
                                  row.manualLatency) /
                             row.manualLatency;
        energy_dev *= 1.0 + std::abs(row.compiledEnergy -
                                     row.manualEnergy) /
                                row.manualEnergy;
    }
    lat_dev = std::pow(lat_dev, 1.0 / rows.size()) - 1.0;
    energy_dev = std::pow(energy_dev, 1.0 / rows.size()) - 1.0;

    std::printf("\ngeomean deviation C4CAM vs manual: latency %.2f%% "
                "(paper: 0.9%%), energy %.2f%% (paper: 5.5%%)\n",
                lat_dev * 100.0, energy_dev * 100.0);
    std::printf("expected shape: latency rises with C; energy falls "
                "with C; 1b below 2b.\n");

    jout.set("bench", std::string("fig7_validation"));
    jout.set("geomean_latency_deviation", lat_dev);
    jout.set("geomean_energy_deviation", energy_dev);
    for (const Row &row : rows) {
        std::string tag = std::to_string(row.bits) + "b_" +
                          std::to_string(row.cols);
        jout.set("latency_ns_compiled_" + tag, row.compiledLatency);
        jout.set("latency_ns_manual_" + tag, row.manualLatency);
        jout.set("energy_pj_compiled_" + tag, row.compiledEnergy);
        jout.set("energy_pj_manual_" + tag, row.manualEnergy);
    }
    return jout.write() ? 0 : 1;
}
