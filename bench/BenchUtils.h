#ifndef C4CAM_BENCH_BENCHUTILS_H
#define C4CAM_BENCH_BENCHUTILS_H

/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 *
 * Simulated latency/energy are deterministic functions of the workload
 * and architecture, so each bench executes a reduced query batch and
 * scales the latency/energy to the paper's full query count (power and
 * all ratios are unaffected by the scaling). Wall-clock measurement is
 * only meaningful for the compiler itself (see compiler_throughput).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apps/Hdc.h"
#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "sim/Timing.h"
#include "support/Json.h"

namespace c4cam::bench {

/**
 * Machine-readable bench results: every bench_* binary accepts
 * `--json-out FILE` and writes its headline metrics as one flat JSON
 * object, so CI can archive the perf trajectory (BENCH_*.json
 * artifacts) instead of scraping stdout tables.
 *
 * Emission goes through support::Json (JsonValue::dump), never
 * hand-rolled string concatenation: dump() escapes quotes, backslashes
 * and control characters, so a kernel name or file path containing any
 * of them still produces valid BENCH_*.json.
 *
 *   bench::JsonOut jout;
 *   // inside the arg loop:
 *   if (jout.tryParseArg(argc, argv, i)) continue;
 *   ...
 *   jout.set("wall_qps", qps);
 *   jout.setReport("session", total);
 *   return jout.write() ? 0 : 1;
 */
class JsonOut
{
  public:
    /**
     * Consume `--json-out FILE` at position @p i of argv (mutating
     * @p i past the value). @return true when the flag was consumed.
     */
    bool
    tryParseArg(int argc, char **argv, int &i)
    {
        if (std::strcmp(argv[i], "--json-out") != 0)
            return false;
        if (i + 1 >= argc) {
            std::fprintf(stderr, "--json-out requires a file path\n");
            std::exit(2);
        }
        path_ = argv[++i];
        return true;
    }

    bool enabled() const { return !path_.empty(); }

    void
    set(const std::string &key, double value)
    {
        obj_.set(key, JsonValue(value));
    }

    void
    set(const std::string &key, const std::string &value)
    {
        obj_.set(key, JsonValue(value));
    }

    /** Nest a full PerfReport under @p key. */
    void
    setReport(const std::string &key, const sim::PerfReport &perf)
    {
        obj_.set(key, perf.toJson());
    }

    /**
     * Write the collected object to the `--json-out` path. No-op
     * (returning true) when the flag was not given; prints a
     * diagnostic and returns false when the file cannot be written.
     */
    bool
    write() const
    {
        if (!enabled())
            return true;
        std::ofstream out(path_);
        if (!out.good()) {
            std::fprintf(stderr, "cannot write --json-out file '%s'\n",
                         path_.c_str());
            return false;
        }
        out << obj_.dump(2) << "\n";
        return out.good();
    }

  private:
    std::string path_;
    JsonValue obj_ = JsonValue::makeObject();
};

/** One measured configuration, scaled to @p scaled_queries. */
struct Measurement
{
    sim::PerfReport perf;        ///< raw (reduced-batch) report
    double scale = 1.0;          ///< query-count scale factor

    double latencyMs() const
    {
        return perf.queryLatencyNs * scale * 1e-6;
    }
    double latencyNsPerQuery(std::int64_t queries) const
    {
        return perf.queryLatencyNs / double(queries);
    }
    double energyUj() const { return perf.queryEnergyPj * scale * 1e-6; }
    double energyPjPerQuery(std::int64_t queries) const
    {
        return perf.queryEnergyPj / double(queries);
    }
    double powerMw() const { return perf.avgPowerMw(); }
    double edpNJs() const
    {
        return (perf.queryEnergyPj * scale * 1e-3) *
               (perf.queryLatencyNs * scale * 1e-9);
    }
};

/** Compile the HDC dot kernel for @p spec and run @p workload. */
inline Measurement
runHdcOnCam(const arch::ArchSpec &spec, const apps::HdcWorkload &workload,
            std::size_t run_queries, double scaled_queries)
{
    std::vector<std::vector<float>> queries(
        workload.queryHvs.begin(),
        workload.queryHvs.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(run_queries, workload.queryHvs.size())));

    core::CompilerOptions options;
    options.spec = spec;
    core::Compiler compiler(options);
    const std::string source =
        workload.bits == 1
            ? apps::dotSimilaritySource(
                  static_cast<std::int64_t>(queries.size()),
                  workload.numClasses, workload.dimensions, 1)
            : apps::knnEuclideanSource(
                  static_cast<std::int64_t>(queries.size()),
                  workload.numClasses, workload.dimensions, 1);
    core::CompiledKernel kernel = compiler.compileTorchScript(source);
    core::ExecutionResult result =
        kernel.run({rt::Buffer::fromMatrix(queries),
                    rt::Buffer::fromMatrix(workload.classHvs)});

    Measurement m;
    m.perf = result.perf;
    m.scale = scaled_queries / double(queries.size());
    return m;
}

/** printf a separator line of the given width. */
inline void
rule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace c4cam::bench

#endif // C4CAM_BENCH_BENCHUTILS_H
