#ifndef C4CAM_BENCH_BENCHUTILS_H
#define C4CAM_BENCH_BENCHUTILS_H

/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 *
 * Simulated latency/energy are deterministic functions of the workload
 * and architecture, so each bench executes a reduced query batch and
 * scales the latency/energy to the paper's full query count (power and
 * all ratios are unaffected by the scaling). Wall-clock measurement is
 * only meaningful for the compiler itself (see compiler_throughput).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "apps/Hdc.h"
#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "sim/Timing.h"

namespace c4cam::bench {

/** One measured configuration, scaled to @p scaled_queries. */
struct Measurement
{
    sim::PerfReport perf;        ///< raw (reduced-batch) report
    double scale = 1.0;          ///< query-count scale factor

    double latencyMs() const
    {
        return perf.queryLatencyNs * scale * 1e-6;
    }
    double latencyNsPerQuery(std::int64_t queries) const
    {
        return perf.queryLatencyNs / double(queries);
    }
    double energyUj() const { return perf.queryEnergyPj * scale * 1e-6; }
    double energyPjPerQuery(std::int64_t queries) const
    {
        return perf.queryEnergyPj / double(queries);
    }
    double powerMw() const { return perf.avgPowerMw(); }
    double edpNJs() const
    {
        return (perf.queryEnergyPj * scale * 1e-3) *
               (perf.queryLatencyNs * scale * 1e-9);
    }
};

/** Compile the HDC dot kernel for @p spec and run @p workload. */
inline Measurement
runHdcOnCam(const arch::ArchSpec &spec, const apps::HdcWorkload &workload,
            std::size_t run_queries, double scaled_queries)
{
    std::vector<std::vector<float>> queries(
        workload.queryHvs.begin(),
        workload.queryHvs.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(run_queries, workload.queryHvs.size())));

    core::CompilerOptions options;
    options.spec = spec;
    core::Compiler compiler(options);
    const std::string source =
        workload.bits == 1
            ? apps::dotSimilaritySource(
                  static_cast<std::int64_t>(queries.size()),
                  workload.numClasses, workload.dimensions, 1)
            : apps::knnEuclideanSource(
                  static_cast<std::int64_t>(queries.size()),
                  workload.numClasses, workload.dimensions, 1);
    core::CompiledKernel kernel = compiler.compileTorchScript(source);
    core::ExecutionResult result =
        kernel.run({rt::Buffer::fromMatrix(queries),
                    rt::Buffer::fromMatrix(workload.classHvs)});

    Measurement m;
    m.perf = result.perf;
    m.scale = scaled_queries / double(queries.size());
    return m;
}

/** printf a separator line of the given width. */
inline void
rule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace c4cam::bench

#endif // C4CAM_BENCH_BENCHUTILS_H
