/**
 * @file
 * Host-dispatch microbench: tree-walk vs execution-plan replay, raw
 * vs optimized plan.
 *
 * Two legs:
 *
 *  1. A fixed kNN kernel (64 x 512, euclidean, k=1) compared across
 *     the tree-walking interpreter, raw plan replay and optimized
 *     plan replay. This leg shows the plan-vs-tree-walk win in a real
 *     kernel, but its wall clock is dominated by the simulated CAM
 *     device, so the optimizer's host-side effect is mostly hidden
 *     here -- it is reported, not gated.
 *
 *  2. A dispatch-dominated index-arithmetic loop (the single-use
 *     temporary chains that address computations lower to), built as
 *     IR text and run through the same ExecutionPlan::compile +
 *     rt::PlanOptimizer pipeline, replayed host-only. No device, no
 *     buffers: pure interpreter overhead, which is exactly what the
 *     optimizer targets (superop fusion + chain collapse + constant
 *     folding). --opt-gate X applies to THIS leg's optimized-vs-raw
 *     replay speedup: exit 1 when it falls below X.
 *
 * Both legs measure interleaved (alternating back ends per repetition,
 * min across repetitions) so CPU warm-up and frequency drift cannot
 * masquerade as a back-end difference. The kNN ns/op columns divide by
 * the RAW plan's executed-instruction count: the optimizer shrinks the
 * instruction stream, so a per-own-instruction figure would hide
 * exactly the effect being measured.
 *
 *   bench_interpreter_dispatch [--queries N] [--opt-gate X]
 *                              [--json-out FILE]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "BenchUtils.h"
#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "dialects/AllDialects.h"
#include "ir/Parser.h"
#include "runtime/ExecutionPlan.h"
#include "runtime/PlanOptimizer.h"
#include "support/Rng.h"

using namespace c4cam;
using Clock = std::chrono::steady_clock;

namespace {

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** The dispatch leg: a loop of single-use index-arithmetic temporaries
 *  feeding an accumulator -- the shape address computations lower to,
 *  and the best case for superop fusion + chain collapse. */
const char *const kDispatchLoopIr =
    "\"builtin.module\"() ({\n"
    "  \"func.func\"() ({\n"
    "  ^bb0:\n"
    "    %lb = \"arith.constant\"() {value = 0} : () -> index\n"
    "    %ub = \"arith.constant\"() {value = 40000} : () -> index\n"
    "    %st = \"arith.constant\"() {value = 1} : () -> index\n"
    "    %c3 = \"arith.constant\"() {value = 3} : () -> index\n"
    "    %c7 = \"arith.constant\"() {value = 7} : () -> index\n"
    "    %acc0 = \"arith.constant\"() {value = 0} : () -> index\n"
    "    %r = \"scf.for\"(%lb, %ub, %st, %acc0) ({\n"
    "    ^bb0(%iv: index, %acc: index):\n"
    "      %t1 = \"arith.muli\"(%iv, %c3) : (index, index) -> index\n"
    "      %t2 = \"arith.addi\"(%t1, %c7) : (index, index) -> index\n"
    "      %t3 = \"arith.muli\"(%t2, %c3) : (index, index) -> index\n"
    "      %t4 = \"arith.subi\"(%t3, %c7) : (index, index) -> index\n"
    "      %t5 = \"arith.addi\"(%t4, %c7) : (index, index) -> index\n"
    "      %t6 = \"arith.muli\"(%t5, %c3) : (index, index) -> index\n"
    "      %t7 = \"arith.maxsi\"(%t6, %c3) : (index, index) -> index\n"
    "      %t8 = \"arith.minsi\"(%t7, %c7) : (index, index) -> index\n"
    "      %t9 = \"arith.addi\"(%t8, %iv) : (index, index) -> index\n"
    "      %na = \"arith.addi\"(%acc, %t9) : (index, index) -> index\n"
    "      \"scf.yield\"(%na) : (index) -> ()\n"
    "    }) : (index, index, index, index) -> index\n"
    "    \"func.return\"(%r) : (index) -> ()\n"
    "  }) {sym_name = \"f\"} : () -> ()\n"
    "}) : () -> ()\n";

} // namespace

int
main(int argc, char **argv)
{
    long num_queries = 256;
    double opt_gate = 0.0; // 0 = report only, no gate
    bench::JsonOut jout;
    for (int i = 1; i < argc; ++i) {
        if (jout.tryParseArg(argc, argv, i))
            continue;
        if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
            char *end = nullptr;
            num_queries = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || num_queries < 1) {
                std::fprintf(stderr, "--queries: not a valid count: %s\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--opt-gate") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            opt_gate = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || opt_gate <= 0.0) {
                std::fprintf(stderr,
                             "--opt-gate: not a valid ratio: %s\n",
                             argv[i]);
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: bench_interpreter_dispatch "
                         "[--queries N] [--opt-gate X] [--json-out FILE]\n");
            return 2;
        }
    }

    //
    // Leg 1: the kNN kernel across all three back ends.
    //
    const std::int64_t rows = 64;
    const std::int64_t dims = 512;
    arch::ArchSpec spec = arch::ArchSpec::dseSetup(16, arch::OptTarget::Base);
    spec.camType = arch::CamDeviceType::Mcam;
    spec.bitsPerCell = 2;

    Rng rng(7);
    std::vector<std::vector<float>> stored(
        static_cast<std::size_t>(rows),
        std::vector<float>(static_cast<std::size_t>(dims)));
    for (auto &row : stored)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : 0.0f;
    rt::BufferPtr stored_buf = rt::Buffer::fromMatrix(stored);
    rt::BufferPtr query = rt::Buffer::fromMatrix({stored[3]});

    const std::string source = apps::knnEuclideanSource(1, rows, dims, 1);

    core::CompilerOptions opt_options;
    opt_options.spec = spec;
    core::CompilerOptions raw_options = opt_options;
    raw_options.optimizePlans = false;
    core::CompilerOptions walk_options = opt_options;
    walk_options.treeWalkExecution = true;

    core::Compiler opt_compiler(opt_options);
    core::CompiledKernel opt_kernel =
        opt_compiler.compileTorchScript(source);
    core::Compiler raw_compiler(raw_options);
    core::CompiledKernel raw_kernel =
        raw_compiler.compileTorchScript(source);
    core::Compiler walk_compiler(walk_options);
    core::CompiledKernel walk_kernel =
        walk_compiler.compileTorchScript(source);

    // Executed-instruction count of one RAW query replay: the shared
    // ns/op denominator (see the file comment). The timed loop replays
    // the QueryOnly program, so count QueryOnly instructions -- a Full
    // replay would also count the setup prologue.
    std::shared_ptr<const rt::ExecutionPlan> raw_plan =
        raw_kernel.executionPlan();
    if (!raw_plan || !opt_kernel.executionPlan()) {
        std::fprintf(stderr, "FAIL: kernel has no execution plan\n");
        return 1;
    }

    core::ExecutionSession opt_session =
        opt_kernel.createSession({query, stored_buf});
    core::ExecutionSession raw_session =
        raw_kernel.createSession({query, stored_buf});
    core::ExecutionSession walk_session =
        walk_kernel.createSession({query, stored_buf});
    if (!opt_session.usesPlan() || !raw_session.usesPlan() ||
        walk_session.usesPlan()) {
        std::fprintf(stderr, "FAIL: session back ends misconfigured\n");
        return 1;
    }

    std::uint64_t ops_per_query = 0;
    {
        rt::PlanFrame probe = raw_plan->makeFrame();
        sim::CamDevice device(spec);
        std::vector<rt::RtValue> probe_args =
            rt::toRtValues({query, stored_buf});
        raw_plan->run(probe, &device, probe_args,
                      rt::ExecutionPlan::ExecPhase::SetupOnly);
        device.beginQueryWindow();
        raw_plan->run(probe, &device, probe_args,
                      rt::ExecutionPlan::ExecPhase::QueryOnly,
                      &ops_per_query);
    }

    // Warm all sessions once (first-touch allocations), then measure
    // interleaved: rotate back ends each repetition, keep the minimum
    // per-query time per back end.
    core::ExecutionResult opt_first =
        opt_session.runQuery({query, stored_buf});
    core::ExecutionResult raw_first =
        raw_session.runQuery({query, stored_buf});
    core::ExecutionResult walk_first =
        walk_session.runQuery({query, stored_buf});

    const int reps = 8;
    const long chunk = std::max(1L, num_queries / reps);
    double opt_s = 1e30;
    double raw_s = 1e30;
    double walk_s = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        Clock::time_point start = Clock::now();
        for (long q = 0; q < chunk; ++q)
            opt_session.runQuery({query, stored_buf});
        opt_s = std::min(opt_s, secondsSince(start));
        start = Clock::now();
        for (long q = 0; q < chunk; ++q)
            raw_session.runQuery({query, stored_buf});
        raw_s = std::min(raw_s, secondsSince(start));
        start = Clock::now();
        for (long q = 0; q < chunk; ++q)
            walk_session.runQuery({query, stored_buf});
        walk_s = std::min(walk_s, secondsSince(start));
    }

    double n = static_cast<double>(chunk);
    double ops = static_cast<double>(ops_per_query);
    double opt_ns_per_query = opt_s * 1e9 / n;
    double raw_ns_per_query = raw_s * 1e9 / n;
    double walk_ns_per_query = walk_s * 1e9 / n;
    double opt_ns_per_op = opt_ns_per_query / ops;
    double raw_ns_per_op = raw_ns_per_query / ops;
    double walk_ns_per_op = walk_ns_per_query / ops;
    double plan_speedup = raw_s > 0.0 ? walk_s / raw_s : 0.0;
    double knn_opt_speedup = opt_s > 0.0 ? raw_s / opt_s : 0.0;

    std::printf("Interpreter dispatch: kNN %lld x %lld, %ld queries, "
                "%llu executed raw ops/query\n",
                static_cast<long long>(rows), static_cast<long long>(dims),
                num_queries,
                static_cast<unsigned long long>(ops_per_query));
    bench::rule();
    std::printf("%-18s %14s %14s %14s\n", "", "tree-walk", "raw plan",
                "optimized plan");
    std::printf("%-18s %14.1f %14.1f %14.1f\n", "us/query",
                walk_ns_per_query * 1e-3, raw_ns_per_query * 1e-3,
                opt_ns_per_query * 1e-3);
    std::printf("%-18s %14.1f %14.1f %14.1f\n", "ns/op", walk_ns_per_op,
                raw_ns_per_op, opt_ns_per_op);
    bench::rule();
    std::printf("plan replay speedup (raw vs tree-walk): %.2fx\n",
                plan_speedup);
    std::printf("kNN optimizer speedup (device-bound):   %.2fx\n",
                knn_opt_speedup);

    // The back ends must agree exactly -- this bench is only a fair
    // comparison if the simulated work is identical.
    auto diverges = [&](const core::ExecutionResult &a,
                        const core::ExecutionResult &b) {
        return a.outputs[1].asBuffer()->toVector() !=
                   b.outputs[1].asBuffer()->toVector() ||
               a.perf.queryLatencyNs != b.perf.queryLatencyNs ||
               a.perf.queryEnergyPj != b.perf.queryEnergyPj ||
               a.perf.searches != b.perf.searches;
    };
    if (diverges(raw_first, walk_first) || diverges(opt_first, raw_first)) {
        std::fprintf(stderr,
                     "FAIL: plan replay diverges across back ends\n");
        return 1;
    }

    //
    // Leg 2: the dispatch-dominated loop, raw vs optimized replay.
    //
    ir::Context ctx;
    dialects::loadAllDialects(ctx);
    ir::Module loop_module = ir::parseModule(ctx, kDispatchLoopIr);
    std::shared_ptr<const rt::ExecutionPlan> loop_raw =
        rt::ExecutionPlan::compile(loop_module, "f");
    rt::PlanOptReport loop_report;
    std::shared_ptr<const rt::ExecutionPlan> loop_opt =
        rt::PlanOptimizer::optimize(*loop_raw, {}, &loop_report);

    std::vector<rt::RtValue> no_args;
    std::uint64_t loop_raw_ops = 0;
    std::uint64_t loop_opt_ops = 0;
    std::int64_t loop_raw_result = 0;
    std::int64_t loop_opt_result = 0;
    {
        rt::PlanFrame f = loop_raw->makeFrame();
        loop_raw_result = loop_raw
                              ->run(f, nullptr, no_args,
                                    rt::ExecutionPlan::ExecPhase::Full,
                                    &loop_raw_ops)[0]
                              .asInt();
    }
    {
        rt::PlanFrame f = loop_opt->makeFrame();
        loop_opt_result = loop_opt
                              ->run(f, nullptr, no_args,
                                    rt::ExecutionPlan::ExecPhase::Full,
                                    &loop_opt_ops)[0]
                              .asInt();
    }
    if (loop_raw_result != loop_opt_result) {
        std::fprintf(stderr,
                     "FAIL: optimized loop replay diverges "
                     "(%lld vs %lld)\n",
                     static_cast<long long>(loop_opt_result),
                     static_cast<long long>(loop_raw_result));
        return 1;
    }

    double loop_raw_s = 1e30;
    double loop_opt_s = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        Clock::time_point start = Clock::now();
        {
            rt::PlanFrame f = loop_raw->makeFrame();
            loop_raw->run(f, nullptr, no_args);
        }
        loop_raw_s = std::min(loop_raw_s, secondsSince(start));
        start = Clock::now();
        {
            rt::PlanFrame f = loop_opt->makeFrame();
            loop_opt->run(f, nullptr, no_args);
        }
        loop_opt_s = std::min(loop_opt_s, secondsSince(start));
    }
    double loop_raw_ns_per_op =
        loop_raw_s * 1e9 / static_cast<double>(loop_raw_ops);
    double loop_opt_ns_per_op =
        loop_opt_s * 1e9 / static_cast<double>(loop_raw_ops);
    double opt_speedup = loop_opt_s > 0.0 ? loop_raw_s / loop_opt_s : 0.0;

    std::printf("\nDispatch loop: %llu raw ops -> %llu optimized "
                "(folded %d, fused %d, collapsed %d)\n",
                static_cast<unsigned long long>(loop_raw_ops),
                static_cast<unsigned long long>(loop_opt_ops),
                loop_report.foldedInstructions, loop_report.fusedSuperops,
                loop_report.collapsedWrites);
    bench::rule();
    std::printf("%-18s %14s %14s\n", "", "raw plan", "optimized plan");
    std::printf("%-18s %14.2f %14.2f\n", "ms/replay", loop_raw_s * 1e3,
                loop_opt_s * 1e3);
    std::printf("%-18s %14.1f %14.1f\n", "ns/op", loop_raw_ns_per_op,
                loop_opt_ns_per_op);
    bench::rule();
    std::printf("optimizer replay speedup (gated):       %.2fx\n",
                opt_speedup);

    jout.set("bench", std::string("interpreter_dispatch"));
    jout.set("queries", static_cast<double>(num_queries));
    jout.set("executed_ops_per_query", ops);
    jout.set("tree_walk_ns_per_op", walk_ns_per_op);
    jout.set("raw_plan_ns_per_op", raw_ns_per_op);
    jout.set("plan_ns_per_op", opt_ns_per_op);
    jout.set("tree_walk_us_per_query", walk_ns_per_query * 1e-3);
    jout.set("raw_plan_us_per_query", raw_ns_per_query * 1e-3);
    jout.set("plan_us_per_query", opt_ns_per_query * 1e-3);
    jout.set("speedup", plan_speedup);
    jout.set("knn_opt_speedup", knn_opt_speedup);
    jout.set("dispatch_raw_ops", static_cast<double>(loop_raw_ops));
    jout.set("dispatch_plan_ops", static_cast<double>(loop_opt_ops));
    jout.set("dispatch_raw_ns_per_op", loop_raw_ns_per_op);
    jout.set("dispatch_plan_ns_per_op", loop_opt_ns_per_op);
    jout.set("opt_speedup", opt_speedup);
    jout.set("opt_gate", opt_gate);
    if (!jout.write())
        return 1;

    if (opt_gate > 0.0 && opt_speedup < opt_gate) {
        std::fprintf(stderr,
                     "FAIL: optimizer replay speedup %.2fx below the "
                     "--opt-gate threshold %.2fx\n",
                     opt_speedup, opt_gate);
        return 1;
    }
    return 0;
}
