/**
 * @file
 * Host-dispatch microbench: tree-walk vs execution-plan replay.
 *
 * Isolates the *host-side* cost of executing one lowered op -- the
 * string-compare dispatch chain + std::map SSA environment of the
 * tree-walking interpreter against the switch-on-opcode + dense slot
 * frame of the compiled ExecutionPlan -- on a fixed kNN kernel. The
 * simulated device work is identical on both paths (the reports are
 * checked bit-identical here), so the wall-clock delta is pure
 * interpreter overhead, reported as ns per executed plan instruction.
 * The tree walk executes the same logical ops (the plan adds only a
 * handful of branch/copy instructions per loop), so one denominator
 * serves both columns.
 *
 *   bench_interpreter_dispatch [--queries N] [--json-out FILE]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "BenchUtils.h"
#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "support/Rng.h"

using namespace c4cam;
using Clock = std::chrono::steady_clock;

namespace {

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

int
main(int argc, char **argv)
{
    long num_queries = 256;
    bench::JsonOut jout;
    for (int i = 1; i < argc; ++i) {
        if (jout.tryParseArg(argc, argv, i))
            continue;
        if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
            char *end = nullptr;
            num_queries = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || num_queries < 1) {
                std::fprintf(stderr, "--queries: not a valid count: %s\n",
                             argv[i]);
                return 2;
            }
        } else {
            std::fprintf(stderr, "usage: bench_interpreter_dispatch "
                                 "[--queries N] [--json-out FILE]\n");
            return 2;
        }
    }

    // The fixed kNN kernel: 64 stored vectors of 512 dims, euclidean
    // distance, k=1 -- a deep cam-mapped loop nest whose per-query
    // body is dominated by index arithmetic, i.e. by dispatch.
    const std::int64_t rows = 64;
    const std::int64_t dims = 512;
    arch::ArchSpec spec = arch::ArchSpec::dseSetup(16, arch::OptTarget::Base);
    spec.camType = arch::CamDeviceType::Mcam;
    spec.bitsPerCell = 2;

    Rng rng(7);
    std::vector<std::vector<float>> stored(
        static_cast<std::size_t>(rows),
        std::vector<float>(static_cast<std::size_t>(dims)));
    for (auto &row : stored)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : 0.0f;
    rt::BufferPtr stored_buf = rt::Buffer::fromMatrix(stored);
    rt::BufferPtr query = rt::Buffer::fromMatrix({stored[3]});

    const std::string source = apps::knnEuclideanSource(1, rows, dims, 1);

    core::CompilerOptions plan_options;
    plan_options.spec = spec;
    core::CompilerOptions walk_options = plan_options;
    walk_options.treeWalkExecution = true;

    core::Compiler plan_compiler(plan_options);
    core::CompiledKernel plan_kernel =
        plan_compiler.compileTorchScript(source);
    core::Compiler walk_compiler(walk_options);
    core::CompiledKernel walk_kernel =
        walk_compiler.compileTorchScript(source);

    // Executed-instruction count of one query replay: the ns/op
    // denominator for both back ends.
    std::shared_ptr<const rt::ExecutionPlan> plan =
        plan_kernel.executionPlan();
    if (!plan) {
        std::fprintf(stderr, "FAIL: kernel has no execution plan\n");
        return 1;
    }

    core::ExecutionSession plan_session =
        plan_kernel.createSession({query, stored_buf});
    core::ExecutionSession walk_session =
        walk_kernel.createSession({query, stored_buf});
    if (!plan_session.usesPlan() || walk_session.usesPlan()) {
        std::fprintf(stderr, "FAIL: session back ends misconfigured\n");
        return 1;
    }

    // The timed loop below replays the QueryOnly program, so the
    // ns/op denominator must count QueryOnly instructions -- a Full
    // replay would also count the setup prologue and understate
    // ns/op by ~2x.
    std::uint64_t ops_per_query = 0;
    {
        rt::PlanFrame probe = plan->makeFrame();
        sim::CamDevice device(spec);
        std::vector<rt::RtValue> probe_args =
            rt::toRtValues({query, stored_buf});
        plan->run(probe, &device, probe_args,
                  rt::ExecutionPlan::ExecPhase::SetupOnly);
        device.beginQueryWindow();
        plan->run(probe, &device, probe_args,
                  rt::ExecutionPlan::ExecPhase::QueryOnly,
                  &ops_per_query);
    }

    // Warm both sessions once (first-touch allocations), then measure.
    core::ExecutionResult plan_first =
        plan_session.runQuery({query, stored_buf});
    core::ExecutionResult walk_first =
        walk_session.runQuery({query, stored_buf});

    Clock::time_point start = Clock::now();
    for (long q = 0; q < num_queries; ++q)
        plan_session.runQuery({query, stored_buf});
    double plan_s = secondsSince(start);

    start = Clock::now();
    for (long q = 0; q < num_queries; ++q)
        walk_session.runQuery({query, stored_buf});
    double walk_s = secondsSince(start);

    double n = static_cast<double>(num_queries);
    double ops = static_cast<double>(ops_per_query);
    double plan_ns_per_query = plan_s * 1e9 / n;
    double walk_ns_per_query = walk_s * 1e9 / n;
    double plan_ns_per_op = plan_ns_per_query / ops;
    double walk_ns_per_op = walk_ns_per_query / ops;
    double speedup = plan_s > 0.0 ? walk_s / plan_s : 0.0;

    std::printf("Interpreter dispatch: kNN %lld x %lld, %ld queries, "
                "%llu executed ops/query\n",
                static_cast<long long>(rows), static_cast<long long>(dims),
                num_queries,
                static_cast<unsigned long long>(ops_per_query));
    bench::rule();
    std::printf("%-24s %16s %16s\n", "", "tree-walk", "plan replay");
    std::printf("%-24s %16.1f %16.1f\n", "us/query",
                walk_ns_per_query * 1e-3, plan_ns_per_query * 1e-3);
    std::printf("%-24s %16.1f %16.1f\n", "ns/op", walk_ns_per_op,
                plan_ns_per_op);
    bench::rule();
    std::printf("plan replay speedup: %.2fx\n", speedup);

    // The two back ends must agree exactly -- this bench is only a
    // fair comparison if the simulated work is identical.
    if (plan_first.outputs[1].asBuffer()->toVector() !=
            walk_first.outputs[1].asBuffer()->toVector() ||
        plan_first.perf.queryLatencyNs != walk_first.perf.queryLatencyNs ||
        plan_first.perf.queryEnergyPj != walk_first.perf.queryEnergyPj ||
        plan_first.perf.searches != walk_first.perf.searches) {
        std::fprintf(stderr,
                     "FAIL: plan replay diverges from the tree walk\n");
        return 1;
    }

    jout.set("bench", std::string("interpreter_dispatch"));
    jout.set("queries", n);
    jout.set("executed_ops_per_query", ops);
    jout.set("tree_walk_ns_per_op", walk_ns_per_op);
    jout.set("plan_ns_per_op", plan_ns_per_op);
    jout.set("tree_walk_us_per_query", walk_ns_per_query * 1e-3);
    jout.set("plan_us_per_query", plan_ns_per_query * 1e-3);
    jout.set("speedup", speedup);
    return jout.write() ? 0 : 1;
}
