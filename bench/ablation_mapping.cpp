/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out.
 *
 * 1. maxActiveSubarrays sweep: the power knob is a continuum between
 *    cam-base (all 8 subarrays of an array active) and cam-power (1 at
 *    a time); chunked mapping covers the intermediate points.
 * 2. Post-hoc retuning: applying cam-power-opt to an already-mapped
 *    module must agree with recompiling for the power target
 *    (validates that the mapped IR carries enough structure to be
 *    retargeted without the frontend).
 * 3. Timing-scope model: sequential-vs-parallel accounting is the core
 *    simulator design decision; the sweep's monotonicity demonstrates
 *    it directly.
 */

#include <cstdio>

#include "BenchUtils.h"
#include "apps/Datasets.h"
#include "ir/Pass.h"
#include "passes/CamOptimization.h"

using namespace c4cam;
using namespace c4cam::bench;

int
main(int argc, char **argv)
{
    JsonOut jout;
    for (int i = 1; i < argc; ++i) {
        if (jout.tryParseArg(argc, argv, i))
            continue;
        std::fprintf(stderr,
                     "usage: bench_ablation_mapping [--json-out FILE]\n");
        return 2;
    }
    const int kQueries = 6;
    const int kDims = 4096;

    apps::Dataset dataset = apps::makeMnistLike(10, kQueries);
    apps::HdcWorkload workload =
        apps::encodeHdc(dataset, kDims, 1, kQueries);

    std::printf("Ablation 1: maxActiveSubarrays sweep (32x32, HDC %d "
                "dims)\n",
                kDims);
    std::printf("%-22s %14s %14s %14s\n", "active subarrays",
                "latency (ns/q)", "power (mW)", "energy (pJ/q)");
    rule(68);
    double prev_latency = 0.0;
    bool monotone = true;
    for (int active : {1, 2, 4, 8}) {
        arch::ArchSpec spec =
            arch::ArchSpec::dseSetup(32, arch::OptTarget::Base);
        spec.maxActiveSubarrays = active;
        Measurement m = runHdcOnCam(spec, workload, kQueries, kQueries);
        std::printf("%-22d %14.2f %14.3f %14.1f\n", active,
                    m.latencyNsPerQuery(kQueries), m.powerMw(),
                    m.energyPjPerQuery(kQueries));
        if (prev_latency > 0.0 &&
            m.latencyNsPerQuery(kQueries) > prev_latency + 1e-9)
            monotone = false;
        prev_latency = m.latencyNsPerQuery(kQueries);
    }
    std::printf("latency monotonically falls as parallelism grows: %s\n\n",
                monotone ? "PASS" : "FAIL");

    std::printf("Ablation 2: recompile-for-power vs post-hoc "
                "cam-power-opt\n");
    arch::ArchSpec power_spec =
        arch::ArchSpec::dseSetup(32, arch::OptTarget::Power);
    Measurement recompiled =
        runHdcOnCam(power_spec, workload, kQueries, kQueries);

    // Compile for base, then retune the mapped module.
    arch::ArchSpec base_spec =
        arch::ArchSpec::dseSetup(32, arch::OptTarget::Base);
    std::vector<std::vector<float>> queries(
        workload.queryHvs.begin(),
        workload.queryHvs.begin() + kQueries);
    core::CompilerOptions options;
    options.spec = base_spec;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(kQueries, workload.numClasses,
                                  workload.dimensions, 1));
    ir::PassManager pm;
    pm.add<passes::CamPowerOptPass>();
    pm.run(kernel.module());
    core::ExecutionResult retuned = kernel.run(
        {rt::Buffer::fromMatrix(queries),
         rt::Buffer::fromMatrix(workload.classHvs)});

    std::printf("  recompiled: %10.2f ns/q, %8.3f mW\n",
                recompiled.latencyNsPerQuery(kQueries),
                recompiled.powerMw());
    std::printf("  retuned:    %10.2f ns/q, %8.3f mW\n",
                retuned.perf.queryLatencyNs / kQueries,
                retuned.perf.queryEnergyPj /
                    retuned.perf.queryLatencyNs);
    double delta =
        std::abs(recompiled.perf.queryLatencyNs -
                 retuned.perf.queryLatencyNs) /
        recompiled.perf.queryLatencyNs;
    std::printf("  latency delta: %.2f%% -> %s\n\n", delta * 100.0,
                delta < 0.01 ? "PASS" : "FAIL");

    std::printf("Ablation 3: scope accounting (same work, different "
                "loop structure)\n");
    std::printf("  base energy %.1f pJ/q == power energy %.1f pJ/q: "
                "%s\n",
                runHdcOnCam(base_spec, workload, kQueries, kQueries)
                    .energyPjPerQuery(kQueries),
                recompiled.energyPjPerQuery(kQueries),
                std::abs(runHdcOnCam(base_spec, workload, kQueries,
                                     kQueries)
                             .energyPjPerQuery(kQueries) -
                         recompiled.energyPjPerQuery(kQueries)) < 1.0
                    ? "PASS"
                    : "FAIL");

    jout.set("bench", std::string("ablation_mapping"));
    jout.set("latency_monotone_pass", monotone ? 1.0 : 0.0);
    jout.set("retune_latency_delta", delta);
    jout.set("recompiled_power_mw", recompiled.powerMw());
    return jout.write() ? 0 : 1;
}
