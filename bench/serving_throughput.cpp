/**
 * @file
 * Serving-throughput bench: persistent sessions vs per-query runs.
 *
 * The paper's execution model (§III-D) pays the subarray-programming
 * setup once and then serves queries at search latency. This bench
 * quantifies what that buys a serving deployment: it serves the same
 * query stream (a) naively, one CompiledKernel::run() per query --
 * re-allocating and re-programming the device every time -- and (b)
 * through one ExecutionSession created once.
 *
 * Reported: simulated queries/sec (the paper's metric; deterministic)
 * and host wall-clock queries/sec (the simulator does strictly less
 * work per served query in session mode). The bench exits non-zero if
 * the session path is not at least 5x faster in simulated throughput
 * or if any result/cost invariant breaks, so CI can smoke-run it.
 *
 * --scaling switches to the thread-scaling mode: the same query
 * stream is served through a core::ServingEngine with 1/2/4/8 worker
 * threads (one programmed device replica each) and a host-qps table
 * is printed. Every threaded run must stay bit-identical to the
 * serial session (answers and per-query cost reports); on hosts with
 * >= 4 hardware threads the bench additionally exits non-zero when
 * the 4-worker engine does not beat the serial session by > 1.5x in
 * wall-clock queries/sec.
 *
 * --plan-vs-treewalk switches to the execution-back-end gate: the
 * same stream is served through a tree-walking session and a
 * plan-replaying session (a dispatch-heavy kNN kernel, see the mode
 * for why). The bench exits non-zero unless (a) plan replay is >= 3x
 * faster in host wall-clock, (b) every per-query simulated PerfReport
 * is bit-identical between the two back ends, and (c) fused-batch
 * (runFusedBatch) totals equal the sum of the corresponding serial
 * query windows exactly.
 *
 * --async switches to the async-front-end gate: the same stream is
 * served (a) through ServingEngine::runBatch at W workers (the sync
 * baseline), (b) open-loop through an AsyncServingEngine -- every
 * query submitted as fast as the bounded queue admits, arrivals
 * independent of completions, backpressure from the queue bound --
 * and (c) closed-loop -- W submitters that each wait for their
 * query's completion before sending the next, so concurrency equals
 * W by construction. The bench exits non-zero unless (1) every async
 * result (both arrival modes) is bit-identical to serial session
 * replay in answers and per-query simulated PerfReports, and (2)
 * open-loop async qps is no worse than 0.9x the sync runBatch qps at
 * equal worker count (the 10% guard absorbs scheduler noise on
 * loaded CI runners; the contract is "the queue layer costs
 * nothing"). The qps gate applies from 32 queries up -- tiny
 * sanitizer smoke runs keep the bit-identity checks but skip the
 * noise-dominated timing comparison.
 *
 * --replay TRACE.json switches to trace-driven open-loop replay: the
 * recorded "admit" span timestamps of a c4cam-trace-v1 document (from
 * `c4cam-run --trace-out` or the checked-in bench/traces fixtures)
 * become the arrival schedule. A single injector thread re-offers
 * each query at its recorded (optionally --time-scale-compressed)
 * offset through an AsyncServingEngine, arrivals independent of
 * completions -- so a recorded burst hits the admission queue as a
 * burst, not as a smoothed closed loop. Reports offered vs achieved
 * qps and the per-stage latency split, checks every replayed answer
 * and per-query PerfReport against serial session replay, and writes
 * BENCH_replay.json via --json-out. --trace-out FILE re-records the
 * replay itself for trace-diffing runs.
 *
 * --chaos switches to the availability-under-faults leg: the same
 * stream is served open-loop through an AsyncServingEngine whose
 * ServingEngine backend carries a bounded-backoff retry policy
 * (4 attempts) while a seeded sim::FaultInjector fails a fraction of
 * searches transiently at entry. Fault rates 0 / 0.1% / 1% are swept
 * (or {0, R} with --fault-rate R); per rate the bench reports wall
 * qps, availability (completed / offered), backend retries and
 * injected faults. Every query that completes must be bit-identical
 * to the fault-free serial reference -- recovery may cost latency,
 * never correctness -- and the bench exits non-zero when availability
 * at rates <= 0.1% drops below 99% (the CI chaos gate). Faults are a
 * pure function of the spec seed, so a failing leg replays exactly.
 *
 * --fused-model switches to the fused-model gate: the same stream is
 * served as K=8 fused batches under both sim::FusionModel regimes and
 * compared against a serial session. ExactSerial fused totals must
 * equal the serial sum bit for bit; TrueFused totals (drive/precharge
 * charged once per pass) must come in strictly below it while the
 * outputs stay bit-identical and the per-search sense/merge
 * components are unchanged. Energy-per-query for all three paths is
 * written to BENCH_fused.json (the CI perf gate archives it).
 *
 * --shards M switches to the sharded-serving sweep: the same query
 * stream is served through core::ShardedEngine at 1, 2, 4, ... up to
 * M shards (replicasPerShard = --workers, closed-loop submitters), a
 * qps table is printed, and every sharded run must stay bit-identical
 * to the serial session in BOTH outputs -- merged top-k values and
 * global indices. Per-query PerfReports are shard aggregations by
 * design (latency = max over shards), so the report check here is the
 * invariant that holds: per-shard latency never exceeds the
 * single-device latency. No qps gate: M small simulated devices vs
 * one big one is an accounting statement, not a host-speed contract.
 *
 * All modes accept --json-out FILE for machine-readable results
 * (CI archives BENCH_serving.json, BENCH_async.json, BENCH_replay.json,
 * BENCH_sharded.json, BENCH_chaos.json and BENCH_fused.json from the
 * release perf job).
 *
 *   bench_serving_throughput [--queries N] [--scaling]
 *                            [--plan-vs-treewalk] [--async]
 *                            [--fused-model] [--shards M]
 *                            [--chaos] [--fault-rate X]
 *                            [--replay TRACE.json] [--time-scale S]
 *                            [--trace-out FILE]
 *                            [--workers W] [--json-out FILE]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "BenchUtils.h"
#include "apps/Workloads.h"
#include "core/AsyncServingEngine.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "core/ServingEngine.h"
#include "core/ShardedEngine.h"
#include "sim/FaultInjector.h"
#include "support/CliParse.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/Trace.h"

using namespace c4cam;
using Clock = std::chrono::steady_clock;

namespace {

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Exact equality of the fields a served query's window must match. */
bool
sameQueryCost(const sim::PerfReport &a, const sim::PerfReport &b)
{
    return a.queryLatencyNs == b.queryLatencyNs &&
           a.queryEnergyPj == b.queryEnergyPj &&
           a.cellEnergyPj == b.cellEnergyPj &&
           a.senseEnergyPj == b.senseEnergyPj &&
           a.driveEnergyPj == b.driveEnergyPj &&
           a.mergeEnergyPj == b.mergeEnergyPj &&
           a.searches == b.searches;
}

/**
 * Execution-back-end gate: plan replay vs tree walk. @return process
 * exit code.
 *
 * Uses its own workload -- a cam-mapped euclidean kNN on 16x16
 * subarrays -- because the gate measures *host dispatch*: small
 * subarrays maximize lowered control ops per unit of simulated device
 * work, which is exactly the serving regime the plan optimizes (the
 * simulated accounting is identical either way; the check below
 * enforces that bit for bit).
 */
int
runPlanVsTreeWalk(long num_queries, bench::JsonOut &jout)
{
    const std::int64_t rows = 96;
    const std::int64_t dims = 768;
    arch::ArchSpec spec = arch::ArchSpec::dseSetup(16, arch::OptTarget::Base);
    spec.camType = arch::CamDeviceType::Mcam;
    spec.bitsPerCell = 2;
    const std::string source = apps::knnEuclideanSource(1, rows, dims, 1);

    core::CompilerOptions plan_options;
    plan_options.spec = spec;
    core::CompilerOptions walk_options = plan_options;
    walk_options.treeWalkExecution = true;

    core::Compiler plan_compiler(plan_options);
    core::CompiledKernel plan_kernel =
        plan_compiler.compileTorchScript(source);
    core::Compiler walk_compiler(walk_options);
    core::CompiledKernel walk_kernel =
        walk_compiler.compileTorchScript(source);

    Rng rng(29);
    std::vector<std::vector<float>> stored(
        static_cast<std::size_t>(rows),
        std::vector<float>(static_cast<std::size_t>(dims)));
    for (auto &row : stored)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : 0.0f;
    rt::BufferPtr stored_buf = rt::Buffer::fromMatrix(stored);

    std::vector<std::vector<rt::BufferPtr>> batches;
    batches.reserve(static_cast<std::size_t>(num_queries));
    for (long q = 0; q < num_queries; ++q)
        batches.push_back(
            {rt::Buffer::fromMatrix(
                 {stored[static_cast<std::size_t>(q) % stored.size()]}),
             stored_buf});

    // Warm-up runs stay outside the timed windows (first-touch
    // allocations, page faults); the gate compares steady state.
    core::ExecutionSession walk_session =
        walk_kernel.createSession(batches[0]);
    walk_session.runQuery(batches[0]);
    Clock::time_point start = Clock::now();
    std::vector<core::ExecutionResult> walk_results =
        walk_session.runBatch(batches);
    double walk_s = secondsSince(start);

    core::ExecutionSession plan_session =
        plan_kernel.createSession(batches[0]);
    plan_session.runQuery(batches[0]);
    start = Clock::now();
    std::vector<core::ExecutionResult> plan_results =
        plan_session.runBatch(batches);
    double plan_s = secondsSince(start);

    double n = static_cast<double>(num_queries);
    double speedup = plan_s > 0.0 ? walk_s / plan_s : 0.0;
    std::printf("Plan vs tree walk: %ld queries, kNN %lld x %lld on "
                "16x16 subarrays\n",
                num_queries, static_cast<long long>(rows),
                static_cast<long long>(dims));
    bench::rule();
    std::printf("%-28s %16s %16s\n", "", "tree-walk", "plan replay");
    std::printf("%-28s %16.3f %16.3f\n", "host wall-clock (s)", walk_s,
                plan_s);
    std::printf("%-28s %16.1f %16.1f\n", "host queries/sec", n / walk_s,
                n / plan_s);
    bench::rule();
    std::printf("plan replay speedup: %.2fx (gate: >= 3x)\n", speedup);

    // (b) bit-identical per-query simulated reports and answers.
    for (std::size_t q = 0; q < batches.size(); ++q) {
        if (plan_results[q].outputs[1].asBuffer()->toVector() !=
                walk_results[q].outputs[1].asBuffer()->toVector() ||
            !sameQueryCost(plan_results[q].perf, walk_results[q].perf)) {
            std::fprintf(stderr,
                         "FAIL: plan-replay query %zu diverges from the "
                         "tree walk\n",
                         q);
            return 1;
        }
    }
    std::printf("per-query reports bit-identical across back ends: OK\n");

    // (c) fused batching: totals must equal the sum of the serial
    // windows exactly, for K=4 chunks over a fresh session.
    core::ExecutionSession fused_session =
        plan_kernel.createSession(batches[0]);
    const std::size_t fused_k = 4;
    std::size_t fused_chunks = 0;
    for (std::size_t begin = 0; begin + fused_k <= batches.size();
         begin += fused_k) {
        ++fused_chunks;
        std::vector<std::vector<rt::BufferPtr>> chunk(
            batches.begin() + static_cast<std::ptrdiff_t>(begin),
            batches.begin() + static_cast<std::ptrdiff_t>(begin + fused_k));
        core::FusedBatchResult fused = fused_session.runFusedBatch(chunk);
        double lat = 0.0;
        double energy = 0.0;
        double drive = 0.0;
        std::int64_t searches = 0;
        for (std::size_t i = 0; i < fused_k; ++i) {
            const sim::PerfReport &serial =
                plan_results[begin + i].perf;
            lat += serial.queryLatencyNs;
            energy += serial.queryEnergyPj;
            drive += serial.driveEnergyPj;
            searches += serial.searches;
            if (!sameQueryCost(fused.results[i].perf, serial)) {
                std::fprintf(stderr,
                             "FAIL: fused query %zu diverges from its "
                             "serial window\n",
                             begin + i);
                return 1;
            }
        }
        if (fused.fused.total.latencyNs != lat ||
            fused.fused.total.energyPj != energy ||
            fused.fused.driveEnergyPj != drive ||
            fused.fused.searches != searches) {
            std::fprintf(stderr,
                         "FAIL: fused window totals != sum of serial "
                         "query windows (chunk at %zu)\n",
                         begin);
            return 1;
        }
    }
    if (fused_chunks == 0) {
        // Keep the self-checking contract honest: never print OK for
        // a check that could not run.
        std::fprintf(stderr,
                     "FAIL: --queries %ld is below the fused batch "
                     "width %zu; the fused check needs at least one "
                     "full chunk\n",
                     num_queries, fused_k);
        return 1;
    }
    std::printf("fused-batch totals equal the sum of serial windows: "
                "OK (%zu chunks of %zu)\n",
                fused_chunks, fused_k);

    jout.set("mode", std::string("plan_vs_treewalk"));
    jout.set("queries", n);
    jout.set("tree_walk_wall_s", walk_s);
    jout.set("plan_wall_s", plan_s);
    jout.set("tree_walk_qps", n / walk_s);
    jout.set("plan_qps", n / plan_s);
    jout.set("plan_speedup", speedup);
    jout.setReport("plan_aggregate",
                   plan_session.aggregateReport());

    if (speedup < 3.0) {
        std::fprintf(stderr,
                     "FAIL: plan replay speedup %.2fx is below the 3x "
                     "gate\n",
                     speedup);
        return 1;
    }
    return jout.write() ? 0 : 1;
}

/**
 * Fused-model gate: the same stream served as K=8 fused batches under
 * both sim::FusionModel regimes against the serial session reference.
 *
 * ExactSerial fused windows must match the serial sum bit for bit
 * (accounting re-attribution, no physics change); TrueFused windows
 * must come in strictly below it -- the precharge/drive of each
 * subarray is charged once per pass -- while outputs stay
 * bit-identical and the per-search sense/merge components are
 * unchanged. The energy-per-query figures land in BENCH_fused.json;
 * the CI perf gate archives them. @return process exit code.
 */
int
runFusedModel(const core::CompilerOptions &options,
              const std::string &source, core::CompiledKernel &kernel,
              const rt::BufferPtr &stored_buf,
              const std::vector<rt::BufferPtr> &queries, bench::JsonOut &jout)
{
    constexpr std::size_t kFusedK = 8;
    std::vector<std::vector<rt::BufferPtr>> batches;
    batches.reserve(queries.size());
    for (const rt::BufferPtr &query : queries)
        batches.push_back({query, stored_buf});
    if (batches.size() < kFusedK) {
        std::fprintf(stderr,
                     "FAIL: --fused-model needs at least %zu queries "
                     "for one K=%zu fused window, got %zu\n",
                     kFusedK, kFusedK, batches.size());
        return 1;
    }

    // Serial reference: one query window per query, full cost each.
    core::ExecutionSession serial_session = kernel.createSession(batches[0]);
    std::vector<core::ExecutionResult> serial =
        serial_session.runBatch(batches);

    core::CompilerOptions true_options = options;
    true_options.fusionModel = sim::FusionModel::TrueFused;
    core::Compiler true_compiler(true_options);
    core::CompiledKernel true_kernel =
        true_compiler.compileTorchScript(source);

    core::ExecutionSession exact_session =
        kernel.createSession(batches[0]);
    core::ExecutionSession true_session =
        true_kernel.createSession(batches[0]);

    double serial_lat = 0.0, serial_energy = 0.0, serial_drive = 0.0;
    double exact_lat = 0.0, exact_energy = 0.0;
    double true_lat = 0.0, true_energy = 0.0, true_drive = 0.0;
    std::size_t chunks = 0;
    std::size_t covered = 0;
    for (std::size_t begin = 0; begin + kFusedK <= batches.size();
         begin += kFusedK) {
        ++chunks;
        covered += kFusedK;
        std::vector<std::vector<rt::BufferPtr>> chunk(
            batches.begin() + static_cast<std::ptrdiff_t>(begin),
            batches.begin() + static_cast<std::ptrdiff_t>(begin + kFusedK));

        // Per-chunk serial sums (the comparison baseline).
        double lat = 0.0, energy = 0.0, drive = 0.0, cell = 0.0;
        double sense = 0.0, merge = 0.0;
        std::int64_t searches = 0;
        for (std::size_t i = 0; i < kFusedK; ++i) {
            const sim::PerfReport &q = serial[begin + i].perf;
            lat += q.queryLatencyNs;
            energy += q.queryEnergyPj;
            drive += q.driveEnergyPj;
            cell += q.cellEnergyPj;
            sense += q.senseEnergyPj;
            merge += q.mergeEnergyPj;
            searches += q.searches;
        }
        serial_lat += lat;
        serial_energy += energy;
        serial_drive += drive;

        // ExactSerial fused window: bit-identical to the serial sum.
        core::FusedBatchResult exact = exact_session.runFusedBatch(chunk);
        if (exact.fused.total.latencyNs != lat ||
            exact.fused.total.energyPj != energy ||
            exact.fused.driveEnergyPj != drive ||
            exact.fused.searches != searches) {
            std::fprintf(stderr,
                         "FAIL: exact-serial fused totals != serial sum "
                         "(chunk at %zu)\n",
                         begin);
            return 1;
        }
        exact_lat += exact.fused.total.latencyNs;
        exact_energy += exact.fused.total.energyPj;

        // TrueFused window: outputs identical, totals strictly below,
        // per-search sense/merge components unchanged.
        core::FusedBatchResult fused = true_session.runFusedBatch(chunk);
        for (std::size_t i = 0; i < kFusedK; ++i) {
            const core::ExecutionResult &ref = serial[begin + i];
            if (fused.results[i].outputs[1].asBuffer()->toVector() !=
                    ref.outputs[1].asBuffer()->toVector() ||
                exact.results[i].outputs[1].asBuffer()->toVector() !=
                    ref.outputs[1].asBuffer()->toVector()) {
                std::fprintf(stderr,
                             "FAIL: fused query %zu output diverges "
                             "from serial serving\n",
                             begin + i);
                return 1;
            }
            if (!sameQueryCost(exact.results[i].perf, ref.perf)) {
                std::fprintf(stderr,
                             "FAIL: exact-serial fused query %zu report "
                             "diverges from its serial window\n",
                             begin + i);
                return 1;
            }
        }
        if (!(fused.fused.total.energyPj < energy) ||
            !(fused.fused.total.latencyNs < lat) ||
            !(fused.fused.driveEnergyPj < drive) ||
            !(fused.fused.cellEnergyPj < cell)) {
            std::fprintf(stderr,
                         "FAIL: true-fused totals are not strictly "
                         "below the serial sum (chunk at %zu)\n",
                         begin);
            return 1;
        }
        if (fused.fused.senseEnergyPj != sense ||
            fused.fused.mergeEnergyPj != merge ||
            fused.fused.searches != searches) {
            std::fprintf(stderr,
                         "FAIL: true-fused sense/merge/search components "
                         "changed (chunk at %zu); the model may only "
                         "drop drive/precharge cost\n",
                         begin);
            return 1;
        }
        if (fused.fusedReport.fusedBatchK !=
            static_cast<std::int64_t>(kFusedK)) {
            std::fprintf(stderr,
                         "FAIL: true-fused report claims K=%lld, served "
                         "%zu\n",
                         static_cast<long long>(
                             fused.fusedReport.fusedBatchK),
                         kFusedK);
            return 1;
        }
        true_lat += fused.fused.total.latencyNs;
        true_energy += fused.fused.total.energyPj;
        true_drive += fused.fused.driveEnergyPj;
    }

    const double n = static_cast<double>(covered);
    const double energy_savings = 1.0 - true_energy / serial_energy;
    const double latency_savings = 1.0 - true_lat / serial_lat;
    std::printf("Fused-model gate: %zu chunks of K=%zu (%zu of %zu "
                "queries)\n",
                chunks, kFusedK, covered, batches.size());
    bench::rule();
    std::printf("%-26s %14s %14s %14s\n", "", "serial",
                "fused (exact)", "fused (true)");
    std::printf("%-26s %14.3f %14.3f %14.3f\n", "energy/query (pJ)",
                serial_energy / n, exact_energy / n, true_energy / n);
    std::printf("%-26s %14.3f %14.3f %14.3f\n", "latency/query (ns)",
                serial_lat / n, exact_lat / n, true_lat / n);
    std::printf("%-26s %14.3f %14s %14.3f\n", "drive energy/query (pJ)",
                serial_drive / n, "=serial", true_drive / n);
    bench::rule();
    std::printf("exact-serial fused == serial sum (bit-identical): OK\n");
    std::printf("true-fused energy %.1f%% below serial, latency %.1f%% "
                "below (gate: strictly below)\n",
                energy_savings * 100.0, latency_savings * 100.0);
    std::printf("outputs bit-identical to serial serving (both "
                "models): OK\n");

    jout.set("mode", std::string("fused_model"));
    jout.set("queries", n);
    jout.set("fused_k", double(kFusedK));
    jout.set("serial_energy_per_query_pj", serial_energy / n);
    jout.set("exact_fused_energy_per_query_pj", exact_energy / n);
    jout.set("true_fused_energy_per_query_pj", true_energy / n);
    jout.set("serial_latency_per_query_ns", serial_lat / n);
    jout.set("true_fused_latency_per_query_ns", true_lat / n);
    jout.set("serial_drive_energy_per_query_pj", serial_drive / n);
    jout.set("true_fused_drive_energy_per_query_pj", true_drive / n);
    jout.set("energy_savings", energy_savings);
    jout.set("latency_savings", latency_savings);
    return jout.write() ? 0 : 1;
}

/**
 * Thread-scaling mode. @return process exit code.
 */
int
runScaling(core::CompiledKernel &kernel, const rt::BufferPtr &stored_buf,
           const std::vector<rt::BufferPtr> &queries,
           bench::JsonOut &jout)
{
    std::vector<std::vector<rt::BufferPtr>> batches;
    batches.reserve(queries.size());
    for (const rt::BufferPtr &query : queries)
        batches.push_back({query, stored_buf});

    // Serial reference: one persistent session, same stream. The
    // clock covers the serving loop only -- session creation (setup
    // interpretation) stays outside, exactly like engine construction
    // and replica cloning stay outside the engine's timed window, so
    // the speedup column compares steady-state serving throughput.
    core::ExecutionSession session =
        kernel.createSession({queries[0], stored_buf});
    Clock::time_point start = Clock::now();
    std::vector<core::ExecutionResult> serial = session.runBatch(batches);
    double serial_s = secondsSince(start);
    double serial_qps = static_cast<double>(queries.size()) / serial_s;

    unsigned hw = std::thread::hardware_concurrency();
    std::printf("Thread scaling: %zu queries, %u hardware threads\n",
                queries.size(), hw);
    bench::rule();
    std::printf("%-10s %14s %12s %12s %12s\n", "workers", "wall qps",
                "vs serial", "p50 (us)", "p95 (us)");
    std::printf("%-10s %14.1f %12s %12s %12s\n", "serial", serial_qps,
                "1.00x", "-", "-");

    double qps4 = 0.0;
    for (int workers : {1, 2, 4, 8}) {
        auto engine =
            kernel.createServingEngine({queries[0], stored_buf}, workers);
        start = Clock::now();
        std::vector<core::ExecutionResult> threaded =
            engine->runBatch(batches);
        double batch_s = secondsSince(start);
        double qps = static_cast<double>(queries.size()) / batch_s;
        core::ServingStats stats = engine->stats();
        if (workers == 4)
            qps4 = qps;
        std::printf("%-10d %14.1f %11.2fx %12.1f %12.1f\n", workers, qps,
                    qps / serial_qps, stats.p50LatencyUs,
                    stats.p95LatencyUs);

        // Bit-identical serving invariant: answers and per-query cost
        // reports match the serial session exactly, per query.
        for (std::size_t q = 0; q < batches.size(); ++q) {
            if (threaded[q].outputs[1].asBuffer()->toVector() !=
                    serial[q].outputs[1].asBuffer()->toVector() ||
                !sameQueryCost(threaded[q].perf, serial[q].perf)) {
                std::fprintf(stderr,
                             "FAIL: %d-worker result %zu diverges from "
                             "the serial session\n",
                             workers, q);
                return 1;
            }
        }
        sim::PerfReport aggregate = engine->stats().aggregate;
        if (aggregate.setupLatencyNs !=
            session.aggregateReport().setupLatencyNs) {
            std::fprintf(stderr,
                         "FAIL: %d-worker engine pays setup differently "
                         "from the serial session\n",
                         workers);
            return 1;
        }
    }
    bench::rule();

    jout.set("mode", std::string("scaling"));
    jout.set("queries", double(queries.size()));
    jout.set("serial_qps", serial_qps);
    jout.set("qps_4_workers", qps4);
    jout.set("hardware_threads", double(hw));

    if (hw >= 4) {
        if (qps4 <= 1.5 * serial_qps) {
            std::fprintf(stderr,
                         "FAIL: 4-worker qps %.1f is not > 1.5x serial "
                         "qps %.1f\n",
                         qps4, serial_qps);
            return 1;
        }
        std::printf("4-worker speedup %.2fx > 1.5x serial: OK\n",
                    qps4 / serial_qps);
    } else {
        std::printf("SKIP: %u hardware threads (< 4); scaling gate "
                    "needs a multi-core host, correctness checks ran\n",
                    hw);
    }
    return jout.write() ? 0 : 1;
}

/**
 * Async-front-end gate: open-loop and closed-loop arrival modes vs
 * the synchronous runBatch baseline. @return process exit code.
 */
int
runAsync(core::CompiledKernel &kernel, const rt::BufferPtr &stored_buf,
         const std::vector<rt::BufferPtr> &queries, int workers,
         bench::JsonOut &jout)
{
    std::vector<std::vector<rt::BufferPtr>> batches;
    batches.reserve(queries.size());
    for (const rt::BufferPtr &query : queries)
        batches.push_back({query, stored_buf});
    const double n = static_cast<double>(queries.size());

    // Serial reference for the bit-identity contract.
    core::ExecutionSession session =
        kernel.createSession({queries[0], stored_buf});
    std::vector<core::ExecutionResult> serial = session.runBatch(batches);

    auto check_identical =
        [&](const std::vector<core::ExecutionResult> &results,
            const char *mode) {
            for (std::size_t q = 0; q < batches.size(); ++q) {
                if (results[q].outputs[1].asBuffer()->toVector() !=
                        serial[q].outputs[1].asBuffer()->toVector() ||
                    !sameQueryCost(results[q].perf, serial[q].perf)) {
                    std::fprintf(stderr,
                                 "FAIL: %s result %zu diverges from "
                                 "serial session replay\n",
                                 mode, q);
                    return false;
                }
            }
            return true;
        };

    // Sync baseline: the same replicas driven by runBatch.
    double sync_qps = 0.0;
    {
        auto engine =
            kernel.createServingEngine({queries[0], stored_buf}, workers);
        Clock::time_point start = Clock::now();
        std::vector<core::ExecutionResult> results =
            engine->runBatch(batches);
        double wall_s = secondsSince(start);
        sync_qps = n / wall_s;
        if (!check_identical(results, "sync runBatch"))
            return 1;
    }

    // Open loop: submissions arrive as fast as the bounded queue
    // admits them; the dispatchers micro-batch whatever piles up.
    double open_qps = 0.0;
    core::AsyncServingStats open_stats;
    {
        core::AsyncServingOptions options;
        options.queueCapacity = 64;
        auto engine = kernel.createAsyncServingEngine(
            {queries[0], stored_buf}, workers, options);
        Clock::time_point start = Clock::now();
        std::vector<std::future<core::ExecutionResult>> futures =
            engine->submitBatch(batches);
        std::vector<core::ExecutionResult> results;
        results.reserve(futures.size());
        for (auto &future : futures)
            results.push_back(future.get());
        double wall_s = secondsSince(start);
        open_qps = n / wall_s;
        open_stats = engine->stats();
        if (!check_identical(results, "open-loop async"))
            return 1;
    }

    // Closed loop: W submitters, each waits for its completion before
    // the next arrival, so offered concurrency == W by construction.
    double closed_qps = 0.0;
    core::AsyncServingStats closed_stats;
    {
        core::AsyncServingOptions options;
        options.queueCapacity = 64;
        auto engine = kernel.createAsyncServingEngine(
            {queries[0], stored_buf}, workers, options);
        std::vector<core::ExecutionResult> results(batches.size());
        std::vector<std::thread> submitters;
        std::atomic<std::size_t> cursor{0};
        Clock::time_point start = Clock::now();
        for (int w = 0; w < workers; ++w)
            submitters.emplace_back([&] {
                for (;;) {
                    std::size_t idx = cursor.fetch_add(1);
                    if (idx >= batches.size())
                        return;
                    results[idx] = engine->submit(batches[idx]).get();
                }
            });
        for (auto &t : submitters)
            t.join();
        double wall_s = secondsSince(start);
        closed_qps = n / wall_s;
        closed_stats = engine->stats();
        if (!check_identical(results, "closed-loop async"))
            return 1;
    }

    std::printf("Async serving: %zu queries, %d workers/replicas\n",
                queries.size(), workers);
    bench::rule();
    std::printf("%-22s %12s %12s %14s %14s\n", "mode", "wall qps",
                "vs sync", "p50 wait (us)", "p95 exec (us)");
    std::printf("%-22s %12.1f %12s %14s %14s\n", "sync runBatch",
                sync_qps, "1.00x", "-", "-");
    std::printf("%-22s %12.1f %11.2fx %14.1f %14.1f\n", "async open-loop",
                open_qps, open_qps / sync_qps,
                open_stats.p50EnqueueWaitUs, open_stats.p95ExecuteUs);
    std::printf("%-22s %12.1f %11.2fx %14.1f %14.1f\n",
                "async closed-loop", closed_qps, closed_qps / sync_qps,
                closed_stats.p50EnqueueWaitUs,
                closed_stats.p95ExecuteUs);
    bench::rule();
    std::printf("open-loop micro-batching: %lld fused windows covering "
                "%lld queries, %lld single dispatches\n",
                static_cast<long long>(open_stats.fusedWindows),
                static_cast<long long>(open_stats.fusedQueries),
                static_cast<long long>(open_stats.singleDispatches));
    std::printf("per-query reports bit-identical to serial replay "
                "(all modes): OK\n");

    jout.set("mode", std::string("async"));
    jout.set("queries", n);
    jout.set("workers", double(workers));
    jout.set("sync_qps", sync_qps);
    jout.set("async_open_loop_qps", open_qps);
    jout.set("async_closed_loop_qps", closed_qps);
    jout.set("open_loop_vs_sync", open_qps / sync_qps);
    jout.set("open_fused_windows", double(open_stats.fusedWindows));
    jout.set("open_fused_queries", double(open_stats.fusedQueries));
    jout.set("open_p50_wait_us", open_stats.p50EnqueueWaitUs);
    jout.set("open_p95_wait_us", open_stats.p95EnqueueWaitUs);
    jout.set("open_p50_exec_us", open_stats.p50ExecuteUs);
    jout.set("open_p95_exec_us", open_stats.p95ExecuteUs);

    // The qps gate needs enough queries to average out scheduler
    // noise; tiny sanitizer smoke runs (correctness-only) skip it,
    // like the 5x session gate skips below 64 queries.
    if (queries.size() >= 32) {
        if (open_qps < 0.9 * sync_qps) {
            std::fprintf(stderr,
                         "FAIL: open-loop async qps %.1f fell below "
                         "0.9x the sync runBatch qps %.1f at %d "
                         "workers\n",
                         open_qps, sync_qps, workers);
            return 1;
        }
        std::printf("open-loop async qps %.2fx sync (gate: >= 0.9x): "
                    "OK\n",
                    open_qps / sync_qps);
    } else {
        std::printf("SKIP: %zu queries (< 32) is below the qps-gate "
                    "sample floor; bit-identity checks ran\n",
                    queries.size());
    }
    return jout.write() ? 0 : 1;
}

/**
 * Chaos leg: availability and throughput under seeded transient fault
 * injection. The async front end serves the stream over a
 * ServingEngine carrying a bounded-backoff retry policy while a
 * sim::FaultInjector fails a fraction of searches at entry; every
 * query that completes must stay bit-identical to the fault-free
 * serial reference (recovery may cost latency, never correctness).
 * Sweeps @p rates and self-gates availability >= 99% at rates
 * <= 0.1% -- the bound the CI perf job enforces on BENCH_chaos.json.
 * @return process exit code.
 */
int
runChaos(core::CompiledKernel &kernel, const rt::BufferPtr &stored_buf,
         const std::vector<rt::BufferPtr> &queries, int workers,
         const std::vector<double> &rates, bench::JsonOut &jout)
{
    std::vector<std::vector<rt::BufferPtr>> batches;
    batches.reserve(queries.size());
    for (const rt::BufferPtr &query : queries)
        batches.push_back({query, stored_buf});
    const double n = static_cast<double>(queries.size());

    // Fault-free serial reference for the bit-identity contract.
    core::ExecutionSession session =
        kernel.createSession({queries[0], stored_buf});
    std::vector<core::ExecutionResult> serial = session.runBatch(batches);

    constexpr int kAttempts = 4;
    std::printf("Chaos serving: %zu queries, %d workers/replicas, "
                "retry budget %d attempts\n",
                queries.size(), workers, kAttempts);
    bench::rule();
    std::printf("%-12s %12s %14s %10s %10s %10s\n", "fault rate",
                "wall qps", "availability", "injected", "retries",
                "failed");

    jout.set("mode", std::string("chaos"));
    jout.set("queries", n);
    jout.set("workers", double(workers));
    jout.set("retry_attempts", double(kAttempts));

    bool gate_ok = true;
    for (std::size_t r = 0; r < rates.size(); ++r) {
        const double rate = rates[r];
        // One deterministic injector per leg: seed varies by leg index
        // so the legs draw independent fault streams, yet a failing
        // leg replays exactly from its printed rate + position.
        sim::FaultSpec spec;
        spec.seed = 0xC4A0500ull + r;
        spec.transientRate = rate;
        auto injector = std::make_shared<sim::FaultInjector>(spec);

        core::AsyncServingOptions options;
        options.queueCapacity = 64;
        auto engine = kernel.createAsyncServingEngine(
            {queries[0], stored_buf}, workers, options);
        auto *serving =
            dynamic_cast<core::ServingEngine *>(&engine->backend());
        if (!serving) {
            std::fprintf(stderr,
                         "FAIL: async backend is not a ServingEngine\n");
            return 1;
        }
        core::RetryPolicy policy;
        policy.maxAttempts = kAttempts;
        policy.backoffUs = 50;
        serving->setRetryPolicy(policy);
        if (rate > 0.0)
            serving->attachFaultInjector(injector);

        std::size_t ok = 0;
        std::size_t failed = 0;
        Clock::time_point start = Clock::now();
        std::vector<std::future<core::ExecutionResult>> futures =
            engine->submitBatch(batches);
        for (std::size_t q = 0; q < futures.size(); ++q) {
            try {
                core::ExecutionResult result = futures[q].get();
                if (result.outputs[1].asBuffer()->toVector() !=
                        serial[q].outputs[1].asBuffer()->toVector() ||
                    !sameQueryCost(result.perf, serial[q].perf)) {
                    std::fprintf(stderr,
                                 "FAIL: recovered result %zu diverges "
                                 "from the fault-free serial replay at "
                                 "fault rate %g\n",
                                 q, rate);
                    return 1;
                }
                ++ok;
            } catch (const CompilerError &) {
                ++failed; // retry budget exhausted for this query
            }
        }
        double wall_s = secondsSince(start);
        double qps = n / wall_s;
        double availability = static_cast<double>(ok) / n;
        core::AsyncServingStats stats = engine->stats();
        std::int64_t injected = injector->stats().transientsFired;

        std::printf("%-12g %12.1f %13.1f%% %10lld %10lld %10zu\n", rate,
                    qps, availability * 100.0,
                    static_cast<long long>(injected),
                    static_cast<long long>(stats.serving.retries),
                    failed);

        char prefix[32];
        std::snprintf(prefix, sizeof prefix, "rate_%g_", rate);
        jout.set(std::string(prefix) + "qps", qps);
        jout.set(std::string(prefix) + "availability", availability);
        jout.set(std::string(prefix) + "injected", double(injected));
        jout.set(std::string(prefix) + "retries",
                 double(stats.serving.retries));
        jout.set(std::string(prefix) + "failed", double(failed));

        // The CI chaos gate: at modest fault rates the retry budget
        // must absorb essentially everything. A serve touches ~128
        // searches (one per stored row), so at 0.1% per search an
        // attempt fails with p ~= 0.12 and a query exhausts all 4
        // attempts with p ~= 2e-4 -- two orders of magnitude inside
        // the 1% failure allowance, so the gate is not flaky.
        if (rate <= 0.001 && availability < 0.99) {
            std::fprintf(stderr,
                         "FAIL: availability %.2f%% at fault rate %g "
                         "fell below the 99%% gate\n",
                         availability * 100.0, rate);
            gate_ok = false;
        }
    }
    bench::rule();
    if (!gate_ok)
        return 1;
    std::printf("completed results bit-identical to the fault-free "
                "serial replay (all rates): OK\n");
    return jout.write() ? 0 : 1;
}

/**
 * Sharded-serving sweep: the stream served through core::ShardedEngine
 * at 1, 2, 4, ... up to @p max_shards shards, closed-loop at
 * @p workers submitters (replicasPerShard == workers, so offered
 * concurrency has a replica to land on in every shard). @return
 * process exit code.
 */
int
runSharded(const core::CompilerOptions &options, const std::string &source,
           core::CompiledKernel &kernel, const rt::BufferPtr &stored_buf,
           const std::vector<rt::BufferPtr> &queries, int max_shards,
           int workers, bench::JsonOut &jout)
{
    std::vector<std::vector<rt::BufferPtr>> batches;
    batches.reserve(queries.size());
    for (const rt::BufferPtr &query : queries)
        batches.push_back({query, stored_buf});
    const double n = static_cast<double>(queries.size());

    // Serial single-device reference: the bit-identity baseline and
    // the qps denominator.
    core::ExecutionSession session =
        kernel.createSession({queries[0], stored_buf});
    Clock::time_point start = Clock::now();
    std::vector<core::ExecutionResult> serial = session.runBatch(batches);
    double serial_qps = n / secondsSince(start);

    // 1, 2, 4, ... capped at max_shards (always swept last so the
    // exact M the caller asked for is measured even off the power-of-2
    // grid).
    std::vector<int> sweep;
    for (int s = 1; s < max_shards; s *= 2)
        sweep.push_back(s);
    sweep.push_back(max_shards);

    std::printf("Sharded serving: %zu queries, %d closed-loop "
                "submitters, replicasPerShard = %d\n",
                queries.size(), workers, workers);
    bench::rule();
    std::printf("%-10s %14s %12s %12s %12s\n", "shards", "wall qps",
                "vs serial", "p50 (us)", "p95 (us)");
    std::printf("%-10s %14.1f %12s %12s %12s\n", "serial", serial_qps,
                "1.00x", "-", "-");

    jout.set("mode", std::string("sharded"));
    jout.set("queries", n);
    jout.set("workers", double(workers));
    jout.set("max_shards", double(max_shards));
    jout.set("serial_qps", serial_qps);

    for (int shards : sweep) {
        core::ShardedEngineOptions sharding;
        sharding.shards = shards;
        sharding.replicasPerShard = workers;
        std::unique_ptr<core::ShardedEngine> engine;
        try {
            engine = std::make_unique<core::ShardedEngine>(
                options, source, batches[0], sharding);
        } catch (const CompilerError &err) {
            std::fprintf(stderr,
                         "FAIL: cannot build the %d-shard engine: %s\n",
                         shards, err.what());
            return 1;
        }

        std::vector<core::ExecutionResult> results(batches.size());
        std::vector<std::thread> submitters;
        std::atomic<std::size_t> cursor{0};
        start = Clock::now();
        for (int w = 0; w < workers; ++w)
            submitters.emplace_back([&] {
                for (;;) {
                    std::size_t idx = cursor.fetch_add(1);
                    if (idx >= batches.size())
                        return;
                    results[idx] = engine->serve(batches[idx]);
                }
            });
        for (auto &t : submitters)
            t.join();
        double qps = n / secondsSince(start);
        core::ServingStats stats = engine->stats();
        std::printf("%-10d %14.1f %11.2fx %12.1f %12.1f\n", shards, qps,
                    qps / serial_qps, stats.p50LatencyUs,
                    stats.p95LatencyUs);

        // The contract the shard split must never bend: merged top-k
        // values AND global indices bit-identical to the single big
        // device, per query.
        for (std::size_t q = 0; q < batches.size(); ++q) {
            if (results[q].outputs[0].asBuffer()->toVector() !=
                    serial[q].outputs[0].asBuffer()->toVector() ||
                results[q].outputs[1].asBuffer()->toVector() !=
                    serial[q].outputs[1].asBuffer()->toVector()) {
                std::fprintf(stderr,
                             "FAIL: %d-shard result %zu diverges from "
                             "the single-device session\n",
                             shards, q);
                return 1;
            }
            // Aggregated latency is the max over shards; each shard
            // searches fewer rows than the whole device, so the
            // sharded query can never be simulated-slower.
            if (results[q].perf.queryLatencyNs >
                serial[q].perf.queryLatencyNs) {
                std::fprintf(stderr,
                             "FAIL: %d-shard query %zu is simulated-"
                             "slower than the single device\n",
                             shards, q);
                return 1;
            }
        }

        jout.set("qps_shards_" + std::to_string(shards), qps);
        jout.set("speedup_shards_" + std::to_string(shards),
                 qps / serial_qps);
        if (shards == max_shards)
            jout.setReport("sharded_aggregate", stats.aggregate);
    }
    bench::rule();
    std::printf("merged outputs bit-identical to the single device "
                "(all shard counts): OK\n");
    return jout.write() ? 0 : 1;
}

/**
 * Trace-driven open-loop replay: re-inject the "admit" arrival
 * timestamps recorded in @p replay_path (a c4cam-trace-v1 document)
 * through an AsyncServingEngine. @return process exit code.
 */
int
runReplay(core::CompiledKernel &kernel, const rt::BufferPtr &stored_buf,
          const std::vector<std::vector<float>> &stored,
          const std::string &replay_path, double time_scale,
          long query_cap, int workers, const std::string &trace_out,
          bench::JsonOut &jout)
{
    // Arrival schedule: the start_us of every "admit" span, in record
    // order. Only the offsets matter -- the first arrival anchors t=0.
    std::vector<double> arrivals_us;
    try {
        JsonValue doc = parseJsonFile(replay_path);
        if (doc.getString("schema", "") != "c4cam-trace-v1") {
            std::fprintf(stderr,
                         "--replay: %s is not a c4cam-trace-v1 "
                         "document\n",
                         replay_path.c_str());
            return 1;
        }
        const JsonValue *spans = doc.find("spans");
        if (spans) {
            for (const JsonValue &span : spans->asArray())
                if (span.getString("name", "") == "admit")
                    arrivals_us.push_back(
                        span.find("start_us")->asNumber());
        }
    } catch (const CompilerError &err) {
        std::fprintf(stderr, "--replay: cannot read %s: %s\n",
                     replay_path.c_str(), err.what());
        return 1;
    }
    if (arrivals_us.empty()) {
        std::fprintf(stderr,
                     "--replay: %s contains no \"admit\" spans to "
                     "replay\n",
                     replay_path.c_str());
        return 1;
    }
    std::sort(arrivals_us.begin(), arrivals_us.end());
    if (query_cap > 0 &&
        arrivals_us.size() > static_cast<std::size_t>(query_cap))
        arrivals_us.resize(static_cast<std::size_t>(query_cap));
    const std::size_t n = arrivals_us.size();
    const double base_us = arrivals_us.front();
    std::vector<double> offsets_us(n);
    for (std::size_t i = 0; i < n; ++i)
        offsets_us[i] = (arrivals_us[i] - base_us) * time_scale;
    const double span_s = offsets_us.back() * 1e-6;

    // One query buffer per arrival (stored rows cycled); the serial
    // reference is computed once per distinct row.
    const std::size_t rows = stored.size();
    std::vector<std::vector<rt::BufferPtr>> batches;
    batches.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        batches.push_back(
            {rt::Buffer::fromMatrix({stored[i % rows]}), stored_buf});
    core::ExecutionSession session = kernel.createSession(batches[0]);
    std::vector<core::ExecutionResult> row_ref(std::min(rows, n));
    for (std::size_t r = 0; r < row_ref.size(); ++r)
        row_ref[r] = session.runQuery(batches[r]);

    std::unique_ptr<support::TraceCollector> collector;
    if (!trace_out.empty())
        collector = std::make_unique<support::TraceCollector>();

    // Open loop: a single injector offers query i at its recorded
    // offset, regardless of completions. The block policy makes the
    // queue bound the only backpressure, so a recorded burst that
    // outruns the replicas piles up in the admission queue exactly
    // like it did when the trace was taken.
    core::AsyncServingOptions options;
    options.queueCapacity = 64;
    options.trace = collector.get();
    auto engine =
        kernel.createAsyncServingEngine(batches[0], workers, options);
    std::vector<std::future<core::ExecutionResult>> futures;
    futures.reserve(n);
    Clock::time_point start = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
        std::this_thread::sleep_until(
            start + std::chrono::microseconds(
                        static_cast<std::int64_t>(offsets_us[i])));
        futures.push_back(engine->submit(batches[i]));
    }
    double inject_s = secondsSince(start);
    std::vector<core::ExecutionResult> results;
    results.reserve(n);
    for (auto &future : futures)
        results.push_back(future.get());
    double wall_s = secondsSince(start);
    engine->drain();
    core::AsyncServingStats stats = engine->stats();

    for (std::size_t i = 0; i < n; ++i) {
        const core::ExecutionResult &ref = row_ref[i % rows];
        if (results[i].outputs[1].asBuffer()->toVector() !=
                ref.outputs[1].asBuffer()->toVector() ||
            !sameQueryCost(results[i].perf, ref.perf)) {
            std::fprintf(stderr,
                         "FAIL: replayed query %zu diverges from "
                         "serial session replay\n",
                         i);
            return 1;
        }
    }

    const double offered_qps =
        span_s > 0.0 ? static_cast<double>(n) / span_s : 0.0;
    const double achieved_qps = static_cast<double>(n) / wall_s;
    std::printf("Trace replay: %zu arrivals from %s over %.3f s "
                "(time scale %g), %d workers\n",
                n, replay_path.c_str(), span_s, time_scale, workers);
    bench::rule();
    std::printf("%-26s %14.1f\n", "offered qps (trace)", offered_qps);
    std::printf("%-26s %14.1f\n", "achieved qps", achieved_qps);
    std::printf("%-26s %14.3f\n", "injection wall (s)", inject_s);
    std::printf("%-26s %14.3f\n", "completion wall (s)", wall_s);
    std::printf("%-26s %8.1f / %8.1f\n", "enqueue-wait p50/p95 (us)",
                stats.p50EnqueueWaitUs, stats.p95EnqueueWaitUs);
    std::printf("%-26s %8.1f / %8.1f\n", "execute p50/p95 (us)",
                stats.p50ExecuteUs, stats.p95ExecuteUs);
    bench::rule();
    std::printf("micro-batching under replayed bursts: %lld fused "
                "windows covering %lld queries, %lld single "
                "dispatches\n",
                static_cast<long long>(stats.fusedWindows),
                static_cast<long long>(stats.fusedQueries),
                static_cast<long long>(stats.singleDispatches));
    std::printf("per-query reports bit-identical to serial replay: "
                "OK\n");

    if (collector && !collector->writeFile(trace_out)) {
        std::fprintf(stderr, "cannot write --trace-out file '%s'\n",
                     trace_out.c_str());
        return 1;
    }
    if (collector)
        std::printf("replay trace: %zu spans -> %s\n", collector->size(),
                    trace_out.c_str());

    jout.set("mode", std::string("replay"));
    jout.set("trace", replay_path);
    jout.set("queries", double(n));
    jout.set("time_scale", time_scale);
    jout.set("trace_span_s", span_s);
    jout.set("offered_qps", offered_qps);
    jout.set("achieved_qps", achieved_qps);
    jout.set("completion_wall_s", wall_s);
    jout.set("p50_enqueue_wait_us", stats.p50EnqueueWaitUs);
    jout.set("p95_enqueue_wait_us", stats.p95EnqueueWaitUs);
    jout.set("p50_execute_us", stats.p50ExecuteUs);
    jout.set("p95_execute_us", stats.p95ExecuteUs);
    jout.set("fused_windows", double(stats.fusedWindows));
    jout.set("fused_queries", double(stats.fusedQueries));
    jout.set("single_dispatches", double(stats.singleDispatches));
    return jout.write() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    long long num_queries = 64;
    bool queries_set = false;
    long long workers = 4;
    long long shards = 0;
    bool shards_set = false;
    bool scaling = false;
    bool plan_vs_treewalk = false;
    bool async = false;
    bool chaos = false;
    bool fused_model = false;
    double fault_rate = 0.0;
    bool fault_rate_set = false;
    std::string replay_path;
    double time_scale = 1.0;
    bool time_scale_set = false;
    std::string trace_out;
    bench::JsonOut jout;
    auto usage = [] {
        std::fprintf(stderr,
                     "usage: bench_serving_throughput [--queries N] "
                     "[--scaling] [--plan-vs-treewalk] [--async] "
                     "[--fused-model] "
                     "[--shards M] [--chaos] [--fault-rate X] "
                     "[--replay TRACE.json] [--time-scale S] "
                     "[--trace-out FILE] [--workers W] "
                     "[--json-out FILE]\n");
        return 2;
    };
    auto bad_flag = [&usage](const char *flag, const char *value) {
        std::fprintf(stderr, "%s: bad value: %s\n", flag,
                     value ? value : "(missing)");
        return usage();
    };
    for (int i = 1; i < argc; ++i) {
        if (jout.tryParseArg(argc, argv, i))
            continue;
        support::FlagParse fp;
        if ((fp = support::parseIntFlag(argc, argv, i, "--queries",
                                        num_queries, 1)) !=
            support::FlagParse::NoMatch) {
            if (fp == support::FlagParse::Bad)
                return bad_flag("--queries",
                                i < argc ? argv[i] : nullptr);
            queries_set = true;
        } else if ((fp = support::parseIntFlag(argc, argv, i,
                                               "--workers", workers, 1,
                                               256)) !=
                   support::FlagParse::NoMatch) {
            if (fp == support::FlagParse::Bad)
                return bad_flag("--workers",
                                i < argc ? argv[i] : nullptr);
        } else if ((fp = support::parseIntFlag(argc, argv, i,
                                               "--shards", shards, 1,
                                               1024)) !=
                   support::FlagParse::NoMatch) {
            if (fp == support::FlagParse::Bad)
                return bad_flag("--shards",
                                i < argc ? argv[i] : nullptr);
            shards_set = true;
        } else if ((fp = support::parseDoubleFlag(argc, argv, i,
                                                  "--fault-rate",
                                                  fault_rate, 0.0, 1.0)) !=
                   support::FlagParse::NoMatch) {
            if (fp == support::FlagParse::Bad)
                return bad_flag("--fault-rate",
                                i < argc ? argv[i] : nullptr);
            fault_rate_set = true;
        } else if ((fp = support::parseDoubleFlag(
                        argc, argv, i, "--time-scale", time_scale,
                        std::numeric_limits<double>::min())) !=
                   support::FlagParse::NoMatch) {
            if (fp == support::FlagParse::Bad)
                return bad_flag("--time-scale",
                                i < argc ? argv[i] : nullptr);
            time_scale_set = true;
        } else if (std::strcmp(argv[i], "--scaling") == 0) {
            scaling = true;
        } else if (std::strcmp(argv[i], "--async") == 0) {
            async = true;
        } else if (std::strcmp(argv[i], "--chaos") == 0) {
            chaos = true;
        } else if (std::strcmp(argv[i], "--fused-model") == 0) {
            fused_model = true;
        } else if (std::strcmp(argv[i], "--plan-vs-treewalk") == 0) {
            plan_vs_treewalk = true;
        } else if (std::strcmp(argv[i], "--replay") == 0) {
            if (i + 1 >= argc)
                return usage();
            replay_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-out") == 0) {
            if (i + 1 >= argc)
                return usage();
            trace_out = argv[++i];
        } else {
            return usage();
        }
    }
    if (!replay_path.empty() &&
        (scaling || plan_vs_treewalk || async || shards_set || chaos ||
         fused_model)) {
        std::fprintf(stderr,
                     "--replay is its own mode; drop --scaling/"
                     "--plan-vs-treewalk/--async/--shards/--chaos/"
                     "--fused-model\n");
        return usage();
    }
    if (shards_set &&
        (scaling || plan_vs_treewalk || async || chaos || fused_model)) {
        std::fprintf(stderr,
                     "--shards is its own mode; drop --scaling/"
                     "--plan-vs-treewalk/--async/--chaos/"
                     "--fused-model\n");
        return usage();
    }
    if (chaos && (scaling || plan_vs_treewalk || async || fused_model)) {
        std::fprintf(stderr,
                     "--chaos is its own mode; drop --scaling/"
                     "--plan-vs-treewalk/--async/--fused-model\n");
        return usage();
    }
    if (fused_model && (scaling || plan_vs_treewalk || async)) {
        std::fprintf(stderr,
                     "--fused-model is its own mode; drop --scaling/"
                     "--plan-vs-treewalk/--async\n");
        return usage();
    }
    if (fault_rate_set && !chaos) {
        std::fprintf(stderr, "--fault-rate requires --chaos\n");
        return usage();
    }
    if (replay_path.empty() && (time_scale_set || !trace_out.empty())) {
        std::fprintf(stderr, "--time-scale/--trace-out require "
                             "--replay\n");
        return usage();
    }
    if (plan_vs_treewalk)
        return runPlanVsTreeWalk(static_cast<long>(num_queries), jout);

    // A small HDC-style workload: 128 stored vectors of 1024 bits,
    // one query per serving request.
    const std::int64_t rows = 128;
    const std::int64_t dims = 1024;
    arch::ArchSpec spec = arch::ArchSpec::dseSetup(32, arch::OptTarget::Base);

    core::CompilerOptions options;
    options.spec = spec;
    core::Compiler compiler(options);
    const std::string source = apps::dotSimilaritySource(1, rows, dims, 1);
    core::CompiledKernel kernel = compiler.compileTorchScript(source);

    Rng rng(123);
    std::vector<std::vector<float>> stored(
        static_cast<std::size_t>(rows),
        std::vector<float>(static_cast<std::size_t>(dims)));
    for (auto &row : stored)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    rt::BufferPtr stored_buf = rt::Buffer::fromMatrix(stored);

    if (!replay_path.empty())
        return runReplay(kernel, stored_buf, stored, replay_path,
                         time_scale,
                         queries_set ? static_cast<long>(num_queries) : 0,
                         static_cast<int>(workers), trace_out, jout);

    std::vector<rt::BufferPtr> queries;
    queries.reserve(static_cast<std::size_t>(num_queries));
    for (long long q = 0; q < num_queries; ++q)
        queries.push_back(rt::Buffer::fromMatrix(
            {stored[static_cast<std::size_t>(q) % stored.size()]}));

    if (shards_set)
        return runSharded(options, source, kernel, stored_buf, queries,
                          static_cast<int>(shards),
                          static_cast<int>(workers), jout);
    if (fused_model)
        return runFusedModel(options, source, kernel, stored_buf,
                             queries, jout);
    if (chaos) {
        // 0 is always swept first: the fault-free leg both anchors the
        // qps column and proves the chaos harness itself is clean.
        std::vector<double> rates =
            fault_rate_set ? std::vector<double>{0.0, fault_rate}
                           : std::vector<double>{0.0, 0.001, 0.01};
        return runChaos(kernel, stored_buf, queries,
                        static_cast<int>(workers), rates, jout);
    }
    if (scaling)
        return runScaling(kernel, stored_buf, queries, jout);
    if (async)
        return runAsync(kernel, stored_buf, queries,
                        static_cast<int>(workers), jout);

    // (a) naive serving: one kernel.run() per query (setup every time).
    double naive_sim_ns = 0.0;
    std::vector<std::int64_t> naive_answers;
    Clock::time_point start = Clock::now();
    for (const rt::BufferPtr &query : queries) {
        core::ExecutionResult r = kernel.run({query, stored_buf});
        naive_sim_ns += r.perf.setupLatencyNs + r.perf.queryLatencyNs;
        naive_answers.push_back(r.outputs[1].asBuffer()->atInt({0, 0}));
    }
    double naive_wall_s = secondsSince(start);

    // Reference for the per-query cost invariant, taken outside the
    // timed serving windows.
    core::ExecutionResult single = kernel.run({queries[0], stored_buf});

    // (b) persistent session: setup once, then query-phase only.
    start = Clock::now();
    core::ExecutionSession session =
        kernel.createSession({queries[0], stored_buf});
    std::vector<std::int64_t> session_answers;
    double per_query_mismatch = 0.0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
        core::ExecutionResult r = session.runQuery({queries[q], stored_buf});
        session_answers.push_back(r.outputs[1].asBuffer()->atInt({0, 0}));
        // Invariant: a served query costs exactly what single-shot
        // reports for its query phase (setup excluded).
        if (q == 0)
            per_query_mismatch =
                std::abs(r.perf.queryLatencyNs -
                         single.perf.queryLatencyNs) +
                std::abs(r.perf.queryEnergyPj - single.perf.queryEnergyPj);
    }
    sim::PerfReport total = session.aggregateReport();
    double session_sim_ns = total.setupLatencyNs + total.queryLatencyNs;
    double session_wall_s = secondsSince(start);

    double n = static_cast<double>(num_queries);
    double naive_qps = n / (naive_sim_ns * 1e-9);
    double session_qps = n / (session_sim_ns * 1e-9);
    double sim_speedup = naive_qps > 0.0 ? session_qps / naive_qps : 0.0;
    double wall_speedup =
        session_wall_s > 0.0 ? naive_wall_s / session_wall_s : 0.0;

    std::printf("Serving throughput: %lld queries, %lld x %lld stored\n",
                num_queries, static_cast<long long>(rows),
                static_cast<long long>(dims));
    bench::rule();
    std::printf("%-28s %16s %16s\n", "", "per-query run()", "session");
    std::printf("%-28s %16.1f %16.1f\n", "simulated total (us)",
                naive_sim_ns * 1e-3, session_sim_ns * 1e-3);
    std::printf("%-28s %16.0f %16.0f\n", "simulated queries/sec",
                naive_qps, session_qps);
    std::printf("%-28s %16.3f %16.3f\n", "host wall-clock (s)",
                naive_wall_s, session_wall_s);
    bench::rule();
    std::printf("setup %.1f us once, then %.3f us/query "
                "(amortized %.3f us/query)\n",
                total.setupLatencyNs * 1e-3,
                total.avgQueryLatencyNs() * 1e-3,
                total.amortizedLatencyNs() * 1e-3);
    std::printf("simulated speedup: %.1fx, wall-clock speedup: %.1fx\n",
                sim_speedup, wall_speedup);

    if (naive_answers != session_answers) {
        std::fprintf(stderr,
                     "FAIL: session answers diverge from per-query runs\n");
        return 1;
    }
    if (per_query_mismatch != 0.0) {
        std::fprintf(stderr,
                     "FAIL: per-query cost differs from single-shot by "
                     "%g\n",
                     per_query_mismatch);
        return 1;
    }
    if (num_queries >= 64 && sim_speedup < 5.0) {
        std::fprintf(stderr,
                     "FAIL: expected >= 5x simulated speedup, got %.2fx\n",
                     sim_speedup);
        return 1;
    }

    jout.set("mode", std::string("serving"));
    jout.set("queries", n);
    jout.set("naive_sim_qps", naive_qps);
    jout.set("session_sim_qps", session_qps);
    jout.set("sim_speedup", sim_speedup);
    jout.set("naive_wall_s", naive_wall_s);
    jout.set("session_wall_s", session_wall_s);
    jout.set("wall_speedup", wall_speedup);
    jout.setReport("session_aggregate", total);
    return jout.write() ? 0 : 1;
}
