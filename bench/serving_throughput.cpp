/**
 * @file
 * Serving-throughput bench: persistent sessions vs per-query runs.
 *
 * The paper's execution model (§III-D) pays the subarray-programming
 * setup once and then serves queries at search latency. This bench
 * quantifies what that buys a serving deployment: it serves the same
 * query stream (a) naively, one CompiledKernel::run() per query --
 * re-allocating and re-programming the device every time -- and (b)
 * through one ExecutionSession created once.
 *
 * Reported: simulated queries/sec (the paper's metric; deterministic)
 * and host wall-clock queries/sec (the simulator does strictly less
 * work per served query in session mode). The bench exits non-zero if
 * the session path is not at least 5x faster in simulated throughput
 * or if any result/cost invariant breaks, so CI can smoke-run it.
 *
 *   bench_serving_throughput [--queries N]   (default 64)
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "BenchUtils.h"
#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "support/Rng.h"

using namespace c4cam;
using Clock = std::chrono::steady_clock;

namespace {

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

int
main(int argc, char **argv)
{
    long num_queries = 64;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
            char *end = nullptr;
            num_queries = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr, "--queries: not a number: %s\n",
                             argv[i]);
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: bench_serving_throughput [--queries N]\n");
            return 2;
        }
    }
    if (num_queries < 1) {
        std::fprintf(stderr, "--queries must be >= 1\n");
        return 2;
    }

    // A small HDC-style workload: 128 stored vectors of 1024 bits,
    // one query per serving request.
    const std::int64_t rows = 128;
    const std::int64_t dims = 1024;
    arch::ArchSpec spec = arch::ArchSpec::dseSetup(32, arch::OptTarget::Base);

    core::CompilerOptions options;
    options.spec = spec;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(1, rows, dims, 1));

    Rng rng(123);
    std::vector<std::vector<float>> stored(
        static_cast<std::size_t>(rows),
        std::vector<float>(static_cast<std::size_t>(dims)));
    for (auto &row : stored)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    rt::BufferPtr stored_buf = rt::Buffer::fromMatrix(stored);

    std::vector<rt::BufferPtr> queries;
    queries.reserve(static_cast<std::size_t>(num_queries));
    for (long q = 0; q < num_queries; ++q)
        queries.push_back(rt::Buffer::fromMatrix(
            {stored[static_cast<std::size_t>(q) % stored.size()]}));

    // (a) naive serving: one kernel.run() per query (setup every time).
    double naive_sim_ns = 0.0;
    std::vector<std::int64_t> naive_answers;
    Clock::time_point start = Clock::now();
    for (const rt::BufferPtr &query : queries) {
        core::ExecutionResult r = kernel.run({query, stored_buf});
        naive_sim_ns += r.perf.setupLatencyNs + r.perf.queryLatencyNs;
        naive_answers.push_back(r.outputs[1].asBuffer()->atInt({0, 0}));
    }
    double naive_wall_s = secondsSince(start);

    // Reference for the per-query cost invariant, taken outside the
    // timed serving windows.
    core::ExecutionResult single = kernel.run({queries[0], stored_buf});

    // (b) persistent session: setup once, then query-phase only.
    start = Clock::now();
    core::ExecutionSession session =
        kernel.createSession({queries[0], stored_buf});
    std::vector<std::int64_t> session_answers;
    double per_query_mismatch = 0.0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
        core::ExecutionResult r = session.runQuery({queries[q], stored_buf});
        session_answers.push_back(r.outputs[1].asBuffer()->atInt({0, 0}));
        // Invariant: a served query costs exactly what single-shot
        // reports for its query phase (setup excluded).
        if (q == 0)
            per_query_mismatch =
                std::abs(r.perf.queryLatencyNs -
                         single.perf.queryLatencyNs) +
                std::abs(r.perf.queryEnergyPj - single.perf.queryEnergyPj);
    }
    sim::PerfReport total = session.aggregateReport();
    double session_sim_ns = total.setupLatencyNs + total.queryLatencyNs;
    double session_wall_s = secondsSince(start);

    double n = static_cast<double>(num_queries);
    double naive_qps = n / (naive_sim_ns * 1e-9);
    double session_qps = n / (session_sim_ns * 1e-9);
    double sim_speedup = naive_qps > 0.0 ? session_qps / naive_qps : 0.0;
    double wall_speedup =
        session_wall_s > 0.0 ? naive_wall_s / session_wall_s : 0.0;

    std::printf("Serving throughput: %ld queries, %lld x %lld stored\n",
                num_queries, static_cast<long long>(rows),
                static_cast<long long>(dims));
    bench::rule();
    std::printf("%-28s %16s %16s\n", "", "per-query run()", "session");
    std::printf("%-28s %16.1f %16.1f\n", "simulated total (us)",
                naive_sim_ns * 1e-3, session_sim_ns * 1e-3);
    std::printf("%-28s %16.0f %16.0f\n", "simulated queries/sec",
                naive_qps, session_qps);
    std::printf("%-28s %16.3f %16.3f\n", "host wall-clock (s)",
                naive_wall_s, session_wall_s);
    bench::rule();
    std::printf("setup %.1f us once, then %.3f us/query "
                "(amortized %.3f us/query)\n",
                total.setupLatencyNs * 1e-3,
                total.avgQueryLatencyNs() * 1e-3,
                total.amortizedLatencyNs() * 1e-3);
    std::printf("simulated speedup: %.1fx, wall-clock speedup: %.1fx\n",
                sim_speedup, wall_speedup);

    if (naive_answers != session_answers) {
        std::fprintf(stderr,
                     "FAIL: session answers diverge from per-query runs\n");
        return 1;
    }
    if (per_query_mismatch != 0.0) {
        std::fprintf(stderr,
                     "FAIL: per-query cost differs from single-shot by "
                     "%g\n",
                     per_query_mismatch);
        return 1;
    }
    if (num_queries >= 64 && sim_speedup < 5.0) {
        std::fprintf(stderr,
                     "FAIL: expected >= 5x simulated speedup, got %.2fx\n",
                     sim_speedup);
        return 1;
    }
    return 0;
}
