/**
 * @file
 * Table II: EDP (nJ*s) and power (W) for KNN execution on the
 * Pneumonia dataset, cam-based vs cam-power, subarray sizes 16..256.
 *
 * Paper values (shape to reproduce):
 *              16x16  32x32  64x64 128x128 256x256
 *  EDP based    0.75   0.30   0.15   0.08    0.05
 *  EDP power    1.32   0.61   0.44   0.29    0.23
 *  P   based   44.14  16.30   5.97   2.34    0.86
 *  P   power   25.23   8.15   2.10   0.66    0.19
 * i.e. EDP and power fall with size; cam-power halves power (or
 * better) at the cost of higher EDP.
 */

#include <cstdio>
#include <vector>

#include "BenchUtils.h"
#include "apps/Datasets.h"
#include "apps/Knn.h"

using namespace c4cam;
using namespace c4cam::bench;

namespace {

Measurement
runKnn(const arch::ArchSpec &spec, const apps::KnnWorkload &knn,
       std::size_t run_queries, double scaled_queries)
{
    std::vector<std::vector<float>> queries(
        knn.queries.begin(),
        knn.queries.begin() + static_cast<std::ptrdiff_t>(run_queries));

    core::CompilerOptions options;
    options.spec = spec;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::knnEuclideanSource(
            static_cast<std::int64_t>(queries.size()),
            static_cast<std::int64_t>(knn.stored.size()),
            knn.featureDim, knn.k));
    core::ExecutionResult result =
        kernel.run({rt::Buffer::fromMatrix(queries),
                    rt::Buffer::fromMatrix(knn.stored)});
    Measurement m;
    m.perf = result.perf;
    m.scale = scaled_queries / double(queries.size());
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    JsonOut jout;
    for (int i = 1; i < argc; ++i) {
        if (jout.tryParseArg(argc, argv, i))
            continue;
        std::fprintf(stderr,
                     "usage: bench_table2_knn [--json-out FILE]\n");
        return 2;
    }
    // Pneumonia: 5216 stored samples. The paper's test split is 624
    // images; we execute 2 queries and scale.
    const std::size_t kRunQueries = 2;
    const double kScaledQueries = 624.0;
    const int kFeatureDim = 1024;
    const int sizes[] = {16, 32, 64, 128, 256};

    std::printf("Table II: EDP and power for KNN execution "
                "(Pneumonia-like: 5216 stored x %d features, k=5)\n\n",
                kFeatureDim);

    apps::Dataset dataset =
        apps::makePneumoniaLike(5216, 16, kFeatureDim);
    apps::KnnWorkload knn = apps::makeKnn(dataset, 1, 5, 16);

    Measurement based[5];
    Measurement power[5];
    for (int i = 0; i < 5; ++i) {
        based[i] = runKnn(
            arch::ArchSpec::dseSetup(sizes[i], arch::OptTarget::Base),
            knn, kRunQueries, kScaledQueries);
        power[i] = runKnn(
            arch::ArchSpec::dseSetup(sizes[i], arch::OptTarget::Power),
            knn, kRunQueries, kScaledQueries);
    }

    std::printf("%-12s", "subarray");
    for (int n : sizes)
        std::printf(" %8dx%-3d", n, n);
    std::printf("\n");
    rule();
    auto row = [&](const char *name, Measurement *m, auto metric) {
        std::printf("%-12s", name);
        for (int i = 0; i < 5; ++i)
            std::printf(" %12.4g", metric(m[i]));
        std::printf("\n");
    };
    std::printf("EDP (nJ*s)\n");
    row("  cam-based", based,
        [](const Measurement &m) { return m.edpNJs(); });
    row("  cam-power", power,
        [](const Measurement &m) { return m.edpNJs(); });
    std::printf("POWER (W)\n");
    row("  cam-based", based,
        [](const Measurement &m) { return m.powerMw() * 1e-3; });
    row("  cam-power", power,
        [](const Measurement &m) { return m.powerMw() * 1e-3; });

    std::printf("\nexpected shape: EDP and power fall monotonically "
                "with subarray size;\ncam-power lowers power and "
                "raises EDP at every size (paper Table II).\n");
    bool ok = true;
    for (int i = 0; i < 5; ++i) {
        if (power[i].powerMw() >= based[i].powerMw())
            ok = false;
        if (power[i].edpNJs() <= based[i].edpNJs())
            ok = false;
        if (i > 0 && based[i].powerMw() >= based[i - 1].powerMw())
            ok = false;
    }
    std::printf("shape check: %s\n", ok ? "PASS" : "FAIL");

    jout.set("bench", std::string("table2_knn"));
    jout.set("shape_check_pass", ok ? 1.0 : 0.0);
    for (int i = 0; i < 5; ++i) {
        std::string size = std::to_string(sizes[i]);
        jout.set("edp_njs_based_" + size, based[i].edpNJs());
        jout.set("edp_njs_power_" + size, power[i].edpNJs());
        jout.set("power_w_based_" + size, based[i].powerMw() * 1e-3);
        jout.set("power_w_power_" + size, power[i].powerMw() * 1e-3);
    }
    if (!jout.write())
        return 1;
    return ok ? 0 : 1;
}
