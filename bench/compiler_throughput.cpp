/**
 * @file
 * Compiler-throughput microbenchmarks (google-benchmark).
 *
 * Not a paper figure: wall-clock cost of the C4CAM pipeline itself
 * (frontend, per-pass lowering, full compile) across kernel and
 * architecture sizes. Simulated accelerator metrics are deterministic,
 * so the reproduction benches print tables instead; this binary is
 * where real time is measured.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "dialects/AllDialects.h"
#include "frontend/TorchScriptFrontend.h"
#include "ir/Parser.h"
#include "ir/Pass.h"
#include "passes/CamMapping.h"
#include "passes/CimFuseOps.h"
#include "passes/CimSimilarityMatching.h"
#include "passes/TorchToCim.h"

using namespace c4cam;

namespace {

void
BM_Frontend(benchmark::State &state)
{
    std::string source =
        apps::dotSimilaritySource(16, 10, state.range(0), 1);
    for (auto _ : state) {
        ir::Context ctx;
        dialects::loadAllDialects(ctx);
        ir::Module module = frontend::parseTorchScriptModule(ctx, source);
        benchmark::DoNotOptimize(&module);
    }
}
BENCHMARK(BM_Frontend)->Arg(1024)->Arg(8192);

void
BM_FullPipeline(benchmark::State &state)
{
    std::string source =
        apps::dotSimilaritySource(16, 10, state.range(0), 1);
    core::CompilerOptions options;
    options.spec =
        arch::ArchSpec::dseSetup(32, arch::OptTarget::Base);
    for (auto _ : state) {
        core::Compiler compiler(options);
        core::CompiledKernel kernel =
            compiler.compileTorchScript(source);
        benchmark::DoNotOptimize(&kernel);
    }
    state.SetLabel("tiles=" + std::to_string(state.range(0) / 32));
}
BENCHMARK(BM_FullPipeline)->Arg(1024)->Arg(8192);

void
BM_CamMapDensity(benchmark::State &state)
{
    // Density mapping statically unrolls batches: heavier IR.
    std::string source =
        apps::dotSimilaritySource(16, 10, 8192, 1);
    core::CompilerOptions options;
    options.spec = arch::ArchSpec::dseSetup(
        static_cast<int>(state.range(0)), arch::OptTarget::Density);
    for (auto _ : state) {
        core::Compiler compiler(options);
        core::CompiledKernel kernel =
            compiler.compileTorchScript(source);
        benchmark::DoNotOptimize(&kernel);
    }
}
BENCHMARK(BM_CamMapDensity)->Arg(32)->Arg(256);

void
BM_PrintParseRoundTrip(benchmark::State &state)
{
    core::CompilerOptions options;
    options.spec = arch::ArchSpec::dseSetup(32, arch::OptTarget::Base);
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(16, 10, 1024, 1));
    std::string text = std::as_const(kernel).module().str();
    for (auto _ : state) {
        ir::Context ctx;
        dialects::loadAllDialects(ctx);
        ir::Module module = ir::parseModule(ctx, text);
        std::string again = module.str();
        benchmark::DoNotOptimize(again.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_PrintParseRoundTrip);

void
BM_Simulation(benchmark::State &state)
{
    // Simulator throughput: searches per second at 32x32.
    core::CompilerOptions options;
    options.spec = arch::ArchSpec::dseSetup(32, arch::OptTarget::Base);
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(4, 10, 1024, 1));
    auto queries = rt::Buffer::alloc(rt::DType::F32, {4, 1024});
    auto stored = rt::Buffer::alloc(rt::DType::F32, {10, 1024});
    std::int64_t searches = 0;
    for (auto _ : state) {
        core::ExecutionResult result = kernel.run({queries, stored});
        searches += result.perf.searches;
        benchmark::DoNotOptimize(&result);
    }
    state.counters["searches/s"] = benchmark::Counter(
        static_cast<double>(searches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Simulation);

} // namespace

/**
 * Like BENCHMARK_MAIN(), but with the repo-wide `--json-out FILE`
 * flag mapped onto Google Benchmark's native JSON reporter
 * (--benchmark_out=FILE --benchmark_out_format=json), so this binary
 * emits machine-readable results the same way the other benches do.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    std::string out_flag;
    std::string format_flag = "--benchmark_out_format=json";
    for (auto it = args.begin(); it != args.end(); ++it) {
        if (std::string(*it) == "--json-out") {
            if (it + 1 == args.end()) {
                std::fprintf(stderr,
                             "--json-out requires a file path\n");
                return 2;
            }
            out_flag = std::string("--benchmark_out=") + *(it + 1);
            args.erase(it, it + 2);
            args.push_back(out_flag.data());
            args.push_back(format_flag.data());
            break;
        }
    }
    int adjusted_argc = static_cast<int>(args.size());
    benchmark::Initialize(&adjusted_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(adjusted_argc,
                                               args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
