/**
 * @file
 * Figure 9 (a, b): iso-capacity analysis -- each array holds 2^16
 * cells; the subarray size varies from 16x16 (256 subarrays/array) to
 * 256x256 (1 subarray/array); 4 arrays/mat and 4 mats/bank as before.
 *
 * Paper shapes:
 *  - latency rises moderately with subarray size (58us -> 150us for
 *    the paper's query stream) because the ML discharge slows with
 *    column count while the cell count per array is constant;
 *  - iso-base energy is nearly constant across sizes; density configs
 *    average ~1.75x energy improvement except at 128/256;
 *  - density/power+density cut power substantially.
 */

#include <cstdio>

#include "BenchUtils.h"
#include "apps/Datasets.h"

using namespace c4cam;
using namespace c4cam::bench;

int
main(int argc, char **argv)
{
    JsonOut jout;
    for (int i = 1; i < argc; ++i) {
        if (jout.tryParseArg(argc, argv, i))
            continue;
        std::fprintf(stderr,
                     "usage: bench_fig9_isocapacity [--json-out FILE]\n");
        return 2;
    }
    const int kRunQueries = 6;
    const double kScaledQueries = 10000.0;
    const int kDims = 8192;
    const int sizes[] = {16, 32, 64, 128, 256};
    const arch::OptTarget targets[] = {arch::OptTarget::Base,
                                       arch::OptTarget::Density,
                                       arch::OptTarget::PowerDensity};
    const char *names[] = {"iso-base", "iso-density",
                           "iso-density+power"};

    std::printf("Figure 9: iso-capacity analysis (2^16 TCAM cells per "
                "array; HDC/MNIST %d dims)\n\n",
                kDims);

    apps::Dataset dataset = apps::makeMnistLike(10, kRunQueries);
    apps::HdcWorkload workload =
        apps::encodeHdc(dataset, kDims, 1, kRunQueries);

    Measurement m[3][5];
    for (int t = 0; t < 3; ++t)
        for (int s = 0; s < 5; ++s)
            m[t][s] = runHdcOnCam(
                arch::ArchSpec::isoCapacitySetup(sizes[s], targets[t]),
                workload, kRunQueries, kScaledQueries);

    auto table = [&](const char *title, auto metric) {
        std::printf("%s\n", title);
        std::printf("%-20s", "subarray size");
        for (int n : sizes)
            std::printf(" %8dx%-3d", n, n);
        std::printf("\n");
        rule();
        for (int t = 0; t < 3; ++t) {
            std::printf("%-20s", names[t]);
            for (int s = 0; s < 5; ++s)
                std::printf(" %12.4g", metric(m[t][s]));
            std::printf("\n");
        }
        std::printf("\n");
    };

    table("Fig 9a: latency (ms)",
          [](const Measurement &x) { return x.latencyMs(); });
    table("Fig 9b: power (mW)",
          [](const Measurement &x) { return x.powerMw(); });
    table("(aux) energy (uJ)",
          [](const Measurement &x) { return x.energyUj(); });

    std::printf("iso-base latency growth 16->256: %.2fx "
                "(paper: 150us/58us = 2.6x)\n",
                m[0][4].latencyMs() / m[0][0].latencyMs());
    std::printf("iso-base energy flatness (max/min): %.2fx "
                "(paper: nearly constant)\n",
                [&] {
                    double lo = 1e30;
                    double hi = 0.0;
                    for (int s = 0; s < 5; ++s) {
                        lo = std::min(lo, m[0][s].energyUj());
                        hi = std::max(hi, m[0][s].energyUj());
                    }
                    return hi / lo;
                }());
    double gain = 0.0;
    for (int s = 0; s < 3; ++s) // 16..64, as in the paper's caveat
        gain += m[0][s].energyUj() / m[1][s].energyUj();
    std::printf("iso-density energy improvement @16..64 (avg): %.2fx "
                "(paper: ~1.75x avg)\n",
                gain / 3.0);
    std::printf("iso-density+power power cut @16: %.1f%% of base\n",
                100.0 * m[2][0].powerMw() / m[0][0].powerMw());

    jout.set("bench", std::string("fig9_isocapacity"));
    const char *keys[] = {"base", "density", "power_density"};
    for (int t = 0; t < 3; ++t)
        for (int s = 0; s < 5; ++s) {
            std::string tag = std::string(keys[t]) + "_" +
                              std::to_string(sizes[s]);
            jout.set("latency_ms_" + tag, m[t][s].latencyMs());
            jout.set("power_mw_" + tag, m[t][s].powerMw());
        }
    return jout.write() ? 0 : 1;
}
