/**
 * @file
 * Architecture exploration from JSON specifications (paper §III-B).
 *
 * Usage: arch_explorer [spec.json ...]
 *
 * Loads one or more architecture specification files (defaults to the
 * two specs shipped under examples/specs/), compiles the same
 * TorchScript kernel for each, and prints a comparison table -- the
 * "retargetability without application recoding" workflow the paper
 * demonstrates, plus the IR after every pass for the first spec.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "core/DseExplorer.h"
#include "support/Rng.h"

using namespace c4cam;

int
main(int argc, char **argv)
{
    bool sweep = false;
    std::vector<std::string> spec_paths;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--sweep")
            sweep = true;
        else
            spec_paths.push_back(argv[i]);
    }
    if (spec_paths.empty()) {
        spec_paths = {"examples/specs/fefet_32x32.json",
                      "examples/specs/mcam_power_64x64.json"};
    }

    const std::int64_t kQueries = 8;
    const std::int64_t kRows = 16;
    const std::int64_t kDims = 1024;
    std::string source =
        apps::dotSimilaritySource(kQueries, kRows, kDims, 1);

    // Shared random +-1 workload.
    Rng rng(77);
    auto stored = rt::Buffer::alloc(rt::DType::F32, {kRows, kDims});
    for (std::int64_t r = 0; r < kRows; ++r)
        for (std::int64_t d = 0; d < kDims; ++d)
            stored->set({r, d}, rng.nextBool() ? 1.0 : -1.0);
    auto queries = rt::Buffer::alloc(rt::DType::F32, {kQueries, kDims});
    for (std::int64_t q = 0; q < kQueries; ++q)
        for (std::int64_t d = 0; d < kDims; ++d)
            queries->set({q, d}, rng.nextBool() ? 1.0 : -1.0);

    std::printf("%-34s %10s %10s %10s %8s %7s\n", "specification",
                "lat/q (ns)", "E/q (pJ)", "power(mW)", "subarr", "banks");
    for (int i = 0; i < 78; ++i)
        std::putchar('-');
    std::putchar('\n');

    bool first = true;
    for (const std::string &path : spec_paths) {
        arch::ArchSpec spec;
        try {
            spec = arch::ArchSpec::fromFile(path);
        } catch (const CompilerError &err) {
            std::fprintf(stderr, "skipping %s: %s\n", path.c_str(),
                         err.what());
            continue;
        }

        core::CompilerOptions options;
        options.spec = spec;
        options.dumpIntermediates = first;
        core::Compiler compiler(options);
        core::CompiledKernel kernel = compiler.compileTorchScript(source);
        core::ExecutionResult result = kernel.run({queries, stored});

        std::printf("%-34s %10.2f %10.1f %10.3f %8lld %7lld\n",
                    path.c_str(),
                    result.perf.queryLatencyNs / double(kQueries),
                    result.perf.queryEnergyPj / double(kQueries),
                    result.perf.avgPowerMw(),
                    static_cast<long long>(result.perf.subarraysUsed),
                    static_cast<long long>(result.perf.banksUsed));

        if (first) {
            std::printf("\npipeline for %s:\n", path.c_str());
            for (const auto &[pass, text] : kernel.dumps())
                std::printf("  after %-24s %6zu chars of IR\n",
                            pass.c_str(), text.size());
            std::printf("(re-run with dumpIntermediates to inspect "
                        "the IR; see quickstart)\n\n");
            first = false;
        }
    }

    if (sweep) {
        // Full §IV-C sweep: 5 sizes x 4 targets, Pareto-labeled.
        // Candidates are independent compiles, so sweep them on one
        // worker per hardware thread (threads=0); results are
        // bit-identical to the serial sweep.
        std::printf("\nstandard DSE sweep (20 candidates):\n");
        core::DseExplorer explorer;
        core::DseResult result = explorer.explore(
            source, core::DseExplorer::standardCandidates(),
            {queries, stored}, /*threads=*/0);
        std::printf("%s", result.table().c_str());
        const auto &fast = result.bestLatency();
        const auto &frugal = result.bestPower();
        std::printf("\nfastest: %dx%d %s (%.2f ns) | most frugal: "
                    "%dx%d %s (%.3f mW)\n",
                    fast.spec.rows, fast.spec.cols,
                    arch::toString(fast.spec.target), fast.latencyNs(),
                    frugal.spec.rows, frugal.spec.cols,
                    arch::toString(frugal.spec.target),
                    frugal.powerMw());
    }
    return 0;
}
