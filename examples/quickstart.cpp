/**
 * @file
 * Quickstart: compile a TorchScript similarity kernel to a CAM
 * accelerator, run it on the simulator, and print the IR at every
 * pipeline stage plus the performance report.
 */

#include <cstdio>
#include <iostream>

#include "apps/Workloads.h"
#include "arch/ArchSpec.h"
#include "core/Compiler.h"
#include "runtime/Buffer.h"
#include "support/Rng.h"

using namespace c4cam;

int
main()
{
    // A small binary similarity problem: 4 queries against 8 stored
    // patterns of 64 bits, top-1 match.
    const std::int64_t queries = 4;
    const std::int64_t rows = 8;
    const std::int64_t dims = 64;

    std::string source = apps::dotSimilaritySource(queries, rows, dims, 1);
    std::cout << "== TorchScript ==\n" << source << "\n";

    // Target: 32x32 TCAM subarrays, default 4/4/8 hierarchy.
    arch::ArchSpec spec = arch::ArchSpec::dseSetup(32, arch::OptTarget::Base);

    core::CompilerOptions options;
    options.spec = spec;
    options.dumpIntermediates = true;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(source);

    for (const auto &[pass, text] : kernel.dumps()) {
        std::cout << "== after " << pass << " ==\n" << text << "\n";
    }

    // Random +-1 data; query 0 equals stored row 5 so the expected
    // top-1 answer is obvious.
    Rng rng(42);
    auto stored = rt::Buffer::alloc(rt::DType::F32, {rows, dims});
    for (std::int64_t r = 0; r < rows; ++r)
        for (std::int64_t d = 0; d < dims; ++d)
            stored->set({r, d}, rng.nextBool() ? 1.0 : -1.0);
    auto query = rt::Buffer::alloc(rt::DType::F32, {queries, dims});
    for (std::int64_t q = 0; q < queries; ++q)
        for (std::int64_t d = 0; d < dims; ++d)
            query->set({q, d},
                       q == 0 ? stored->at({5, d})
                              : (rng.nextBool() ? 1.0 : -1.0));

    core::ExecutionResult result = kernel.run({query, stored});

    std::cout << "== results ==\n";
    const rt::BufferPtr &indices = result.outputs[1].asBuffer();
    for (std::int64_t q = 0; q < queries; ++q)
        std::cout << "query " << q << " -> stored row "
                  << indices->atInt({q, 0}) << "\n";
    std::cout << "\n== performance ==\n" << result.perf.str() << "\n";
    std::cout << "banks: " << result.perf.banksUsed
              << ", subarrays: " << result.perf.subarraysUsed << "\n";

    if (indices->atInt({0, 0}) != 5) {
        std::cerr << "unexpected top-1 for query 0\n";
        return 1;
    }
    std::cout << "quickstart OK\n";
    return 0;
}
