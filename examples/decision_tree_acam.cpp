/**
 * @file
 * Decision-tree inference on an analog CAM (extension beyond the
 * paper's evaluation; generalizes the DT2CAM use case the paper cites
 * as related work).
 *
 * Each root-to-leaf path becomes one ACAM row of acceptance intervals;
 * untested features are don't-care cells; classification is a single
 * parallel exact-match search. Demonstrates the ACAM substrate, range
 * cells and wildcard matching.
 */

#include <cstdio>

#include "apps/Datasets.h"
#include "apps/DecisionTree.h"
#include "arch/ArchSpec.h"

using namespace c4cam;

int
main()
{
    const int kFeatures = 16;
    const int kTrain = 400;
    const int kTest = 100;
    const int kDepth = 6;

    std::printf("Decision tree on ACAM (%d features, depth <= %d)\n\n",
                kFeatures, kDepth);

    apps::Dataset dataset =
        apps::makePneumoniaLike(kTrain, kTest, kFeatures, 0.25);
    apps::DecisionTree tree = apps::DecisionTree::fit(dataset, kDepth);
    std::printf("tree: %d leaves -> %d ACAM rows\n", tree.numLeaves(),
                tree.numLeaves());

    arch::ArchSpec spec;
    spec.camType = arch::CamDeviceType::Acam;
    spec.bitsPerCell = 2;
    spec.rows = 32;
    spec.cols = 32;

    apps::AcamTreeRunResult result =
        apps::runTreeOnAcam(tree, spec, dataset.testX);

    int agree = 0;
    int correct = 0;
    for (std::size_t i = 0; i < dataset.testX.size(); ++i) {
        int sw = tree.predict(dataset.testX[i]);
        agree += result.predictions[i] == sw;
        correct += result.predictions[i] == dataset.testY[i];
    }
    std::printf("ACAM vs software tree: %d/%d predictions agree\n",
                agree, kTest);
    std::printf("test accuracy: %.1f%%\n",
                100.0 * correct / double(kTest));
    std::printf("per-sample latency: %.2f ns, energy: %.1f pJ\n",
                result.perf.queryLatencyNs / double(kTest),
                result.perf.queryEnergyPj / double(kTest));
    std::printf("subarrays used: %lld\n",
                static_cast<long long>(result.perf.subarraysUsed));
    return agree == kTest ? 0 : 1;
}
