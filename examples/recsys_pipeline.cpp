/**
 * @file
 * Two-stage recommender pipeline on CAM banks (paper §II-C).
 *
 * The paper motivates the bank level with iMARS-style recommender
 * systems: "RecSys can profit from CAMs in both filtering and ranking
 * stages, where each stage executes different tasks on different banks
 * in parallel."
 *
 * Stage 1 (filtering): match the user's binary category profile
 * against item category signatures (hamming similarity, top-M recall).
 * Stage 2 (ranking): rank the recalled items by embedding similarity
 * (dot product, top-k).
 *
 * Both stages are compiled with C4CAM onto separate CAM devices
 * (= separate bank groups). Because the stages serve different queries
 * concurrently, steady-state pipeline latency is the max of the two
 * stage latencies rather than their sum.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "support/Rng.h"

using namespace c4cam;

namespace {

std::vector<std::vector<float>>
randomSigns(std::size_t rows, std::size_t dims, Rng &rng)
{
    std::vector<std::vector<float>> out(rows, std::vector<float>(dims));
    for (auto &row : out)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    return out;
}

} // namespace

int
main()
{
    const std::int64_t kItems = 64;     // catalog size
    const std::int64_t kCategories = 256;
    const std::int64_t kEmbedding = 512;
    const std::int64_t kUsers = 8;
    const std::int64_t kRecall = 8;     // stage-1 top-M
    const std::int64_t kTopK = 3;       // stage-2 top-k

    Rng rng(2024);

    // Cluster-structured catalog: items belong to genres; categories
    // and embeddings both derive from the genre prototype (with item-
    // level noise), so category recall is informative for ranking.
    const std::int64_t kGenres = 8;
    auto genre_cats = randomSigns(kGenres, kCategories, rng);
    auto genre_embeds = randomSigns(kGenres, kEmbedding, rng);
    auto perturb = [&](const std::vector<float> &proto, double flip) {
        std::vector<float> v = proto;
        for (auto &x : v)
            if (rng.nextBool(flip))
                x = -x;
        return v;
    };
    std::vector<std::vector<float>> categories;
    std::vector<std::vector<float>> embeddings;
    for (std::int64_t i = 0; i < kItems; ++i) {
        auto g = static_cast<std::size_t>(i % kGenres);
        categories.push_back(perturb(genre_cats[g], 0.10));
        embeddings.push_back(perturb(genre_embeds[g], 0.25));
    }
    // Users favor one genre each.
    std::vector<std::vector<float>> user_prefs;
    std::vector<std::vector<float>> user_embeds;
    for (std::int64_t u = 0; u < kUsers; ++u) {
        auto g = static_cast<std::size_t>(u % kGenres);
        user_prefs.push_back(perturb(genre_cats[g], 0.05));
        user_embeds.push_back(perturb(genre_embeds[g], 0.15));
    }

    std::printf("RecSys on CAM banks: %lld items, %lld users "
                "(filter top-%lld by category, rank top-%lld by "
                "embedding)\n\n",
                (long long)kItems, (long long)kUsers, (long long)kRecall,
                (long long)kTopK);

    // Stage 1: category filtering on its own device/banks.
    core::CompilerOptions filter_options;
    filter_options.spec =
        arch::ArchSpec::dseSetup(32, arch::OptTarget::Base);
    core::Compiler filter_compiler(filter_options);
    core::CompiledKernel filter = filter_compiler.compileTorchScript(
        apps::dotSimilaritySource(kUsers, kItems, kCategories, kRecall));
    core::ExecutionResult recall =
        filter.run({rt::Buffer::fromMatrix(user_prefs),
                    rt::Buffer::fromMatrix(categories)});

    // Stage 2: embedding ranking of the recalled items, per user, on a
    // second device. The stored set is the per-user recalled slice.
    double ranking_latency = 0.0;
    double ranking_energy = 0.0;
    std::vector<std::vector<int>> recommendations;
    for (std::int64_t u = 0; u < kUsers; ++u) {
        std::vector<std::vector<float>> shortlist;
        std::vector<int> shortlist_ids;
        for (std::int64_t m = 0; m < kRecall; ++m) {
            int item = static_cast<int>(
                recall.outputs[1].asBuffer()->atInt({u, m}));
            shortlist.push_back(
                embeddings[static_cast<std::size_t>(item)]);
            shortlist_ids.push_back(item);
        }
        core::CompilerOptions rank_options;
        rank_options.spec =
            arch::ArchSpec::dseSetup(32, arch::OptTarget::Base);
        core::Compiler rank_compiler(rank_options);
        core::CompiledKernel ranker = rank_compiler.compileTorchScript(
            apps::dotSimilaritySource(1, kRecall, kEmbedding, kTopK));
        core::ExecutionResult ranked = ranker.run(
            {rt::Buffer::fromMatrix({user_embeds[
                 static_cast<std::size_t>(u)]}),
             rt::Buffer::fromMatrix(shortlist)});
        ranking_latency += ranked.perf.queryLatencyNs;
        ranking_energy += ranked.perf.queryEnergyPj;

        std::vector<int> recs;
        for (std::int64_t k = 0; k < kTopK; ++k)
            recs.push_back(shortlist_ids[static_cast<std::size_t>(
                ranked.outputs[1].asBuffer()->atInt({0, k}))]);
        recommendations.push_back(recs);
    }

    // Host reference for the full (unfiltered) ranking, to gauge
    // recall quality of the two-stage pipeline.
    int top1_hits = 0;
    for (std::int64_t u = 0; u < kUsers; ++u) {
        double best = -1e18;
        int best_item = -1;
        for (std::int64_t i = 0; i < kItems; ++i) {
            double dot = 0.0;
            for (std::int64_t d = 0; d < kEmbedding; ++d)
                dot += double(user_embeds[u][d]) * embeddings[i][d];
            if (dot > best) {
                best = dot;
                best_item = static_cast<int>(i);
            }
        }
        const auto &recs = recommendations[static_cast<std::size_t>(u)];
        top1_hits += std::find(recs.begin(), recs.end(), best_item) !=
                     recs.end();
    }

    double filter_latency = recall.perf.queryLatencyNs;
    double sequential = filter_latency + ranking_latency;
    double pipelined = std::max(filter_latency, ranking_latency);

    std::printf("stage latencies (all %lld users):\n",
                (long long)kUsers);
    std::printf("  filtering: %8.1f ns on %lld subarrays\n",
                filter_latency,
                (long long)recall.perf.subarraysUsed);
    std::printf("  ranking:   %8.1f ns\n", ranking_latency);
    std::printf("end-to-end: sequential %.1f ns, bank-parallel "
                "pipeline %.1f ns (%.2fx)\n",
                sequential, pipelined, sequential / pipelined);
    std::printf("global top-1 item captured in recommendations for "
                "%d/%lld users\n",
                top1_hits, (long long)kUsers);
    return 0;
}
