/**
 * @file
 * K-nearest-neighbors on a CAM accelerator (paper §IV-A3, Table II).
 *
 * Every training sample of a Pneumonia-like 2-class dataset is stored
 * as one CAM row; classification is a majority vote over the k best
 * matches. Demonstrates the EuclNormPattern path of Algorithm 1
 * (sub -> norm -> topk) and row-wise partitioning across many banks.
 */

#include <cstdio>

#include "apps/Datasets.h"
#include "apps/Knn.h"
#include "apps/Workloads.h"
#include "core/Compiler.h"

using namespace c4cam;

int
main()
{
    const int kStored = 1024; // scaled-down training split
    const int kQueries = 12;
    const int kFeatures = 512;
    const int kNeighbors = 5;

    std::printf("KNN on a CAM accelerator (%d stored samples x %d "
                "features, k=%d)\n\n",
                kStored, kFeatures, kNeighbors);

    apps::Dataset dataset =
        apps::makePneumoniaLike(kStored, kQueries, kFeatures);
    apps::KnnWorkload knn = apps::makeKnn(dataset, 2, kNeighbors,
                                          kQueries);

    core::CompilerOptions options;
    options.spec = arch::ArchSpec::dseSetup(64, arch::OptTarget::Base);
    options.spec.camType = arch::CamDeviceType::Mcam;
    options.spec.bitsPerCell = 2;
    core::Compiler compiler(options);

    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::knnEuclideanSource(kQueries, kStored, kFeatures,
                                 kNeighbors));
    const auto &plan = kernel.plan();
    std::printf("mapping: %lld row-tiles x %lld col-tiles -> %lld "
                "subarrays in %lld banks\n\n",
                static_cast<long long>(plan.rowTiles),
                static_cast<long long>(plan.colTiles),
                static_cast<long long>(plan.physicalSubarrays),
                static_cast<long long>(plan.banks));

    core::ExecutionResult result =
        kernel.run({rt::Buffer::fromMatrix(knn.queries),
                    rt::Buffer::fromMatrix(knn.stored)});

    // Majority vote over the k neighbor indices returned by the CAM.
    std::vector<std::vector<int>> neighbors;
    for (int q = 0; q < kQueries; ++q) {
        std::vector<int> row;
        for (int j = 0; j < kNeighbors; ++j)
            row.push_back(static_cast<int>(
                result.outputs[1].asBuffer()->atInt({q, j})));
        neighbors.push_back(row);
    }
    std::vector<int> predictions = knn.classify(neighbors);

    auto host = knn.hostNeighbors();
    std::vector<int> host_predictions = knn.classify(host);

    int agree = 0;
    for (int q = 0; q < kQueries; ++q)
        agree += predictions[static_cast<std::size_t>(q)] ==
                 host_predictions[static_cast<std::size_t>(q)];

    std::printf("accuracy: CAM %.1f%%, host reference %.1f%% "
                "(%d/%d predictions agree)\n",
                knn.accuracy(predictions) * 100.0,
                knn.accuracy(host_predictions) * 100.0, agree, kQueries);
    std::printf("per-query latency: %.2f ns | power: %.2f mW | "
                "EDP: %.3g nJ*s\n",
                result.perf.queryLatencyNs / kQueries,
                result.perf.avgPowerMw(),
                result.perf.edpNanoJouleSeconds());
    return agree == kQueries ? 0 : 1;
}
