/**
 * @file
 * HDC image classification on a CAM accelerator -- the paper's running
 * example (Fig. 4a). Encodes an MNIST-like dataset into 8k-dimensional
 * hypervectors, compiles the TorchScript dot-similarity kernel with
 * C4CAM, runs inference on the simulated accelerator, and reports
 * accuracy plus latency/energy/power for both the binary (TCAM) and
 * multi-bit (MCAM) implementations.
 */

#include <cstdio>

#include "apps/Datasets.h"
#include "apps/Hdc.h"
#include "apps/Workloads.h"
#include "core/Compiler.h"

using namespace c4cam;

namespace {

void
runOne(const apps::HdcWorkload &workload, int bits)
{
    std::size_t queries = workload.queryHvs.size();
    arch::ArchSpec spec = arch::ArchSpec::validationSetup(32, bits);

    core::CompilerOptions options;
    options.spec = spec;
    core::Compiler compiler(options);

    // Binary HDC compiles the dot-similarity kernel; the multi-bit
    // variant matches by euclidean distance (paper §IV-B).
    std::string source =
        bits == 1 ? apps::dotSimilaritySource(
                        static_cast<std::int64_t>(queries),
                        workload.numClasses, workload.dimensions, 1)
                  : apps::knnEuclideanSource(
                        static_cast<std::int64_t>(queries),
                        workload.numClasses, workload.dimensions, 1);
    core::CompiledKernel kernel = compiler.compileTorchScript(source);

    core::ExecutionResult result = kernel.run(
        {rt::Buffer::fromMatrix(workload.queryHvs),
         rt::Buffer::fromMatrix(workload.classHvs)});

    std::vector<int> predictions;
    for (std::size_t q = 0; q < queries; ++q)
        predictions.push_back(static_cast<int>(
            result.outputs[1].asBuffer()->atInt(
                {static_cast<std::int64_t>(q), 0})));

    double cam_acc = workload.accuracy(predictions);
    double host_acc = workload.accuracy(workload.hostPredictions());

    std::printf("%d-bit (%s):\n", bits, bits == 1 ? "TCAM" : "MCAM");
    std::printf("  accuracy: CAM %.1f%%, host reference %.1f%%\n",
                cam_acc * 100.0, host_acc * 100.0);
    std::printf("  per-query latency: %.2f ns, energy: %.1f pJ\n",
                result.perf.queryLatencyNs / double(queries),
                result.perf.queryEnergyPj / double(queries));
    std::printf("  power: %.2f mW, subarrays: %lld, banks: %lld\n",
                result.perf.avgPowerMw(),
                static_cast<long long>(result.perf.subarraysUsed),
                static_cast<long long>(result.perf.banksUsed));
    std::printf("  one-time programming: %.1f us, %.1f nJ\n\n",
                result.perf.setupLatencyNs * 1e-3,
                result.perf.setupEnergyPj * 1e-3);
}

} // namespace

int
main()
{
    const int kDims = 8192;
    const int kQueries = 24;

    std::printf("HDC classification on a CAM accelerator "
                "(%dk hypervector dims, %d test queries)\n\n",
                kDims / 1024, kQueries);

    apps::Dataset dataset = apps::makeMnistLike(20, kQueries);
    for (int bits : {1, 2}) {
        apps::HdcWorkload workload =
            apps::encodeHdc(dataset, kDims, bits, kQueries);
        runOne(workload, bits);
    }
    return 0;
}
