/** @file Workload (datasets / HDC / KNN / GPU model / manual) tests. */

#include <gtest/gtest.h>

#include "apps/Datasets.h"
#include "apps/GpuModel.h"
#include "apps/Hdc.h"
#include "apps/Knn.h"
#include "apps/ManualBaseline.h"
#include "apps/Workloads.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::apps;

TEST(Datasets, MnistLikeShapes)
{
    Dataset ds = makeMnistLike(5, 20);
    EXPECT_EQ(ds.numClasses, 10);
    EXPECT_EQ(ds.featureDim, 784);
    EXPECT_EQ(ds.trainX.size(), 50u);
    EXPECT_EQ(ds.testX.size(), 20u);
    EXPECT_EQ(ds.trainY.size(), ds.trainX.size());
    for (const auto &x : ds.trainX)
        EXPECT_EQ(x.size(), 784u);
}

TEST(Datasets, PneumoniaLikeDefaultsMatchRealSplit)
{
    Dataset ds = makePneumoniaLike();
    EXPECT_EQ(ds.numClasses, 2);
    EXPECT_EQ(ds.trainX.size(), 5216u);
    EXPECT_EQ(ds.testX.size(), 624u);
    EXPECT_EQ(ds.featureDim, 1024);
}

TEST(Datasets, Deterministic)
{
    Dataset a = makeMnistLike(2, 4, 0.25, 99);
    Dataset b = makeMnistLike(2, 4, 0.25, 99);
    EXPECT_EQ(a.trainX[0], b.trainX[0]);
    Dataset c = makeMnistLike(2, 4, 0.25, 100);
    EXPECT_NE(a.trainX[0], c.trainX[0]);
}

TEST(Datasets, FeaturesInUnitInterval)
{
    Dataset ds = makeMnistLike(2, 4);
    for (const auto &x : ds.trainX)
        for (float v : x) {
            EXPECT_GE(v, 0.0f);
            EXPECT_LE(v, 1.0f);
        }
}

TEST(Hdc, BinaryEncodingAlphabet)
{
    Dataset ds = makeMnistLike(5, 10);
    HdcWorkload workload = encodeHdc(ds, 512, 1, 10);
    EXPECT_EQ(workload.classHvs.size(), 10u);
    EXPECT_EQ(workload.queryHvs.size(), 10u);
    for (const auto &hv : workload.classHvs)
        for (float v : hv)
            EXPECT_TRUE(v == 1.0f || v == -1.0f);
}

TEST(Hdc, MultiBitEncodingAlphabet)
{
    Dataset ds = makeMnistLike(5, 10);
    HdcWorkload workload = encodeHdc(ds, 512, 2, 10);
    for (const auto &hv : workload.classHvs)
        for (float v : hv)
            EXPECT_TRUE(v >= 0.0f && v <= 3.0f);
}

TEST(Hdc, HostClassifierBeatsChance)
{
    Dataset ds = makeMnistLike(20, 40);
    HdcWorkload workload = encodeHdc(ds, 2048, 1, 40);
    double acc = workload.accuracy(workload.hostPredictions());
    // 10-way classification: chance is 0.1.
    EXPECT_GT(acc, 0.6);
}

TEST(Hdc, AccuracyHelperChecksArity)
{
    Dataset ds = makeMnistLike(2, 4);
    HdcWorkload workload = encodeHdc(ds, 128, 1, 4);
    EXPECT_THROW(workload.accuracy({0}), CompilerError);
}

TEST(Knn, QuantizationLevels)
{
    Dataset ds = makePneumoniaLike(64, 16, 128);
    KnnWorkload binary = makeKnn(ds, 1, 3, 16);
    for (const auto &row : binary.stored)
        for (float v : row)
            EXPECT_TRUE(v == 0.0f || v == 1.0f);
    KnnWorkload multi = makeKnn(ds, 2, 3, 16);
    for (const auto &row : multi.stored)
        for (float v : row)
            EXPECT_TRUE(v >= 0.0f && v <= 3.0f);
}

TEST(Knn, HostClassifierBeatsChance)
{
    Dataset ds = makePneumoniaLike(128, 32, 256);
    KnnWorkload workload = makeKnn(ds, 2, 5, 32);
    auto neighbors = workload.hostNeighbors();
    EXPECT_EQ(neighbors.size(), 32u);
    EXPECT_EQ(neighbors[0].size(), 5u);
    double acc = workload.accuracy(workload.classify(neighbors));
    EXPECT_GT(acc, 0.7);
}

TEST(Knn, NeighborsSortedByDistance)
{
    Dataset ds = makePneumoniaLike(32, 4, 64);
    KnnWorkload workload = makeKnn(ds, 2, 32, 4);
    auto neighbors = workload.hostNeighbors();
    // With k == N the first neighbor must be the global argmin; spot
    // check ordering by recomputing distances.
    const auto &query = workload.queries[0];
    auto dist = [&](int idx) {
        double acc = 0.0;
        for (std::size_t d = 0; d < query.size(); ++d) {
            double diff = query[d] -
                          workload.stored[static_cast<std::size_t>(idx)][d];
            acc += diff * diff;
        }
        return acc;
    };
    for (std::size_t i = 1; i < neighbors[0].size(); ++i)
        EXPECT_LE(dist(neighbors[0][i - 1]), dist(neighbors[0][i]));
}

TEST(GpuModel, LatencyScalesWithWork)
{
    GpuModel gpu;
    GpuEstimate small = gpu.similarityKernel(100, 10, 1024);
    GpuEstimate large = gpu.similarityKernel(10000, 10, 8192);
    EXPECT_GT(large.latencyNs, small.latencyNs * 10);
    EXPECT_GT(small.latencyNs, 0.0);
    EXPECT_GT(small.energyPj, 0.0);
    EXPECT_DOUBLE_EQ(small.avgPowerW, gpu.boardPowerW());
}

TEST(GpuModel, EnergyIsPowerTimesLatency)
{
    GpuModel gpu;
    GpuEstimate est = gpu.similarityKernel(1000, 10, 8192);
    EXPECT_NEAR(est.energyPj, est.avgPowerW * est.latencyNs * 1e3,
                est.energyPj * 1e-9);
}

TEST(ManualBaseline, MatchesHostPredictions)
{
    Dataset ds = makeMnistLike(10, 8);
    HdcWorkload workload = encodeHdc(ds, 256, 1, 8);
    arch::ArchSpec spec = arch::ArchSpec::validationSetup(32, 1);
    ManualRunResult result = runManualHdc(workload, spec, 8);
    EXPECT_EQ(result.predictions, workload.hostPredictions());
    EXPECT_GT(result.perf.queryLatencyNs, 0.0);
    EXPECT_GT(result.perf.queryEnergyPj, 0.0);
    EXPECT_EQ(result.perf.searches, 8 * 256 / 32);
}

TEST(ManualBaseline, LatencyGrowsWithColumns)
{
    Dataset ds = makeMnistLike(5, 4);
    HdcWorkload workload = encodeHdc(ds, 512, 1, 4);
    double prev = 0.0;
    for (int cols : {16, 32, 64, 128}) {
        arch::ArchSpec spec = arch::ArchSpec::validationSetup(cols, 1);
        ManualRunResult result = runManualHdc(workload, spec, 4);
        EXPECT_GT(result.perf.queryLatencyNs, prev) << "cols " << cols;
        prev = result.perf.queryLatencyNs;
    }
}

TEST(Workloads, SourcesParse)
{
    EXPECT_NE(dotSimilaritySource(4, 8, 64, 1).find("torch.matmul"),
              std::string::npos);
    EXPECT_NE(knnEuclideanSource(4, 8, 64, 5).find("torch.norm"),
              std::string::npos);
}
