/** @file Decision-tree / ACAM extension tests. */

#include <gtest/gtest.h>

#include "apps/Datasets.h"
#include "apps/DecisionTree.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::apps;

namespace {

Dataset
smallDataset()
{
    return makePneumoniaLike(200, 40, 12, 0.2, 3);
}

arch::ArchSpec
acamSpec()
{
    arch::ArchSpec spec;
    spec.camType = arch::CamDeviceType::Acam;
    spec.bitsPerCell = 2;
    spec.rows = 16;
    spec.cols = 16;
    spec.subarraysPerArray = 2;
    spec.arraysPerMat = 2;
    spec.matsPerBank = 2;
    return spec;
}

} // namespace

TEST(DecisionTree, FitsAndPredictsAboveChance)
{
    Dataset ds = smallDataset();
    DecisionTree tree = DecisionTree::fit(ds, 5);
    int correct = 0;
    for (std::size_t i = 0; i < ds.testX.size(); ++i)
        correct += tree.predict(ds.testX[i]) == ds.testY[i];
    EXPECT_GT(double(correct) / double(ds.testX.size()), 0.7);
}

TEST(DecisionTree, LeafBoxesPartitionTheSpace)
{
    Dataset ds = smallDataset();
    DecisionTree tree = DecisionTree::fit(ds, 5);
    auto boxes = tree.leafBoxes();
    EXPECT_EQ(static_cast<int>(boxes.size()), tree.numLeaves());

    // Every training sample falls in at least one box whose label is
    // the tree prediction (boundary ties may match two boxes).
    for (std::size_t s = 0; s < 50 && s < ds.trainX.size(); ++s) {
        const auto &x = ds.trainX[s];
        int hits = 0;
        int first_label = -1;
        for (const auto &box : boxes) {
            bool inside = true;
            for (int f = 0; f < ds.featureDim && inside; ++f) {
                auto fi = static_cast<std::size_t>(f);
                if (box.dontCare[fi])
                    continue;
                inside = x[fi] >= box.lo[fi] && x[fi] <= box.hi[fi];
            }
            if (inside) {
                ++hits;
                if (first_label < 0)
                    first_label = box.label;
            }
        }
        EXPECT_GE(hits, 1) << "sample " << s << " outside every leaf";
        EXPECT_LE(hits, 2);
        EXPECT_EQ(first_label, tree.predict(x));
    }
}

TEST(DecisionTree, DepthZeroIsMajorityVote)
{
    Dataset ds = smallDataset();
    DecisionTree tree = DecisionTree::fit(ds, 0);
    EXPECT_EQ(tree.numLeaves(), 1);
    int label = tree.predict(ds.testX[0]);
    for (const auto &x : ds.testX)
        EXPECT_EQ(tree.predict(x), label);
}

TEST(DecisionTree, AcamMatchesSoftwareTree)
{
    Dataset ds = smallDataset();
    DecisionTree tree = DecisionTree::fit(ds, 6);
    AcamTreeRunResult result =
        runTreeOnAcam(tree, acamSpec(), ds.testX);
    ASSERT_EQ(result.predictions.size(), ds.testX.size());
    for (std::size_t i = 0; i < ds.testX.size(); ++i)
        EXPECT_EQ(result.predictions[i], tree.predict(ds.testX[i]))
            << "sample " << i;
    EXPECT_GT(result.perf.queryLatencyNs, 0.0);
    EXPECT_GT(result.perf.searches, 0);
}

TEST(DecisionTree, AcamPacksAcrossSubarrays)
{
    Dataset ds = smallDataset();
    DecisionTree tree = DecisionTree::fit(ds, 7);
    arch::ArchSpec spec = acamSpec();
    // 16-row subarrays: deep trees need several.
    if (tree.numLeaves() > spec.rows) {
        AcamTreeRunResult result =
            runTreeOnAcam(tree, spec, ds.testX);
        EXPECT_GT(result.perf.subarraysUsed, 1);
        for (std::size_t i = 0; i < ds.testX.size(); ++i)
            EXPECT_EQ(result.predictions[i],
                      tree.predict(ds.testX[i]));
    }
}

TEST(DecisionTree, RequiresAcamDevice)
{
    Dataset ds = smallDataset();
    DecisionTree tree = DecisionTree::fit(ds, 3);
    arch::ArchSpec tcam;
    tcam.rows = 16;
    tcam.cols = 16;
    EXPECT_THROW(runTreeOnAcam(tree, tcam, ds.testX), CompilerError);
}

TEST(DecisionTree, RejectsTooWideFeatures)
{
    Dataset ds = makePneumoniaLike(100, 10, 64, 0.2, 5);
    DecisionTree tree = DecisionTree::fit(ds, 3);
    arch::ArchSpec spec = acamSpec(); // 16 columns < 64 features
    EXPECT_THROW(runTreeOnAcam(tree, spec, ds.testX), CompilerError);
}
