/** @file cam-map pass tests, including Table I subarray counts. */

#include <gtest/gtest.h>

#include "dialects/AllDialects.h"
#include "frontend/TorchScriptFrontend.h"
#include "ir/Pass.h"
#include "ir/Verifier.h"
#include "passes/CamMapping.h"
#include "passes/CamOptimization.h"
#include "passes/CimFuseOps.h"
#include "passes/CimSimilarityMatching.h"
#include "passes/TorchToCim.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::ir;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;
using c4cam::passes::MappingPlan;

namespace {

struct MappingFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        dialects::loadAllDialects(ctx);
    }

    Module
    mapped(const ArchSpec &spec, std::int64_t queries = 2,
           std::int64_t rows = 8, std::int64_t dims = 64)
    {
        std::ostringstream src;
        src << "def forward(input: Tensor[" << queries << ", " << dims
            << "], weight: Tensor[" << rows << ", " << dims << "]):\n"
            << "    others = weight.transpose(-2, -1)\n"
            << "    scores = torch.matmul(input, others)\n"
            << "    v, i = torch.topk(scores, 1, largest=True)\n"
            << "    return v, i\n";
        Module module = frontend::parseTorchScriptModule(ctx, src.str());
        PassManager pm;
        pm.add<passes::TorchToCimPass>();
        pm.add<passes::CimFuseOpsPass>();
        pm.add<passes::CimSimilarityMatchingPass>();
        pm.add<passes::CamMappingPass>(spec);
        pm.run(module);
        return module;
    }

    int
    countOps(Module &module, const std::string &name)
    {
        int count = 0;
        module.walk([&](Operation *op) {
            if (op->name() == name)
                ++count;
        });
        return count;
    }

    int
    countLoops(Module &module, const std::string &kind,
               const std::string &level)
    {
        int count = 0;
        module.walk([&](Operation *op) {
            if (op->name() == kind &&
                op->strAttrOr("level", "") == level)
                ++count;
        });
        return count;
    }

    Context ctx;
};

} // namespace

TEST(MappingPlan, TableICamBased)
{
    // Table I, row "cam-based": 8192-dim HDC with 10 classes.
    const std::int64_t expected[] = {512, 256, 128, 64, 32};
    const int sizes[] = {16, 32, 64, 128, 256};
    for (int i = 0; i < 5; ++i) {
        ArchSpec spec = ArchSpec::dseSetup(sizes[i], OptTarget::Base);
        MappingPlan plan = MappingPlan::compute(spec, 100, 10, 8192);
        EXPECT_EQ(plan.physicalSubarrays, expected[i])
            << "size " << sizes[i];
    }
}

TEST(MappingPlan, TableICamDensity)
{
    // Table I, row "cam-density": selective search packs
    // floor(rows/10) batches per subarray -> 512/86/22/6/2.
    const std::int64_t expected[] = {512, 86, 22, 6, 2};
    const int sizes[] = {16, 32, 64, 128, 256};
    for (int i = 0; i < 5; ++i) {
        ArchSpec spec = ArchSpec::dseSetup(sizes[i], OptTarget::Density);
        MappingPlan plan = MappingPlan::compute(spec, 100, 10, 8192);
        EXPECT_EQ(plan.physicalSubarrays, expected[i])
            << "size " << sizes[i];
    }
}

TEST(MappingPlan, BankCountFollowsHierarchy)
{
    // 4 mats x 4 arrays x 8 subarrays = 128 subarrays per bank.
    ArchSpec spec = ArchSpec::dseSetup(16, OptTarget::Base);
    MappingPlan plan = MappingPlan::compute(spec, 100, 10, 8192);
    EXPECT_EQ(plan.banks, 4); // 512 / 128
    plan = MappingPlan::compute(spec, 100, 10, 1024); // 64 tiles
    EXPECT_EQ(plan.banks, 1);
}

TEST(MappingPlan, RowTilingForLargeDatasets)
{
    // KNN: 5216 stored rows on 64-row subarrays -> 82 row tiles.
    ArchSpec spec = ArchSpec::dseSetup(64, OptTarget::Base);
    MappingPlan plan = MappingPlan::compute(spec, 10, 5216, 1024);
    EXPECT_EQ(plan.rowTiles, 82);
    EXPECT_EQ(plan.colTiles, 16);
    EXPECT_EQ(plan.logicalTiles, 82 * 16);
    EXPECT_EQ(plan.batchesPerSubarray, 1); // rows exceed the subarray
}

TEST_F(MappingFixture, GeneratesAllCamOps)
{
    ArchSpec spec = ArchSpec::dseSetup(32, OptTarget::Base);
    Module module = mapped(spec);
    verifyModule(module);
    EXPECT_EQ(countOps(module, "cam.alloc_bank"), 1);
    EXPECT_EQ(countOps(module, "cam.alloc_mat"), 1);
    EXPECT_EQ(countOps(module, "cam.alloc_array"), 1);
    EXPECT_EQ(countOps(module, "cam.alloc_subarray"), 1);
    EXPECT_EQ(countOps(module, "cam.get_subarray"), 1);
    EXPECT_EQ(countOps(module, "cam.write_value"), 1);
    EXPECT_EQ(countOps(module, "cam.search"), 1);
    EXPECT_EQ(countOps(module, "cam.read"), 1);
    EXPECT_EQ(countOps(module, "cam.merge_partial_subarray"), 1);
    // No cim compute ops survive except the final top-k.
    EXPECT_EQ(countOps(module, "cim.similarity"), 0);
    EXPECT_EQ(countOps(module, "cim.execute"), 0);
    EXPECT_EQ(countOps(module, "cim.topk"), 1);
}

TEST_F(MappingFixture, BaseTargetUsesParallelLoops)
{
    ArchSpec spec = ArchSpec::dseSetup(32, OptTarget::Base);
    Module module = mapped(spec);
    // Query-phase hierarchy levels are scf.parallel.
    EXPECT_EQ(countLoops(module, "scf.parallel", "bank"), 1);
    EXPECT_EQ(countLoops(module, "scf.parallel", "mat"), 1);
    EXPECT_EQ(countLoops(module, "scf.parallel", "array"), 1);
    EXPECT_EQ(countLoops(module, "scf.parallel", "subarray"), 1);
}

TEST_F(MappingFixture, PowerTargetSerializesSubarrayLoop)
{
    ArchSpec spec = ArchSpec::dseSetup(32, OptTarget::Power);
    Module module = mapped(spec);
    EXPECT_EQ(countLoops(module, "scf.parallel", "subarray"), 0);
    // Setup loop + query loop both sequential at subarray level.
    EXPECT_GE(countLoops(module, "scf.for", "subarray"), 2);
    // Other levels stay parallel.
    EXPECT_EQ(countLoops(module, "scf.parallel", "bank"), 1);
}

TEST_F(MappingFixture, ChunkedPowerMapping)
{
    ArchSpec spec = ArchSpec::dseSetup(32, OptTarget::Base);
    spec.maxActiveSubarrays = 4; // half of the 8 subarrays at a time
    Module module = mapped(spec);
    EXPECT_EQ(countLoops(module, "scf.for", "subarray_chunk"), 1);
    EXPECT_EQ(countLoops(module, "scf.parallel", "subarray"), 1);
}

TEST_F(MappingFixture, SequentialAccessModeRespected)
{
    ArchSpec spec = ArchSpec::dseSetup(32, OptTarget::Base);
    spec.matMode = arch::AccessMode::Sequential;
    Module module = mapped(spec);
    EXPECT_EQ(countLoops(module, "scf.parallel", "mat"), 0);
    EXPECT_GE(countLoops(module, "scf.for", "mat"), 2);
}

TEST_F(MappingFixture, DensityUnrollsBatches)
{
    // 8 stored rows on 32-row subarrays -> 4 batches per subarray.
    ArchSpec spec = ArchSpec::dseSetup(32, OptTarget::Density);
    Module module = mapped(spec, 2, 8, 64);
    // 64/32 = 2 col tiles packed into ceil(2/4) = 1 subarray;
    // setup writes one slice per batch (2 batches used).
    EXPECT_EQ(countOps(module, "cam.write_value"), 4);
    EXPECT_EQ(countOps(module, "cam.search"), 4);
    verifyModule(module);
}

TEST_F(MappingFixture, SearchCarriesKindAndMetric)
{
    ArchSpec spec = ArchSpec::dseSetup(32, OptTarget::Base);
    Module module = mapped(spec);
    module.walk([&](Operation *op) {
        if (op->name() == "cam.search") {
            EXPECT_EQ(op->strAttr("kind"), "best");
            EXPECT_EQ(op->strAttr("metric"), "hamming");
            EXPECT_EQ(op->numOperands(), 4u); // row window operands
        }
    });
}

TEST_F(MappingFixture, CosineRejected)
{
    // Cosine cannot be mapped (normalization is not additive).
    Module module = frontend::parseTorchScriptModule(
        ctx,
        "def f(a: Tensor[2, 16], b: Tensor[4, 16]):\n"
        "    c = torch.matmul(a, b.transpose(-2, -1))\n"
        "    return c\n");
    PassManager pm;
    pm.add<passes::TorchToCimPass>();
    pm.add<passes::CimFuseOpsPass>();
    pm.add<passes::CimSimilarityMatchingPass>();
    pm.add<passes::CamMappingPass>(ArchSpec());
    // No similarity kernel found (plain matmul): cam-map refuses.
    EXPECT_THROW(pm.run(module), CompilerError);
}

TEST_F(MappingFixture, PowerOptPassRetunesMappedModule)
{
    ArchSpec spec = ArchSpec::dseSetup(32, OptTarget::Base);
    Module module = mapped(spec);
    auto pass = std::make_unique<passes::CamPowerOptPass>();
    auto *pass_ptr = pass.get();
    PassManager pm;
    pm.addPass(std::move(pass));
    pm.run(module);
    EXPECT_GE(pass_ptr->converted(), 1);
    EXPECT_EQ(countLoops(module, "scf.parallel", "subarray"), 0);
    verifyModule(module);
}

TEST_F(MappingFixture, LatencyOptPassParallelizesEverything)
{
    ArchSpec spec = ArchSpec::dseSetup(32, OptTarget::Power);
    Module module = mapped(spec);
    passes::CamLatencyOptPass pass;
    pass.run(module);
    EXPECT_GT(pass.converted(), 0);
    EXPECT_EQ(countLoops(module, "scf.for", "subarray"), 0);
    verifyModule(module);
}
