/** @file Tests for torch-to-cim, fuse, similarity match, partition. */

#include <gtest/gtest.h>

#include "dialects/AllDialects.h"
#include "frontend/TorchScriptFrontend.h"
#include "ir/Pass.h"
#include "ir/Verifier.h"
#include "passes/CimFuseOps.h"
#include "passes/CimPartition.h"
#include "passes/CimSimilarityMatching.h"
#include "passes/TorchToCim.h"
#include "runtime/Interpreter.h"
#include "support/Error.h"
#include "support/Rng.h"

using namespace c4cam;
using namespace c4cam::ir;
namespace cimd = c4cam::dialects::cim;

namespace {

const char *kDotKernel =
    "def forward(input: Tensor[4, 64], weight: Tensor[8, 64]):\n"
    "    others = weight.transpose(-2, -1)\n"
    "    scores = torch.matmul(input, others)\n"
    "    values, indices = torch.topk(scores, 1, largest=True)\n"
    "    return values, indices\n";

const char *kEuclKernel =
    "def forward(x: Tensor[4, 64], train: Tensor[8, 64]):\n"
    "    diff = torch.sub(x, train)\n"
    "    dist = torch.norm(diff, p=2)\n"
    "    v, i = torch.topk(dist, 3, largest=False)\n"
    "    return v, i\n";

struct PipelineFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        dialects::loadAllDialects(ctx);
    }

    Module
    import(const char *source)
    {
        return frontend::parseTorchScriptModule(ctx, source);
    }

    int
    countOps(Module &module, const std::string &name)
    {
        int count = 0;
        module.walk([&](Operation *op) {
            if (op->name() == name)
                ++count;
        });
        return count;
    }

    Context ctx;
};

} // namespace

TEST_F(PipelineFixture, TorchToCimWrapsEveryOp)
{
    Module module = import(kDotKernel);
    PassManager pm;
    pm.add<passes::TorchToCimPass>();
    pm.run(module);

    // Fig. 5a: one acquire/execute/release per torch op.
    EXPECT_EQ(countOps(module, cimd::kAcquire), 3);
    EXPECT_EQ(countOps(module, cimd::kExecute), 3);
    EXPECT_EQ(countOps(module, cimd::kRelease), 3);
    EXPECT_EQ(countOps(module, cimd::kTranspose), 1);
    EXPECT_EQ(countOps(module, cimd::kMatmul), 1);
    EXPECT_EQ(countOps(module, cimd::kTopk), 1);
    EXPECT_EQ(countOps(module, "torch.aten.matmul"), 0);
}

TEST_F(PipelineFixture, FusePassMergesExecuteBlocks)
{
    Module module = import(kDotKernel);
    PassManager pm;
    pm.add<passes::TorchToCimPass>();
    pm.add<passes::CimFuseOpsPass>();
    pm.run(module);

    // Fig. 5b: a single fused execute block.
    EXPECT_EQ(countOps(module, cimd::kExecute), 1);
    EXPECT_EQ(countOps(module, cimd::kAcquire), 1);
    EXPECT_EQ(countOps(module, cimd::kRelease), 1);
    // The three cim ops still exist, now inside one body.
    EXPECT_EQ(countOps(module, cimd::kTranspose), 1);
    EXPECT_EQ(countOps(module, cimd::kMatmul), 1);
}

TEST_F(PipelineFixture, SimilarityMatchRecognizesDotPattern)
{
    Module module = import(kDotKernel);
    PassManager pm;
    pm.add<passes::TorchToCimPass>();
    pm.add<passes::CimFuseOpsPass>();
    auto match = std::make_unique<passes::CimSimilarityMatchingPass>();
    passes::CimSimilarityMatchingPass *match_ptr = match.get();
    pm.addPass(std::move(match));
    pm.run(module);

    EXPECT_EQ(match_ptr->rewritten(), 1);
    EXPECT_EQ(countOps(module, cimd::kSimilarity), 1);
    EXPECT_EQ(countOps(module, cimd::kTranspose), 0);
    EXPECT_EQ(countOps(module, cimd::kMatmul), 0);
    EXPECT_EQ(countOps(module, cimd::kTopk), 0);

    module.walk([&](Operation *op) {
        if (op->name() == cimd::kSimilarity) {
            EXPECT_EQ(op->strAttr("metric"), "dot");
            EXPECT_EQ(op->intAttr("k"), 1);
            EXPECT_TRUE(op->boolAttrOr("largest", false));
        }
    });
}

TEST_F(PipelineFixture, SimilarityMatchRecognizesEuclPattern)
{
    Module module = import(kEuclKernel);
    PassManager pm;
    pm.add<passes::TorchToCimPass>();
    pm.add<passes::CimFuseOpsPass>();
    pm.add<passes::CimSimilarityMatchingPass>();
    pm.run(module);

    EXPECT_EQ(countOps(module, cimd::kSimilarity), 1);
    module.walk([&](Operation *op) {
        if (op->name() == cimd::kSimilarity) {
            EXPECT_EQ(op->strAttr("metric"), "eucl");
            EXPECT_EQ(op->intAttr("k"), 3);
        }
    });
}

TEST_F(PipelineFixture, NonSimilarityBodyLeftAlone)
{
    // A lone matmul is CIM-executable but not a similarity kernel.
    Module module = import(
        "def f(a: Tensor[4, 8], b: Tensor[4, 8]):\n"
        "    c = torch.matmul(a, b.transpose(-2, -1))\n"
        "    return c\n");
    PassManager pm;
    pm.add<passes::TorchToCimPass>();
    pm.add<passes::CimFuseOpsPass>();
    auto match = std::make_unique<passes::CimSimilarityMatchingPass>();
    auto *match_ptr = match.get();
    pm.addPass(std::move(match));
    pm.run(module);
    EXPECT_EQ(match_ptr->rewritten(), 0);
    EXPECT_EQ(countOps(module, cimd::kSimilarity), 0);
    EXPECT_EQ(countOps(module, cimd::kMatmul), 1);
}

TEST_F(PipelineFixture, HostExecutionPreservedThroughEveryStage)
{
    // The kernel computes the same answer at torch, cim, fused and
    // similarity levels (host interpretation).
    auto query = rt::Buffer::alloc(rt::DType::F32, {4, 64});
    auto stored = rt::Buffer::alloc(rt::DType::F32, {8, 64});
    Rng rng(3);
    for (std::int64_t r = 0; r < 8; ++r)
        for (std::int64_t d = 0; d < 64; ++d)
            stored->set({r, d}, rng.nextBool() ? 1.0 : -1.0);
    for (std::int64_t q = 0; q < 4; ++q)
        for (std::int64_t d = 0; d < 64; ++d)
            query->set({q, d}, stored->at({q * 2, d}));

    auto run_stages = [&](int stages) {
        Module module = import(kDotKernel);
        PassManager pm;
        if (stages >= 1)
            pm.add<passes::TorchToCimPass>();
        if (stages >= 2)
            pm.add<passes::CimFuseOpsPass>();
        if (stages >= 3)
            pm.add<passes::CimSimilarityMatchingPass>();
        if (stages >= 4)
            pm.add<passes::CimPartitionPass>(arch::ArchSpec());
        pm.run(module);
        rt::Interpreter interp(module, nullptr);
        auto results = interp.callFunction(
            "forward", {rt::RtValue(query), rt::RtValue(stored)});
        std::vector<std::int64_t> indices;
        for (std::int64_t q = 0; q < 4; ++q)
            indices.push_back(results[1].asBuffer()->atInt({q, 0}));
        return indices;
    };

    auto reference = run_stages(0);
    EXPECT_EQ(reference, (std::vector<std::int64_t>{0, 2, 4, 6}));
    for (int stages = 1; stages <= 4; ++stages)
        EXPECT_EQ(run_stages(stages), reference) << "stage " << stages;
}

TEST_F(PipelineFixture, PartitionCreatesTileLoop)
{
    Module module = import(kDotKernel);
    PassManager pm;
    pm.add<passes::TorchToCimPass>();
    pm.add<passes::CimFuseOpsPass>();
    pm.add<passes::CimSimilarityMatchingPass>();
    arch::ArchSpec spec;
    spec.cols = 16; // 64 / 16 = 4 tiles
    pm.add<passes::CimPartitionPass>(spec);
    pm.run(module);

    // Fig. 5d: loop + slices + partial similarity + merge + final topk.
    EXPECT_EQ(countOps(module, "scf.for"), 1);
    EXPECT_EQ(countOps(module, "tensor.extract_slice"), 2);
    EXPECT_EQ(countOps(module, cimd::kMergePartial), 1);
    EXPECT_EQ(countOps(module, cimd::kTopk), 1);
    int partial = 0;
    module.walk([&](Operation *op) {
        if (op->name() == cimd::kSimilarity &&
            op->boolAttrOr("partial", false))
            ++partial;
    });
    EXPECT_EQ(partial, 1);
}

TEST_F(PipelineFixture, PartitionNoopWhenKernelFits)
{
    Module module = import(kDotKernel);
    PassManager pm;
    pm.add<passes::TorchToCimPass>();
    pm.add<passes::CimFuseOpsPass>();
    pm.add<passes::CimSimilarityMatchingPass>();
    arch::ArchSpec spec;
    spec.cols = 64; // kernel fits in one subarray width
    pm.add<passes::CimPartitionPass>(spec);
    pm.run(module);
    EXPECT_EQ(countOps(module, "scf.for"), 0);
    EXPECT_EQ(countOps(module, cimd::kSimilarity), 1);
}

TEST_F(PipelineFixture, PartitionRequiresDivisibility)
{
    Module module = import(kDotKernel);
    PassManager pm;
    pm.add<passes::TorchToCimPass>();
    pm.add<passes::CimFuseOpsPass>();
    pm.add<passes::CimSimilarityMatchingPass>();
    arch::ArchSpec spec;
    spec.cols = 48; // 64 % 48 != 0
    pm.add<passes::CimPartitionPass>(spec);
    EXPECT_THROW(pm.run(module), CompilerError);
}
