/** @file cim-to-loops host-path lowering tests. */

#include <cmath>

#include <gtest/gtest.h>

#include "dialects/AllDialects.h"
#include "frontend/TorchScriptFrontend.h"
#include "ir/Parser.h"
#include "ir/Pass.h"
#include "ir/Verifier.h"
#include "passes/CimFuseOps.h"
#include "passes/CimSimilarityMatching.h"
#include "passes/CimToLoops.h"
#include "passes/TorchToCim.h"
#include "runtime/Interpreter.h"
#include "support/Rng.h"

using namespace c4cam;
using namespace c4cam::ir;

namespace {

struct LoopsFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        dialects::loadAllDialects(ctx);
    }

    Module
    lower(const std::string &source, int *lowered = nullptr)
    {
        Module module = frontend::parseTorchScriptModule(ctx, source);
        PassManager pm;
        pm.add<passes::TorchToCimPass>();
        pm.add<passes::CimFuseOpsPass>();
        pm.add<passes::CimSimilarityMatchingPass>();
        auto pass = std::make_unique<passes::CimToLoopsPass>();
        auto *raw = pass.get();
        pm.addPass(std::move(pass));
        pm.run(module);
        if (lowered)
            *lowered = raw->lowered();
        return module;
    }

    int
    countOps(Module &module, const std::string &name)
    {
        int count = 0;
        module.walk([&](Operation *op) {
            if (op->name() == name)
                ++count;
        });
        return count;
    }

    Context ctx;
};

const char *kDotKernel =
    "def forward(input: Tensor[3, 32], weight: Tensor[5, 32]):\n"
    "    others = weight.transpose(-2, -1)\n"
    "    scores = torch.matmul(input, others)\n"
    "    v, i = torch.topk(scores, 2, largest=True)\n"
    "    return v, i\n";

const char *kEuclKernel =
    "def forward(x: Tensor[3, 32], train: Tensor[5, 32]):\n"
    "    diff = torch.sub(x, train)\n"
    "    dist = torch.norm(diff, p=2)\n"
    "    v, i = torch.topk(dist, 2, largest=False)\n"
    "    return v, i\n";

} // namespace

TEST_F(LoopsFixture, LowersToPlainLoops)
{
    int lowered = 0;
    Module module = lower(kDotKernel, &lowered);
    EXPECT_EQ(lowered, 1);
    verifyModule(module);
    // Three nested scf.for loops, no cim device ops except topk.
    EXPECT_EQ(countOps(module, "scf.for"), 3);
    EXPECT_EQ(countOps(module, "cim.similarity"), 0);
    EXPECT_EQ(countOps(module, "cim.acquire"), 0);
    EXPECT_EQ(countOps(module, "cim.execute"), 0);
    EXPECT_EQ(countOps(module, "cim.topk"), 1);
    EXPECT_GE(countOps(module, "memref.load"), 2);
}

TEST_F(LoopsFixture, DotLoopsMatchTorchReference)
{
    Rng rng(21);
    auto stored = rt::Buffer::alloc(rt::DType::F32, {5, 32});
    auto query = rt::Buffer::alloc(rt::DType::F32, {3, 32});
    for (std::int64_t r = 0; r < 5; ++r)
        for (std::int64_t c = 0; c < 32; ++c)
            stored->set({r, c}, rng.nextGaussian());
    for (std::int64_t r = 0; r < 3; ++r)
        for (std::int64_t c = 0; c < 32; ++c)
            query->set({r, c}, rng.nextGaussian());

    Module reference = frontend::parseTorchScriptModule(ctx, kDotKernel);
    rt::Interpreter ref_interp(reference, nullptr);
    auto ref = ref_interp.callFunction(
        "forward", {rt::RtValue(query), rt::RtValue(stored)});

    Module loops = lower(kDotKernel);
    rt::Interpreter loop_interp(loops, nullptr);
    auto got = loop_interp.callFunction(
        "forward", {rt::RtValue(query), rt::RtValue(stored)});

    for (std::int64_t r = 0; r < 3; ++r) {
        for (std::int64_t c = 0; c < 2; ++c) {
            EXPECT_NEAR(got[0].asBuffer()->at({r, c}),
                        ref[0].asBuffer()->at({r, c}), 1e-6);
            EXPECT_EQ(got[1].asBuffer()->atInt({r, c}),
                      ref[1].asBuffer()->atInt({r, c}));
        }
    }
}

TEST_F(LoopsFixture, EuclLoopsMatchTorchReferenceIncludingSqrt)
{
    Rng rng(22);
    auto stored = rt::Buffer::alloc(rt::DType::F32, {5, 32});
    auto query = rt::Buffer::alloc(rt::DType::F32, {3, 32});
    for (std::int64_t r = 0; r < 5; ++r)
        for (std::int64_t c = 0; c < 32; ++c)
            stored->set({r, c}, rng.nextGaussian());
    for (std::int64_t r = 0; r < 3; ++r)
        for (std::int64_t c = 0; c < 32; ++c)
            query->set({r, c}, rng.nextGaussian());

    Module reference =
        frontend::parseTorchScriptModule(ctx, kEuclKernel);
    rt::Interpreter ref_interp(reference, nullptr);
    auto ref = ref_interp.callFunction(
        "forward", {rt::RtValue(query), rt::RtValue(stored)});

    Module loops = lower(kEuclKernel);
    rt::Interpreter loop_interp(loops, nullptr);
    auto got = loop_interp.callFunction(
        "forward", {rt::RtValue(query), rt::RtValue(stored)});

    for (std::int64_t r = 0; r < 3; ++r) {
        for (std::int64_t c = 0; c < 2; ++c) {
            // Values agree including the final sqrt.
            EXPECT_NEAR(got[0].asBuffer()->at({r, c}),
                        ref[0].asBuffer()->at({r, c}), 1e-5);
            EXPECT_EQ(got[1].asBuffer()->atInt({r, c}),
                      ref[1].asBuffer()->atInt({r, c}));
        }
    }
}

TEST_F(LoopsFixture, LoweredModuleRoundTripsThroughText)
{
    Module loops = lower(kDotKernel);
    std::string text = loops.str();
    Module reparsed = parseModule(ctx, text);
    verifyModule(reparsed);
    EXPECT_EQ(reparsed.str(), text);
}

TEST_F(LoopsFixture, NoSimilarityKernelIsNoop)
{
    Module module = frontend::parseTorchScriptModule(
        ctx,
        "def f(a: Tensor[2, 4], b: Tensor[4, 2]):\n"
        "    c = torch.matmul(a, b)\n"
        "    return c\n");
    PassManager pm;
    pm.add<passes::TorchToCimPass>();
    pm.add<passes::CimFuseOpsPass>();
    pm.add<passes::CimSimilarityMatchingPass>();
    auto pass = std::make_unique<passes::CimToLoopsPass>();
    auto *raw = pass.get();
    pm.addPass(std::move(pass));
    pm.run(module);
    EXPECT_EQ(raw->lowered(), 0);
}
