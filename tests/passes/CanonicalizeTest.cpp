/** @file Canonicalization (fold / dedup / DCE) tests. */

#include <gtest/gtest.h>

#include "dialects/AllDialects.h"
#include "ir/Builder.h"
#include "ir/Verifier.h"
#include "passes/Canonicalize.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::ir;

namespace {

struct CanonFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        dialects::loadAllDialects(ctx);
        module = std::make_unique<Module>(ctx);
        func = dialects::createFunction(*module, "f", {ctx.indexType()});
        body = dialects::funcBody(func);
        builder = std::make_unique<OpBuilder>(ctx);
        builder->setInsertionPointToEnd(body);
    }

    void
    finishAndRun(const std::vector<Value *> &returns = {})
    {
        builder->create(kReturnOpName, returns, {});
        passes::CanonicalizePass pass;
        pass.run(*module);
        removed = pass.removed();
        verifyModule(*module);
    }

    int
    countOps(const std::string &name)
    {
        int count = 0;
        module->walk([&](Operation *op) {
            if (op->name() == name)
                ++count;
        });
        return count;
    }

    Context ctx;
    std::unique_ptr<Module> module;
    Operation *func = nullptr;
    Block *body = nullptr;
    std::unique_ptr<OpBuilder> builder;
    int removed = 0;
};

} // namespace

TEST_F(CanonFixture, FoldsIntegerArithmetic)
{
    Value *a = builder->constantIndex(6);
    Value *b = builder->constantIndex(7);
    Value *mul = builder->create("arith.muli", {a, b},
                                 {ctx.indexType()})
                     ->result(0);
    finishAndRun({mul});

    // muli gone; the return operand is a folded constant 42.
    EXPECT_EQ(countOps("arith.muli"), 0);
    Operation *ret = body->back();
    Operation *def = ret->operand(0)->definingOp();
    ASSERT_EQ(def->name(), "arith.constant");
    EXPECT_EQ(def->intAttr("value"), 42);
}

TEST_F(CanonFixture, FoldsChains)
{
    // (2 + 3) * 4 - 20 == 0
    Value *two = builder->constantIndex(2);
    Value *three = builder->constantIndex(3);
    Value *four = builder->constantIndex(4);
    Value *twenty = builder->constantIndex(20);
    Value *sum = builder->create("arith.addi", {two, three},
                                 {ctx.indexType()})
                     ->result(0);
    Value *prod = builder->create("arith.muli", {sum, four},
                                  {ctx.indexType()})
                      ->result(0);
    Value *diff = builder->create("arith.subi", {prod, twenty},
                                  {ctx.indexType()})
                      ->result(0);
    finishAndRun({diff});
    Operation *def = body->back()->operand(0)->definingOp();
    ASSERT_EQ(def->name(), "arith.constant");
    EXPECT_EQ(def->intAttr("value"), 0);
}

TEST_F(CanonFixture, AlgebraicIdentities)
{
    Value *x = body->argument(0);
    Value *zero = builder->constantIndex(0);
    Value *one = builder->constantIndex(1);
    Value *add = builder->create("arith.addi", {x, zero},
                                 {ctx.indexType()})
                     ->result(0);
    Value *mul = builder->create("arith.muli", {add, one},
                                 {ctx.indexType()})
                     ->result(0);
    finishAndRun({mul});
    // Everything folds away to the block argument.
    EXPECT_EQ(body->back()->operand(0), x);
    EXPECT_EQ(countOps("arith.addi"), 0);
    EXPECT_EQ(countOps("arith.muli"), 0);
}

TEST_F(CanonFixture, FoldsComparisons)
{
    Value *a = builder->constantIndex(3);
    Value *b = builder->constantIndex(5);
    Value *lt = builder
                    ->create("arith.cmpi", {a, b}, {ctx.i1()},
                             {{"predicate", Attribute("slt")}})
                    ->result(0);
    finishAndRun({lt});
    Operation *def = body->back()->operand(0)->definingOp();
    ASSERT_EQ(def->name(), "arith.constant");
    EXPECT_TRUE(def->attr("value").asBool());
}

TEST_F(CanonFixture, ErasesConstantFalseGuards)
{
    Value *a = builder->constantIndex(9);
    Value *b = builder->constantIndex(5);
    Value *cond = builder
                      ->create("arith.cmpi", {a, b}, {ctx.i1()},
                               {{"predicate", Attribute("slt")}})
                      ->result(0);
    Operation *guard = builder->create("scf.if", {cond}, {}, {}, 1);
    Block &then = guard->region(0).addBlock();
    OpBuilder inner(ctx);
    inner.setInsertionPointToEnd(&then);
    Value *buf = builder->create("memref.alloc", {},
                                 {ctx.memrefType({1}, ctx.f32())})
                     ->result(0);
    inner.create("memref.copy", {buf, buf}, {});
    finishAndRun();
    EXPECT_EQ(countOps("scf.if"), 0);
    EXPECT_EQ(countOps("memref.copy"), 0);
}

TEST_F(CanonFixture, KeepsConstantTrueGuards)
{
    Value *a = builder->constantIndex(1);
    Value *b = builder->constantIndex(5);
    Value *cond = builder
                      ->create("arith.cmpi", {a, b}, {ctx.i1()},
                               {{"predicate", Attribute("slt")}})
                      ->result(0);
    Operation *guard = builder->create("scf.if", {cond}, {}, {}, 1);
    guard->region(0).addBlock();
    finishAndRun();
    EXPECT_EQ(countOps("scf.if"), 1);
}

TEST_F(CanonFixture, DeduplicatesConstants)
{
    Value *a = builder->constantIndex(7);
    Value *b = builder->constantIndex(7);
    Value *sum = builder->create("arith.addi", {a, b},
                                 {ctx.indexType()})
                     ->result(0);
    // Keep the result alive through an effectful op so folding does
    // not erase everything before dedup is observable.
    Value *buf = builder->create("memref.alloc", {},
                                 {ctx.memrefType({1}, ctx.f32())})
                     ->result(0);
    Value *fp = builder->create("arith.sitofp", {sum}, {ctx.f32()})
                    ->result(0);
    Value *zero = builder->constantIndex(0);
    builder->create("memref.store", {fp, buf, zero}, {});
    finishAndRun();
    // 7+7 folds to 14; the two 7-constants die.
    Operation *store = body->back()->prevOp();
    ASSERT_EQ(store->name(), "memref.store");
    EXPECT_EQ(countOps("arith.addi"), 0);
}

TEST_F(CanonFixture, DeadCodeElimination)
{
    Value *x = body->argument(0);
    // Unused pure chain.
    Value *dead1 = builder->create("arith.addi", {x, x},
                                   {ctx.indexType()})
                       ->result(0);
    builder->create("arith.muli", {dead1, x}, {ctx.indexType()});
    // Live effectful op.
    builder->create("memref.alloc", {}, {ctx.memrefType({1}, ctx.f32())});
    finishAndRun();
    EXPECT_EQ(countOps("arith.addi"), 0);
    EXPECT_EQ(countOps("arith.muli"), 0);
    // memref.alloc is pure per isPure? It is NOT in the pure set, so
    // it survives even when unused (allocation observable via report).
    EXPECT_EQ(countOps("memref.alloc"), 1);
    EXPECT_GE(removed, 2);
}

TEST_F(CanonFixture, DivisionByZeroNotFolded)
{
    Value *a = builder->constantIndex(5);
    Value *zero = builder->constantIndex(0);
    Value *div = builder->create("arith.divsi", {a, zero},
                                 {ctx.indexType()})
                     ->result(0);
    finishAndRun({div});
    // Kept as-is: folding would hide the runtime error.
    EXPECT_EQ(countOps("arith.divsi"), 1);
}

TEST(CanonicalizeIsPure, Classification)
{
    EXPECT_TRUE(passes::isPure("arith.addi"));
    EXPECT_TRUE(passes::isPure("tensor.extract_slice"));
    EXPECT_FALSE(passes::isPure("cam.search"));
    EXPECT_FALSE(passes::isPure("memref.store"));
    EXPECT_FALSE(passes::isPure("scf.for"));
    EXPECT_FALSE(passes::isPure("func.return"));
    EXPECT_FALSE(passes::isPure("cim.execute"));
}
