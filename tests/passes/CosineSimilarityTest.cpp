/** @file Cosine-pattern (Algorithm 1, CosSimPattern) tests.
 *
 * The cosine chain uses the 3-operand cim.div form
 * (div(matmul, |q|, |s|)), which the TorchScript frontend cannot
 * express, so the IR is built directly -- mirroring how a custom
 * frontend would emit it.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "dialects/AllDialects.h"
#include "ir/Builder.h"
#include "ir/Pass.h"
#include "ir/Verifier.h"
#include "passes/CamMapping.h"
#include "passes/CimSimilarityMatching.h"
#include "runtime/Interpreter.h"
#include "support/Rng.h"

using namespace c4cam;
using namespace c4cam::ir;
namespace cimd = c4cam::dialects::cim;

namespace {

/** Build the fused cosine execute block (norm, norm, transpose,
 *  matmul, div) for Q x D queries against N x D stored rows. */
Module
buildCosineModule(Context &ctx, std::int64_t q, std::int64_t n,
                  std::int64_t d)
{
    Module module(ctx);
    Type query_t = ctx.tensorType({q, d}, ctx.f32());
    Type stored_t = ctx.tensorType({n, d}, ctx.f32());
    Operation *func = dialects::createFunction(module, "forward",
                                               {query_t, stored_t});
    Block *body = dialects::funcBody(func);
    Value *query = body->argument(0);
    Value *stored = body->argument(1);

    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(body);
    Type scores_t = ctx.tensorType({q, n}, ctx.f32());
    Operation *execute = cimd::createAcquireExecuteRelease(
        builder, {query, stored}, {scores_t});

    OpBuilder inner(ctx);
    inner.setInsertionPointToEnd(cimd::executeBody(execute));
    Value *qn = inner.create(cimd::kNorm, {query},
                             {ctx.tensorType({q}, ctx.f32())},
                             {{"p", Attribute(std::int64_t(2))}})
                    ->result(0);
    Value *sn = inner.create(cimd::kNorm, {stored},
                             {ctx.tensorType({n}, ctx.f32())},
                             {{"p", Attribute(std::int64_t(2))}})
                    ->result(0);
    Value *st = inner.create(cimd::kTranspose, {stored},
                             {ctx.tensorType({d, n}, ctx.f32())})
                    ->result(0);
    Value *mm = inner.create(cimd::kMatmul, {query, st}, {scores_t})
                    ->result(0);
    Value *cos = inner.create(cimd::kDiv, {mm, qn, sn}, {scores_t})
                     ->result(0);
    inner.create(cimd::kYield, {cos}, {});

    builder.create(kReturnOpName, {execute->result(0)}, {});
    return module;
}

} // namespace

TEST(CosineSimilarity, AlgorithmOneMatchesCosChain)
{
    Context ctx;
    dialects::loadAllDialects(ctx);
    Module module = buildCosineModule(ctx, 3, 5, 16);
    verifyModule(module);

    PassManager pm;
    auto pass = std::make_unique<passes::CimSimilarityMatchingPass>();
    auto *raw = pass.get();
    pm.addPass(std::move(pass));
    pm.run(module);

    EXPECT_EQ(raw->rewritten(), 1);
    int similarity = 0;
    module.walk([&](Operation *op) {
        if (op->name() == cimd::kSimilarity) {
            ++similarity;
            EXPECT_EQ(op->strAttr("metric"), "cos");
            EXPECT_TRUE(op->boolAttrOr("partial", false));
        }
    });
    EXPECT_EQ(similarity, 1);
}

TEST(CosineSimilarity, RewrittenModuleComputesCosineScores)
{
    Context ctx;
    dialects::loadAllDialects(ctx);
    Module module = buildCosineModule(ctx, 2, 4, 8);

    // Reference inputs.
    Rng rng(31);
    auto query = rt::Buffer::alloc(rt::DType::F32, {2, 8});
    auto stored = rt::Buffer::alloc(rt::DType::F32, {4, 8});
    for (std::int64_t r = 0; r < 2; ++r)
        for (std::int64_t c = 0; c < 8; ++c)
            query->set({r, c}, rng.nextGaussian());
    for (std::int64_t r = 0; r < 4; ++r)
        for (std::int64_t c = 0; c < 8; ++c)
            stored->set({r, c}, rng.nextGaussian());

    // Run before the rewrite (raw chain).
    rt::Interpreter before(module, nullptr);
    auto raw = before.callFunction(
        "forward", {rt::RtValue(query), rt::RtValue(stored)});

    // Rewrite and run again.
    PassManager pm;
    pm.add<passes::CimSimilarityMatchingPass>();
    pm.run(module);
    rt::Interpreter after(module, nullptr);
    auto rewritten = after.callFunction(
        "forward", {rt::RtValue(query), rt::RtValue(stored)});

    for (std::int64_t r = 0; r < 2; ++r) {
        for (std::int64_t n = 0; n < 4; ++n) {
            double a = raw[0].asBuffer()->at({r, n});
            double b = rewritten[0].asBuffer()->at({r, n});
            EXPECT_NEAR(a, b, 1e-6);
            EXPECT_LE(std::abs(b), 1.0 + 1e-6); // cosine range
        }
    }
}

TEST(CosineSimilarity, CamMapRejectsCosine)
{
    // Normalization is not additive across subarrays: the device path
    // must refuse (documented limitation).
    Context ctx;
    dialects::loadAllDialects(ctx);
    Module module = buildCosineModule(ctx, 2, 4, 8);
    PassManager pm;
    pm.add<passes::CimSimilarityMatchingPass>();
    pm.add<passes::CamMappingPass>(arch::ArchSpec());
    EXPECT_THROW(pm.run(module), CompilerError);
}
