/** @file Pattern-rewrite driver unit tests. */

#include <gtest/gtest.h>

#include "dialects/AllDialects.h"
#include "ir/Builder.h"
#include "ir/Rewrite.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::ir;

namespace {

/** Fold addi(c0, x) -> x (left identity). */
class FoldAddZero : public RewritePattern
{
  public:
    FoldAddZero() : RewritePattern("arith.addi") {}

    bool
    matchAndRewrite(Operation *op, PatternRewriter &rewriter) const override
    {
        Operation *lhs = op->operand(0)->definingOp();
        if (!lhs || lhs->name() != "arith.constant" ||
            lhs->intAttrOr("value", -1) != 0)
            return false;
        rewriter.replaceOp(op, {op->operand(1)});
        return true;
    }
};

/** Rewrite muli(x, c1) -> x. */
class FoldMulOne : public RewritePattern
{
  public:
    FoldMulOne() : RewritePattern("arith.muli", /*benefit=*/5) {}

    bool
    matchAndRewrite(Operation *op, PatternRewriter &rewriter) const override
    {
        Operation *rhs = op->operand(1)->definingOp();
        if (!rhs || rhs->name() != "arith.constant" ||
            rhs->intAttrOr("value", -1) != 1)
            return false;
        rewriter.replaceOp(op, {op->operand(0)});
        return true;
    }
};

struct RewriteFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        dialects::loadAllDialects(ctx);
    }

    Context ctx;
};

} // namespace

TEST_F(RewriteFixture, AppliesSinglePattern)
{
    Module module(ctx);
    Operation *func =
        dialects::createFunction(module, "f", {ctx.indexType()});
    Block *body = dialects::funcBody(func);
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(body);
    Value *zero = builder.constantIndex(0);
    Value *sum = builder
                     .create("arith.addi", {zero, body->argument(0)},
                             {ctx.indexType()})
                     ->result(0);
    builder.create(kReturnOpName, {sum}, {});

    RewritePatternSet patterns;
    patterns.insert<FoldAddZero>();
    EXPECT_TRUE(applyPatternsGreedily(module.op(), patterns));

    // The return now uses the argument directly.
    Operation *ret = body->back();
    EXPECT_EQ(ret->operand(0), body->argument(0));
    // Fixpoint: second run changes nothing.
    EXPECT_FALSE(applyPatternsGreedily(module.op(), patterns));
}

TEST_F(RewriteFixture, CascadingRewritesReachFixpoint)
{
    Module module(ctx);
    Operation *func =
        dialects::createFunction(module, "f", {ctx.indexType()});
    Block *body = dialects::funcBody(func);
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(body);
    Value *zero = builder.constantIndex(0);
    Value *v = body->argument(0);
    // addi(0, addi(0, x)) needs two rounds through the chain.
    Value *inner =
        builder.create("arith.addi", {zero, v}, {ctx.indexType()})
            ->result(0);
    Value *outer =
        builder.create("arith.addi", {zero, inner}, {ctx.indexType()})
            ->result(0);
    builder.create(kReturnOpName, {outer}, {});

    RewritePatternSet patterns;
    patterns.insert<FoldAddZero>();
    EXPECT_TRUE(applyPatternsGreedily(module.op(), patterns));
    EXPECT_EQ(body->back()->operand(0), v);
}

TEST_F(RewriteFixture, BenefitOrdersPatterns)
{
    // Both patterns could fire on different ops; ensure both apply and
    // higher benefit runs first (mul fold has benefit 5).
    Module module(ctx);
    Operation *func =
        dialects::createFunction(module, "f", {ctx.indexType()});
    Block *body = dialects::funcBody(func);
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(body);
    Value *zero = builder.constantIndex(0);
    Value *one = builder.constantIndex(1);
    Value *m = builder
                   .create("arith.muli", {body->argument(0), one},
                           {ctx.indexType()})
                   ->result(0);
    Value *s = builder.create("arith.addi", {zero, m},
                              {ctx.indexType()})
                   ->result(0);
    builder.create(kReturnOpName, {s}, {});

    RewritePatternSet patterns;
    patterns.insert<FoldAddZero>();
    patterns.insert<FoldMulOne>();
    EXPECT_TRUE(applyPatternsGreedily(module.op(), patterns));
    EXPECT_EQ(body->back()->operand(0), body->argument(0));
}

TEST_F(RewriteFixture, EraseOpTracksNestedOps)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    Value *lb = builder.constantIndex(0);
    Value *ub = builder.constantIndex(4);
    Operation *loop = dialects::scf::createFor(builder, lb, ub, lb);
    OpBuilder inner(ctx);
    inner.setInsertionPointToEnd(dialects::scf::loopBody(loop));
    Operation *nested = inner.constantIndex(3)->definingOp();

    PatternRewriter rewriter(ctx);
    rewriter.eraseOp(loop);
    EXPECT_TRUE(rewriter.wasErased(loop));
    EXPECT_TRUE(rewriter.wasErased(nested));
}

TEST_F(RewriteFixture, ReplaceOpArityChecked)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    Value *a = builder.constantIndex(1);
    PatternRewriter rewriter(ctx);
    EXPECT_THROW(rewriter.replaceOp(a->definingOp(), {}),
                 InternalError);
}
