/** @file Generator-based printer/parser round-trip fuzzing.
 *
 * Builds random (but valid) modules from a vocabulary of registered
 * ops, then checks print -> parse -> print is a fixpoint and the
 * reparsed module verifies. Complements the hand-written and
 * pipeline-derived round-trip tests with breadth.
 */

#include <gtest/gtest.h>

#include "dialects/AllDialects.h"
#include "ir/Builder.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "support/Error.h"
#include "support/Rng.h"

using namespace c4cam;
using namespace c4cam::ir;

namespace {

/** Random module generator over a safe op vocabulary. */
class Generator
{
  public:
    explicit Generator(std::uint64_t seed) : rng_(seed) {}

    Module
    generate(Context &ctx)
    {
        Module module(ctx);
        int num_funcs = 1 + static_cast<int>(rng_.nextBelow(2));
        for (int f = 0; f < num_funcs; ++f) {
            std::vector<Type> params;
            int num_params = static_cast<int>(rng_.nextBelow(3));
            for (int p = 0; p < num_params; ++p)
                params.push_back(randomType(ctx));
            Operation *func = dialects::createFunction(
                module, "fn" + std::to_string(f), params);
            OpBuilder builder(ctx);
            builder.setInsertionPointToEnd(dialects::funcBody(func));
            emitBody(ctx, builder, dialects::funcBody(func),
                     /*depth=*/0);
        }
        return module;
    }

  private:
    Type
    randomType(Context &ctx)
    {
        switch (rng_.nextBelow(4)) {
          case 0: return ctx.indexType();
          case 1: return ctx.f32();
          case 2:
            return ctx.tensorType(
                {1 + std::int64_t(rng_.nextBelow(8)),
                 1 + std::int64_t(rng_.nextBelow(64))},
                ctx.f32());
          default:
            return ctx.memrefType(
                {1 + std::int64_t(rng_.nextBelow(8))}, ctx.f32());
        }
    }

    Attribute
    randomAttr()
    {
        switch (rng_.nextBelow(5)) {
          case 0: return Attribute(std::int64_t(rng_.nextBelow(100)));
          case 1: return Attribute(rng_.nextDouble());
          case 2: return Attribute("s" + std::to_string(rng_.nextBelow(
                             1000)));
          case 3: return Attribute(rng_.nextBool());
          default:
            return Attribute(std::vector<Attribute>{
                Attribute(std::int64_t(rng_.nextBelow(10))),
                Attribute(std::int64_t(-1))});
        }
    }

    void
    emitBody(Context &ctx, OpBuilder &builder, Block *block, int depth)
    {
        std::vector<Value *> index_values;
        std::vector<Value *> float_values;
        for (std::size_t i = 0; i < block->numArguments(); ++i) {
            Value *arg = block->argument(i);
            if (arg->type().isIndex())
                index_values.push_back(arg);
            if (arg->type().isF32())
                float_values.push_back(arg);
        }
        index_values.push_back(
            builder.constantIndex(std::int64_t(rng_.nextBelow(64))));
        float_values.push_back(builder.constantFloat(rng_.nextDouble()));

        int ops = 2 + static_cast<int>(rng_.nextBelow(8));
        for (int i = 0; i < ops; ++i) {
            switch (rng_.nextBelow(depth < 2 ? 6 : 4)) {
              case 0: {
                Value *a = pick(index_values);
                Value *b = pick(index_values);
                const char *names[] = {"arith.addi", "arith.muli",
                                       "arith.minsi", "arith.maxsi"};
                index_values.push_back(
                    builder
                        .create(names[rng_.nextBelow(4)], {a, b},
                                {ctx.indexType()},
                                {{"tag", randomAttr()}})
                        ->result(0));
                break;
              }
              case 1: {
                Value *a = pick(float_values);
                Value *b = pick(float_values);
                float_values.push_back(
                    builder.create("arith.addf", {a, b}, {ctx.f32()})
                        ->result(0));
                break;
              }
              case 2: {
                builder.create("memref.alloc", {},
                               {ctx.memrefType(
                                   {1 + std::int64_t(rng_.nextBelow(8))},
                                   ctx.f32())});
                break;
              }
              case 3: {
                Value *a = pick(index_values);
                Value *b = pick(index_values);
                index_values.push_back(
                    builder
                        .create("arith.subi", {a, b},
                                {ctx.indexType()})
                        ->result(0));
                break;
              }
              case 4: {
                // Nested loop with recursive body.
                Value *lb = builder.constantIndex(0);
                Value *ub = builder.constantIndex(
                    1 + std::int64_t(rng_.nextBelow(4)));
                Value *step = builder.constantIndex(1);
                Operation *loop = dialects::scf::createFor(
                    builder, lb, ub, step);
                OpBuilder inner(ctx);
                inner.setInsertionPointToEnd(
                    dialects::scf::loopBody(loop));
                emitBody(ctx, inner, dialects::scf::loopBody(loop),
                         depth + 1);
                break;
              }
              default: {
                // Guarded region.
                Value *a = pick(index_values);
                Value *b = pick(index_values);
                Value *cond =
                    builder
                        .create("arith.cmpi", {a, b}, {ctx.i1()},
                                {{"predicate", Attribute("slt")}})
                        ->result(0);
                Operation *guard =
                    builder.create("scf.if", {cond}, {}, {}, 1);
                Block &then = guard->region(0).addBlock();
                OpBuilder inner(ctx);
                inner.setInsertionPointToEnd(&then);
                emitBody(ctx, inner, &then, depth + 1);
                break;
              }
            }
        }
        if (depth == 0)
            builder.create(kReturnOpName, {}, {});
    }

    Value *
    pick(const std::vector<Value *> &values)
    {
        return values[rng_.nextBelow(values.size())];
    }

    Rng rng_;
};

} // namespace

class ParserFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(ParserFuzz, RandomModulesRoundTrip)
{
    Context ctx;
    dialects::loadAllDialects(ctx);
    Generator gen(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    Module module = gen.generate(ctx);
    verifyModule(module);

    std::string first = module.str();
    Module reparsed = parseModule(ctx, first);
    verifyModule(reparsed);
    EXPECT_EQ(reparsed.str(), first);

    // Second round trip for good measure.
    Module again = parseModule(ctx, reparsed.str());
    EXPECT_EQ(again.str(), first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 24));

TEST(ParserDepthLimit, DeeplyNestedRegionsAreRejected)
{
    // Regression: a 100k-deep nest of region ops used to exhaust the
    // stack and crash c4cam-opt with SIGSEGV; it must instead raise a
    // located IR parse error.
    constexpr int kDepth = 100000;
    std::string text;
    text.reserve(kDepth * 36);
    for (int i = 0; i < kDepth; ++i)
        text += "\"builtin.module\"() ({\n";
    text += "\"builtin.module\"() ({}) : () -> ()\n";
    for (int i = 0; i < kDepth; ++i)
        text += "}) : () -> ()\n";

    Context ctx;
    dialects::loadAllDialects(ctx);
    try {
        parseOperation(ctx, text);
        FAIL() << "expected CompilerError";
    } catch (const CompilerError &err) {
        std::string msg = err.what();
        EXPECT_NE(msg.find("IR parse error at line"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("nesting depth"), std::string::npos) << msg;
    }
}

TEST(ParserDepthLimit, NestingUpToTheLimitStillParses)
{
    constexpr int kDepth = 255;
    std::string text;
    for (int i = 0; i < kDepth; ++i)
        text += "\"builtin.module\"() ({\n";
    text += "\"builtin.module\"() ({}) : () -> ()\n";
    for (int i = 0; i < kDepth; ++i)
        text += "}) : () -> ()\n";

    Context ctx;
    dialects::loadAllDialects(ctx);
    EXPECT_NO_THROW(parseOperation(ctx, text));
}

TEST(ParserDepthLimit, DeeplyNestedShapedTypesAreRejected)
{
    // The type grammar recurses per tensor<...> level; a deep nest
    // must be a parse error, not a stack overflow.
    constexpr int kDepth = 100000;
    std::string type;
    for (int i = 0; i < kDepth; ++i)
        type += "tensor<4x";
    type += "f32";
    type += std::string(kDepth, '>');
    std::string text = "\"builtin.module\"() ({}) : () -> " + type;

    Context ctx;
    dialects::loadAllDialects(ctx);
    EXPECT_THROW(parseOperation(ctx, text), CompilerError);
}

TEST(ParserDepthLimit, DeeplyNestedAttributeArraysAreRejected)
{
    // The attribute grammar recurses too; it shares the depth budget.
    std::string attr = std::string(5000, '[') + "1" +
                       std::string(5000, ']');
    std::string text =
        "\"builtin.module\"() ({}) {deep = " + attr + "} : () -> ()";

    Context ctx;
    dialects::loadAllDialects(ctx);
    EXPECT_THROW(parseOperation(ctx, text), CompilerError);
}
