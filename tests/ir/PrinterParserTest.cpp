/** @file Printer/parser round-trip tests (a key IR property). */

#include <gtest/gtest.h>

#include "dialects/AllDialects.h"
#include "ir/Builder.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::ir;

namespace {

struct RoundTrip : public ::testing::Test
{
    void
    SetUp() override
    {
        dialects::loadAllDialects(ctx);
    }

    /** print -> parse -> print must be a fixpoint. */
    void
    expectRoundTrip(Module &module)
    {
        std::string first = module.str();
        Module reparsed = parseModule(ctx, first);
        verifyModule(reparsed);
        EXPECT_EQ(reparsed.str(), first);
    }

    Context ctx;
};

} // namespace

TEST_F(RoundTrip, EmptyModule)
{
    Module module(ctx);
    expectRoundTrip(module);
}

TEST_F(RoundTrip, FunctionWithArithmetic)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(
        module, "f", {ctx.indexType(), ctx.indexType()});
    Block *body = dialects::funcBody(func);
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(body);
    Value *sum = builder
                     .create("arith.addi",
                             {body->argument(0), body->argument(1)},
                             {ctx.indexType()})
                     ->result(0);
    builder.create(kReturnOpName, {sum}, {});
    expectRoundTrip(module);
}

TEST_F(RoundTrip, AttributesOfEveryKind)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "attrs", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    builder.create(
        "arith.constant", {}, {ctx.i64()},
        {{"value", Attribute(std::int64_t(-3))},
         {"f", Attribute(1.5)},
         {"s", Attribute("hello world")},
         {"b", Attribute(true)},
         {"u", Attribute()},
         {"arr", Attribute(std::vector<Attribute>{
                     Attribute(std::int64_t(1)),
                     Attribute("x"),
                     Attribute(std::vector<Attribute>{Attribute(false)})})},
         {"ty", Attribute(ctx.tensorType({2, 2}, ctx.f32()))}});
    builder.create(kReturnOpName, {}, {});
    expectRoundTrip(module);
}

TEST_F(RoundTrip, NestedRegions)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "loops", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    Value *lb = builder.constantIndex(0);
    Value *ub = builder.constantIndex(8);
    Value *step = builder.constantIndex(2);
    Operation *outer =
        dialects::scf::createParallel(builder, lb, ub, step, "bank");
    OpBuilder inner(ctx);
    inner.setInsertionPointToEnd(dialects::scf::loopBody(outer));
    Operation *inner_loop =
        dialects::scf::createFor(inner, lb, ub, step);
    OpBuilder innermost(ctx);
    innermost.setInsertionPointToEnd(dialects::scf::loopBody(inner_loop));
    innermost.create("arith.muli",
                     {dialects::scf::inductionVar(outer),
                      dialects::scf::inductionVar(inner_loop)},
                     {ctx.indexType()});
    builder.create(kReturnOpName, {}, {});
    expectRoundTrip(module);
}

TEST_F(RoundTrip, MultiResultOps)
{
    Module module(ctx);
    Type t = ctx.tensorType({4, 16}, ctx.f32());
    Operation *func = dialects::createFunction(module, "topk", {t});
    Block *body = dialects::funcBody(func);
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(body);
    Type out = ctx.tensorType({4, 1}, ctx.f32());
    Operation *topk = builder.create(
        "torch.aten.topk", {body->argument(0)}, {out, out},
        {{"k", Attribute(std::int64_t(1))},
         {"dim", Attribute(std::int64_t(-1))},
         {"largest", Attribute(false)}});
    builder.create(kReturnOpName,
                   {topk->result(0), topk->result(1)}, {});
    expectRoundTrip(module);
}

TEST_F(RoundTrip, OpaqueHandleTypes)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "handles", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    Value *rows = builder.constantIndex(32);
    Value *bank =
        builder.create("cam.alloc_bank", {rows, rows},
                       {ctx.opaqueType("cam", "bank_id")})
            ->result(0);
    builder.create("cam.alloc_mat", {bank},
                   {ctx.opaqueType("cam", "mat_id")});
    builder.create(kReturnOpName, {}, {});
    expectRoundTrip(module);
}

TEST_F(RoundTrip, ParserRejectsUndefinedValue)
{
    EXPECT_THROW(
        parseModule(ctx, "\"builtin.module\"() ({\n"
                         "  \"func.return\"(%0) : (index) -> ()\n"
                         "}) : () -> ()\n"),
        CompilerError);
}

TEST_F(RoundTrip, ParserRejectsRedefinition)
{
    EXPECT_THROW(parseModule(
                     ctx,
                     "\"builtin.module\"() ({\n"
                     "  %0 = \"arith.constant\"() {value = 1} : () -> index\n"
                     "  %0 = \"arith.constant\"() {value = 2} : () -> index\n"
                     "}) : () -> ()\n"),
                 CompilerError);
}

TEST_F(RoundTrip, ParserRejectsArityMismatch)
{
    EXPECT_THROW(
        parseModule(ctx,
                    "\"builtin.module\"() ({\n"
                    "  %0 = \"arith.constant\"() {value = 1} : () -> index\n"
                    "  %1 = \"arith.addi\"(%0) : (index, index) -> index\n"
                    "}) : () -> ()\n"),
        CompilerError);
}

TEST_F(RoundTrip, ParserChecksOperandTypes)
{
    EXPECT_THROW(
        parseModule(ctx,
                    "\"builtin.module\"() ({\n"
                    "  %0 = \"arith.constant\"() {value = 1} : () -> index\n"
                    "  %1 = \"arith.addi\"(%0, %0) : (index, i64) -> index\n"
                    "}) : () -> ()\n"),
        CompilerError);
}

TEST_F(RoundTrip, TopLevelMustBeModule)
{
    EXPECT_THROW(parseModule(
                     ctx, "\"func.func\"() ({\n}) {sym_name = \"f\"}"
                          " : () -> ()\n"),
                 CompilerError);
}
