/** @file Unit tests for type interning and rendering. */

#include <gtest/gtest.h>

#include "ir/Context.h"
#include "support/Error.h"

using namespace c4cam::ir;

TEST(Type, ScalarsAreInterned)
{
    Context ctx;
    EXPECT_EQ(ctx.f32(), ctx.f32());
    EXPECT_NE(ctx.f32(), ctx.f64());
    EXPECT_NE(ctx.i1(), ctx.i32());
    EXPECT_TRUE(ctx.indexType().isIndex());
}

TEST(Type, TensorInterningByStructure)
{
    Context ctx;
    Type a = ctx.tensorType({10, 8192}, ctx.f32());
    Type b = ctx.tensorType({10, 8192}, ctx.f32());
    Type c = ctx.tensorType({10, 8193}, ctx.f32());
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a, ctx.memrefType({10, 8192}, ctx.f32()));
}

TEST(Type, ShapeAccessors)
{
    Context ctx;
    Type t = ctx.tensorType({3, 4, 5}, ctx.f32());
    EXPECT_EQ(t.rank(), 3u);
    EXPECT_EQ(t.numElements(), 60);
    EXPECT_EQ(t.shape()[1], 4);
    EXPECT_EQ(t.elementType(), ctx.f32());
}

TEST(Type, Predicates)
{
    Context ctx;
    EXPECT_TRUE(ctx.f32().isFloat());
    EXPECT_TRUE(ctx.i64().isInteger());
    EXPECT_TRUE(ctx.tensorType({2}, ctx.f32()).isShaped());
    EXPECT_TRUE(ctx.memrefType({2}, ctx.f32()).isMemRef());
    EXPECT_TRUE(ctx.opaqueType("cam", "bank_id").isOpaque());
    EXPECT_FALSE(Type());
    EXPECT_TRUE(ctx.f32().isScalar());
    EXPECT_FALSE(ctx.tensorType({2}, ctx.f32()).isScalar());
}

TEST(Type, Rendering)
{
    Context ctx;
    EXPECT_EQ(ctx.f32().str(), "f32");
    EXPECT_EQ(ctx.indexType().str(), "index");
    EXPECT_EQ(ctx.tensorType({10, 8192}, ctx.f32()).str(),
              "tensor<10x8192xf32>");
    EXPECT_EQ(ctx.memrefType({1, 32}, ctx.i64()).str(),
              "memref<1x32xi64>");
    EXPECT_EQ(ctx.opaqueType("cam", "subarray_id").str(),
              "!cam.subarray_id");
}

TEST(Type, ParseScalars)
{
    Context ctx;
    EXPECT_EQ(ctx.parseType("f32"), ctx.f32());
    EXPECT_EQ(ctx.parseType(" index "), ctx.indexType());
    EXPECT_EQ(ctx.parseType("i1"), ctx.i1());
}

TEST(Type, ParseShaped)
{
    Context ctx;
    EXPECT_EQ(ctx.parseType("tensor<10x8192xf32>"),
              ctx.tensorType({10, 8192}, ctx.f32()));
    EXPECT_EQ(ctx.parseType("memref<4xindex>"),
              ctx.memrefType({4}, ctx.indexType()));
    // rank-0
    EXPECT_EQ(ctx.parseType("tensor<f32>"), ctx.tensorType({}, ctx.f32()));
}

TEST(Type, ParseOpaque)
{
    Context ctx;
    EXPECT_EQ(ctx.parseType("!cam.bank_id"),
              ctx.opaqueType("cam", "bank_id"));
}

TEST(Type, ParseRoundTripsPrint)
{
    Context ctx;
    std::vector<Type> types = {
        ctx.f32(), ctx.f64(), ctx.i1(), ctx.i32(), ctx.i64(),
        ctx.indexType(), ctx.tensorType({7}, ctx.f32()),
        ctx.tensorType({2, 3, 4}, ctx.i64()),
        ctx.memrefType({10, 1}, ctx.f32()),
        ctx.opaqueType("cam", "mat_id"),
    };
    for (Type t : types)
        EXPECT_EQ(ctx.parseType(t.str()), t) << t.str();
}

TEST(Type, ParseRejectsGarbage)
{
    Context ctx;
    EXPECT_THROW(ctx.parseType("floaty"), c4cam::CompilerError);
    EXPECT_THROW(ctx.parseType("tensor<10x"), c4cam::CompilerError);
    EXPECT_THROW(ctx.parseType("!cam"), c4cam::CompilerError);
    EXPECT_THROW(ctx.parseType("tensor<10x8192x>"), c4cam::CompilerError);
}

TEST(Type, NegativeDimsRejected)
{
    Context ctx;
    EXPECT_THROW(ctx.tensorType({-1}, ctx.f32()), c4cam::CompilerError);
}
