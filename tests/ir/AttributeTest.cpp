/** @file Unit tests for operation attributes. */

#include <gtest/gtest.h>

#include "ir/Attribute.h"
#include "ir/Context.h"
#include "support/Error.h"

using namespace c4cam::ir;

TEST(Attribute, Kinds)
{
    EXPECT_TRUE(Attribute().isUnit());
    EXPECT_TRUE(Attribute(true).isBool());
    EXPECT_TRUE(Attribute(std::int64_t(3)).isInt());
    EXPECT_TRUE(Attribute(2.5).isFloat());
    EXPECT_TRUE(Attribute("s").isString());
    EXPECT_TRUE(Attribute(std::vector<Attribute>{}).isArray());
}

TEST(Attribute, Accessors)
{
    EXPECT_EQ(Attribute(std::int64_t(42)).asInt(), 42);
    EXPECT_DOUBLE_EQ(Attribute(2.5).asFloat(), 2.5);
    EXPECT_DOUBLE_EQ(Attribute(std::int64_t(2)).asFloat(), 2.0);
    EXPECT_EQ(Attribute("abc").asString(), "abc");
    EXPECT_TRUE(Attribute(true).asBool());
}

TEST(Attribute, TypeAttribute)
{
    Context ctx;
    Attribute a(ctx.tensorType({2, 3}, ctx.f32()));
    EXPECT_TRUE(a.isType());
    EXPECT_EQ(a.asType().numElements(), 6);
}

TEST(Attribute, IntArray)
{
    Attribute arr(std::vector<Attribute>{Attribute(std::int64_t(1)),
                                         Attribute(std::int64_t(-1))});
    auto ints = arr.asIntArray();
    ASSERT_EQ(ints.size(), 2u);
    EXPECT_EQ(ints[0], 1);
    EXPECT_EQ(ints[1], -1);
}

TEST(Attribute, Equality)
{
    EXPECT_EQ(Attribute(std::int64_t(1)), Attribute(std::int64_t(1)));
    EXPECT_FALSE(Attribute(std::int64_t(1)) == Attribute(1.0));
    EXPECT_EQ(Attribute("x"), Attribute(std::string("x")));
    EXPECT_EQ(Attribute(), Attribute());
}

TEST(Attribute, Rendering)
{
    EXPECT_EQ(Attribute(std::int64_t(5)).str(), "5");
    EXPECT_EQ(Attribute(true).str(), "true");
    EXPECT_EQ(Attribute("hi").str(), "\"hi\"");
    EXPECT_EQ(Attribute(2.5).str(), "2.5");
    // Whole floats keep a decimal point so they parse back as floats.
    EXPECT_EQ(Attribute(2.0).str(), "2.0");
    Attribute arr(std::vector<Attribute>{Attribute(std::int64_t(1)),
                                         Attribute("a")});
    EXPECT_EQ(arr.str(), "[1, \"a\"]");
    EXPECT_EQ(Attribute().str(), "unit");
}

TEST(Attribute, StringEscaping)
{
    EXPECT_EQ(Attribute("a\"b").str(), "\"a\\\"b\"");
}

TEST(Attribute, WrongAccessorThrows)
{
    EXPECT_THROW(Attribute("s").asInt(), c4cam::InternalError);
    EXPECT_THROW(Attribute(std::int64_t(1)).asString(),
                 c4cam::InternalError);
    EXPECT_THROW(Attribute().asBool(), c4cam::InternalError);
}
