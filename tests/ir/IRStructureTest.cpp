/** @file Unit tests for Operation/Block/Region/Value structure. */

#include <gtest/gtest.h>

#include "dialects/AllDialects.h"
#include "ir/Builder.h"
#include "ir/IR.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::ir;

namespace {

struct IRFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        dialects::loadAllDialects(ctx);
    }

    Context ctx;
};

} // namespace

TEST_F(IRFixture, ModuleHasEmptyBody)
{
    Module module(ctx);
    EXPECT_EQ(module.op()->name(), "builtin.module");
    EXPECT_TRUE(module.body()->empty());
    EXPECT_TRUE(module.functions().empty());
}

TEST_F(IRFixture, CreateFunctionAndLookup)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(
        module, "forward", {ctx.tensorType({2, 4}, ctx.f32())});
    EXPECT_EQ(module.lookupFunction("forward"), func);
    EXPECT_EQ(module.lookupFunction("missing"), nullptr);
    EXPECT_EQ(dialects::funcBody(func)->numArguments(), 1u);
    EXPECT_EQ(module.functions().size(), 1u);
}

TEST_F(IRFixture, UseDefChains)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    Value *a = builder.constantIndex(1);
    Value *b = builder.constantIndex(2);
    Operation *addi =
        builder.create("arith.addi", {a, b}, {ctx.indexType()});

    EXPECT_EQ(a->uses().size(), 1u);
    EXPECT_EQ(a->uses()[0]->owner(), addi);
    EXPECT_TRUE(a->hasUses());
    EXPECT_FALSE(addi->result(0)->hasUses());
    EXPECT_EQ(addi->operand(0), a);
    EXPECT_EQ(addi->operand(1), b);
}

TEST_F(IRFixture, ReplaceAllUsesWith)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    Value *a = builder.constantIndex(1);
    Value *b = builder.constantIndex(2);
    Operation *add1 =
        builder.create("arith.addi", {a, a}, {ctx.indexType()});
    a->replaceAllUsesWith(b);
    EXPECT_EQ(add1->operand(0), b);
    EXPECT_EQ(add1->operand(1), b);
    EXPECT_FALSE(a->hasUses());
    EXPECT_EQ(b->uses().size(), 2u);
}

TEST_F(IRFixture, SetOperandMaintainsUseLists)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    Value *a = builder.constantIndex(1);
    Value *b = builder.constantIndex(2);
    Operation *add =
        builder.create("arith.addi", {a, a}, {ctx.indexType()});
    add->setOperand(1, b);
    EXPECT_EQ(a->uses().size(), 1u);
    EXPECT_EQ(b->uses().size(), 1u);
}

TEST_F(IRFixture, EraseOpRemovesFromBlock)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    Value *a = builder.constantIndex(1);
    EXPECT_EQ(dialects::funcBody(func)->size(), 1u);
    a->definingOp()->erase();
    EXPECT_TRUE(dialects::funcBody(func)->empty());
}

TEST_F(IRFixture, EraseWithLiveUsesAsserts)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    Value *a = builder.constantIndex(1);
    builder.create("arith.addi", {a, a}, {ctx.indexType()});
    EXPECT_THROW(a->definingOp()->erase(), InternalError);
}

TEST_F(IRFixture, InsertionPoints)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    Block *body = dialects::funcBody(func);
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(body);
    Value *first = builder.constantIndex(1);
    Value *third = builder.constantIndex(3);
    builder.setInsertionPoint(third->definingOp());
    Value *second = builder.constantIndex(2);

    auto ops = body->opVector();
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0], first->definingOp());
    EXPECT_EQ(ops[1], second->definingOp());
    EXPECT_EQ(ops[2], third->definingOp());

    builder.setInsertionPointAfter(first->definingOp());
    Value *after = builder.constantIndex(9);
    EXPECT_EQ(body->opVector()[1], after->definingOp());
    builder.setInsertionPointToStart(body);
    Value *front = builder.constantIndex(0);
    EXPECT_EQ(body->front(), front->definingOp());
}

TEST_F(IRFixture, NextPrevOp)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    Operation *a = builder.constantIndex(1)->definingOp();
    Operation *b = builder.constantIndex(2)->definingOp();
    EXPECT_EQ(a->nextOp(), b);
    EXPECT_EQ(b->prevOp(), a);
    EXPECT_EQ(a->prevOp(), nullptr);
    EXPECT_EQ(b->nextOp(), nullptr);
}

TEST_F(IRFixture, MoveBefore)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    Block *body = dialects::funcBody(func);
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(body);
    Operation *a = builder.constantIndex(1)->definingOp();
    Operation *b = builder.constantIndex(2)->definingOp();
    b->moveBefore(a);
    EXPECT_EQ(body->front(), b);
    EXPECT_EQ(body->back(), a);
}

TEST_F(IRFixture, WalkVisitsNestedOps)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    Value *lb = builder.constantIndex(0);
    Value *ub = builder.constantIndex(4);
    Value *step = builder.constantIndex(1);
    Operation *loop = dialects::scf::createFor(builder, lb, ub, step);
    OpBuilder inner(ctx);
    inner.setInsertionPointToEnd(dialects::scf::loopBody(loop));
    inner.constantIndex(7);

    int count = 0;
    module.walk([&](Operation *) { ++count; });
    // module + func + 3 constants + loop + inner constant = 7
    EXPECT_EQ(count, 7);

    std::vector<std::string> post;
    module.op()->walkPostOrder(
        [&](Operation *op) { post.push_back(op->name()); });
    EXPECT_EQ(post.back(), "builtin.module");
}

TEST_F(IRFixture, OperationAttrHelpers)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    Operation *op = builder.create(
        "arith.constant", {}, {ctx.i64()},
        {{"value", Attribute(std::int64_t(3))},
         {"tag", Attribute("x")}});
    EXPECT_EQ(op->intAttr("value"), 3);
    EXPECT_EQ(op->intAttrOr("missing", 9), 9);
    EXPECT_EQ(op->strAttr("tag"), "x");
    EXPECT_EQ(op->strAttrOr("missing", "d"), "d");
    EXPECT_FALSE(op->boolAttrOr("missing", false));
    op->setAttr("flag", Attribute());
    EXPECT_TRUE(op->boolAttrOr("flag", false)); // unit attr means true
    op->removeAttr("flag");
    EXPECT_FALSE(op->hasAttr("flag"));
    EXPECT_THROW(op->attr("missing"), InternalError);
}

TEST_F(IRFixture, DialectPrefix)
{
    Module module(ctx);
    EXPECT_EQ(module.op()->dialect(), "builtin");
}

TEST_F(IRFixture, BlockTakeReinsert)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    Block *body = dialects::funcBody(func);
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(body);
    Operation *a = builder.constantIndex(1)->definingOp();
    Operation *b = builder.constantIndex(2)->definingOp();

    auto owned = body->take(a);
    EXPECT_EQ(body->size(), 1u);
    body->insertBefore(nullptr, std::move(owned));
    auto ops = body->opVector();
    EXPECT_EQ(ops[0], b);
    EXPECT_EQ(ops[1], a);
}
