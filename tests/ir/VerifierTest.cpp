/** @file Verifier unit tests. */

#include <gtest/gtest.h>

#include "dialects/AllDialects.h"
#include "ir/Builder.h"
#include "ir/Verifier.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::ir;

namespace {

struct VerifierFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        dialects::loadAllDialects(ctx);
    }

    Context ctx;
};

} // namespace

TEST_F(VerifierFixture, AcceptsValidModule)
{
    Module module(ctx);
    Operation *func =
        dialects::createFunction(module, "ok", {ctx.indexType()});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    builder.create(kReturnOpName, {}, {});
    EXPECT_NO_THROW(verifyModule(module));
}

TEST_F(VerifierFixture, RejectsUnregisteredOp)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    builder.create("bogus.op", {}, {});
    EXPECT_THROW(verifyModule(module), CompilerError);
}

TEST_F(VerifierFixture, RejectsWrongOperandCount)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    Value *a = builder.constantIndex(1);
    builder.create("arith.addi", {a}, {ctx.indexType()}); // needs 2
    EXPECT_THROW(verifyModule(module), CompilerError);
}

TEST_F(VerifierFixture, RejectsMissingRequiredAttr)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    builder.create("arith.constant", {}, {ctx.i64()}); // no value attr
    EXPECT_THROW(verifyModule(module), CompilerError);
}

TEST_F(VerifierFixture, RejectsFuncWithoutSymName)
{
    Module module(ctx);
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(module.body());
    Operation *func = builder.create(kFuncOpName, {}, {}, {}, 1);
    func->region(0).addBlock();
    EXPECT_THROW(verifyModule(module), CompilerError);
}

TEST_F(VerifierFixture, RejectsMisplacedTerminator)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    builder.create(kReturnOpName, {}, {});
    builder.constantIndex(1); // op after the terminator
    EXPECT_THROW(verifyModule(module), CompilerError);
}

TEST_F(VerifierFixture, ChecksCamHandleTypes)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    Value *idx = builder.constantIndex(0);
    // alloc_mat wants a !cam.bank_id, not an index.
    builder.create("cam.alloc_mat", {idx},
                   {ctx.opaqueType("cam", "mat_id")});
    EXPECT_THROW(verifyModule(module), CompilerError);
}

TEST_F(VerifierFixture, ChecksCamSearchAttrs)
{
    Module module(ctx);
    Operation *func = dialects::createFunction(module, "f", {});
    OpBuilder builder(ctx);
    builder.setInsertionPointToEnd(dialects::funcBody(func));
    Value *rows = builder.constantIndex(4);
    Value *bank = builder.create("cam.alloc_bank", {rows, rows},
                                 {ctx.opaqueType("cam", "bank_id")})
                      ->result(0);
    Value *mat = builder.create("cam.alloc_mat", {bank},
                                {ctx.opaqueType("cam", "mat_id")})
                     ->result(0);
    Value *arr = builder.create("cam.alloc_array", {mat},
                                {ctx.opaqueType("cam", "array_id")})
                     ->result(0);
    Value *sub = builder.create("cam.alloc_subarray", {arr},
                                {ctx.opaqueType("cam", "subarray_id")})
                     ->result(0);
    Value *q = builder.create("memref.alloc", {},
                              {ctx.memrefType({1, 4}, ctx.f32())})
                   ->result(0);
    // Missing kind/metric attributes.
    builder.create("cam.search", {sub, q}, {});
    EXPECT_THROW(verifyModule(module), CompilerError);
}

TEST_F(VerifierFixture, RegistryListsOps)
{
    auto names = ctx.registeredOps();
    EXPECT_GT(names.size(), 30u);
    EXPECT_NE(std::find(names.begin(), names.end(), "cam.search"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "cim.similarity"),
              names.end());
}

TEST_F(VerifierFixture, DialectLoadIsIdempotent)
{
    // Loading twice must not re-register ops (would assert).
    EXPECT_NO_THROW(dialects::loadAllDialects(ctx));
    EXPECT_TRUE(ctx.isDialectLoaded("cam"));
    EXPECT_FALSE(ctx.isDialectLoaded("nonexistent"));
}
