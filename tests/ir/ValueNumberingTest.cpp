/** @file Dense SSA value numbering tests (the plan compiler's slot map). */

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "dialects/AllDialects.h"
#include "ir/Parser.h"
#include "ir/ValueNumbering.h"

using namespace c4cam;
using namespace c4cam::ir;

namespace {

const char *kNestedFunc =
    "\"builtin.module\"() ({\n"
    "  \"func.func\"() ({\n"
    "  ^bb0(%arg: index):\n"
    "    %lb = \"arith.constant\"() {value = 0} : () -> index\n"
    "    %ub = \"arith.constant\"() {value = 4} : () -> index\n"
    "    %st = \"arith.constant\"() {value = 1} : () -> index\n"
    "    %sum = \"scf.for\"(%lb, %ub, %st, %arg) ({\n"
    "    ^bb0(%iv: index, %acc: index):\n"
    "      %next = \"arith.addi\"(%acc, %iv) : (index, index) -> index\n"
    "      \"scf.yield\"(%next) : (index) -> ()\n"
    "    }) : (index, index, index, index) -> index\n"
    "    \"func.return\"(%sum) : (index) -> ()\n"
    "  }) {sym_name = \"f\"} : () -> ()\n"
    "}) : () -> ()\n";

} // namespace

TEST(ValueNumbering, DenseAndCoversNestedRegions)
{
    Context ctx;
    dialects::loadAllDialects(ctx);
    Module module = parseModule(ctx, kNestedFunc);
    Operation *func = module.lookupFunction("f");
    ASSERT_NE(func, nullptr);

    ValueNumbering numbering = ValueNumbering::forFunction(func);
    // Values: %arg, %lb, %ub, %st, %sum, %iv, %acc, %next = 8 slots.
    EXPECT_EQ(numbering.numSlots(), 8);

    // Every value (incl. nested block args and results) is numbered,
    // densely and uniquely.
    std::set<std::int32_t> seen;
    std::function<void(Block &)> visit = [&](Block &block) {
        for (std::size_t i = 0; i < block.numArguments(); ++i) {
            std::int32_t slot = numbering.slot(block.argument(i));
            EXPECT_GE(slot, 0);
            EXPECT_LT(slot, numbering.numSlots());
            seen.insert(slot);
        }
        for (Operation *op : block.opVector()) {
            for (std::size_t i = 0; i < op->numResults(); ++i)
                seen.insert(numbering.slot(op->result(i)));
            for (std::size_t r = 0; r < op->numRegions(); ++r)
                for (const auto &nested : op->region(r).blocks())
                    visit(*nested);
        }
    };
    visit(func->region(0).front());
    EXPECT_EQ(static_cast<std::int32_t>(seen.size()),
              numbering.numSlots());
}

TEST(ValueNumbering, StableAcrossRecomputation)
{
    Context ctx;
    dialects::loadAllDialects(ctx);
    Module module = parseModule(ctx, kNestedFunc);
    Operation *func = module.lookupFunction("f");
    ASSERT_NE(func, nullptr);

    ValueNumbering first = ValueNumbering::forFunction(func);
    ValueNumbering second = ValueNumbering::forFunction(func);
    func->walk([&](Operation *op) {
        for (std::size_t i = 0; i < op->numResults(); ++i)
            EXPECT_EQ(first.slot(op->result(i)),
                      second.slot(op->result(i)));
    });
}

TEST(ValueNumbering, SlotOrInvalidForForeignValue)
{
    Context ctx;
    dialects::loadAllDialects(ctx);
    Module module = parseModule(ctx, kNestedFunc);
    Module other = parseModule(ctx, kNestedFunc);
    ValueNumbering numbering =
        ValueNumbering::forFunction(module.lookupFunction("f"));
    Operation *foreign = other.lookupFunction("f");
    Value *foreign_arg = foreign->region(0).front().argument(0);
    EXPECT_EQ(numbering.slotOrInvalid(foreign_arg), -1);
}
