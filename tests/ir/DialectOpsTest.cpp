/** @file Per-op verifier coverage across all dialects. */

#include <gtest/gtest.h>

#include "dialects/AllDialects.h"
#include "ir/Builder.h"
#include "ir/Verifier.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::ir;

namespace {

/** Builds one function per test and verifies the whole module. */
struct OpsFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        dialects::loadAllDialects(ctx);
        module = std::make_unique<Module>(ctx);
        func = dialects::createFunction(*module, "f", {});
        builder = std::make_unique<OpBuilder>(ctx);
        builder->setInsertionPointToEnd(dialects::funcBody(func));
    }

    void
    expectValid()
    {
        builder->create(kReturnOpName, {}, {});
        EXPECT_NO_THROW(verifyModule(*module));
    }

    void
    expectInvalid()
    {
        builder->create(kReturnOpName, {}, {});
        EXPECT_THROW(verifyModule(*module), CompilerError);
    }

    Value *
    subarray()
    {
        Value *rows = builder->constantIndex(4);
        Value *bank = builder
                          ->create("cam.alloc_bank", {rows, rows},
                                   {ctx.opaqueType("cam", "bank_id")})
                          ->result(0);
        Value *mat = builder
                         ->create("cam.alloc_mat", {bank},
                                  {ctx.opaqueType("cam", "mat_id")})
                         ->result(0);
        Value *arr = builder
                         ->create("cam.alloc_array", {mat},
                                  {ctx.opaqueType("cam", "array_id")})
                         ->result(0);
        return builder
            ->create("cam.alloc_subarray", {arr},
                     {ctx.opaqueType("cam", "subarray_id")})
            ->result(0);
    }

    Value *
    memref(std::vector<std::int64_t> shape)
    {
        return builder
            ->create("memref.alloc", {},
                     {ctx.memrefType(shape, ctx.f32())})
            ->result(0);
    }

    Context ctx;
    std::unique_ptr<Module> module;
    Operation *func = nullptr;
    std::unique_ptr<OpBuilder> builder;
};

} // namespace

TEST_F(OpsFixture, CamSearchValid)
{
    Value *sub = subarray();
    Value *q = memref({1, 4});
    builder->create("cam.search", {sub, q}, {},
                    {{"kind", Attribute("best")},
                     {"metric", Attribute("hamming")}});
    expectValid();
}

TEST_F(OpsFixture, CamSearchBadKind)
{
    Value *sub = subarray();
    Value *q = memref({1, 4});
    builder->create("cam.search", {sub, q}, {},
                    {{"kind", Attribute("fuzzy")},
                     {"metric", Attribute("hamming")}});
    expectInvalid();
}

TEST_F(OpsFixture, CamSearchBadMetric)
{
    Value *sub = subarray();
    Value *q = memref({1, 4});
    builder->create("cam.search", {sub, q}, {},
                    {{"kind", Attribute("exact")},
                     {"metric", Attribute("cosine")}});
    expectInvalid();
}

TEST_F(OpsFixture, CamSearchWithRowWindowOperands)
{
    Value *sub = subarray();
    Value *q = memref({1, 4});
    Value *lo = builder->constantIndex(0);
    Value *hi = builder->constantIndex(2);
    builder->create("cam.search", {sub, q, lo, hi}, {},
                    {{"kind", Attribute("range")},
                     {"metric", Attribute("eucl")},
                     {"threshold", Attribute(2.5)}});
    expectValid();
}

TEST_F(OpsFixture, CamWriteValueNeedsMemref)
{
    Value *sub = subarray();
    Value *idx = builder->constantIndex(3);
    builder->create("cam.write_value", {sub, idx}, {});
    expectInvalid();
}

TEST_F(OpsFixture, CamReadReturnsMemrefs)
{
    Value *sub = subarray();
    builder->create("cam.read", {sub},
                    {ctx.memrefType({4}, ctx.f32()),
                     ctx.memrefType({4}, ctx.i64())},
                    {{"kind", Attribute("best")}});
    expectValid();
}

TEST_F(OpsFixture, CamReadWrongResultTypes)
{
    Value *sub = subarray();
    builder->create("cam.read", {sub}, {ctx.f32(), ctx.i64()},
                    {{"kind", Attribute("best")}});
    expectInvalid();
}

TEST_F(OpsFixture, CamGetSubarrayNeedsIndices)
{
    Value *sub = subarray();
    builder->create("cam.get_subarray",
                    {sub, sub, sub, sub},
                    {ctx.opaqueType("cam", "subarray_id")});
    expectInvalid();
}

TEST_F(OpsFixture, CimSimilarityMetricChecked)
{
    Value *a = builder
                   ->create("tensor.empty", {},
                            {ctx.tensorType({4, 8}, ctx.f32())})
                   ->result(0);
    Type out = ctx.tensorType({4, 1}, ctx.f32());
    builder->create("cim.similarity", {a, a}, {out, out},
                    {{"metric", Attribute("manhattan")}});
    expectInvalid();
}

TEST_F(OpsFixture, CimExecuteBodyMustEndWithYield)
{
    Value *handle =
        builder->create("cim.acquire", {}, {ctx.indexType()})
            ->result(0);
    Operation *execute =
        builder->create("cim.execute", {handle}, {}, {}, 1);
    execute->region(0).addBlock(); // empty body: no yield
    builder->create("cim.release", {handle}, {});
    expectInvalid();
}

TEST_F(OpsFixture, CimExecuteYieldArityMustMatch)
{
    Value *handle =
        builder->create("cim.acquire", {}, {ctx.indexType()})
            ->result(0);
    Operation *execute = builder->create(
        "cim.execute", {handle}, {ctx.tensorType({2}, ctx.f32())}, {},
        1);
    Block &body = execute->region(0).addBlock();
    OpBuilder inner(ctx);
    inner.setInsertionPointToEnd(&body);
    inner.create("cim.yield", {}, {}); // yields 0, execute has 1 result
    builder->create("cim.release", {handle}, {});
    expectInvalid();
}

TEST_F(OpsFixture, CimMergePartialDirectionChecked)
{
    Value *handle =
        builder->create("cim.acquire", {}, {ctx.indexType()})
            ->result(0);
    Value *t = builder
                   ->create("tensor.empty", {},
                            {ctx.tensorType({2, 2}, ctx.f32())})
                   ->result(0);
    builder->create("cim.merge_partial", {handle, t, t},
                    {ctx.tensorType({2, 2}, ctx.f32())},
                    {{"direction", Attribute("diagonal")}});
    expectInvalid();
}

TEST_F(OpsFixture, ScfForNeedsBodyArgs)
{
    Value *c = builder->constantIndex(0);
    Operation *loop =
        builder->create("scf.for", {c, c, c}, {}, {}, 1);
    loop->region(0).addBlock(); // no induction variable argument
    expectInvalid();
}

TEST_F(OpsFixture, ScfIfConditionMustBeI1)
{
    Value *c = builder->constantIndex(0);
    Operation *guard = builder->create("scf.if", {c}, {}, {}, 1);
    guard->region(0).addBlock();
    expectInvalid();
}

TEST_F(OpsFixture, TensorExtractSliceNeedsAttrs)
{
    Value *t = builder
                   ->create("tensor.empty", {},
                            {ctx.tensorType({4, 4}, ctx.f32())})
                   ->result(0);
    builder->create("tensor.extract_slice", {t},
                    {ctx.tensorType({2, 2}, ctx.f32())});
    expectInvalid();
}

TEST_F(OpsFixture, MemrefSubviewNeedsAttrs)
{
    Value *m = memref({4, 4});
    builder->create("memref.subview", {m},
                    {ctx.memrefType({2, 2}, ctx.f32())});
    expectInvalid();
}

TEST_F(OpsFixture, MemrefAllocMustReturnMemref)
{
    builder->create("memref.alloc", {},
                    {ctx.tensorType({2}, ctx.f32())});
    expectInvalid();
}

TEST_F(OpsFixture, TorchNormRejectsExoticP)
{
    Value *t = builder
                   ->create("tensor.empty", {},
                            {ctx.tensorType({4, 4}, ctx.f32())})
                   ->result(0);
    builder->create("torch.aten.norm", {t},
                    {ctx.tensorType({4}, ctx.f32())},
                    {{"p", Attribute(std::int64_t(7))}});
    expectInvalid();
}

TEST_F(OpsFixture, TorchTopkRequiresPositiveK)
{
    Value *t = builder
                   ->create("tensor.empty", {},
                            {ctx.tensorType({4, 4}, ctx.f32())})
                   ->result(0);
    Type out = ctx.tensorType({4, 1}, ctx.f32());
    builder->create("torch.aten.topk", {t}, {out, out},
                    {{"k", Attribute(std::int64_t(0))}});
    expectInvalid();
}

TEST_F(OpsFixture, CrossbarOpsVerify)
{
    Value *rows = builder->constantIndex(64);
    Value *tile = builder
                      ->create("crossbar.alloc_tile", {rows, rows},
                               {ctx.opaqueType("crossbar", "tile_id")})
                      ->result(0);
    Value *weights = memref({64, 64});
    builder->create("crossbar.program_matrix", {tile, weights}, {});
    Value *input = memref({64});
    builder->create("crossbar.mvm", {tile, input},
                    {ctx.memrefType({64}, ctx.f32())});
    builder->create("crossbar.release", {tile}, {});
    expectValid();
}

TEST_F(OpsFixture, CrossbarMvmRejectsNonTile)
{
    Value *input = memref({64});
    builder->create("crossbar.mvm", {input, input},
                    {ctx.memrefType({64}, ctx.f32())});
    expectInvalid();
}

TEST_F(OpsFixture, CamAllocBankNeedsIndexDims)
{
    Value *f = builder->constantFloat(4.0);
    builder->create("cam.alloc_bank", {f, f},
                    {ctx.opaqueType("cam", "bank_id")});
    expectInvalid();
}
