/** @file PassManager unit tests. */

#include <gtest/gtest.h>

#include "dialects/AllDialects.h"
#include "ir/Builder.h"
#include "ir/Pass.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::ir;

namespace {

struct PassFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        dialects::loadAllDialects(ctx);
    }

    Module
    makeModule()
    {
        Module module(ctx);
        Operation *func = dialects::createFunction(module, "f", {});
        OpBuilder builder(ctx);
        builder.setInsertionPointToEnd(dialects::funcBody(func));
        builder.create(kReturnOpName, {}, {});
        return module;
    }

    Context ctx;
};

} // namespace

TEST_F(PassFixture, RunsPassesInOrder)
{
    Module module = makeModule();
    std::vector<std::string> order;
    PassManager pm;
    pm.add<LambdaPass>("first", [&](Module &) { order.push_back("1"); });
    pm.add<LambdaPass>("second", [&](Module &) { order.push_back("2"); });
    pm.run(module);
    EXPECT_EQ(order, (std::vector<std::string>{"1", "2"}));
    EXPECT_EQ(pm.size(), 2u);
}

TEST_F(PassFixture, FailureMentionsPassName)
{
    Module module = makeModule();
    PassManager pm;
    pm.add<LambdaPass>("broken", [](Module &) {
        C4CAM_USER_ERROR("boom");
    });
    try {
        pm.run(module);
        FAIL() << "expected failure";
    } catch (const CompilerError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("broken"), std::string::npos);
        EXPECT_NE(what.find("boom"), std::string::npos);
    }
}

TEST_F(PassFixture, VerifierCatchesPassDamage)
{
    Module module = makeModule();
    PassManager pm;
    pm.add<LambdaPass>("vandal", [this](Module &m) {
        OpBuilder builder(ctx);
        builder.setInsertionPointToEnd(m.body());
        builder.create("bogus.op", {}, {});
    });
    EXPECT_THROW(pm.run(module), CompilerError);
}

TEST_F(PassFixture, VerifierCanBeDisabled)
{
    Module module = makeModule();
    PassManager pm;
    pm.enableVerifier(false);
    pm.add<LambdaPass>("vandal", [this](Module &m) {
        OpBuilder builder(ctx);
        builder.setInsertionPointToEnd(m.body());
        builder.create("bogus.op", {}, {});
    });
    EXPECT_NO_THROW(pm.run(module));
}

TEST_F(PassFixture, TimingCollection)
{
    Module module = makeModule();
    PassManager pm;
    pm.enableTiming(true);
    pm.add<LambdaPass>("timed", [](Module &) {});
    pm.run(module);
    ASSERT_EQ(pm.timings().size(), 1u);
    EXPECT_EQ(pm.timings()[0].pass, "timed");
    EXPECT_GE(pm.timings()[0].millis, 0.0);
}

TEST_F(PassFixture, AfterPassCallbackSeesEachPass)
{
    Module module = makeModule();
    PassManager pm;
    std::vector<std::string> seen;
    pm.setAfterPassCallback([&](const std::string &name, Module &) {
        seen.push_back(name);
    });
    pm.add<LambdaPass>("a", [](Module &) {});
    pm.add<LambdaPass>("b", [](Module &) {});
    pm.run(module);
    EXPECT_EQ(seen, (std::vector<std::string>{"a", "b"}));
}
