/** @file Unit tests for string helpers. */

#include <gtest/gtest.h>

#include "support/StringUtils.h"

using namespace c4cam;

TEST(StringUtils, SplitKeepsEmptyFields)
{
    auto parts = splitString("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(StringUtils, SplitSingleToken)
{
    auto parts = splitString("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtils, SplitEmptyString)
{
    auto parts = splitString("", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "");
}

TEST(StringUtils, JoinInvertsSplit)
{
    std::vector<std::string> parts = {"x", "y", "z"};
    EXPECT_EQ(joinStrings(parts, "."), "x.y.z");
    EXPECT_EQ(joinStrings({}, "."), "");
    EXPECT_EQ(joinStrings({"solo"}, "."), "solo");
}

TEST(StringUtils, StartsWith)
{
    EXPECT_TRUE(startsWith("tensor<4xf32>", "tensor<"));
    EXPECT_FALSE(startsWith("tensor", "tensor<"));
    EXPECT_TRUE(startsWith("abc", ""));
    EXPECT_FALSE(startsWith("", "a"));
}

TEST(StringUtils, Trim)
{
    EXPECT_EQ(trimString("  a b  "), "a b");
    EXPECT_EQ(trimString("\t\nx\r "), "x");
    EXPECT_EQ(trimString(""), "");
    EXPECT_EQ(trimString("   "), "");
    EXPECT_EQ(trimString("nospace"), "nospace");
}
