/**
 * @file
 * Unit tests for support::trace -- the bounded TraceCollector ring,
 * the per-thread SpanRecorder batching front, id allocation, and the
 * dual-format (Chrome trace_event + compact spans) JSON export.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "support/Json.h"
#include "support/Trace.h"

using namespace c4cam;
using support::SpanContext;
using support::SpanRecorder;
using support::TraceCollector;
using support::TraceEvent;

namespace {

TraceEvent
makeSpan(const char *name, std::uint64_t span, std::uint64_t parent,
         double start, double dur)
{
    TraceEvent ev;
    ev.name = name;
    ev.traceId = 1;
    ev.queryId = 1;
    ev.spanId = span;
    ev.parentSpanId = parent;
    ev.startUs = start;
    ev.durUs = dur;
    return ev;
}

} // namespace

TEST(Trace, CollectorIsABoundedRingThatCountsDrops)
{
    TraceCollector collector(4);
    EXPECT_EQ(collector.capacity(), 4u);
    EXPECT_EQ(collector.size(), 0u);
    EXPECT_EQ(collector.dropped(), 0);

    for (std::uint64_t i = 1; i <= 4; ++i)
        collector.record(makeSpan("fill", i, 0, double(i), 1.0));
    EXPECT_EQ(collector.size(), 4u);
    EXPECT_EQ(collector.dropped(), 0);

    // Two more overwrite the two OLDEST events and count as drops;
    // the snapshot stays oldest-first across the wrap point.
    collector.record(makeSpan("wrap", 5, 0, 5.0, 1.0));
    collector.record(makeSpan("wrap", 6, 0, 6.0, 1.0));
    EXPECT_EQ(collector.size(), 4u);
    EXPECT_EQ(collector.dropped(), 2);
    std::vector<TraceEvent> events = collector.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].spanId, 3u);
    EXPECT_EQ(events[1].spanId, 4u);
    EXPECT_EQ(events[2].spanId, 5u);
    EXPECT_EQ(events[3].spanId, 6u);

    // Zero capacity clamps to one.
    TraceCollector tiny(0);
    EXPECT_EQ(tiny.capacity(), 1u);
    tiny.record(makeSpan("a", 1, 0, 0.0, 1.0));
    tiny.record(makeSpan("b", 2, 0, 1.0, 1.0));
    EXPECT_EQ(tiny.size(), 1u);
    EXPECT_EQ(tiny.dropped(), 1);
    EXPECT_EQ(tiny.snapshot()[0].spanId, 2u);
}

TEST(Trace, IdsAreMonotoneFromOne)
{
    // 0 is the universal "none" sentinel, so allocation starts at 1
    // and never repeats.
    TraceCollector collector;
    EXPECT_EQ(collector.newTraceId(), 1u);
    EXPECT_EQ(collector.newTraceId(), 2u);
    EXPECT_EQ(collector.newQueryId(), 1u);
    EXPECT_EQ(collector.newQueryId(), 2u);
    EXPECT_EQ(collector.newSpanId(), 1u);
    EXPECT_EQ(collector.newSpanId(), 2u);
}

TEST(Trace, ClockIsMonotoneAndSharedViaToUs)
{
    TraceCollector collector;
    double a = collector.nowUs();
    double b = collector.nowUs();
    EXPECT_GE(a, 0.0);
    EXPECT_GE(b, a);
    // toUs of a caller-taken steady_clock stamp lands on the same
    // epoch-relative axis as nowUs.
    double c = collector.toUs(std::chrono::steady_clock::now());
    EXPECT_GE(c, b);
}

TEST(Trace, RecorderBatchesAndFlushesOnDestruction)
{
    TraceCollector collector;
    {
        SpanRecorder recorder(&collector, /*batchCapacity=*/4);
        ASSERT_TRUE(recorder.enabled());
        for (std::uint64_t i = 1; i <= 3; ++i)
            recorder.record(makeSpan("batched", i, 0, double(i), 1.0));
        // Below the batch capacity nothing has reached the collector
        // yet -- the hot path pays no mutex per span.
        EXPECT_EQ(collector.size(), 0u);
        recorder.record(makeSpan("batched", 4, 0, 4.0, 1.0));
        // Hitting the batch capacity drains automatically.
        EXPECT_EQ(collector.size(), 4u);
        recorder.record(makeSpan("tail", 5, 0, 5.0, 1.0));
        EXPECT_EQ(collector.size(), 4u);
    } // destructor flushes the partial batch
    EXPECT_EQ(collector.size(), 5u);
    EXPECT_EQ(collector.snapshot()[4].spanId, 5u);

    // A default-constructed recorder is the off switch: recording into
    // it is a no-op, not a crash.
    SpanRecorder off;
    EXPECT_FALSE(off.enabled());
    off.record(makeSpan("dropped", 9, 0, 0.0, 1.0));
    off.flush();
}

TEST(Trace, DisabledSpanContextIsTheOffSwitch)
{
    SpanContext off;
    EXPECT_FALSE(off.enabled());
    TraceCollector collector;
    SpanContext on{&collector, 1, 2, 3};
    EXPECT_TRUE(on.enabled());
}

TEST(Trace, RecordFillsInPerThreadOrdinals)
{
    // tid 0 means "stamp me": each recording thread gets a small
    // stable ordinal (1, 2, ...), not a raw thread id.
    TraceCollector collector;
    collector.record(makeSpan("main", 1, 0, 0.0, 1.0));
    std::thread other(
        [&] { collector.record(makeSpan("other", 2, 0, 1.0, 1.0)); });
    other.join();
    collector.record(makeSpan("main", 3, 0, 2.0, 1.0));

    std::vector<TraceEvent> events = collector.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].tid, 1u);
    EXPECT_EQ(events[1].tid, 2u);
    EXPECT_EQ(events[2].tid, 1u); // same thread, same ordinal
}

TEST(Trace, ExportCarriesBothFormatsAndParsesBack)
{
    TraceCollector collector(8);
    TraceEvent exec = makeSpan("execute", 2, 1, 10.0, 5.0);
    exec.hasSim = true;
    exec.simQueryLatencyNs = 123.0;
    exec.simQueryEnergyPj = 456.0;
    exec.simSearches = 7;
    exec.fusedK = 3;
    collector.record(exec);
    collector.record(makeSpan("query", 1, 0, 10.0, 6.0));

    JsonValue doc = parseJson(collector.toJson().dump(2));
    EXPECT_EQ(doc.getString("schema", ""), "c4cam-trace-v1");
    EXPECT_EQ(doc.getInt("dropped", -1), 0);

    const auto &spans = doc.find("spans")->asArray();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].getString("name", ""), "execute");
    EXPECT_EQ(spans[0].getInt("span", 0), 2);
    EXPECT_EQ(spans[0].getInt("parent", 0), 1);
    EXPECT_DOUBLE_EQ(spans[0].find("start_us")->asNumber(), 10.0);
    EXPECT_DOUBLE_EQ(spans[0].find("dur_us")->asNumber(), 5.0);
    EXPECT_EQ(spans[0].getInt("fused_k", 0), 3);
    const JsonValue *sim = spans[0].find("sim");
    ASSERT_NE(sim, nullptr);
    EXPECT_DOUBLE_EQ(sim->find("query_latency_ns")->asNumber(), 123.0);
    EXPECT_DOUBLE_EQ(sim->find("query_energy_pj")->asNumber(), 456.0);
    EXPECT_EQ(sim->getInt("searches", 0), 7);
    // The plain query span carries neither sim nor fused_k keys.
    EXPECT_EQ(spans[1].find("sim"), nullptr);
    EXPECT_EQ(spans[1].find("fused_k"), nullptr);

    // Chrome trace_event view: complete ("X") phase events with the
    // same intervals, ids tucked under args.
    const auto &chrome = doc.find("traceEvents")->asArray();
    ASSERT_EQ(chrome.size(), 2u);
    EXPECT_EQ(chrome[0].getString("ph", ""), "X");
    EXPECT_EQ(chrome[0].getString("name", ""), "execute");
    EXPECT_DOUBLE_EQ(chrome[0].find("ts")->asNumber(), 10.0);
    EXPECT_DOUBLE_EQ(chrome[0].find("dur")->asNumber(), 5.0);
    ASSERT_NE(chrome[0].find("args"), nullptr);
    EXPECT_EQ(chrome[0].find("args")->getInt("span", 0), 2);
}

TEST(Trace, WriteFileRoundTripsThroughTheJsonParser)
{
    TraceCollector collector;
    collector.record(makeSpan("query", 1, 0, 0.0, 2.0));
    std::string path = testing::TempDir() + "c4cam_trace_test.json";
    ASSERT_TRUE(collector.writeFile(path));
    JsonValue doc = parseJsonFile(path);
    EXPECT_EQ(doc.getString("schema", ""), "c4cam-trace-v1");
    EXPECT_EQ(doc.find("spans")->asArray().size(), 1u);
    std::remove(path.c_str());

    // Unwritable paths report failure instead of throwing.
    EXPECT_FALSE(collector.writeFile("/nonexistent/dir/trace.json"));
}
