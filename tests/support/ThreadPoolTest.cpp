/** @file Worker-pool tests. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "support/Error.h"
#include "support/ThreadPool.h"

using c4cam::support::ThreadPool;

TEST(ThreadPool, RunsEveryTaskAndReturnsResults)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4u);

    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.numThreads(), 1u);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures)
{
    ThreadPool pool(2);
    std::future<void> failing = pool.submit(
        [] { throw std::runtime_error("task failed"); });
    std::future<int> healthy = pool.submit([] { return 7; });
    EXPECT_THROW(failing.get(), std::runtime_error);
    // A thrown task does not poison the pool.
    EXPECT_EQ(healthy.get(), 7);
    EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, TasksRunOnWorkerThreads)
{
    ThreadPool pool(2);
    std::future<std::thread::id> id =
        pool.submit([] { return std::this_thread::get_id(); });
    EXPECT_NE(id.get(), std::this_thread::get_id());
}

TEST(ThreadPool, ActuallyRunsTasksConcurrently)
{
    // Two tasks that can only finish together: each waits for the
    // other to start. With 2 workers this completes; a serial queue
    // would deadlock (guarded by the timeout check below).
    ThreadPool pool(2);
    std::atomic<int> started{0};
    auto rendezvous = [&started] {
        started.fetch_add(1);
        auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        while (started.load() < 2) {
            if (std::chrono::steady_clock::now() > deadline)
                return false;
            std::this_thread::yield();
        }
        return true;
    };
    std::future<bool> a = pool.submit(rendezvous);
    std::future<bool> b = pool.submit(rendezvous);
    EXPECT_TRUE(a.get());
    EXPECT_TRUE(b.get());
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> completed{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 16; ++i)
            pool.submit([&completed] { ++completed; });
        // No waiting here: the destructor must drain the queue.
    }
    EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPool, OptionsZeroThreadsMeansHardwareConcurrency)
{
    c4cam::support::ThreadPoolOptions options;
    ThreadPool pool(options);
    EXPECT_GE(pool.numThreads(), 1u);
}

TEST(ThreadPool, AffinitySupportMatchesThePlatform)
{
#if defined(__linux__)
    EXPECT_TRUE(ThreadPool::affinitySupported());
#else
    EXPECT_FALSE(ThreadPool::affinitySupported());
#endif
}

TEST(ThreadPool, NamedPinnedWorkersStillComputeEverything)
{
    // Placement is observational only: a named, pinned pool (pinning
    // best-effort -- a restricted cpuset may refuse, and that is fine)
    // must behave exactly like a plain one.
    c4cam::support::ThreadPoolOptions options;
    options.threads = 4;
    options.namePrefix = "c4cam-tptest-";
    options.pinThreads = true;
    options.pinOffset = 1;
    ThreadPool pool(options);
    EXPECT_EQ(pool.numThreads(), 4u);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

#if defined(__linux__)
TEST(ThreadPool, WorkersCarryThePrefixedName)
{
    // Hold all 4 workers at a rendezvous so each reports its own
    // /proc/self/task name exactly once.
    c4cam::support::ThreadPoolOptions options;
    options.threads = 4;
    options.namePrefix = "c4cam-nm-";
    ThreadPool pool(options);
    std::atomic<int> started{0};
    auto name_of_self = [&started] {
        started.fetch_add(1);
        auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        while (started.load() < 4 &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::yield();
        char name[32] = {0};
        pthread_getname_np(pthread_self(), name, sizeof(name));
        return std::string(name);
    };
    std::vector<std::future<std::string>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(pool.submit(name_of_self));
    std::set<std::string> names;
    for (auto &future : futures)
        names.insert(future.get());
    EXPECT_EQ(names, (std::set<std::string>{"c4cam-nm-0", "c4cam-nm-1",
                                            "c4cam-nm-2", "c4cam-nm-3"}));
}

TEST(ThreadPool, LongNamePrefixTruncatesInsteadOfFailing)
{
    // Linux caps thread names at 15 chars + NUL; the pool must
    // truncate, not skip naming or error out.
    c4cam::support::ThreadPoolOptions options;
    options.threads = 1;
    options.namePrefix = "c4cam-very-long-worker-prefix-";
    ThreadPool pool(options);
    std::string name = pool.submit([] {
                               char buf[32] = {0};
                               pthread_getname_np(pthread_self(), buf,
                                                  sizeof(buf));
                               return std::string(buf);
                           }).get();
    EXPECT_EQ(name.size(), 15u);
    EXPECT_EQ(name, std::string("c4cam-very-long-worker-prefix-0")
                        .substr(0, 15));
}
#endif // __linux__
