/**
 * @file
 * Exact M-way top-k merge: the comparator's tie-break contract and the
 * heap merge's equivalence to sorting everything at once -- the two
 * properties the sharded serving layer's bit-identity rests on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/Rng.h"
#include "support/TopKMerge.h"

using c4cam::Rng;
using c4cam::support::mergeTopK;
using c4cam::support::TopKEntry;
using c4cam::support::topKOrderedBefore;

namespace {

bool
sameEntries(const std::vector<TopKEntry> &a, const std::vector<TopKEntry> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].value != b[i].value || a[i].index != b[i].index)
            return false;
    return true;
}

/** What one big device would do: stable-sort ALL entries under the
 *  same comparator, truncate to k. */
std::vector<TopKEntry>
referenceMerge(const std::vector<std::vector<TopKEntry>> &partials,
               std::size_t k, bool largest)
{
    std::vector<TopKEntry> all;
    for (const auto &list : partials)
        all.insert(all.end(), list.begin(), list.end());
    std::stable_sort(all.begin(), all.end(),
                     [largest](const TopKEntry &a, const TopKEntry &b) {
                         return topKOrderedBefore(a, b, largest);
                     });
    if (all.size() > k)
        all.resize(k);
    return all;
}

} // namespace

TEST(TopKMerge, ComparatorRanksByValueThenLowerIndex)
{
    TopKEntry low{1.0, 7};
    TopKEntry high{2.0, 3};
    // Smallest-first (the CAM distance path).
    EXPECT_TRUE(topKOrderedBefore(low, high, /*largest=*/false));
    EXPECT_FALSE(topKOrderedBefore(high, low, /*largest=*/false));
    // Largest-first flips the value order...
    EXPECT_TRUE(topKOrderedBefore(high, low, /*largest=*/true));
    // ...but ties ALWAYS break toward the lower global index, in both
    // directions -- that is the stable-sort order a single device
    // emits.
    TopKEntry tie_a{5.0, 2};
    TopKEntry tie_b{5.0, 9};
    EXPECT_TRUE(topKOrderedBefore(tie_a, tie_b, true));
    EXPECT_TRUE(topKOrderedBefore(tie_a, tie_b, false));
    EXPECT_FALSE(topKOrderedBefore(tie_b, tie_a, true));
    EXPECT_FALSE(topKOrderedBefore(tie_b, tie_a, false));
    // An entry never orders before itself (strict weak ordering).
    EXPECT_FALSE(topKOrderedBefore(tie_a, tie_a, true));
}

TEST(TopKMerge, MergesTwoSortedPartials)
{
    std::vector<std::vector<TopKEntry>> partials = {
        {{0.1, 0}, {0.4, 2}},
        {{0.2, 5}, {0.3, 6}},
    };
    std::vector<TopKEntry> merged = mergeTopK(partials, 3, false);
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_TRUE(sameEntries(merged, {{0.1, 0}, {0.2, 5}, {0.3, 6}}));
}

TEST(TopKMerge, KClampsToTotalEntryCount)
{
    std::vector<std::vector<TopKEntry>> partials = {{{1.0, 0}},
                                                    {{2.0, 1}}};
    EXPECT_EQ(mergeTopK(partials, 10, false).size(), 2u);
    EXPECT_EQ(mergeTopK(partials, 0, false).size(), 0u);
    EXPECT_TRUE(mergeTopK({}, 4, true).empty());
    // Empty inner lists are legal (a shard smaller than k never
    // happens under ShardPlan, but the merge itself does not care).
    std::vector<std::vector<TopKEntry>> with_empty = {{}, {{3.0, 2}}};
    EXPECT_TRUE(
        sameEntries(mergeTopK(with_empty, 2, false), {{3.0, 2}}));
}

TEST(TopKMerge, TiesAcrossPartialsBreakTowardLowerGlobalIndex)
{
    // The duplicate-stored-row case: equal values living on different
    // shards must come out in global index order, whichever list they
    // arrived in.
    std::vector<std::vector<TopKEntry>> partials = {
        {{0.5, 4}, {0.9, 1}},
        {{0.5, 3}, {0.9, 6}},
    };
    std::vector<TopKEntry> merged = mergeTopK(partials, 4, false);
    EXPECT_TRUE(sameEntries(
        merged, {{0.5, 3}, {0.5, 4}, {0.9, 1}, {0.9, 6}}));
}

TEST(TopKMerge, MatchesSortingEverythingAtOnce)
{
    // Randomized shard partials (sorted per list, as a shard's own
    // top-k output is), including heavy value collisions so the
    // tie-break path is exercised. The heap merge must agree with the
    // flatten-and-stable-sort reference entry for entry.
    Rng rng(2024);
    for (int round = 0; round < 200; ++round) {
        bool largest = rng.nextBool();
        std::size_t shards = 1 + rng.nextBelow(5);
        std::size_t k = rng.nextBelow(8);
        std::vector<std::vector<TopKEntry>> partials(shards);
        std::int64_t global = 0;
        for (auto &list : partials) {
            std::size_t len = rng.nextBelow(7);
            for (std::size_t i = 0; i < len; ++i)
                // Few distinct values -> many ties.
                list.push_back(
                    {static_cast<double>(rng.nextBelow(4)), global++});
            std::sort(list.begin(), list.end(),
                      [largest](const TopKEntry &a, const TopKEntry &b) {
                          return topKOrderedBefore(a, b, largest);
                      });
        }
        EXPECT_TRUE(sameEntries(mergeTopK(partials, k, largest),
                                referenceMerge(partials, k, largest)))
            << "round " << round;
    }
}
