/** @file Unit tests for error-handling macros. */

#include <gtest/gtest.h>

#include "support/Error.h"

using namespace c4cam;

TEST(Error, UserErrorCarriesMessage)
{
    try {
        C4CAM_USER_ERROR("bad input " << 42);
        FAIL() << "expected CompilerError";
    } catch (const CompilerError &err) {
        EXPECT_STREQ(err.what(), "bad input 42");
    }
}

TEST(Error, CheckPassesOnTrue)
{
    EXPECT_NO_THROW(C4CAM_CHECK(1 + 1 == 2, "unused"));
}

TEST(Error, CheckThrowsCompilerError)
{
    EXPECT_THROW(C4CAM_CHECK(false, "nope"), CompilerError);
}

TEST(Error, AssertThrowsInternalError)
{
    EXPECT_THROW(C4CAM_ASSERT(false, "bug"), InternalError);
    EXPECT_NO_THROW(C4CAM_ASSERT(true, "fine"));
}

TEST(Error, InternalErrorMentionsLocation)
{
    try {
        C4CAM_ASSERT(false, "broken invariant");
        FAIL() << "expected InternalError";
    } catch (const InternalError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("ErrorTest.cpp"), std::string::npos);
        EXPECT_NE(what.find("broken invariant"), std::string::npos);
    }
}

TEST(Error, CompilerErrorIsNotInternalError)
{
    try {
        C4CAM_CHECK(false, "user fault");
    } catch (const InternalError &) {
        FAIL() << "C4CAM_CHECK must not raise InternalError";
    } catch (const CompilerError &) {
        SUCCEED();
    }
}
