/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "support/Rng.h"

using namespace c4cam;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, BoolIsRoughlyFair)
{
    Rng rng(11);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += rng.nextBool() ? 1 : 0;
    EXPECT_GT(heads, 4500);
    EXPECT_LT(heads, 5500);
}

TEST(Rng, GaussianMomentsAreSane)
{
    Rng rng(13);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.nextGaussian();
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}
