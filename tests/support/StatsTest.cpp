/**
 * @file
 * Regression pins for support::percentile -- the one implementation
 * behind every p50/p95 the serving stack reports.
 *
 * The old copy in ServingEngine.cpp computed ceil(p / 100.0 * n),
 * which can land one ulp above an integral rank (p / 100 rounds away
 * from the exact value for most p, and the multiply keeps the excess
 * for some n) so ceil() returns the NEXT rank: p28/n25 yielded the
 * 8th element instead of the 7th, one of ~27 wrong integral-rank
 * points for n <= 200. These tests pin the exact nearest-rank
 * semantics on known sequences, including those off-by-one inputs,
 * so the math cannot silently regress.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "support/Stats.h"

using c4cam::support::percentile;

TEST(Stats, EmptyReturnsZero)
{
    EXPECT_EQ(percentile({}, 50.0), 0.0);
    EXPECT_EQ(percentile({}, 95.0), 0.0);
}

TEST(Stats, OneElementIsEveryPercentile)
{
    std::vector<double> one{42.5};
    EXPECT_EQ(percentile(one, 0.0), 42.5);
    EXPECT_EQ(percentile(one, 50.0), 42.5);
    EXPECT_EQ(percentile(one, 95.0), 42.5);
    EXPECT_EQ(percentile(one, 100.0), 42.5);
}

TEST(Stats, NearestRankPinsOnKnownSequences)
{
    // Nearest-rank: smallest k with k * 100 >= p * n.
    std::vector<double> four{1.0, 2.0, 3.0, 4.0};
    EXPECT_EQ(percentile(four, 50.0), 2.0);  // k = 2 (lower median)
    EXPECT_EQ(percentile(four, 95.0), 4.0);  // k = ceil(3.8) = 4
    EXPECT_EQ(percentile(four, 100.0), 4.0); // max
    EXPECT_EQ(percentile(four, 0.0), 1.0);   // clamped to rank 1

    std::vector<double> twenty(20);
    std::iota(twenty.begin(), twenty.end(), 1.0); // 1..20
    EXPECT_EQ(percentile(twenty, 50.0), 10.0);    // k = 10
    EXPECT_EQ(percentile(twenty, 95.0), 19.0);    // k = 19, not 20
    EXPECT_EQ(percentile(twenty, 5.0), 1.0);      // k = 1

    std::vector<double> five{3.0, 3.0, 5.0, 8.0, 13.0};
    EXPECT_EQ(percentile(five, 50.0), 5.0); // k = ceil(2.5) = 3
    EXPECT_EQ(percentile(five, 95.0), 13.0);
}

TEST(Stats, TiedValuesResolveToTheTie)
{
    // Ranks that fall inside a run of equal samples must return that
    // value, and the rank arithmetic must not be confused by ties.
    std::vector<double> tied{5.0, 5.0, 5.0, 7.0};
    EXPECT_EQ(percentile(tied, 50.0), 5.0); // k = 2
    EXPECT_EQ(percentile(tied, 75.0), 5.0); // k = 3: still in the run
    EXPECT_EQ(percentile(tied, 95.0), 7.0); // k = 4

    std::vector<double> all_same(17, 9.25);
    EXPECT_EQ(percentile(all_same, 50.0), 9.25);
    EXPECT_EQ(percentile(all_same, 95.0), 9.25);
}

TEST(Stats, FloatRoundingCannotBumpAnIntegralRank)
{
    // The historical bug: 28.0 / 100.0 rounds away from 0.28, the
    // multiply by n = 25 keeps the excess (7.000000000000001), and
    // ceil() of that is 8 -- the 8th element for an exact rank of 7.
    // The exact-rank comparison (k * 100 >= p * n, both sides exact)
    // must return element 7.
    std::vector<double> n25(25);
    std::iota(n25.begin(), n25.end(), 1.0); // 1..25
    EXPECT_EQ(percentile(n25, 28.0), 7.0);
    EXPECT_EQ(percentile(n25, 56.0), 14.0); // same failure shape
    std::vector<double> n50(50);
    std::iota(n50.begin(), n50.end(), 1.0); // 1..50
    EXPECT_EQ(percentile(n50, 14.0), 7.0);

    // A sweep of integral-rank points: for every n and every integral
    // p with p * n divisible by 100, the result must be exactly the
    // (p * n / 100)-th element. Catches any other p/n pair where the
    // division-based estimate drifts.
    for (std::size_t n = 1; n <= 200; ++n) {
        std::vector<double> v(n);
        std::iota(v.begin(), v.end(), 1.0);
        for (int p = 1; p <= 100; ++p) {
            if ((static_cast<std::size_t>(p) * n) % 100 != 0)
                continue;
            std::size_t k = static_cast<std::size_t>(p) * n / 100;
            EXPECT_EQ(percentile(v, static_cast<double>(p)),
                      static_cast<double>(k))
                << "n=" << n << " p=" << p;
        }
    }
}

TEST(Stats, OutOfRangePercentilesClamp)
{
    std::vector<double> v{1.0, 2.0, 3.0};
    EXPECT_EQ(percentile(v, -10.0), 1.0);
    EXPECT_EQ(percentile(v, 250.0), 3.0);
}

TEST(Stats, LatencyWindowIsABoundedRing)
{
    c4cam::support::LatencyWindow window(4);
    EXPECT_EQ(window.capacity(), 4u);
    EXPECT_EQ(window.size(), 0u);
    EXPECT_TRUE(window.sorted().empty());

    for (double v : {3.0, 1.0, 2.0})
        window.record(v);
    EXPECT_EQ(window.size(), 3u);
    EXPECT_EQ(window.sorted(), (std::vector<double>{1.0, 2.0, 3.0}));

    // Filling past capacity overwrites the OLDEST samples: after
    // recording 4.0 then 9.0 into a capacity-4 window, 3.0 (the
    // first) is gone and the rest survive.
    window.record(4.0);
    window.record(9.0);
    EXPECT_EQ(window.size(), 4u);
    EXPECT_EQ(window.sorted(),
              (std::vector<double>{1.0, 2.0, 4.0, 9.0}));

    // The window never grows past its bound, however much it serves.
    for (int i = 0; i < 100; ++i)
        window.record(static_cast<double>(i));
    EXPECT_EQ(window.size(), 4u);
    EXPECT_EQ(window.sorted(),
              (std::vector<double>{96.0, 97.0, 98.0, 99.0}));

    // Zero capacity clamps to one instead of dividing by zero.
    c4cam::support::LatencyWindow tiny(0);
    tiny.record(5.0);
    tiny.record(6.0);
    EXPECT_EQ(tiny.capacity(), 1u);
    EXPECT_EQ(tiny.sorted(), (std::vector<double>{6.0}));
}

TEST(Stats, LatencyWindowWraparoundOverwritesOldestFirst)
{
    // The ring fills by push_back (cursor stays at 0), so the first
    // overwrite must land on index 0 -- the oldest sample -- and each
    // subsequent record advances the cursor by exactly one slot.
    c4cam::support::LatencyWindow window(4);
    for (double v : {1.0, 2.0, 3.0, 4.0})
        window.record(v);

    window.record(5.0); // evicts 1.0
    EXPECT_EQ(window.size(), 4u);
    EXPECT_EQ(window.sorted(),
              (std::vector<double>{2.0, 3.0, 4.0, 5.0}));

    window.record(6.0); // evicts 2.0
    EXPECT_EQ(window.sorted(),
              (std::vector<double>{3.0, 4.0, 5.0, 6.0}));

    // A full extra revolution wraps the cursor back to slot 0: the
    // next record after 7.0, 8.0, 9.0 must evict 6.0, not a newer
    // sample (a cursor that failed to wrap would clobber 9.0).
    window.record(7.0);
    window.record(8.0);
    window.record(9.0);
    EXPECT_EQ(window.sorted(),
              (std::vector<double>{6.0, 7.0, 8.0, 9.0}));
    window.record(10.0); // cursor wrapped: evicts 6.0
    EXPECT_EQ(window.sorted(),
              (std::vector<double>{7.0, 8.0, 9.0, 10.0}));
}

TEST(Stats, LatencyWindowSortedIsConsistentMidWrap)
{
    // sorted() must not assume the ring is in chronological layout:
    // mid-wrap the newest sample lives at a lower index than older
    // ones, and the sorted copy still has to order by value.
    c4cam::support::LatencyWindow window(3);
    window.record(10.0);
    window.record(20.0);
    window.record(30.0);

    window.record(5.0); // ring layout is now [5, 20, 30]
    EXPECT_EQ(window.size(), 3u);
    EXPECT_EQ(window.sorted(), (std::vector<double>{5.0, 20.0, 30.0}));

    window.record(40.0); // ring layout is now [5, 40, 30]
    EXPECT_EQ(window.sorted(), (std::vector<double>{5.0, 30.0, 40.0}));
}

TEST(Stats, LatencyWindowCapacityOneKeepsOnlyTheLatest)
{
    // Explicit capacity 1 (as opposed to the 0-clamp case): every
    // record replaces the single slot, size never exceeds one.
    c4cam::support::LatencyWindow window(1);
    EXPECT_EQ(window.capacity(), 1u);
    for (double v : {1.0, 2.0, 3.0}) {
        window.record(v);
        EXPECT_EQ(window.size(), 1u);
        EXPECT_EQ(window.sorted(), (std::vector<double>{v}));
    }
}
