/**
 * @file
 * Shared CLI number parsing: the one strtoll/strtod wrapper pair every
 * tool and bench routes through (see support/CliParse.h for why it
 * exists).
 */

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "support/CliParse.h"

using c4cam::support::FlagParse;
using c4cam::support::parseDouble;
using c4cam::support::parseDoubleFlag;
using c4cam::support::parseInt;
using c4cam::support::parseIntFlag;

TEST(CliParse, ParsesPlainDecimal)
{
    long long out = -1;
    EXPECT_TRUE(parseInt("0", out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(parseInt("42", out));
    EXPECT_EQ(out, 42);
    EXPECT_TRUE(parseInt("9007199254740993", out));
    EXPECT_EQ(out, 9007199254740993ll);
}

TEST(CliParse, RejectsGarbageAndLeavesOutUntouched)
{
    long long out = 77;
    EXPECT_FALSE(parseInt(nullptr, out));
    EXPECT_FALSE(parseInt("", out));
    EXPECT_FALSE(parseInt("banana", out));
    EXPECT_FALSE(parseInt("12banana", out)); // trailing garbage
    EXPECT_FALSE(parseInt("1 2", out));
    EXPECT_FALSE(parseInt("0x10", out)); // base 10 only
    EXPECT_FALSE(parseInt("3.5", out));
    EXPECT_EQ(out, 77) << "a failed parse must not clobber out";
}

TEST(CliParse, RejectsOverflow)
{
    long long out = 5;
    // One past LLONG_MAX and far past it: both saturate in strtoll
    // (ERANGE), both must fail rather than wrap.
    EXPECT_FALSE(parseInt("9223372036854775808", out));
    EXPECT_FALSE(parseInt("99999999999999999999999999", out));
    EXPECT_FALSE(parseInt("-99999999999999999999999999", out,
                          std::numeric_limits<long long>::min()));
    EXPECT_EQ(out, 5);
}

TEST(CliParse, BoundsAreInclusive)
{
    long long out = 0;
    EXPECT_TRUE(parseInt("1", out, 1, 4));
    EXPECT_TRUE(parseInt("4", out, 1, 4));
    EXPECT_FALSE(parseInt("0", out, 1, 4));
    EXPECT_FALSE(parseInt("5", out, 1, 4));
}

TEST(CliParse, DefaultMinimumIsZero)
{
    // The tools' flags are counts; a bare parseInt() call already
    // rejects negatives unless the caller opts in to them.
    long long out = 0;
    EXPECT_FALSE(parseInt("-1", out));
    EXPECT_TRUE(parseInt("-1", out, -10));
    EXPECT_EQ(out, -1);
}

namespace {

/** argv-shaped scratch for the flag-matching tests. */
std::vector<char *>
makeArgv(const std::vector<std::string> &args, std::vector<std::string> &keep)
{
    keep = args;
    std::vector<char *> argv;
    for (std::string &arg : keep)
        argv.push_back(arg.data());
    return argv;
}

} // namespace

TEST(CliParse, FlagNoMatchConsumesNothing)
{
    std::vector<std::string> keep;
    auto argv = makeArgv({"tool", "--other", "3"}, keep);
    int i = 1;
    long long out = -1;
    EXPECT_EQ(parseIntFlag(static_cast<int>(argv.size()), argv.data(), i,
                           "--queries", out),
              FlagParse::NoMatch);
    EXPECT_EQ(i, 1) << "NoMatch must not advance the cursor";
    EXPECT_EQ(out, -1);
}

TEST(CliParse, FlagOkConsumesTheValue)
{
    std::vector<std::string> keep;
    auto argv = makeArgv({"tool", "--queries", "64", "--tail"}, keep);
    int i = 1;
    long long out = 0;
    EXPECT_EQ(parseIntFlag(static_cast<int>(argv.size()), argv.data(), i,
                           "--queries", out, 1),
              FlagParse::Ok);
    EXPECT_EQ(out, 64);
    EXPECT_EQ(i, 2) << "the cursor must point at the consumed value";
}

TEST(CliParse, FlagMissingValueIsBad)
{
    std::vector<std::string> keep;
    auto argv = makeArgv({"tool", "--queries"}, keep);
    int i = 1;
    long long out = 9;
    EXPECT_EQ(parseIntFlag(static_cast<int>(argv.size()), argv.data(), i,
                           "--queries", out, 1),
              FlagParse::Bad);
    EXPECT_EQ(out, 9);
}

TEST(CliParse, FlagMalformedValueIsBadAndPointsAtIt)
{
    std::vector<std::string> keep;
    auto argv = makeArgv({"tool", "--queries", "banana"}, keep);
    int i = 1;
    long long out = 9;
    EXPECT_EQ(parseIntFlag(static_cast<int>(argv.size()), argv.data(), i,
                           "--queries", out, 1),
              FlagParse::Bad);
    // i points at the offending argument so the caller's diagnostic
    // can name it.
    EXPECT_EQ(i, 2);
    EXPECT_STREQ(argv[static_cast<std::size_t>(i)], "banana");
    EXPECT_EQ(out, 9);
}

TEST(CliParse, FlagOutOfRangeValueIsBad)
{
    std::vector<std::string> keep;
    auto argv = makeArgv({"tool", "--workers", "512"}, keep);
    int i = 1;
    long long out = 4;
    EXPECT_EQ(parseIntFlag(static_cast<int>(argv.size()), argv.data(), i,
                           "--workers", out, 1, 256),
              FlagParse::Bad);
    EXPECT_EQ(out, 4);
}

TEST(CliParse, DoubleParsesDecimalAndScientific)
{
    double out = -1.0;
    EXPECT_TRUE(parseDouble("0", out));
    EXPECT_EQ(out, 0.0);
    EXPECT_TRUE(parseDouble("0.001", out));
    EXPECT_EQ(out, 0.001);
    EXPECT_TRUE(parseDouble("1e-3", out));
    EXPECT_EQ(out, 1e-3);
    EXPECT_TRUE(parseDouble("2.5", out, 0.0, 10.0));
    EXPECT_EQ(out, 2.5);
}

TEST(CliParse, DoubleRejectsGarbageAndLeavesOutUntouched)
{
    double out = 7.5;
    EXPECT_FALSE(parseDouble(nullptr, out));
    EXPECT_FALSE(parseDouble("", out));
    EXPECT_FALSE(parseDouble("banana", out));
    EXPECT_FALSE(parseDouble("0.5banana", out)); // trailing garbage
    EXPECT_FALSE(parseDouble("0. 5", out));
    EXPECT_EQ(out, 7.5) << "a failed parse must not clobber out";
}

TEST(CliParse, DoubleRejectsNonFinite)
{
    // No CLI knob wants inf/nan; strtod accepts them, the wrapper
    // must not.
    double out = 1.0;
    EXPECT_FALSE(parseDouble("inf", out));
    EXPECT_FALSE(parseDouble("-inf", out, -1e300));
    EXPECT_FALSE(parseDouble("nan", out));
    EXPECT_FALSE(parseDouble("1e9999", out)); // overflows to inf
    EXPECT_EQ(out, 1.0);
}

TEST(CliParse, DoubleBoundsAreInclusive)
{
    double out = 0.0;
    EXPECT_TRUE(parseDouble("0", out, 0.0, 1.0));
    EXPECT_TRUE(parseDouble("1", out, 0.0, 1.0));
    EXPECT_FALSE(parseDouble("-0.25", out, 0.0, 1.0));
    EXPECT_FALSE(parseDouble("1.25", out, 0.0, 1.0));
    // The default minimum is zero, like parseInt: rates and scale
    // factors are non-negative unless the caller opts in.
    EXPECT_FALSE(parseDouble("-1", out));
    EXPECT_TRUE(parseDouble("-1", out, -10.0));
    EXPECT_EQ(out, -1.0);
}

TEST(CliParse, DoubleFlagMatchesTheIntFlagContract)
{
    std::vector<std::string> keep;
    auto argv = makeArgv({"tool", "--fault-rate", "0.01", "--tail"}, keep);
    int i = 1;
    double out = 0.0;
    EXPECT_EQ(parseDoubleFlag(static_cast<int>(argv.size()), argv.data(),
                              i, "--fault-rate", out, 0.0, 1.0),
              FlagParse::Ok);
    EXPECT_EQ(out, 0.01);
    EXPECT_EQ(i, 2) << "the cursor must point at the consumed value";

    i = 1;
    EXPECT_EQ(parseDoubleFlag(static_cast<int>(argv.size()), argv.data(),
                              i, "--time-scale", out),
              FlagParse::NoMatch);
    EXPECT_EQ(i, 1) << "NoMatch must not advance the cursor";
}

TEST(CliParse, DoubleFlagBadValues)
{
    std::vector<std::string> keep;
    auto argv = makeArgv({"tool", "--fault-rate", "1.5"}, keep);
    int i = 1;
    double out = 0.25;
    EXPECT_EQ(parseDoubleFlag(static_cast<int>(argv.size()), argv.data(),
                              i, "--fault-rate", out, 0.0, 1.0),
              FlagParse::Bad);
    EXPECT_EQ(i, 2) << "i points at the offending argument";
    EXPECT_EQ(out, 0.25);

    auto argv2 = makeArgv({"tool", "--fault-rate"}, keep);
    i = 1;
    EXPECT_EQ(parseDoubleFlag(static_cast<int>(argv2.size()),
                              argv2.data(), i, "--fault-rate", out, 0.0,
                              1.0),
              FlagParse::Bad);
    EXPECT_EQ(out, 0.25);
}
