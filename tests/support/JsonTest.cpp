/** @file Unit tests for the JSON-lite parser used by arch specs. */

#include <gtest/gtest.h>

#include <cmath>

#include "support/Error.h"
#include "support/Json.h"

using namespace c4cam;

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null").isNull());
    EXPECT_TRUE(parseJson("true").asBool());
    EXPECT_FALSE(parseJson("false").asBool());
    EXPECT_DOUBLE_EQ(parseJson("3.5").asNumber(), 3.5);
    EXPECT_EQ(parseJson("42").asInt(), 42);
    EXPECT_EQ(parseJson("-7").asInt(), -7);
    EXPECT_EQ(parseJson("\"hello\"").asString(), "hello");
}

TEST(Json, ParsesScientificNotation)
{
    EXPECT_DOUBLE_EQ(parseJson("1e3").asNumber(), 1000.0);
    EXPECT_DOUBLE_EQ(parseJson("-2.5e-2").asNumber(), -0.025);
}

TEST(Json, ParsesNestedStructures)
{
    JsonValue v = parseJson(R"({"a": [1, 2, {"b": true}], "c": "x"})");
    ASSERT_TRUE(v.isObject());
    const auto &arr = v.find("a")->asArray();
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_EQ(arr[0].asInt(), 1);
    EXPECT_TRUE(arr[2].find("b")->asBool());
    EXPECT_EQ(v.getString("c", ""), "x");
}

TEST(Json, SupportsLineComments)
{
    JsonValue v = parseJson("// header\n{\"a\": 1 // trailing\n}");
    EXPECT_EQ(v.getInt("a", 0), 1);
}

TEST(Json, DefaultsForMissingKeys)
{
    JsonValue v = parseJson("{}");
    EXPECT_EQ(v.getInt("missing", 9), 9);
    EXPECT_EQ(v.getString("missing", "d"), "d");
    EXPECT_TRUE(v.getBool("missing", true));
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, StringEscapes)
{
    EXPECT_EQ(parseJson(R"("a\"b\\c\nd")").asString(), "a\"b\\c\nd");
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson("{"), CompilerError);
    EXPECT_THROW(parseJson("[1, 2"), CompilerError);
    EXPECT_THROW(parseJson("{\"a\" 1}"), CompilerError);
    EXPECT_THROW(parseJson("tru"), CompilerError);
    EXPECT_THROW(parseJson("1 2"), CompilerError);
    EXPECT_THROW(parseJson(""), CompilerError);
}

TEST(Json, RejectsTypeMismatches)
{
    JsonValue v = parseJson("{\"a\": 1.5}");
    EXPECT_THROW(v.find("a")->asString(), CompilerError);
    EXPECT_THROW(v.find("a")->asInt(), CompilerError); // non-integral
    EXPECT_THROW(v.asArray(), CompilerError);
}

TEST(Json, DumpRoundTrips)
{
    std::string text = R"({"arr": [1, 2.5, "s"], "flag": true, "n": 3})";
    JsonValue v = parseJson(text);
    JsonValue again = parseJson(v.dump());
    EXPECT_EQ(again.find("arr")->asArray()[1].asNumber(), 2.5);
    EXPECT_TRUE(again.getBool("flag", false));
    EXPECT_EQ(again.getInt("n", 0), 3);
    // Pretty dump parses too.
    EXPECT_EQ(parseJson(v.dump(2)).getInt("n", 0), 3);
}

TEST(Json, BuildsProgrammatically)
{
    JsonValue obj = JsonValue::makeObject();
    obj.set("x", JsonValue(1.0));
    JsonValue arr = JsonValue::makeArray();
    arr.append(JsonValue(std::string("a")));
    obj.set("list", std::move(arr));
    EXPECT_EQ(obj.getInt("x", 0), 1);
    EXPECT_EQ(obj.find("list")->asArray()[0].asString(), "a");
}

TEST(Json, MissingFileThrows)
{
    EXPECT_THROW(parseJsonFile("/nonexistent/file.json"), CompilerError);
}

TEST(Json, RejectsExcessiveNestingDepth)
{
    // Regression: this used to exhaust the stack and segfault instead
    // of reporting a parse error.
    std::string bomb =
        std::string(1'000'000, '[') + std::string(1'000'000, ']');
    EXPECT_THROW(parseJson(bomb), CompilerError);

    // The limit is exact: 256 levels parse, 257 are rejected.
    EXPECT_NO_THROW(parseJson(std::string(256, '[') +
                              std::string(256, ']')));
    EXPECT_THROW(parseJson(std::string(257, '[') + std::string(257, ']')),
                 CompilerError);

    // Objects count against the same budget as arrays.
    std::string objs;
    for (int i = 0; i < 300; ++i)
        objs += "{\"k\":";
    objs += "null";
    objs += std::string(300, '}');
    EXPECT_THROW(parseJson(objs), CompilerError);
}

TEST(Json, DepthErrorCarriesSourceLocation)
{
    try {
        parseJson("\n\n" + std::string(400, '[') + std::string(400, ']'));
        FAIL() << "expected CompilerError";
    } catch (const CompilerError &err) {
        std::string msg = err.what();
        EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("column"), std::string::npos) << msg;
        EXPECT_NE(msg.find("nesting depth"), std::string::npos) << msg;
    }
}

TEST(Json, ClampsOverflowingNumbers)
{
    // Regression: "1e999" is valid JSON whose magnitude overflows
    // double; it must clamp to +/-infinity, not escape as a raw
    // std::out_of_range (or be rejected as malformed).
    double pos = parseJson("1e999").asNumber();
    EXPECT_TRUE(std::isinf(pos));
    EXPECT_GT(pos, 0.0);

    double neg = parseJson("-1e999").asNumber();
    EXPECT_TRUE(std::isinf(neg));
    EXPECT_LT(neg, 0.0);

    // Underflow quietly collapses toward zero rather than throwing.
    EXPECT_NEAR(parseJson("1e-999").asNumber(), 0.0, 1e-300);

    // Clamped infinities are numbers but not integers, and finite
    // values outside int64's range are rejected rather than cast.
    EXPECT_THROW(parseJson("1e999").asInt(), CompilerError);
    EXPECT_THROW(parseJson("1e30").asInt(), CompilerError);
    EXPECT_THROW(parseJson("-1e30").asInt(), CompilerError);

    // Still-malformed numbers keep failing with a parse error.
    EXPECT_THROW(parseJson("1e"), CompilerError);
    EXPECT_THROW(parseJson("--1"), CompilerError);
}

TEST(Json, EscapesControlCharactersOnDump)
{
    // RFC 8259: quotes, backslashes and everything below 0x20 must be
    // escaped. Named escapes for the common controls, \u00xx for the
    // rest -- and the result must parse back to the same bytes.
    JsonValue v(std::string("a\"b\\c\nd\te\rf\bg\fh\x01i"));
    std::string dumped = v.dump();
    EXPECT_EQ(dumped,
              "\"a\\\"b\\\\c\\nd\\te\\rf\\bg\\fh\\u0001i\"");
    EXPECT_EQ(parseJson(dumped).asString(), v.asString());
}

TEST(Json, ParsesNamedControlEscapes)
{
    EXPECT_EQ(parseJson(R"("\r\b\f\t\n")").asString(),
              "\r\b\f\t\n");
}

TEST(Json, ParsesUnicodeEscapes)
{
    // \u0041 is plain A; \u00e9 is e-acute (2-byte UTF-8);
    // \u2192 is a rightwards arrow (3-byte UTF-8).
    EXPECT_EQ(parseJson(R"("\u0041")").asString(), "A");
    EXPECT_EQ(parseJson(R"("\u00e9")").asString(), "\xc3\xa9");
    EXPECT_EQ(parseJson(R"("\u2192")").asString(),
              "\xe2\x86\x92");
    // Upper-case hex digits are legal too.
    EXPECT_EQ(parseJson(R"("\u00E9")").asString(), "\xc3\xa9");
}

TEST(Json, ParsesSurrogatePairs)
{
    // U+1F600 (grinning face) encodes as the surrogate pair
    // \ud83d\ude00 and must decode to 4-byte UTF-8.
    EXPECT_EQ(parseJson(R"("\ud83d\ude00")").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsBadUnicodeEscapes)
{
    EXPECT_THROW(parseJson(R"("\u12")"), CompilerError);   // too short
    EXPECT_THROW(parseJson(R"("\u12gz")"), CompilerError); // bad digit
    EXPECT_THROW(parseJson(R"("\ud83d")"), CompilerError); // lone high
    EXPECT_THROW(parseJson(R"("\ud83dx")"), CompilerError);
    EXPECT_THROW(parseJson(R"("\ud83d\u0041")"),
                 CompilerError);                           // bad low
    EXPECT_THROW(parseJson(R"("\ude00")"), CompilerError); // lone low
}
