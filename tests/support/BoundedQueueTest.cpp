/**
 * @file
 * BoundedQueue semantics: overflow policies, close/drain behavior and
 * the micro-batching popGroup primitive, plus a small MPMC exchange.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "support/BoundedQueue.h"

using c4cam::support::BoundedQueue;
using c4cam::support::OverflowPolicy;
using c4cam::support::parseOverflowPolicy;
using c4cam::support::toString;

TEST(BoundedQueue, FifoOrderAndSize)
{
    BoundedQueue<int> q(4);
    EXPECT_EQ(q.capacity(), 4u);
    EXPECT_EQ(q.size(), 0u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(q.push(i).ok());
    EXPECT_EQ(q.size(), 4u);
    int out = -1;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(q.pop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, ZeroCapacityClampsToOne)
{
    BoundedQueue<int> q(0, OverflowPolicy::Reject);
    EXPECT_EQ(q.capacity(), 1u);
    EXPECT_TRUE(q.push(1).ok());
    EXPECT_FALSE(q.push(2).ok());
}

TEST(BoundedQueue, RejectPolicyReturnsTheItem)
{
    BoundedQueue<int> q(2, OverflowPolicy::Reject);
    EXPECT_TRUE(q.push(1).ok());
    EXPECT_TRUE(q.push(2).ok());
    auto result = q.push(3);
    EXPECT_EQ(result.status, BoundedQueue<int>::PushStatus::Rejected);
    ASSERT_TRUE(result.returned.has_value());
    EXPECT_EQ(*result.returned, 3);
    EXPECT_FALSE(result.displaced.has_value());
    // The queued items are untouched.
    int out = 0;
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 1);
}

TEST(BoundedQueue, DropOldestDisplacesTheFront)
{
    BoundedQueue<int> q(2, OverflowPolicy::DropOldest);
    EXPECT_TRUE(q.push(1).ok());
    EXPECT_TRUE(q.push(2).ok());
    auto result = q.push(3);
    EXPECT_TRUE(result.ok());
    ASSERT_TRUE(result.displaced.has_value());
    EXPECT_EQ(*result.displaced, 1); // oldest goes, newest stays
    EXPECT_EQ(q.size(), 2u);
    int out = 0;
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 2);
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 3);
}

TEST(BoundedQueue, CloseDrainsThenStops)
{
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.push(7).ok());
    EXPECT_TRUE(q.push(8).ok());
    q.close();
    EXPECT_TRUE(q.closed());
    auto result = q.push(9);
    EXPECT_EQ(result.status, BoundedQueue<int>::PushStatus::Closed);
    ASSERT_TRUE(result.returned.has_value());
    EXPECT_EQ(*result.returned, 9);
    // Accepted work survives the close.
    int out = 0;
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 7);
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 8);
    EXPECT_FALSE(q.pop(out)); // closed and drained
}

TEST(BoundedQueue, BlockPolicyWakesOnPopAndOnClose)
{
    BoundedQueue<int> q(1, OverflowPolicy::Block);
    EXPECT_TRUE(q.push(1).ok());

    // A blocked producer is released by a consumer making space.
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(q.push(2).ok());
        pushed.store(true);
    });
    int out = 0;
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, 1);
    producer.join();
    EXPECT_TRUE(pushed.load());

    // A blocked producer is released (with Closed) by close().
    std::thread blocked([&] {
        auto result = q.push(3);
        EXPECT_EQ(result.status, BoundedQueue<int>::PushStatus::Closed);
    });
    // Give the producer a chance to park on the full queue, then close.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    blocked.join();
}

TEST(BoundedQueue, PopGroupSingleWhenShallowFusedWhenDeep)
{
    BoundedQueue<int> q(16);
    std::vector<int> out;

    // One queued item, threshold 2: single dispatch.
    EXPECT_TRUE(q.push(1).ok());
    EXPECT_EQ(q.popGroup(out, 8, 2), 1u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 1);

    // Deep queue: takes up to max_items in FIFO order.
    out.clear();
    for (int i = 0; i < 6; ++i)
        EXPECT_TRUE(q.push(i).ok());
    EXPECT_EQ(q.popGroup(out, 4, 2), 4u);
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));

    // Remaining two still meet the threshold.
    out.clear();
    EXPECT_EQ(q.popGroup(out, 4, 2), 2u);
    EXPECT_EQ(out, (std::vector<int>{4, 5}));

    // Threshold above the backlog degrades to single dispatch.
    out.clear();
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(q.push(i).ok());
    EXPECT_EQ(q.popGroup(out, 8, 5), 1u);
    EXPECT_EQ(out, (std::vector<int>{0}));
}

TEST(BoundedQueue, PopGroupDrainsAfterClose)
{
    BoundedQueue<int> q(8);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(q.push(i).ok());
    q.close();
    std::vector<int> out;
    EXPECT_EQ(q.popGroup(out, 8, 2), 3u);
    EXPECT_EQ(q.popGroup(out, 8, 2), 0u); // drained
}

TEST(BoundedQueue, PopGroupFusesAtExactlyTheThreshold)
{
    // The fuse decision is >= threshold: a backlog of exactly
    // fuse_threshold items is already a fused window, one item fewer
    // is a single dispatch.
    BoundedQueue<int> q(16);
    std::vector<int> out;
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(q.push(i).ok());
    EXPECT_EQ(q.popGroup(out, 8, 3), 3u);
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));

    out.clear();
    for (int i = 0; i < 2; ++i)
        EXPECT_TRUE(q.push(i).ok());
    EXPECT_EQ(q.popGroup(out, 8, 3), 1u);
    EXPECT_EQ(out, (std::vector<int>{0}));
}

TEST(BoundedQueue, PopGroupMaxItemsBeyondCapacityTakesWhatExists)
{
    // max_items above the queue capacity (an over-eager fuse-k) is
    // clamped by availability, never an error and never a wait for
    // items that cannot fit.
    BoundedQueue<int> q(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(q.push(i).ok());
    std::vector<int> out;
    EXPECT_EQ(q.popGroup(out, 64, 2), 4u);
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));

    // max_items == 0 clamps to one item rather than popping nothing
    // (a zero take would spin the dispatcher forever).
    EXPECT_TRUE(q.push(9).ok());
    out.clear();
    EXPECT_EQ(q.popGroup(out, 0, 2), 1u);
    EXPECT_EQ(out, (std::vector<int>{9}));
}

TEST(BoundedQueue, CloseRacingGroupedPopsLosesNothing)
{
    // Producers push under Block while consumers drain with popGroup
    // and close() lands mid-flight: every ACCEPTED item must come out
    // exactly once, and every producer must observe either Ok or
    // Closed -- never a hang, never a duplicate.
    for (int round = 0; round < 20; ++round) {
        BoundedQueue<int> q(4, OverflowPolicy::Block);
        const int producers = 3;
        const int per_producer = 50;
        std::atomic<int> accepted{0};
        std::vector<std::thread> threads;
        for (int p = 0; p < producers; ++p)
            threads.emplace_back([&, p] {
                for (int i = 0; i < per_producer; ++i) {
                    auto result = q.push(p * per_producer + i);
                    if (result.ok())
                        accepted.fetch_add(1);
                    else
                        ASSERT_EQ(result.status,
                                  BoundedQueue<int>::PushStatus::Closed);
                }
            });

        std::mutex seen_mutex;
        std::set<int> seen;
        std::vector<std::thread> consumers;
        for (int c = 0; c < 2; ++c)
            consumers.emplace_back([&] {
                std::vector<int> group;
                while (q.popGroup(group, 8, 2) != 0) {
                    std::lock_guard<std::mutex> lock(seen_mutex);
                    for (int value : group)
                        ASSERT_TRUE(seen.insert(value).second)
                            << "duplicate " << value;
                    group.clear();
                }
            });

        // Close somewhere in the middle of the exchange.
        std::this_thread::sleep_for(
            std::chrono::microseconds(50 * (round % 5)));
        q.close();
        for (auto &t : threads)
            t.join();
        for (auto &t : consumers)
            t.join();
        EXPECT_EQ(static_cast<int>(seen.size()), accepted.load())
            << "round " << round;
        EXPECT_EQ(q.size(), 0u);
    }
}

TEST(BoundedQueue, MpmcExchangeLosesNothing)
{
    // 4 producers x 4 consumers over a small Block queue: every pushed
    // value is popped exactly once.
    const int producers = 4;
    const int per_producer = 250;
    BoundedQueue<int> q(8, OverflowPolicy::Block);

    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p)
        threads.emplace_back([&q, p] {
            for (int i = 0; i < per_producer; ++i)
                ASSERT_TRUE(q.push(p * per_producer + i).ok());
        });

    std::mutex seen_mutex;
    std::set<int> seen;
    std::atomic<int> popped{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < 4; ++c)
        consumers.emplace_back([&] {
            int value = 0;
            while (q.pop(value)) {
                std::lock_guard<std::mutex> lock(seen_mutex);
                EXPECT_TRUE(seen.insert(value).second)
                    << "duplicate " << value;
                popped.fetch_add(1);
            }
        });

    for (auto &t : threads)
        t.join();
    q.close();
    for (auto &t : consumers)
        t.join();

    EXPECT_EQ(popped.load(), producers * per_producer);
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(producers * per_producer));
}

TEST(BoundedQueue, PolicyNamesRoundTrip)
{
    for (OverflowPolicy policy :
         {OverflowPolicy::Block, OverflowPolicy::Reject,
          OverflowPolicy::DropOldest}) {
        auto parsed = parseOverflowPolicy(toString(policy));
        ASSERT_TRUE(parsed.has_value()) << toString(policy);
        EXPECT_EQ(*parsed, policy);
    }
    EXPECT_FALSE(parseOverflowPolicy("banana").has_value());
    EXPECT_FALSE(parseOverflowPolicy("").has_value());
}
