/** @file Technology model tests against the paper's anchor points. */

#include <gtest/gtest.h>

#include "arch/TechModel.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::arch;

TEST(TechModel, SearchLatencyMatchesPaperAnchors)
{
    // §IV-A1: "search latency can vary from 860ps to 7.5ns for array
    // sizes of 16x16 and 256x256".
    TechModel tcam(CamDeviceType::Tcam, 1);
    EXPECT_NEAR(tcam.searchLatencyNs(16), 0.86, 0.01);
    EXPECT_NEAR(tcam.searchLatencyNs(256), 7.50, 0.01);
}

TEST(TechModel, SearchLatencyMonotonicInColumns)
{
    // The ML discharges more slowly for larger columns (paper §IV-B).
    TechModel tcam(CamDeviceType::Tcam, 1);
    double prev = 0.0;
    for (int cols : {16, 32, 64, 128, 256}) {
        double lat = tcam.searchLatencyNs(cols);
        EXPECT_GT(lat, prev);
        prev = lat;
    }
}

TEST(TechModel, MultiBitIsSlower)
{
    TechModel tcam(CamDeviceType::Tcam, 1);
    TechModel mcam(CamDeviceType::Mcam, 2);
    for (int cols : {16, 64, 256}) {
        EXPECT_GT(mcam.searchLatencyNs(cols), tcam.searchLatencyNs(cols));
        EXPECT_GT(mcam.searchEnergyPj(32, cols, SearchKind::Best),
                  tcam.searchEnergyPj(32, cols, SearchKind::Best));
    }
}

TEST(TechModel, SenseLatencyOrdering)
{
    // Exact match has the simplest sensing; best match needs ADC/WTA.
    TechModel t(CamDeviceType::Tcam, 1);
    EXPECT_LT(t.senseLatencyNs(SearchKind::Exact),
              t.senseLatencyNs(SearchKind::Range));
    EXPECT_LT(t.senseLatencyNs(SearchKind::Range),
              t.senseLatencyNs(SearchKind::Best));
}

TEST(TechModel, SelectiveSensingReducesEnergy)
{
    // Selective search [27]: MLs still precharge, but only the window
    // rows are sensed -- strictly cheaper than full sensing.
    TechModel t(CamDeviceType::Tcam, 1);
    double full = t.searchEnergyPj(256, 256, 64, SearchKind::Best);
    double selective = t.searchEnergyPj(256, 10, 64, SearchKind::Best);
    EXPECT_LT(selective, full);
    EXPECT_GT(selective, 0.0);
    // Sensing cannot exceed the precharged window.
    EXPECT_THROW(t.searchEnergyPj(10, 256, 64, SearchKind::Best),
                 c4cam::InternalError);
}

TEST(TechModel, PerQueryEnergyDecreasesWithColumns)
{
    // Fig. 7b: for fixed total bits, larger C means fewer peripherals
    // and lower total energy.
    TechModel t(CamDeviceType::Tcam, 1);
    const int total_bits = 8192;
    double prev = 1e18;
    for (int cols : {16, 32, 64, 128}) {
        int subarrays = total_bits / cols;
        double energy =
            subarrays * t.searchEnergyPj(32, cols, SearchKind::Best);
        EXPECT_LT(energy, prev) << "cols=" << cols;
        prev = energy;
    }
}

TEST(TechModel, PerQueryEnergyInPaperRange)
{
    // Fig. 7b plots roughly 200-500 pJ per query for 32xC arrays.
    TechModel t(CamDeviceType::Tcam, 1);
    for (int cols : {16, 32, 64, 128}) {
        int subarrays = 8192 / cols;
        double energy =
            subarrays * t.searchEnergyPj(32, cols, SearchKind::Best);
        EXPECT_GT(energy, 150.0) << "cols=" << cols;
        EXPECT_LT(energy, 700.0) << "cols=" << cols;
    }
}

TEST(TechModel, MergeCostsGrowWithFanout)
{
    TechModel t(CamDeviceType::Tcam, 1);
    EXPECT_EQ(t.mergeLatencyNs(1), 0.0);
    EXPECT_GT(t.mergeLatencyNs(8), 0.0);
    EXPECT_GT(t.mergeLatencyNs(64), t.mergeLatencyNs(8));
    EXPECT_GT(t.mergeEnergyPj(64), t.mergeEnergyPj(8));
}

TEST(TechModel, WriteCostsPositive)
{
    TechModel t(CamDeviceType::Tcam, 1);
    EXPECT_GT(t.writeLatencyNsPerRow(), 0.0);
    EXPECT_GT(t.writeEnergyPjPerCell(), 0.0);
}

TEST(TechModel, ForSpecPicksDeviceType)
{
    ArchSpec spec;
    spec.camType = CamDeviceType::Mcam;
    spec.bitsPerCell = 2;
    TechModel t = TechModel::forSpec(spec);
    EXPECT_EQ(t.deviceType(), CamDeviceType::Mcam);
    EXPECT_EQ(t.bitsPerCell(), 2);
}

TEST(TechModel, RejectsInvalidConfig)
{
    EXPECT_THROW(TechModel(CamDeviceType::Tcam, 2), CompilerError);
    EXPECT_THROW(TechModel(CamDeviceType::Mcam, 3), CompilerError);
}
