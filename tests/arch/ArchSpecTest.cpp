/** @file ArchSpec parsing, presets and validation tests. */

#include <gtest/gtest.h>

#include "arch/ArchSpec.h"
#include "support/Error.h"
#include "support/Json.h"

using namespace c4cam;
using namespace c4cam::arch;

TEST(ArchSpec, DefaultsMatchPaperBaseline)
{
    ArchSpec spec;
    EXPECT_EQ(spec.rows, 32);
    EXPECT_EQ(spec.cols, 32);
    EXPECT_EQ(spec.subarraysPerArray, 8);
    EXPECT_EQ(spec.arraysPerMat, 4);
    EXPECT_EQ(spec.matsPerBank, 4);
    EXPECT_EQ(spec.numBanks, 0); // auto
    EXPECT_EQ(spec.processNode, 45);
    EXPECT_NO_THROW(spec.validate());
}

TEST(ArchSpec, DerivedQuantities)
{
    ArchSpec spec;
    EXPECT_EQ(spec.cellsPerSubarray(), 32 * 32);
    EXPECT_EQ(spec.subarraysPerBank(), 8 * 4 * 4);
    EXPECT_EQ(spec.colsPerBank(), 128 * 32);
    EXPECT_EQ(spec.colsPerArray(), 8 * 32);
    EXPECT_EQ(spec.colsPerMat(), 32 * 32);
}

TEST(ArchSpec, JsonRoundTrip)
{
    ArchSpec spec = ArchSpec::dseSetup(64, OptTarget::PowerDensity);
    ArchSpec again = ArchSpec::fromJson(
        parseJson(spec.toJson().dump()));
    EXPECT_EQ(spec, again);
}

TEST(ArchSpec, FromJsonAppliesTargetKnobs)
{
    ArchSpec power = ArchSpec::fromJson(
        parseJson(R"({"target": "power"})"));
    EXPECT_EQ(power.maxActiveSubarrays, 1);

    ArchSpec density = ArchSpec::fromJson(
        parseJson(R"({"target": "density"})"));
    EXPECT_TRUE(density.selectiveSearch);

    ArchSpec both = ArchSpec::fromJson(
        parseJson(R"({"target": "power+density"})"));
    EXPECT_EQ(both.maxActiveSubarrays, 1);
    EXPECT_TRUE(both.selectiveSearch);
}

TEST(ArchSpec, FromJsonParsesGeometry)
{
    ArchSpec spec = ArchSpec::fromJson(parseJson(R"({
        "cam_type": "mcam", "bits_per_cell": 2,
        "rows_per_subarray": 64, "cols_per_subarray": 128,
        "subarrays_per_array": 2, "arrays_per_mat": 3,
        "mats_per_bank": 5, "num_banks": 7,
        "subarray_mode": "sequential"
    })"));
    EXPECT_EQ(spec.camType, CamDeviceType::Mcam);
    EXPECT_EQ(spec.bitsPerCell, 2);
    EXPECT_EQ(spec.rows, 64);
    EXPECT_EQ(spec.cols, 128);
    EXPECT_EQ(spec.subarraysPerArray, 2);
    EXPECT_EQ(spec.arraysPerMat, 3);
    EXPECT_EQ(spec.matsPerBank, 5);
    EXPECT_EQ(spec.numBanks, 7);
    EXPECT_EQ(spec.subarrayMode, AccessMode::Sequential);
    EXPECT_EQ(spec.bankMode, AccessMode::Parallel);
}

TEST(ArchSpec, ValidationSetupMirrorsPaper)
{
    // §IV-B: 32xC arrays, 4 mats/bank, 4 arrays/mat, 8 subarrays/array.
    for (int cols : {16, 32, 64, 128}) {
        ArchSpec one_bit = ArchSpec::validationSetup(cols, 1);
        EXPECT_EQ(one_bit.rows, 32);
        EXPECT_EQ(one_bit.cols, cols);
        EXPECT_EQ(one_bit.camType, CamDeviceType::Tcam);
        ArchSpec two_bit = ArchSpec::validationSetup(cols, 2);
        EXPECT_EQ(two_bit.camType, CamDeviceType::Mcam);
        EXPECT_EQ(two_bit.bitsPerCell, 2);
    }
}

TEST(ArchSpec, IsoCapacityHolds65536CellsPerArray)
{
    // §IV-C2: iso-capacity arrays hold 2^16 cells regardless of size.
    for (int n : {16, 32, 64, 128, 256}) {
        ArchSpec spec = ArchSpec::isoCapacitySetup(n, OptTarget::Base);
        EXPECT_EQ(std::int64_t(spec.subarraysPerArray) * n * n, 1 << 16)
            << "n=" << n;
    }
    EXPECT_EQ(ArchSpec::isoCapacitySetup(16, OptTarget::Base)
                  .subarraysPerArray,
              256);
    EXPECT_EQ(ArchSpec::isoCapacitySetup(256, OptTarget::Base)
                  .subarraysPerArray,
              1);
}

TEST(ArchSpec, RejectsInvalidSpecs)
{
    ArchSpec spec;
    spec.rows = 0;
    EXPECT_THROW(spec.validate(), CompilerError);

    spec = ArchSpec();
    spec.bitsPerCell = 3;
    EXPECT_THROW(spec.validate(), CompilerError);

    spec = ArchSpec();
    spec.camType = CamDeviceType::Tcam;
    spec.bitsPerCell = 2; // TCAM is binary
    EXPECT_THROW(spec.validate(), CompilerError);

    spec = ArchSpec();
    spec.maxActiveSubarrays = 99; // > subarraysPerArray
    EXPECT_THROW(spec.validate(), CompilerError);
}

TEST(ArchSpec, EnumStringConversions)
{
    EXPECT_STREQ(toString(CamDeviceType::Tcam), "tcam");
    EXPECT_EQ(camDeviceTypeFromString("acam"), CamDeviceType::Acam);
    EXPECT_EQ(accessModeFromString("parallel"), AccessMode::Parallel);
    EXPECT_EQ(optTargetFromString("power+density"),
              OptTarget::PowerDensity);
    EXPECT_EQ(optTargetFromString("power_density"),
              OptTarget::PowerDensity);
    EXPECT_THROW(camDeviceTypeFromString("sram"), CompilerError);
    EXPECT_THROW(accessModeFromString("warp"), CompilerError);
    EXPECT_THROW(optTargetFromString("speed"), CompilerError);
}
