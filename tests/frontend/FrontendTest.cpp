/** @file TorchScript frontend tests (paper §III-C). */

#include <gtest/gtest.h>

#include "dialects/AllDialects.h"
#include "frontend/TorchScriptFrontend.h"
#include "ir/Verifier.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::ir;

namespace {

struct FrontendFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        dialects::loadAllDialects(ctx);
    }

    Module
    import(const std::string &source)
    {
        Module module = frontend::parseTorchScriptModule(ctx, source);
        verifyModule(module);
        return module;
    }

    /** Ordered op names of the function body. */
    std::vector<std::string>
    bodyOps(Module &module, const std::string &name)
    {
        std::vector<std::string> names;
        Operation *func = module.lookupFunction(name);
        EXPECT_NE(func, nullptr);
        for (Operation *op : dialects::funcBody(func)->opVector())
            names.push_back(op->name());
        return names;
    }

    Context ctx;
};

} // namespace

TEST_F(FrontendFixture, ImportsPaperFig4aKernel)
{
    // The HDC dot-similarity example from Fig. 4a of the paper.
    Module module = import(
        "def forward(input: Tensor[10, 8192], weight: Tensor[10, 8192]):\n"
        "    others = self.weight.transpose(-2, -1)\n"
        "    matmul = torch.matmul(input, others)\n"
        "    values, indices = torch.ops.aten.topk(matmul, 1, "
        "largest=False)\n"
        "    return indices\n");
    auto names = bodyOps(module, "forward");
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "torch.aten.transpose.int");
    EXPECT_EQ(names[1], "torch.aten.matmul");
    EXPECT_EQ(names[2], "torch.aten.topk");
    EXPECT_EQ(names[3], "func.return");
}

TEST_F(FrontendFixture, ShapeInferenceThroughThePipeline)
{
    Module module = import(
        "def forward(input: Tensor[10, 8192], weight: Tensor[10, 8192]):\n"
        "    others = weight.transpose(-2, -1)\n"
        "    scores = torch.matmul(input, others)\n"
        "    return scores\n");
    Operation *func = module.lookupFunction("forward");
    Operation *ret = dialects::funcBody(func)->back();
    EXPECT_EQ(ret->operand(0)->type().str(), "tensor<10x10xf32>");
}

TEST_F(FrontendFixture, TransposeResultShape)
{
    Module module = import(
        "def f(w: Tensor[3, 7]):\n"
        "    t = w.transpose(-2, -1)\n"
        "    return t\n");
    Operation *func = module.lookupFunction("f");
    Operation *ret = dialects::funcBody(func)->back();
    EXPECT_EQ(ret->operand(0)->type().str(), "tensor<7x3xf32>");
}

TEST_F(FrontendFixture, KnnEuclideanPattern)
{
    Module module = import(
        "def forward(x: Tensor[4, 64], train: Tensor[100, 64]):\n"
        "    diff = torch.sub(x, train)\n"
        "    dist = torch.norm(diff, p=2)\n"
        "    knn, idx = torch.topk(dist, 5, largest=False)\n"
        "    return knn, idx\n");
    auto names = bodyOps(module, "forward");
    EXPECT_EQ(names[0], "torch.aten.sub");
    EXPECT_EQ(names[1], "torch.aten.norm");
    EXPECT_EQ(names[2], "torch.aten.topk");
    // Broadcast shape: 4x100x64 -> norm -> 4x100 -> topk -> 4x5.
    Operation *func = module.lookupFunction("forward");
    Operation *ret = dialects::funcBody(func)->back();
    EXPECT_EQ(ret->operand(0)->type().str(), "tensor<4x5xf32>");
}

TEST_F(FrontendFixture, BinaryOperatorsDesugar)
{
    Module module = import(
        "def f(a: Tensor[2, 4], b: Tensor[2, 4]):\n"
        "    c = a - b\n"
        "    d = c / b\n"
        "    return d\n");
    auto names = bodyOps(module, "f");
    EXPECT_EQ(names[0], "torch.aten.sub");
    EXPECT_EQ(names[1], "torch.aten.div");
}

TEST_F(FrontendFixture, TopkAttributes)
{
    Module module = import(
        "def f(a: Tensor[2, 16]):\n"
        "    v, i = torch.topk(a, 3, largest=True)\n"
        "    return v, i\n");
    Operation *func = module.lookupFunction("f");
    Operation *topk = dialects::funcBody(func)->opVector()[0];
    EXPECT_EQ(topk->intAttr("k"), 3);
    EXPECT_TRUE(topk->boolAttrOr("largest", false));
    EXPECT_EQ(topk->numResults(), 2u);
}

TEST_F(FrontendFixture, CommentsAndBlankLinesIgnored)
{
    Module module = import(
        "# leading comment\n"
        "\n"
        "def f(a: Tensor[2, 2]):\n"
        "    # inner comment\n"
        "    b = a.transpose(-2, -1)  # trailing\n"
        "\n"
        "    return b\n");
    EXPECT_NE(module.lookupFunction("f"), nullptr);
}

TEST_F(FrontendFixture, SelfParameterSkipped)
{
    Module module = import(
        "def forward(self, input: Tensor[2, 4], weight: Tensor[2, 4]):\n"
        "    out = torch.matmul(input, weight.transpose(-2, -1))\n"
        "    return out\n");
    Operation *func = module.lookupFunction("forward");
    EXPECT_EQ(dialects::funcBody(func)->numArguments(), 2u);
}

TEST_F(FrontendFixture, ErrorsAreUserFriendly)
{
    // No return.
    EXPECT_THROW(import("def f(a: Tensor[2, 2]):\n    b = a\n"),
                 CompilerError);
    // Undefined variable.
    EXPECT_THROW(import("def f(a: Tensor[2, 2]):\n    return ghost\n"),
                 CompilerError);
    // Missing shape annotation.
    EXPECT_THROW(import("def f(a: Tensor):\n    return a\n"),
                 CompilerError);
    // Unsupported function.
    EXPECT_THROW(
        import("def f(a: Tensor[2, 2]):\n"
               "    b = torch.softmax(a, 0)\n    return b\n"),
        CompilerError);
    // Shape mismatch in matmul.
    EXPECT_THROW(
        import("def f(a: Tensor[2, 3], b: Tensor[2, 3]):\n"
               "    c = torch.matmul(a, b)\n    return c\n"),
        CompilerError);
    // Empty source.
    EXPECT_THROW(import(""), CompilerError);
}

TEST_F(FrontendFixture, MultiReturn)
{
    Module module = import(
        "def f(a: Tensor[2, 8]):\n"
        "    v, i = torch.topk(a, 1, largest=False)\n"
        "    return v, i\n");
    Operation *func = module.lookupFunction("f");
    EXPECT_EQ(dialects::funcBody(func)->back()->numOperands(), 2u);
}

TEST_F(FrontendFixture, MmVariant)
{
    Module module = import(
        "def f(a: Tensor[2, 4], b: Tensor[4, 3]):\n"
        "    c = torch.mm(a, b)\n"
        "    return c\n");
    auto names = bodyOps(module, "f");
    EXPECT_EQ(names[0], "torch.aten.mm");
}
