/** @file Interpreter tests for host-level ops (torch/cim/scf/memref). */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dialects/AllDialects.h"
#include "frontend/TorchScriptFrontend.h"
#include "ir/Builder.h"
#include "ir/Parser.h"
#include "runtime/Interpreter.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::ir;
using namespace c4cam::rt;

namespace {

struct InterpFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        dialects::loadAllDialects(ctx);
    }

    /** Run a torch-level function imported from TorchScript. */
    std::vector<RtValue>
    runTorch(const std::string &source,
             const std::vector<BufferPtr> &args)
    {
        Module module = frontend::parseTorchScriptModule(ctx, source);
        Interpreter interp(module, nullptr);
        std::vector<RtValue> rt_args;
        for (const auto &a : args)
            rt_args.emplace_back(a);
        auto results = interp.callFunction("f", rt_args);
        modules_.push_back(std::make_unique<Module>(std::move(module)));
        return results;
    }

    Context ctx;
    std::vector<std::unique_ptr<Module>> modules_;
};

} // namespace

TEST_F(InterpFixture, MatmulTranspose)
{
    auto a = Buffer::fromMatrix({{1, 2}, {3, 4}});
    auto b = Buffer::fromMatrix({{1, 0}, {0, 1}});
    auto results = runTorch(
        "def f(a: Tensor[2, 2], b: Tensor[2, 2]):\n"
        "    c = torch.matmul(a, b.transpose(-2, -1))\n"
        "    return c\n",
        {a, b});
    BufferPtr c = results[0].asBuffer();
    EXPECT_DOUBLE_EQ(c->at({0, 0}), 1.0);
    EXPECT_DOUBLE_EQ(c->at({1, 1}), 4.0);
}

TEST_F(InterpFixture, TopkLargestAndSmallest)
{
    auto a = Buffer::fromMatrix({{3, 1, 4, 1, 5}});
    auto big = runTorch(
        "def f(a: Tensor[1, 5]):\n"
        "    v, i = torch.topk(a, 2, largest=True)\n"
        "    return v, i\n",
        {a});
    EXPECT_DOUBLE_EQ(big[0].asBuffer()->at({0, 0}), 5.0);
    EXPECT_EQ(big[1].asBuffer()->atInt({0, 0}), 4);
    EXPECT_DOUBLE_EQ(big[0].asBuffer()->at({0, 1}), 4.0);

    auto small = runTorch(
        "def f(a: Tensor[1, 5]):\n"
        "    v, i = torch.topk(a, 2, largest=False)\n"
        "    return v, i\n",
        {a});
    EXPECT_DOUBLE_EQ(small[0].asBuffer()->at({0, 0}), 1.0);
    // Stable: first of the tied 1s is index 1.
    EXPECT_EQ(small[1].asBuffer()->atInt({0, 0}), 1);
}

TEST_F(InterpFixture, NormOfBroadcastSub)
{
    auto x = Buffer::fromMatrix({{0, 0}});
    auto t = Buffer::fromMatrix({{3, 4}, {0, 1}});
    auto results = runTorch(
        "def f(x: Tensor[1, 2], t: Tensor[2, 2]):\n"
        "    d = torch.sub(x, t)\n"
        "    n = torch.norm(d, p=2)\n"
        "    return n\n",
        {x, t});
    BufferPtr n = results[0].asBuffer();
    EXPECT_EQ(n->shape(), (std::vector<std::int64_t>{1, 2}));
    EXPECT_DOUBLE_EQ(n->at({0, 0}), 5.0); // 3-4-5 triangle
    EXPECT_DOUBLE_EQ(n->at({0, 1}), 1.0);
}

TEST_F(InterpFixture, DivElementwise)
{
    auto a = Buffer::fromMatrix({{8, 6}});
    auto b = Buffer::fromMatrix({{2, 3}});
    auto results = runTorch(
        "def f(a: Tensor[1, 2], b: Tensor[1, 2]):\n"
        "    c = a / b\n"
        "    return c\n",
        {a, b});
    EXPECT_DOUBLE_EQ(results[0].asBuffer()->at({0, 0}), 4.0);
    EXPECT_DOUBLE_EQ(results[0].asBuffer()->at({0, 1}), 2.0);
}

TEST_F(InterpFixture, ScfForWithIterArgs)
{
    // Sum 0..4 through loop-carried values.
    std::string text =
        "\"builtin.module\"() ({\n"
        "  \"func.func\"() ({\n"
        "  ^bb0:\n"
        "    %lb = \"arith.constant\"() {value = 0} : () -> index\n"
        "    %ub = \"arith.constant\"() {value = 5} : () -> index\n"
        "    %st = \"arith.constant\"() {value = 1} : () -> index\n"
        "    %init = \"arith.constant\"() {value = 0} : () -> index\n"
        "    %sum = \"scf.for\"(%lb, %ub, %st, %init) ({\n"
        "    ^bb0(%iv: index, %acc: index):\n"
        "      %next = \"arith.addi\"(%acc, %iv) : (index, index) -> index\n"
        "      \"scf.yield\"(%next) : (index) -> ()\n"
        "    }) : (index, index, index, index) -> index\n"
        "    \"func.return\"(%sum) : (index) -> ()\n"
        "  }) {sym_name = \"f\"} : () -> ()\n"
        "}) : () -> ()\n";
    Module module = parseModule(ctx, text);
    Interpreter interp(module, nullptr);
    auto results = interp.callFunction("f", {});
    EXPECT_EQ(results[0].asInt(), 10);
}

TEST_F(InterpFixture, ScfIfTakesBranchOnlyWhenTrue)
{
    std::string text =
        "\"builtin.module\"() ({\n"
        "  \"func.func\"() ({\n"
        "  ^bb0:\n"
        "    %a = \"arith.constant\"() {value = 3} : () -> index\n"
        "    %b = \"arith.constant\"() {value = 5} : () -> index\n"
        "    %buf = \"memref.alloc\"() : () -> memref<1xf32>\n"
        "    %cond = \"arith.cmpi\"(%a, %b) {predicate = \"slt\"}"
        " : (index, index) -> i1\n"
        "    \"scf.if\"(%cond) ({\n"
        "      %v = \"arith.constant\"() {value = 7.0} : () -> f32\n"
        "      %z = \"arith.constant\"() {value = 0} : () -> index\n"
        "      \"memref.store\"(%v, %buf, %z)"
        " : (f32, memref<1xf32>, index) -> ()\n"
        "    }) : (i1) -> ()\n"
        "    \"func.return\"(%buf) : (memref<1xf32>) -> ()\n"
        "  }) {sym_name = \"f\"} : () -> ()\n"
        "}) : () -> ()\n";
    Module module = parseModule(ctx, text);
    Interpreter interp(module, nullptr);
    auto results = interp.callFunction("f", {});
    EXPECT_DOUBLE_EQ(results[0].asBuffer()->at({0}), 7.0);
}

TEST_F(InterpFixture, ArithOpsEvaluate)
{
    std::string text =
        "\"builtin.module\"() ({\n"
        "  \"func.func\"() ({\n"
        "  ^bb0:\n"
        "    %a = \"arith.constant\"() {value = 7} : () -> index\n"
        "    %b = \"arith.constant\"() {value = 3} : () -> index\n"
        "    %q = \"arith.divsi\"(%a, %b) : (index, index) -> index\n"
        "    %r = \"arith.remsi\"(%a, %b) : (index, index) -> index\n"
        "    %m = \"arith.minsi\"(%a, %b) : (index, index) -> index\n"
        "    %s = \"arith.subi\"(%a, %b) : (index, index) -> index\n"
        "    \"func.return\"(%q, %r, %m, %s)"
        " : (index, index, index, index) -> ()\n"
        "  }) {sym_name = \"f\"} : () -> ()\n"
        "}) : () -> ()\n";
    Module module = parseModule(ctx, text);
    Interpreter interp(module, nullptr);
    auto results = interp.callFunction("f", {});
    EXPECT_EQ(results[0].asInt(), 2);
    EXPECT_EQ(results[1].asInt(), 1);
    EXPECT_EQ(results[2].asInt(), 3);
    EXPECT_EQ(results[3].asInt(), 4);
}

TEST_F(InterpFixture, CamOpsWithoutDeviceRejected)
{
    std::string text =
        "\"builtin.module\"() ({\n"
        "  \"func.func\"() ({\n"
        "  ^bb0:\n"
        "    %r = \"arith.constant\"() {value = 4} : () -> index\n"
        "    %b = \"cam.alloc_bank\"(%r, %r)"
        " : (index, index) -> !cam.bank_id\n"
        "    \"func.return\"() : () -> ()\n"
        "  }) {sym_name = \"f\"} : () -> ()\n"
        "}) : () -> ()\n";
    Module module = parseModule(ctx, text);
    Interpreter interp(module, nullptr);
    EXPECT_THROW(interp.callFunction("f", {}), CompilerError);
}

TEST_F(InterpFixture, UnknownFunctionRejected)
{
    Module module(ctx);
    Interpreter interp(module, nullptr);
    EXPECT_THROW(interp.callFunction("ghost", {}), CompilerError);
}

TEST_F(InterpFixture, ArgumentArityChecked)
{
    Module module = frontend::parseTorchScriptModule(
        ctx, "def f(a: Tensor[1, 1]):\n    return a\n");
    Interpreter interp(module, nullptr);
    EXPECT_THROW(interp.callFunction("f", {}), CompilerError);
}

TEST_F(InterpFixture, ExplicitStatesAreIndependent)
{
    // One Interpreter over one module, two ExecutionStates: runs do
    // not observe each other's SSA environment.
    Module module = frontend::parseTorchScriptModule(
        ctx,
        "def f(a: Tensor[2, 2], b: Tensor[2, 2]):\n"
        "    c = torch.matmul(a, b)\n"
        "    return c\n");
    Interpreter interp(module, nullptr);

    auto a1 = Buffer::fromMatrix({{1, 0}, {0, 1}});
    auto a2 = Buffer::fromMatrix({{2, 0}, {0, 2}});
    auto b = Buffer::fromMatrix({{3, 4}, {5, 6}});

    ExecutionState s1;
    ExecutionState s2;
    auto r1 = interp.callFunction(s1, "f", {RtValue(a1), RtValue(b)});
    auto r2 = interp.callFunction(s2, "f", {RtValue(a2), RtValue(b)});
    EXPECT_DOUBLE_EQ(r1[0].asBuffer()->at({0, 0}), 3.0);
    EXPECT_DOUBLE_EQ(r2[0].asBuffer()->at({0, 0}), 6.0);
    // Re-running on state 1 still yields its own answer.
    auto r1again = interp.callFunction(s1, "f", {RtValue(a1), RtValue(b)});
    EXPECT_DOUBLE_EQ(r1again[0].asBuffer()->at({0, 0}), 3.0);
}

TEST_F(InterpFixture, ConcurrentStatesOverSharedModule)
{
    // The thread-safety contract of the tentpole refactor: a shared
    // Interpreter serves many threads as long as each brings its own
    // ExecutionState. All threads must compute the identical result.
    Module module = frontend::parseTorchScriptModule(
        ctx,
        "def f(a: Tensor[4, 8], b: Tensor[4, 8]):\n"
        "    c = torch.matmul(a, b.transpose(-2, -1))\n"
        "    return c\n");
    Interpreter interp(module, nullptr);

    auto a = Buffer::alloc(DType::F32, {4, 8});
    auto b = Buffer::alloc(DType::F32, {4, 8});
    for (std::int64_t r = 0; r < 4; ++r)
        for (std::int64_t c = 0; c < 8; ++c) {
            a->set({r, c}, double(r * 8 + c));
            b->set({r, c}, double((r + c) % 3) - 1.0);
        }

    std::vector<double> reference;
    {
        ExecutionState state;
        reference = interp.callFunction(state, "f",
                                        {RtValue(a), RtValue(b)})[0]
                        .asBuffer()
                        ->toVector();
    }

    std::vector<std::thread> threads;
    std::vector<std::vector<double>> results(8);
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&, t] {
            for (int rep = 0; rep < 4; ++rep) {
                ExecutionState state;
                results[static_cast<std::size_t>(t)] =
                    interp.callFunction(state, "f",
                                        {RtValue(a), RtValue(b)})[0]
                        .asBuffer()
                        ->toVector();
            }
        });
    for (auto &thread : threads)
        thread.join();
    for (const auto &result : results)
        EXPECT_EQ(result, reference);
}

TEST_F(InterpFixture, UnknownOpDiagnosticNamesFunctionAndNearestMnemonic)
{
    // The diagnostic must fire with context: the op name, the
    // enclosing function, and a did-you-mean suggestion -- not a bare
    // "unsupported op" after the whole dispatch chain.
    std::string text =
        "\"builtin.module\"() ({\n"
        "  \"func.func\"() ({\n"
        "  ^bb0:\n"
        "    %x = \"arith.constatn\"() {value = 1} : () -> index\n"
        "    \"func.return\"(%x) : (index) -> ()\n"
        "  }) {sym_name = \"typo_kernel\"} : () -> ()\n"
        "}) : () -> ()\n";
    Module module = parseModule(ctx, text);
    Interpreter interp(module, nullptr);
    try {
        interp.callFunction("typo_kernel", {});
        FAIL() << "expected CompilerError";
    } catch (const CompilerError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("arith.constatn"), std::string::npos) << msg;
        EXPECT_NE(msg.find("typo_kernel"), std::string::npos) << msg;
        EXPECT_NE(msg.find("did you mean 'arith.constant'"),
                  std::string::npos)
            << msg;
    }
}

TEST_F(InterpFixture, UnknownDialectDiagnosticSuggestsNothingWhenFar)
{
    // A mnemonic nowhere near the vocabulary gets no bogus suggestion.
    std::string text =
        "\"builtin.module\"() ({\n"
        "  \"func.func\"() ({\n"
        "  ^bb0:\n"
        "    \"zzz.qqqqqqqqqqqqqqqqqqqqqqqq\"() : () -> ()\n"
        "    \"func.return\"() : () -> ()\n"
        "  }) {sym_name = \"weird\"} : () -> ()\n"
        "}) : () -> ()\n";
    Module module = parseModule(ctx, text);
    Interpreter interp(module, nullptr);
    try {
        interp.callFunction("weird", {});
        FAIL() << "expected CompilerError";
    } catch (const CompilerError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("weird"), std::string::npos) << msg;
        EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
    }
}
