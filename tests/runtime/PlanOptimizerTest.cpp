/**
 * @file
 * Per-pass golden tests for rt::PlanOptimizer: each pass runs on a
 * minimal hand-written kernel with exact expected rewrite counts, and
 * the whole pipeline is locked bit-identical (outputs AND PerfReports)
 * against unoptimized plans on the tier-1 device kernels.
 */

#include <gtest/gtest.h>

#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "dialects/AllDialects.h"
#include "ir/Parser.h"
#include "runtime/ExecutionPlan.h"
#include "runtime/PlanOptimizer.h"
#include "support/Error.h"
#include "support/Rng.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;

namespace {

/** Parse a hand-written module and compile its 'f' into a raw plan.
 *  Plans hold no pointers into the IR, so the module can be local. */
std::shared_ptr<const rt::ExecutionPlan>
compileText(const std::string &text)
{
    ir::Context ctx;
    dialects::loadAllDialects(ctx);
    ir::Module module = ir::parseModule(ctx, text);
    return rt::ExecutionPlan::compile(module, "f");
}

std::vector<std::vector<float>>
randomRows(std::int64_t n, std::int64_t d, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> rows(
        static_cast<std::size_t>(n),
        std::vector<float>(static_cast<std::size_t>(d)));
    for (auto &row : rows)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : 0.0f;
    return rows;
}

void
expectOutputsEqual(const std::vector<rt::RtValue> &a,
                   const std::vector<rt::RtValue> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].isBuffer(), b[i].isBuffer());
        if (a[i].isBuffer()) {
            EXPECT_EQ(a[i].asBuffer()->shape(), b[i].asBuffer()->shape());
            EXPECT_EQ(a[i].asBuffer()->toVector(),
                      b[i].asBuffer()->toVector());
        }
    }
}

// A pure constant index-arithmetic chain: muli + addi + cmpi all fold,
// then the feeding constants (and the folded cmp) are dead.
const char *kConstChain =
    "\"builtin.module\"() ({\n"
    "  \"func.func\"() ({\n"
    "  ^bb0:\n"
    "    %c2 = \"arith.constant\"() {value = 2} : () -> index\n"
    "    %c3 = \"arith.constant\"() {value = 3} : () -> index\n"
    "    %c4 = \"arith.constant\"() {value = 4} : () -> index\n"
    "    %m = \"arith.muli\"(%c2, %c3) : (index, index) -> index\n"
    "    %a = \"arith.addi\"(%m, %c4) : (index, index) -> index\n"
    "    %cond = \"arith.cmpi\"(%m, %a) {predicate = \"slt\"}"
    " : (index, index) -> i1\n"
    "    \"func.return\"(%a) : (index) -> ()\n"
    "  }) {sym_name = \"f\"} : () -> ()\n"
    "}) : () -> ()\n";

// Sums one fixed row of the argument: the fully-static subview is
// loop-invariant (its only operand is the unmodified function arg).
const char *kInvariantSubviewLoop =
    "\"builtin.module\"() ({\n"
    "  \"func.func\"() ({\n"
    "  ^bb0(%buf: memref<4x8xf32>):\n"
    "    %lb = \"arith.constant\"() {value = 0} : () -> index\n"
    "    %ub = \"arith.constant\"() {value = 4} : () -> index\n"
    "    %st = \"arith.constant\"() {value = 1} : () -> index\n"
    "    %c0 = \"arith.constant\"() {value = 0} : () -> index\n"
    "    %zero = \"arith.constant\"() {value = 0.0} : () -> f32\n"
    "    %sum = \"scf.for\"(%lb, %ub, %st, %zero) ({\n"
    "    ^bb0(%iv: index, %acc: f32):\n"
    "      %row = \"memref.subview\"(%buf)"
    " {static_offsets = [1, 0], static_sizes = [1, 8]}"
    " : (memref<4x8xf32>) -> memref<1x8xf32>\n"
    "      %v = \"memref.load\"(%row, %c0, %iv)"
    " : (memref<1x8xf32>, index, index) -> f32\n"
    "      %nx = \"arith.addf\"(%acc, %v) : (f32, f32) -> f32\n"
    "      \"scf.yield\"(%nx) : (f32) -> ()\n"
    "    }) : (index, index, index, f32) -> f32\n"
    "    \"func.return\"(%sum) : (f32) -> ()\n"
    "  }) {sym_name = \"f\"} : () -> ()\n"
    "}) : () -> ()\n";

// Same loop, but the subview offset depends on the induction variable:
// hoisting it would change which row every iteration reads.
const char *kIvDependentSubviewLoop =
    "\"builtin.module\"() ({\n"
    "  \"func.func\"() ({\n"
    "  ^bb0(%buf: memref<4x8xf32>):\n"
    "    %lb = \"arith.constant\"() {value = 0} : () -> index\n"
    "    %ub = \"arith.constant\"() {value = 4} : () -> index\n"
    "    %st = \"arith.constant\"() {value = 1} : () -> index\n"
    "    %c0 = \"arith.constant\"() {value = 0} : () -> index\n"
    "    %zero = \"arith.constant\"() {value = 0.0} : () -> f32\n"
    "    %sum = \"scf.for\"(%lb, %ub, %st, %zero) ({\n"
    "    ^bb0(%iv: index, %acc: f32):\n"
    "      %row = \"memref.subview\"(%buf, %iv)"
    " {static_offsets = [-1, 0], static_sizes = [1, 8]}"
    " : (memref<4x8xf32>, index) -> memref<1x8xf32>\n"
    "      %v = \"memref.load\"(%row, %c0, %c0)"
    " : (memref<1x8xf32>, index, index) -> f32\n"
    "      %nx = \"arith.addf\"(%acc, %v) : (f32, f32) -> f32\n"
    "      \"scf.yield\"(%nx) : (f32) -> ()\n"
    "    }) : (index, index, index, f32) -> f32\n"
    "    \"func.return\"(%sum) : (f32) -> ()\n"
    "  }) {sym_name = \"f\"} : () -> ()\n"
    "}) : () -> ()\n";

// An index chain over an unknown argument: nothing folds, but the two
// adjacent (addi, muli) and (subi, addi) pairs fuse.
const char *kFusableChain =
    "\"builtin.module\"() ({\n"
    "  \"func.func\"() ({\n"
    "  ^bb0(%x: index):\n"
    "    %c1 = \"arith.constant\"() {value = 1} : () -> index\n"
    "    %c2 = \"arith.constant\"() {value = 2} : () -> index\n"
    "    %c3 = \"arith.constant\"() {value = 3} : () -> index\n"
    "    %c5 = \"arith.constant\"() {value = 5} : () -> index\n"
    "    %a = \"arith.addi\"(%x, %c1) : (index, index) -> index\n"
    "    %b = \"arith.muli\"(%a, %c2) : (index, index) -> index\n"
    "    %c = \"arith.subi\"(%b, %c3) : (index, index) -> index\n"
    "    %d = \"arith.addi\"(%c, %c5) : (index, index) -> index\n"
    "    \"func.return\"(%d) : (index) -> ()\n"
    "  }) {sym_name = \"f\"} : () -> ()\n"
    "}) : () -> ()\n";

// %a feeds both %b and the trailing subi: the (addi, muli) pair may
// chain %a into op2 but must keep storing it for the later reader.
const char *kMultiUseChain =
    "\"builtin.module\"() ({\n"
    "  \"func.func\"() ({\n"
    "  ^bb0(%x: index):\n"
    "    %c1 = \"arith.constant\"() {value = 1} : () -> index\n"
    "    %c2 = \"arith.constant\"() {value = 2} : () -> index\n"
    "    %a = \"arith.addi\"(%x, %c1) : (index, index) -> index\n"
    "    %b = \"arith.muli\"(%a, %c2) : (index, index) -> index\n"
    "    %c = \"arith.subi\"(%b, %a) : (index, index) -> index\n"
    "    \"func.return\"(%c) : (index) -> ()\n"
    "  }) {sym_name = \"f\"} : () -> ()\n"
    "}) : () -> ()\n";

rt::PlanOptOptions
onlyPass(bool fold, bool hoist, bool fuse, bool dse)
{
    rt::PlanOptOptions options;
    options.constantFolding = fold;
    options.subviewHoisting = hoist;
    options.superopFusion = fuse;
    options.deadSlotElimination = dse;
    return options;
}

} // namespace

TEST(PlanOptimizer, ConstantFoldingFoldsIndexChain)
{
    auto raw = compileText(kConstChain);
    rt::PlanOptReport report;
    auto opt = rt::PlanOptimizer::optimize(
        *raw, onlyPass(true, false, false, false), &report);
    // muli, addi and cmpi all have constant operands.
    EXPECT_EQ(report.foldedInstructions, 3);

    rt::PlanFrame rf = raw->makeFrame();
    rt::PlanFrame of = opt->makeFrame();
    auto rout = raw->run(rf, nullptr, {});
    auto oout = opt->run(of, nullptr, {});
    ASSERT_EQ(rout.size(), 1u);
    ASSERT_EQ(oout.size(), 1u);
    EXPECT_EQ(rout[0].asInt(), 10);
    EXPECT_EQ(oout[0].asInt(), 10);
}

TEST(PlanOptimizer, DeadSlotEliminationCompactsFrame)
{
    auto raw = compileText(kConstChain);
    rt::PlanOptReport report;
    auto opt = rt::PlanOptimizer::optimize(*raw, rt::PlanOptOptions{},
                                           &report);
    // After folding, the three feeding constants and the folded cmp
    // result are never read.
    EXPECT_GE(report.removedInstructions, 4);
    EXPECT_LT(report.slotsAfter, report.slotsBefore);
    EXPECT_LT(opt->numInstructions(rt::ExecutionPlan::ExecPhase::Full),
              raw->numInstructions(rt::ExecutionPlan::ExecPhase::Full));
    EXPECT_EQ(opt->numSlots(), report.slotsAfter);

    rt::PlanFrame of = opt->makeFrame();
    auto oout = opt->run(of, nullptr, {});
    ASSERT_EQ(oout.size(), 1u);
    EXPECT_EQ(oout[0].asInt(), 10);
}

TEST(PlanOptimizer, HoistsLoopInvariantSubview)
{
    auto raw = compileText(kInvariantSubviewLoop);
    rt::PlanOptReport report;
    auto opt = rt::PlanOptimizer::optimize(
        *raw, onlyPass(false, true, false, false), &report);
    EXPECT_EQ(report.hoistedSubviews, 1);
    // Hoisting moves an instruction; it never adds or removes one.
    EXPECT_EQ(opt->numInstructions(rt::ExecutionPlan::ExecPhase::Full),
              raw->numInstructions(rt::ExecutionPlan::ExecPhase::Full));

    auto buf = rt::Buffer::fromMatrix(randomRows(4, 8, 7));
    auto args = rt::toRtValues({buf});
    rt::PlanFrame rf = raw->makeFrame();
    rt::PlanFrame of = opt->makeFrame();
    auto rout = raw->run(rf, nullptr, args);
    auto oout = opt->run(of, nullptr, args);
    ASSERT_EQ(rout.size(), 1u);
    ASSERT_EQ(oout.size(), 1u);
    EXPECT_EQ(rout[0].asFloat(), oout[0].asFloat());
}

TEST(PlanOptimizer, DoesNotHoistIvDependentSubview)
{
    auto raw = compileText(kIvDependentSubviewLoop);
    rt::PlanOptReport report;
    auto opt = rt::PlanOptimizer::optimize(
        *raw, onlyPass(false, true, false, false), &report);
    EXPECT_EQ(report.hoistedSubviews, 0);

    auto buf = rt::Buffer::fromMatrix(randomRows(4, 8, 9));
    auto args = rt::toRtValues({buf});
    rt::PlanFrame rf = raw->makeFrame();
    rt::PlanFrame of = opt->makeFrame();
    expectOutputsEqual(raw->run(rf, nullptr, args),
                       opt->run(of, nullptr, args));
}

TEST(PlanOptimizer, FusesAdjacentArithPairs)
{
    auto raw = compileText(kFusableChain);
    rt::PlanOptReport report;
    auto opt = rt::PlanOptimizer::optimize(
        *raw, onlyPass(false, false, true, false), &report);
    EXPECT_EQ(report.fusedSuperops, 2);
    EXPECT_EQ(opt->numInstructions(rt::ExecutionPlan::ExecPhase::Full) +
                  2,
              raw->numInstructions(rt::ExecutionPlan::ExecPhase::Full));

    std::vector<rt::RtValue> args = {rt::RtValue(std::int64_t(5))};
    rt::PlanFrame rf = raw->makeFrame();
    rt::PlanFrame of = opt->makeFrame();
    auto rout = raw->run(rf, nullptr, args);
    auto oout = opt->run(of, nullptr, args);
    ASSERT_EQ(rout.size(), 1u);
    ASSERT_EQ(oout.size(), 1u);
    // ((5 + 1) * 2 - 3) + 5
    EXPECT_EQ(rout[0].asInt(), 14);
    EXPECT_EQ(oout[0].asInt(), 14);
}

TEST(PlanOptimizer, ChainCollapseDropsSingleUseIntermediates)
{
    auto raw = compileText(kFusableChain);
    rt::PlanOptReport report;
    auto opt = rt::PlanOptimizer::optimize(
        *raw, onlyPass(false, false, true, false), &report);
    // %a and %c are single-use: both fused pairs forward op1's result
    // to op2 in a register and skip the intermediate slot store.
    EXPECT_EQ(report.fusedSuperops, 2);
    EXPECT_EQ(report.collapsedWrites, 2);
    std::string dump = rt::PlanOptimizer::disassemble(*opt);
    EXPECT_NE(dump.find("chain=x"), std::string::npos);

    std::vector<rt::RtValue> args = {rt::RtValue(std::int64_t(5))};
    rt::PlanFrame of = opt->makeFrame();
    auto oout = opt->run(of, nullptr, args);
    ASSERT_EQ(oout.size(), 1u);
    EXPECT_EQ(oout[0].asInt(), 14);
}

TEST(PlanOptimizer, ChainCollapseKeepsMultiUseResultsStored)
{
    auto raw = compileText(kMultiUseChain);
    rt::PlanOptReport report;
    auto opt = rt::PlanOptimizer::optimize(
        *raw, onlyPass(false, false, true, false), &report);
    EXPECT_EQ(report.fusedSuperops, 1);
    EXPECT_EQ(report.collapsedWrites, 0);

    std::vector<rt::RtValue> args = {rt::RtValue(std::int64_t(5))};
    rt::PlanFrame rf = raw->makeFrame();
    rt::PlanFrame of = opt->makeFrame();
    auto rout = raw->run(rf, nullptr, args);
    auto oout = opt->run(of, nullptr, args);
    ASSERT_EQ(oout.size(), 1u);
    // (5 + 1) * 2 - (5 + 1)
    EXPECT_EQ(rout[0].asInt(), 6);
    EXPECT_EQ(oout[0].asInt(), 6);
}

TEST(PlanOptimizer, DeviceKernelGrowsFusedSuperops)
{
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    options.spec.camType = arch::CamDeviceType::Mcam;
    options.spec.bitsPerCell = 2;
    options.optimizePlans = false;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::knnEuclideanSource(1, 16, 32, 2));
    std::shared_ptr<const rt::ExecutionPlan> raw = kernel.executionPlan();
    ASSERT_TRUE(raw);

    rt::PlanOptReport report;
    auto opt = rt::PlanOptimizer::optimize(*raw, rt::PlanOptOptions{},
                                           &report);
    EXPECT_GT(report.fusedSuperops, 0);
    EXPECT_GT(report.foldedInstructions, 0);
    std::string dump = rt::PlanOptimizer::disassemble(*opt);
    // Every loop guard and back-edge should have fused, and the device
    // inner loop should expose the slice+search superop.
    EXPECT_NE(dump.find("FusedCmpBranch"), std::string::npos);
    EXPECT_NE(dump.find("FusedAddJump"), std::string::npos);
    EXPECT_NE(dump.find("FusedSubviewSearch"), std::string::npos);
}

TEST(PlanOptimizer, DisassembleListsPhasesAndSpecs)
{
    auto plan = compileText(kInvariantSubviewLoop);
    std::string dump = rt::PlanOptimizer::disassemble(*plan);
    EXPECT_NE(dump.find("phase full"), std::string::npos);
    EXPECT_NE(dump.find("phase setup"), std::string::npos);
    EXPECT_NE(dump.find("phase query"), std::string::npos);
    EXPECT_NE(dump.find("Subview"), std::string::npos);
    EXPECT_NE(dump.find("slices (1)"), std::string::npos);
    EXPECT_NE(dump.find("arg slots"), std::string::npos);
}

TEST(PlanOptimizer, CollectDumpsRecordsEveryPass)
{
    auto raw = compileText(kConstChain);
    rt::PlanOptOptions options;
    options.collectDumps = true;
    rt::PlanOptReport report;
    rt::PlanOptimizer::optimize(*raw, options, &report);
    ASSERT_EQ(report.passDumps.size(), 5u);
    EXPECT_EQ(report.passDumps[0].first, "input");
    EXPECT_EQ(report.passDumps[1].first, "constant-folding");
    EXPECT_EQ(report.passDumps[4].first, "dead-slot-elimination");
}

TEST(PlanOptimizer, OptimizedDeviceKernelBitIdenticalToUnoptimized)
{
    auto stored = randomRows(16, 32, 11);
    auto query = randomRows(1, 32, 13);
    std::vector<rt::BufferPtr> args = {rt::Buffer::fromMatrix(query),
                                       rt::Buffer::fromMatrix(stored)};

    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    options.spec.camType = arch::CamDeviceType::Mcam;
    options.spec.bitsPerCell = 2;
    core::Compiler optimizing(options);
    options.optimizePlans = false;
    core::Compiler rawc(options);
    std::string source = apps::knnEuclideanSource(1, 16, 32, 2);

    core::CompiledKernel okernel = optimizing.compileTorchScript(source);
    core::CompiledKernel rkernel = rawc.compileTorchScript(source);
    auto oresult = okernel.run(args);
    auto rresult = rkernel.run(args);
    expectOutputsEqual(oresult.outputs, rresult.outputs);
    EXPECT_EQ(oresult.perf.toJson().dump(2),
              rresult.perf.toJson().dump(2));
}
