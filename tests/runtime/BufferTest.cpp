/** @file Runtime buffer/view tests. */

#include <gtest/gtest.h>

#include "runtime/Buffer.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::rt;

TEST(Buffer, AllocZeroInitialized)
{
    auto buf = Buffer::alloc(DType::F32, {2, 3});
    EXPECT_EQ(buf->numElements(), 6);
    EXPECT_EQ(buf->rank(), 2u);
    for (std::int64_t i = 0; i < 2; ++i)
        for (std::int64_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(buf->at({i, j}), 0.0);
}

TEST(Buffer, SetGetRoundTrip)
{
    auto buf = Buffer::alloc(DType::F32, {4, 4});
    buf->set({2, 3}, 7.5);
    EXPECT_DOUBLE_EQ(buf->at({2, 3}), 7.5);
    buf->setInt({0, 0}, 42);
    EXPECT_EQ(buf->atInt({0, 0}), 42);
}

TEST(Buffer, FromMatrix)
{
    auto buf = Buffer::fromMatrix({{1, 2}, {3, 4}});
    EXPECT_DOUBLE_EQ(buf->at({0, 1}), 2.0);
    EXPECT_DOUBLE_EQ(buf->at({1, 0}), 3.0);
    EXPECT_THROW(Buffer::fromMatrix({{1, 2}, {3}}), CompilerError);
    EXPECT_THROW(Buffer::fromMatrix({}), CompilerError);
}

TEST(Buffer, SubviewAliasesStorage)
{
    auto buf = Buffer::alloc(DType::F32, {4, 8});
    buf->set({2, 5}, 9.0);
    auto view = buf->subview({2, 4}, {2, 4});
    EXPECT_EQ(view->shape(), (std::vector<std::int64_t>{2, 4}));
    EXPECT_DOUBLE_EQ(view->at({0, 1}), 9.0);
    // Writing through the view is visible in the parent.
    view->set({1, 3}, 4.0);
    EXPECT_DOUBLE_EQ(buf->at({3, 7}), 4.0);
}

TEST(Buffer, NestedSubviews)
{
    auto buf = Buffer::alloc(DType::F32, {8, 8});
    buf->set({5, 6}, 1.5);
    auto outer = buf->subview({4, 4}, {4, 4});
    auto inner = outer->subview({1, 2}, {2, 2});
    EXPECT_DOUBLE_EQ(inner->at({0, 0}), 1.5);
}

TEST(Buffer, SubviewBoundsChecked)
{
    auto buf = Buffer::alloc(DType::F32, {4, 4});
    EXPECT_THROW(buf->subview({2, 2}, {3, 1}), InternalError);
    EXPECT_THROW(buf->subview({0}, {1}), InternalError);
}

TEST(Buffer, CopyFromRespectsViews)
{
    auto src = Buffer::fromMatrix({{1, 2}, {3, 4}});
    auto dst = Buffer::alloc(DType::F32, {4, 4});
    auto window = dst->subview({1, 1}, {2, 2});
    window->copyFrom(*src);
    EXPECT_DOUBLE_EQ(dst->at({1, 1}), 1.0);
    EXPECT_DOUBLE_EQ(dst->at({2, 2}), 4.0);
    EXPECT_DOUBLE_EQ(dst->at({0, 0}), 0.0);
}

TEST(Buffer, FillAndToVector)
{
    auto buf = Buffer::alloc(DType::F32, {2, 2});
    buf->fill(3.0);
    auto flat = buf->toVector();
    ASSERT_EQ(flat.size(), 4u);
    for (double v : flat)
        EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(Buffer, ToVectorFollowsViewLayout)
{
    auto buf = Buffer::fromMatrix({{1, 2, 3}, {4, 5, 6}});
    auto col = buf->subview({0, 1}, {2, 1});
    auto flat = col->toVector();
    ASSERT_EQ(flat.size(), 2u);
    EXPECT_DOUBLE_EQ(flat[0], 2.0);
    EXPECT_DOUBLE_EQ(flat[1], 5.0);
}

TEST(Buffer, ToMatrixRequiresRank2)
{
    auto buf = Buffer::alloc(DType::F32, {4});
    EXPECT_THROW(buf->toMatrix(), InternalError);
    auto mat = Buffer::fromMatrix({{1, 2}})->toMatrix();
    ASSERT_EQ(mat.size(), 1u);
    EXPECT_FLOAT_EQ(mat[0][1], 2.0f);
}

TEST(Buffer, IndexBoundsChecked)
{
    auto buf = Buffer::alloc(DType::F32, {2, 2});
    EXPECT_THROW(buf->at({2, 0}), InternalError);
    EXPECT_THROW(buf->at({0}), InternalError);
}

TEST(Buffer, RankZero)
{
    auto buf = Buffer::alloc(DType::F32, {});
    EXPECT_EQ(buf->numElements(), 1);
    buf->set({}, 5.0);
    EXPECT_DOUBLE_EQ(buf->at({}), 5.0);
}

TEST(RtValue, Variants)
{
    RtValue i(std::int64_t(4));
    EXPECT_TRUE(i.isInt());
    EXPECT_EQ(i.asInt(), 4);
    EXPECT_DOUBLE_EQ(i.asFloat(), 4.0); // int widens to float

    RtValue f(2.5);
    EXPECT_TRUE(f.isFloat());
    EXPECT_THROW(f.asInt(), InternalError);

    RtValue b(Buffer::alloc(DType::F32, {1}));
    EXPECT_TRUE(b.isBuffer());
    EXPECT_THROW(b.asInt(), InternalError);
    EXPECT_THROW(i.asBuffer(), InternalError);
}

TEST(Buffer, StrIsInformative)
{
    auto buf = Buffer::fromMatrix({{1, 2}});
    std::string s = buf->str();
    EXPECT_NE(s.find("f32"), std::string::npos);
    EXPECT_NE(s.find("1x2"), std::string::npos);
}
