/**
 * @file
 * Execution-plan tests: compilation, slot numbering, and the
 * differential contract -- every tier-1 kernel must produce
 * bit-identical outputs and PerfReports under tree-walk, plan-replay
 * and fused-batch (K=1) execution.
 */

#include <gtest/gtest.h>

#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "dialects/AllDialects.h"
#include "ir/Builder.h"
#include "ir/Parser.h"
#include "runtime/ExecutionPlan.h"
#include "runtime/Interpreter.h"
#include "support/Error.h"
#include "support/Rng.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;

namespace {

std::vector<std::vector<float>>
randomRows(std::int64_t n, std::int64_t d, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> rows(
        static_cast<std::size_t>(n),
        std::vector<float>(static_cast<std::size_t>(d)));
    for (auto &row : rows)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : 0.0f;
    return rows;
}

void
expectOutputsEqual(const std::vector<rt::RtValue> &a,
                   const std::vector<rt::RtValue> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].isBuffer(), b[i].isBuffer());
        if (a[i].isBuffer()) {
            EXPECT_EQ(a[i].asBuffer()->shape(), b[i].asBuffer()->shape());
            EXPECT_EQ(a[i].asBuffer()->toVector(),
                      b[i].asBuffer()->toVector());
        }
    }
}

/** Field-by-field exact comparison of two perf reports. */
void
expectReportsIdentical(const sim::PerfReport &a, const sim::PerfReport &b)
{
    EXPECT_EQ(a.setupLatencyNs, b.setupLatencyNs);
    EXPECT_EQ(a.setupEnergyPj, b.setupEnergyPj);
    EXPECT_EQ(a.queryLatencyNs, b.queryLatencyNs);
    EXPECT_EQ(a.queryEnergyPj, b.queryEnergyPj);
    EXPECT_EQ(a.cellEnergyPj, b.cellEnergyPj);
    EXPECT_EQ(a.senseEnergyPj, b.senseEnergyPj);
    EXPECT_EQ(a.driveEnergyPj, b.driveEnergyPj);
    EXPECT_EQ(a.mergeEnergyPj, b.mergeEnergyPj);
    EXPECT_EQ(a.searches, b.searches);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.subarraysUsed, b.subarraysUsed);
    EXPECT_EQ(a.subarraysAllocated, b.subarraysAllocated);
    EXPECT_EQ(a.banksUsed, b.banksUsed);
}

struct KernelConfig
{
    const char *name;
    std::string source;
    core::CompilerOptions options;
};

/** The tier-1 kernels at both lowering levels. */
std::vector<KernelConfig>
tierOneKernels(std::int64_t rows, std::int64_t dims)
{
    std::vector<KernelConfig> kernels;

    // HDC dot-similarity on the cam device path (1-bit hypervectors).
    KernelConfig hdc;
    hdc.name = "hdc_dot_cam";
    hdc.source = apps::dotSimilaritySource(1, rows, dims, 1);
    hdc.options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    kernels.push_back(hdc);

    // kNN euclidean on the MCAM device path.
    KernelConfig knn;
    knn.name = "knn_eucl_cam";
    knn.source = apps::knnEuclideanSource(1, rows, dims, 2);
    knn.options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    knn.options.spec.camType = arch::CamDeviceType::Mcam;
    knn.options.spec.bitsPerCell = 2;
    kernels.push_back(knn);

    // The decision-path analogue at the cim host level: exercises
    // cim.execute regions, cim.similarity and host tensor kernels,
    // which the device kernels above never reach.
    KernelConfig host;
    host.name = "hdc_dot_host";
    host.source = apps::dotSimilaritySource(1, rows, dims, 1);
    host.options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    host.options.hostOnly = true;
    kernels.push_back(host);

    // Fully lowered scf-loop form (Fig. 3 "loops" pipeline).
    KernelConfig loops;
    loops.name = "knn_eucl_loops";
    loops.source = apps::knnEuclideanSource(1, rows, dims, 1);
    loops.options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    loops.options.hostOnly = true;
    loops.options.lowerToLoops = true;
    kernels.push_back(loops);

    return kernels;
}

} // namespace

TEST(ExecutionPlan, CompilesForEveryTierOneKernel)
{
    for (const KernelConfig &cfg : tierOneKernels(8, 64)) {
        core::Compiler compiler(cfg.options);
        core::CompiledKernel kernel =
            compiler.compileTorchScript(cfg.source);
        std::shared_ptr<const rt::ExecutionPlan> plan =
            kernel.executionPlan();
        ASSERT_TRUE(plan) << cfg.name;
        EXPECT_GT(plan->numSlots(), 0) << cfg.name;
        EXPECT_GT(plan->numInstructions(
                      rt::ExecutionPlan::ExecPhase::Full),
                  0u)
            << cfg.name;
        // Device kernels are phase-annotated; host kernels are not.
        EXPECT_EQ(plan->hasPhaseMarkers(), !cfg.options.hostOnly)
            << cfg.name;
    }
}

TEST(ExecutionPlan, TreeWalkRetainedBehindFlag)
{
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    options.treeWalkExecution = true;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(1, 8, 64, 1));
    EXPECT_EQ(kernel.executionPlan(), nullptr);

    auto stored = randomRows(8, 64, 3);
    core::ExecutionSession session = kernel.createSession(
        {rt::Buffer::fromMatrix({stored[0]}),
         rt::Buffer::fromMatrix(stored)});
    EXPECT_FALSE(session.usesPlan());
    EXPECT_TRUE(session.persistent());
}

TEST(ExecutionPlan, SingleShotDifferentialAcrossTierOneKernels)
{
    const std::int64_t rows = 8;
    const std::int64_t dims = 64;
    auto stored = randomRows(rows, dims, 11);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    auto query = rt::Buffer::fromMatrix({stored[5]});

    for (const KernelConfig &cfg : tierOneKernels(rows, dims)) {
        core::CompilerOptions walk_options = cfg.options;
        walk_options.treeWalkExecution = true;

        core::Compiler plan_compiler(cfg.options);
        core::CompiledKernel plan_kernel =
            plan_compiler.compileTorchScript(cfg.source);
        core::Compiler walk_compiler(walk_options);
        core::CompiledKernel walk_kernel =
            walk_compiler.compileTorchScript(cfg.source);

        core::ExecutionResult via_plan =
            plan_kernel.run({query, stored_buf});
        core::ExecutionResult via_walk =
            walk_kernel.run({query, stored_buf});

        SCOPED_TRACE(cfg.name);
        expectOutputsEqual(via_plan.outputs, via_walk.outputs);
        expectReportsIdentical(via_plan.perf, via_walk.perf);
    }
}

TEST(ExecutionPlan, SessionDifferentialTreeWalkPlanAndFusedK1)
{
    const std::int64_t rows = 8;
    const std::int64_t dims = 64;
    auto stored = randomRows(rows, dims, 17);
    auto stored_buf = rt::Buffer::fromMatrix(stored);

    for (const KernelConfig &cfg : tierOneKernels(rows, dims)) {
        core::CompilerOptions walk_options = cfg.options;
        walk_options.treeWalkExecution = true;

        core::Compiler plan_compiler(cfg.options);
        core::CompiledKernel plan_kernel =
            plan_compiler.compileTorchScript(cfg.source);
        core::Compiler walk_compiler(walk_options);
        core::CompiledKernel walk_kernel =
            walk_compiler.compileTorchScript(cfg.source);

        auto setup_args = std::vector<rt::BufferPtr>{
            rt::Buffer::fromMatrix({stored[0]}), stored_buf};
        core::ExecutionSession plan_session =
            plan_kernel.createSession(setup_args);
        core::ExecutionSession walk_session =
            walk_kernel.createSession(setup_args);
        core::ExecutionSession fused_session =
            plan_kernel.createSession(setup_args);

        SCOPED_TRACE(cfg.name);
        EXPECT_EQ(plan_session.usesPlan(), true);
        EXPECT_EQ(walk_session.usesPlan(), false);

        for (std::int64_t q = 0; q < rows; ++q) {
            auto args = std::vector<rt::BufferPtr>{
                rt::Buffer::fromMatrix(
                    {stored[static_cast<std::size_t>(q)]}),
                stored_buf};
            core::ExecutionResult via_plan = plan_session.runQuery(args);
            core::ExecutionResult via_walk = walk_session.runQuery(args);
            core::FusedBatchResult fused =
                fused_session.runFusedBatch({args});

            SCOPED_TRACE(q);
            expectOutputsEqual(via_plan.outputs, via_walk.outputs);
            expectReportsIdentical(via_plan.perf, via_walk.perf);
            // Fused batch of one query == serial serving, exactly.
            ASSERT_EQ(fused.results.size(), 1u);
            expectOutputsEqual(fused.results[0].outputs,
                               via_walk.outputs);
            expectReportsIdentical(fused.results[0].perf, via_walk.perf);
            EXPECT_EQ(fused.fused.k, 1);
            EXPECT_EQ(fused.fused.total.latencyNs,
                      via_walk.perf.queryLatencyNs);
            EXPECT_EQ(fused.fused.total.energyPj,
                      via_walk.perf.queryEnergyPj);
        }
        expectReportsIdentical(plan_session.aggregateReport(),
                               walk_session.aggregateReport());
    }
}

TEST(ExecutionPlan, ReplayArityAndPhaseChecksMirrorInterpreter)
{
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    options.hostOnly = true;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(1, 4, 32, 1));
    std::shared_ptr<const rt::ExecutionPlan> plan =
        kernel.executionPlan();
    ASSERT_TRUE(plan);

    rt::PlanFrame frame = plan->makeFrame();
    // Wrong arity.
    EXPECT_THROW(plan->run(frame, nullptr, {}), CompilerError);
    // Phased execution on an unphased (host) kernel.
    auto stored = randomRows(4, 32, 5);
    auto args = rt::toRtValues({rt::Buffer::fromMatrix({stored[0]}),
                                rt::Buffer::fromMatrix(stored)});
    EXPECT_THROW(plan->run(frame, nullptr, args,
                           rt::ExecutionPlan::ExecPhase::QueryOnly),
                 CompilerError);
}

TEST(ExecutionPlan, UnknownOpDiagnosticNamesFunctionAndNearest)
{
    ir::Context ctx;
    dialects::loadAllDialects(ctx);
    std::string text =
        "\"builtin.module\"() ({\n"
        "  \"func.func\"() ({\n"
        "  ^bb0:\n"
        "    %x = \"arith.constatn\"() {value = 1} : () -> index\n"
        "    \"func.return\"(%x) : (index) -> ()\n"
        "  }) {sym_name = \"typo_kernel\"} : () -> ()\n"
        "}) : () -> ()\n";
    ir::Module module = ir::parseModule(ctx, text);
    try {
        rt::ExecutionPlan::compile(module, "typo_kernel");
        FAIL() << "expected CompilerError";
    } catch (const CompilerError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("arith.constatn"), std::string::npos) << msg;
        EXPECT_NE(msg.find("typo_kernel"), std::string::npos) << msg;
        EXPECT_NE(msg.find("arith.constant"), std::string::npos) << msg;
    }
}

TEST(ExecutionPlan, ModuleMutationInvalidatesCachedPlan)
{
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(1, 8, 64, 1));
    std::shared_ptr<const rt::ExecutionPlan> first =
        kernel.executionPlan();
    ASSERT_TRUE(first);
    // Touching the mutable module drops the cache; the next accessor
    // call compiles a fresh plan from the (possibly rewritten) IR.
    kernel.module();
    std::shared_ptr<const rt::ExecutionPlan> second =
        kernel.executionPlan();
    ASSERT_TRUE(second);
    EXPECT_NE(first.get(), second.get());
}
