/**
 * @file
 * Seeded fault injection: determinism, per-class semantics, and the
 * JSON spec parser. The properties locked here are what the serving
 * tier's recovery paths (retry / quarantine / deadline) build on --
 * above all that a chaos run is a pure function of the spec seed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/FaultInjector.h"
#include "support/Error.h"
#include "support/Json.h"

using namespace c4cam;
using sim::FaultInjector;
using sim::FaultRule;
using sim::FaultSpec;
using sim::PermanentFault;
using sim::TransientFault;

namespace {

/**
 * Drive @p searches searches on device @p device, recording each
 * outcome as 'o' (ok), 't' (transient), or 'p' (permanent), so runs
 * can be compared as strings.
 */
std::string
outcomes(FaultInjector &injector, int device, int searches)
{
    std::string trace;
    for (int i = 0; i < searches; ++i) {
        try {
            injector.onSearch(device);
            trace += 'o';
        } catch (const PermanentFault &) {
            trace += 'p';
        } catch (const TransientFault &) {
            trace += 't';
        }
    }
    return trace;
}

} // namespace

TEST(FaultInjector, ScriptedTransientFiresExactlyOnce)
{
    FaultSpec spec;
    FaultRule rule;
    rule.kind = FaultRule::Kind::Transient;
    rule.device = 0;
    rule.atSearch = 3;
    spec.rules.push_back(rule);

    FaultInjector injector(spec);
    ASSERT_EQ(injector.registerDevice(), 0);
    // The ordinal advances even on the faulting search, so the retry
    // (search #4) succeeds: the Nth-search rule fires exactly once.
    EXPECT_EQ(outcomes(injector, 0, 6), "ootooo");
    EXPECT_EQ(injector.stats().transientsFired, 1);
    EXPECT_EQ(injector.stats().searchesObserved, 6);
    EXPECT_FALSE(injector.isDead(0));
}

TEST(FaultInjector, TransientRuleTargetsOnlyItsDevice)
{
    FaultSpec spec;
    FaultRule rule;
    rule.kind = FaultRule::Kind::Transient;
    rule.device = 1;
    rule.atSearch = 1;
    spec.rules.push_back(rule);

    FaultInjector injector(spec);
    ASSERT_EQ(injector.registerDevice(), 0);
    ASSERT_EQ(injector.registerDevice(), 1);
    EXPECT_EQ(outcomes(injector, 0, 3), "ooo");
    EXPECT_EQ(outcomes(injector, 1, 3), "too");
}

TEST(FaultInjector, KillIsPermanentFromAfterSearchOn)
{
    FaultSpec spec;
    FaultRule rule;
    rule.kind = FaultRule::Kind::Kill;
    rule.device = 0;
    rule.afterSearch = 2;
    spec.rules.push_back(rule);

    FaultInjector injector(spec);
    ASSERT_EQ(injector.registerDevice(), 0);
    ASSERT_EQ(injector.registerDevice(), 1);
    // The first two searches succeed, then every operation fails.
    EXPECT_EQ(outcomes(injector, 0, 5), "ooppp");
    EXPECT_TRUE(injector.isDead(0));
    EXPECT_THROW(injector.checkAlive(0), PermanentFault);
    // PermanentFault must be an ExecutionError so the retry policy
    // refuses it.
    try {
        injector.checkAlive(0);
        FAIL() << "expected PermanentFault";
    } catch (const ExecutionError &) {
    }
    // Death is per-device: the sibling is untouched.
    EXPECT_EQ(outcomes(injector, 1, 3), "ooo");
    EXPECT_FALSE(injector.isDead(1));
    injector.checkAlive(1);
}

TEST(FaultInjector, LatencySpikeWindowAndStacking)
{
    FaultSpec spec;
    FaultRule rule;
    rule.kind = FaultRule::Kind::LatencySpike;
    rule.device = -1; // every device
    rule.atSearch = 2;
    rule.count = 2;
    rule.factor = 4.0;
    spec.rules.push_back(rule);
    FaultRule overlap = rule;
    overlap.atSearch = 3;
    overlap.count = 1;
    overlap.factor = 2.0;
    spec.rules.push_back(overlap);

    FaultInjector injector(spec);
    ASSERT_EQ(injector.registerDevice(), 0);
    EXPECT_EQ(injector.onSearch(0), 1.0); // #1: before the window
    EXPECT_EQ(injector.onSearch(0), 4.0); // #2: first rule only
    EXPECT_EQ(injector.onSearch(0), 8.0); // #3: both rules stack
    EXPECT_EQ(injector.onSearch(0), 1.0); // #4: window closed
    EXPECT_EQ(injector.stats().latencySpikes, 2);
    EXPECT_EQ(injector.stats().transientsFired, 0);
}

TEST(FaultInjector, RateDrawsAreAPureFunctionOfTheSeed)
{
    FaultSpec spec;
    spec.seed = 20240404;
    spec.transientRate = 0.2;

    const int kDevices = 3;
    const int kSearches = 200;
    std::vector<std::string> first;
    {
        FaultInjector injector(spec);
        for (int d = 0; d < kDevices; ++d)
            injector.registerDevice();
        for (int d = 0; d < kDevices; ++d)
            first.push_back(outcomes(injector, d, kSearches));
    }
    // Same seed: bit-identical fault schedule, device by device.
    {
        FaultInjector injector(spec);
        for (int d = 0; d < kDevices; ++d)
            injector.registerDevice();
        for (int d = 0; d < kDevices; ++d)
            EXPECT_EQ(outcomes(injector, d, kSearches), first[d])
                << "device " << d;
    }
    // The streams are per-device (splitmix64-mixed), not one shared
    // sequence: at 20% over 200 draws two identical device streams
    // would mean the mixing collapsed.
    EXPECT_NE(first[0], first[1]);
    EXPECT_NE(first[1], first[2]);
    // A different seed reshuffles the schedule.
    spec.seed = 20240405;
    FaultInjector other(spec);
    other.registerDevice();
    EXPECT_NE(outcomes(other, 0, kSearches), first[0]);
    // Sanity: the empirical rate is in the right ballpark (20% +- 10
    // points over 600 draws -- far outside what a healthy RNG misses).
    std::size_t fired = 0;
    for (const std::string &trace : first)
        fired += std::size_t(std::count(trace.begin(), trace.end(), 't'));
    EXPECT_GT(fired, std::size_t(60));
    EXPECT_LT(fired, std::size_t(180));
}

TEST(FaultInjector, SpecParsesFromJson)
{
    JsonValue doc = parseJson(R"({
        "seed": 77,
        "transient_rate": 0.25,
        "rules": [
            {"kind": "transient", "device": 0, "at_search": 3},
            {"kind": "kill", "device": 1, "after_search": 10},
            {"kind": "latency_spike", "device": -1, "at_search": 5,
             "count": 2, "factor": 8.0},
            {"kind": "transient", "rate": 0.01}
        ]
    })");
    FaultSpec spec = FaultSpec::fromJson(doc);
    EXPECT_EQ(spec.seed, 77u);
    EXPECT_EQ(spec.transientRate, 0.25);
    ASSERT_EQ(spec.rules.size(), 4u);
    EXPECT_EQ(spec.rules[0].kind, FaultRule::Kind::Transient);
    EXPECT_EQ(spec.rules[0].device, 0);
    EXPECT_EQ(spec.rules[0].atSearch, 3);
    EXPECT_EQ(spec.rules[1].kind, FaultRule::Kind::Kill);
    EXPECT_EQ(spec.rules[1].afterSearch, 10);
    EXPECT_EQ(spec.rules[2].kind, FaultRule::Kind::LatencySpike);
    EXPECT_EQ(spec.rules[2].device, -1);
    EXPECT_EQ(spec.rules[2].count, 2);
    EXPECT_EQ(spec.rules[2].factor, 8.0);
    EXPECT_EQ(spec.rules[3].rate, 0.01);
    EXPECT_FALSE(spec.empty());
}

TEST(FaultInjector, SpecRejectsMalformedInput)
{
    EXPECT_THROW(FaultSpec::fromJson(parseJson("[1, 2]")), CompilerError);
    EXPECT_THROW(FaultSpec::fromJson(parseJson(
                     R"({"rules": [{"kind": "meteor-strike"}]})")),
                 CompilerError);
    EXPECT_THROW(FaultSpec::fromJson(parseJson(
                     R"({"transient_rate": 1.5})")),
                 CompilerError);
    EXPECT_THROW(FaultSpec::fromJson(parseJson(
                     R"({"rules": [{"kind": "transient", "rate": -0.1}]})")),
                 CompilerError);
    EXPECT_THROW(FaultSpec::fromJson(parseJson(
                     R"({"rules": [{"kind": "latency_spike",
                                    "factor": -2.0}]})")),
                 CompilerError);
    EXPECT_THROW(FaultSpec::fromJson(parseJson(
                     R"({"rules": [{"kind": "transient",
                                    "at_search": -1}]})")),
                 CompilerError);
    EXPECT_TRUE(FaultSpec::fromJson(parseJson("{}")).empty());
}
