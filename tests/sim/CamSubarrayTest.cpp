/** @file Functional CAM subarray tests. */

#include <cmath>

#include <gtest/gtest.h>

#include "sim/CamSubarray.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::sim;
using c4cam::arch::CamDeviceType;
using c4cam::arch::SearchKind;

namespace {

CamSubarray
makeTcam()
{
    CamSubarray sub(8, 8, CamDeviceType::Tcam, 1);
    // Rows 0..3 hold distinct bit patterns.
    sub.write({{0, 0, 0, 0, 0, 0, 0, 0},
               {1, 1, 1, 1, 1, 1, 1, 1},
               {1, 0, 1, 0, 1, 0, 1, 0},
               {1, 1, 0, 0, 1, 1, 0, 0}},
              0);
    return sub;
}

} // namespace

TEST(CamSubarray, ExactMatchFindsIdenticalRow)
{
    CamSubarray sub = makeTcam();
    // Restrict to the written rows; unwritten rows are wildcards and
    // would exact-match any query.
    SearchResult r = sub.search({1, 0, 1, 0, 1, 0, 1, 0},
                                SearchKind::Exact, false, 0, 4);
    ASSERT_EQ(r.matchedRows.size(), 1u);
    EXPECT_EQ(r.matchedRows[0], 2);
}

TEST(CamSubarray, UnwrittenRowsActAsWildcards)
{
    CamSubarray sub = makeTcam();
    SearchResult r = sub.search({1, 0, 1, 0, 1, 0, 1, 0},
                                SearchKind::Exact, false);
    // Row 2 matches plus the four unwritten (all-wildcard) rows.
    EXPECT_EQ(r.matchedRows.size(), 5u);
}

TEST(CamSubarray, ExactMatchMissesWhenNoRowMatches)
{
    CamSubarray sub = makeTcam();
    // No stored row equals this pattern among the written rows; rows
    // 4..7 are wildcards and match everything, so restrict the window.
    SearchResult r = sub.search({0, 1, 0, 1, 0, 1, 0, 1},
                                SearchKind::Exact, false, 0, 4);
    EXPECT_TRUE(r.matchedRows.empty());
}

TEST(CamSubarray, HammingDistancesAreExact)
{
    CamSubarray sub = makeTcam();
    SearchResult r =
        sub.search({0, 0, 0, 0, 0, 0, 0, 0}, SearchKind::Best, false, 0, 4);
    ASSERT_EQ(r.values.size(), 4u);
    EXPECT_FLOAT_EQ(r.values[0], 0.0f); // row 0: all zeros
    EXPECT_FLOAT_EQ(r.values[1], 8.0f); // row 1: all ones
    EXPECT_FLOAT_EQ(r.values[2], 4.0f);
    EXPECT_FLOAT_EQ(r.values[3], 4.0f);
    ASSERT_EQ(r.matchedRows.size(), 1u);
    EXPECT_EQ(r.matchedRows[0], 0);
}

TEST(CamSubarray, BestMatchReportsTies)
{
    CamSubarray sub = makeTcam();
    // Equidistant from rows 2 and 3 (distance 2 each).
    SearchResult r =
        sub.search({1, 0, 1, 0, 1, 1, 0, 0}, SearchKind::Best, false, 0, 4);
    EXPECT_FLOAT_EQ(r.values[2], 2.0f);
    EXPECT_FLOAT_EQ(r.values[3], 2.0f);
    ASSERT_EQ(r.matchedRows.size(), 2u);
}

TEST(CamSubarray, RangeMatchThreshold)
{
    CamSubarray sub = makeTcam();
    SearchResult r = sub.search({0, 0, 0, 0, 0, 0, 0, 1},
                                SearchKind::Range, false, 0, 4, 1.0);
    // Row 0 at distance 1 passes; others are >= 3.
    ASSERT_EQ(r.matchedRows.size(), 1u);
    EXPECT_EQ(r.matchedRows[0], 0);
}

TEST(CamSubarray, SelectiveRowWindow)
{
    CamSubarray sub = makeTcam();
    // Search only rows [2, 4): row 0 is invisible even though closer.
    SearchResult r = sub.search({0, 0, 0, 0, 0, 0, 0, 0},
                                SearchKind::Best, false, 2, 4);
    ASSERT_EQ(r.values.size(), 2u);
    EXPECT_EQ(r.indices[0], 2);
    EXPECT_EQ(r.indices[1], 3);
}

TEST(CamSubarray, WildcardCellsMatchEverything)
{
    CamSubarray sub(2, 4, CamDeviceType::Tcam, 1);
    float nan = std::nanf("");
    sub.write({{1, nan, 0, nan}, {0, 0, 0, 0}}, 0);
    SearchResult r =
        sub.search({1, 1, 0, 0}, SearchKind::Exact, false, 0, 2);
    ASSERT_EQ(r.matchedRows.size(), 1u);
    EXPECT_EQ(r.matchedRows[0], 0);
    r = sub.search({1, 0, 0, 1}, SearchKind::Exact, false, 0, 2);
    ASSERT_EQ(r.matchedRows.size(), 1u);
    EXPECT_EQ(r.matchedRows[0], 0);
}

TEST(CamSubarray, BinaryQuantizationClampsNegatives)
{
    // HDC convention: +-1 data lands on {0, 1} levels.
    CamSubarray sub(1, 2, CamDeviceType::Tcam, 1);
    sub.write({{-1.0f, 1.0f}}, 0);
    SearchResult r = sub.search({-1.0f, 1.0f}, SearchKind::Exact, false,
                                0, 1);
    EXPECT_EQ(r.matchedRows.size(), 1u);
}

TEST(CamSubarray, MultiBitEuclideanDistance)
{
    CamSubarray sub(2, 3, CamDeviceType::Mcam, 2);
    sub.write({{0, 1, 2}, {3, 3, 3}}, 0);
    SearchResult r =
        sub.search({0, 1, 3}, SearchKind::Best, true, 0, 2);
    EXPECT_FLOAT_EQ(r.values[0], 1.0f);       // (2-3)^2
    EXPECT_FLOAT_EQ(r.values[1], 9.0f + 4.0f); // (3)^2+(2)^2+(0)^2
    EXPECT_EQ(r.matchedRows[0], 0);
}

TEST(CamSubarray, MultiBitQuantizationClamps)
{
    CamSubarray sub(1, 1, CamDeviceType::Mcam, 2);
    sub.write({{9.0f}}, 0); // clamps to 3
    SearchResult r = sub.search({3.0f}, SearchKind::Exact, true, 0, 1);
    EXPECT_EQ(r.matchedRows.size(), 1u);
}

TEST(CamSubarray, AcamStoresRanges)
{
    CamSubarray sub(2, 2, CamDeviceType::Acam, 2);
    std::vector<std::vector<CamCell>> cells(2,
                                            std::vector<CamCell>(2));
    cells[0][0] = {0.2f, 0.4f, false};
    cells[0][1] = {0.0f, 1.0f, false};
    cells[1][0] = {0.8f, 0.9f, false};
    cells[1][1] = {0.0f, 0.1f, false};
    sub.writeRanges(cells, 0);
    SearchResult r =
        sub.search({0.3f, 0.5f}, SearchKind::Exact, false, 0, 2);
    ASSERT_EQ(r.matchedRows.size(), 1u);
    EXPECT_EQ(r.matchedRows[0], 0);
}

TEST(CamSubarray, RangeProgrammingRequiresAcam)
{
    CamSubarray sub(1, 1, CamDeviceType::Tcam, 1);
    EXPECT_THROW(sub.writeRanges({{CamCell{0, 1, false}}}, 0),
                 CompilerError);
}

TEST(CamSubarray, WriteAtRowOffsetTracksWrittenRows)
{
    CamSubarray sub(8, 4, CamDeviceType::Tcam, 1);
    EXPECT_EQ(sub.writtenRows(), 0);
    sub.write({{1, 1, 1, 1}}, 5);
    EXPECT_EQ(sub.writtenRows(), 6);
}

TEST(CamSubarray, OutOfBoundsRejected)
{
    CamSubarray sub(2, 2, CamDeviceType::Tcam, 1);
    EXPECT_THROW(sub.write({{1, 1}, {1, 1}, {1, 1}}, 0), CompilerError);
    EXPECT_THROW(sub.write({{1, 1, 1}}, 0), CompilerError);
    EXPECT_THROW(sub.search({1, 1, 1}, SearchKind::Exact, false),
                 CompilerError);
    EXPECT_THROW(sub.search({1}, SearchKind::Exact, false, 0, 5),
                 CompilerError);
    EXPECT_THROW(CamSubarray(0, 4, CamDeviceType::Tcam, 1),
                 CompilerError);
}

TEST(CamSubarray, ShorterQueryUsesPrefixColumns)
{
    CamSubarray sub = makeTcam();
    // 4-column query against 8-column rows: only cells 0..3 compared.
    SearchResult r =
        sub.search({1, 0, 1, 0}, SearchKind::Best, false, 0, 4);
    EXPECT_FLOAT_EQ(r.values[2], 0.0f);
}
