/** @file Timing-engine scope semantics tests. */

#include <gtest/gtest.h>

#include "sim/Timing.h"
#include "support/Error.h"
#include "support/Json.h"

using namespace c4cam;
using namespace c4cam::sim;

TEST(Timing, SequentialScopeSumsLatency)
{
    TimingEngine t;
    t.beginScope(false);
    t.post(3.0, 1.0);
    t.post(4.0, 2.0);
    t.endScope();
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 7.0);
    EXPECT_DOUBLE_EQ(t.queryCost().energyPj, 3.0);
}

TEST(Timing, ParallelScopeTakesMaxLatencySumsEnergy)
{
    TimingEngine t;
    t.beginScope(true);
    t.post(3.0, 1.0);
    t.post(5.0, 2.0);
    t.post(4.0, 4.0);
    t.endScope();
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 5.0);
    EXPECT_DOUBLE_EQ(t.queryCost().energyPj, 7.0);
}

TEST(Timing, NestedScopesCombineCorrectly)
{
    // parallel over 2 sequential children: latency = max(sum, sum).
    TimingEngine t;
    t.beginScope(true);
    t.beginScope(false);
    t.post(1.0, 1.0);
    t.post(2.0, 1.0);
    t.endScope(); // child A: 3ns
    t.beginScope(false);
    t.post(4.0, 1.0);
    t.endScope(); // child B: 4ns
    t.endScope();
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 4.0);
    EXPECT_DOUBLE_EQ(t.queryCost().energyPj, 3.0);
}

TEST(Timing, SequentialOfParallelScopes)
{
    // A query stream: each query is a parallel fan-out; queries add up.
    TimingEngine t;
    t.beginScope(false);
    for (int q = 0; q < 3; ++q) {
        t.beginScope(true);
        t.post(2.0, 1.0);
        t.post(6.0, 1.0);
        t.endScope();
    }
    t.endScope();
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 18.0);
    EXPECT_DOUBLE_EQ(t.queryCost().energyPj, 6.0);
}

TEST(Timing, PowerSemantics)
{
    // Serializing the same work stretches latency, keeps energy:
    // that is exactly the paper's cam-power trade-off.
    TimingEngine par;
    par.beginScope(true);
    for (int i = 0; i < 8; ++i)
        par.post(2.0, 3.0);
    par.endScope();

    TimingEngine seq;
    seq.beginScope(false);
    for (int i = 0; i < 8; ++i)
        seq.post(2.0, 3.0);
    seq.endScope();

    EXPECT_DOUBLE_EQ(par.queryCost().energyPj, seq.queryCost().energyPj);
    EXPECT_DOUBLE_EQ(seq.queryCost().latencyNs,
                     8.0 * par.queryCost().latencyNs);
}

TEST(Timing, SetupAndQueryPhasesSeparate)
{
    TimingEngine t;
    t.beginScope(false);
    t.setPhase(TimingEngine::Phase::Setup);
    t.post(100.0, 50.0);
    t.setPhase(TimingEngine::Phase::Query);
    t.post(1.0, 2.0);
    t.endScope();
    EXPECT_DOUBLE_EQ(t.setupCost().latencyNs, 100.0);
    EXPECT_DOUBLE_EQ(t.setupCost().energyPj, 50.0);
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 1.0);
    EXPECT_DOUBLE_EQ(t.queryCost().energyPj, 2.0);
}

TEST(Timing, TopLevelPostsAccumulate)
{
    TimingEngine t;
    t.post(1.5, 2.5);
    t.post(1.5, 2.5);
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 3.0);
    EXPECT_DOUBLE_EQ(t.queryCost().energyPj, 5.0);
}

TEST(Timing, ResetClearsEverything)
{
    TimingEngine t;
    t.post(1.0, 1.0);
    t.reset();
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 0.0);
    EXPECT_DOUBLE_EQ(t.queryCost().energyPj, 0.0);
    EXPECT_EQ(t.depth(), 0u);
}

TEST(Timing, UnbalancedEndScopeAsserts)
{
    TimingEngine t;
    EXPECT_THROW(t.endScope(), InternalError);
}

TEST(Timing, NegativeCostAsserts)
{
    TimingEngine t;
    EXPECT_THROW(t.post(-1.0, 0.0), InternalError);
}

TEST(PerfReport, DerivedMetrics)
{
    PerfReport report;
    report.queryLatencyNs = 2000.0; // 2 us
    report.queryEnergyPj = 4000.0;  // 4 nJ
    // pJ/ns == mW
    EXPECT_DOUBLE_EQ(report.avgPowerMw(), 2.0);
    // EDP = 4 nJ * 2e-6 s = 8e-6 nJ*s
    EXPECT_NEAR(report.edpNanoJouleSeconds(), 8e-6, 1e-12);
    report.subarraysAllocated = 10;
    report.subarraysUsed = 5;
    EXPECT_DOUBLE_EQ(report.utilization(), 0.5);
    EXPECT_FALSE(report.str().empty());
}

TEST(PerfReport, ZeroLatencySafe)
{
    PerfReport report;
    EXPECT_DOUBLE_EQ(report.avgPowerMw(), 0.0);
    EXPECT_DOUBLE_EQ(report.utilization(), 0.0);
}

TEST(Timing, ResetQueryTotalsKeepsSetup)
{
    TimingEngine t;
    t.setPhase(TimingEngine::Phase::Setup);
    t.post(100.0, 50.0);
    t.setPhase(TimingEngine::Phase::Query);
    t.post(10.0, 5.0);
    EXPECT_DOUBLE_EQ(t.setupCost().latencyNs, 100.0);
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 10.0);

    t.resetQueryTotals();
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 0.0);
    EXPECT_DOUBLE_EQ(t.queryCost().energyPj, 0.0);
    EXPECT_DOUBLE_EQ(t.setupCost().latencyNs, 100.0);
    EXPECT_DOUBLE_EQ(t.setupCost().energyPj, 50.0);
}

TEST(Timing, ResetQueryTotalsWithOpenScopeAsserts)
{
    TimingEngine t;
    t.beginScope(/*parallel=*/false);
    EXPECT_THROW(t.resetQueryTotals(), InternalError);
}

TEST(PerfReport, PerQueryAggregatesGuardZeroQueries)
{
    // Empty-query reports (setup-only sessions, degenerate kernels)
    // must never produce inf/nan in reports or their JSON form.
    PerfReport report;
    report.setupLatencyNs = 500.0;
    EXPECT_DOUBLE_EQ(report.avgQueryLatencyNs(), 0.0);
    EXPECT_DOUBLE_EQ(report.avgQueryEnergyPj(), 0.0);
    EXPECT_DOUBLE_EQ(report.amortizedLatencyNs(), 0.0);
    EXPECT_DOUBLE_EQ(report.amortizedEnergyPj(), 0.0);
    EXPECT_DOUBLE_EQ(report.avgPowerMw(), 0.0);

    std::string json = report.toJson().dump(2);
    EXPECT_EQ(json.find("inf"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    // Round-trips through the JSON parser (inf/nan would not).
    JsonValue parsed = parseJson(json);
    EXPECT_DOUBLE_EQ(parsed.getNumber("setup_latency_ns", -1.0), 500.0);
    EXPECT_DOUBLE_EQ(parsed.getNumber("amortized_latency_ns", -1.0), 0.0);
}

TEST(PerfReport, BatchAggregates)
{
    PerfReport report;
    report.setupLatencyNs = 640.0;
    report.setupEnergyPj = 320.0;
    report.queryLatencyNs = 160.0;
    report.queryEnergyPj = 80.0;
    report.queriesServed = 16;
    EXPECT_DOUBLE_EQ(report.avgQueryLatencyNs(), 10.0);
    EXPECT_DOUBLE_EQ(report.avgQueryEnergyPj(), 5.0);
    EXPECT_DOUBLE_EQ(report.amortizedLatencyNs(), 50.0);
    EXPECT_DOUBLE_EQ(report.amortizedEnergyPj(), 25.0);
    // The one-line summary mentions the batch.
    EXPECT_NE(report.str().find("queries: 16"), std::string::npos);
}

TEST(PerfReport, AddFullRunTakesResourceMaxima)
{
    // Heterogeneous runs folded into one aggregate must report the
    // high-water marks, not the last run's snapshot -- a small final
    // run overwriting subarraysUsed/Allocated would misreport
    // utilization().
    PerfReport big;
    big.subarraysUsed = 6;
    big.subarraysAllocated = 8;
    big.banksUsed = 2;
    PerfReport small;
    small.subarraysUsed = 1;
    small.subarraysAllocated = 2;
    small.banksUsed = 1;

    PerfReport aggregate;
    aggregate.addFullRun(big);
    aggregate.addFullRun(small);
    EXPECT_EQ(aggregate.subarraysUsed, 6);
    EXPECT_EQ(aggregate.subarraysAllocated, 8);
    EXPECT_EQ(aggregate.banksUsed, 2);
    EXPECT_DOUBLE_EQ(aggregate.utilization(), 6.0 / 8.0);
    // Order independence: the maxima do not depend on which run came
    // last.
    PerfReport reversed;
    reversed.addFullRun(small);
    reversed.addFullRun(big);
    EXPECT_EQ(reversed.subarraysUsed, aggregate.subarraysUsed);
    EXPECT_EQ(reversed.subarraysAllocated, aggregate.subarraysAllocated);
    EXPECT_EQ(reversed.banksUsed, aggregate.banksUsed);
}

TEST(FusedWindow, CoverageMinFoldsIntoReport)
{
    // A degraded shard result folded into a fused window must never be
    // reported as full coverage.
    FusedWindow window;
    window.k = 3;
    PerfReport full;
    full.queryLatencyNs = 10.0;
    PerfReport degraded = full;
    degraded.coverage = 0.5;
    window.addQueryReport(full);
    window.addQueryReport(degraded);
    window.addQueryReport(full);
    EXPECT_DOUBLE_EQ(window.coverage, 0.5);

    PerfReport setup;
    PerfReport report = window.toReport(setup);
    EXPECT_DOUBLE_EQ(report.coverage, 0.5);
    // The rendered JSON carries it too (only emitted when < 1.0).
    EXPECT_NE(report.toJson().dump(2).find("coverage"),
              std::string::npos);
    // A fully-covered window stays at the default and keeps its JSON
    // byte-identical to pre-coverage builds.
    FusedWindow clean;
    clean.k = 1;
    clean.addQueryReport(full);
    PerfReport clean_report = clean.toReport(setup);
    EXPECT_DOUBLE_EQ(clean_report.coverage, 1.0);
    EXPECT_EQ(clean_report.toJson().dump(2).find("coverage"),
              std::string::npos);
}

TEST(FusedWindow, UnderFilledWindowReportsFoldedCount)
{
    // An aborted/under-filled window rendering the declared width k
    // would silently deflate every per-query average; the report must
    // describe the queries actually folded.
    FusedWindow window;
    window.k = 8;
    PerfReport query;
    query.queryLatencyNs = 10.0;
    query.queryEnergyPj = 4.0;
    window.addQueryReport(query);
    window.addQueryReport(query);

    PerfReport setup;
    PerfReport report = window.toReport(setup);
    EXPECT_EQ(report.queriesServed, 2);
    EXPECT_EQ(report.fusedBatchK, 2);
    EXPECT_DOUBLE_EQ(report.avgQueryLatencyNs(), 10.0);
    EXPECT_DOUBLE_EQ(report.avgQueryEnergyPj(), 4.0);
}
