/** @file Timing-engine scope semantics tests. */

#include <gtest/gtest.h>

#include "sim/Timing.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::sim;

TEST(Timing, SequentialScopeSumsLatency)
{
    TimingEngine t;
    t.beginScope(false);
    t.post(3.0, 1.0);
    t.post(4.0, 2.0);
    t.endScope();
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 7.0);
    EXPECT_DOUBLE_EQ(t.queryCost().energyPj, 3.0);
}

TEST(Timing, ParallelScopeTakesMaxLatencySumsEnergy)
{
    TimingEngine t;
    t.beginScope(true);
    t.post(3.0, 1.0);
    t.post(5.0, 2.0);
    t.post(4.0, 4.0);
    t.endScope();
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 5.0);
    EXPECT_DOUBLE_EQ(t.queryCost().energyPj, 7.0);
}

TEST(Timing, NestedScopesCombineCorrectly)
{
    // parallel over 2 sequential children: latency = max(sum, sum).
    TimingEngine t;
    t.beginScope(true);
    t.beginScope(false);
    t.post(1.0, 1.0);
    t.post(2.0, 1.0);
    t.endScope(); // child A: 3ns
    t.beginScope(false);
    t.post(4.0, 1.0);
    t.endScope(); // child B: 4ns
    t.endScope();
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 4.0);
    EXPECT_DOUBLE_EQ(t.queryCost().energyPj, 3.0);
}

TEST(Timing, SequentialOfParallelScopes)
{
    // A query stream: each query is a parallel fan-out; queries add up.
    TimingEngine t;
    t.beginScope(false);
    for (int q = 0; q < 3; ++q) {
        t.beginScope(true);
        t.post(2.0, 1.0);
        t.post(6.0, 1.0);
        t.endScope();
    }
    t.endScope();
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 18.0);
    EXPECT_DOUBLE_EQ(t.queryCost().energyPj, 6.0);
}

TEST(Timing, PowerSemantics)
{
    // Serializing the same work stretches latency, keeps energy:
    // that is exactly the paper's cam-power trade-off.
    TimingEngine par;
    par.beginScope(true);
    for (int i = 0; i < 8; ++i)
        par.post(2.0, 3.0);
    par.endScope();

    TimingEngine seq;
    seq.beginScope(false);
    for (int i = 0; i < 8; ++i)
        seq.post(2.0, 3.0);
    seq.endScope();

    EXPECT_DOUBLE_EQ(par.queryCost().energyPj, seq.queryCost().energyPj);
    EXPECT_DOUBLE_EQ(seq.queryCost().latencyNs,
                     8.0 * par.queryCost().latencyNs);
}

TEST(Timing, SetupAndQueryPhasesSeparate)
{
    TimingEngine t;
    t.beginScope(false);
    t.setPhase(TimingEngine::Phase::Setup);
    t.post(100.0, 50.0);
    t.setPhase(TimingEngine::Phase::Query);
    t.post(1.0, 2.0);
    t.endScope();
    EXPECT_DOUBLE_EQ(t.setupCost().latencyNs, 100.0);
    EXPECT_DOUBLE_EQ(t.setupCost().energyPj, 50.0);
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 1.0);
    EXPECT_DOUBLE_EQ(t.queryCost().energyPj, 2.0);
}

TEST(Timing, TopLevelPostsAccumulate)
{
    TimingEngine t;
    t.post(1.5, 2.5);
    t.post(1.5, 2.5);
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 3.0);
    EXPECT_DOUBLE_EQ(t.queryCost().energyPj, 5.0);
}

TEST(Timing, ResetClearsEverything)
{
    TimingEngine t;
    t.post(1.0, 1.0);
    t.reset();
    EXPECT_DOUBLE_EQ(t.queryCost().latencyNs, 0.0);
    EXPECT_DOUBLE_EQ(t.queryCost().energyPj, 0.0);
    EXPECT_EQ(t.depth(), 0u);
}

TEST(Timing, UnbalancedEndScopeAsserts)
{
    TimingEngine t;
    EXPECT_THROW(t.endScope(), InternalError);
}

TEST(Timing, NegativeCostAsserts)
{
    TimingEngine t;
    EXPECT_THROW(t.post(-1.0, 0.0), InternalError);
}

TEST(PerfReport, DerivedMetrics)
{
    PerfReport report;
    report.queryLatencyNs = 2000.0; // 2 us
    report.queryEnergyPj = 4000.0;  // 4 nJ
    // pJ/ns == mW
    EXPECT_DOUBLE_EQ(report.avgPowerMw(), 2.0);
    // EDP = 4 nJ * 2e-6 s = 8e-6 nJ*s
    EXPECT_NEAR(report.edpNanoJouleSeconds(), 8e-6, 1e-12);
    report.subarraysAllocated = 10;
    report.subarraysUsed = 5;
    EXPECT_DOUBLE_EQ(report.utilization(), 0.5);
    EXPECT_FALSE(report.str().empty());
}

TEST(PerfReport, ZeroLatencySafe)
{
    PerfReport report;
    EXPECT_DOUBLE_EQ(report.avgPowerMw(), 0.0);
    EXPECT_DOUBLE_EQ(report.utilization(), 0.0);
}
