/** @file Energy-breakdown accounting tests. */

#include <gtest/gtest.h>

#include "apps/Workloads.h"
#include "arch/TechModel.h"
#include "core/Compiler.h"
#include "support/Rng.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;
using c4cam::arch::SearchKind;
using c4cam::arch::TechModel;

TEST(EnergyBreakdown, ComponentsSumToTotal)
{
    TechModel t(arch::CamDeviceType::Tcam, 1);
    for (int rows : {16, 256}) {
        for (int cols : {16, 256}) {
            auto split = t.searchEnergyBreakdown(rows, rows, cols,
                                                 SearchKind::Best);
            EXPECT_DOUBLE_EQ(split.total(),
                             t.searchEnergyPj(rows, rows, cols,
                                              SearchKind::Best));
            EXPECT_GT(split.cellPj, 0.0);
            EXPECT_GT(split.sensePj, 0.0);
            EXPECT_GT(split.driverPj, 0.0);
        }
    }
}

TEST(EnergyBreakdown, SelectiveSearchOnlyCutsSensing)
{
    TechModel t(arch::CamDeviceType::Tcam, 1);
    auto full = t.searchEnergyBreakdown(64, 64, 32, SearchKind::Best);
    auto selective =
        t.searchEnergyBreakdown(64, 10, 32, SearchKind::Best);
    EXPECT_DOUBLE_EQ(full.cellPj, selective.cellPj);
    EXPECT_DOUBLE_EQ(full.driverPj, selective.driverPj);
    EXPECT_GT(full.sensePj, selective.sensePj);
}

TEST(EnergyBreakdown, DeviceReportSumsExactly)
{
    // For compiled modules every query joule lands in exactly one
    // bucket: cell + sense + drive + merge == queryEnergyPj.
    Rng rng(5);
    std::vector<std::vector<float>> stored(8,
                                           std::vector<float>(128));
    for (auto &row : stored)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    std::vector<std::vector<float>> queries = {stored[1], stored[4]};

    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(2, 8, 128, 1));
    auto result = kernel.run({rt::Buffer::fromMatrix(queries),
                              rt::Buffer::fromMatrix(stored)});
    const sim::PerfReport &perf = result.perf;
    double sum = perf.cellEnergyPj + perf.senseEnergyPj +
                 perf.driveEnergyPj + perf.mergeEnergyPj;
    EXPECT_NEAR(sum, perf.queryEnergyPj, perf.queryEnergyPj * 1e-9);
}

TEST(EnergyBreakdown, SenseShareFallsWithColumns)
{
    // The Fig. 7b explanation: larger C -> fewer subarrays -> fewer
    // sense amplifiers per query -> the peripheral (sense) share of
    // energy shrinks while the cell share grows.
    Rng rng(6);
    std::vector<std::vector<float>> stored(8,
                                           std::vector<float>(1024));
    for (auto &row : stored)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    std::vector<std::vector<float>> queries = {stored[0]};

    double prev_share = 1.0;
    for (int cols : {16, 32, 64, 128}) {
        core::CompilerOptions options;
        options.spec = ArchSpec::validationSetup(cols, 1);
        core::Compiler compiler(options);
        core::CompiledKernel kernel = compiler.compileTorchScript(
            apps::dotSimilaritySource(1, 8, 1024, 1));
        auto result = kernel.run({rt::Buffer::fromMatrix(queries),
                                  rt::Buffer::fromMatrix(stored)});
        double share = result.perf.senseEnergyPj /
                       result.perf.queryEnergyPj;
        EXPECT_LT(share, prev_share) << "cols " << cols;
        prev_share = share;
    }
}
