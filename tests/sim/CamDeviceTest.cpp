/** @file Hierarchical CAM device tests. */

#include <gtest/gtest.h>

#include <limits>

#include "sim/CamDevice.h"
#include "support/Error.h"

using namespace c4cam;
using namespace c4cam::sim;
using c4cam::arch::ArchSpec;
using c4cam::arch::SearchKind;

namespace {

ArchSpec
smallSpec()
{
    ArchSpec spec;
    spec.rows = 4;
    spec.cols = 4;
    spec.subarraysPerArray = 2;
    spec.arraysPerMat = 2;
    spec.matsPerBank = 2;
    return spec;
}

} // namespace

TEST(CamDevice, AllocationHierarchy)
{
    CamDevice device(smallSpec());
    Handle bank = device.allocBank(4, 4);
    Handle mat = device.allocMat(bank);
    Handle array = device.allocArray(mat);
    Handle sub0 = device.allocSubarray(array);
    Handle sub1 = device.allocSubarray(array);
    EXPECT_EQ(device.numBanks(), 1);
    EXPECT_EQ(device.numAllocatedSubarrays(), 2);
    EXPECT_EQ(device.subarrayAt(0, 0, 0, 0), sub0);
    EXPECT_EQ(device.subarrayAt(0, 0, 0, 1), sub1);
}

TEST(CamDevice, AllocationLimitsEnforced)
{
    CamDevice device(smallSpec());
    Handle bank = device.allocBank(4, 4);
    Handle mat = device.allocMat(bank);
    Handle array = device.allocArray(mat);
    device.allocSubarray(array);
    device.allocSubarray(array);
    EXPECT_THROW(device.allocSubarray(array), CompilerError); // max 2
    device.allocArray(mat);
    EXPECT_THROW(device.allocArray(mat), CompilerError); // max 2
    device.allocMat(bank);
    EXPECT_THROW(device.allocMat(bank), CompilerError); // max 2
}

TEST(CamDevice, FixedBankCountEnforced)
{
    ArchSpec spec = smallSpec();
    spec.numBanks = 1;
    CamDevice device(spec);
    device.allocBank(4, 4);
    EXPECT_THROW(device.allocBank(4, 4), CompilerError);
}

TEST(CamDevice, GeometryMustMatchSpec)
{
    CamDevice device(smallSpec());
    EXPECT_THROW(device.allocBank(8, 8), CompilerError);
}

TEST(CamDevice, WrongHandleKindRejected)
{
    CamDevice device(smallSpec());
    Handle bank = device.allocBank(4, 4);
    EXPECT_THROW(device.allocArray(bank), CompilerError);
    EXPECT_THROW(device.allocMat(999), CompilerError);
    EXPECT_THROW(device.subarrayAt(0, 0, 0, 0), CompilerError);
}

TEST(CamDevice, SearchReadRoundTrip)
{
    CamDevice device(smallSpec());
    Handle bank = device.allocBank(4, 4);
    Handle sub = device.allocSubarray(
        device.allocArray(device.allocMat(bank)));
    device.writeValue(sub, {{1, 0, 1, 0}, {0, 1, 0, 1}});
    device.search(sub, {1, 0, 1, 0}, SearchKind::Best, false, 0, 2);
    const SearchResult &r = device.read(sub);
    ASSERT_EQ(r.values.size(), 2u);
    EXPECT_FLOAT_EQ(r.values[0], 0.0f);
    EXPECT_FLOAT_EQ(r.values[1], 4.0f);
}

TEST(CamDevice, ReadBeforeSearchRejected)
{
    CamDevice device(smallSpec());
    Handle bank = device.allocBank(4, 4);
    Handle sub = device.allocSubarray(
        device.allocArray(device.allocMat(bank)));
    EXPECT_THROW(device.read(sub), CompilerError);
}

TEST(CamDevice, WritesAccountAsSetupSearchesAsQuery)
{
    CamDevice device(smallSpec());
    Handle bank = device.allocBank(4, 4);
    Handle sub = device.allocSubarray(
        device.allocArray(device.allocMat(bank)));
    device.writeValue(sub, {{1, 0, 1, 0}});
    PerfReport after_write = device.report();
    EXPECT_GT(after_write.setupLatencyNs, 0.0);
    EXPECT_DOUBLE_EQ(after_write.queryLatencyNs, 0.0);
    EXPECT_EQ(after_write.writes, 1);

    device.search(sub, {1, 0, 1, 0}, SearchKind::Best, false);
    PerfReport after_search = device.report();
    EXPECT_GT(after_search.queryLatencyNs, 0.0);
    EXPECT_GT(after_search.queryEnergyPj, 0.0);
    EXPECT_EQ(after_search.searches, 1);
    EXPECT_DOUBLE_EQ(after_search.setupLatencyNs,
                     after_write.setupLatencyNs);
}

TEST(CamDevice, SelectiveSearchUsesLessEnergy)
{
    ArchSpec spec = smallSpec();
    spec.rows = 32;
    CamDevice device(spec);
    Handle bank = device.allocBank(32, 4);
    Handle mat = device.allocMat(bank);
    Handle array = device.allocArray(mat);
    Handle full = device.allocSubarray(array);
    Handle windowed = device.allocSubarray(array);
    device.writeValue(full, {{1, 0, 1, 0}});
    device.writeValue(windowed, {{1, 0, 1, 0}});

    device.search(full, {1, 0, 1, 0}, SearchKind::Best, false);
    double full_energy = device.report().queryEnergyPj;
    device.search(windowed, {1, 0, 1, 0}, SearchKind::Best, false, 0, 4,
                  0.0, /*selective=*/true);
    double windowed_energy =
        device.report().queryEnergyPj - full_energy;
    EXPECT_LT(windowed_energy, full_energy);
}

TEST(CamDevice, ParallelScopesShapeLatency)
{
    CamDevice device(smallSpec());
    Handle bank = device.allocBank(4, 4);
    Handle array = device.allocArray(device.allocMat(bank));
    Handle a = device.allocSubarray(array);
    Handle b = device.allocSubarray(array);
    device.writeValue(a, {{1, 1, 1, 1}});
    device.writeValue(b, {{0, 0, 0, 0}});

    device.timing().beginScope(/*parallel=*/true);
    device.search(a, {1, 1, 1, 1}, SearchKind::Best, false);
    device.search(b, {1, 1, 1, 1}, SearchKind::Best, false);
    device.timing().endScope();
    double parallel_latency = device.report().queryLatencyNs;

    CamDevice device2(smallSpec());
    Handle bank2 = device2.allocBank(4, 4);
    Handle array2 = device2.allocArray(device2.allocMat(bank2));
    Handle c = device2.allocSubarray(array2);
    Handle d = device2.allocSubarray(array2);
    device2.writeValue(c, {{1, 1, 1, 1}});
    device2.writeValue(d, {{0, 0, 0, 0}});
    device2.timing().beginScope(/*parallel=*/false);
    device2.search(c, {1, 1, 1, 1}, SearchKind::Best, false);
    device2.search(d, {1, 1, 1, 1}, SearchKind::Best, false);
    device2.timing().endScope();
    double sequential_latency = device2.report().queryLatencyNs;

    EXPECT_DOUBLE_EQ(sequential_latency, 2.0 * parallel_latency);
    EXPECT_DOUBLE_EQ(device.report().queryEnergyPj,
                     device2.report().queryEnergyPj);
}

TEST(CamDevice, UtilizationTracking)
{
    CamDevice device(smallSpec());
    Handle bank = device.allocBank(4, 4);
    Handle array = device.allocArray(device.allocMat(bank));
    Handle used = device.allocSubarray(array);
    device.allocSubarray(array); // allocated but never written
    device.writeValue(used, {{1, 0, 1, 0}});
    PerfReport report = device.report();
    EXPECT_EQ(report.subarraysAllocated, 2);
    EXPECT_EQ(report.subarraysUsed, 1);
    EXPECT_DOUBLE_EQ(report.utilization(), 0.5);
}

TEST(CamDevice, MergeAndTransferCosts)
{
    CamDevice device(smallSpec());
    device.postMerge(16);
    device.postQueryTransfer(64);
    PerfReport report = device.report();
    EXPECT_GT(report.queryLatencyNs, 0.0);
    EXPECT_GT(report.queryEnergyPj, 0.0);
}

//
// Misuse paths: malformed handles and out-of-order data-path calls
// must surface located CompilerErrors, never UB or raw std exceptions.
//

TEST(CamDevice, RejectsInvalidHandles)
{
    CamDevice device(smallSpec());
    Handle bank = device.allocBank(4, 4);
    Handle sub =
        device.allocSubarray(device.allocArray(device.allocMat(bank)));
    (void)sub;

    // Negative and out-of-range handles are user errors, not UB.
    EXPECT_THROW(device.writeValue(-1, {{1, 1, 1, 1}}), CompilerError);
    EXPECT_THROW(device.writeValue(9999, {{1, 1, 1, 1}}), CompilerError);
    EXPECT_THROW(device.search(-7, {1, 1, 1, 1}, SearchKind::Best, false),
                 CompilerError);
    EXPECT_THROW(device.read(std::numeric_limits<Handle>::min()),
                 CompilerError);
    EXPECT_THROW(device.allocMat(-1), CompilerError);
    EXPECT_THROW(device.allocArray(1000), CompilerError);
    EXPECT_THROW(device.subarray(-1), CompilerError);
}

TEST(CamDevice, RejectsWrongHierarchyLevelHandles)
{
    CamDevice device(smallSpec());
    Handle bank = device.allocBank(4, 4);
    Handle mat = device.allocMat(bank);
    Handle array = device.allocArray(mat);
    Handle sub = device.allocSubarray(array);

    // A bank handle is not a subarray handle (and vice versa).
    EXPECT_THROW(device.writeValue(bank, {{1, 1, 1, 1}}), CompilerError);
    EXPECT_THROW(device.search(mat, {1}, SearchKind::Best, false),
                 CompilerError);
    EXPECT_THROW(device.allocMat(sub), CompilerError);
    EXPECT_THROW(device.allocSubarray(mat), CompilerError);
    // The diagnostic names both hierarchy levels.
    try {
        device.read(bank);
        FAIL() << "expected CompilerError";
    } catch (const CompilerError &err) {
        EXPECT_NE(std::string(err.what()).find("bank"), std::string::npos);
        EXPECT_NE(std::string(err.what()).find("subarray"),
                  std::string::npos);
    }
}

TEST(CamDevice, ReadBeforeSearchIsDiagnosed)
{
    CamDevice device(smallSpec());
    Handle bank = device.allocBank(4, 4);
    Handle sub =
        device.allocSubarray(device.allocArray(device.allocMat(bank)));
    device.writeValue(sub, {{1, 0, 1, 0}});

    try {
        device.read(sub);
        FAIL() << "expected CompilerError";
    } catch (const CompilerError &err) {
        // The error names the subarray and the missing search.
        std::string msg = err.what();
        EXPECT_NE(msg.find("subarray"), std::string::npos);
        EXPECT_NE(msg.find("search"), std::string::npos);
    }
    // After a search, read works.
    device.search(sub, {1, 0, 1, 0}, SearchKind::Best, false);
    EXPECT_EQ(device.read(sub).values.size(), 4u);
}

TEST(CamDevice, RejectsOutOfBoundsWrites)
{
    CamDevice device(smallSpec());
    Handle bank = device.allocBank(4, 4);
    Handle sub =
        device.allocSubarray(device.allocArray(device.allocMat(bank)));

    EXPECT_THROW(device.writeValue(sub, {{1, 1, 1, 1}}, /*row_offset=*/-1),
                 CompilerError);
    EXPECT_THROW(device.writeValue(sub, {{1}, {1}, {1}, {1}, {1}}),
                 CompilerError);
    EXPECT_THROW(device.writeValue(sub, {{1, 1, 1, 1, 1}}), CompilerError);
}

TEST(CamDevice, QueryWindowResetsQueryCostsOnly)
{
    CamDevice device(smallSpec());
    Handle bank = device.allocBank(4, 4);
    Handle sub =
        device.allocSubarray(device.allocArray(device.allocMat(bank)));
    device.writeValue(sub, {{1, 0, 1, 0}});
    device.search(sub, {1, 0, 1, 0}, SearchKind::Best, false);

    PerfReport first = device.report();
    EXPECT_GT(first.queryLatencyNs, 0.0);
    EXPECT_GT(first.setupLatencyNs, 0.0);
    EXPECT_EQ(first.searches, 1);

    device.beginQueryWindow();
    PerfReport cleared = device.report();
    EXPECT_EQ(cleared.queryLatencyNs, 0.0);
    EXPECT_EQ(cleared.queryEnergyPj, 0.0);
    EXPECT_EQ(cleared.searches, 0);
    // Setup costs, programmed data and allocations survive.
    EXPECT_EQ(cleared.setupLatencyNs, first.setupLatencyNs);
    EXPECT_EQ(cleared.writes, first.writes);
    EXPECT_EQ(cleared.subarraysUsed, first.subarraysUsed);

    // Stale results do not leak across windows: reading before the new
    // window's search is diagnosed exactly like on a fresh device.
    EXPECT_THROW(device.read(sub), CompilerError);

    // A second identical query window reproduces the first bit-for-bit.
    device.search(sub, {1, 0, 1, 0}, SearchKind::Best, false);
    PerfReport second = device.report();
    EXPECT_EQ(second.queryLatencyNs, first.queryLatencyNs);
    EXPECT_EQ(second.queryEnergyPj, first.queryEnergyPj);
    EXPECT_EQ(second.cellEnergyPj, first.cellEnergyPj);
    EXPECT_EQ(second.senseEnergyPj, first.senseEnergyPj);
}

TEST(CamDevice, CloneProgrammedReportsIdenticalSetup)
{
    CamDevice device(smallSpec());
    Handle bank = device.allocBank(4, 4);
    Handle sub =
        device.allocSubarray(device.allocArray(device.allocMat(bank)));
    device.writeValue(sub, {{1, 0, 1, 0}, {0, 1, 0, 1}});

    std::unique_ptr<CamDevice> clone = device.cloneProgrammed();
    PerfReport original = device.report();
    PerfReport copied = clone->report();
    // Setup accounting and allocation state are bit-identical...
    EXPECT_EQ(copied.setupLatencyNs, original.setupLatencyNs);
    EXPECT_EQ(copied.setupEnergyPj, original.setupEnergyPj);
    EXPECT_EQ(copied.writes, original.writes);
    EXPECT_EQ(copied.subarraysUsed, original.subarraysUsed);
    EXPECT_EQ(copied.subarraysAllocated, original.subarraysAllocated);
    EXPECT_EQ(copied.banksUsed, original.banksUsed);
    // ...and the clone starts inside a fresh query window.
    EXPECT_EQ(copied.queryLatencyNs, 0.0);
    EXPECT_EQ(copied.searches, 0);
}

TEST(CamDevice, CloneProgrammedIsIndependent)
{
    CamDevice device(smallSpec());
    Handle bank = device.allocBank(4, 4);
    Handle sub =
        device.allocSubarray(device.allocArray(device.allocMat(bank)));
    device.writeValue(sub, {{1, 0, 1, 0}});

    std::unique_ptr<CamDevice> clone = device.cloneProgrammed();

    // Handle numbering carries over: the same handle addresses the
    // same (copied) subarray on the clone.
    clone->search(sub, {1, 0, 1, 0}, SearchKind::Best, false);
    const SearchResult &result = clone->read(sub);
    ASSERT_FALSE(result.matchedRows.empty());
    EXPECT_EQ(result.matchedRows[0], 0);

    // The original never saw that search.
    EXPECT_EQ(device.report().searches, 0);
    EXPECT_THROW(device.read(sub), CompilerError);

    // Identical queries on original and clone cost exactly the same.
    device.search(sub, {1, 0, 1, 0}, SearchKind::Best, false);
    PerfReport a = device.report();
    PerfReport b = clone->report();
    EXPECT_EQ(a.queryLatencyNs, b.queryLatencyNs);
    EXPECT_EQ(a.queryEnergyPj, b.queryEnergyPj);
    EXPECT_EQ(a.searches, b.searches);

    // Writing to the clone does not touch the original's cells.
    clone->writeValue(sub, {{0, 0, 0, 0}});
    device.search(sub, {1, 0, 1, 0}, SearchKind::Best, false);
    EXPECT_EQ(device.read(sub).matchedRows[0], 0);
}

TEST(CamDevice, CloneProgrammedRejectsOpenScopes)
{
    CamDevice device(smallSpec());
    device.timing().beginScope(/*parallel=*/false);
    EXPECT_THROW(device.cloneProgrammed(), CompilerError);
    device.timing().endScope();
    EXPECT_NO_THROW(device.cloneProgrammed());
}

//
// Fused multi-query windows
//

namespace {

/** Program one subarray and return its handle. */
Handle
programOneSubarray(CamDevice &device)
{
    Handle bank = device.allocBank(4, 4);
    Handle mat = device.allocMat(bank);
    Handle array = device.allocArray(mat);
    Handle sub = device.allocSubarray(array);
    device.writeValue(sub, {{1, 0, 1, 0}, {0, 1, 0, 1}}, 0);
    return sub;
}

} // namespace

TEST(CamDevice, FusedWindowTotalsEqualSumOfQueryWindows)
{
    CamDevice device(smallSpec());
    Handle sub = programOneSubarray(device);

    // Serial reference: three windows, summed by hand.
    double lat = 0.0;
    double energy = 0.0;
    double drive = 0.0;
    double one_query_lat = 0.0;
    std::int64_t searches = 0;
    for (int q = 0; q < 3; ++q) {
        device.beginQueryWindow();
        device.search(sub, {1, 0, 1, 0}, SearchKind::Best, false);
        PerfReport report = device.report();
        lat += report.queryLatencyNs;
        energy += report.queryEnergyPj;
        drive += report.driveEnergyPj;
        searches += report.searches;
        one_query_lat = report.queryLatencyNs;
    }

    device.beginFusedWindow(3);
    EXPECT_TRUE(device.fusedWindowActive());
    std::vector<PerfReport> per_query;
    for (int q = 0; q < 3; ++q) {
        device.beginQueryWindow();
        device.search(sub, {1, 0, 1, 0}, SearchKind::Best, false);
        per_query.push_back(device.report());
    }
    FusedWindow fused = device.endFusedWindow();
    EXPECT_FALSE(device.fusedWindowActive());

    EXPECT_EQ(fused.k, 3);
    EXPECT_EQ(fused.queriesFolded, 3);
    EXPECT_EQ(fused.total.latencyNs, lat);
    EXPECT_EQ(fused.total.energyPj, energy);
    EXPECT_EQ(fused.driveEnergyPj, drive);
    EXPECT_EQ(fused.searches, searches);
    // The per-query windows inside the fused pass stay bit-identical
    // to serial windows.
    for (const PerfReport &report : per_query) {
        EXPECT_EQ(report.queryLatencyNs, one_query_lat);
        EXPECT_EQ(report.searches, 1);
    }
    // Amortized attribution divides by K.
    EXPECT_DOUBLE_EQ(fused.driveEnergyPerQueryPj(), drive / 3.0);
    EXPECT_DOUBLE_EQ(fused.latencyPerQueryNs(), lat / 3.0);
}

TEST(CamDevice, FusedWindowMisuseDiagnosed)
{
    CamDevice device(smallSpec());
    programOneSubarray(device);

    EXPECT_THROW(device.endFusedWindow(), CompilerError);
    EXPECT_THROW(device.beginFusedWindow(0), CompilerError);
    device.beginFusedWindow(2);
    // Fused windows do not nest.
    EXPECT_THROW(device.beginFusedWindow(2), CompilerError);
    // Cloning mid-fused-batch is rejected.
    EXPECT_THROW(device.cloneProgrammed(), CompilerError);
    // Served fewer queries than declared.
    device.beginQueryWindow();
    EXPECT_THROW(device.endFusedWindow(), CompilerError);
    // abortFusedWindow clears the poisoned state.
    device.abortFusedWindow();
    EXPECT_FALSE(device.fusedWindowActive());
    device.beginFusedWindow(1);
    device.beginQueryWindow();
    FusedWindow fused = device.endFusedWindow();
    EXPECT_EQ(fused.queriesFolded, 1);
}

TEST(CamDevice, FusedWindowToReportSetsAttribution)
{
    CamDevice device(smallSpec());
    Handle sub = programOneSubarray(device);
    PerfReport setup = device.report();

    device.beginFusedWindow(2);
    for (int q = 0; q < 2; ++q) {
        device.beginQueryWindow();
        device.search(sub, {1, 0, 1, 0}, SearchKind::Best, false);
    }
    FusedWindow fused = device.endFusedWindow();
    PerfReport report = fused.toReport(setup);
    EXPECT_EQ(report.fusedBatchK, 2);
    EXPECT_EQ(report.queriesServed, 2);
    EXPECT_EQ(report.queryLatencyNs, fused.total.latencyNs);
    EXPECT_EQ(report.setupLatencyNs, setup.setupLatencyNs);
    EXPECT_DOUBLE_EQ(report.fusedDriveEnergyPerQueryPj(),
                     fused.driveEnergyPj / 2.0);
}
