/** @file Regression locks on the paper's headline numbers.
 *
 * These tests pin the handful of end-to-end results the benches
 * report, so model/calibration drift is caught by `ctest` rather than
 * by eyeballing bench output.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "apps/Datasets.h"
#include "apps/GpuModel.h"
#include "dialects/AllDialects.h"
#include "apps/Hdc.h"
#include "apps/ManualBaseline.h"
#include "apps/Workloads.h"
#include "arch/TechModel.h"
#include "core/Compiler.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;

namespace {

/** Shared small HDC workload (8k dims like the paper, few queries). */
const apps::HdcWorkload &
hdcWorkload()
{
    static const apps::HdcWorkload workload = [] {
        apps::Dataset ds = apps::makeMnistLike(8, 4);
        return apps::encodeHdc(ds, 8192, 1, 4);
    }();
    return workload;
}

sim::PerfReport
runHdc(const ArchSpec &spec)
{
    const apps::HdcWorkload &w = hdcWorkload();
    core::CompilerOptions options;
    options.spec = spec;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(
            static_cast<std::int64_t>(w.queryHvs.size()), w.numClasses,
            w.dimensions, 1));
    return kernel
        .run({rt::Buffer::fromMatrix(w.queryHvs),
              rt::Buffer::fromMatrix(w.classHvs)})
        .perf;
}

} // namespace

TEST(RegressionLock, SearchLatencyAnchors)
{
    // Paper §IV-A1: 860 ps @16 cols, 7.5 ns @256 cols.
    arch::TechModel t(arch::CamDeviceType::Tcam, 1);
    EXPECT_NEAR(t.searchLatencyNs(16), 0.86, 0.005);
    EXPECT_NEAR(t.searchLatencyNs(256), 7.50, 0.005);
}

TEST(RegressionLock, Fig7LatencyBand)
{
    // Per-query latency stays in the paper's 5-15 ns window and rises
    // with the column count.
    double prev = 0.0;
    for (int cols : {16, 32, 64, 128}) {
        sim::PerfReport perf =
            runHdc(ArchSpec::validationSetup(cols, 1));
        double per_query =
            perf.queryLatencyNs / double(hdcWorkload().queryHvs.size());
        EXPECT_GT(per_query, 4.0) << cols;
        EXPECT_LT(per_query, 15.0) << cols;
        EXPECT_GT(per_query, prev) << cols;
        prev = per_query;
    }
}

TEST(RegressionLock, Fig7EnergyBand)
{
    // Per-query energy in the paper's few-hundred-pJ band, falling
    // with the column count.
    double prev = 1e9;
    for (int cols : {16, 32, 64, 128}) {
        sim::PerfReport perf =
            runHdc(ArchSpec::validationSetup(cols, 1));
        double per_query =
            perf.queryEnergyPj / double(hdcWorkload().queryHvs.size());
        EXPECT_GT(per_query, 100.0) << cols;
        EXPECT_LT(per_query, 700.0) << cols;
        EXPECT_LT(per_query, prev) << cols;
        prev = per_query;
    }
}

TEST(RegressionLock, GpuComparisonRatios)
{
    // Paper §IV-B: 48x execution time, 46.8x energy. Lock a window.
    sim::PerfReport cam = runHdc(ArchSpec::validationSetup(32, 1));
    double queries = double(hdcWorkload().queryHvs.size());
    double scale = 10000.0 / queries;
    double cam_ns = cam.queryLatencyNs * scale;

    apps::GpuModel gpu;
    apps::GpuEstimate est = gpu.similarityKernel(10000, 10, 8192);
    double speedup = est.latencyNs / cam_ns;
    EXPECT_GT(speedup, 40.0);
    EXPECT_LT(speedup, 58.0);

    double cam_system_pj =
        cam.queryEnergyPj * scale +
        apps::GpuModel::cimSystemPowerW() * cam_ns * 1e3;
    double energy_gain = est.energyPj / cam_system_pj;
    EXPECT_GT(energy_gain, 39.0);
    EXPECT_LT(energy_gain, 56.0);
}

TEST(RegressionLock, ManualValidationDeviationSmall)
{
    // Paper Fig. 7: sub-6% deviations between C4CAM and the manual
    // design.
    const apps::HdcWorkload &w = hdcWorkload();
    ArchSpec spec = ArchSpec::validationSetup(32, 1);
    sim::PerfReport compiled = runHdc(spec);
    apps::ManualRunResult manual = apps::runManualHdc(
        w, spec, static_cast<int>(w.queryHvs.size()));
    double lat_dev = std::abs(compiled.queryLatencyNs -
                              manual.perf.queryLatencyNs) /
                     manual.perf.queryLatencyNs;
    double energy_dev = std::abs(compiled.queryEnergyPj -
                                 manual.perf.queryEnergyPj) /
                        manual.perf.queryEnergyPj;
    EXPECT_LT(lat_dev, 0.06);
    EXPECT_LT(energy_dev, 0.10);
}

TEST(RegressionLock, DensityLatencyRatioAt256)
{
    // Paper: cam-density at 256x256 runs ~23x longer than cam-base.
    sim::PerfReport base = runHdc(ArchSpec::dseSetup(256, OptTarget::Base));
    sim::PerfReport density =
        runHdc(ArchSpec::dseSetup(256, OptTarget::Density));
    double ratio = density.queryLatencyNs / base.queryLatencyNs;
    EXPECT_GT(ratio, 15.0);
    EXPECT_LT(ratio, 30.0);
}

TEST(RegressionLock, IsoCapacityLatencyGrowth)
{
    // Paper Fig. 9a: iso-capacity latency grows moderately with the
    // subarray size (58us -> 150us, i.e. ~2.6x).
    sim::PerfReport small =
        runHdc(ArchSpec::isoCapacitySetup(16, OptTarget::Base));
    sim::PerfReport large =
        runHdc(ArchSpec::isoCapacitySetup(256, OptTarget::Base));
    double growth = large.queryLatencyNs / small.queryLatencyNs;
    EXPECT_GT(growth, 1.5);
    EXPECT_LT(growth, 4.0);
}

TEST(RegressionLock, IsoCapacityDensityPowerCut)
{
    // Paper Fig. 9b: the density configs cut power substantially.
    sim::PerfReport base =
        runHdc(ArchSpec::isoCapacitySetup(32, OptTarget::Base));
    sim::PerfReport density =
        runHdc(ArchSpec::isoCapacitySetup(32, OptTarget::Density));
    sim::PerfReport both =
        runHdc(ArchSpec::isoCapacitySetup(32, OptTarget::PowerDensity));
    EXPECT_LT(density.avgPowerMw(), base.avgPowerMw() * 0.7);
    EXPECT_LT(both.avgPowerMw(), density.avgPowerMw());
}

TEST(RegressionLock, ArchSpecLoadsFromFile)
{
    // The shipped example specs parse and drive a compile.
    std::string path = "/tmp/c4cam_lock_spec.json";
    {
        std::ofstream out(path);
        out << ArchSpec::validationSetup(32, 1).toJson().dump(2);
    }
    ArchSpec spec = ArchSpec::fromFile(path);
    EXPECT_EQ(spec, ArchSpec::validationSetup(32, 1));
    std::remove(path.c_str());
}

TEST(RegressionLock, LoopsPathOptionWorks)
{
    // CompilerOptions{hostOnly, lowerToLoops} produces a module with
    // scf loops and identical results to the device path.
    const apps::HdcWorkload &w = hdcWorkload();
    std::string source = apps::dotSimilaritySource(
        static_cast<std::int64_t>(w.queryHvs.size()), w.numClasses,
        w.dimensions, 1);

    core::CompilerOptions loop_options;
    loop_options.spec = ArchSpec::validationSetup(32, 1);
    loop_options.hostOnly = true;
    loop_options.lowerToLoops = true;
    core::Compiler loops_compiler(loop_options);
    auto loops_kernel = loops_compiler.compileTorchScript(source);
    auto loops_result = loops_kernel.run(
        {rt::Buffer::fromMatrix(w.queryHvs),
         rt::Buffer::fromMatrix(w.classHvs)});

    core::CompilerOptions cam_options;
    cam_options.spec = ArchSpec::validationSetup(32, 1);
    core::Compiler cam_compiler(cam_options);
    auto cam_kernel = cam_compiler.compileTorchScript(source);
    auto cam_result =
        cam_kernel.run({rt::Buffer::fromMatrix(w.queryHvs),
                        rt::Buffer::fromMatrix(w.classHvs)});

    for (std::size_t q = 0; q < w.queryHvs.size(); ++q)
        EXPECT_EQ(loops_result.outputs[1].asBuffer()->atInt(
                      {static_cast<std::int64_t>(q), 0}),
                  cam_result.outputs[1].asBuffer()->atInt(
                      {static_cast<std::int64_t>(q), 0}));
}

TEST(RegressionLock, CrossbarDialectRegistered)
{
    ir::Context ctx;
    dialects::loadAllDialects(ctx);
    EXPECT_TRUE(ctx.isDialectLoaded("crossbar"));
    EXPECT_NE(ctx.lookupOp("crossbar.mvm"), nullptr);
    EXPECT_NE(ctx.lookupOp("crossbar.program_matrix"), nullptr);
}
