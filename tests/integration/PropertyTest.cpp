/** @file Parameterized property tests across configurations. */

#include <gtest/gtest.h>

#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "passes/CamMapping.h"
#include "support/Rng.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;

namespace {

/** Host argmin-of-hamming reference on +-1 data. */
std::vector<int>
hostTop1(const std::vector<std::vector<float>> &queries,
         const std::vector<std::vector<float>> &stored)
{
    std::vector<int> out;
    for (const auto &q : queries) {
        int best = 0;
        double best_dot = -1e18;
        for (std::size_t r = 0; r < stored.size(); ++r) {
            double dot = 0.0;
            for (std::size_t d = 0; d < q.size(); ++d)
                dot += double(q[d]) * stored[r][d];
            if (dot > best_dot) {
                best_dot = dot;
                best = static_cast<int>(r);
            }
        }
        out.push_back(best);
    }
    return out;
}

std::vector<std::vector<float>>
randomSigns(std::size_t rows, std::size_t dims, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> out(rows, std::vector<float>(dims));
    for (auto &row : out)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    return out;
}

} // namespace

/**
 * Property: for every subarray size and optimization target, the CAM
 * path returns the same nearest neighbor as the host reference, and
 * the timing accounts are internally consistent.
 */
class ConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, OptTarget>>
{};

TEST_P(ConfigSweep, CamEqualsHostAndAccountingConsistent)
{
    auto [size, target] = GetParam();
    ArchSpec spec = ArchSpec::dseSetup(size, target);

    const std::size_t rows = 12;
    const std::size_t dims = 256;
    auto stored = randomSigns(rows, dims, 1000 + size);
    auto queries = randomSigns(4, dims, 2000 + size);
    // Ensure at least one exact hit.
    queries[0] = stored[7];

    core::CompilerOptions options;
    options.spec = spec;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(4, rows, dims, 1));
    core::ExecutionResult result =
        kernel.run({rt::Buffer::fromMatrix(queries),
                    rt::Buffer::fromMatrix(stored)});

    auto reference = hostTop1(queries, stored);
    for (std::int64_t q = 0; q < 4; ++q)
        EXPECT_EQ(result.outputs[1].asBuffer()->atInt({q, 0}),
                  reference[static_cast<std::size_t>(q)])
            << "size " << size << " target " << toString(target)
            << " query " << q;
    EXPECT_EQ(result.outputs[1].asBuffer()->atInt({0, 0}), 7);

    // Accounting invariants.
    EXPECT_GT(result.perf.queryLatencyNs, 0.0);
    EXPECT_GT(result.perf.queryEnergyPj, 0.0);
    EXPECT_GT(result.perf.searches, 0);
    EXPECT_GE(result.perf.subarraysAllocated, result.perf.subarraysUsed);
    EXPECT_GT(result.perf.banksUsed, 0);

    // The mapping plan agrees with what actually ran.
    EXPECT_EQ(kernel.plan().physicalSubarrays,
              result.perf.subarraysUsed);
    EXPECT_EQ(kernel.plan().banks, result.perf.banksUsed);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndTargets, ConfigSweep,
    ::testing::Combine(::testing::Values(16, 32, 64, 128),
                       ::testing::Values(OptTarget::Base,
                                         OptTarget::Power,
                                         OptTarget::Density,
                                         OptTarget::PowerDensity)),
    [](const auto &info) {
        return "n" + std::to_string(std::get<0>(info.param)) + "_" +
               std::string(toString(std::get<1>(info.param)) ==
                                   std::string("power+density")
                               ? "powerdensity"
                               : toString(std::get<1>(info.param)));
    });

/**
 * Property: the mapping plan's closed forms satisfy their invariants
 * for arbitrary workload shapes.
 */
class PlanSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(PlanSweep, PlanInvariants)
{
    auto [size, n, d] = GetParam();
    for (OptTarget target : {OptTarget::Base, OptTarget::Density}) {
        ArchSpec spec = ArchSpec::dseSetup(size, target);
        auto plan = passes::MappingPlan::compute(spec, 7, n, d);

        // Tiles cover the data exactly.
        EXPECT_GE(plan.rowTiles * spec.rows, n);
        EXPECT_GE(plan.colTiles * spec.cols, d);
        EXPECT_LT((plan.rowTiles - 1) * spec.rows, n);
        EXPECT_LT((plan.colTiles - 1) * spec.cols, d);
        EXPECT_EQ(plan.logicalTiles, plan.rowTiles * plan.colTiles);

        // Physical subarrays cover all logical tiles.
        EXPECT_GE(plan.physicalSubarrays * plan.batchesPerSubarray,
                  plan.logicalTiles);
        // Batching never exceeds the row budget.
        EXPECT_LE(plan.batchesPerSubarray * plan.batchRows, spec.rows);
        // Banks cover all physical subarrays.
        EXPECT_GE(plan.banks * spec.subarraysPerBank(),
                  plan.physicalSubarrays);
        if (target == OptTarget::Base) {
            EXPECT_EQ(plan.batchesPerSubarray, 1);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlanSweep,
    ::testing::Combine(::testing::Values(16, 32, 64, 128, 256),
                       ::testing::Values(2, 10, 100, 5216),
                       ::testing::Values(64, 1024, 8192)),
    [](const auto &info) {
        return "s" + std::to_string(std::get<0>(info.param)) + "_n" +
               std::to_string(std::get<1>(info.param)) + "_d" +
               std::to_string(std::get<2>(info.param));
    });

/**
 * Property: latency ordering between targets holds for every size
 * (base <= power, base <= density+power).
 */
class TargetOrdering : public ::testing::TestWithParam<int>
{};

TEST_P(TargetOrdering, PowerConfigsAreSlower)
{
    int size = GetParam();
    auto stored = randomSigns(10, 512, 42);
    auto queries = randomSigns(2, 512, 43);

    auto run = [&](OptTarget target) {
        core::CompilerOptions options;
        options.spec = ArchSpec::dseSetup(size, target);
        core::Compiler compiler(options);
        auto kernel = compiler.compileTorchScript(
            apps::dotSimilaritySource(2, 10, 512, 1));
        return kernel
            .run({rt::Buffer::fromMatrix(queries),
                  rt::Buffer::fromMatrix(stored)})
            .perf;
    };

    auto base = run(OptTarget::Base);
    auto power = run(OptTarget::Power);
    EXPECT_GE(power.queryLatencyNs, base.queryLatencyNs);
    EXPECT_LE(power.avgPowerMw(), base.avgPowerMw() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TargetOrdering,
                         ::testing::Values(16, 32, 64, 128));
