/** @file Parameterized property tests across configurations. */

#include <gtest/gtest.h>

#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "passes/CamMapping.h"
#include "support/Rng.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;

namespace {

/** Host argmin-of-hamming reference on +-1 data. */
std::vector<int>
hostTop1(const std::vector<std::vector<float>> &queries,
         const std::vector<std::vector<float>> &stored)
{
    std::vector<int> out;
    for (const auto &q : queries) {
        int best = 0;
        double best_dot = -1e18;
        for (std::size_t r = 0; r < stored.size(); ++r) {
            double dot = 0.0;
            for (std::size_t d = 0; d < q.size(); ++d)
                dot += double(q[d]) * stored[r][d];
            if (dot > best_dot) {
                best_dot = dot;
                best = static_cast<int>(r);
            }
        }
        out.push_back(best);
    }
    return out;
}

std::vector<std::vector<float>>
randomSigns(std::size_t rows, std::size_t dims, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> out(rows, std::vector<float>(dims));
    for (auto &row : out)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    return out;
}

} // namespace

/**
 * Property: for every subarray size and optimization target, the CAM
 * path returns the same nearest neighbor as the host reference, and
 * the timing accounts are internally consistent.
 */
class ConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, OptTarget>>
{};

TEST_P(ConfigSweep, CamEqualsHostAndAccountingConsistent)
{
    auto [size, target] = GetParam();
    ArchSpec spec = ArchSpec::dseSetup(size, target);

    const std::size_t rows = 12;
    const std::size_t dims = 256;
    auto stored = randomSigns(rows, dims, 1000 + size);
    auto queries = randomSigns(4, dims, 2000 + size);
    // Ensure at least one exact hit.
    queries[0] = stored[7];

    core::CompilerOptions options;
    options.spec = spec;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(4, rows, dims, 1));
    core::ExecutionResult result =
        kernel.run({rt::Buffer::fromMatrix(queries),
                    rt::Buffer::fromMatrix(stored)});

    auto reference = hostTop1(queries, stored);
    for (std::int64_t q = 0; q < 4; ++q)
        EXPECT_EQ(result.outputs[1].asBuffer()->atInt({q, 0}),
                  reference[static_cast<std::size_t>(q)])
            << "size " << size << " target " << toString(target)
            << " query " << q;
    EXPECT_EQ(result.outputs[1].asBuffer()->atInt({0, 0}), 7);

    // Accounting invariants.
    EXPECT_GT(result.perf.queryLatencyNs, 0.0);
    EXPECT_GT(result.perf.queryEnergyPj, 0.0);
    EXPECT_GT(result.perf.searches, 0);
    EXPECT_GE(result.perf.subarraysAllocated, result.perf.subarraysUsed);
    EXPECT_GT(result.perf.banksUsed, 0);

    // The mapping plan agrees with what actually ran.
    EXPECT_EQ(kernel.plan().physicalSubarrays,
              result.perf.subarraysUsed);
    EXPECT_EQ(kernel.plan().banks, result.perf.banksUsed);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndTargets, ConfigSweep,
    ::testing::Combine(::testing::Values(16, 32, 64, 128),
                       ::testing::Values(OptTarget::Base,
                                         OptTarget::Power,
                                         OptTarget::Density,
                                         OptTarget::PowerDensity)),
    [](const auto &info) {
        return "n" + std::to_string(std::get<0>(info.param)) + "_" +
               std::string(toString(std::get<1>(info.param)) ==
                                   std::string("power+density")
                               ? "powerdensity"
                               : toString(std::get<1>(info.param)));
    });

/**
 * Property: the mapping plan's closed forms satisfy their invariants
 * for arbitrary workload shapes.
 */
class PlanSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(PlanSweep, PlanInvariants)
{
    auto [size, n, d] = GetParam();
    for (OptTarget target : {OptTarget::Base, OptTarget::Density}) {
        ArchSpec spec = ArchSpec::dseSetup(size, target);
        auto plan = passes::MappingPlan::compute(spec, 7, n, d);

        // Tiles cover the data exactly.
        EXPECT_GE(plan.rowTiles * spec.rows, n);
        EXPECT_GE(plan.colTiles * spec.cols, d);
        EXPECT_LT((plan.rowTiles - 1) * spec.rows, n);
        EXPECT_LT((plan.colTiles - 1) * spec.cols, d);
        EXPECT_EQ(plan.logicalTiles, plan.rowTiles * plan.colTiles);

        // Physical subarrays cover all logical tiles.
        EXPECT_GE(plan.physicalSubarrays * plan.batchesPerSubarray,
                  plan.logicalTiles);
        // Batching never exceeds the row budget.
        EXPECT_LE(plan.batchesPerSubarray * plan.batchRows, spec.rows);
        // Banks cover all physical subarrays.
        EXPECT_GE(plan.banks * spec.subarraysPerBank(),
                  plan.physicalSubarrays);
        if (target == OptTarget::Base) {
            EXPECT_EQ(plan.batchesPerSubarray, 1);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlanSweep,
    ::testing::Combine(::testing::Values(16, 32, 64, 128, 256),
                       ::testing::Values(2, 10, 100, 5216),
                       ::testing::Values(64, 1024, 8192)),
    [](const auto &info) {
        return "s" + std::to_string(std::get<0>(info.param)) + "_n" +
               std::to_string(std::get<1>(info.param)) + "_d" +
               std::to_string(std::get<2>(info.param));
    });

/**
 * Property: latency ordering between targets holds for every size
 * (base <= power, base <= density+power).
 */
class TargetOrdering : public ::testing::TestWithParam<int>
{};

TEST_P(TargetOrdering, PowerConfigsAreSlower)
{
    int size = GetParam();
    auto stored = randomSigns(10, 512, 42);
    auto queries = randomSigns(2, 512, 43);

    auto run = [&](OptTarget target) {
        core::CompilerOptions options;
        options.spec = ArchSpec::dseSetup(size, target);
        core::Compiler compiler(options);
        auto kernel = compiler.compileTorchScript(
            apps::dotSimilaritySource(2, 10, 512, 1));
        return kernel
            .run({rt::Buffer::fromMatrix(queries),
                  rt::Buffer::fromMatrix(stored)})
            .perf;
    };

    auto base = run(OptTarget::Base);
    auto power = run(OptTarget::Power);
    EXPECT_GE(power.queryLatencyNs, base.queryLatencyNs);
    EXPECT_LE(power.avgPowerMw(), base.avgPowerMw() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TargetOrdering,
                         ::testing::Values(16, 32, 64, 128));

/**
 * Property: fused-window accounting is conservative for random batch
 * widths and query mixes. For any K and any mix of repeated /
 * stored-row / random queries, runFusedBatch totals must equal the
 * sum of the serial query windows EXACTLY (fusion re-attributes cost,
 * it never creates or destroys any), and the amortized per-query
 * shares must multiply back to the totals.
 */
class FusedAccountingSweep : public ::testing::TestWithParam<int>
{};

TEST_P(FusedAccountingSweep, FusedTotalsEqualSerialSumForRandomMixes)
{
    const int trial = GetParam();
    Rng rng(7000 + static_cast<std::uint64_t>(trial));

    const std::int64_t rows = 4 + static_cast<std::int64_t>(
                                      rng.nextBelow(9)); // 4..12
    const std::int64_t dims = 32 * (1 + static_cast<std::int64_t>(
                                            rng.nextBelow(3))); // 32..96
    const int k = 1 + static_cast<int>(rng.nextBelow(6));       // 1..6

    auto stored = randomSigns(static_cast<std::size_t>(rows),
                              static_cast<std::size_t>(dims),
                              9000 + static_cast<std::uint64_t>(trial));
    auto stored_buf = rt::Buffer::fromMatrix(stored);

    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(1, rows, dims, 1));

    // Random query mix: stored rows, duplicates, fresh random rows.
    std::vector<std::vector<rt::BufferPtr>> queries;
    for (int q = 0; q < k; ++q) {
        std::vector<float> row;
        if (rng.nextBool(0.6)) {
            row = stored[rng.nextBelow(stored.size())];
        } else {
            row.resize(static_cast<std::size_t>(dims));
            for (auto &v : row)
                v = rng.nextBool() ? 1.0f : -1.0f;
        }
        queries.push_back({rt::Buffer::fromMatrix({row}), stored_buf});
    }

    core::ExecutionSession serial = kernel.createSession(queries[0]);
    std::vector<core::ExecutionResult> serial_results =
        serial.runBatch(queries);

    core::ExecutionSession fused_session =
        kernel.createSession(queries[0]);
    core::FusedBatchResult fused = fused_session.runFusedBatch(queries);

    ASSERT_EQ(fused.results.size(), static_cast<std::size_t>(k));
    EXPECT_EQ(fused.fused.k, k);
    EXPECT_EQ(fused.fused.queriesFolded, k);

    double lat = 0.0, energy = 0.0, cell = 0.0, sense = 0.0;
    double drive = 0.0, merge = 0.0;
    std::int64_t searches = 0;
    for (int q = 0; q < k; ++q) {
        const sim::PerfReport &s =
            serial_results[static_cast<std::size_t>(q)].perf;
        lat += s.queryLatencyNs;
        energy += s.queryEnergyPj;
        cell += s.cellEnergyPj;
        sense += s.senseEnergyPj;
        drive += s.driveEnergyPj;
        merge += s.mergeEnergyPj;
        searches += s.searches;
        // Per-query results inside the fused pass stay bit-identical
        // to serial serving.
        const sim::PerfReport &f =
            fused.results[static_cast<std::size_t>(q)].perf;
        EXPECT_EQ(f.queryLatencyNs, s.queryLatencyNs) << "query " << q;
        EXPECT_EQ(f.queryEnergyPj, s.queryEnergyPj) << "query " << q;
        EXPECT_EQ(f.searches, s.searches) << "query " << q;
        EXPECT_EQ(fused.results[static_cast<std::size_t>(q)]
                      .outputs[1]
                      .asBuffer()
                      ->toVector(),
                  serial_results[static_cast<std::size_t>(q)]
                      .outputs[1]
                      .asBuffer()
                      ->toVector())
            << "query " << q;
    }

    // Exact equality: the fused totals ARE the serial sum (the same
    // doubles folded in the same order), not an approximation of it.
    EXPECT_EQ(fused.fused.total.latencyNs, lat);
    EXPECT_EQ(fused.fused.total.energyPj, energy);
    EXPECT_EQ(fused.fused.cellEnergyPj, cell);
    EXPECT_EQ(fused.fused.senseEnergyPj, sense);
    EXPECT_EQ(fused.fused.driveEnergyPj, drive);
    EXPECT_EQ(fused.fused.mergeEnergyPj, merge);
    EXPECT_EQ(fused.fused.searches, searches);

    // Amortized per-query shares multiply back to the totals (one
    // rounding each way at most -- DOUBLE_EQ, not exact).
    const double dk = static_cast<double>(k);
    EXPECT_DOUBLE_EQ(fused.fused.latencyPerQueryNs() * dk, lat);
    EXPECT_DOUBLE_EQ(fused.fused.energyPerQueryPj() * dk, energy);
    EXPECT_DOUBLE_EQ(fused.fused.driveEnergyPerQueryPj() * dk, drive);

    // The rendered report carries the same conservation: query fields
    // are the fused totals, fusedBatchK is K, and the fused* share
    // accessors sum back to their components.
    const sim::PerfReport &report = fused.fusedReport;
    EXPECT_EQ(report.fusedBatchK, k);
    EXPECT_EQ(report.queriesServed, k);
    EXPECT_EQ(report.queryLatencyNs, lat);
    EXPECT_EQ(report.queryEnergyPj, energy);
    EXPECT_EQ(report.driveEnergyPj, drive);
    EXPECT_DOUBLE_EQ(report.fusedDriveEnergyPerQueryPj() * dk,
                     report.driveEnergyPj);
    EXPECT_DOUBLE_EQ(report.fusedSetupEnergyPerQueryPj() * dk,
                     report.setupEnergyPj);
    // Setup is the session's one-time cost, paid once, not once per
    // fused query.
    EXPECT_EQ(report.setupLatencyNs,
              fused_session.setupReport().setupLatencyNs);
    EXPECT_EQ(report.setupEnergyPj,
              fused_session.setupReport().setupEnergyPj);
}

TEST_P(FusedAccountingSweep, TrueFusedNeverExceedsSerialAndKeepsOutputs)
{
    // The flag-on counterpart: under sim::FusionModel::TrueFused the
    // fused pass drives each subarray once, so for any K >= 2 the
    // amortizable totals come in strictly below the serial sum while
    // sense/merge work, search counts and outputs stay exactly those
    // of serial serving. A K=1 "pass" has nothing to amortize and must
    // equal serial exactly.
    const int trial = GetParam();
    Rng rng(7000 + static_cast<std::uint64_t>(trial));

    const std::int64_t rows = 4 + static_cast<std::int64_t>(
                                      rng.nextBelow(9)); // 4..12
    const std::int64_t dims = 32 * (1 + static_cast<std::int64_t>(
                                            rng.nextBelow(3))); // 32..96
    const int k = 1 + static_cast<int>(rng.nextBelow(6));       // 1..6

    auto stored = randomSigns(static_cast<std::size_t>(rows),
                              static_cast<std::size_t>(dims),
                              9000 + static_cast<std::uint64_t>(trial));
    auto stored_buf = rt::Buffer::fromMatrix(stored);

    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    core::Compiler serial_compiler(options);
    core::CompiledKernel serial_kernel = serial_compiler.compileTorchScript(
        apps::dotSimilaritySource(1, rows, dims, 1));
    core::CompilerOptions fused_options = options;
    fused_options.fusionModel = sim::FusionModel::TrueFused;
    core::Compiler fused_compiler(fused_options);
    core::CompiledKernel fused_kernel = fused_compiler.compileTorchScript(
        apps::dotSimilaritySource(1, rows, dims, 1));

    // Same random query mix as the flag-off sweep (same draw order).
    std::vector<std::vector<rt::BufferPtr>> queries;
    for (int q = 0; q < k; ++q) {
        std::vector<float> row;
        if (rng.nextBool(0.6)) {
            row = stored[rng.nextBelow(stored.size())];
        } else {
            row.resize(static_cast<std::size_t>(dims));
            for (auto &v : row)
                v = rng.nextBool() ? 1.0f : -1.0f;
        }
        queries.push_back({rt::Buffer::fromMatrix({row}), stored_buf});
    }

    core::ExecutionSession serial = serial_kernel.createSession(queries[0]);
    std::vector<core::ExecutionResult> serial_results =
        serial.runBatch(queries);

    core::ExecutionSession fused_session =
        fused_kernel.createSession(queries[0]);
    core::FusedBatchResult fused = fused_session.runFusedBatch(queries);

    ASSERT_EQ(fused.results.size(), static_cast<std::size_t>(k));
    EXPECT_EQ(fused.fused.queriesFolded, k);

    double lat = 0.0, energy = 0.0, cell = 0.0, sense = 0.0;
    double drive = 0.0, merge = 0.0;
    std::int64_t searches = 0;
    for (int q = 0; q < k; ++q) {
        const sim::PerfReport &s =
            serial_results[static_cast<std::size_t>(q)].perf;
        lat += s.queryLatencyNs;
        energy += s.queryEnergyPj;
        cell += s.cellEnergyPj;
        sense += s.senseEnergyPj;
        drive += s.driveEnergyPj;
        merge += s.mergeEnergyPj;
        searches += s.searches;
        // Outputs stay bit-identical in every fusion model.
        EXPECT_EQ(fused.results[static_cast<std::size_t>(q)]
                      .outputs[1]
                      .asBuffer()
                      ->toVector(),
                  serial_results[static_cast<std::size_t>(q)]
                      .outputs[1]
                      .asBuffer()
                      ->toVector())
            << "query " << q;
    }

    // Non-amortizable components match serial exactly.
    EXPECT_EQ(fused.fused.senseEnergyPj, sense);
    EXPECT_EQ(fused.fused.mergeEnergyPj, merge);
    EXPECT_EQ(fused.fused.searches, searches);
    if (k >= 2) {
        // Amortizable components shrink -- strictly.
        EXPECT_LT(fused.fused.total.latencyNs, lat);
        EXPECT_LT(fused.fused.total.energyPj, energy);
        EXPECT_LT(fused.fused.cellEnergyPj, cell);
        EXPECT_LT(fused.fused.driveEnergyPj, drive);
    } else {
        // A single-query pass drives everything itself: exact serial.
        EXPECT_EQ(fused.fused.total.latencyNs, lat);
        EXPECT_EQ(fused.fused.total.energyPj, energy);
        EXPECT_EQ(fused.fused.cellEnergyPj, cell);
        EXPECT_EQ(fused.fused.driveEnergyPj, drive);
    }
    EXPECT_EQ(fused.fusedReport.fusedBatchK, k);
    EXPECT_EQ(fused.fusedReport.queriesServed, k);
}

INSTANTIATE_TEST_SUITE_P(RandomMixes, FusedAccountingSweep,
                         ::testing::Range(0, 8));
