/**
 * @file
 * Chaos differential tests: serving under injected faults must recover
 * to EXACTLY the fault-free answer or fail with the right type --
 * never a silently different result.
 *
 * The load-bearing property is the retry bit-identity contract:
 * transient faults fire at search entry, before any window state
 * mutates, so a retried query's outputs AND simulated PerfReport are
 * byte-for-byte what a fault-free run produces. Recovery costs host
 * wall-clock, never correctness. On top of that: permanent faults
 * quarantine their shard (circuit breaker), degraded serving answers
 * from the survivors with results explicitly marked partial, and
 * per-query deadlines shed with a typed error before any device work.
 */

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "apps/Workloads.h"
#include "core/AsyncServingEngine.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "core/ServingEngine.h"
#include "core/ShardedEngine.h"
#include "sim/FaultInjector.h"
#include "sim/Timing.h"
#include "support/Error.h"
#include "support/Rng.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;

namespace {

std::vector<std::vector<float>>
randomRows(std::int64_t n, std::int64_t d, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> rows(
        static_cast<std::size_t>(n),
        std::vector<float>(static_cast<std::size_t>(d)));
    for (auto &row : rows)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    return rows;
}

struct Workload
{
    core::CompilerOptions options;
    std::string source;
    core::CompiledKernel kernel;
    rt::BufferPtr storedBuf;
    std::vector<std::vector<rt::BufferPtr>> batches;
};

Workload
makeWorkload(std::int64_t rows, std::int64_t dims, int k, int queries,
             std::uint64_t seed)
{
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    std::string source = apps::dotSimilaritySource(1, rows, dims, k);
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(source);
    auto stored = randomRows(rows, dims, seed);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    std::vector<std::vector<rt::BufferPtr>> batches;
    for (int i = 0; i < queries; ++i)
        batches.push_back(
            {rt::Buffer::fromMatrix(
                 {stored[static_cast<std::size_t>(i) % stored.size()]}),
             stored_buf});
    return {std::move(options), std::move(source), std::move(kernel),
            std::move(stored_buf), std::move(batches)};
}

/** The differential itself: outputs and the simulated cost report,
 *  byte for byte. */
void
expectBitIdentical(const core::ExecutionResult &faulty,
                   const core::ExecutionResult &reference)
{
    ASSERT_EQ(faulty.outputs.size(), reference.outputs.size());
    for (std::size_t i = 0; i < faulty.outputs.size(); ++i)
        EXPECT_EQ(faulty.outputs[i].asBuffer()->toVector(),
                  reference.outputs[i].asBuffer()->toVector());
    EXPECT_EQ(faulty.perf.queryLatencyNs, reference.perf.queryLatencyNs);
    EXPECT_EQ(faulty.perf.queryEnergyPj, reference.perf.queryEnergyPj);
    EXPECT_EQ(faulty.perf.searches, reference.perf.searches);
    EXPECT_EQ(faulty.perf.coverage, reference.perf.coverage);
    EXPECT_EQ(faulty.partial, reference.partial);
}

} // namespace

TEST(ChaosDifferential, TransientRetryIsBitIdenticalToFaultFreeServing)
{
    Workload w = makeWorkload(8, 64, 1, 8, 311);
    core::ExecutionSession session = w.kernel.createSession(w.batches[0]);
    std::vector<core::ExecutionResult> serial = session.runBatch(w.batches);

    // One replica (deterministic device-0 search ordinals), two
    // scripted transients: the very first search, and ordinal 5 --
    // which lands either in a later query or inside the retry of an
    // earlier one; both must recover within the 3-attempt budget.
    sim::FaultSpec spec;
    sim::FaultRule rule;
    rule.kind = sim::FaultRule::Kind::Transient;
    rule.device = 0;
    rule.atSearch = 1;
    spec.rules.push_back(rule);
    rule.atSearch = 5;
    spec.rules.push_back(rule);
    auto injector = std::make_shared<sim::FaultInjector>(spec);

    auto engine = w.kernel.createServingEngine(w.batches[0], 1);
    core::RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.backoffUs = 0;
    engine->setRetryPolicy(policy);
    engine->attachFaultInjector(injector);

    std::vector<core::ExecutionResult> results =
        engine->runBatch(w.batches);
    ASSERT_EQ(results.size(), serial.size());
    for (std::size_t q = 0; q < results.size(); ++q)
        expectBitIdentical(results[q], serial[q]);

    // Both scripted faults fired and cost exactly one re-serve each.
    EXPECT_EQ(injector->stats().transientsFired, 2);
    core::ServingStats stats = engine->stats();
    EXPECT_EQ(stats.retries, 2);
    EXPECT_EQ(stats.queriesServed,
              static_cast<std::int64_t>(w.batches.size()));
    EXPECT_EQ(engine->retriesAttempted(), 2);
}

TEST(ChaosDifferential, PermanentFaultIsNeverRetried)
{
    Workload w = makeWorkload(8, 64, 1, 2, 313);
    sim::FaultSpec spec;
    sim::FaultRule rule;
    rule.kind = sim::FaultRule::Kind::Kill;
    rule.device = 0;
    rule.afterSearch = 0; // dead from the first search
    spec.rules.push_back(rule);
    auto injector = std::make_shared<sim::FaultInjector>(spec);

    auto engine = w.kernel.createServingEngine(w.batches[0], 1);
    core::RetryPolicy policy;
    policy.maxAttempts = 5;
    engine->setRetryPolicy(policy);
    engine->attachFaultInjector(injector);

    EXPECT_THROW(engine->serve(w.batches[0]), ExecutionError);
    // A dead device is not retried: one attempt, zero retries, and the
    // injector saw exactly one search despite the 5-attempt budget.
    EXPECT_EQ(engine->stats().retries, 0);
    EXPECT_EQ(injector->stats().searchesObserved, 1);
    EXPECT_EQ(injector->stats().killsFired, 1);
}

TEST(ChaosDifferential, AsyncShardedTransientChaosCompletesBitIdentical)
{
    // The acceptance shape: ShardedEngine (M=4) behind the async front
    // end, seeded random transient faults, every query completes via
    // retries and every output is bit-identical to the single-device
    // serial run (perf compared against a fault-free sharded engine --
    // shard aggregation is intentionally not the big device's report).
    Workload w = makeWorkload(8, 64, 1, 64, 317);
    core::ExecutionSession session = w.kernel.createSession(w.batches[0]);
    std::vector<core::ExecutionResult> serial = session.runBatch(w.batches);

    core::ShardedEngineOptions clean;
    clean.shards = 4;
    core::ShardedEngine reference(w.options, w.source, w.batches[0],
                                  clean);
    std::vector<core::ExecutionResult> sharded_ref;
    for (const auto &batch : w.batches)
        sharded_ref.push_back(reference.serve(batch));

    sim::FaultSpec spec;
    spec.seed = 424242;
    spec.transientRate = 0.05;
    auto injector = std::make_shared<sim::FaultInjector>(spec);

    core::ShardedEngineOptions sharding;
    sharding.shards = 4;
    sharding.retryPolicy.maxAttempts = 8;
    sharding.retryPolicy.backoffUs = 0;
    sharding.faultInjector = injector;
    auto engine = std::make_unique<core::ShardedEngine>(
        w.options, w.source, w.batches[0], sharding);
    core::ShardedEngine *sharded = engine.get();
    core::AsyncServingEngine async(std::move(engine));

    auto futures = async.submitBatch(w.batches);
    for (std::size_t q = 0; q < futures.size(); ++q) {
        core::ExecutionResult r = futures[q].get(); // nothing may throw
        expectBitIdentical(r, sharded_ref[q]);
        EXPECT_EQ(r.outputs[1].asBuffer()->toVector(),
                  serial[q].outputs[1].asBuffer()->toVector());
        EXPECT_FALSE(r.partial);
    }
    async.drain();

    // At 5% per search the run saw real faults (P[none] ~ 0.95^500),
    // and recovery left no shard quarantined or query degraded.
    EXPECT_GT(injector->stats().transientsFired, 0);
    core::ServingStats stats = sharded->stats();
    EXPECT_EQ(stats.quarantines, 0);
    EXPECT_EQ(stats.degradedServes, 0);
    core::AsyncServingStats astats = async.stats();
    EXPECT_EQ(astats.completed,
              static_cast<std::int64_t>(w.batches.size()));
    EXPECT_EQ(astats.failed, 0);
    // Every fired transient was absorbed by a shard-level retry or by
    // the fused-window fallback path; both are visible in stats.
    EXPECT_GT(stats.retries + astats.fallbackRetries, 0);
}

TEST(ChaosDifferential, KilledShardQuarantinesAndServesDegradedTopK)
{
    const std::int64_t rows = 8;
    Workload w = makeWorkload(rows, 64, 1, 10, 331);
    core::ExecutionSession session = w.kernel.createSession(w.batches[0]);
    std::vector<core::ExecutionResult> serial = session.runBatch(w.batches);

    // Probe how many searches one serve costs per shard device, so the
    // kill can be scripted to let exactly two serves succeed first.
    std::int64_t searches_per_shard = 0;
    {
        auto probe = std::make_shared<sim::FaultInjector>(sim::FaultSpec{});
        core::ShardedEngineOptions opts;
        opts.shards = 4;
        opts.faultInjector = probe;
        core::ShardedEngine engine(w.options, w.source, w.batches[0],
                                   opts);
        engine.serve(w.batches[0]);
        std::int64_t total = probe->stats().searchesObserved;
        ASSERT_GT(total, 0);
        ASSERT_EQ(total % 4, 0) << "equal slices must search equally";
        searches_per_shard = total / 4;
    }

    // Device 0 is shard 0's replica (registration is creation-ordered:
    // shards in slice order): it survives two serves, then dies.
    sim::FaultSpec spec;
    sim::FaultRule rule;
    rule.kind = sim::FaultRule::Kind::Kill;
    rule.device = 0;
    rule.afterSearch = 2 * searches_per_shard;
    spec.rules.push_back(rule);
    auto injector = std::make_shared<sim::FaultInjector>(spec);

    core::ShardedEngineOptions sharding;
    sharding.shards = 4;
    sharding.allowDegraded = true;
    sharding.quarantineThreshold = 1;
    sharding.cooldownMs = 60'000; // no probe during this test
    sharding.faultInjector = injector;
    core::ShardedEngine engine(w.options, w.source, w.batches[0],
                               sharding);

    for (std::size_t q = 0; q < w.batches.size(); ++q) {
        core::ExecutionResult r = engine.serve(w.batches[q]);
        if (q < 2) {
            // Before the kill: full-coverage serving, bit-identical
            // outputs.
            EXPECT_FALSE(r.partial) << "query " << q;
            EXPECT_EQ(r.perf.coverage, 1.0);
            EXPECT_EQ(r.outputs[1].asBuffer()->toVector(),
                      serial[q].outputs[1].asBuffer()->toVector());
        } else {
            // From the serve that observed the death on: answers come
            // from the three survivors, explicitly marked partial with
            // the covered row fraction, and never point into the dead
            // shard's slice (rows [0, 2) of the 4-way split).
            EXPECT_TRUE(r.partial) << "query " << q;
            EXPECT_EQ(r.perf.coverage, 0.75);
            std::int64_t top = r.outputs[1].asBuffer()->atInt({0, 0});
            EXPECT_GE(top, 2) << "query " << q;
        }
    }

    EXPECT_TRUE(engine.shardHealth(0).quarantined);
    EXPECT_FALSE(engine.shardHealth(1).quarantined);
    core::ServingStats stats = engine.stats();
    EXPECT_EQ(stats.quarantines, 1);
    EXPECT_EQ(stats.degradedServes,
              static_cast<std::int64_t>(w.batches.size()) - 2);
    EXPECT_EQ(stats.queriesServed,
              static_cast<std::int64_t>(w.batches.size()));
}

TEST(ChaosDifferential, QuarantineFailsFastWithoutAllowDegraded)
{
    Workload w = makeWorkload(8, 64, 1, 2, 337);
    sim::FaultSpec spec;
    sim::FaultRule rule;
    rule.kind = sim::FaultRule::Kind::Kill;
    rule.device = 0;
    rule.afterSearch = 0;
    spec.rules.push_back(rule);
    auto injector = std::make_shared<sim::FaultInjector>(spec);

    core::ShardedEngineOptions sharding;
    sharding.shards = 4;
    sharding.allowDegraded = false;
    sharding.quarantineThreshold = 1;
    sharding.cooldownMs = 60'000;
    sharding.faultInjector = injector;
    core::ShardedEngine engine(w.options, w.source, w.batches[0],
                               sharding);

    // The serve that observes the death fails with the permanent
    // error; later serves fail FAST on the open breaker -- no device
    // work against quarantined hardware.
    EXPECT_THROW(engine.serve(w.batches[0]), ExecutionError);
    std::int64_t searches_after =
        injector->stats().searchesObserved;
    EXPECT_THROW(engine.serve(w.batches[1]), ExecutionError);
    EXPECT_EQ(injector->stats().searchesObserved, searches_after)
        << "a fail-fast serve must not touch any device";
    EXPECT_EQ(engine.stats().quarantines, 1);
    EXPECT_TRUE(engine.shardHealth(0).quarantined);
}

TEST(ChaosDifferential, DeadlineShedsAreTypedCountedAndOverridable)
{
    Workload w = makeWorkload(8, 64, 1, 16, 347);
    core::AsyncServingOptions options;
    options.queueCapacity = 64;
    options.dispatchers = 1;
    options.fuseMaxK = 1;     // one query per dispatch: a backlog forms
    options.deadlineUs = 1;   // ~any enqueue wait blows this
    auto engine =
        w.kernel.createAsyncServingEngine(w.batches[0], 1, options);

    std::vector<std::future<core::ExecutionResult>> futures;
    for (const auto &batch : w.batches)
        futures.push_back(engine->submit(batch));
    // A negative per-query deadline opts OUT of the engine default:
    // this query must complete no matter how long it queued.
    std::future<core::ExecutionResult> unbounded =
        engine->submit(w.batches[0], /*deadline_us=*/-1);

    std::int64_t ok = 0;
    std::int64_t shed = 0;
    for (auto &future : futures) {
        try {
            future.get();
            ++ok;
        } catch (const core::DeadlineExceeded &) {
            ++shed; // the typed shed -- catchable as AdmissionError too
        }
    }
    core::ExecutionResult r = unbounded.get();
    EXPECT_EQ(r.outputs[1].asBuffer()->atInt({0, 0}), 0);

    // Behind a single slow dispatcher at a 1 us deadline the backlog
    // cannot all make it; every shed is typed and counted, and the
    // accounting still conserves: every future resolved exactly once.
    EXPECT_GT(shed, 0);
    core::AsyncServingStats stats = engine->stats();
    EXPECT_EQ(stats.deadlineSheds, shed);
    EXPECT_EQ(stats.serving.deadlineSheds, shed) << "stats mirror";
    EXPECT_EQ(stats.failed, shed);
    EXPECT_EQ(stats.completed,
              static_cast<std::int64_t>(w.batches.size()) + 1);
    EXPECT_EQ(ok + shed, static_cast<std::int64_t>(w.batches.size()));
    // Shed queries never reached a device.
    EXPECT_EQ(stats.serving.queriesServed, ok + 1);
}
