/** @file DSE explorer tests. */

#include <gtest/gtest.h>

#include "apps/Workloads.h"
#include "core/DseExplorer.h"
#include "support/Error.h"
#include "support/Rng.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;

namespace {

std::vector<rt::BufferPtr>
smallArgs()
{
    Rng rng(55);
    auto stored = rt::Buffer::alloc(rt::DType::F32, {8, 256});
    auto queries = rt::Buffer::alloc(rt::DType::F32, {2, 256});
    for (std::int64_t r = 0; r < 8; ++r)
        for (std::int64_t c = 0; c < 256; ++c)
            stored->set({r, c}, rng.nextBool() ? 1.0 : -1.0);
    for (std::int64_t r = 0; r < 2; ++r)
        for (std::int64_t c = 0; c < 256; ++c)
            queries->set({r, c}, stored->at({r * 3, c}));
    return {queries, stored};
}

const char *
source()
{
    static std::string src =
        apps::dotSimilaritySource(2, 8, 256, 1);
    return src.c_str();
}

} // namespace

TEST(DseExplorer, SweepEvaluatesEveryCandidate)
{
    core::DseExplorer explorer;
    std::vector<ArchSpec> candidates = {
        ArchSpec::dseSetup(16, OptTarget::Base),
        ArchSpec::dseSetup(16, OptTarget::Power),
        ArchSpec::dseSetup(64, OptTarget::Base),
    };
    core::DseResult result =
        explorer.explore(source(), candidates, smallArgs());
    ASSERT_EQ(result.points.size(), 3u);
    for (const auto &p : result.points) {
        EXPECT_GT(p.latencyNs(), 0.0);
        EXPECT_GT(p.powerMw(), 0.0);
        EXPECT_GT(p.energyPj(), 0.0);
    }
}

TEST(DseExplorer, ParetoFrontierIsNonDominated)
{
    core::DseExplorer explorer;
    core::DseResult result = explorer.explore(
        source(), core::DseExplorer::standardCandidates(), smallArgs());
    ASSERT_EQ(result.points.size(), 20u);

    auto frontier = result.frontier();
    ASSERT_GE(frontier.size(), 2u);

    // No frontier point dominates another frontier point.
    for (const auto &a : frontier) {
        for (const auto &b : frontier) {
            if (&a == &b)
                continue;
            bool dominates = a.latencyNs() <= b.latencyNs() &&
                             a.powerMw() <= b.powerMw() &&
                             (a.latencyNs() < b.latencyNs() ||
                              a.powerMw() < b.powerMw());
            EXPECT_FALSE(dominates);
        }
    }
    // Frontier is sorted by latency and power moves the other way.
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GE(frontier[i].latencyNs(), frontier[i - 1].latencyNs());
        EXPECT_LE(frontier[i].powerMw(), frontier[i - 1].powerMw());
    }
}

TEST(DseExplorer, BestPointsAreConsistent)
{
    core::DseExplorer explorer;
    core::DseResult result = explorer.explore(
        source(), core::DseExplorer::standardCandidates(), smallArgs());

    const auto &fastest = result.bestLatency();
    const auto &frugal = result.bestPower();
    for (const auto &p : result.points) {
        EXPECT_GE(p.latencyNs(), fastest.latencyNs());
        EXPECT_GE(p.powerMw(), frugal.powerMw());
    }
    // Extremes sit on the frontier.
    EXPECT_TRUE(fastest.paretoOptimal);
    EXPECT_TRUE(frugal.paretoOptimal);
    // The fastest standard point is a fully-parallel (base) config and
    // the most frugal is a power(+density) config.
    EXPECT_EQ(fastest.spec.target, OptTarget::Base);
    EXPECT_TRUE(frugal.spec.target == OptTarget::Power ||
                frugal.spec.target == OptTarget::PowerDensity);
}

TEST(DseExplorer, TableRendersEveryPoint)
{
    core::DseExplorer explorer;
    std::vector<ArchSpec> candidates = {
        ArchSpec::dseSetup(32, OptTarget::Base)};
    core::DseResult result =
        explorer.explore(source(), candidates, smallArgs());
    std::string table = result.table();
    EXPECT_NE(table.find("32x32"), std::string::npos);
    EXPECT_NE(table.find("pareto"), std::string::npos);
}

TEST(DseExplorer, EmptySweepRejected)
{
    core::DseExplorer explorer;
    EXPECT_THROW(explorer.explore(source(), {}, smallArgs()),
                 CompilerError);
}

TEST(DseExplorer, ParallelSweepMatchesSerialBitForBit)
{
    // The sweep is deterministic per candidate, so the worker-pool
    // path must reproduce the serial result exactly -- same order,
    // same latency/power/energy doubles, same Pareto labels.
    core::DseExplorer explorer;
    std::vector<ArchSpec> candidates = {
        ArchSpec::dseSetup(16, OptTarget::Base),
        ArchSpec::dseSetup(16, OptTarget::Power),
        ArchSpec::dseSetup(32, OptTarget::Density),
        ArchSpec::dseSetup(64, OptTarget::Base),
        ArchSpec::dseSetup(64, OptTarget::PowerDensity),
    };
    std::vector<rt::BufferPtr> args = smallArgs();
    core::DseResult serial =
        explorer.explore(source(), candidates, args, /*threads=*/1);
    core::DseResult parallel =
        explorer.explore(source(), candidates, args, /*threads=*/4);

    ASSERT_EQ(parallel.points.size(), serial.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        EXPECT_EQ(parallel.points[i].spec.rows, serial.points[i].spec.rows);
        EXPECT_EQ(parallel.points[i].latencyNs(),
                  serial.points[i].latencyNs());
        EXPECT_EQ(parallel.points[i].powerMw(), serial.points[i].powerMw());
        EXPECT_EQ(parallel.points[i].energyPj(),
                  serial.points[i].energyPj());
        EXPECT_EQ(parallel.points[i].perf.searches,
                  serial.points[i].perf.searches);
        EXPECT_EQ(parallel.points[i].paretoOptimal,
                  serial.points[i].paretoOptimal);
    }
}

TEST(DseExplorer, RejectsNegativeThreadCount)
{
    core::DseExplorer explorer;
    std::vector<ArchSpec> candidates = {
        ArchSpec::dseSetup(16, OptTarget::Base)};
    EXPECT_THROW(
        explorer.explore(source(), candidates, smallArgs(), -2),
        CompilerError);
}
