/**
 * @file
 * End-to-end span tracing through the serving stack.
 *
 * The contract under test: with a TraceCollector installed, every
 * async query exports a root "query" span whose "admit" /
 * "enqueue-wait" / "dispatch" / "deliver" children telescope exactly
 * (shared clock stamps, so sum-of-stages == end-to-end), the
 * "execute" span nests under "dispatch" and carries the device
 * window's simulated breakdown bit-identical to the query's
 * PerfReport, and the synchronous layers (ExecutionSession,
 * ServingEngine) export the same execute/merge shape on their own.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "apps/Workloads.h"
#include "core/AsyncServingEngine.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "core/ServingEngine.h"
#include "support/Rng.h"
#include "support/Trace.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;
using support::TraceCollector;
using support::TraceEvent;

namespace {

constexpr std::int64_t kRows = 8;
constexpr std::int64_t kDims = 64;

std::vector<std::vector<float>>
randomRows(std::int64_t n, std::int64_t d, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> rows(
        static_cast<std::size_t>(n),
        std::vector<float>(static_cast<std::size_t>(d)));
    for (auto &row : rows)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    return rows;
}

struct Workload
{
    core::CompiledKernel kernel;
    std::vector<std::vector<float>> stored;
    rt::BufferPtr storedBuf;

    std::vector<rt::BufferPtr>
    queryFor(std::int64_t row) const
    {
        return {rt::Buffer::fromMatrix(
                    {stored[static_cast<std::size_t>(row)]}),
                storedBuf};
    }
};

Workload &
workload()
{
    static Workload *w = [] {
        core::CompilerOptions options;
        options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
        core::Compiler compiler(options);
        auto *built = new Workload{
            compiler.compileTorchScript(
                apps::dotSimilaritySource(1, kRows, kDims, 1)),
            randomRows(kRows, kDims, 41), nullptr};
        built->storedBuf = rt::Buffer::fromMatrix(built->stored);
        return built;
    }();
    return *w;
}

/** All spans of one query, keyed by span name. */
using SpanMap = std::multimap<std::string, TraceEvent>;

std::map<std::uint64_t, SpanMap>
groupByQuery(const std::vector<TraceEvent> &events)
{
    std::map<std::uint64_t, SpanMap> queries;
    for (const TraceEvent &ev : events)
        if (ev.queryId != 0)
            queries[ev.queryId].emplace(ev.name, ev);
    return queries;
}

const TraceEvent &
only(const SpanMap &spans, const std::string &name)
{
    EXPECT_EQ(spans.count(name), 1u) << "span " << name;
    return spans.find(name)->second;
}

} // namespace

TEST(TraceIntegration, AsyncQuerySpansNestAndTelescope)
{
    TraceCollector collector;
    core::AsyncServingOptions options;
    options.queueCapacity = 64;
    options.dispatchers = 1;
    options.fuseMaxK = 1; // single-dispatch windows: deterministic sim
    options.trace = &collector;
    auto engine = workload().kernel.createAsyncServingEngine(
        workload().queryFor(0), 1, options);

    const std::int64_t n = 8;
    std::vector<std::future<core::ExecutionResult>> futures;
    for (std::int64_t i = 0; i < n; ++i)
        futures.push_back(engine->submit(workload().queryFor(i % kRows)));
    std::vector<core::ExecutionResult> results;
    for (auto &f : futures)
        results.push_back(f.get());
    engine->drain();

    std::vector<TraceEvent> events = collector.snapshot();
    EXPECT_EQ(collector.dropped(), 0);
    auto queries = groupByQuery(events);
    ASSERT_EQ(queries.size(), static_cast<std::size_t>(n));

    for (std::int64_t i = 0; i < n; ++i) {
        // Query ids are handed out in submission order from the single
        // submitting thread, so query i maps to id i + 1.
        std::uint64_t query_id = static_cast<std::uint64_t>(i) + 1;
        SCOPED_TRACE("query " + std::to_string(query_id));
        ASSERT_TRUE(queries.count(query_id));
        const SpanMap &spans = queries[query_id];

        const TraceEvent &root = only(spans, "query");
        const TraceEvent &admit = only(spans, "admit");
        const TraceEvent &wait = only(spans, "enqueue-wait");
        const TraceEvent &dispatch = only(spans, "dispatch");
        const TraceEvent &deliver = only(spans, "deliver");
        const TraceEvent &exec = only(spans, "execute");
        const TraceEvent &merge = only(spans, "merge");

        // One trace id for the whole engine, root spans at depth 0,
        // lifecycle stages under the root, engine spans under the
        // dispatch stage that ran them.
        EXPECT_EQ(root.traceId, admit.traceId);
        EXPECT_EQ(root.parentSpanId, 0u);
        for (const TraceEvent *stage : {&admit, &wait, &dispatch, &deliver})
            EXPECT_EQ(stage->parentSpanId, root.spanId);
        EXPECT_EQ(exec.parentSpanId, dispatch.spanId);
        EXPECT_EQ(merge.parentSpanId, dispatch.spanId);

        // The stages share clock stamps, so they tile the root span
        // exactly: admit starts with the root, each stage begins where
        // the previous ended, and the durations telescope.
        EXPECT_DOUBLE_EQ(admit.startUs, root.startUs);
        EXPECT_DOUBLE_EQ(wait.startUs, admit.startUs + admit.durUs);
        EXPECT_DOUBLE_EQ(dispatch.startUs, wait.startUs + wait.durUs);
        EXPECT_DOUBLE_EQ(deliver.startUs,
                         dispatch.startUs + dispatch.durUs);
        double staged =
            admit.durUs + wait.durUs + dispatch.durUs + deliver.durUs;
        EXPECT_NEAR(staged, root.durUs, 1e-3);

        // execute/merge nest inside their dispatch window.
        EXPECT_GE(exec.startUs, dispatch.startUs);
        EXPECT_LE(merge.startUs + merge.durUs,
                  dispatch.startUs + dispatch.durUs + 1e-3);

        // The execute span carries the device window's simulated
        // breakdown, bit-identical to the PerfReport the caller got.
        const core::ExecutionResult &result =
            results[static_cast<std::size_t>(i)];
        ASSERT_TRUE(exec.hasSim);
        EXPECT_EQ(exec.simQueryLatencyNs, result.perf.queryLatencyNs);
        EXPECT_EQ(exec.simQueryEnergyPj, result.perf.queryEnergyPj);
        EXPECT_EQ(exec.simCellEnergyPj, result.perf.cellEnergyPj);
        EXPECT_EQ(exec.simSenseEnergyPj, result.perf.senseEnergyPj);
        EXPECT_EQ(exec.simDriveEnergyPj, result.perf.driveEnergyPj);
        EXPECT_EQ(exec.simMergeEnergyPj, result.perf.mergeEnergyPj);
        EXPECT_EQ(exec.simSearches, result.perf.searches);
        EXPECT_FALSE(root.hasSim);

        // fuseMaxK = 1: nothing rode a fused window.
        EXPECT_EQ(dispatch.fusedK, 0);
    }

    // Every dispatch group left a zero-duration fuse-decision marker.
    std::int64_t decisions = 0;
    for (const TraceEvent &ev : events)
        if (std::string(ev.name) == "fuse-decision") {
            ++decisions;
            EXPECT_EQ(ev.durUs, 0.0);
        }
    EXPECT_EQ(decisions, n);
}

TEST(TraceIntegration, AsyncFusedDispatchTagsGroupWidth)
{
    // One dispatcher + a deep backlog: groups coalesce, and both the
    // dispatch span and the group's fuse-decision marker carry the
    // fused width.
    TraceCollector collector;
    core::AsyncServingOptions options;
    options.queueCapacity = 64;
    options.dispatchers = 1;
    options.fuseMaxK = 4;
    options.trace = &collector;
    auto engine = workload().kernel.createAsyncServingEngine(
        workload().queryFor(0), 1, options);

    const std::int64_t n = 48;
    std::vector<std::future<core::ExecutionResult>> futures;
    for (std::int64_t i = 0; i < n; ++i)
        futures.push_back(engine->submit(workload().queryFor(i % kRows)));
    for (auto &f : futures)
        f.get();
    engine->drain();
    core::AsyncServingStats stats = engine->stats();
    ASSERT_GT(stats.fusedWindows, 0);

    std::int64_t fused_dispatches = 0, fused_decisions = 0;
    for (const TraceEvent &ev : collector.snapshot()) {
        std::string name = ev.name;
        if (name == "dispatch" && ev.fusedK >= 2) {
            ++fused_dispatches;
            EXPECT_LE(ev.fusedK, 4);
        }
        if (name == "fuse-decision" && ev.fusedK >= 2) {
            ++fused_decisions;
        }
    }
    EXPECT_EQ(fused_dispatches, stats.fusedQueries);
    EXPECT_EQ(fused_decisions, stats.fusedWindows);
}

TEST(TraceIntegration, SessionRecordsExecuteAndMergePerQuery)
{
    TraceCollector collector;
    core::ExecutionSession session =
        workload().kernel.createSession(workload().queryFor(0));
    EXPECT_EQ(session.traceCollector(), nullptr);
    session.enableTracing(&collector);
    EXPECT_EQ(session.traceCollector(), &collector);

    core::ExecutionResult r0 = session.runQuery(workload().queryFor(1));
    core::ExecutionResult r1 = session.runQuery(workload().queryFor(2));

    auto queries = groupByQuery(collector.snapshot());
    ASSERT_EQ(queries.size(), 2u);
    const std::vector<const core::ExecutionResult *> results{&r0, &r1};
    std::size_t idx = 0;
    for (const auto &[query_id, spans] : queries) {
        SCOPED_TRACE("query " + std::to_string(query_id));
        const TraceEvent &root = only(spans, "query");
        const TraceEvent &exec = only(spans, "execute");
        const TraceEvent &merge = only(spans, "merge");
        EXPECT_EQ(root.parentSpanId, 0u);
        EXPECT_EQ(exec.parentSpanId, root.spanId);
        EXPECT_EQ(merge.parentSpanId, root.spanId);
        // execute and merge tile the root exactly.
        EXPECT_DOUBLE_EQ(exec.startUs, root.startUs);
        EXPECT_DOUBLE_EQ(merge.startUs, exec.startUs + exec.durUs);
        EXPECT_NEAR(exec.durUs + merge.durUs, root.durUs, 1e-3);
        ASSERT_TRUE(exec.hasSim);
        EXPECT_EQ(exec.simQueryLatencyNs,
                  results[idx]->perf.queryLatencyNs);
        EXPECT_EQ(exec.simQueryEnergyPj,
                  results[idx]->perf.queryEnergyPj);
        ++idx;
    }
    // Plan-backed session: replay itself left spans under execute.
    std::int64_t replays = 0;
    for (const TraceEvent &ev : collector.snapshot())
        if (std::string(ev.name) == "plan-replay")
            ++replays;
    if (session.usesPlan()) {
        EXPECT_EQ(replays, 2);
    }
}

TEST(TraceIntegration, SyncEngineServeCreatesItsOwnRootSpans)
{
    TraceCollector collector;
    auto engine =
        workload().kernel.createServingEngine(workload().queryFor(0), 2);
    engine->enableTracing(&collector);
    EXPECT_EQ(engine->traceCollector(), &collector);

    core::ExecutionResult result =
        engine->submit(workload().queryFor(3)).get();
    (void)result;

    auto queries = groupByQuery(collector.snapshot());
    ASSERT_EQ(queries.size(), 1u);
    const SpanMap &spans = queries.begin()->second;
    const TraceEvent &root = only(spans, "query");
    const TraceEvent &exec = only(spans, "execute");
    const TraceEvent &merge = only(spans, "merge");
    EXPECT_EQ(root.parentSpanId, 0u);
    EXPECT_EQ(exec.parentSpanId, root.spanId);
    EXPECT_EQ(merge.parentSpanId, root.spanId);
    EXPECT_TRUE(exec.hasSim);
    EXPECT_GE(exec.startUs, root.startUs);
}

TEST(TraceIntegration, TracingDoesNotPerturbResults)
{
    // Same query, traced engine vs untraced session: outputs and
    // PerfReports must be bit-identical (the async stress tier locks
    // this broadly; this is the focused traced-vs-untraced pin).
    core::ExecutionSession plain =
        workload().kernel.createSession(workload().queryFor(0));
    core::ExecutionResult ref = plain.runQuery(workload().queryFor(5));

    TraceCollector collector;
    core::AsyncServingOptions options;
    options.trace = &collector;
    auto engine = workload().kernel.createAsyncServingEngine(
        workload().queryFor(0), 1, options);
    core::ExecutionResult traced =
        engine->submit(workload().queryFor(5)).get();
    engine->drain();

    EXPECT_EQ(traced.outputs[1].asBuffer()->atInt({0, 0}),
              ref.outputs[1].asBuffer()->atInt({0, 0}));
    EXPECT_EQ(traced.perf.queryLatencyNs, ref.perf.queryLatencyNs);
    EXPECT_EQ(traced.perf.queryEnergyPj, ref.perf.queryEnergyPj);
    EXPECT_EQ(traced.perf.cellEnergyPj, ref.perf.cellEnergyPj);
    EXPECT_EQ(traced.perf.senseEnergyPj, ref.perf.senseEnergyPj);
    EXPECT_EQ(traced.perf.driveEnergyPj, ref.perf.driveEnergyPj);
    EXPECT_EQ(traced.perf.mergeEnergyPj, ref.perf.mergeEnergyPj);
    EXPECT_EQ(traced.perf.searches, ref.perf.searches);
    EXPECT_GT(collector.size(), 0u);
}
