/**
 * @file
 * Concurrency soak and functional tests for the async serving
 * front-end: multiple producers hammering an AsyncServingEngine under
 * every overflow policy, asserting that no result is lost or
 * duplicated, that the admission accounting stays exact, that
 * per-query answers and simulated cost reports remain bit-identical
 * to serial session replay, and that shutdown with in-flight work is
 * clean. Runs under TSan in CI (the async-stress job step).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "apps/Workloads.h"
#include "core/AsyncServingEngine.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "core/ServingEngine.h"
#include "sim/FaultInjector.h"
#include "support/Error.h"
#include "support/Rng.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;
using c4cam::support::OverflowPolicy;

namespace {

constexpr std::int64_t kRows = 8;
constexpr std::int64_t kDims = 64;

std::vector<std::vector<float>>
randomRows(std::int64_t n, std::int64_t d, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> rows(
        static_cast<std::size_t>(n),
        std::vector<float>(static_cast<std::size_t>(d)));
    for (auto &row : rows)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    return rows;
}

/** Shared tiny workload: one kernel, stored data, and the serial
 *  per-row reference reports every async result is checked against. */
struct Workload
{
    core::CompiledKernel kernel;
    std::vector<std::vector<float>> stored;
    rt::BufferPtr storedBuf;
    /** Reference result per stored row, from a serial session. */
    std::vector<core::ExecutionResult> reference;

    std::vector<rt::BufferPtr>
    queryFor(std::int64_t row) const
    {
        return {rt::Buffer::fromMatrix(
                    {stored[static_cast<std::size_t>(row)]}),
                storedBuf};
    }
};

Workload &
workload()
{
    static Workload *w = [] {
        core::CompilerOptions options;
        options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
        core::Compiler compiler(options);
        auto *built = new Workload{
            compiler.compileTorchScript(
                apps::dotSimilaritySource(1, kRows, kDims, 1)),
            randomRows(kRows, kDims, 97), nullptr, {}};
        built->storedBuf = rt::Buffer::fromMatrix(built->stored);
        core::ExecutionSession session =
            built->kernel.createSession(built->queryFor(0));
        for (std::int64_t r = 0; r < kRows; ++r)
            built->reference.push_back(
                session.runQuery(built->queryFor(r)));
        return built;
    }();
    return *w;
}

/** The invariant every served query must satisfy: right answer and a
 *  simulated cost report bit-identical to serial session replay. */
void
expectMatchesReference(const core::ExecutionResult &result,
                       std::int64_t row)
{
    const core::ExecutionResult &ref =
        workload().reference[static_cast<std::size_t>(row)];
    EXPECT_EQ(result.outputs[1].asBuffer()->atInt({0, 0}), row);
    EXPECT_EQ(result.perf.queryLatencyNs, ref.perf.queryLatencyNs);
    EXPECT_EQ(result.perf.queryEnergyPj, ref.perf.queryEnergyPj);
    EXPECT_EQ(result.perf.cellEnergyPj, ref.perf.cellEnergyPj);
    EXPECT_EQ(result.perf.senseEnergyPj, ref.perf.senseEnergyPj);
    EXPECT_EQ(result.perf.driveEnergyPj, ref.perf.driveEnergyPj);
    EXPECT_EQ(result.perf.mergeEnergyPj, ref.perf.mergeEnergyPj);
    EXPECT_EQ(result.perf.searches, ref.perf.searches);
}

/** Monotonicity + conservation checks between two stats snapshots. */
void
expectMonotone(const core::AsyncServingStats &before,
               const core::AsyncServingStats &after)
{
    EXPECT_GE(after.submitted, before.submitted);
    EXPECT_GE(after.accepted, before.accepted);
    EXPECT_GE(after.rejected, before.rejected);
    EXPECT_GE(after.dropped, before.dropped);
    EXPECT_GE(after.completed, before.completed);
    EXPECT_GE(after.failed, before.failed);
    EXPECT_GE(after.fusedWindows, before.fusedWindows);
    EXPECT_GE(after.fusedQueries, before.fusedQueries);
    // Conservation: every ticketed query is still pending, completed,
    // or rejected -- never more outcomes than tickets.
    EXPECT_LE(after.completed + after.rejected, after.submitted);
    EXPECT_LE(after.queueDepth, after.queueCapacity);
}

} // namespace

TEST(AsyncServing, SubmitFutureResolvesWithSerialIdenticalResult)
{
    core::AsyncServingOptions options;
    options.queueCapacity = 8;
    auto engine =
        workload().kernel.createAsyncServingEngine(workload().queryFor(0),
                                                   2, options);
    std::future<core::ExecutionResult> future =
        engine->submit(workload().queryFor(3));
    core::ExecutionResult result = future.get();
    expectMatchesReference(result, 3);
    engine->drain();
    core::AsyncServingStats stats = engine->stats();
    EXPECT_EQ(stats.submitted, 1);
    EXPECT_EQ(stats.accepted, 1);
    EXPECT_EQ(stats.completed, 1);
    EXPECT_EQ(stats.failed, 0);
    EXPECT_EQ(stats.serving.queriesServed, 1);
    EXPECT_GE(stats.p95ExecuteUs, stats.p50ExecuteUs);
    EXPECT_GT(stats.p50ExecuteUs, 0.0);
}

TEST(AsyncServing, MalformedSubmissionFailsOnCallerStack)
{
    auto engine = workload().kernel.createAsyncServingEngine(
        workload().queryFor(0), 1, {});
    EXPECT_THROW(engine->submit({}), CompilerError);
    EXPECT_THROW(
        engine->trySubmit({}, [](core::ExecutionResult,
                                 std::exception_ptr) {}),
        CompilerError);
    core::AsyncServingStats stats = engine->stats();
    EXPECT_EQ(stats.submitted, 0); // never ticketed, never queued
}

TEST(AsyncServing, CallbackSubmissionFiresExactlyOnce)
{
    auto engine = workload().kernel.createAsyncServingEngine(
        workload().queryFor(0), 2, {});
    std::atomic<int> fired{0};
    std::promise<void> done;
    ASSERT_TRUE(engine->trySubmit(
        workload().queryFor(5),
        [&](core::ExecutionResult result, std::exception_ptr error) {
            EXPECT_EQ(error, nullptr);
            expectMatchesReference(result, 5);
            if (fired.fetch_add(1) == 0)
                done.set_value();
        }));
    done.get_future().wait();
    engine->drain();
    EXPECT_EQ(fired.load(), 1);
}

TEST(AsyncServing, SubmitBatchStreamingYieldsEveryIndexOnce)
{
    auto engine = workload().kernel.createAsyncServingEngine(
        workload().queryFor(0), 2, {});
    const std::size_t n = 24;
    std::vector<std::vector<rt::BufferPtr>> queries;
    for (std::size_t i = 0; i < n; ++i)
        queries.push_back(
            workload().queryFor(static_cast<std::int64_t>(i % kRows)));

    std::mutex mutex;
    std::vector<int> seen(n, 0);
    engine->submitBatchStreaming(
        queries, [&](std::size_t index, core::ExecutionResult result,
                     std::exception_ptr error) {
            ASSERT_LT(index, n);
            EXPECT_EQ(error, nullptr);
            expectMatchesReference(
                result, static_cast<std::int64_t>(index % kRows));
            std::lock_guard<std::mutex> lock(mutex);
            ++seen[index];
        });
    engine->drain();
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(seen[i], 1) << "index " << i;
    EXPECT_EQ(engine->stats().completed, static_cast<std::int64_t>(n));
}

TEST(AsyncServing, SubmitBatchStreamingReportsMalformedSlotInline)
{
    // A malformed query mid-list must fail through its own completion
    // slot; the queries before AND after it are served normally.
    auto engine = workload().kernel.createAsyncServingEngine(
        workload().queryFor(0), 2, {});
    std::vector<std::vector<rt::BufferPtr>> queries{
        workload().queryFor(1),
        {}, // wrong arity: fails validation
        workload().queryFor(2),
    };
    std::mutex mutex;
    std::vector<int> completions(queries.size(), 0);
    std::vector<bool> errored(queries.size(), false);
    engine->submitBatchStreaming(
        queries, [&](std::size_t index, core::ExecutionResult result,
                     std::exception_ptr error) {
            std::lock_guard<std::mutex> lock(mutex);
            ++completions[index];
            errored[index] = error != nullptr;
            if (!error)
                expectMatchesReference(
                    result, index == 0 ? 1 : 2);
        });
    engine->drain();
    EXPECT_EQ(completions, (std::vector<int>{1, 1, 1}));
    EXPECT_EQ(errored, (std::vector<bool>{false, true, false}));
    core::AsyncServingStats stats = engine->stats();
    EXPECT_EQ(stats.completed, 2); // the malformed slot never entered
    EXPECT_EQ(stats.submitted, 2);
}

TEST(AsyncServing, MicroBatchingFusesUnderLoadOnly)
{
    // One dispatcher, many queued queries: the collector must fuse.
    // Whether the queue actually builds up depends on the submit/serve
    // speed ratio of the host, so the burst retries a few times; the
    // accounting invariants are asserted on every attempt, and at
    // least one burst must have coalesced.
    std::int64_t fused_windows = 0;
    for (int attempt = 0; attempt < 5 && fused_windows == 0; ++attempt) {
        core::AsyncServingOptions options;
        options.queueCapacity = 64;
        options.fuseMaxK = 4;
        options.dispatchers = 1;
        auto engine = workload().kernel.createAsyncServingEngine(
            workload().queryFor(0), 1, options);
        const std::size_t n = 48;
        std::vector<std::future<core::ExecutionResult>> futures;
        for (std::size_t i = 0; i < n; ++i)
            futures.push_back(engine->submit(
                workload().queryFor(static_cast<std::int64_t>(i % kRows))));
        for (std::size_t i = 0; i < n; ++i)
            expectMatchesReference(futures[i].get(),
                                   static_cast<std::int64_t>(i % kRows));
        engine->drain();
        core::AsyncServingStats stats = engine->stats();
        EXPECT_EQ(stats.completed, static_cast<std::int64_t>(n));
        // Every fused window is bounded by fuseMaxK, and fused +
        // single dispatches account for exactly the burst.
        EXPECT_LE(stats.fusedQueries, stats.fusedWindows * 4);
        EXPECT_EQ(stats.fusedQueries + stats.singleDispatches,
                  static_cast<std::int64_t>(n));
        EXPECT_EQ(stats.serving.queriesServed,
                  static_cast<std::int64_t>(n));
        fused_windows = stats.fusedWindows;
    }
    EXPECT_GT(fused_windows, 0);
}

TEST(AsyncServing, FuseMaxKOneDisablesMicroBatching)
{
    core::AsyncServingOptions options;
    options.fuseMaxK = 1;
    options.dispatchers = 1;
    auto engine = workload().kernel.createAsyncServingEngine(
        workload().queryFor(0), 1, options);
    std::vector<std::future<core::ExecutionResult>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(engine->submit(workload().queryFor(i % kRows)));
    for (auto &f : futures)
        f.get();
    core::AsyncServingStats stats = engine->stats();
    EXPECT_EQ(stats.fusedWindows, 0);
    EXPECT_EQ(stats.singleDispatches, 16);
}

TEST(AsyncServing, DrainWaitsForBacklog)
{
    core::AsyncServingOptions options;
    options.queueCapacity = 64;
    options.dispatchers = 1;
    auto engine = workload().kernel.createAsyncServingEngine(
        workload().queryFor(0), 1, options);
    std::vector<std::future<core::ExecutionResult>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(engine->submit(workload().queryFor(i % kRows)));
    engine->drain();
    core::AsyncServingStats stats = engine->stats();
    EXPECT_EQ(stats.completed, 32);
    EXPECT_EQ(stats.queueDepth, 0u);
    for (auto &f : futures)
        EXPECT_TRUE(f.wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready);
}

TEST(AsyncServing, ShutdownRejectsNewWorkAndDrainsAccepted)
{
    core::AsyncServingOptions options;
    options.queueCapacity = 64;
    auto engine = workload().kernel.createAsyncServingEngine(
        workload().queryFor(0), 2, options);
    std::vector<std::future<core::ExecutionResult>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(engine->submit(workload().queryFor(i % kRows)));
    engine->shutdown();
    EXPECT_TRUE(engine->shuttingDown());
    // Everything accepted before the close completed successfully.
    for (int i = 0; i < 16; ++i)
        expectMatchesReference(futures[static_cast<std::size_t>(i)].get(),
                               i % kRows);
    // New work is refused through both submission flavors, with the
    // admission-specific error type (not a generic execution error).
    std::future<core::ExecutionResult> late =
        engine->submit(workload().queryFor(0));
    EXPECT_THROW(late.get(), core::AdmissionError);
    EXPECT_FALSE(engine->trySubmit(
        workload().queryFor(0),
        [](core::ExecutionResult, std::exception_ptr) {
            FAIL() << "callback must not fire for rejected work";
        }));
    core::AsyncServingStats stats = engine->stats();
    EXPECT_EQ(stats.completed, 16);
    EXPECT_EQ(stats.rejected, 2);
    // Idempotent second shutdown.
    engine->shutdown();
}

/**
 * The soak: 8 producers x 256 queries each against a small replica
 * set, under each overflow policy, with a stats sampler racing the
 * storm. Every future must resolve exactly once -- either with a
 * result that is bit-identical to serial replay or with an admission
 * error -- and the admission accounting must balance to the query.
 */
class AsyncStress : public ::testing::TestWithParam<OverflowPolicy>
{};

TEST_P(AsyncStress, EightProducersNoLostOrDuplicatedResults)
{
    const OverflowPolicy policy = GetParam();
    const int producers = 8;
    const int per_producer = 256;
    const std::int64_t total = producers * per_producer;

    core::AsyncServingOptions options;
    options.policy = policy;
    options.queueCapacity = 16;
    options.fuseMaxK = 4;
    auto engine = workload().kernel.createAsyncServingEngine(
        workload().queryFor(0), 2, options);

    // One future per (producer, index); the row each query targets is
    // derived from the pair, so a mixed-up or duplicated completion
    // would surface as a wrong top-1 answer somewhere.
    std::vector<std::vector<std::future<core::ExecutionResult>>> futures(
        producers);
    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
        futures[static_cast<std::size_t>(p)].reserve(per_producer);
        threads.emplace_back([&, p] {
            for (int i = 0; i < per_producer; ++i) {
                std::int64_t row = (p + 3 * i) % kRows;
                futures[static_cast<std::size_t>(p)].push_back(
                    engine->submit(workload().queryFor(row)));
            }
        });
    }

    // Sampler thread: stats must stay monotone and conservation must
    // hold at every observation point mid-storm.
    std::atomic<bool> storm_over{false};
    std::thread sampler([&] {
        core::AsyncServingStats last = engine->stats();
        while (!storm_over.load()) {
            core::AsyncServingStats now = engine->stats();
            expectMonotone(last, now);
            last = now;
            std::this_thread::yield();
        }
    });

    for (auto &t : threads)
        t.join();
    engine->drain();
    storm_over.store(true);
    sampler.join();

    std::int64_t ok = 0;
    std::int64_t admission_failures = 0;
    for (int p = 0; p < producers; ++p) {
        for (int i = 0; i < per_producer; ++i) {
            std::int64_t row = (p + 3 * i) % kRows;
            try {
                core::ExecutionResult result =
                    futures[static_cast<std::size_t>(p)]
                           [static_cast<std::size_t>(i)]
                               .get();
                expectMatchesReference(result, row);
                ++ok;
            } catch (const core::AdmissionError &) {
                ++admission_failures; // rejected or dropped
            }
            // Any other exception type escapes and fails the test:
            // with valid inputs nothing may fail DURING execution.
        }
    }

    core::AsyncServingStats stats = engine->stats();
    EXPECT_EQ(stats.submitted, total);
    EXPECT_EQ(stats.queueDepth, 0u);
    // Exactly one outcome per submission, nothing lost, nothing extra.
    EXPECT_EQ(ok + admission_failures, total);
    EXPECT_EQ(stats.completed + stats.rejected, total);
    EXPECT_EQ(stats.accepted + stats.rejected, total);
    EXPECT_EQ(stats.completed, stats.accepted);
    EXPECT_EQ(stats.failed, stats.dropped);
    EXPECT_EQ(admission_failures, stats.rejected + stats.dropped);
    // The engine served exactly the successful queries -- a duplicate
    // dispatch would push queriesServed above ok.
    EXPECT_EQ(stats.serving.queriesServed, ok);
    EXPECT_EQ(stats.fusedQueries + stats.singleDispatches,
              stats.accepted - stats.dropped);

    switch (policy) {
    case OverflowPolicy::Block:
        // Lossless: backpressure, never load shedding.
        EXPECT_EQ(stats.rejected, 0);
        EXPECT_EQ(stats.dropped, 0);
        EXPECT_EQ(ok, total);
        break;
    case OverflowPolicy::Reject:
        EXPECT_EQ(stats.dropped, 0);
        break;
    case OverflowPolicy::DropOldest:
        EXPECT_EQ(stats.rejected, 0);
        EXPECT_EQ(stats.completed, total);
        break;
    }

    // Clean shutdown with a drained engine.
    engine->shutdown();
    core::AsyncServingStats final_stats = engine->stats();
    EXPECT_EQ(final_stats.completed, stats.completed);
}

INSTANTIATE_TEST_SUITE_P(Policies, AsyncStress,
                         ::testing::Values(OverflowPolicy::Block,
                                           OverflowPolicy::Reject,
                                           OverflowPolicy::DropOldest),
                         [](const auto &info) {
                             switch (info.param) {
                             case OverflowPolicy::Block:
                                 return "block";
                             case OverflowPolicy::Reject:
                                 return "reject";
                             case OverflowPolicy::DropOldest:
                                 return "drop_oldest";
                             }
                             return "unknown";
                         });

TEST(AsyncServing, ShutdownRacingProducersLosesNoAcceptedWork)
{
    // Producers submit while the main thread shuts the engine down
    // mid-storm: every accepted query must still complete, every
    // refused one must fail cleanly, and nothing may hang or crash.
    core::AsyncServingOptions options;
    options.queueCapacity = 8;
    auto engine = workload().kernel.createAsyncServingEngine(
        workload().queryFor(0), 2, options);

    const int producers = 4;
    const int per_producer = 64;
    std::vector<std::vector<std::future<core::ExecutionResult>>> futures(
        producers);
    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < per_producer; ++i)
                futures[static_cast<std::size_t>(p)].push_back(
                    engine->submit(workload().queryFor((p + i) % kRows)));
        });
    }
    // Let some work through, then close the doors.
    while (engine->stats().completed < 8)
        std::this_thread::yield();
    engine->shutdown();
    for (auto &t : threads)
        t.join();

    std::int64_t ok = 0;
    std::int64_t refused = 0;
    for (int p = 0; p < producers; ++p)
        for (int i = 0; i < static_cast<int>(
                                futures[static_cast<std::size_t>(p)]
                                    .size());
             ++i) {
            std::int64_t row = (p + i) % kRows;
            try {
                expectMatchesReference(
                    futures[static_cast<std::size_t>(p)]
                           [static_cast<std::size_t>(i)]
                               .get(),
                    row);
                ++ok;
            } catch (const core::AdmissionError &) {
                ++refused;
            }
        }
    core::AsyncServingStats stats = engine->stats();
    EXPECT_EQ(ok, stats.completed);
    EXPECT_EQ(refused, stats.rejected);
    EXPECT_EQ(ok + refused, stats.submitted);
    EXPECT_GE(ok, 8);
}

TEST(AsyncServing, InjectedFaultsRacingShutdownResolveEveryFutureOnce)
{
    // Chaos variant of the shutdown race: seeded transient faults keep
    // firing (and being retried) on the replicas while producers race
    // a mid-storm shutdown. The contract under test: every future
    // resolves EXACTLY once -- with a reference-identical result, a
    // typed admission refusal, or (retry budget exhausted) an
    // execution error -- and the admission accounting still balances.
    core::AsyncServingOptions options;
    options.queueCapacity = 16;
    options.fuseMaxK = 4;
    auto engine = workload().kernel.createAsyncServingEngine(
        workload().queryFor(0), 2, options);

    sim::FaultSpec spec;
    spec.seed = 20240807;
    spec.transientRate = 0.05;
    auto injector = std::make_shared<sim::FaultInjector>(spec);
    auto *serving =
        dynamic_cast<core::ServingEngine *>(&engine->backend());
    ASSERT_NE(serving, nullptr);
    core::RetryPolicy policy;
    policy.maxAttempts = 4;
    policy.backoffUs = 0;
    serving->setRetryPolicy(policy);
    serving->attachFaultInjector(injector);

    const int producers = 4;
    const int per_producer = 64;
    std::vector<std::vector<std::future<core::ExecutionResult>>> futures(
        producers);
    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < per_producer; ++i)
                futures[static_cast<std::size_t>(p)].push_back(
                    engine->submit(workload().queryFor((p + i) % kRows)));
        });
    }
    while (engine->stats().completed < 8)
        std::this_thread::yield();
    engine->shutdown();
    for (auto &t : threads)
        t.join();

    std::int64_t ok = 0;
    std::int64_t refused = 0;
    std::int64_t exhausted = 0;
    for (int p = 0; p < producers; ++p)
        for (std::size_t i = 0;
             i < futures[static_cast<std::size_t>(p)].size(); ++i) {
            std::int64_t row =
                (p + static_cast<int>(i)) % static_cast<int>(kRows);
            auto &future = futures[static_cast<std::size_t>(p)][i];
            ASSERT_TRUE(future.valid());
            try {
                expectMatchesReference(future.get(), row);
                ++ok;
            } catch (const core::AdmissionError &) {
                ++refused; // shutdown closed the door first
            } catch (const CompilerError &) {
                ++exhausted; // transient faults beat the retry budget
            }
            // A resolved future's state is consumed: a second delivery
            // would have thrown std::future_error instead.
            EXPECT_FALSE(future.valid());
        }

    core::AsyncServingStats stats = engine->stats();
    std::int64_t total = ok + refused + exhausted;
    EXPECT_EQ(total, stats.submitted);
    EXPECT_EQ(stats.completed + stats.rejected, stats.submitted);
    EXPECT_EQ(stats.completed, stats.accepted);
    EXPECT_GE(ok, 8);
    // Retries happened (or faults never fired -- at 5% over this many
    // searches that would be a broken injector, caught elsewhere), and
    // every recovered result above was still reference-identical.
    EXPECT_EQ(stats.failed,
              exhausted + static_cast<std::int64_t>(stats.dropped));
    EXPECT_GE(stats.serving.retries + stats.fallbackRetries, 0);
}

TEST(AsyncServing, DrainIsIdempotentAndSafeConcurrentWithShutdown)
{
    // Regression for the drain()/shutdown() contract: drain() may be
    // called any number of times, from any number of threads, while
    // another thread closes the engine -- no call may deadlock, throw
    // or observe a half-delivered backlog. Every future submitted
    // before the close still resolves with the reference result.
    core::AsyncServingOptions options;
    options.queueCapacity = 64;
    options.dispatchers = 2;
    auto engine = workload().kernel.createAsyncServingEngine(
        workload().queryFor(0), 2, options);

    std::vector<std::future<core::ExecutionResult>> futures;
    for (int i = 0; i < 48; ++i)
        futures.push_back(engine->submit(workload().queryFor(i % kRows)));

    std::vector<std::thread> drainers;
    for (int t = 0; t < 4; ++t)
        drainers.emplace_back([&engine] {
            for (int i = 0; i < 16; ++i)
                engine->drain();
        });
    std::thread closer([&engine] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        engine->shutdown();
    });
    for (auto &t : drainers)
        t.join();
    closer.join();

    // Idempotent after the close, too: repeated drain()/shutdown()
    // return immediately instead of waiting on work that cannot come.
    engine->drain();
    engine->drain();
    engine->shutdown();
    EXPECT_TRUE(engine->shuttingDown());

    for (int i = 0; i < 48; ++i)
        expectMatchesReference(futures[static_cast<std::size_t>(i)].get(),
                               i % kRows);
    core::AsyncServingStats stats = engine->stats();
    EXPECT_EQ(stats.completed, 48);
    EXPECT_EQ(stats.rejected, 0);
    EXPECT_EQ(stats.queueDepth, 0u);
}
