/**
 * @file
 * Parallel serving engine: concurrency-determinism invariants.
 *
 * Locks the serving contract of ISSUE 3: N worker threads x M queries
 * through a ServingEngine produce per-query outputs and cost reports
 * bit-identical to a serial ExecutionSession replay of the same
 * stream, on both the device path and the host-only fallback; the
 * aggregate pays setup exactly once.
 */

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "core/ServingEngine.h"
#include "support/Error.h"
#include "support/Rng.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;

namespace {

std::vector<std::vector<float>>
randomRows(std::int64_t n, std::int64_t d, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> rows(
        static_cast<std::size_t>(n),
        std::vector<float>(static_cast<std::size_t>(d)));
    for (auto &row : rows)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    return rows;
}

core::CompiledKernel
compileDotKernel(const ArchSpec &spec, std::int64_t queries,
                 std::int64_t rows, std::int64_t dims, int k = 1)
{
    core::CompilerOptions options;
    options.spec = spec;
    core::Compiler compiler(options);
    return compiler.compileTorchScript(
        apps::dotSimilaritySource(queries, rows, dims, k));
}

void
expectBuffersEqual(const rt::RtValue &a, const rt::RtValue &b)
{
    ASSERT_TRUE(a.isBuffer());
    ASSERT_TRUE(b.isBuffer());
    EXPECT_EQ(a.asBuffer()->shape(), b.asBuffer()->shape());
    EXPECT_EQ(a.asBuffer()->toVector(), b.asBuffer()->toVector());
}

/** Field-by-field exact comparison of two perf reports. */
void
expectReportsIdentical(const sim::PerfReport &a, const sim::PerfReport &b)
{
    EXPECT_EQ(a.setupLatencyNs, b.setupLatencyNs);
    EXPECT_EQ(a.setupEnergyPj, b.setupEnergyPj);
    EXPECT_EQ(a.queryLatencyNs, b.queryLatencyNs);
    EXPECT_EQ(a.queryEnergyPj, b.queryEnergyPj);
    EXPECT_EQ(a.cellEnergyPj, b.cellEnergyPj);
    EXPECT_EQ(a.senseEnergyPj, b.senseEnergyPj);
    EXPECT_EQ(a.driveEnergyPj, b.driveEnergyPj);
    EXPECT_EQ(a.mergeEnergyPj, b.mergeEnergyPj);
    EXPECT_EQ(a.searches, b.searches);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.subarraysUsed, b.subarraysUsed);
    EXPECT_EQ(a.subarraysAllocated, b.subarraysAllocated);
    EXPECT_EQ(a.banksUsed, b.banksUsed);
}

/** Distinct query batches cycling through the stored rows. */
std::vector<std::vector<rt::BufferPtr>>
makeBatches(const std::vector<std::vector<float>> &stored,
            const rt::BufferPtr &stored_buf, int count)
{
    std::vector<std::vector<rt::BufferPtr>> batches;
    for (int i = 0; i < count; ++i)
        batches.push_back(
            {rt::Buffer::fromMatrix(
                 {stored[static_cast<std::size_t>(i) % stored.size()]}),
             stored_buf});
    return batches;
}

} // namespace

TEST(ServingEngine, FourThreadsMatchSerialSessionBitForBit)
{
    auto stored = randomRows(8, 64, 41);
    core::CompiledKernel kernel =
        compileDotKernel(ArchSpec::dseSetup(32, OptTarget::Base), 1, 8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    auto batches = makeBatches(stored, stored_buf, 24);

    core::ExecutionSession session = kernel.createSession(batches[0]);
    std::vector<core::ExecutionResult> serial = session.runBatch(batches);

    auto engine = kernel.createServingEngine(batches[0], 4);
    EXPECT_TRUE(engine->persistent());
    EXPECT_EQ(engine->numReplicas(), 4);
    std::vector<core::ExecutionResult> served = engine->runBatch(batches);

    ASSERT_EQ(served.size(), serial.size());
    for (std::size_t q = 0; q < served.size(); ++q) {
        ASSERT_EQ(served[q].outputs.size(), serial[q].outputs.size());
        for (std::size_t i = 0; i < served[q].outputs.size(); ++i)
            expectBuffersEqual(served[q].outputs[i], serial[q].outputs[i]);
        expectReportsIdentical(served[q].perf, serial[q].perf);
    }

    // Aggregates agree too: setup once + identical query windows.
    expectReportsIdentical(engine->stats().aggregate,
                           session.aggregateReport());
    EXPECT_EQ(engine->queriesServed(), 24);
}

TEST(ServingEngine, HostOnlyPathMatchesSerialSession)
{
    auto stored = randomRows(6, 96, 43);
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    options.hostOnly = true;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(1, 6, 96, 1));
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    auto batches = makeBatches(stored, stored_buf, 12);

    core::ExecutionSession session = kernel.createSession(batches[0]);
    std::vector<core::ExecutionResult> serial = session.runBatch(batches);

    auto engine = kernel.createServingEngine(batches[0], 3);
    EXPECT_FALSE(engine->persistent());
    std::vector<core::ExecutionResult> served = engine->runBatch(batches);

    ASSERT_EQ(served.size(), serial.size());
    for (std::size_t q = 0; q < served.size(); ++q) {
        ASSERT_EQ(served[q].outputs.size(), serial[q].outputs.size());
        for (std::size_t i = 0; i < served[q].outputs.size(); ++i)
            expectBuffersEqual(served[q].outputs[i], serial[q].outputs[i]);
        expectReportsIdentical(served[q].perf, serial[q].perf);
    }
    expectReportsIdentical(engine->stats().aggregate,
                           session.aggregateReport());
}

TEST(ServingEngine, SubmitFuturesServeConcurrently)
{
    auto stored = randomRows(8, 64, 47);
    core::CompiledKernel kernel =
        compileDotKernel(ArchSpec::dseSetup(32, OptTarget::Base), 1, 8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    auto engine = kernel.createServingEngine(
        {rt::Buffer::fromMatrix({stored[0]}), stored_buf}, 2);

    // Fire all queries asynchronously, then join: answers arrive in
    // submission slots regardless of completion order.
    std::vector<std::future<core::ExecutionResult>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(engine->submit(
            {rt::Buffer::fromMatrix(
                 {stored[static_cast<std::size_t>(i) % stored.size()]}),
             stored_buf}));
    for (int i = 0; i < 16; ++i) {
        core::ExecutionResult r =
            futures[static_cast<std::size_t>(i)].get();
        EXPECT_EQ(r.outputs[1].asBuffer()->atInt({0, 0}), i % 8)
            << "query " << i;
    }
    EXPECT_EQ(engine->queriesServed(), 16);
}

TEST(ServingEngine, StatsReportThroughputAndLatency)
{
    auto stored = randomRows(8, 64, 53);
    core::CompiledKernel kernel =
        compileDotKernel(ArchSpec::dseSetup(32, OptTarget::Base), 1, 8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    auto batches = makeBatches(stored, stored_buf, 10);
    auto engine = kernel.createServingEngine(batches[0], 2);

    core::ServingStats before = engine->stats();
    EXPECT_EQ(before.queriesServed, 0);
    EXPECT_EQ(before.qps, 0.0);
    EXPECT_EQ(before.p50LatencyUs, 0.0);

    engine->runBatch(batches);
    core::ServingStats stats = engine->stats();
    EXPECT_EQ(stats.queriesServed, 10);
    EXPECT_GT(stats.wallSeconds, 0.0);
    EXPECT_GT(stats.qps, 0.0);
    EXPECT_GT(stats.p50LatencyUs, 0.0);
    EXPECT_GE(stats.p95LatencyUs, stats.p50LatencyUs);
    EXPECT_EQ(stats.aggregate.queriesServed, 10);
}

TEST(ServingEngine, ThreadCapLimitsConcurrencyButNotResults)
{
    auto stored = randomRows(8, 64, 59);
    core::CompiledKernel kernel =
        compileDotKernel(ArchSpec::dseSetup(32, OptTarget::Base), 1, 8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    auto batches = makeBatches(stored, stored_buf, 9);

    auto engine = kernel.createServingEngine(batches[0], 4);
    std::vector<core::ExecutionResult> capped =
        engine->runBatch(batches, /*threads=*/1);
    ASSERT_EQ(capped.size(), 9u);
    for (std::size_t q = 0; q < capped.size(); ++q)
        EXPECT_EQ(capped[q].outputs[1].asBuffer()->atInt({0, 0}),
                  static_cast<std::int64_t>(q % 8));
}

TEST(ServingEngine, ValidatesArgumentsUpFront)
{
    auto stored = randomRows(8, 64, 61);
    core::CompiledKernel kernel =
        compileDotKernel(ArchSpec::dseSetup(32, OptTarget::Base), 1, 8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    auto query = rt::Buffer::fromMatrix({stored[0]});

    EXPECT_THROW(kernel.createServingEngine({query}, 2), CompilerError);
    EXPECT_THROW(kernel.createServingEngine({query, stored_buf}, 0),
                 CompilerError);

    auto engine = kernel.createServingEngine({query, stored_buf}, 2);
    EXPECT_THROW(engine->submit({query}), CompilerError);
    // A bad batch fails before any query is enqueued.
    EXPECT_THROW(engine->runBatch({{query, stored_buf}, {stored_buf}}),
                 CompilerError);
    EXPECT_EQ(engine->queriesServed(), 0);
    // The engine stays usable after rejected calls.
    core::ExecutionResult r =
        engine->submit({query, stored_buf}).get();
    EXPECT_EQ(r.outputs[1].asBuffer()->atInt({0, 0}), 0);
}

TEST(ServingEngine, EuclideanKernelServesInParallel)
{
    auto stored = randomRows(12, 32, 67);
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    options.spec.camType = arch::CamDeviceType::Mcam;
    options.spec.bitsPerCell = 2;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::knnEuclideanSource(1, 12, 32, 2));
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    auto batches = makeBatches(stored, stored_buf, 8);

    core::ExecutionSession session = kernel.createSession(batches[0]);
    std::vector<core::ExecutionResult> serial = session.runBatch(batches);

    auto engine = kernel.createServingEngine(batches[0], 3);
    std::vector<core::ExecutionResult> served = engine->runBatch(batches);
    for (std::size_t q = 0; q < served.size(); ++q) {
        for (std::size_t i = 0; i < served[q].outputs.size(); ++i)
            expectBuffersEqual(served[q].outputs[i], serial[q].outputs[i]);
        expectReportsIdentical(served[q].perf, serial[q].perf);
    }
}
