/**
 * @file
 * Differential fuzzing of the two execution back ends.
 *
 * ExecutionPlanTest locks plan-vs-tree-walk bit-identity on the three
 * hand-picked tier-1 kernels; this tier generates a seeded-random
 * population of kernel configurations -- shapes, query batch sizes,
 * top-k widths, subarray sizes, optimization targets, CAM device
 * types and lowering phases (device / host-cim / host-loops) -- and
 * asserts for every one of them that OPTIMIZED plan replay
 * (rt::PlanOptimizer pipeline), raw unoptimized plan replay and the
 * tree-walking interpreter produce bit-identical outputs AND
 * bit-identical PerfReport JSON, both single-shot and through a
 * persistent session serving several queries.
 *
 * Determinism: the generator is a fixed-seed splitmix64 Rng, so a
 * failure reproduces by trial index; the trial's configuration is in
 * the SCOPED_TRACE output.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/Trace.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;

namespace {

/** One randomly drawn kernel configuration. */
struct FuzzConfig
{
    std::string description;
    std::string source;
    core::CompilerOptions options;
    std::int64_t queriesPerBatch = 1;
    std::int64_t rows = 0;
    std::int64_t dims = 0;
};

/** Lowering phases the differential covers. */
enum class Phase { Device, HostCim, HostLoops };

FuzzConfig
drawConfig(Rng &rng)
{
    static const std::int64_t kRowChoices[] = {2, 3, 4, 6, 8, 12, 16};
    static const std::int64_t kDimChoices[] = {16, 32, 48, 64, 96, 128};
    static const int kSizeChoices[] = {16, 32, 64};
    static const OptTarget kTargets[] = {
        OptTarget::Base, OptTarget::Power, OptTarget::Density,
        OptTarget::PowerDensity};

    FuzzConfig cfg;
    cfg.rows = kRowChoices[rng.nextBelow(std::size(kRowChoices))];
    cfg.dims = kDimChoices[rng.nextBelow(std::size(kDimChoices))];
    int size = kSizeChoices[rng.nextBelow(std::size(kSizeChoices))];
    OptTarget target = kTargets[rng.nextBelow(std::size(kTargets))];
    Phase phase = static_cast<Phase>(rng.nextBelow(3));
    bool knn = rng.nextBool();
    std::int64_t k =
        1 + static_cast<std::int64_t>(
                rng.nextBelow(static_cast<std::uint64_t>(
                    std::min<std::int64_t>(cfg.rows, 3))));

    cfg.options.spec = ArchSpec::dseSetup(size, target);
    if (knn) {
        // Euclidean distance needs the multi-bit MCAM cell model on
        // the device path; host lowering is cell-model agnostic.
        cfg.options.spec.camType = arch::CamDeviceType::Mcam;
        cfg.options.spec.bitsPerCell = 2;
        cfg.source = apps::knnEuclideanSource(1, cfg.rows, cfg.dims, k);
        cfg.queriesPerBatch = 1;
    } else {
        cfg.queriesPerBatch =
            static_cast<std::int64_t>(1 + rng.nextBelow(3));
        cfg.source = apps::dotSimilaritySource(cfg.queriesPerBatch,
                                               cfg.rows, cfg.dims, k);
    }
    switch (phase) {
    case Phase::Device:
        break;
    case Phase::HostCim:
        cfg.options.hostOnly = true;
        break;
    case Phase::HostLoops:
        cfg.options.hostOnly = true;
        cfg.options.lowerToLoops = true;
        break;
    }

    cfg.description =
        std::string(knn ? "knn" : "dot") + " rows=" +
        std::to_string(cfg.rows) + " dims=" + std::to_string(cfg.dims) +
        " qpb=" + std::to_string(cfg.queriesPerBatch) +
        " k=" + std::to_string(k) + " size=" + std::to_string(size) +
        " target=" + toString(target) + " phase=" +
        (phase == Phase::Device
             ? "device"
             : phase == Phase::HostCim ? "host-cim" : "host-loops");
    return cfg;
}

/** Random +-1 stored matrix plus a query batch that mixes exact
 *  stored rows with fresh random vectors. */
struct FuzzData
{
    rt::BufferPtr stored;
    std::vector<rt::BufferPtr> queryBatches;
};

FuzzData
drawData(Rng &rng, const FuzzConfig &cfg, std::size_t num_batches)
{
    std::vector<std::vector<float>> stored(
        static_cast<std::size_t>(cfg.rows),
        std::vector<float>(static_cast<std::size_t>(cfg.dims)));
    for (auto &row : stored)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;

    FuzzData data;
    data.stored = rt::Buffer::fromMatrix(stored);
    for (std::size_t b = 0; b < num_batches; ++b) {
        std::vector<std::vector<float>> queries;
        for (std::int64_t q = 0; q < cfg.queriesPerBatch; ++q) {
            if (rng.nextBool()) {
                queries.push_back(
                    stored[rng.nextBelow(stored.size())]);
            } else {
                std::vector<float> fresh(
                    static_cast<std::size_t>(cfg.dims));
                for (auto &v : fresh)
                    v = rng.nextBool() ? 1.0f : -1.0f;
                queries.push_back(std::move(fresh));
            }
        }
        data.queryBatches.push_back(rt::Buffer::fromMatrix(queries));
    }
    return data;
}

void
expectOutputsBitIdentical(const std::vector<rt::RtValue> &a,
                          const std::vector<rt::RtValue> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].isBuffer(), b[i].isBuffer()) << "output " << i;
        if (a[i].isBuffer()) {
            EXPECT_EQ(a[i].asBuffer()->shape(), b[i].asBuffer()->shape())
                << "output " << i;
            EXPECT_EQ(a[i].asBuffer()->toVector(),
                      b[i].asBuffer()->toVector())
                << "output " << i;
        } else if (a[i].isInt()) {
            EXPECT_EQ(a[i].asInt(), b[i].asInt()) << "output " << i;
        }
    }
}

/** The strongest report equality there is: the serialized JSON must
 *  match byte for byte (covers every field plus derived metrics). */
void
expectReportJsonBitIdentical(const sim::PerfReport &a,
                             const sim::PerfReport &b)
{
    EXPECT_EQ(a.toJson().dump(2), b.toJson().dump(2));
}

} // namespace

TEST(DifferentialFuzz, PlanAndTreeWalkAgreeOnRandomConfigs)
{
    const int kTrials = 20;
    const std::size_t kQueriesPerSession = 3;
    Rng rng(0xC4CA11FEEDull);

    for (int trial = 0; trial < kTrials; ++trial) {
        FuzzConfig cfg = drawConfig(rng);
        SCOPED_TRACE("trial " + std::to_string(trial) + ": " +
                     cfg.description);

        core::CompilerOptions walk_options = cfg.options;
        walk_options.treeWalkExecution = true;
        core::CompilerOptions raw_options = cfg.options;
        raw_options.optimizePlans = false;
        core::Compiler plan_compiler(cfg.options);
        core::CompiledKernel plan_kernel =
            plan_compiler.compileTorchScript(cfg.source);
        core::Compiler raw_compiler(raw_options);
        core::CompiledKernel raw_kernel =
            raw_compiler.compileTorchScript(cfg.source);
        core::Compiler walk_compiler(walk_options);
        core::CompiledKernel walk_kernel =
            walk_compiler.compileTorchScript(cfg.source);

        FuzzData data = drawData(rng, cfg, kQueriesPerSession + 1);

        // Single-shot differential, all three back ends.
        std::vector<rt::BufferPtr> args{data.queryBatches[0],
                                        data.stored};
        core::ExecutionResult via_plan = plan_kernel.run(args);
        core::ExecutionResult via_raw = raw_kernel.run(args);
        core::ExecutionResult via_walk = walk_kernel.run(args);
        expectOutputsBitIdentical(via_plan.outputs, via_raw.outputs);
        expectReportJsonBitIdentical(via_plan.perf, via_raw.perf);
        expectOutputsBitIdentical(via_raw.outputs, via_walk.outputs);
        expectReportJsonBitIdentical(via_raw.perf, via_walk.perf);

        // Session differential: serve several query batches through a
        // persistent session on each back end, comparing per-query
        // and aggregate accounting.
        core::ExecutionSession plan_session =
            plan_kernel.createSession(args);
        core::ExecutionSession raw_session =
            raw_kernel.createSession(args);
        core::ExecutionSession walk_session =
            walk_kernel.createSession(args);
        EXPECT_TRUE(plan_session.usesPlan());
        EXPECT_TRUE(raw_session.usesPlan());
        EXPECT_FALSE(walk_session.usesPlan());
        // Tracing must be a pure observer: run the plan session with a
        // live collector while the tree-walk session stays untraced,
        // and every bit-identity expectation below doubles as proof
        // that span recording perturbs neither outputs nor reports.
        support::TraceCollector collector;
        plan_session.enableTracing(&collector);
        for (std::size_t q = 1; q <= kQueriesPerSession; ++q) {
            SCOPED_TRACE("session query " + std::to_string(q));
            std::vector<rt::BufferPtr> query_args{data.queryBatches[q],
                                                  data.stored};
            core::ExecutionResult p = plan_session.runQuery(query_args);
            core::ExecutionResult r = raw_session.runQuery(query_args);
            core::ExecutionResult w = walk_session.runQuery(query_args);
            expectOutputsBitIdentical(p.outputs, r.outputs);
            expectReportJsonBitIdentical(p.perf, r.perf);
            expectOutputsBitIdentical(r.outputs, w.outputs);
            expectReportJsonBitIdentical(r.perf, w.perf);
        }
        expectReportJsonBitIdentical(plan_session.aggregateReport(),
                                     raw_session.aggregateReport());
        expectReportJsonBitIdentical(raw_session.aggregateReport(),
                                     walk_session.aggregateReport());
        // The traced session really did record: one query/execute/
        // merge triple per runQuery (plus plan-replay spans on the
        // plan back end).
        EXPECT_GE(collector.size(), 3 * kQueriesPerSession);
    }
}

TEST(DifferentialFuzz, FusionModelOffBitIdenticalOnPreservesOutputs)
{
    // Three-way fused-serving differential over random configurations:
    //  - an explicit fusionModel = ExactSerial kernel must be
    //    bit-identical to the default-options kernel in outputs AND
    //    rendered report JSON (the flag's off position really is the
    //    pre-flag behavior, byte for byte);
    //  - a TrueFused kernel must keep outputs bit-identical while its
    //    fused totals never exceed the exact-serial accounting --
    //    strictly below it on persistent device sessions (the pass
    //    drives each subarray once), exactly equal on host-only
    //    sessions (no device pass to fuse).
    const int kTrials = 8;
    const std::size_t kFusedK = 3;
    Rng rng(0xF05EDFA57ull);

    for (int trial = 0; trial < kTrials; ++trial) {
        FuzzConfig cfg = drawConfig(rng);
        SCOPED_TRACE("trial " + std::to_string(trial) + ": " +
                     cfg.description);

        core::CompilerOptions off_options = cfg.options;
        off_options.fusionModel = sim::FusionModel::ExactSerial;
        core::CompilerOptions on_options = cfg.options;
        on_options.fusionModel = sim::FusionModel::TrueFused;

        core::Compiler default_compiler(cfg.options);
        core::CompiledKernel default_kernel =
            default_compiler.compileTorchScript(cfg.source);
        core::Compiler off_compiler(off_options);
        core::CompiledKernel off_kernel =
            off_compiler.compileTorchScript(cfg.source);
        core::Compiler on_compiler(on_options);
        core::CompiledKernel on_kernel =
            on_compiler.compileTorchScript(cfg.source);

        FuzzData data = drawData(rng, cfg, kFusedK + 1);
        std::vector<rt::BufferPtr> setup_args{data.queryBatches[0],
                                              data.stored};
        std::vector<std::vector<rt::BufferPtr>> queries;
        for (std::size_t q = 1; q <= kFusedK; ++q)
            queries.push_back({data.queryBatches[q], data.stored});

        core::ExecutionSession default_session =
            default_kernel.createSession(setup_args);
        core::ExecutionSession off_session =
            off_kernel.createSession(setup_args);
        core::ExecutionSession on_session =
            on_kernel.createSession(setup_args);

        core::FusedBatchResult via_default =
            default_session.runFusedBatch(queries);
        core::FusedBatchResult via_off =
            off_session.runFusedBatch(queries);
        core::FusedBatchResult via_on =
            on_session.runFusedBatch(queries);

        ASSERT_EQ(via_default.results.size(), kFusedK);
        ASSERT_EQ(via_off.results.size(), kFusedK);
        ASSERT_EQ(via_on.results.size(), kFusedK);
        for (std::size_t i = 0; i < kFusedK; ++i) {
            SCOPED_TRACE("fused query " + std::to_string(i));
            expectOutputsBitIdentical(via_default.results[i].outputs,
                                      via_off.results[i].outputs);
            expectReportJsonBitIdentical(via_default.results[i].perf,
                                         via_off.results[i].perf);
            expectOutputsBitIdentical(via_default.results[i].outputs,
                                      via_on.results[i].outputs);
        }
        expectReportJsonBitIdentical(via_default.fusedReport,
                                     via_off.fusedReport);

        // TrueFused never invents work: non-amortizable components
        // match exactly in every phase...
        EXPECT_EQ(via_on.fused.searches, via_default.fused.searches);
        EXPECT_EQ(via_on.fused.senseEnergyPj,
                  via_default.fused.senseEnergyPj);
        EXPECT_EQ(via_on.fused.mergeEnergyPj,
                  via_default.fused.mergeEnergyPj);
        EXPECT_EQ(via_on.fusedReport.fusedBatchK,
                  static_cast<std::int64_t>(kFusedK));
        // ...and the amortizable ones only ever shrink.
        if (on_session.persistent()) {
            EXPECT_LT(via_on.fused.total.energyPj,
                      via_default.fused.total.energyPj);
            EXPECT_LT(via_on.fused.total.latencyNs,
                      via_default.fused.total.latencyNs);
            EXPECT_LT(via_on.fused.driveEnergyPj,
                      via_default.fused.driveEnergyPj);
        } else {
            // Host-only: nothing device-side to fuse, the model is
            // inert by construction.
            expectReportJsonBitIdentical(via_default.fusedReport,
                                         via_on.fusedReport);
        }
    }
}
