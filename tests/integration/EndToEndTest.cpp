/** @file End-to-end compiler tests: TorchScript -> CAM -> results. */

#include <gtest/gtest.h>

#include "apps/Datasets.h"
#include "apps/Hdc.h"
#include "apps/Knn.h"
#include "apps/ManualBaseline.h"
#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "support/Error.h"
#include "support/Rng.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;

namespace {

rt::BufferPtr
toBuffer(const std::vector<std::vector<float>> &rows)
{
    return rt::Buffer::fromMatrix(rows);
}

/** Compile + run the dot-similarity kernel on the CAM simulator. */
core::ExecutionResult
runDotKernel(const ArchSpec &spec,
             const std::vector<std::vector<float>> &queries,
             const std::vector<std::vector<float>> &stored, int k = 1)
{
    core::CompilerOptions options;
    options.spec = spec;
    core::Compiler compiler(options);
    core::CompiledKernel kernel =
        compiler.compileTorchScript(apps::dotSimilaritySource(
            static_cast<std::int64_t>(queries.size()),
            static_cast<std::int64_t>(stored.size()),
            static_cast<std::int64_t>(stored[0].size()), k));
    return kernel.run({toBuffer(queries), toBuffer(stored)});
}

std::vector<int>
topIndices(const core::ExecutionResult &result, std::int64_t queries)
{
    std::vector<int> out;
    for (std::int64_t q = 0; q < queries; ++q)
        out.push_back(static_cast<int>(
            result.outputs[1].asBuffer()->atInt({q, 0})));
    return out;
}

} // namespace

TEST(EndToEnd, ExactNearestNeighborOnTinyProblem)
{
    // Stored rows are distinct; each query IS one of the rows.
    Rng rng(5);
    std::vector<std::vector<float>> stored(8,
                                           std::vector<float>(64));
    for (auto &row : stored)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    std::vector<std::vector<float>> queries = {stored[3], stored[6],
                                               stored[0], stored[7]};

    ArchSpec spec = ArchSpec::dseSetup(32, OptTarget::Base);
    core::ExecutionResult result = runDotKernel(spec, queries, stored);
    EXPECT_EQ(topIndices(result, 4), (std::vector<int>{3, 6, 0, 7}));
    EXPECT_GT(result.perf.queryLatencyNs, 0.0);
    EXPECT_GT(result.perf.setupLatencyNs, 0.0);
}

TEST(EndToEnd, HdcCamMatchesHostReference)
{
    apps::Dataset ds = apps::makeMnistLike(10, 12);
    apps::HdcWorkload hdc = apps::encodeHdc(ds, 1024, 1, 12);
    ArchSpec spec = ArchSpec::dseSetup(32, OptTarget::Base);
    core::ExecutionResult result =
        runDotKernel(spec, hdc.queryHvs, hdc.classHvs);
    std::vector<int> cam = topIndices(
        result, static_cast<std::int64_t>(hdc.queryHvs.size()));
    EXPECT_EQ(cam, hdc.hostPredictions());
}

TEST(EndToEnd, KnnEuclideanKernelOnCam)
{
    apps::Dataset ds = apps::makePneumoniaLike(48, 8, 128);
    apps::KnnWorkload knn = apps::makeKnn(ds, 2, 3, 8);

    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    options.spec.camType = arch::CamDeviceType::Mcam;
    options.spec.bitsPerCell = 2;
    core::Compiler compiler(options);
    core::CompiledKernel kernel =
        compiler.compileTorchScript(apps::knnEuclideanSource(8, 48, 128, 3));
    core::ExecutionResult result =
        kernel.run({toBuffer(knn.queries), toBuffer(knn.stored)});

    auto host = knn.hostNeighbors();
    for (std::size_t q = 0; q < 8; ++q) {
        // Top-1 neighbor must agree with the host reference.
        EXPECT_EQ(result.outputs[1].asBuffer()->atInt(
                      {static_cast<std::int64_t>(q), 0}),
                  host[q][0])
            << "query " << q;
    }
}

TEST(EndToEnd, HostOnlyPathAgreesWithCamPath)
{
    Rng rng(17);
    std::vector<std::vector<float>> stored(6,
                                           std::vector<float>(96));
    for (auto &row : stored)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    std::vector<std::vector<float>> queries = {stored[2], stored[4]};

    core::CompilerOptions host_options;
    host_options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    host_options.hostOnly = true;
    core::Compiler host_compiler(host_options);
    auto host_kernel = host_compiler.compileTorchScript(
        apps::dotSimilaritySource(2, 6, 96, 1));
    auto host_result =
        host_kernel.run({toBuffer(queries), toBuffer(stored)});

    ArchSpec spec = ArchSpec::dseSetup(32, OptTarget::Base);
    auto cam_result = runDotKernel(spec, queries, stored);

    for (std::int64_t q = 0; q < 2; ++q)
        EXPECT_EQ(host_result.outputs[1].asBuffer()->atInt({q, 0}),
                  cam_result.outputs[1].asBuffer()->atInt({q, 0}));
}

TEST(EndToEnd, PowerTargetTradesLatencyForPower)
{
    apps::Dataset ds = apps::makeMnistLike(5, 6);
    apps::HdcWorkload hdc = apps::encodeHdc(ds, 1024, 1, 6);

    auto base = runDotKernel(ArchSpec::dseSetup(32, OptTarget::Base),
                             hdc.queryHvs, hdc.classHvs);
    auto power = runDotKernel(ArchSpec::dseSetup(32, OptTarget::Power),
                              hdc.queryHvs, hdc.classHvs);

    // Same work, serialized subarrays: slower but lower average power;
    // total energy unchanged (paper §IV-C1).
    EXPECT_GT(power.perf.queryLatencyNs, base.perf.queryLatencyNs * 1.5);
    EXPECT_LT(power.perf.avgPowerMw(), base.perf.avgPowerMw());
    EXPECT_NEAR(power.perf.queryEnergyPj, base.perf.queryEnergyPj,
                base.perf.queryEnergyPj * 0.01);
    // Functional results identical.
    EXPECT_EQ(topIndices(power, 6), topIndices(base, 6));
}

TEST(EndToEnd, DensityTargetReducesSubarrays)
{
    apps::Dataset ds = apps::makeMnistLike(5, 4);
    apps::HdcWorkload hdc = apps::encodeHdc(ds, 1024, 1, 4);

    auto base = runDotKernel(ArchSpec::dseSetup(64, OptTarget::Base),
                             hdc.queryHvs, hdc.classHvs);
    auto density = runDotKernel(ArchSpec::dseSetup(64, OptTarget::Density),
                                hdc.queryHvs, hdc.classHvs);

    // 1024/64 = 16 tiles; density packs 6 batches per 64-row subarray.
    EXPECT_EQ(base.perf.subarraysUsed, 16);
    EXPECT_EQ(density.perf.subarraysUsed, 3); // ceil(16/6)
    EXPECT_LT(density.perf.banksUsed * 1.0, base.perf.banksUsed + 1.0);
    // Selective search costs cycles.
    EXPECT_GT(density.perf.queryLatencyNs, base.perf.queryLatencyNs);
    // Results identical.
    EXPECT_EQ(topIndices(density, 4), topIndices(base, 4));
}

TEST(EndToEnd, CompiledMatchesManualDesign)
{
    // The Fig. 7 validation story: C4CAM-generated code against the
    // hand-crafted mapping, same simulator.
    apps::Dataset ds = apps::makeMnistLike(8, 6);
    apps::HdcWorkload hdc = apps::encodeHdc(ds, 512, 1, 6);

    ArchSpec spec = ArchSpec::validationSetup(32, 1);
    apps::ManualRunResult manual = runManualHdc(hdc, spec, 6);
    core::ExecutionResult compiled =
        runDotKernel(spec, hdc.queryHvs, hdc.classHvs);

    // Same predictions.
    EXPECT_EQ(topIndices(compiled, 6), manual.predictions);
    // Latency/energy within a few percent (different merge wiring).
    double lat_dev =
        std::abs(compiled.perf.queryLatencyNs -
                 manual.perf.queryLatencyNs) /
        manual.perf.queryLatencyNs;
    double energy_dev =
        std::abs(compiled.perf.queryEnergyPj -
                 manual.perf.queryEnergyPj) /
        manual.perf.queryEnergyPj;
    EXPECT_LT(lat_dev, 0.10);
    EXPECT_LT(energy_dev, 0.10);
}

TEST(EndToEnd, MultiBitConfigurationRuns)
{
    apps::Dataset ds = apps::makeMnistLike(5, 4);
    apps::HdcWorkload hdc = apps::encodeHdc(ds, 512, 2, 4);

    core::CompilerOptions options;
    options.spec = ArchSpec::validationSetup(32, 2);
    core::Compiler compiler(options);
    // 2-bit HDC uses euclidean matching.
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::knnEuclideanSource(4, 10, 512, 1));
    core::ExecutionResult result =
        kernel.run({toBuffer(hdc.queryHvs), toBuffer(hdc.classHvs)});
    std::vector<int> cam = topIndices(result, 4);
    EXPECT_EQ(cam, hdc.hostPredictions());
}

TEST(EndToEnd, DumpsAndTimingsAvailable)
{
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    options.dumpIntermediates = true;
    options.timePasses = true;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(2, 4, 64, 1));
    ASSERT_EQ(kernel.dumps().size(), 5u);
    EXPECT_EQ(kernel.dumps()[0].first, "torch-to-cim");
    EXPECT_EQ(kernel.dumps()[3].first, "cam-map");
    EXPECT_EQ(kernel.dumps()[4].first, "canonicalize");
    EXPECT_EQ(kernel.passTimings().size(), 5u);
    EXPECT_FALSE(kernel.entryPoint().empty());
    EXPECT_EQ(kernel.plan().colTiles, 2);
}
