/**
 * @file
 * Sharded scatter-gather serving: the bit-identity contract.
 *
 * A ShardedEngine over M devices must be observationally identical to
 * one big device in its OUTPUTS -- merged top-k values and global
 * indices -- for every M, on the plain, fused and async paths,
 * including the adversarial case of duplicate stored rows straddling
 * a shard boundary (the tie-break the merge comparator exists for).
 * Accounting is the deterministic shard aggregation (max latency,
 * summed energy), and tracing tiles each query's root span with a
 * scatter + shard-merge pair.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "apps/Workloads.h"
#include "core/AsyncServingEngine.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "core/SessionBackend.h"
#include "core/ShardedEngine.h"
#include "sim/Timing.h"
#include "support/Error.h"
#include "support/Rng.h"
#include "support/Trace.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;

namespace {

std::vector<std::vector<float>>
randomRows(std::int64_t n, std::int64_t d, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> rows(
        static_cast<std::size_t>(n),
        std::vector<float>(static_cast<std::size_t>(d)));
    for (auto &row : rows)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    return rows;
}

void
expectBuffersEqual(const rt::RtValue &a, const rt::RtValue &b)
{
    ASSERT_TRUE(a.isBuffer());
    ASSERT_TRUE(b.isBuffer());
    EXPECT_EQ(a.asBuffer()->shape(), b.asBuffer()->shape());
    EXPECT_EQ(a.asBuffer()->toVector(), b.asBuffer()->toVector());
}

void
expectOutputsIdentical(const core::ExecutionResult &sharded,
                       const core::ExecutionResult &serial)
{
    ASSERT_EQ(sharded.outputs.size(), serial.outputs.size());
    for (std::size_t i = 0; i < sharded.outputs.size(); ++i)
        expectBuffersEqual(sharded.outputs[i], serial.outputs[i]);
}

struct Workload
{
    core::CompilerOptions options;
    std::string source;
    core::CompiledKernel kernel;
    rt::BufferPtr storedBuf;
    std::vector<std::vector<rt::BufferPtr>> batches;
};

/** Dot-similarity serving workload with distinct query batches. */
Workload
makeWorkload(std::int64_t rows, std::int64_t dims, int k, int queries,
             std::uint64_t seed, bool tree_walk = false)
{
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    options.treeWalkExecution = tree_walk;
    std::string source = apps::dotSimilaritySource(1, rows, dims, k);
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(source);
    auto stored = randomRows(rows, dims, seed);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    std::vector<std::vector<rt::BufferPtr>> batches;
    for (int i = 0; i < queries; ++i)
        batches.push_back(
            {rt::Buffer::fromMatrix(
                 {stored[static_cast<std::size_t>(i) % stored.size()]}),
             stored_buf});
    return {std::move(options), std::move(source), std::move(kernel),
            std::move(stored_buf), std::move(batches)};
}

} // namespace

TEST(ShardPlan, SplitsContiguouslyWithDeterministicRemainder)
{
    core::ShardPlan plan = core::ShardPlan::compute(10, 3, 1);
    EXPECT_EQ(plan.totalRows, 10);
    ASSERT_EQ(plan.slices.size(), 3u);
    // 10 = 4 + 3 + 3: the first totalRows % shards slices carry the
    // extra row, and the slices tile [0, totalRows) in order.
    EXPECT_EQ(plan.slices[0].begin, 0);
    EXPECT_EQ(plan.slices[0].rows, 4);
    EXPECT_EQ(plan.slices[1].begin, 4);
    EXPECT_EQ(plan.slices[1].rows, 3);
    EXPECT_EQ(plan.slices[2].begin, 7);
    EXPECT_EQ(plan.slices[2].rows, 3);

    core::ShardPlan even = core::ShardPlan::compute(8, 4, 2);
    for (std::size_t s = 0; s < 4; ++s) {
        EXPECT_EQ(even.slices[s].begin, static_cast<std::int64_t>(2 * s));
        EXPECT_EQ(even.slices[s].rows, 2);
    }
}

TEST(ShardPlan, RefusesToStarveAShardBelowK)
{
    // A shard smaller than k cannot answer top-k locally; the plan
    // must reject the split instead of producing a short k-list.
    EXPECT_THROW(core::ShardPlan::compute(8, 4, 3), CompilerError);
    EXPECT_THROW(core::ShardPlan::compute(4, 8, 1), CompilerError);
    EXPECT_NO_THROW(core::ShardPlan::compute(8, 4, 2));
}

TEST(ShardedEngine, EveryShardCountMatchesTheSingleDeviceBitForBit)
{
    Workload w = makeWorkload(12, 64, 2, 18, 71);
    core::ExecutionSession session = w.kernel.createSession(w.batches[0]);
    std::vector<core::ExecutionResult> serial = session.runBatch(w.batches);

    for (int shards : {1, 2, 3, 4}) {
        core::ShardedEngineOptions sharding;
        sharding.shards = shards;
        core::ShardedEngine engine(w.options, w.source, w.batches[0],
                                   sharding);
        EXPECT_EQ(engine.numShards(), shards);
        EXPECT_EQ(engine.topK(), 2);
        for (std::size_t q = 0; q < w.batches.size(); ++q) {
            core::ExecutionResult r = engine.serve(w.batches[q]);
            expectOutputsIdentical(r, serial[q]);
            // Accounting is the shard aggregation, not the big
            // device's report: latency is the max over shards, and a
            // shard searches fewer rows, so it can never be slower.
            EXPECT_LE(r.perf.queryLatencyNs, serial[q].perf.queryLatencyNs)
                << shards << " shards, query " << q;
            EXPECT_GT(r.perf.searches, 0);
        }
        EXPECT_EQ(engine.queriesServed(),
                  static_cast<std::int64_t>(w.batches.size()));
        core::ServingStats stats = engine.stats();
        EXPECT_EQ(stats.queriesServed,
                  static_cast<std::int64_t>(w.batches.size()));
        EXPECT_GT(stats.p50LatencyUs, 0.0);
    }
}

TEST(ShardedEngine, DuplicateRowsAcrossTheShardBoundaryKeepStableOrder)
{
    // Rows 3 and 4 are byte-identical and land on DIFFERENT shards of
    // a 2-way split (slices [0,4) and [4,8)). A query equal to that
    // row makes both shards produce the same best value; the merge
    // must order the tie toward the lower GLOBAL index, exactly like
    // the single device's stable sort.
    const std::int64_t rows = 8;
    const std::int64_t dims = 32;
    auto stored = randomRows(rows, dims, 73);
    stored[4] = stored[3];

    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    std::string source = apps::dotSimilaritySource(1, rows, dims, 2);
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(source);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    std::vector<rt::BufferPtr> args = {
        rt::Buffer::fromMatrix({stored[3]}), stored_buf};

    core::ExecutionSession session = kernel.createSession(args);
    core::ExecutionResult serial = session.runQuery(args);

    core::ShardedEngineOptions sharding;
    sharding.shards = 2;
    core::ShardedEngine engine(options, source, args, sharding);
    core::ExecutionResult sharded = engine.serve(args);
    expectOutputsIdentical(sharded, serial);

    // And the order is the one the contract promises: the duplicate
    // pair fills the top-2, lower global index first.
    EXPECT_EQ(sharded.outputs[1].asBuffer()->atInt({0, 0}), 3);
    EXPECT_EQ(sharded.outputs[1].asBuffer()->atInt({0, 1}), 4);
}

TEST(ShardedEngine, FusedChunksMatchSerialReplay)
{
    Workload w = makeWorkload(12, 64, 2, 8, 79);
    core::ExecutionSession session = w.kernel.createSession(w.batches[0]);
    std::vector<core::ExecutionResult> serial = session.runBatch(w.batches);

    core::ShardedEngineOptions sharding;
    sharding.shards = 3;
    core::ShardedEngine engine(w.options, w.source, w.batches[0],
                               sharding);
    core::FusedBatchResult fused =
        engine.serveFusedChunk(w.batches, 0, w.batches.size());
    ASSERT_EQ(fused.results.size(), w.batches.size());
    double lat = 0.0;
    for (std::size_t q = 0; q < w.batches.size(); ++q) {
        expectOutputsIdentical(fused.results[q], serial[q]);
        lat += fused.results[q].perf.queryLatencyNs;
    }
    // The fused window's totals are the sums of the merged per-query
    // reports.
    EXPECT_EQ(fused.fused.k,
              static_cast<std::int64_t>(w.batches.size()));
    EXPECT_DOUBLE_EQ(fused.fused.total.latencyNs, lat);
}

TEST(ShardedEngine, ServesThroughTheAsyncFrontEnd)
{
    Workload w = makeWorkload(12, 64, 2, 16, 83);
    core::ExecutionSession session = w.kernel.createSession(w.batches[0]);
    std::vector<core::ExecutionResult> serial = session.runBatch(w.batches);

    core::ShardedEngineOptions sharding;
    sharding.shards = 2;
    sharding.replicasPerShard = 2;
    core::AsyncServingEngine engine(
        std::make_unique<core::ShardedEngine>(w.options, w.source,
                                              w.batches[0], sharding));
    EXPECT_EQ(engine.backend().concurrency(), 2);
    auto futures = engine.submitBatch(w.batches);
    for (std::size_t q = 0; q < futures.size(); ++q)
        expectOutputsIdentical(futures[q].get(), serial[q]);
    engine.drain();
    EXPECT_EQ(engine.stats().completed,
              static_cast<std::int64_t>(w.batches.size()));
}

TEST(ShardedEngine, TreeWalkBackEndShardsIdentically)
{
    // The shard layer sits above the execution back end: tree-walking
    // shard engines must merge to the same outputs as the plan-based
    // single device.
    Workload plan = makeWorkload(10, 32, 2, 6, 89);
    core::ExecutionSession session =
        plan.kernel.createSession(plan.batches[0]);
    std::vector<core::ExecutionResult> serial =
        session.runBatch(plan.batches);

    Workload walk = makeWorkload(10, 32, 2, 6, 89, /*tree_walk=*/true);
    core::ShardedEngineOptions sharding;
    sharding.shards = 2;
    core::ShardedEngine engine(walk.options, walk.source,
                               walk.batches[0], sharding);
    for (std::size_t q = 0; q < plan.batches.size(); ++q)
        expectOutputsIdentical(engine.serve(walk.batches[q]), serial[q]);
}

TEST(ShardedEngine, ValidatesTheUnshardedSignature)
{
    Workload w = makeWorkload(12, 64, 2, 1, 97);
    core::ShardedEngineOptions sharding;
    sharding.shards = 2;
    core::ShardedEngine engine(w.options, w.source, w.batches[0],
                               sharding);
    // Callers keep the single-big-device calling convention: the full
    // stored tensor, not a slice.
    EXPECT_THROW(engine.validateQuery({w.batches[0][0]}), CompilerError);
    EXPECT_THROW(engine.serve({w.batches[0][0]}), CompilerError);
    auto bad_stored = rt::Buffer::fromMatrix(randomRows(6, 64, 97));
    EXPECT_THROW(engine.serve({w.batches[0][0], bad_stored}),
                 CompilerError);
    // Still serves after rejected calls.
    EXPECT_NO_THROW(engine.serve(w.batches[0]));
}

TEST(ShardedEngine, RejectsSplitsTheStoredAxisCannotCarry)
{
    Workload w = makeWorkload(8, 32, 2, 1, 101);
    core::ShardedEngineOptions sharding;
    sharding.shards = 5; // 8 rows / 5 shards -> a shard below k=2
    EXPECT_THROW(core::ShardedEngine(w.options, w.source, w.batches[0],
                                     sharding),
                 CompilerError);
}

TEST(ShardedEngine, ScatterAndMergeSpansTileTheRootQuerySpan)
{
    Workload w = makeWorkload(12, 64, 2, 2, 103);
    core::ShardedEngineOptions sharding;
    sharding.shards = 2;
    core::ShardedEngine engine(w.options, w.source, w.batches[0],
                               sharding);
    support::TraceCollector collector;
    engine.enableTracing(&collector);
    engine.serve(w.batches[0]);
    engine.serve(w.batches[1]);

    std::vector<support::TraceEvent> events = collector.snapshot();
    std::vector<const support::TraceEvent *> roots;
    for (const auto &ev : events)
        if (std::string(ev.name) == "query")
            roots.push_back(&ev);
    ASSERT_EQ(roots.size(), 2u);

    for (const support::TraceEvent *root : roots) {
        const support::TraceEvent *scatter = nullptr;
        const support::TraceEvent *merge = nullptr;
        for (const auto &ev : events) {
            if (ev.parentSpanId != root->spanId)
                continue;
            if (std::string(ev.name) == "scatter")
                scatter = &ev;
            else if (std::string(ev.name) == "shard-merge")
                merge = &ev;
        }
        ASSERT_NE(scatter, nullptr);
        ASSERT_NE(merge, nullptr);
        // All three intervals come from shared clock reads, so the
        // telescoping is EXACT in-process (the JSON round-trip epsilon
        // only exists for serialized traces).
        EXPECT_EQ(scatter->startUs, root->startUs);
        EXPECT_EQ(merge->startUs, scatter->startUs + scatter->durUs);
        EXPECT_EQ(root->startUs + root->durUs,
                  merge->startUs + merge->durUs);
        // The shards' own execute/merge spans parent under scatter --
        // one pair per shard.
        int shard_children = 0;
        for (const auto &ev : events)
            if (ev.parentSpanId == scatter->spanId) {
                ++shard_children;
                EXPECT_LE(ev.startUs + ev.durUs,
                          merge->startUs + 1e-9);
            }
        EXPECT_EQ(shard_children, 2 * 2); // execute + merge, 2 shards
    }
}

TEST(ShardedEngine, AggregatedReportsFollowTheMaxSumRule)
{
    sim::PerfReport a;
    a.queriesServed = 1;
    a.setupLatencyNs = 100.0;
    a.queryLatencyNs = 10.0;
    a.queryEnergyPj = 3.0;
    a.searches = 4;
    a.writes = 2;
    a.subarraysUsed = 5;
    sim::PerfReport b = a;
    b.setupLatencyNs = 80.0;
    b.queryLatencyNs = 25.0;
    b.queryEnergyPj = 7.0;
    b.searches = 6;

    sim::PerfReport agg = sim::aggregateShardReports({a, b});
    // Shards run in parallel: latency is the slowest shard...
    EXPECT_DOUBLE_EQ(agg.setupLatencyNs, 100.0);
    EXPECT_DOUBLE_EQ(agg.queryLatencyNs, 25.0);
    // ...while work done is the sum of all shards.
    EXPECT_DOUBLE_EQ(agg.queryEnergyPj, 10.0);
    EXPECT_EQ(agg.searches, 10);
    EXPECT_EQ(agg.writes, 4);
    EXPECT_EQ(agg.subarraysUsed, 10);
    // Query counters describe the one logical stream, not M copies.
    EXPECT_EQ(agg.queriesServed, 1);
    // Empty shard lists aggregate to a zero report, not UB.
    EXPECT_EQ(sim::aggregateShardReports({}).queriesServed, 0);
}

TEST(SingleSessionBackend, AsyncOverOneSessionMatchesSerialReplay)
{
    Workload w = makeWorkload(12, 64, 2, 12, 107);
    core::ExecutionSession reference =
        w.kernel.createSession(w.batches[0]);
    std::vector<core::ExecutionResult> serial =
        reference.runBatch(w.batches);

    core::AsyncServingEngine engine(
        std::make_unique<core::SingleSessionBackend>(
            w.kernel.createSession(w.batches[0])));
    EXPECT_EQ(engine.backend().concurrency(), 1);
    EXPECT_TRUE(engine.backend().persistent());
    auto futures = engine.submitBatch(w.batches);
    for (std::size_t q = 0; q < futures.size(); ++q) {
        core::ExecutionResult r = futures[q].get();
        expectOutputsIdentical(r, serial[q]);
        // One session, one device: reports are bit-identical too (the
        // sharded engine's aggregated reports intentionally are not).
        EXPECT_EQ(r.perf.queryLatencyNs, serial[q].perf.queryLatencyNs);
        EXPECT_EQ(r.perf.queryEnergyPj, serial[q].perf.queryEnergyPj);
    }
    engine.drain();
    EXPECT_EQ(engine.backend().queriesServed(),
              static_cast<std::int64_t>(w.batches.size()));
}
