/**
 * @file
 * Process-wide PlanCache behavior across every compile consumer.
 *
 * The cache's contract: one plan compile per distinct kernel shape,
 * no matter how many sessions, serving replicas, shards or DSE
 * candidates ask for it -- and never a stale plan after a mutable
 * module() access. Counters are process-global, so every expectation
 * here is a delta around the action under test.
 */

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "core/DseExplorer.h"
#include "core/ExecutionSession.h"
#include "core/PlanCache.h"
#include "core/ServingEngine.h"
#include "core/SessionBackend.h"
#include "core/ShardedEngine.h"
#include "support/Rng.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;

namespace {

std::vector<std::vector<float>>
randomRows(std::int64_t n, std::int64_t d, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> rows(
        static_cast<std::size_t>(n),
        std::vector<float>(static_cast<std::size_t>(d)));
    for (auto &row : rows)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    return rows;
}

core::CompilerOptions
baseOptions()
{
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    return options;
}

} // namespace

TEST(PlanCache, EqualSliceShardsCompileOnce)
{
    // 16 rows over 4 shards = four identical 4-row shard kernels: the
    // re-instanced modules print identically, so the shard compiles
    // collapse to ONE plan compile and three cache hits. The engine
    // also compiles the full-size reference kernel; prewarming that
    // shape first keeps the deltas about the shards alone.
    const std::int64_t rows = 16;
    const std::int64_t dims = 96;
    core::CompilerOptions options = baseOptions();
    std::string source = apps::dotSimilaritySource(1, rows, dims, 1);
    auto stored = randomRows(rows, dims, 311);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    std::vector<rt::BufferPtr> args = {
        rt::Buffer::fromMatrix({stored[5]}), stored_buf};

    core::Compiler compiler(options);
    core::CompiledKernel reference = compiler.compileTorchScript(source);
    core::ExecutionSession session = reference.createSession(args);
    core::ExecutionResult serial = session.runQuery(args);

    core::PlanCacheStats before = core::PlanCache::instance().stats();
    core::ShardedEngineOptions sharding;
    sharding.shards = 4;
    core::ShardedEngine engine(options, source, args, sharding);
    core::PlanCacheStats after = core::PlanCache::instance().stats();

    // reference shape: 1 hit (prewarmed above); shard shape: 1 miss +
    // 3 hits.
    EXPECT_EQ(after.misses - before.misses, 1u);
    EXPECT_EQ(after.hits - before.hits, 4u);

    core::ExecutionResult sharded = engine.serve(args);
    ASSERT_EQ(sharded.outputs.size(), serial.outputs.size());
    for (std::size_t i = 0; i < serial.outputs.size(); ++i)
        EXPECT_EQ(sharded.outputs[i].asBuffer()->toVector(),
                  serial.outputs[i].asBuffer()->toVector());

    core::ServingStats stats = engine.stats();
    EXPECT_GE(stats.planCache.hits, after.hits);
    EXPECT_GE(stats.planCache.entries, 1u);
}

TEST(PlanCache, RacingCompilesOfOneShapePerformOneCompilation)
{
    // getOrCompile compiles under the cache mutex: N racing kernel
    // builds of a shape never seen before must produce exactly one
    // miss; the other N-1 block briefly and share the winner's plan.
    const std::string source = apps::dotSimilaritySource(1, 8, 160, 1);
    core::PlanCacheStats before = core::PlanCache::instance().stats();

    constexpr int kThreads = 8;
    std::vector<std::future<std::shared_ptr<const rt::ExecutionPlan>>>
        futures;
    futures.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        futures.push_back(std::async(std::launch::async, [&source]() {
            core::Compiler compiler(baseOptions());
            core::CompiledKernel kernel =
                compiler.compileTorchScript(source);
            return kernel.executionPlan();
        }));
    std::vector<std::shared_ptr<const rt::ExecutionPlan>> plans;
    for (auto &f : futures)
        plans.push_back(f.get());

    core::PlanCacheStats after = core::PlanCache::instance().stats();
    EXPECT_EQ(after.misses - before.misses, 1u);
    EXPECT_EQ(after.hits - before.hits,
              static_cast<std::uint64_t>(kThreads - 1));
    for (const auto &plan : plans) {
        ASSERT_NE(plan, nullptr);
        // One compile means one object: every kernel shares it.
        EXPECT_EQ(plan, plans.front());
    }
}

TEST(PlanCache, LruEvictsLeastRecentlyUsedShape)
{
    core::PlanCache &cache = core::PlanCache::instance();
    const std::size_t restore = cache.capacity();
    cache.setCapacity(2);

    core::PlanCacheStats before = cache.stats();
    for (std::int64_t dims : {112, 144, 176}) {
        core::Compiler compiler(baseOptions());
        compiler.compileTorchScript(
            apps::dotSimilaritySource(1, 8, dims, 1));
    }
    core::PlanCacheStats after = cache.stats();
    EXPECT_EQ(after.misses - before.misses, 3u);
    EXPECT_GE(after.evictions - before.evictions, 1u);
    EXPECT_LE(after.entries, 2u);

    cache.setCapacity(restore);
}

TEST(PlanCache, DseSweepCompilesEachCandidateOnce)
{
    // Distinct ArchSpecs lower to distinct modules (mapping structure
    // is in the IR), so the first sweep misses once per candidate; an
    // identical second sweep is all hits, zero compiles.
    const std::string source = apps::dotSimilaritySource(2, 8, 192, 1);
    Rng rng(99);
    auto stored = rt::Buffer::alloc(rt::DType::F32, {8, 192});
    auto queries = rt::Buffer::alloc(rt::DType::F32, {2, 192});
    for (std::int64_t r = 0; r < 8; ++r)
        for (std::int64_t c = 0; c < 192; ++c)
            stored->set({r, c}, rng.nextBool() ? 1.0 : -1.0);
    for (std::int64_t r = 0; r < 2; ++r)
        for (std::int64_t c = 0; c < 192; ++c)
            queries->set({r, c}, stored->at({r * 3, c}));
    std::vector<rt::BufferPtr> args = {queries, stored};
    std::vector<ArchSpec> candidates = {
        ArchSpec::dseSetup(16, OptTarget::Base),
        ArchSpec::dseSetup(32, OptTarget::Power),
        ArchSpec::dseSetup(64, OptTarget::Latency),
    };

    core::DseExplorer explorer;
    core::PlanCacheStats before = core::PlanCache::instance().stats();
    core::DseResult first = explorer.explore(source, candidates, args);
    core::PlanCacheStats mid = core::PlanCache::instance().stats();
    EXPECT_EQ(mid.misses - before.misses, candidates.size());

    core::DseResult second = explorer.explore(source, candidates, args);
    core::PlanCacheStats after = core::PlanCache::instance().stats();
    EXPECT_EQ(after.misses - mid.misses, 0u);
    EXPECT_GE(after.hits - mid.hits, candidates.size());

    ASSERT_EQ(first.points.size(), second.points.size());
    for (std::size_t i = 0; i < first.points.size(); ++i)
        EXPECT_EQ(first.points[i].latencyNs(), second.points[i].latencyNs());
}

TEST(PlanCache, MutableModuleAccessInvalidatesTheEntry)
{
    // The retune workflow: run, hand out the mutable module (a retune
    // pass may rewrite it), run again. The second run must recompile
    // from the current module -- a miss, not a stale hit -- and with
    // the module untouched the outputs stay identical.
    const std::int64_t rows = 8;
    const std::int64_t dims = 224;
    std::string source = apps::dotSimilaritySource(1, rows, dims, 1);
    auto stored = randomRows(rows, dims, 413);
    std::vector<rt::BufferPtr> args = {
        rt::Buffer::fromMatrix({stored[2]}),
        rt::Buffer::fromMatrix(stored)};

    core::Compiler compiler(baseOptions());
    core::CompiledKernel kernel = compiler.compileTorchScript(source);
    core::ExecutionResult first = kernel.run(args);

    core::PlanCacheStats before = core::PlanCache::instance().stats();
    kernel.module(); // mutable access: drops the cached plan
    std::shared_ptr<const rt::ExecutionPlan> recompiled =
        kernel.executionPlan();
    ASSERT_NE(recompiled, nullptr);
    core::PlanCacheStats after = core::PlanCache::instance().stats();
    EXPECT_EQ(after.misses - before.misses, 1u);

    core::ExecutionResult second = kernel.run(args);
    ASSERT_EQ(first.outputs.size(), second.outputs.size());
    for (std::size_t i = 0; i < first.outputs.size(); ++i)
        EXPECT_EQ(first.outputs[i].asBuffer()->toVector(),
                  second.outputs[i].asBuffer()->toVector());
    EXPECT_EQ(first.perf.queryLatencyNs, second.perf.queryLatencyNs);
}

TEST(PlanCache, ServingStatsExposeTheSharedCounters)
{
    const std::int64_t rows = 8;
    const std::int64_t dims = 208;
    std::string source = apps::dotSimilaritySource(1, rows, dims, 1);
    auto stored = randomRows(rows, dims, 517);
    std::vector<rt::BufferPtr> args = {
        rt::Buffer::fromMatrix({stored[1]}),
        rt::Buffer::fromMatrix(stored)};

    core::Compiler compiler(baseOptions());
    core::CompiledKernel kernel = compiler.compileTorchScript(source);
    std::unique_ptr<core::ServingEngine> engine =
        kernel.createServingEngine(args, 2);
    engine->serve(args);

    core::ServingStats stats = engine->stats();
    core::PlanCacheStats global = core::PlanCache::instance().stats();
    // stats() snapshots the process-wide counters; taken back-to-back
    // with no concurrent compiles they agree exactly.
    EXPECT_EQ(stats.planCache.misses, global.misses);
    EXPECT_GE(global.misses, 1u);
    EXPECT_GE(global.entries, 1u);
    EXPECT_EQ(stats.planCache.entries, global.entries);
}
