/**
 * @file
 * Fused multi-query batching invariants.
 *
 * Under sim::FusionModel::ExactSerial (the default) the fused window's
 * totals must equal the sum of the per-query windows exactly (fusion
 * changes the attribution, never the physics) and per-query reports
 * stay bit-identical to serial serving. Under TrueFused the pass
 * charges each subarray's precharge/drive once, so totals come in
 * strictly below the serial sum. Outputs are bit-identical to serial
 * serving in both models, and the amortized attribution must divide
 * the shared components by K.
 */

#include <gtest/gtest.h>

#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "core/ServingEngine.h"
#include "sim/FaultInjector.h"
#include "support/Error.h"
#include "support/Rng.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;

namespace {

std::vector<std::vector<float>>
randomRows(std::int64_t n, std::int64_t d, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> rows(
        static_cast<std::size_t>(n),
        std::vector<float>(static_cast<std::size_t>(d)));
    for (auto &row : rows)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    return rows;
}

core::CompiledKernel
compileDotKernel(std::int64_t rows, std::int64_t dims,
                 sim::FusionModel model = sim::FusionModel::ExactSerial)
{
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    options.fusionModel = model;
    core::Compiler compiler(options);
    return compiler.compileTorchScript(
        apps::dotSimilaritySource(1, rows, dims, 1));
}

} // namespace

TEST(FusedBatch, K4TotalsEqualSumOfSerialWindows)
{
    auto stored = randomRows(8, 64, 41);
    core::CompiledKernel kernel = compileDotKernel(8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);

    std::vector<std::vector<rt::BufferPtr>> queries;
    for (int i = 0; i < 4; ++i)
        queries.push_back(
            {rt::Buffer::fromMatrix({stored[static_cast<std::size_t>(
                 i * 2)]}),
             stored_buf});

    // Serial reference: a separate session, same stream.
    core::ExecutionSession serial = kernel.createSession(queries[0]);
    std::vector<core::ExecutionResult> serial_results =
        serial.runBatch(queries);

    core::ExecutionSession session = kernel.createSession(queries[0]);
    core::FusedBatchResult fused = session.runFusedBatch(queries);

    ASSERT_EQ(fused.results.size(), 4u);
    EXPECT_EQ(fused.fused.k, 4);
    EXPECT_EQ(fused.fused.queriesFolded, 4);

    double lat = 0.0;
    double energy = 0.0;
    double cell = 0.0;
    double sense = 0.0;
    double drive = 0.0;
    double merge = 0.0;
    std::int64_t searches = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        const sim::PerfReport &q = serial_results[i].perf;
        lat += q.queryLatencyNs;
        energy += q.queryEnergyPj;
        cell += q.cellEnergyPj;
        sense += q.senseEnergyPj;
        drive += q.driveEnergyPj;
        merge += q.mergeEnergyPj;
        searches += q.searches;
        // Per-query reports inside the fused pass stay bit-identical
        // to serial serving.
        EXPECT_EQ(fused.results[i].perf.queryLatencyNs,
                  q.queryLatencyNs);
        EXPECT_EQ(fused.results[i].perf.queryEnergyPj, q.queryEnergyPj);
        EXPECT_EQ(fused.results[i].perf.searches, q.searches);
        EXPECT_EQ(fused.results[i].outputs[1].asBuffer()->toVector(),
                  serial_results[i].outputs[1].asBuffer()->toVector());
    }
    // The fused totals ARE the sum -- exact equality, not approximate.
    EXPECT_EQ(fused.fused.total.latencyNs, lat);
    EXPECT_EQ(fused.fused.total.energyPj, energy);
    EXPECT_EQ(fused.fused.cellEnergyPj, cell);
    EXPECT_EQ(fused.fused.senseEnergyPj, sense);
    EXPECT_EQ(fused.fused.driveEnergyPj, drive);
    EXPECT_EQ(fused.fused.mergeEnergyPj, merge);
    EXPECT_EQ(fused.fused.searches, searches);
}

TEST(FusedBatch, AmortizedAttributionDividesByK)
{
    auto stored = randomRows(8, 64, 43);
    core::CompiledKernel kernel = compileDotKernel(8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);

    std::vector<std::vector<rt::BufferPtr>> queries;
    for (int i = 0; i < 4; ++i)
        queries.push_back(
            {rt::Buffer::fromMatrix({stored[0]}), stored_buf});

    core::ExecutionSession session = kernel.createSession(queries[0]);
    core::FusedBatchResult fused = session.runFusedBatch(queries);

    EXPECT_DOUBLE_EQ(fused.fused.latencyPerQueryNs(),
                     fused.fused.total.latencyNs / 4.0);
    EXPECT_DOUBLE_EQ(fused.fused.driveEnergyPerQueryPj(),
                     fused.fused.driveEnergyPj / 4.0);

    const sim::PerfReport &report = fused.fusedReport;
    EXPECT_EQ(report.fusedBatchK, 4);
    EXPECT_EQ(report.queriesServed, 4);
    EXPECT_DOUBLE_EQ(report.fusedDriveEnergyPerQueryPj(),
                     report.driveEnergyPj / 4.0);
    EXPECT_DOUBLE_EQ(report.fusedSetupEnergyPerQueryPj(),
                     report.setupEnergyPj / 4.0);
    // Setup fields come from the session's one-time programming.
    EXPECT_EQ(report.setupLatencyNs,
              session.setupReport().setupLatencyNs);
    EXPECT_GT(report.fusedDriveEnergyPerQueryPj(), 0.0);
    // The amortized drive share is strictly below one query's full
    // drive energy times K (i.e. fusion attribution actually divides).
    EXPECT_LT(report.fusedDriveEnergyPerQueryPj(), report.driveEnergyPj);
}

TEST(FusedBatch, SessionAggregateCountsFusedQueries)
{
    auto stored = randomRows(8, 64, 47);
    core::CompiledKernel kernel = compileDotKernel(8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    std::vector<std::vector<rt::BufferPtr>> queries;
    for (int i = 0; i < 4; ++i)
        queries.push_back(
            {rt::Buffer::fromMatrix({stored[0]}), stored_buf});

    core::ExecutionSession session = kernel.createSession(queries[0]);
    session.runFusedBatch(queries);
    EXPECT_EQ(session.queriesServed(), 4);
    sim::PerfReport total = session.aggregateReport();
    EXPECT_EQ(total.queriesServed, 4);
    // Setup stays paid once.
    EXPECT_EQ(total.setupLatencyNs, session.setupReport().setupLatencyNs);
}

TEST(FusedBatch, EmptyBatchRejected)
{
    auto stored = randomRows(8, 64, 53);
    core::CompiledKernel kernel = compileDotKernel(8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    core::ExecutionSession session = kernel.createSession(
        {rt::Buffer::fromMatrix({stored[0]}), stored_buf});
    EXPECT_THROW(session.runFusedBatch({}), CompilerError);
    // A malformed query fails argument validation before the fused
    // window opens; the session stays usable afterwards.
    EXPECT_THROW(session.runFusedBatch({{stored_buf, stored_buf}}),
                 CompilerError);
    core::FusedBatchResult ok = session.runFusedBatch(
        {{rt::Buffer::fromMatrix({stored[2]}), stored_buf}});
    EXPECT_EQ(ok.results[0].outputs[1].asBuffer()->atInt({0, 0}), 2);
}

TEST(FusedBatch, HostOnlySessionSynthesizesFusedAccounting)
{
    auto stored = randomRows(6, 96, 59);
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    options.hostOnly = true;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(1, 6, 96, 1));
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    core::ExecutionSession session = kernel.createSession(
        {rt::Buffer::fromMatrix({stored[0]}), stored_buf});
    EXPECT_FALSE(session.persistent());

    std::vector<std::vector<rt::BufferPtr>> queries;
    for (int i = 0; i < 3; ++i)
        queries.push_back(
            {rt::Buffer::fromMatrix({stored[static_cast<std::size_t>(
                 i)]}),
             stored_buf});
    core::FusedBatchResult fused = session.runFusedBatch(queries);
    ASSERT_EQ(fused.results.size(), 3u);
    EXPECT_EQ(fused.fused.k, 3);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(fused.results[static_cast<std::size_t>(i)]
                      .outputs[1]
                      .asBuffer()
                      ->atInt({0, 0}),
                  i);
}

TEST(FusedBatch, EngineChunksStreamAndMatchesSerial)
{
    auto stored = randomRows(8, 64, 61);
    core::CompiledKernel kernel = compileDotKernel(8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);

    std::vector<std::vector<rt::BufferPtr>> queries;
    for (int i = 0; i < 10; ++i)
        queries.push_back(
            {rt::Buffer::fromMatrix({stored[static_cast<std::size_t>(
                 i % 8)]}),
             stored_buf});

    core::ExecutionSession serial = kernel.createSession(queries[0]);
    std::vector<core::ExecutionResult> serial_results =
        serial.runBatch(queries);

    auto engine = kernel.createServingEngine(queries[0], 2);
    std::vector<core::FusedBatchResult> chunks =
        engine->runFusedBatch(queries, 4);

    // 10 queries at width 4 -> chunks of 4, 4, 2 in stream order.
    ASSERT_EQ(chunks.size(), 3u);
    EXPECT_EQ(chunks[0].fused.k, 4);
    EXPECT_EQ(chunks[1].fused.k, 4);
    EXPECT_EQ(chunks[2].fused.k, 2);

    std::size_t idx = 0;
    for (const core::FusedBatchResult &chunk : chunks) {
        double lat = 0.0;
        std::int64_t searches = 0;
        for (const core::ExecutionResult &r : chunk.results) {
            const sim::PerfReport &ref = serial_results[idx].perf;
            EXPECT_EQ(r.perf.queryLatencyNs, ref.queryLatencyNs);
            EXPECT_EQ(r.perf.queryEnergyPj, ref.queryEnergyPj);
            EXPECT_EQ(r.outputs[1].asBuffer()->toVector(),
                      serial_results[idx].outputs[1].asBuffer()
                          ->toVector());
            lat += r.perf.queryLatencyNs;
            searches += r.perf.searches;
            ++idx;
        }
        EXPECT_EQ(chunk.fused.total.latencyNs, lat);
        EXPECT_EQ(chunk.fused.searches, searches);
        EXPECT_EQ(chunk.fusedReport.fusedBatchK, chunk.fused.k);
    }
    EXPECT_EQ(engine->queriesServed(), 10);
}

TEST(FusedBatch, TrueFusedK8ComesInStrictlyBelowSerialSum)
{
    // The true fused-search device model: a K-wide fused pass charges
    // each subarray's precharge/data-line drive once, so the fused
    // totals must land strictly BELOW the serial sum while outputs
    // stay bit-identical. Sense/merge work and search counts are not
    // amortizable and must stay exactly equal to serial.
    auto stored = randomRows(8, 64, 71);
    core::CompiledKernel serial_kernel = compileDotKernel(8, 64);
    core::CompiledKernel fused_kernel =
        compileDotKernel(8, 64, sim::FusionModel::TrueFused);
    auto stored_buf = rt::Buffer::fromMatrix(stored);

    std::vector<std::vector<rt::BufferPtr>> queries;
    for (int i = 0; i < 8; ++i)
        queries.push_back(
            {rt::Buffer::fromMatrix({stored[static_cast<std::size_t>(
                 i)]}),
             stored_buf});

    core::ExecutionSession serial =
        serial_kernel.createSession(queries[0]);
    std::vector<core::ExecutionResult> serial_results =
        serial.runBatch(queries);

    core::ExecutionSession session =
        fused_kernel.createSession(queries[0]);
    core::FusedBatchResult fused = session.runFusedBatch(queries);

    ASSERT_EQ(fused.results.size(), 8u);
    double lat = 0.0;
    double energy = 0.0;
    double cell = 0.0;
    double sense = 0.0;
    double drive = 0.0;
    double merge = 0.0;
    std::int64_t searches = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        const sim::PerfReport &q = serial_results[i].perf;
        lat += q.queryLatencyNs;
        energy += q.queryEnergyPj;
        cell += q.cellEnergyPj;
        sense += q.senseEnergyPj;
        drive += q.driveEnergyPj;
        merge += q.mergeEnergyPj;
        searches += q.searches;
        // Outputs are bit-identical in every fusion model.
        EXPECT_EQ(fused.results[i].outputs[1].asBuffer()->toVector(),
                  serial_results[i].outputs[1].asBuffer()->toVector());
    }
    // The first query of the pass drives every subarray itself, so its
    // report still matches serial bit for bit...
    EXPECT_EQ(fused.results[0].perf.queryLatencyNs,
              serial_results[0].perf.queryLatencyNs);
    EXPECT_EQ(fused.results[0].perf.queryEnergyPj,
              serial_results[0].perf.queryEnergyPj);
    // ...and every later query rides the already-driven lines.
    for (std::size_t i = 1; i < 8; ++i) {
        EXPECT_LT(fused.results[i].perf.queryLatencyNs,
                  serial_results[i].perf.queryLatencyNs);
        EXPECT_LT(fused.results[i].perf.queryEnergyPj,
                  serial_results[i].perf.queryEnergyPj);
    }

    // Amortizable components (drive, cell precharge, latency, total
    // energy) come in strictly below the serial sum.
    EXPECT_LT(fused.fused.total.latencyNs, lat);
    EXPECT_LT(fused.fused.total.energyPj, energy);
    EXPECT_LT(fused.fused.cellEnergyPj, cell);
    EXPECT_LT(fused.fused.driveEnergyPj, drive);
    // Non-amortizable components stay exactly equal.
    EXPECT_EQ(fused.fused.senseEnergyPj, sense);
    EXPECT_EQ(fused.fused.mergeEnergyPj, merge);
    EXPECT_EQ(fused.fused.searches, searches);
    EXPECT_EQ(fused.fusedReport.fusedBatchK, 8);
    EXPECT_EQ(fused.fusedReport.queriesServed, 8);
    EXPECT_LT(fused.fusedReport.queryEnergyPj / 8.0,
              energy / 8.0);
}

TEST(FusedBatch, TrueFusedAbortClearsPerPassDriveState)
{
    // A fused pass that aborts mid-batch (transient search fault) must
    // discard its drive bookkeeping: the retried pass pays the full
    // per-pass drive again, as if the aborted pass never happened.
    auto stored = randomRows(8, 64, 73);
    core::CompiledKernel fused_kernel =
        compileDotKernel(8, 64, sim::FusionModel::TrueFused);
    core::CompiledKernel serial_kernel = compileDotKernel(8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);

    std::vector<std::vector<rt::BufferPtr>> queries;
    for (int i = 0; i < 4; ++i)
        queries.push_back(
            {rt::Buffer::fromMatrix({stored[static_cast<std::size_t>(
                 i)]}),
             stored_buf});

    core::ExecutionSession serial =
        serial_kernel.createSession(queries[0]);
    std::vector<core::ExecutionResult> serial_results =
        serial.runBatch(queries);

    // One replica, one scripted transient at the third device search:
    // it lands inside the fused chunk, which aborts as a unit.
    sim::FaultSpec spec;
    sim::FaultRule rule;
    rule.kind = sim::FaultRule::Kind::Transient;
    rule.device = 0;
    rule.atSearch = 3;
    spec.rules.push_back(rule);
    auto injector = std::make_shared<sim::FaultInjector>(spec);

    auto engine = fused_kernel.createServingEngine(queries[0], 1);
    engine->attachFaultInjector(injector);
    EXPECT_THROW(engine->runFusedBatch(queries, 4), sim::TransientFault);
    EXPECT_EQ(injector->stats().transientsFired, 1);
    EXPECT_EQ(engine->queriesServed(), 0);

    // Fault source removed, the same engine serves the same batch with
    // clean per-pass accounting: the first query pays full drive again
    // (bit-identical to serial), later queries amortize it.
    engine->attachFaultInjector(nullptr);
    std::vector<core::FusedBatchResult> chunks =
        engine->runFusedBatch(queries, 4);
    ASSERT_EQ(chunks.size(), 1u);
    const core::FusedBatchResult &chunk = chunks[0];
    ASSERT_EQ(chunk.results.size(), 4u);
    EXPECT_EQ(chunk.results[0].perf.queryEnergyPj,
              serial_results[0].perf.queryEnergyPj);
    double serial_energy = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(chunk.results[i].outputs[1].asBuffer()->toVector(),
                  serial_results[i].outputs[1].asBuffer()->toVector());
        serial_energy += serial_results[i].perf.queryEnergyPj;
    }
    EXPECT_LT(chunk.fused.total.energyPj, serial_energy);
    EXPECT_EQ(chunk.fused.queriesFolded, 4);
    EXPECT_EQ(chunk.fusedReport.fusedBatchK, 4);
    EXPECT_EQ(engine->queriesServed(), 4);
}

TEST(FusedBatch, EngineRejectsBadWidth)
{
    auto stored = randomRows(8, 64, 67);
    core::CompiledKernel kernel = compileDotKernel(8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    auto engine = kernel.createServingEngine(
        {rt::Buffer::fromMatrix({stored[0]}), stored_buf}, 1);
    EXPECT_THROW(engine->runFusedBatch({}, 0), CompilerError);
    EXPECT_EQ(engine->runFusedBatch({}, 4).size(), 0u);
}
