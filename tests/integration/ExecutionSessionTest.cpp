/**
 * @file
 * Persistent execution sessions: setup-once/query-many invariants.
 *
 * Locks the serving contract: a reused session returns the same
 * results and reports the same per-query cost as the single-shot
 * CompiledKernel::run() path, for query 1 and for query N alike, and
 * the aggregate report amortizes the one-time setup over the batch.
 */

#include <gtest/gtest.h>

#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "core/ExecutionSession.h"
#include "support/Error.h"
#include "support/Rng.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;

namespace {

std::vector<std::vector<float>>
randomRows(std::int64_t n, std::int64_t d, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<float>> rows(
        static_cast<std::size_t>(n),
        std::vector<float>(static_cast<std::size_t>(d)));
    for (auto &row : rows)
        for (auto &v : row)
            v = rng.nextBool() ? 1.0f : -1.0f;
    return rows;
}

core::CompiledKernel
compileDotKernel(const ArchSpec &spec, std::int64_t queries,
                 std::int64_t rows, std::int64_t dims, int k = 1)
{
    core::CompilerOptions options;
    options.spec = spec;
    core::Compiler compiler(options);
    return compiler.compileTorchScript(
        apps::dotSimilaritySource(queries, rows, dims, k));
}

void
expectBuffersEqual(const rt::RtValue &a, const rt::RtValue &b)
{
    ASSERT_TRUE(a.isBuffer());
    ASSERT_TRUE(b.isBuffer());
    EXPECT_EQ(a.asBuffer()->shape(), b.asBuffer()->shape());
    EXPECT_EQ(a.asBuffer()->toVector(), b.asBuffer()->toVector());
}

/** Field-by-field exact comparison of two perf reports. */
void
expectReportsIdentical(const sim::PerfReport &a, const sim::PerfReport &b)
{
    EXPECT_EQ(a.setupLatencyNs, b.setupLatencyNs);
    EXPECT_EQ(a.setupEnergyPj, b.setupEnergyPj);
    EXPECT_EQ(a.queryLatencyNs, b.queryLatencyNs);
    EXPECT_EQ(a.queryEnergyPj, b.queryEnergyPj);
    EXPECT_EQ(a.cellEnergyPj, b.cellEnergyPj);
    EXPECT_EQ(a.senseEnergyPj, b.senseEnergyPj);
    EXPECT_EQ(a.driveEnergyPj, b.driveEnergyPj);
    EXPECT_EQ(a.mergeEnergyPj, b.mergeEnergyPj);
    EXPECT_EQ(a.searches, b.searches);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.subarraysUsed, b.subarraysUsed);
    EXPECT_EQ(a.subarraysAllocated, b.subarraysAllocated);
    EXPECT_EQ(a.banksUsed, b.banksUsed);
}

} // namespace

TEST(ExecutionSession, SetupRunsNoSearches)
{
    auto stored = randomRows(8, 64, 3);
    core::CompiledKernel kernel =
        compileDotKernel(ArchSpec::dseSetup(32, OptTarget::Base), 1, 8, 64);
    core::ExecutionSession session = kernel.createSession(
        {rt::Buffer::fromMatrix({stored[0]}),
         rt::Buffer::fromMatrix(stored)});

    EXPECT_TRUE(session.persistent());
    EXPECT_EQ(session.queriesServed(), 0);
    const sim::PerfReport &setup = session.setupReport();
    EXPECT_GT(setup.setupLatencyNs, 0.0);
    EXPECT_GT(setup.writes, 0);
    EXPECT_EQ(setup.searches, 0);
    EXPECT_EQ(setup.queryLatencyNs, 0.0);
    EXPECT_EQ(setup.queriesServed, 0);
    // Guarded aggregates stay finite with zero queries served.
    EXPECT_EQ(setup.avgQueryLatencyNs(), 0.0);
    EXPECT_EQ(setup.amortizedLatencyNs(), 0.0);
}

TEST(ExecutionSession, FirstQueryMatchesSingleShotExactly)
{
    auto stored = randomRows(8, 64, 7);
    ArchSpec spec = ArchSpec::dseSetup(32, OptTarget::Base);
    core::CompiledKernel kernel = compileDotKernel(spec, 1, 8, 64);

    auto query = rt::Buffer::fromMatrix({stored[5]});
    auto stored_buf = rt::Buffer::fromMatrix(stored);

    core::ExecutionResult single = kernel.run({query, stored_buf});
    core::ExecutionSession session =
        kernel.createSession({query, stored_buf});
    core::ExecutionResult served = session.runQuery({query, stored_buf});

    ASSERT_EQ(served.outputs.size(), single.outputs.size());
    for (std::size_t i = 0; i < served.outputs.size(); ++i)
        expectBuffersEqual(served.outputs[i], single.outputs[i]);
    // Per-query cost is bit-identical, not merely close.
    expectReportsIdentical(served.perf, single.perf);
    EXPECT_EQ(served.outputs[1].asBuffer()->atInt({0, 0}), 5);
}

TEST(ExecutionSession, QueryNCostsTheSameAsQuery1)
{
    auto stored = randomRows(8, 64, 11);
    core::CompiledKernel kernel =
        compileDotKernel(ArchSpec::dseSetup(32, OptTarget::Base), 1, 8, 64);
    auto query = rt::Buffer::fromMatrix({stored[2]});
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    core::ExecutionSession session =
        kernel.createSession({query, stored_buf});

    core::ExecutionResult first = session.runQuery({query, stored_buf});
    core::ExecutionResult last;
    for (int i = 0; i < 63; ++i)
        last = session.runQuery({query, stored_buf});

    EXPECT_EQ(session.queriesServed(), 64);
    expectReportsIdentical(last.perf, first.perf);
    for (std::size_t i = 0; i < first.outputs.size(); ++i)
        expectBuffersEqual(last.outputs[i], first.outputs[i]);
}

TEST(ExecutionSession, ServesDistinctQueriesCorrectly)
{
    auto stored = randomRows(8, 64, 13);
    core::CompiledKernel kernel =
        compileDotKernel(ArchSpec::dseSetup(32, OptTarget::Base), 1, 8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    core::ExecutionSession session = kernel.createSession(
        {rt::Buffer::fromMatrix({stored[0]}), stored_buf});

    for (std::int64_t n = 0; n < 8; ++n) {
        core::ExecutionResult r = session.runQuery(
            {rt::Buffer::fromMatrix({stored[static_cast<std::size_t>(n)]}),
             stored_buf});
        EXPECT_EQ(r.outputs[1].asBuffer()->atInt({0, 0}), n)
            << "query " << n;
    }
}

TEST(ExecutionSession, RunBatchAggregatesAndAmortizes)
{
    auto stored = randomRows(8, 64, 17);
    core::CompiledKernel kernel =
        compileDotKernel(ArchSpec::dseSetup(32, OptTarget::Base), 1, 8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    core::ExecutionSession session = kernel.createSession(
        {rt::Buffer::fromMatrix({stored[0]}), stored_buf});

    std::vector<std::vector<rt::BufferPtr>> batches;
    for (int i = 0; i < 16; ++i)
        batches.push_back(
            {rt::Buffer::fromMatrix({stored[static_cast<std::size_t>(
                 i % 8)]}),
             stored_buf});
    std::vector<core::ExecutionResult> results = session.runBatch(batches);
    ASSERT_EQ(results.size(), 16u);

    sim::PerfReport total = session.aggregateReport();
    EXPECT_EQ(total.queriesServed, 16);
    double query_sum = 0.0;
    std::int64_t searches = 0;
    for (const auto &r : results) {
        query_sum += r.perf.queryLatencyNs;
        searches += r.perf.searches;
    }
    EXPECT_DOUBLE_EQ(total.queryLatencyNs, query_sum);
    EXPECT_EQ(total.searches, searches);
    // Setup is paid once, not 16 times.
    EXPECT_EQ(total.setupLatencyNs, session.setupReport().setupLatencyNs);
    EXPECT_EQ(total.writes, session.setupReport().writes);
    // The amortized figure sits between pure-query and setup+query cost.
    EXPECT_GT(total.amortizedLatencyNs(), total.avgQueryLatencyNs());
    EXPECT_LT(total.amortizedLatencyNs(),
              total.setupLatencyNs + total.avgQueryLatencyNs());
}

TEST(ExecutionSession, SessionReuseBeatsPerQueryRunBy5x)
{
    // The acceptance-criterion invariant at test scale: serving a
    // 64-query batch through one session must yield >= 5x the
    // simulated queries/sec of per-query CompiledKernel::run().
    auto stored = randomRows(8, 64, 19);
    core::CompiledKernel kernel =
        compileDotKernel(ArchSpec::dseSetup(32, OptTarget::Base), 1, 8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    auto query = rt::Buffer::fromMatrix({stored[1]});

    core::ExecutionResult single = kernel.run({query, stored_buf});
    double naive_ns_per_query =
        single.perf.setupLatencyNs + single.perf.queryLatencyNs;

    core::ExecutionSession session =
        kernel.createSession({query, stored_buf});
    for (int i = 0; i < 64; ++i)
        session.runQuery({query, stored_buf});
    double session_ns_total = session.aggregateReport().setupLatencyNs +
                              session.aggregateReport().queryLatencyNs;
    double naive_ns_total = 64.0 * naive_ns_per_query;
    EXPECT_GE(naive_ns_total / session_ns_total, 5.0);
}

TEST(ExecutionSession, ValidatesArguments)
{
    auto stored = randomRows(8, 64, 23);
    core::CompiledKernel kernel =
        compileDotKernel(ArchSpec::dseSetup(32, OptTarget::Base), 1, 8, 64);
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    auto query = rt::Buffer::fromMatrix({stored[0]});

    // Wrong arity at session creation.
    EXPECT_THROW(kernel.createSession({query}), CompilerError);
    // Wrong shape at session creation.
    EXPECT_THROW(kernel.createSession(
                     {rt::Buffer::fromMatrix(stored), stored_buf}),
                 CompilerError);

    core::ExecutionSession session =
        kernel.createSession({query, stored_buf});
    EXPECT_THROW(session.runQuery({query}), CompilerError);
    EXPECT_THROW(session.runQuery({stored_buf, stored_buf}),
                 CompilerError);
    // The session stays usable after rejected calls.
    core::ExecutionResult r = session.runQuery({query, stored_buf});
    EXPECT_EQ(r.outputs[1].asBuffer()->atInt({0, 0}), 0);
}

TEST(ExecutionSession, HostOnlyFallsBackToFullRuns)
{
    auto stored = randomRows(6, 96, 29);
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    options.hostOnly = true;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(1, 6, 96, 1));
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    auto query = rt::Buffer::fromMatrix({stored[4]});

    core::ExecutionSession session =
        kernel.createSession({query, stored_buf});
    EXPECT_FALSE(session.persistent());
    EXPECT_EQ(session.device(), nullptr);

    core::ExecutionResult served = session.runQuery({query, stored_buf});
    core::ExecutionResult single = kernel.run({query, stored_buf});
    for (std::size_t i = 0; i < served.outputs.size(); ++i)
        expectBuffersEqual(served.outputs[i], single.outputs[i]);
    EXPECT_EQ(served.outputs[1].asBuffer()->atInt({0, 0}), 4);
    EXPECT_EQ(session.queriesServed(), 1);
}

TEST(ExecutionSession, EuclideanKernelSessionMatchesSingleShot)
{
    auto stored = randomRows(12, 32, 31);
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, OptTarget::Base);
    options.spec.camType = arch::CamDeviceType::Mcam;
    options.spec.bitsPerCell = 2;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::knnEuclideanSource(1, 12, 32, 2));
    auto stored_buf = rt::Buffer::fromMatrix(stored);
    auto query = rt::Buffer::fromMatrix({stored[9]});

    core::ExecutionResult single = kernel.run({query, stored_buf});
    core::ExecutionSession session =
        kernel.createSession({query, stored_buf});
    core::ExecutionResult served = session.runQuery({query, stored_buf});

    for (std::size_t i = 0; i < served.outputs.size(); ++i)
        expectBuffersEqual(served.outputs[i], single.outputs[i]);
    expectReportsIdentical(served.perf, single.perf);
}
