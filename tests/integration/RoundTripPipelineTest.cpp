/** @file Property: compiler-generated IR round-trips through text.
 *
 * For every stage of the real pipeline, printing the module and
 * re-parsing it must verify and (for executable stages) produce
 * identical functional results and identical simulated performance.
 * This is the strongest check on printer/parser/verifier coherence:
 * the inputs are not hand-written but everything cam-map emits.
 */

#include <gtest/gtest.h>

#include <utility>

#include "apps/Workloads.h"
#include "core/Compiler.h"
#include "dialects/AllDialects.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "runtime/Interpreter.h"
#include "sim/CamDevice.h"
#include "support/Rng.h"

using namespace c4cam;
using c4cam::arch::ArchSpec;
using c4cam::arch::OptTarget;

namespace {

struct Workload
{
    rt::BufferPtr queries;
    rt::BufferPtr stored;
};

Workload
makeWorkload(std::int64_t q, std::int64_t n, std::int64_t d)
{
    Workload w;
    Rng rng(99);
    w.stored = rt::Buffer::alloc(rt::DType::F32, {n, d});
    for (std::int64_t r = 0; r < n; ++r)
        for (std::int64_t c = 0; c < d; ++c)
            w.stored->set({r, c}, rng.nextBool() ? 1.0 : -1.0);
    w.queries = rt::Buffer::alloc(rt::DType::F32, {q, d});
    for (std::int64_t r = 0; r < q; ++r)
        for (std::int64_t c = 0; c < d; ++c)
            w.queries->set({r, c}, w.stored->at({r % n, c}));
    return w;
}

} // namespace

class PipelineRoundTrip : public ::testing::TestWithParam<OptTarget>
{};

TEST_P(PipelineRoundTrip, EveryStagePrintsAndReparses)
{
    OptTarget target = GetParam();
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, target);
    options.dumpIntermediates = true;
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(3, 6, 128, 1));

    for (const auto &[pass, text] : kernel.dumps()) {
        ir::Context ctx;
        dialects::loadAllDialects(ctx);
        ir::Module reparsed = ir::parseModule(ctx, text);
        EXPECT_NO_THROW(ir::verifyModule(reparsed)) << "after " << pass;
        // Printing again is a fixpoint.
        EXPECT_EQ(reparsed.str(), text) << "after " << pass;
    }
}

TEST_P(PipelineRoundTrip, ReparsedModuleExecutesIdentically)
{
    OptTarget target = GetParam();
    core::CompilerOptions options;
    options.spec = ArchSpec::dseSetup(32, target);
    core::Compiler compiler(options);
    core::CompiledKernel kernel = compiler.compileTorchScript(
        apps::dotSimilaritySource(3, 6, 128, 1));
    Workload w = makeWorkload(3, 6, 128);

    core::ExecutionResult original = kernel.run({w.queries, w.stored});

    // Re-parse the final module and execute it with a fresh simulator.
    std::string text = std::as_const(kernel).module().str();
    auto ctx = std::make_shared<ir::Context>();
    dialects::loadAllDialects(*ctx);
    ir::Module reparsed = ir::parseModule(*ctx, text);
    sim::CamDevice device(options.spec);
    rt::Interpreter interp(reparsed, &device);
    auto outputs = interp.callFunction(
        "forward", {rt::RtValue(w.queries), rt::RtValue(w.stored)});
    sim::PerfReport perf = device.report();

    // Same functional results.
    for (std::int64_t q = 0; q < 3; ++q) {
        EXPECT_EQ(outputs[1].asBuffer()->atInt({q, 0}),
                  original.outputs[1].asBuffer()->atInt({q, 0}));
        EXPECT_EQ(outputs[1].asBuffer()->atInt({q, 0}), q % 6);
    }
    // Same simulated performance, to the last picojoule.
    EXPECT_DOUBLE_EQ(perf.queryLatencyNs,
                     original.perf.queryLatencyNs);
    EXPECT_DOUBLE_EQ(perf.queryEnergyPj, original.perf.queryEnergyPj);
    EXPECT_EQ(perf.searches, original.perf.searches);
    EXPECT_EQ(perf.subarraysUsed, original.perf.subarraysUsed);
}

INSTANTIATE_TEST_SUITE_P(
    Targets, PipelineRoundTrip,
    ::testing::Values(OptTarget::Base, OptTarget::Power,
                      OptTarget::Density, OptTarget::PowerDensity),
    [](const auto &info) {
        switch (info.param) {
          case OptTarget::Base: return "base";
          case OptTarget::Power: return "power";
          case OptTarget::Density: return "density";
          case OptTarget::PowerDensity: return "powerdensity";
          default: return "other";
        }
    });
