#include "apps/ManualBaseline.h"

#include <algorithm>
#include <limits>

#include "sim/CamDevice.h"
#include "support/Error.h"

namespace c4cam::apps {

ManualRunResult
runManualHdc(const HdcWorkload &workload, const arch::ArchSpec &spec,
             int max_queries)
{
    sim::CamDevice device(spec);
    auto &timing = device.timing();

    int num_classes = workload.numClasses;
    int dims = workload.dimensions;
    int cols = spec.cols;
    C4CAM_CHECK(num_classes <= spec.rows,
                "manual HDC mapping stores one class per row");

    // One column tile per subarray, packed in hierarchy order.
    int col_tiles = (dims + cols - 1) / cols;
    int per_bank = static_cast<int>(spec.subarraysPerBank());
    int banks = (col_tiles + per_bank - 1) / per_bank;

    struct Placement
    {
        sim::Handle handle;
        int colOffset;
        int colCount;
    };
    std::vector<Placement> placements;

    // Setup: allocate the hierarchy and program class hypervectors.
    for (int b = 0; b < banks; ++b) {
        sim::Handle bank = device.allocBank(spec.rows, spec.cols);
        for (int m = 0; m < spec.matsPerBank; ++m) {
            int mat_first =
                ((b * spec.matsPerBank + m) * spec.arraysPerMat) *
                spec.subarraysPerArray;
            if (mat_first >= col_tiles)
                break;
            sim::Handle mat = device.allocMat(bank);
            for (int a = 0; a < spec.arraysPerMat; ++a) {
                int array_first =
                    ((b * spec.matsPerBank + m) * spec.arraysPerMat + a) *
                    spec.subarraysPerArray;
                if (array_first >= col_tiles)
                    break;
                sim::Handle array = device.allocArray(mat);
                for (int s = 0; s < spec.subarraysPerArray; ++s) {
                    int tile = array_first + s;
                    if (tile >= col_tiles)
                        break;
                    sim::Handle sub = device.allocSubarray(array);
                    int off = tile * cols;
                    int width = std::min(cols, dims - off);
                    std::vector<std::vector<float>> data(
                        static_cast<std::size_t>(num_classes));
                    for (int c = 0; c < num_classes; ++c)
                        data[static_cast<std::size_t>(c)].assign(
                            workload.classHvs[static_cast<std::size_t>(c)]
                                    .begin() + off,
                            workload.classHvs[static_cast<std::size_t>(c)]
                                    .begin() + off + width);
                    device.writeValue(sub, data, 0);
                    placements.push_back({sub, off, width});
                }
            }
        }
    }

    bool euclidean = workload.bits != 1;

    ManualRunResult result;
    std::size_t query_count =
        max_queries > 0 ? std::min<std::size_t>(
                              workload.queryHvs.size(),
                              static_cast<std::size_t>(max_queries))
                        : workload.queryHvs.size();

    // Query phase: queries are sequential; the whole hierarchy searches
    // in parallel; the manual design merges once per array.
    timing.beginScope(/*parallel=*/false); // query stream
    for (std::size_t qi = 0; qi < query_count; ++qi) {
        const std::vector<float> &query = workload.queryHvs[qi];
        std::vector<double> dist(static_cast<std::size_t>(num_classes),
                                 0.0);
        timing.beginScope(/*parallel=*/true); // banks+all below
        int subs_per_array = spec.subarraysPerArray;
        for (std::size_t p = 0; p < placements.size();
             p += static_cast<std::size_t>(subs_per_array)) {
            // One array's worth of subarrays.
            timing.beginScope(/*parallel=*/false);
            timing.beginScope(/*parallel=*/true);
            std::size_t end = std::min(
                placements.size(),
                p + static_cast<std::size_t>(subs_per_array));
            for (std::size_t i = p; i < end; ++i) {
                const Placement &pl = placements[i];
                std::vector<float> slice(
                    query.begin() + pl.colOffset,
                    query.begin() + pl.colOffset + pl.colCount);
                timing.beginScope(/*parallel=*/false);
                device.search(pl.handle, slice, arch::SearchKind::Best,
                              euclidean, 0, num_classes);
                const sim::SearchResult &sr = device.read(pl.handle);
                for (std::size_t r = 0; r < sr.values.size(); ++r)
                    dist[static_cast<std::size_t>(sr.indices[r])] +=
                        sr.values[r];
                timing.endScope();
            }
            timing.endScope();
            // [22]-style: one hardwired reduction tree per array whose
            // width follows the subarray count (differential inputs),
            // plus the analog accumulation capacitors it charges.
            device.postMerge(2 * subs_per_array);
            timing.post(0.0, 0.08 * subs_per_array);
            timing.endScope();
        }
        timing.endScope();
        // Global class selection (winner-take-all across arrays).
        device.postMerge(num_classes);

        int best = 0;
        double best_val = std::numeric_limits<double>::infinity();
        for (int c = 0; c < num_classes; ++c) {
            if (dist[static_cast<std::size_t>(c)] < best_val) {
                best_val = dist[static_cast<std::size_t>(c)];
                best = c;
            }
        }
        result.predictions.push_back(best);
    }
    timing.endScope();

    result.perf = device.report();
    return result;
}

} // namespace c4cam::apps
