#ifndef C4CAM_APPS_GPUMODEL_H
#define C4CAM_APPS_GPUMODEL_H

/**
 * @file
 * Analytic GPU execution model, standing in for the paper's NVIDIA
 * Quadro RTX 6000 measurements (§IV-A1, §IV-B).
 *
 * The paper reports one end-to-end comparison: the CAM system is 48x
 * faster and 46.8x more energy efficient than the GPU for HDC/MNIST.
 * We model the GPU with a roofline-style estimate from datasheet
 * parameters (memory bandwidth, board power, kernel-launch overhead)
 * and the CIM *system* with host power on top of the CAM arrays -- the
 * paper notes the CAMs "contribute minimally to the overall energy
 * consumption in their CIM system", which is why the latency and energy
 * ratios land so close together.
 */

#include <cstdint>

namespace c4cam::apps {

/** Latency/energy estimate for one batched similarity workload. */
struct GpuEstimate
{
    double latencyNs = 0.0;
    double energyPj = 0.0;
    double avgPowerW = 0.0;
};

/**
 * Quadro RTX 6000-like device model (16 nm, 24 GB GDDR6).
 */
class GpuModel
{
  public:
    /**
     * Estimate a batched int32 similarity kernel: Q queries against
     * N stored vectors of D elements, followed by a top-k pass.
     */
    GpuEstimate similarityKernel(std::int64_t queries, std::int64_t rows,
                                 std::int64_t dims) const;

    /// @name Datasheet-derived parameters
    /// @{
    double memoryBandwidthGBps() const { return bandwidthGBps_; }
    double boardPowerW() const { return avgPowerW_; }
    double launchOverheadUs() const { return launchOverheadUs_; }
    /// @}

    /**
     * CIM system power (host + interfaces) that accompanies the CAM
     * arrays in an end-to-end deployment. Used to convert CAM-array
     * energy into system energy for the paper's §IV-B comparison.
     */
    static double cimSystemPowerW() { return 252.0; }

  private:
    // The 10x8192 int32 class matrix (320 KB) is L2-resident, so the
    // per-query sweep runs at L2 bandwidth (~1.1 TB/s on TU102), not
    // GDDR6 bandwidth.
    double bandwidthGBps_ = 1140.0;
    // nvidia-smi style average board power under this workload.
    double avgPowerW_ = 246.0;
    double launchOverheadUs_ = 8.0;
    // Top-k pass: one additional sweep over the Q x N score matrix.
    double topkBytesFactor_ = 1.0;
};

} // namespace c4cam::apps

#endif // C4CAM_APPS_GPUMODEL_H
