#ifndef C4CAM_APPS_HDC_H
#define C4CAM_APPS_HDC_H

/**
 * @file
 * Hyperdimensional computing (HDC) workload (paper §IV-A3).
 *
 * Random-projection encoder: features are projected onto D-dimensional
 * hypervectors; class hypervectors are bundled (elementwise majority /
 * averaged then quantized). Inference finds the class hypervector most
 * similar to the query hypervector -- the paper's running example for
 * dot-product similarity on CAMs.
 *
 * Binary mode (1 bit/cell, TCAM): elements in {-1, +1}; dot similarity
 * on the host is order-equivalent to Hamming distance on the CAM bits.
 * Multi-bit mode (2 bits/cell, MCAM): elements in {0..3}; Euclidean
 * distance on both paths.
 */

#include <cstdint>
#include <vector>

#include "apps/Datasets.h"

namespace c4cam::apps {

/** An encoded HDC problem instance. */
struct HdcWorkload
{
    int dimensions = 0;   ///< hypervector length D
    int bits = 1;         ///< 1 (binary) or 2 (multi-bit)
    int numClasses = 0;
    /** Class hypervectors (numClasses x D). */
    std::vector<std::vector<float>> classHvs;
    /** Encoded test queries (Q x D). */
    std::vector<std::vector<float>> queryHvs;
    /** Ground-truth labels per query. */
    std::vector<int> labels;

    /** Host-reference prediction per query (dot / euclidean). */
    std::vector<int> hostPredictions() const;

    /** Accuracy of @p predictions against the labels. */
    double accuracy(const std::vector<int> &predictions) const;
};

/**
 * Encode @p dataset into an HDC workload.
 * @param dimensions hypervector length (paper: 8k for MNIST)
 * @param bits       1 = binary {-1,+1}; 2 = multi-bit {0..3}
 * @param max_queries cap on encoded test queries (0 = all)
 */
HdcWorkload encodeHdc(const Dataset &dataset, int dimensions, int bits,
                      int max_queries = 0, std::uint64_t seed = 23);

} // namespace c4cam::apps

#endif // C4CAM_APPS_HDC_H
