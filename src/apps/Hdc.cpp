#include "apps/Hdc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/Error.h"
#include "support/Rng.h"

namespace c4cam::apps {

namespace {

/** Dense +-1 random projection matrix (D x F), generated once. */
class Projector
{
  public:
    Projector(int dimensions, int features, std::uint64_t seed)
        : dimensions_(dimensions), features_(features),
          signs_(static_cast<std::size_t>(dimensions) * features)
    {
        Rng rng(seed);
        for (auto &s : signs_)
            s = rng.nextBool() ? 1 : -1;
    }

    std::vector<float>
    operator()(const std::vector<float> &x) const
    {
        std::vector<float> out(static_cast<std::size_t>(dimensions_));
        const std::int8_t *row = signs_.data();
        for (int d = 0; d < dimensions_; ++d, row += features_) {
            float acc = 0.0f;
            for (int f = 0; f < features_; ++f)
                acc += row[f] * x[static_cast<std::size_t>(f)];
            out[static_cast<std::size_t>(d)] = acc;
        }
        return out;
    }

  private:
    int dimensions_;
    int features_;
    std::vector<std::int8_t> signs_;
};

/** Quantize bundle sums into the cell alphabet. */
std::vector<float>
quantizeHv(const std::vector<double> &sums, int bits, double scale)
{
    std::vector<float> out(sums.size());
    if (bits == 1) {
        for (std::size_t i = 0; i < sums.size(); ++i)
            out[i] = sums[i] >= 0.0 ? 1.0f : -1.0f;
        return out;
    }
    // 2-bit: 4 levels spread over +-scale.
    for (std::size_t i = 0; i < sums.size(); ++i) {
        double norm = std::clamp(sums[i] / (scale + 1e-9), -1.0, 1.0);
        int level = static_cast<int>(std::lround((norm + 1.0) * 1.5));
        out[i] = static_cast<float>(std::clamp(level, 0, 3));
    }
    return out;
}

} // namespace

HdcWorkload
encodeHdc(const Dataset &dataset, int dimensions, int bits,
          int max_queries, std::uint64_t seed)
{
    C4CAM_CHECK(bits == 1 || bits == 2, "HDC supports 1 or 2 bits");
    HdcWorkload workload;
    workload.dimensions = dimensions;
    workload.bits = bits;
    workload.numClasses = dataset.numClasses;

    Projector project(dimensions, dataset.featureDim, seed);

    // Bundle training projections per class.
    std::vector<std::vector<double>> sums(
        static_cast<std::size_t>(dataset.numClasses),
        std::vector<double>(static_cast<std::size_t>(dimensions), 0.0));
    std::vector<int> counts(static_cast<std::size_t>(dataset.numClasses),
                            0);
    for (std::size_t i = 0; i < dataset.trainX.size(); ++i) {
        std::vector<float> hv = project(dataset.trainX[i]);
        auto cls = static_cast<std::size_t>(dataset.trainY[i]);
        for (int d = 0; d < dimensions; ++d)
            sums[cls][static_cast<std::size_t>(d)] +=
                hv[static_cast<std::size_t>(d)] >= 0.0f ? 1.0 : -1.0;
        counts[cls]++;
    }
    for (int cls = 0; cls < dataset.numClasses; ++cls) {
        double scale = std::max(1, counts[static_cast<std::size_t>(cls)]);
        workload.classHvs.push_back(quantizeHv(
            sums[static_cast<std::size_t>(cls)], bits, scale));
    }

    // Encode queries.
    std::size_t limit = max_queries > 0
                            ? std::min<std::size_t>(
                                  dataset.testX.size(),
                                  static_cast<std::size_t>(max_queries))
                            : dataset.testX.size();
    for (std::size_t i = 0; i < limit; ++i) {
        std::vector<float> hv = project(dataset.testX[i]);
        std::vector<double> as_sum(hv.begin(), hv.end());
        // Queries quantize with their own magnitude scale.
        double scale = 0.0;
        for (double v : as_sum)
            scale = std::max(scale, std::abs(v));
        workload.queryHvs.push_back(quantizeHv(as_sum, bits, scale));
        workload.labels.push_back(dataset.testY[i]);
    }
    return workload;
}

std::vector<int>
HdcWorkload::hostPredictions() const
{
    std::vector<int> predictions;
    predictions.reserve(queryHvs.size());
    for (const auto &query : queryHvs) {
        int best_cls = 0;
        double best_score = bits == 1
                                ? -std::numeric_limits<double>::infinity()
                                : std::numeric_limits<double>::infinity();
        for (std::size_t cls = 0; cls < classHvs.size(); ++cls) {
            double score = 0.0;
            for (std::size_t d = 0; d < query.size(); ++d) {
                if (bits == 1) {
                    score += double(query[d]) * classHvs[cls][d];
                } else {
                    double diff = double(query[d]) - classHvs[cls][d];
                    score += diff * diff;
                }
            }
            bool better = bits == 1 ? score > best_score
                                    : score < best_score;
            if (better) {
                best_score = score;
                best_cls = static_cast<int>(cls);
            }
        }
        predictions.push_back(best_cls);
    }
    return predictions;
}

double
HdcWorkload::accuracy(const std::vector<int> &predictions) const
{
    C4CAM_CHECK(predictions.size() == labels.size(),
                "prediction/label count mismatch");
    if (labels.empty())
        return 0.0;
    int correct = 0;
    for (std::size_t i = 0; i < labels.size(); ++i)
        if (predictions[i] == labels[i])
            ++correct;
    return double(correct) / double(labels.size());
}

} // namespace c4cam::apps
