#ifndef C4CAM_APPS_KNN_H
#define C4CAM_APPS_KNN_H

/**
 * @file
 * K-nearest-neighbors workload (paper §IV-A3, Table II).
 *
 * Every training sample is stored as one CAM row (quantized to the cell
 * alphabet); classification takes a majority vote over the labels of the
 * k rows with the smallest distance. The paper evaluates KNN on the
 * Pneumonia chest X-ray dataset, whose sheer size requires many banks.
 */

#include <cstdint>
#include <vector>

#include "apps/Datasets.h"

namespace c4cam::apps {

/** A quantized KNN problem instance. */
struct KnnWorkload
{
    int featureDim = 0;
    int bits = 1;  ///< quantization levels = 2^bits
    int k = 5;
    int numClasses = 0;
    /** Stored rows (N x D), quantized levels. */
    std::vector<std::vector<float>> stored;
    /** Labels of the stored rows. */
    std::vector<int> storedLabels;
    /** Query rows (Q x D), quantized levels. */
    std::vector<std::vector<float>> queries;
    std::vector<int> labels;

    /** Host-reference (euclidean) neighbor indices per query (Q x k). */
    std::vector<std::vector<int>> hostNeighbors() const;

    /** Majority-vote predictions from neighbor indices. */
    std::vector<int> classify(
        const std::vector<std::vector<int>> &neighbors) const;

    double accuracy(const std::vector<int> &predictions) const;
};

/**
 * Quantize @p dataset into a KNN workload.
 * @param bits 1 -> binary levels {0,1}; 2 -> levels {0..3}
 * @param max_queries cap on queries (0 = all)
 */
KnnWorkload makeKnn(const Dataset &dataset, int bits, int k,
                    int max_queries = 0);

} // namespace c4cam::apps

#endif // C4CAM_APPS_KNN_H
