#ifndef C4CAM_APPS_MANUALBASELINE_H
#define C4CAM_APPS_MANUALBASELINE_H

/**
 * @file
 * Hand-crafted CAM mapping of the HDC kernel, mirroring the manual
 * design of Kazemi et al. [22] that the paper validates against
 * (Fig. 7). Written directly against the simulator API -- no compiler
 * involved -- the way a device expert would program the accelerator.
 *
 * The mapping differs from the compiler's generated code in one
 * engineering detail: partial results are merged once per *array*
 * (the manual design wires the array-level reduction tree), while
 * C4CAM merges per subarray read-out. This is the kind of small
 * implementation difference that produced the sub-percent deviations
 * the paper reports.
 */

#include <vector>

#include "apps/Hdc.h"
#include "arch/ArchSpec.h"
#include "sim/Timing.h"

namespace c4cam::apps {

/** Outcome of the hand-mapped execution. */
struct ManualRunResult
{
    sim::PerfReport perf;
    std::vector<int> predictions;
};

/**
 * Run @p workload on a CAM with @p spec using the hand-crafted mapping.
 * @param max_queries cap on executed queries (0 = all).
 */
ManualRunResult runManualHdc(const HdcWorkload &workload,
                             const arch::ArchSpec &spec,
                             int max_queries = 0);

} // namespace c4cam::apps

#endif // C4CAM_APPS_MANUALBASELINE_H
