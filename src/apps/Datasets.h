#ifndef C4CAM_APPS_DATASETS_H
#define C4CAM_APPS_DATASETS_H

/**
 * @file
 * Deterministic synthetic datasets standing in for MNIST and the chest
 * X-ray Pneumonia dataset (paper §IV-A3).
 *
 * The paper uses the datasets only to (a) size the CAM (rows, columns,
 * banks) and (b) check that application accuracy matches software.
 * Synthetic class-prototype data with additive noise preserves both
 * roles: identical shapes, controllable separability, fixed seeds.
 */

#include <cstdint>
#include <vector>

namespace c4cam::apps {

/** A labeled dense-feature dataset split into train and test. */
struct Dataset
{
    int numClasses = 0;
    int featureDim = 0;
    std::vector<std::vector<float>> trainX;
    std::vector<int> trainY;
    std::vector<std::vector<float>> testX;
    std::vector<int> testY;
};

/**
 * MNIST-like: 10 classes of 28x28 images (784 features in [0, 1]).
 * @param train_per_class training samples per class
 * @param test_total      total test samples (balanced round-robin)
 * @param noise           additive noise amplitude (0.25 default)
 */
Dataset makeMnistLike(int train_per_class, int test_total,
                      double noise = 0.25, std::uint64_t seed = 7);

/**
 * Pneumonia-like: 2 classes with the dataset's real split sizes by
 * default (5216 train / 624 test) and @p feature_dim features.
 */
Dataset makePneumoniaLike(int train_total = 5216, int test_total = 624,
                          int feature_dim = 1024, double noise = 0.35,
                          std::uint64_t seed = 11);

} // namespace c4cam::apps

#endif // C4CAM_APPS_DATASETS_H
