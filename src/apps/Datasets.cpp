#include "apps/Datasets.h"

#include <algorithm>
#include <cmath>

#include "support/Error.h"
#include "support/Rng.h"

namespace c4cam::apps {

namespace {

/** Class prototypes + noise, in [0, 1]. */
Dataset
makePrototypeDataset(int num_classes, int feature_dim, int train_total,
                     int test_total, double noise, std::uint64_t seed)
{
    C4CAM_CHECK(num_classes >= 2 && feature_dim > 0,
                "dataset needs >= 2 classes and positive dims");
    Rng rng(seed);
    std::vector<std::vector<float>> prototypes(
        static_cast<std::size_t>(num_classes),
        std::vector<float>(static_cast<std::size_t>(feature_dim)));
    for (auto &proto : prototypes)
        for (auto &v : proto)
            v = static_cast<float>(rng.nextDouble());

    Dataset ds;
    ds.numClasses = num_classes;
    ds.featureDim = feature_dim;

    auto sample = [&](int cls) {
        std::vector<float> x(static_cast<std::size_t>(feature_dim));
        for (int i = 0; i < feature_dim; ++i) {
            double v = prototypes[static_cast<std::size_t>(cls)]
                                 [static_cast<std::size_t>(i)] +
                       noise * rng.nextGaussian();
            x[static_cast<std::size_t>(i)] =
                static_cast<float>(std::clamp(v, 0.0, 1.0));
        }
        return x;
    };

    for (int i = 0; i < train_total; ++i) {
        int cls = i % num_classes;
        ds.trainX.push_back(sample(cls));
        ds.trainY.push_back(cls);
    }
    for (int i = 0; i < test_total; ++i) {
        int cls = i % num_classes;
        ds.testX.push_back(sample(cls));
        ds.testY.push_back(cls);
    }
    return ds;
}

} // namespace

Dataset
makeMnistLike(int train_per_class, int test_total, double noise,
              std::uint64_t seed)
{
    return makePrototypeDataset(10, 28 * 28, train_per_class * 10,
                                test_total, noise, seed);
}

Dataset
makePneumoniaLike(int train_total, int test_total, int feature_dim,
                  double noise, std::uint64_t seed)
{
    return makePrototypeDataset(2, feature_dim, train_total, test_total,
                                noise, seed);
}

} // namespace c4cam::apps
