#include "apps/Knn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/Error.h"

namespace c4cam::apps {

namespace {

std::vector<float>
quantizeRow(const std::vector<float> &x, int bits)
{
    int levels = 1 << bits;
    std::vector<float> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        int level = static_cast<int>(
            std::lround(std::clamp(double(x[i]), 0.0, 1.0) *
                        (levels - 1)));
        out[i] = static_cast<float>(level);
    }
    return out;
}

} // namespace

KnnWorkload
makeKnn(const Dataset &dataset, int bits, int k, int max_queries)
{
    C4CAM_CHECK(bits == 1 || bits == 2, "KNN supports 1 or 2 bits");
    C4CAM_CHECK(k >= 1, "KNN requires k >= 1");
    KnnWorkload workload;
    workload.featureDim = dataset.featureDim;
    workload.bits = bits;
    workload.k = k;
    workload.numClasses = dataset.numClasses;

    for (const auto &x : dataset.trainX)
        workload.stored.push_back(quantizeRow(x, bits));
    workload.storedLabels = dataset.trainY;

    std::size_t limit = max_queries > 0
                            ? std::min<std::size_t>(
                                  dataset.testX.size(),
                                  static_cast<std::size_t>(max_queries))
                            : dataset.testX.size();
    for (std::size_t i = 0; i < limit; ++i) {
        workload.queries.push_back(quantizeRow(dataset.testX[i], bits));
        workload.labels.push_back(dataset.testY[i]);
    }
    return workload;
}

std::vector<std::vector<int>>
KnnWorkload::hostNeighbors() const
{
    std::vector<std::vector<int>> result;
    result.reserve(queries.size());
    for (const auto &query : queries) {
        std::vector<double> dist(stored.size(), 0.0);
        for (std::size_t n = 0; n < stored.size(); ++n) {
            double acc = 0.0;
            for (std::size_t d = 0; d < query.size(); ++d) {
                double diff = double(query[d]) - stored[n][d];
                acc += diff * diff;
            }
            dist[n] = acc;
        }
        std::vector<int> order(stored.size());
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](int a, int b) {
                             return dist[static_cast<std::size_t>(a)] <
                                    dist[static_cast<std::size_t>(b)];
                         });
        order.resize(static_cast<std::size_t>(k));
        result.push_back(order);
    }
    return result;
}

std::vector<int>
KnnWorkload::classify(
    const std::vector<std::vector<int>> &neighbors) const
{
    std::vector<int> predictions;
    predictions.reserve(neighbors.size());
    for (const auto &nbrs : neighbors) {
        std::vector<int> votes(static_cast<std::size_t>(numClasses), 0);
        for (int idx : nbrs)
            votes[static_cast<std::size_t>(
                storedLabels[static_cast<std::size_t>(idx)])]++;
        predictions.push_back(static_cast<int>(
            std::max_element(votes.begin(), votes.end()) -
            votes.begin()));
    }
    return predictions;
}

double
KnnWorkload::accuracy(const std::vector<int> &predictions) const
{
    C4CAM_CHECK(predictions.size() == labels.size(),
                "prediction/label count mismatch");
    if (labels.empty())
        return 0.0;
    int correct = 0;
    for (std::size_t i = 0; i < labels.size(); ++i)
        if (predictions[i] == labels[i])
            ++correct;
    return double(correct) / double(labels.size());
}

} // namespace c4cam::apps
