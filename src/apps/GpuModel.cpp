#include "apps/GpuModel.h"

namespace c4cam::apps {

GpuEstimate
GpuModel::similarityKernel(std::int64_t queries, std::int64_t rows,
                           std::int64_t dims) const
{
    // Memory-bound estimate: each query re-streams the stored matrix
    // (rows x dims x 4B int32); scores (queries x rows) are swept once
    // more by the top-k kernel.
    double matrix_bytes = double(queries) * rows * dims * 4.0;
    double score_bytes = double(queries) * rows * 4.0 * topkBytesFactor_;
    double total_bytes = matrix_bytes + score_bytes;
    double transfer_ns = total_bytes / (bandwidthGBps_ * 1e9) * 1e9;
    double launch_ns = launchOverheadUs_ * 1000.0 * 2.0; // gemm + topk

    GpuEstimate est;
    est.latencyNs = transfer_ns + launch_ns;
    est.avgPowerW = avgPowerW_;
    // W * ns = 1e-9 J = pJ * 1e3 -> energyPj = W * ns * 1e3.
    est.energyPj = est.avgPowerW * est.latencyNs * 1e3;
    return est;
}

} // namespace c4cam::apps
