#ifndef C4CAM_APPS_DECISIONTREE_H
#define C4CAM_APPS_DECISIONTREE_H

/**
 * @file
 * Decision-tree inference on analog CAMs (extension).
 *
 * The paper cites DT2CAM [25] as the one prior CAM mapping tool and
 * positions C4CAM as the generalization. This module implements the
 * decision-tree use case on our ACAM substrate: every root-to-leaf
 * path becomes one ACAM row whose cells store the feature intervals
 * implied by the path's threshold tests; inference is a single
 * exact-match search (a sample falls inside exactly one leaf box).
 *
 * Exercises the parts of the stack the similarity kernels do not:
 * analog range cells, wildcard (don't-care) features and exact-match
 * sensing.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/Datasets.h"
#include "arch/ArchSpec.h"
#include "sim/Timing.h"

namespace c4cam::apps {

/** An axis-aligned decision tree trained with midpoint splits. */
class DecisionTree
{
  public:
    /**
     * Greedily grow a tree on @p dataset (gini impurity, midpoint
     * thresholds) up to @p max_depth.
     */
    static DecisionTree fit(const Dataset &dataset, int max_depth);

    /** Class prediction for one sample (software reference). */
    int predict(const std::vector<float> &x) const;

    /** One root-to-leaf path flattened into per-feature intervals. */
    struct LeafBox
    {
        std::vector<float> lo;       ///< per-feature lower bound
        std::vector<float> hi;       ///< per-feature upper bound
        std::vector<bool> dontCare;  ///< feature untested on this path
        int label;
    };

    /** All leaves as interval boxes (the ACAM row contents). */
    std::vector<LeafBox> leafBoxes() const;

    int numLeaves() const;
    int featureDim() const { return featureDim_; }

  private:
    struct Node
    {
        int feature = -1; ///< -1: leaf
        float threshold = 0.0f;
        int label = 0;
        std::unique_ptr<Node> left;  ///< x[feature] <= threshold
        std::unique_ptr<Node> right; ///< x[feature] >  threshold
    };

    std::unique_ptr<Node> root_;
    int featureDim_ = 0;
};

/** Result of running a tree on the ACAM simulator. */
struct AcamTreeRunResult
{
    sim::PerfReport perf;
    std::vector<int> predictions;
};

/**
 * Map @p tree onto ACAM subarrays of @p spec (one leaf per row,
 * row-major packing across subarrays) and classify @p samples with
 * exact-match range searches.
 */
AcamTreeRunResult runTreeOnAcam(const DecisionTree &tree,
                                const arch::ArchSpec &spec,
                                const std::vector<std::vector<float>>
                                    &samples);

} // namespace c4cam::apps

#endif // C4CAM_APPS_DECISIONTREE_H
