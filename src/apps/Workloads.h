#ifndef C4CAM_APPS_WORKLOADS_H
#define C4CAM_APPS_WORKLOADS_H

/**
 * @file
 * TorchScript kernel sources for the benchmark workloads -- the same
 * high-level programs a PyTorch user would hand to C4CAM (Fig. 4a).
 */

#include <cstdint>
#include <sstream>
#include <string>

namespace c4cam::apps {

/**
 * HDC dot-similarity kernel (paper Fig. 4a): queries x class-HV matrix,
 * top-k by dot product.
 */
inline std::string
dotSimilaritySource(std::int64_t queries, std::int64_t rows,
                    std::int64_t dims, std::int64_t k)
{
    std::ostringstream oss;
    oss << "def forward(input: Tensor[" << queries << ", " << dims
        << "], weight: Tensor[" << rows << ", " << dims << "]):\n"
        << "    others = self.weight.transpose(-2, -1)\n"
        << "    matmul = torch.matmul(input, others)\n"
        << "    values, indices = torch.ops.aten.topk(matmul, " << k
        << ", -1, largest=True)\n"
        << "    return values, indices\n";
    return oss.str();
}

/**
 * KNN euclidean kernel: dist = norm(query - stored), top-k smallest
 * (the EuclNormPattern of Algorithm 1).
 */
inline std::string
knnEuclideanSource(std::int64_t queries, std::int64_t rows,
                   std::int64_t dims, std::int64_t k)
{
    std::ostringstream oss;
    oss << "def forward(x: Tensor[" << queries << ", " << dims
        << "], train: Tensor[" << rows << ", " << dims << "]):\n"
        << "    diff = torch.sub(x, train)\n"
        << "    dist = torch.norm(diff, p=2)\n"
        << "    knn, idx = torch.topk(dist, " << k
        << ", largest=False)\n"
        << "    return knn, idx\n";
    return oss.str();
}

} // namespace c4cam::apps

#endif // C4CAM_APPS_WORKLOADS_H
