#include "apps/DecisionTree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "sim/CamDevice.h"
#include "support/Error.h"

namespace c4cam::apps {

namespace {

/** Gini impurity of a label multiset. */
double
gini(const std::vector<int> &labels, const std::vector<int> &index,
     int num_classes)
{
    if (index.empty())
        return 0.0;
    std::vector<int> counts(static_cast<std::size_t>(num_classes), 0);
    for (int i : index)
        counts[static_cast<std::size_t>(
            labels[static_cast<std::size_t>(i)])]++;
    double impurity = 1.0;
    for (int c : counts) {
        double p = double(c) / double(index.size());
        impurity -= p * p;
    }
    return impurity;
}

int
majorityLabel(const std::vector<int> &labels,
              const std::vector<int> &index, int num_classes)
{
    std::vector<int> counts(static_cast<std::size_t>(num_classes), 0);
    for (int i : index)
        counts[static_cast<std::size_t>(
            labels[static_cast<std::size_t>(i)])]++;
    return static_cast<int>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
}

} // namespace

DecisionTree
DecisionTree::fit(const Dataset &dataset, int max_depth)
{
    C4CAM_CHECK(!dataset.trainX.empty(), "cannot fit a tree on no data");
    DecisionTree tree;
    tree.featureDim_ = dataset.featureDim;

    std::vector<int> all(dataset.trainX.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = static_cast<int>(i);

    // Recursive greedy growth.
    std::function<std::unique_ptr<Node>(const std::vector<int> &, int)>
        grow = [&](const std::vector<int> &index,
                   int depth) -> std::unique_ptr<Node> {
        auto node = std::make_unique<Node>();
        node->label =
            majorityLabel(dataset.trainY, index, dataset.numClasses);
        double parent_gini =
            gini(dataset.trainY, index, dataset.numClasses);
        if (depth >= max_depth || parent_gini == 0.0 ||
            index.size() < 4)
            return node;

        // Best midpoint split over a feature subsample (stride keeps
        // fitting fast on high-dimensional data).
        int best_feature = -1;
        float best_threshold = 0.0f;
        double best_score = parent_gini;
        int stride = std::max(1, dataset.featureDim / 64);
        for (int f = 0; f < dataset.featureDim; f += stride) {
            float lo = std::numeric_limits<float>::infinity();
            float hi = -lo;
            for (int i : index) {
                float v = dataset
                              .trainX[static_cast<std::size_t>(i)]
                                     [static_cast<std::size_t>(f)];
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
            if (hi <= lo)
                continue;
            float threshold = 0.5f * (lo + hi);
            std::vector<int> left;
            std::vector<int> right;
            for (int i : index) {
                float v = dataset
                              .trainX[static_cast<std::size_t>(i)]
                                     [static_cast<std::size_t>(f)];
                (v <= threshold ? left : right).push_back(i);
            }
            if (left.empty() || right.empty())
                continue;
            double score =
                (gini(dataset.trainY, left, dataset.numClasses) *
                     double(left.size()) +
                 gini(dataset.trainY, right, dataset.numClasses) *
                     double(right.size())) /
                double(index.size());
            if (score + 1e-9 < best_score) {
                best_score = score;
                best_feature = f;
                best_threshold = threshold;
            }
        }
        if (best_feature < 0)
            return node;

        std::vector<int> left;
        std::vector<int> right;
        for (int i : index) {
            float v = dataset.trainX[static_cast<std::size_t>(i)]
                                    [static_cast<std::size_t>(
                                        best_feature)];
            (v <= best_threshold ? left : right).push_back(i);
        }
        node->feature = best_feature;
        node->threshold = best_threshold;
        node->left = grow(left, depth + 1);
        node->right = grow(right, depth + 1);
        return node;
    };

    tree.root_ = grow(all, 0);
    return tree;
}

int
DecisionTree::predict(const std::vector<float> &x) const
{
    const Node *node = root_.get();
    while (node->feature >= 0) {
        node = x[static_cast<std::size_t>(node->feature)] <=
                       node->threshold
                   ? node->left.get()
                   : node->right.get();
    }
    return node->label;
}

std::vector<DecisionTree::LeafBox>
DecisionTree::leafBoxes() const
{
    std::vector<LeafBox> boxes;
    LeafBox box;
    box.lo.assign(static_cast<std::size_t>(featureDim_), 0.0f);
    box.hi.assign(static_cast<std::size_t>(featureDim_), 1.0f);
    box.dontCare.assign(static_cast<std::size_t>(featureDim_), true);

    std::function<void(const Node *, LeafBox &)> walk =
        [&](const Node *node, LeafBox &current) {
            if (node->feature < 0) {
                LeafBox leaf = current;
                leaf.label = node->label;
                boxes.push_back(leaf);
                return;
            }
            auto f = static_cast<std::size_t>(node->feature);
            float saved_hi = current.hi[f];
            float saved_lo = current.lo[f];
            bool saved_dc = current.dontCare[f];

            current.dontCare[f] = false;
            current.hi[f] = std::min(current.hi[f], node->threshold);
            walk(node->left.get(), current);
            current.hi[f] = saved_hi;

            current.dontCare[f] = false;
            current.lo[f] = std::max(saved_lo, node->threshold);
            walk(node->right.get(), current);
            current.lo[f] = saved_lo;
            current.dontCare[f] = saved_dc;
        };
    walk(root_.get(), box);
    return boxes;
}

int
DecisionTree::numLeaves() const
{
    std::function<int(const Node *)> count = [&](const Node *node) {
        if (node->feature < 0)
            return 1;
        return count(node->left.get()) + count(node->right.get());
    };
    return count(root_.get());
}

AcamTreeRunResult
runTreeOnAcam(const DecisionTree &tree, const arch::ArchSpec &spec,
              const std::vector<std::vector<float>> &samples)
{
    C4CAM_CHECK(spec.camType == arch::CamDeviceType::Acam,
                "decision trees require an ACAM device");
    C4CAM_CHECK(tree.featureDim() <= spec.cols,
                "tree feature dim " << tree.featureDim()
                << " exceeds subarray width " << spec.cols);

    std::vector<DecisionTree::LeafBox> boxes = tree.leafBoxes();
    sim::CamDevice device(spec);

    // Pack leaves row-major into as many subarrays as needed.
    struct Placement
    {
        sim::Handle handle;
        int firstLeaf;
        int count;
    };
    std::vector<Placement> placements;
    int placed = 0;
    sim::Handle bank = device.allocBank(spec.rows, spec.cols);
    sim::Handle mat = device.allocMat(bank);
    sim::Handle array = device.allocArray(mat);
    int subs_in_array = 0;
    int mats_in_bank = 1;
    int arrays_in_mat = 1;
    while (placed < static_cast<int>(boxes.size())) {
        if (subs_in_array == spec.subarraysPerArray) {
            if (arrays_in_mat == spec.arraysPerMat) {
                if (mats_in_bank == spec.matsPerBank) {
                    bank = device.allocBank(spec.rows, spec.cols);
                    mats_in_bank = 0;
                }
                mat = device.allocMat(bank);
                ++mats_in_bank;
                arrays_in_mat = 0;
            }
            array = device.allocArray(mat);
            ++arrays_in_mat;
            subs_in_array = 0;
        }
        sim::Handle sub = device.allocSubarray(array);
        ++subs_in_array;
        int count = std::min<int>(spec.rows,
                                  static_cast<int>(boxes.size()) -
                                      placed);
        std::vector<std::vector<sim::CamCell>> cells(
            static_cast<std::size_t>(count),
            std::vector<sim::CamCell>(
                static_cast<std::size_t>(tree.featureDim())));
        for (int r = 0; r < count; ++r) {
            const auto &box = boxes[static_cast<std::size_t>(placed + r)];
            for (int f = 0; f < tree.featureDim(); ++f) {
                auto fi = static_cast<std::size_t>(f);
                sim::CamCell cell;
                if (!box.dontCare[fi]) {
                    cell.lo = box.lo[fi];
                    cell.hi = box.hi[fi];
                    cell.wildcard = false;
                }
                cells[static_cast<std::size_t>(r)][fi] = cell;
            }
        }
        device.writeRanges(sub, cells, 0);
        placements.push_back({sub, placed, count});
        placed += count;
    }

    // Inference: one exact-match search per sample across all
    // subarrays in parallel; the single matching row is the leaf.
    AcamTreeRunResult result;
    auto &timing = device.timing();
    timing.beginScope(/*parallel=*/false);
    for (const auto &sample : samples) {
        timing.beginScope(/*parallel=*/true);
        int label = -1;
        for (const Placement &p : placements) {
            timing.beginScope(/*parallel=*/false);
            device.search(p.handle, sample, arch::SearchKind::Exact,
                          false, 0, p.count);
            const sim::SearchResult &sr = device.read(p.handle);
            // Boundary samples (x == threshold) can match both sibling
            // boxes; leaves are stored left-first, so the first match
            // reproduces the software tree's <=-goes-left rule.
            if (label < 0 && !sr.matchedRows.empty()) {
                label = boxes[static_cast<std::size_t>(
                                  p.firstLeaf + sr.matchedRows.front())]
                            .label;
            }
            timing.endScope();
        }
        timing.endScope();
        device.postMerge(static_cast<int>(placements.size()));
        C4CAM_ASSERT(label >= 0,
                     "sample fell outside every leaf box (tree bug)");
        result.predictions.push_back(label);
    }
    timing.endScope();
    result.perf = device.report();
    return result;
}

} // namespace c4cam::apps
