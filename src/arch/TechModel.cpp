#include "arch/TechModel.h"

#include <cmath>

#include "support/Error.h"

namespace c4cam::arch {

TechModel::TechModel(CamDeviceType type, int bits_per_cell)
    : type_(type), bits_(bits_per_cell)
{
    C4CAM_CHECK(bits_ == 1 || bits_ == 2, "bits per cell must be 1 or 2");
    if (type_ == CamDeviceType::Tcam)
        C4CAM_CHECK(bits_ == 1, "TCAM stores one bit per cell");
}

TechModel
TechModel::forSpec(const ArchSpec &spec)
{
    return TechModel(spec.camType, spec.bitsPerCell);
}

double
TechModel::searchLatencyNs(int cols) const
{
    C4CAM_ASSERT(cols > 0, "searchLatencyNs: cols must be positive");
    double ns = searchBaseNs_ + searchPerColNs_ * cols;
    if (bits_ == 2)
        ns *= mbLatencyFactor_;
    return ns;
}

double
TechModel::senseLatencyNs(SearchKind kind) const
{
    double ns = 0.0;
    switch (kind) {
      case SearchKind::Exact: ns = senseExactNs_; break;
      case SearchKind::Range: ns = senseRangeNs_; break;
      case SearchKind::Best: ns = senseBestNs_; break;
    }
    if (bits_ == 2)
        ns *= mbLatencyFactor_;
    return ns;
}

double
TechModel::mergeLatencyNs(int level_fanout) const
{
    if (level_fanout <= 1)
        return 0.0;
    // Tree reduction across the level's children.
    return mergeBaseNs_ * std::ceil(std::log2(double(level_fanout)));
}

SearchEnergyBreakdown
TechModel::searchEnergyBreakdown(int precharged_rows, int sensed_rows,
                                 int cols, SearchKind kind) const
{
    C4CAM_ASSERT(precharged_rows >= 0 && sensed_rows >= 0 && cols > 0,
                 "searchEnergyPj: bad geometry");
    C4CAM_ASSERT(sensed_rows <= precharged_rows,
                 "cannot sense rows that were not precharged");
    double cell = cellSearchPj_;
    double sa = senseAmpPj_;
    double drv = driverPj_;
    if (bits_ == 2) {
        cell *= mbCellEnergyFactor_;
        sa *= mbSenseEnergyFactor_;
        drv *= mbDriverEnergyFactor_;
    }
    // Best-match sensing (ADC / winner-take-all) costs extra per row.
    double sense_factor = kind == SearchKind::Best ? 1.6
                          : kind == SearchKind::Range ? 1.2
                                                      : 1.0;
    SearchEnergyBreakdown split;
    split.cellPj = double(precharged_rows) * cols * cell;
    split.sensePj = double(sensed_rows) * sa * sense_factor;
    split.driverPj = double(cols) * drv;
    return split;
}

double
TechModel::searchEnergyPj(int precharged_rows, int sensed_rows, int cols,
                          SearchKind kind) const
{
    return searchEnergyBreakdown(precharged_rows, sensed_rows, cols, kind)
        .total();
}

double
TechModel::mergeEnergyPj(int level_fanout) const
{
    if (level_fanout <= 1)
        return 0.0;
    return mergePjPerChild_ * level_fanout;
}

} // namespace c4cam::arch
