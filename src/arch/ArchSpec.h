#ifndef C4CAM_ARCH_ARCHSPEC_H
#define C4CAM_ARCH_ARCHSPEC_H

/**
 * @file
 * Architecture specification for CAM accelerators (paper §II-C, §III-B).
 *
 * Describes the four-level hierarchy (banks -> mats -> arrays ->
 * subarrays), the subarray geometry, per-level access modes, the CAM
 * device type and the compiler optimization target. Loaded from a JSON
 * file or built programmatically; presets mirror the paper's setups.
 */

#include <cstdint>
#include <string>

#include "support/Json.h"

namespace c4cam::arch {

/** CAM device families (paper §I). */
enum class CamDeviceType {
    Tcam, ///< ternary CAM, binary cells + don't-care
    Mcam, ///< multi-bit CAM (2 bits/cell here, as in the 2Fe-FET design)
    Acam, ///< analog CAM storing [lo, hi] ranges per cell
};

/** Whether sibling units at one hierarchy level operate concurrently. */
enum class AccessMode { Parallel, Sequential };

/** Built-in optimization targets (paper §III-B, §IV-C). */
enum class OptTarget {
    Base,         ///< cam-base: fully parallel, no extra optimization
    Latency,      ///< maximize parallel array utilization
    Power,        ///< cam-power: limit concurrently active subarrays
    Density,      ///< cam-density: selective-search row packing
    PowerDensity, ///< cam-power+density: both of the above
};

const char *toString(CamDeviceType type);
const char *toString(AccessMode mode);
const char *toString(OptTarget target);

CamDeviceType camDeviceTypeFromString(const std::string &s);
AccessMode accessModeFromString(const std::string &s);
OptTarget optTargetFromString(const std::string &s);

/**
 * Full description of one CAM accelerator configuration.
 */
struct ArchSpec
{
    /// @name Device
    /// @{
    CamDeviceType camType = CamDeviceType::Tcam;
    int bitsPerCell = 1;      ///< 1 (binary/TCAM) or 2 (multi-bit/MCAM)
    int processNode = 45;     ///< technology node in nm
    int wordWidth = 64;       ///< host interface width (bits)
    /// @}

    /// @name Hierarchy geometry
    /// @{
    int rows = 32;            ///< rows per subarray
    int cols = 32;            ///< columns (cells per row) per subarray
    int subarraysPerArray = 8;
    int arraysPerMat = 4;
    int matsPerBank = 4;
    int numBanks = 0;         ///< 0 = allocate as many banks as needed
    /// @}

    /// @name Access modes per level
    /// @{
    AccessMode subarrayMode = AccessMode::Parallel;
    AccessMode arrayMode = AccessMode::Parallel;
    AccessMode matMode = AccessMode::Parallel;
    AccessMode bankMode = AccessMode::Parallel;
    /// @}

    /// @name Optimization knobs
    /// @{
    OptTarget target = OptTarget::Base;
    /** Max subarrays active at once inside an array; 0 = all. */
    int maxActiveSubarrays = 0;
    /** Enable selective row search (multi-batch packing) [27]. */
    bool selectiveSearch = false;
    /// @}

    /// @name Derived quantities
    /// @{
    std::int64_t cellsPerSubarray() const
    {
        return static_cast<std::int64_t>(rows) * cols;
    }
    std::int64_t subarraysPerBank() const
    {
        return static_cast<std::int64_t>(subarraysPerArray) * arraysPerMat *
               matsPerBank;
    }
    /** Columns covered by one fully-used bank when tiling horizontally. */
    std::int64_t colsPerBank() const { return subarraysPerBank() * cols; }
    std::int64_t colsPerMat() const
    {
        return static_cast<std::int64_t>(subarraysPerArray) * arraysPerMat *
               cols;
    }
    std::int64_t colsPerArray() const
    {
        return static_cast<std::int64_t>(subarraysPerArray) * cols;
    }
    /// @}

    /** Raise CompilerError when the spec is inconsistent. */
    void validate() const;

    /// @name Serialization
    /// @{
    static ArchSpec fromJson(const JsonValue &json);
    static ArchSpec fromFile(const std::string &path);
    JsonValue toJson() const;
    /// @}

    /// @name Paper presets
    /// @{
    /**
     * The validation setup of §IV-B / [22]: 4 mats/bank, 4 arrays/mat,
     * 8 subarrays/array, 32-row subarrays with @p cols columns.
     */
    static ArchSpec validationSetup(int cols, int bits_per_cell);

    /**
     * The DSE setup of §IV-C1: square subarrays of size @p n with the
     * same 4/4/8 hierarchy and the given optimization target.
     */
    static ArchSpec dseSetup(int n, OptTarget target);

    /**
     * Iso-capacity setup of §IV-C2: square subarrays of size @p n with
     * subarraysPerArray chosen so each array holds 2^16 cells.
     */
    static ArchSpec isoCapacitySetup(int n, OptTarget target);
    /// @}

    bool operator==(const ArchSpec &other) const = default;
};

} // namespace c4cam::arch

#endif // C4CAM_ARCH_ARCHSPEC_H
