#ifndef C4CAM_ARCH_TECHMODEL_H
#define C4CAM_ARCH_TECHMODEL_H

/**
 * @file
 * Technology model for 2FeFET CAM arrays at the 45 nm node.
 *
 * Stand-in for Eva-CAM [29]: closed-form latency/energy expressions per
 * CAM primitive, anchored to the numbers the paper reports:
 *  - search latency 860 ps for 16x16 subarrays and 7.5 ns for 256x256
 *    (paper §IV-A1); modeled as an affine function of the column count
 *    since the match line discharges more slowly for larger columns;
 *  - per-query energies in the hundreds of pJ for the 32xC validation
 *    arrays (paper Fig. 7b), decomposed into per-cell search energy,
 *    per-row sense-amplifier energy and per-column driver energy;
 *  - multi-bit (MCAM) cells cost more energy and latency than binary
 *    cells because of the higher ML and data line voltages (Fig. 7).
 *
 * All latencies are in nanoseconds, energies in picojoules.
 */

#include "arch/ArchSpec.h"

namespace c4cam::arch {

/** Search kinds at the device level (mirrors the cam dialect). */
enum class SearchKind { Exact, Best, Range };

/** Per-component split of one search cycle's energy (pJ). */
struct SearchEnergyBreakdown
{
    double cellPj = 0.0;   ///< ML precharge/discharge across the cells
    double sensePj = 0.0;  ///< sense amplifiers on the sensed rows
    double driverPj = 0.0; ///< data-line drivers across the columns

    double total() const { return cellPj + sensePj + driverPj; }
};

/**
 * Latency/energy model for one CAM technology configuration.
 */
class TechModel
{
  public:
    /** Model for the given device type and bits/cell. */
    explicit TechModel(CamDeviceType type = CamDeviceType::Tcam,
                       int bits_per_cell = 1);

    /** Convenience: model matching an architecture spec. */
    static TechModel forSpec(const ArchSpec &spec);

    /// @name Search timing
    /// @{
    /**
     * Match-line search latency for one subarray with @p cols columns.
     * Affine in the column count; anchored at (16 -> 0.86 ns) and
     * (256 -> 7.5 ns) for binary cells.
     */
    double searchLatencyNs(int cols) const;

    /** Sense + encode latency after the MLs settle. */
    double senseLatencyNs(SearchKind kind) const;

    /** Query broadcast/driver latency per search issue. */
    double queryDriveLatencyNs() const { return queryDriveNs_; }

    /** Result-merging latency contributed by one hierarchy level. */
    double mergeLatencyNs(int level_fanout) const;
    /// @}

    /// @name Search energy
    /// @{
    /**
     * Energy of one search cycle on a subarray with @p cols columns.
     *
     * @param precharged_rows rows whose match lines precharge and
     *        discharge this cycle (the full subarray in ordinary
     *        operation; selective-search cycles also precharge every
     *        ML -- the selection happens at the sensing stage);
     * @param sensed_rows rows whose sense amplifiers fire (the row
     *        window under selective search [27], all rows otherwise).
     */
    double searchEnergyPj(int precharged_rows, int sensed_rows, int cols,
                          SearchKind kind) const;

    /** Component split of searchEnergyPj (same parameters). */
    SearchEnergyBreakdown searchEnergyBreakdown(int precharged_rows,
                                                int sensed_rows, int cols,
                                                SearchKind kind) const;

    /** Convenience: full-subarray search (all rows sensed). */
    double
    searchEnergyPj(int rows, int cols, SearchKind kind) const
    {
        return searchEnergyPj(rows, rows, cols, kind);
    }

    /** Per-cell component of the search energy. */
    double cellSearchEnergyPj() const { return cellSearchPj_; }

    /** Sense-amplifier energy per active row per search. */
    double senseAmpEnergyPj() const { return senseAmpPj_; }

    /** Driver energy per column per search issue. */
    double driverEnergyPj() const { return driverPj_; }

    /** Energy of merging partial results across @p fanout children. */
    double mergeEnergyPj(int level_fanout) const;
    /// @}

    /// @name Write path
    /// @{
    /** Program latency for one row (FeFET program pulse). */
    double writeLatencyNsPerRow() const { return writeNsPerRow_; }

    /** Program energy per cell. */
    double writeEnergyPjPerCell() const { return writePjPerCell_; }
    /// @}

    /// @name Static leakage / peripheral idle power
    /// @{
    /** Idle power per allocated subarray (mW), counted while a kernel
     *  occupies the device. Small compared to dynamic power. */
    double idlePowerMwPerSubarray() const { return idleMwPerSub_; }
    /// @}

    CamDeviceType deviceType() const { return type_; }
    int bitsPerCell() const { return bits_; }

  private:
    CamDeviceType type_;
    int bits_;

    // Calibration constants (see file comment). Binary-cell baselines,
    // scaled by the multi-bit factors below when bits_ == 2.
    // Per-search costs are kept lean: in sequential (power-capped)
    // operation the drive and sense stages pipeline with the next ML
    // evaluation, so most of the per-query overhead sits in the
    // merge/reduction tree below.
    double searchBaseNs_ = 0.417333;   ///< affine intercept
    double searchPerColNs_ = 0.0276667; ///< affine slope per column
    double senseExactNs_ = 0.15;
    double senseRangeNs_ = 0.25;
    double senseBestNs_ = 0.40;        ///< winner-take-all circuit
    double queryDriveNs_ = 0.30;
    double mergeBaseNs_ = 0.50;

    double cellSearchPj_ = 0.00050;    ///< ~0.5 fJ/cell/search
    double senseAmpPj_ = 0.0110;       ///< per row sense amplifier
    double driverPj_ = 0.0020;         ///< per column driver
    double mergePjPerChild_ = 0.020;

    double writeNsPerRow_ = 10.0;      ///< FeFET program pulse
    double writePjPerCell_ = 0.0500;

    double idleMwPerSub_ = 0.00050;

    // Multi-bit penalty factors (higher ML/data-line voltages).
    double mbLatencyFactor_ = 1.30;
    double mbCellEnergyFactor_ = 1.35;
    double mbSenseEnergyFactor_ = 1.30;
    double mbDriverEnergyFactor_ = 1.50;
};

} // namespace c4cam::arch

#endif // C4CAM_ARCH_TECHMODEL_H
