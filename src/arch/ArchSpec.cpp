#include "arch/ArchSpec.h"

#include "support/Error.h"

namespace c4cam::arch {

const char *
toString(CamDeviceType type)
{
    switch (type) {
      case CamDeviceType::Tcam: return "tcam";
      case CamDeviceType::Mcam: return "mcam";
      case CamDeviceType::Acam: return "acam";
    }
    return "?";
}

const char *
toString(AccessMode mode)
{
    return mode == AccessMode::Parallel ? "parallel" : "sequential";
}

const char *
toString(OptTarget target)
{
    switch (target) {
      case OptTarget::Base: return "base";
      case OptTarget::Latency: return "latency";
      case OptTarget::Power: return "power";
      case OptTarget::Density: return "density";
      case OptTarget::PowerDensity: return "power+density";
    }
    return "?";
}

CamDeviceType
camDeviceTypeFromString(const std::string &s)
{
    if (s == "tcam")
        return CamDeviceType::Tcam;
    if (s == "mcam")
        return CamDeviceType::Mcam;
    if (s == "acam")
        return CamDeviceType::Acam;
    C4CAM_USER_ERROR("unknown CAM device type '" << s
                     << "' (expected tcam/mcam/acam)");
}

AccessMode
accessModeFromString(const std::string &s)
{
    if (s == "parallel")
        return AccessMode::Parallel;
    if (s == "sequential")
        return AccessMode::Sequential;
    C4CAM_USER_ERROR("unknown access mode '" << s
                     << "' (expected parallel/sequential)");
}

OptTarget
optTargetFromString(const std::string &s)
{
    if (s == "base")
        return OptTarget::Base;
    if (s == "latency")
        return OptTarget::Latency;
    if (s == "power")
        return OptTarget::Power;
    if (s == "density")
        return OptTarget::Density;
    if (s == "power+density" || s == "power_density")
        return OptTarget::PowerDensity;
    C4CAM_USER_ERROR("unknown optimization target '" << s << "'");
}

void
ArchSpec::validate() const
{
    C4CAM_CHECK(rows > 0 && cols > 0, "subarray dims must be positive");
    C4CAM_CHECK(subarraysPerArray > 0 && arraysPerMat > 0 &&
                    matsPerBank > 0,
                "hierarchy fan-outs must be positive");
    C4CAM_CHECK(numBanks >= 0, "numBanks must be >= 0 (0 = auto)");
    C4CAM_CHECK(bitsPerCell == 1 || bitsPerCell == 2,
                "bitsPerCell must be 1 or 2");
    C4CAM_CHECK(maxActiveSubarrays >= 0 &&
                    maxActiveSubarrays <= subarraysPerArray,
                "maxActiveSubarrays must be in [0, subarraysPerArray]");
    if (camType == CamDeviceType::Tcam)
        C4CAM_CHECK(bitsPerCell == 1, "TCAM cells store 1 bit");
}

ArchSpec
ArchSpec::fromJson(const JsonValue &json)
{
    ArchSpec spec;
    spec.camType =
        camDeviceTypeFromString(json.getString("cam_type", "tcam"));
    spec.bitsPerCell =
        static_cast<int>(json.getInt("bits_per_cell",
                                     spec.camType == CamDeviceType::Mcam
                                         ? 2 : 1));
    spec.processNode = static_cast<int>(json.getInt("process_node", 45));
    spec.wordWidth = static_cast<int>(json.getInt("word_width", 64));
    spec.rows = static_cast<int>(json.getInt("rows_per_subarray", 32));
    spec.cols = static_cast<int>(json.getInt("cols_per_subarray", 32));
    spec.subarraysPerArray =
        static_cast<int>(json.getInt("subarrays_per_array", 8));
    spec.arraysPerMat = static_cast<int>(json.getInt("arrays_per_mat", 4));
    spec.matsPerBank = static_cast<int>(json.getInt("mats_per_bank", 4));
    spec.numBanks = static_cast<int>(json.getInt("num_banks", 0));
    spec.subarrayMode =
        accessModeFromString(json.getString("subarray_mode", "parallel"));
    spec.arrayMode =
        accessModeFromString(json.getString("array_mode", "parallel"));
    spec.matMode =
        accessModeFromString(json.getString("mat_mode", "parallel"));
    spec.bankMode =
        accessModeFromString(json.getString("bank_mode", "parallel"));
    spec.target = optTargetFromString(json.getString("target", "base"));
    spec.maxActiveSubarrays =
        static_cast<int>(json.getInt("max_active_subarrays", 0));
    spec.selectiveSearch = json.getBool("selective_search", false);

    // Optimization targets imply their knobs unless explicitly set.
    if (spec.target == OptTarget::Power ||
        spec.target == OptTarget::PowerDensity) {
        if (spec.maxActiveSubarrays == 0)
            spec.maxActiveSubarrays = 1;
    }
    if (spec.target == OptTarget::Density ||
        spec.target == OptTarget::PowerDensity) {
        spec.selectiveSearch = true;
    }

    spec.validate();
    return spec;
}

ArchSpec
ArchSpec::fromFile(const std::string &path)
{
    return fromJson(parseJsonFile(path));
}

JsonValue
ArchSpec::toJson() const
{
    JsonValue json = JsonValue::makeObject();
    json.set("cam_type", JsonValue(std::string(toString(camType))));
    json.set("bits_per_cell", JsonValue(double(bitsPerCell)));
    json.set("process_node", JsonValue(double(processNode)));
    json.set("word_width", JsonValue(double(wordWidth)));
    json.set("rows_per_subarray", JsonValue(double(rows)));
    json.set("cols_per_subarray", JsonValue(double(cols)));
    json.set("subarrays_per_array", JsonValue(double(subarraysPerArray)));
    json.set("arrays_per_mat", JsonValue(double(arraysPerMat)));
    json.set("mats_per_bank", JsonValue(double(matsPerBank)));
    json.set("num_banks", JsonValue(double(numBanks)));
    json.set("subarray_mode",
             JsonValue(std::string(toString(subarrayMode))));
    json.set("array_mode", JsonValue(std::string(toString(arrayMode))));
    json.set("mat_mode", JsonValue(std::string(toString(matMode))));
    json.set("bank_mode", JsonValue(std::string(toString(bankMode))));
    json.set("target", JsonValue(std::string(toString(target))));
    json.set("max_active_subarrays",
             JsonValue(double(maxActiveSubarrays)));
    json.set("selective_search", JsonValue(selectiveSearch));
    return json;
}

ArchSpec
ArchSpec::validationSetup(int cols, int bits_per_cell)
{
    ArchSpec spec;
    spec.camType = bits_per_cell == 1 ? CamDeviceType::Tcam
                                      : CamDeviceType::Mcam;
    spec.bitsPerCell = bits_per_cell;
    spec.rows = 32;
    spec.cols = cols;
    spec.subarraysPerArray = 8;
    spec.arraysPerMat = 4;
    spec.matsPerBank = 4;
    spec.numBanks = 0;
    spec.validate();
    return spec;
}

ArchSpec
ArchSpec::dseSetup(int n, OptTarget target)
{
    ArchSpec spec;
    spec.rows = n;
    spec.cols = n;
    spec.subarraysPerArray = 8;
    spec.arraysPerMat = 4;
    spec.matsPerBank = 4;
    spec.numBanks = 0;
    spec.target = target;
    if (target == OptTarget::Power || target == OptTarget::PowerDensity)
        spec.maxActiveSubarrays = 1;
    if (target == OptTarget::Density || target == OptTarget::PowerDensity)
        spec.selectiveSearch = true;
    spec.validate();
    return spec;
}

ArchSpec
ArchSpec::isoCapacitySetup(int n, OptTarget target)
{
    ArchSpec spec = dseSetup(n, target);
    std::int64_t cells = std::int64_t(1) << 16;
    spec.subarraysPerArray = static_cast<int>(cells / (n * std::int64_t(n)));
    C4CAM_CHECK(spec.subarraysPerArray >= 1,
                "iso-capacity subarray larger than the array budget");
    spec.validate();
    return spec;
}

} // namespace c4cam::arch
