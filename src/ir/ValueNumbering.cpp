#include "ir/ValueNumbering.h"

#include "support/Error.h"

namespace c4cam::ir {

ValueNumbering
ValueNumbering::forFunction(Operation *func)
{
    C4CAM_CHECK(func && func->numRegions() >= 1,
                "value numbering requires a function-like op with a body");
    ValueNumbering numbering;
    numbering.numberBlock(func->region(0).front());
    return numbering;
}

void
ValueNumbering::numberBlock(Block &block)
{
    for (std::size_t i = 0; i < block.numArguments(); ++i) {
        Value *arg = block.argument(i);
        slots_.emplace(arg, static_cast<std::int32_t>(slots_.size()));
    }
    for (Operation *op : block.opVector()) {
        for (std::size_t i = 0; i < op->numResults(); ++i)
            slots_.emplace(op->result(i),
                           static_cast<std::int32_t>(slots_.size()));
        for (std::size_t r = 0; r < op->numRegions(); ++r)
            for (const auto &nested : op->region(r).blocks())
                numberBlock(*nested);
    }
}

std::int32_t
ValueNumbering::slot(Value *value) const
{
    auto it = slots_.find(value);
    C4CAM_ASSERT(it != slots_.end(),
                 "value numbering miss: value was not visited by the "
                 "function walk");
    return it->second;
}

std::int32_t
ValueNumbering::slotOrInvalid(Value *value) const
{
    auto it = slots_.find(value);
    return it == slots_.end() ? -1 : it->second;
}

} // namespace c4cam::ir
