#include "ir/Type.h"

#include <sstream>

#include "support/Error.h"

namespace c4cam::ir {

TypeKind
Type::kind() const
{
    C4CAM_ASSERT(impl_, "kind() on null type");
    return impl_->kind;
}

const std::vector<std::int64_t> &
Type::shape() const
{
    C4CAM_ASSERT(isShaped(), "shape() on non-shaped type " << str());
    return impl_->shape;
}

std::int64_t
Type::numElements() const
{
    std::int64_t n = 1;
    for (std::int64_t d : shape())
        n *= d;
    return n;
}

Type
Type::elementType() const
{
    C4CAM_ASSERT(isShaped(), "elementType() on non-shaped type");
    return Type(impl_->element);
}

const std::string &
Type::opaqueDialect() const
{
    C4CAM_ASSERT(isOpaque(), "opaqueDialect() on non-opaque type");
    return impl_->dialect;
}

const std::string &
Type::opaqueName() const
{
    C4CAM_ASSERT(isOpaque(), "opaqueName() on non-opaque type");
    return impl_->name;
}

std::string
Type::str() const
{
    if (!impl_)
        return "<<null type>>";
    switch (impl_->kind) {
      case TypeKind::F32: return "f32";
      case TypeKind::F64: return "f64";
      case TypeKind::I1: return "i1";
      case TypeKind::I32: return "i32";
      case TypeKind::I64: return "i64";
      case TypeKind::Index: return "index";
      case TypeKind::Opaque: return "!" + impl_->dialect + "." + impl_->name;
      case TypeKind::Tensor:
      case TypeKind::MemRef: {
        std::ostringstream oss;
        oss << (impl_->kind == TypeKind::Tensor ? "tensor<" : "memref<");
        for (std::int64_t d : impl_->shape)
            oss << d << "x";
        oss << Type(impl_->element).str() << ">";
        return oss.str();
      }
    }
    return "<<invalid>>";
}

} // namespace c4cam::ir
