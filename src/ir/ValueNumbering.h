#ifndef C4CAM_IR_VALUENUMBERING_H
#define C4CAM_IR_VALUENUMBERING_H

/**
 * @file
 * Dense, stable numbering of every SSA value inside one function.
 *
 * The execution-plan compiler replaces the interpreter's
 * std::map<Value*, RtValue> environment with a flat slot frame
 * (std::vector indexed by slot). That requires a total, deterministic
 * mapping from SSA values to small dense integers. The numbering
 * walks the function in preorder -- entry-block arguments first, then
 * per operation its results followed by the values of its nested
 * regions (block arguments before the block's own ops) -- so the slot
 * of a value never depends on which execution phase or path touches
 * it, and separately compiled instruction streams over the same
 * function (setup / query / full) can share one persistent frame.
 */

#include <cstdint>
#include <unordered_map>

#include "ir/IR.h"

namespace c4cam::ir {

class ValueNumbering
{
  public:
    /**
     * Number every value reachable inside @p func: its entry-block
     * arguments, every nested block's arguments and every op result,
     * in preorder. @p func must be a function-like op with one region.
     */
    static ValueNumbering forFunction(Operation *func);

    /** Dense slot of @p value; asserts the value was numbered. */
    std::int32_t slot(Value *value) const;

    /** Slot of @p value, or -1 when it was not numbered. */
    std::int32_t slotOrInvalid(Value *value) const;

    /** Total number of slots (frame size). */
    std::int32_t numSlots() const
    {
        return static_cast<std::int32_t>(slots_.size());
    }

  private:
    void numberBlock(Block &block);

    std::unordered_map<Value *, std::int32_t> slots_;
};

} // namespace c4cam::ir

#endif // C4CAM_IR_VALUENUMBERING_H
