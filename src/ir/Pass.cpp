#include "ir/Pass.h"

#include "ir/Verifier.h"
#include "support/Error.h"

namespace c4cam::ir {

void
PassManager::run(Module &module)
{
    timings_.clear();
    for (auto &pass : passes_) {
        auto start = std::chrono::steady_clock::now();
        try {
            pass->run(module);
        } catch (const CompilerError &err) {
            C4CAM_USER_ERROR("pass '" << pass->name() << "' failed: "
                             << err.what());
        }
        if (timing_) {
            auto end = std::chrono::steady_clock::now();
            double ms = std::chrono::duration<double, std::milli>(
                            end - start)
                            .count();
            timings_.push_back({pass->name(), ms});
        }
        if (verify_) {
            try {
                verifyModule(module);
            } catch (const CompilerError &err) {
                C4CAM_USER_ERROR("IR invalid after pass '" << pass->name()
                                 << "': " << err.what());
            }
        }
        if (afterPass_)
            afterPass_(pass->name(), module);
    }
}

} // namespace c4cam::ir
