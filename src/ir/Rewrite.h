#ifndef C4CAM_IR_REWRITE_H
#define C4CAM_IR_REWRITE_H

/**
 * @file
 * Declarative IR rewriting: RewritePattern + a greedy fixpoint driver,
 * mirroring MLIR's applyPatternsAndFoldGreedily.
 */

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/Builder.h"
#include "ir/IR.h"

namespace c4cam::ir {

/**
 * OpBuilder that also tracks op replacement/erasure so the greedy driver
 * can keep its worklist coherent.
 */
class PatternRewriter : public OpBuilder
{
  public:
    explicit PatternRewriter(Context &ctx) : OpBuilder(ctx) {}

    /**
     * Replace all results of @p op with @p replacements and erase it.
     * The replacement count must equal the result count.
     */
    void replaceOp(Operation *op, const std::vector<Value *> &replacements);

    /** Erase @p op (results must be unused). */
    void eraseOp(Operation *op);

    /** @return true when @p op was erased during this driver round. */
    bool wasErased(Operation *op) const { return erased_.count(op) > 0; }

    /** Clear the erased set (driver-internal, per round). */
    void resetErased() { erased_.clear(); }

  private:
    std::set<Operation *> erased_;
};

/**
 * A single rewrite rule on one op kind (or any op when rootName empty).
 */
class RewritePattern
{
  public:
    explicit RewritePattern(std::string root_name, int benefit = 1)
        : rootName_(std::move(root_name)), benefit_(benefit)
    {}

    virtual ~RewritePattern() = default;

    const std::string &rootName() const { return rootName_; }
    int benefit() const { return benefit_; }

    /**
     * Try to match @p op and rewrite it through @p rewriter.
     * @return true when the IR was changed.
     */
    virtual bool matchAndRewrite(Operation *op,
                                 PatternRewriter &rewriter) const = 0;

  private:
    std::string rootName_;
    int benefit_;
};

/** An owning list of patterns; higher benefit patterns run first. */
class RewritePatternSet
{
  public:
    void
    add(std::unique_ptr<RewritePattern> pattern)
    {
        patterns_.push_back(std::move(pattern));
    }

    template <typename PatternT, typename... Args>
    void
    insert(Args &&...args)
    {
        patterns_.push_back(
            std::make_unique<PatternT>(std::forward<Args>(args)...));
    }

    const std::vector<std::unique_ptr<RewritePattern>> &patterns() const
    {
        return patterns_;
    }

  private:
    std::vector<std::unique_ptr<RewritePattern>> patterns_;
};

/**
 * Apply @p patterns greedily to every op nested under @p root until a
 * fixpoint (no pattern matches) or @p max_iterations rounds.
 *
 * @return true when any rewrite fired.
 */
bool applyPatternsGreedily(Operation *root, const RewritePatternSet &patterns,
                           int max_iterations = 64);

} // namespace c4cam::ir

#endif // C4CAM_IR_REWRITE_H
