#ifndef C4CAM_IR_BUILDER_H
#define C4CAM_IR_BUILDER_H

/**
 * @file
 * Insertion-point-based op construction, mirroring mlir::OpBuilder.
 */

#include <string>
#include <vector>

#include "ir/IR.h"

namespace c4cam::ir {

/**
 * Creates operations at a movable insertion point inside a block.
 */
class OpBuilder
{
  public:
    explicit OpBuilder(Context &ctx) : ctx_(&ctx) {}

    Context &context() const { return *ctx_; }

    /// @name Insertion point management
    /// @{
    void
    setInsertionPointToEnd(Block *block)
    {
        block_ = block;
        anchor_ = nullptr;
    }

    void
    setInsertionPointToStart(Block *block)
    {
        block_ = block;
        anchor_ = block->empty() ? nullptr : block->front();
    }

    /** Insert before @p op from now on. */
    void
    setInsertionPoint(Operation *op)
    {
        block_ = op->parentBlock();
        anchor_ = op;
    }

    /** Insert after @p op from now on. */
    void
    setInsertionPointAfter(Operation *op)
    {
        block_ = op->parentBlock();
        anchor_ = op->nextOp();
    }

    Block *insertionBlock() const { return block_; }
    /// @}

    /**
     * Create an op at the insertion point.
     * @param num_regions regions are created empty; callers add blocks.
     */
    Operation *
    create(const std::string &name, const std::vector<Value *> &operands,
           const std::vector<Type> &result_types,
           Operation::AttrMap attrs = {}, int num_regions = 0);

    /// @name Common constant helpers (arith dialect)
    /// @{
    /** Materialize `arith.constant {value} : index`. */
    Value *constantIndex(std::int64_t value);
    /** Materialize an i64 constant. */
    Value *constantInt(std::int64_t value);
    /** Materialize an f32 constant. */
    Value *constantFloat(double value);
    /** Materialize an i1 constant. */
    Value *constantBool(bool value);
    /// @}

  private:
    Context *ctx_;
    Block *block_ = nullptr;
    Operation *anchor_ = nullptr; ///< Insert before this op (or append).
};

} // namespace c4cam::ir

#endif // C4CAM_IR_BUILDER_H
