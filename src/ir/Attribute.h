#ifndef C4CAM_IR_ATTRIBUTE_H
#define C4CAM_IR_ATTRIBUTE_H

/**
 * @file
 * Compile-time constants attached to operations.
 *
 * Attributes carry static information on ops (tile sizes, search kinds,
 * symbol names...). They are small value types: copying an Attribute
 * copies its payload.
 */

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "ir/Type.h"

namespace c4cam::ir {

/** A unit/int/float/string/type/array compile-time value. */
class Attribute
{
  public:
    /** Unit attribute (presence-only flag). */
    Attribute() : value_(std::monostate{}) {}

    explicit Attribute(bool b) : value_(b) {}
    explicit Attribute(std::int64_t i) : value_(i) {}
    explicit Attribute(int i) : value_(static_cast<std::int64_t>(i)) {}
    explicit Attribute(double d) : value_(d) {}
    explicit Attribute(std::string s) : value_(std::move(s)) {}
    explicit Attribute(const char *s) : value_(std::string(s)) {}
    explicit Attribute(Type t) : value_(t) {}
    explicit Attribute(std::vector<Attribute> elems)
        : value_(std::move(elems))
    {}

    bool isUnit() const { return std::holds_alternative<std::monostate>(value_); }
    bool isBool() const { return std::holds_alternative<bool>(value_); }
    bool isInt() const { return std::holds_alternative<std::int64_t>(value_); }
    bool isFloat() const { return std::holds_alternative<double>(value_); }
    bool isString() const { return std::holds_alternative<std::string>(value_); }
    bool isType() const { return std::holds_alternative<Type>(value_); }
    bool isArray() const
    {
        return std::holds_alternative<std::vector<Attribute>>(value_);
    }

    bool asBool() const;
    std::int64_t asInt() const;
    double asFloat() const;
    const std::string &asString() const;
    Type asType() const;
    const std::vector<Attribute> &asArray() const;

    /** Convenience: array attribute as a vector of ints. */
    std::vector<std::int64_t> asIntArray() const;

    bool operator==(const Attribute &other) const;

    /** MLIR-like rendering, e.g. `3 : i64`, `"knn"`, `[1, 2]`. */
    std::string str() const;

  private:
    std::variant<std::monostate, bool, std::int64_t, double, std::string,
                 Type, std::vector<Attribute>>
        value_;
};

} // namespace c4cam::ir

#endif // C4CAM_IR_ATTRIBUTE_H
