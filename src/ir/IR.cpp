#include "ir/IR.h"

#include <algorithm>

#include "ir/Printer.h"
#include "support/Error.h"

namespace c4cam::ir {

//
// Value
//

void
Value::replaceAllUsesWith(Value *other)
{
    C4CAM_ASSERT(other, "replaceAllUsesWith(null)");
    C4CAM_ASSERT(other != this, "self-replacement");
    // set() mutates uses_, so iterate over a snapshot.
    std::vector<OpOperand *> snapshot = uses_;
    for (OpOperand *use : snapshot)
        use->set(other);
}

//
// OpOperand
//

void
OpOperand::set(Value *value)
{
    if (value_ == value)
        return;
    if (value_) {
        auto &uses = value_->uses_;
        uses.erase(std::remove(uses.begin(), uses.end(), this), uses.end());
    }
    value_ = value;
    if (value_)
        value_->uses_.push_back(this);
}

OpOperand::~OpOperand()
{
    set(nullptr);
}

//
// Operation
//

Operation::Operation(Context &ctx, std::string name)
    : ctx_(&ctx), name_(std::move(name))
{}

Operation::~Operation()
{
    // Regions (and the ops inside them) must go before this op's results,
    // since nested ops may reference them.
    regions_.clear();
    operands_.clear();
    for (auto &r : results_)
        C4CAM_ASSERT(!r->hasUses(),
                     "destroying op '" << name_ << "' with live uses");
}

std::unique_ptr<Operation>
Operation::create(Context &ctx, const std::string &name,
                  const std::vector<Value *> &operands,
                  const std::vector<Type> &result_types, AttrMap attrs,
                  int num_regions)
{
    std::unique_ptr<Operation> op(new Operation(ctx, name));
    for (Value *v : operands) {
        C4CAM_ASSERT(v, "null operand while creating op '" << name << "'");
        op->operands_.push_back(
            std::unique_ptr<OpOperand>(new OpOperand(op.get(), v)));
    }
    unsigned idx = 0;
    for (Type t : result_types) {
        C4CAM_ASSERT(t, "null result type while creating '" << name << "'");
        op->results_.push_back(std::unique_ptr<Value>(
            new Value(t, op.get(), nullptr, idx++)));
    }
    op->attrs_ = std::move(attrs);
    for (int i = 0; i < num_regions; ++i)
        op->addRegion();
    return op;
}

std::string
Operation::dialect() const
{
    auto pos = name_.find('.');
    return pos == std::string::npos ? std::string() : name_.substr(0, pos);
}

Value *
Operation::operand(std::size_t i) const
{
    C4CAM_ASSERT(i < operands_.size(), "operand index " << i
                 << " out of range for '" << name_ << "'");
    return operands_[i]->get();
}

void
Operation::setOperand(std::size_t i, Value *value)
{
    C4CAM_ASSERT(i < operands_.size(), "operand index " << i
                 << " out of range for '" << name_ << "'");
    operands_[i]->set(value);
}

void
Operation::appendOperand(Value *value)
{
    C4CAM_ASSERT(value, "appendOperand(null)");
    operands_.push_back(
        std::unique_ptr<OpOperand>(new OpOperand(this, value)));
}

void
Operation::eraseOperand(std::size_t i)
{
    C4CAM_ASSERT(i < operands_.size(), "operand index " << i
                 << " out of range for '" << name_ << "'");
    operands_.erase(operands_.begin() + static_cast<std::ptrdiff_t>(i));
}

std::vector<Value *>
Operation::operandValues() const
{
    std::vector<Value *> out;
    out.reserve(operands_.size());
    for (const auto &o : operands_)
        out.push_back(o->get());
    return out;
}

Value *
Operation::result(std::size_t i) const
{
    C4CAM_ASSERT(i < results_.size(), "result index " << i
                 << " out of range for '" << name_ << "'");
    return results_[i].get();
}

const Attribute &
Operation::attr(const std::string &key) const
{
    auto it = attrs_.find(key);
    C4CAM_ASSERT(it != attrs_.end(),
                 "op '" << name_ << "' has no attribute '" << key << "'");
    return it->second;
}

const Attribute *
Operation::findAttr(const std::string &key) const
{
    auto it = attrs_.find(key);
    return it == attrs_.end() ? nullptr : &it->second;
}

void
Operation::setAttr(const std::string &key, Attribute value)
{
    attrs_[key] = std::move(value);
}

void
Operation::removeAttr(const std::string &key)
{
    attrs_.erase(key);
}

std::int64_t
Operation::intAttr(const std::string &key) const
{
    return attr(key).asInt();
}

std::int64_t
Operation::intAttrOr(const std::string &key, std::int64_t dflt) const
{
    const Attribute *a = findAttr(key);
    return a ? a->asInt() : dflt;
}

std::string
Operation::strAttr(const std::string &key) const
{
    return attr(key).asString();
}

std::string
Operation::strAttrOr(const std::string &key, const std::string &dflt) const
{
    const Attribute *a = findAttr(key);
    return a ? a->asString() : dflt;
}

bool
Operation::boolAttrOr(const std::string &key, bool dflt) const
{
    const Attribute *a = findAttr(key);
    if (!a)
        return dflt;
    return a->isUnit() ? true : a->asBool();
}

Region &
Operation::region(std::size_t i) const
{
    C4CAM_ASSERT(i < regions_.size(), "region index " << i
                 << " out of range for '" << name_ << "'");
    return *regions_[i];
}

Region &
Operation::addRegion()
{
    regions_.push_back(std::make_unique<Region>(this));
    return *regions_.back();
}

Operation *
Operation::parentOp() const
{
    return parent_ ? parent_->parentOp() : nullptr;
}

Operation *
Operation::nextOp() const
{
    C4CAM_ASSERT(parent_, "nextOp() on detached op");
    auto it = self_;
    ++it;
    return it == parent_->ops_.end() ? nullptr : it->get();
}

Operation *
Operation::prevOp() const
{
    C4CAM_ASSERT(parent_, "prevOp() on detached op");
    if (self_ == parent_->ops_.begin())
        return nullptr;
    auto it = self_;
    --it;
    return it->get();
}

void
Operation::erase()
{
    C4CAM_ASSERT(parent_, "erase() on detached op");
    for (auto &r : results_)
        C4CAM_ASSERT(!r->hasUses(),
                     "erasing op '" << name_ << "' whose results have uses");
    Block *block = parent_;
    auto it = self_;
    parent_ = nullptr;
    block->ops_.erase(it); // destroys *this
}

void
Operation::dropAllReferences()
{
    for (auto &o : operands_)
        o->set(nullptr);
    for (auto &region : regions_)
        for (auto &block : region->blocks())
            for (auto &op : block->operations())
                op->dropAllReferences();
}

void
Operation::moveBefore(Operation *other)
{
    C4CAM_ASSERT(parent_ && other->parent_,
                 "moveBefore requires both ops attached");
    Block *src = parent_;
    std::unique_ptr<Operation> owned = src->take(this);
    other->parent_->insertBefore(other, std::move(owned));
}

void
Operation::walk(const std::function<void(Operation *)> &fn)
{
    fn(this);
    for (auto &region : regions_) {
        for (auto &block : region->blocks()) {
            // Snapshot: fn may erase/insert ops.
            for (Operation *op : block->opVector())
                op->walk(fn);
        }
    }
}

void
Operation::walkPostOrder(const std::function<void(Operation *)> &fn)
{
    for (auto &region : regions_) {
        for (auto &block : region->blocks()) {
            for (Operation *op : block->opVector())
                op->walkPostOrder(fn);
        }
    }
    fn(this);
}

std::string
Operation::str() const
{
    return printOperation(const_cast<Operation *>(this));
}

//
// Block
//

Block::~Block()
{
    // Destroy ops in reverse order so uses die before defs; this keeps the
    // "no live uses" destructor assertion meaningful.
    while (!ops_.empty()) {
        ops_.back()->dropAllReferences();
        ops_.back()->parent_ = nullptr;
        ops_.pop_back();
    }
}

Value *
Block::addArgument(Type type)
{
    args_.push_back(std::unique_ptr<Value>(
        new Value(type, nullptr, this, static_cast<unsigned>(args_.size()))));
    return args_.back().get();
}

Value *
Block::argument(std::size_t i) const
{
    C4CAM_ASSERT(i < args_.size(), "block argument index out of range");
    return args_[i].get();
}

Operation *
Block::front() const
{
    C4CAM_ASSERT(!ops_.empty(), "front() on empty block");
    return ops_.front().get();
}

Operation *
Block::back() const
{
    C4CAM_ASSERT(!ops_.empty(), "back() on empty block");
    return ops_.back().get();
}

Operation *
Block::append(std::unique_ptr<Operation> op)
{
    return insertBefore(nullptr, std::move(op));
}

Operation *
Block::insertBefore(Operation *anchor, std::unique_ptr<Operation> op)
{
    C4CAM_ASSERT(op, "inserting null op");
    C4CAM_ASSERT(!op->parent_, "op is already attached to a block");
    Operation *raw = op.get();
    OpList::iterator pos = ops_.end();
    if (anchor) {
        C4CAM_ASSERT(anchor->parent_ == this,
                     "insertBefore anchor is in a different block");
        pos = anchor->self_;
    }
    auto it = ops_.insert(pos, std::move(op));
    raw->parent_ = this;
    raw->self_ = it;
    return raw;
}

std::unique_ptr<Operation>
Block::take(Operation *op)
{
    C4CAM_ASSERT(op && op->parent_ == this, "take() of op not in this block");
    auto it = op->self_;
    std::unique_ptr<Operation> owned = std::move(*it);
    ops_.erase(it);
    owned->parent_ = nullptr;
    return owned;
}

std::vector<Operation *>
Block::opVector() const
{
    std::vector<Operation *> out;
    out.reserve(ops_.size());
    for (const auto &op : ops_)
        out.push_back(op.get());
    return out;
}

Operation *
Block::parentOp() const
{
    return parent_ ? parent_->parentOp() : nullptr;
}

//
// Region
//

Block &
Region::entryBlock()
{
    if (blocks_.empty())
        addBlock();
    return *blocks_.front();
}

Block &
Region::front() const
{
    C4CAM_ASSERT(!blocks_.empty(), "front() on empty region");
    return *blocks_.front();
}

Block &
Region::block(std::size_t i) const
{
    C4CAM_ASSERT(i < blocks_.size(), "block index out of range");
    return *blocks_[i];
}

Block &
Region::addBlock()
{
    blocks_.push_back(std::make_unique<Block>());
    blocks_.back()->parent_ = this;
    return *blocks_.back();
}

//
// Module
//

Module::Module(Context &ctx) : ctx_(&ctx)
{
    op_ = Operation::create(ctx, kModuleOpName, {}, {}, {}, 1);
    op_->region(0).addBlock();
}

Module::Module(Context &ctx, std::unique_ptr<Operation> op)
    : ctx_(&ctx), op_(std::move(op))
{
    C4CAM_ASSERT(op_ && op_->name() == kModuleOpName,
                 "Module must wrap a builtin.module op");
    C4CAM_ASSERT(op_->numRegions() == 1 && op_->region(0).numBlocks() == 1,
                 "builtin.module must have a single-block region");
}

Block *
Module::body() const
{
    return &op_->region(0).front();
}

Operation *
Module::lookupFunction(const std::string &name) const
{
    for (Operation *op : body()->opVector()) {
        if (op->name() == kFuncOpName &&
            op->strAttrOr("sym_name", "") == name) {
            return op;
        }
    }
    return nullptr;
}

std::vector<Operation *>
Module::functions() const
{
    std::vector<Operation *> out;
    for (Operation *op : body()->opVector())
        if (op->name() == kFuncOpName)
            out.push_back(op);
    return out;
}

void
Module::walk(const std::function<void(Operation *)> &fn) const
{
    op_->walk(fn);
}

std::string
Module::str() const
{
    return op_->str();
}

} // namespace c4cam::ir
