#ifndef C4CAM_IR_PASS_H
#define C4CAM_IR_PASS_H

/**
 * @file
 * Pass and PassManager: sequential module-level transformations with
 * optional inter-pass verification, timing, and IR dumping.
 */

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/IR.h"

namespace c4cam::ir {

/** A module-level transformation. Throws CompilerError on failure. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable pass name used in diagnostics and timing reports. */
    virtual std::string name() const = 0;

    /** Transform @p module in place. */
    virtual void run(Module &module) = 0;
};

/** Wrap a plain function as a Pass. */
class LambdaPass : public Pass
{
  public:
    LambdaPass(std::string name, std::function<void(Module &)> fn)
        : name_(std::move(name)), fn_(std::move(fn))
    {}

    std::string name() const override { return name_; }
    void run(Module &module) override { fn_(module); }

  private:
    std::string name_;
    std::function<void(Module &)> fn_;
};

/**
 * Runs a pipeline of passes over a module.
 */
class PassManager
{
  public:
    /** Wall-clock cost of one executed pass. */
    struct Timing
    {
        std::string pass;
        double millis;
    };

    /** Observes pass boundaries; used for IR dumping and tests. */
    using Callback = std::function<void(const std::string &pass_name,
                                        Module &module)>;

    void
    addPass(std::unique_ptr<Pass> pass)
    {
        passes_.push_back(std::move(pass));
    }

    template <typename PassT, typename... Args>
    void
    add(Args &&...args)
    {
        passes_.push_back(std::make_unique<PassT>(
            std::forward<Args>(args)...));
    }

    /** Verify the module after every pass (default on). */
    void enableVerifier(bool on) { verify_ = on; }

    /** Record per-pass wall-clock timings. */
    void enableTiming(bool on) { timing_ = on; }

    /** Invoke @p cb after every pass (e.g. to dump IR). */
    void setAfterPassCallback(Callback cb) { afterPass_ = std::move(cb); }

    /** Run all passes in order. Exceptions carry the failing pass name. */
    void run(Module &module);

    const std::vector<Timing> &timings() const { return timings_; }

    std::size_t size() const { return passes_.size(); }

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
    std::vector<Timing> timings_;
    Callback afterPass_;
    bool verify_ = true;
    bool timing_ = false;
};

} // namespace c4cam::ir

#endif // C4CAM_IR_PASS_H
