#include "ir/Attribute.h"

#include <sstream>

#include "support/Error.h"

namespace c4cam::ir {

bool
Attribute::asBool() const
{
    C4CAM_ASSERT(isBool(), "attribute is not a bool: " << str());
    return std::get<bool>(value_);
}

std::int64_t
Attribute::asInt() const
{
    C4CAM_ASSERT(isInt(), "attribute is not an int: " << str());
    return std::get<std::int64_t>(value_);
}

double
Attribute::asFloat() const
{
    if (isInt())
        return static_cast<double>(std::get<std::int64_t>(value_));
    C4CAM_ASSERT(isFloat(), "attribute is not a float: " << str());
    return std::get<double>(value_);
}

const std::string &
Attribute::asString() const
{
    C4CAM_ASSERT(isString(), "attribute is not a string: " << str());
    return std::get<std::string>(value_);
}

Type
Attribute::asType() const
{
    C4CAM_ASSERT(isType(), "attribute is not a type: " << str());
    return std::get<Type>(value_);
}

const std::vector<Attribute> &
Attribute::asArray() const
{
    C4CAM_ASSERT(isArray(), "attribute is not an array: " << str());
    return std::get<std::vector<Attribute>>(value_);
}

std::vector<std::int64_t>
Attribute::asIntArray() const
{
    std::vector<std::int64_t> out;
    for (const Attribute &a : asArray())
        out.push_back(a.asInt());
    return out;
}

bool
Attribute::operator==(const Attribute &other) const
{
    return value_ == other.value_;
}

std::string
Attribute::str() const
{
    std::ostringstream oss;
    if (isUnit()) {
        oss << "unit";
    } else if (isBool()) {
        oss << (asBool() ? "true" : "false");
    } else if (isInt()) {
        oss << asInt();
    } else if (isFloat()) {
        oss << std::get<double>(value_);
        // Ensure floats round-trip as floats, not ints.
        if (oss.str().find('.') == std::string::npos &&
            oss.str().find('e') == std::string::npos &&
            oss.str().find("inf") == std::string::npos &&
            oss.str().find("nan") == std::string::npos) {
            oss << ".0";
        }
    } else if (isString()) {
        oss << '"';
        for (char c : asString()) {
            if (c == '"' || c == '\\')
                oss << '\\';
            oss << c;
        }
        oss << '"';
    } else if (isType()) {
        oss << asType().str();
    } else if (isArray()) {
        oss << "[";
        const auto &elems = asArray();
        for (std::size_t i = 0; i < elems.size(); ++i) {
            if (i)
                oss << ", ";
            oss << elems[i].str();
        }
        oss << "]";
    }
    return oss.str();
}

} // namespace c4cam::ir
