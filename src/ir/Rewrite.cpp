#include "ir/Rewrite.h"

#include <algorithm>

#include "support/Error.h"

namespace c4cam::ir {

void
PatternRewriter::replaceOp(Operation *op,
                           const std::vector<Value *> &replacements)
{
    C4CAM_ASSERT(op->numResults() == replacements.size(),
                 "replaceOp: op '" << op->name() << "' has "
                 << op->numResults() << " results, got "
                 << replacements.size() << " replacements");
    for (std::size_t i = 0; i < replacements.size(); ++i)
        op->result(i)->replaceAllUsesWith(replacements[i]);
    eraseOp(op);
}

void
PatternRewriter::eraseOp(Operation *op)
{
    // Record every nested op as erased too: the driver's worklist may
    // still hold pointers into the op's regions.
    op->walk([this](Operation *nested) { erased_.insert(nested); });
    op->dropAllReferences();
    op->erase();
}

bool
applyPatternsGreedily(Operation *root, const RewritePatternSet &patterns,
                      int max_iterations)
{
    // Sort pattern pointers by decreasing benefit, stable for determinism.
    std::vector<const RewritePattern *> sorted;
    for (const auto &p : patterns.patterns())
        sorted.push_back(p.get());
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const RewritePattern *a, const RewritePattern *b) {
                         return a->benefit() > b->benefit();
                     });

    PatternRewriter rewriter(root->context());
    bool any_change = false;
    for (int iter = 0; iter < max_iterations; ++iter) {
        bool changed = false;
        rewriter.resetErased();

        // Snapshot the op list; rewrites may add/remove ops.
        std::vector<Operation *> worklist;
        root->walk([&](Operation *op) {
            if (op != root)
                worklist.push_back(op);
        });

        for (Operation *op : worklist) {
            if (rewriter.wasErased(op))
                continue;
            for (const RewritePattern *pattern : sorted) {
                if (!pattern->rootName().empty() &&
                    pattern->rootName() != op->name())
                    continue;
                rewriter.setInsertionPoint(op);
                if (pattern->matchAndRewrite(op, rewriter)) {
                    changed = true;
                    any_change = true;
                    break; // op may be gone; move to next worklist entry
                }
            }
            if (rewriter.wasErased(op))
                continue;
        }
        if (!changed)
            break;
    }
    return any_change;
}

} // namespace c4cam::ir
