#ifndef C4CAM_IR_PRINTER_H
#define C4CAM_IR_PRINTER_H

/**
 * @file
 * Textual rendering of IR in MLIR's generic-operation syntax.
 *
 * The printed form round-trips through the Parser:
 *   %1, %2 = "cam.read"(%0) {kind = "exact"} :
 *       (!cam.subarray_id) -> (memref<10x1xf32>, memref<10x1xf32>)
 */

#include <string>

namespace c4cam::ir {

class Operation;

/** Print @p op and all nested regions; values get stable %N names. */
std::string printOperation(Operation *op);

} // namespace c4cam::ir

#endif // C4CAM_IR_PRINTER_H
