#ifndef C4CAM_IR_IR_H
#define C4CAM_IR_IR_H

/**
 * @file
 * Core IR structures: Value, OpOperand, Operation, Block, Region, Module.
 *
 * The object graph mirrors MLIR's:
 *   Module -> Operation("builtin.module") -> Region -> Block -> Operation*
 * Operations own their result Values and their Regions; Blocks own their
 * argument Values and their Operations. SSA use-def chains are maintained
 * through OpOperand so replace-all-uses and safe erasure are O(uses).
 */

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/Attribute.h"
#include "ir/Context.h"
#include "ir/Type.h"

namespace c4cam::ir {

class Block;
class OpOperand;
class Operation;
class Region;

/**
 * An SSA value: either an operation result or a block argument.
 * Values are owned by their defining Operation or Block and have stable
 * addresses for their entire lifetime.
 */
class Value
{
  public:
    Type type() const { return type_; }

    /** Defining op; nullptr for block arguments. */
    Operation *definingOp() const { return defOp_; }

    /** Owning block for block arguments; nullptr for op results. */
    Block *owningBlock() const { return defBlock_; }

    bool isBlockArgument() const { return defBlock_ != nullptr; }

    /** Result index, or argument index for block arguments. */
    unsigned index() const { return index_; }

    /** All operand slots currently referencing this value. */
    const std::vector<OpOperand *> &uses() const { return uses_; }

    bool hasUses() const { return !uses_.empty(); }

    /** Redirect every use of this value to @p other. */
    void replaceAllUsesWith(Value *other);

  private:
    friend class Block;
    friend class OpOperand;
    friend class Operation;

    Value(Type type, Operation *def_op, Block *def_block, unsigned index)
        : type_(type), defOp_(def_op), defBlock_(def_block), index_(index)
    {}

    Type type_;
    Operation *defOp_;
    Block *defBlock_;
    unsigned index_;
    std::vector<OpOperand *> uses_;
};

/** One operand slot of an operation; keeps the use-def chain coherent. */
class OpOperand
{
  public:
    Operation *owner() const { return owner_; }
    Value *get() const { return value_; }

    /** Point this slot at @p value, updating both use lists. */
    void set(Value *value);

    ~OpOperand();

  private:
    friend class Operation;

    OpOperand(Operation *owner, Value *value) : owner_(owner)
    {
        set(value);
    }

    Operation *owner_;
    Value *value_ = nullptr;
};

/**
 * A generic operation: name + operands + results + attributes + regions.
 * All dialect ops are instances of this class distinguished by name,
 * exactly like MLIR's generic Operation.
 */
class Operation
{
  public:
    using AttrMap = std::map<std::string, Attribute>;

    /** Create a detached operation (not yet inserted in a block). */
    static std::unique_ptr<Operation>
    create(Context &ctx, const std::string &name,
           const std::vector<Value *> &operands,
           const std::vector<Type> &result_types, AttrMap attrs = {},
           int num_regions = 0);

    ~Operation();

    Operation(const Operation &) = delete;
    Operation &operator=(const Operation &) = delete;

    Context &context() const { return *ctx_; }
    const std::string &name() const { return name_; }

    /** Dialect prefix of the op name ("cam" for "cam.search"). */
    std::string dialect() const;

    /// @name Operands
    /// @{
    std::size_t numOperands() const { return operands_.size(); }
    Value *operand(std::size_t i) const;
    void setOperand(std::size_t i, Value *value);
    void appendOperand(Value *value);
    void eraseOperand(std::size_t i);
    std::vector<Value *> operandValues() const;
    /// @}

    /// @name Results
    /// @{
    std::size_t numResults() const { return results_.size(); }
    Value *result(std::size_t i = 0) const;
    /// @}

    /// @name Attributes
    /// @{
    bool hasAttr(const std::string &key) const { return attrs_.count(key); }
    /** @return the attribute or asserts when missing. */
    const Attribute &attr(const std::string &key) const;
    /** @return the attribute or nullptr when missing. */
    const Attribute *findAttr(const std::string &key) const;
    void setAttr(const std::string &key, Attribute value);
    void removeAttr(const std::string &key);
    const AttrMap &attrs() const { return attrs_; }

    std::int64_t intAttr(const std::string &key) const;
    std::int64_t intAttrOr(const std::string &key, std::int64_t dflt) const;
    std::string strAttr(const std::string &key) const;
    std::string strAttrOr(const std::string &key,
                          const std::string &dflt) const;
    bool boolAttrOr(const std::string &key, bool dflt) const;
    /// @}

    /// @name Regions
    /// @{
    std::size_t numRegions() const { return regions_.size(); }
    Region &region(std::size_t i = 0) const;
    Region &addRegion();
    /// @}

    /// @name Position in the IR
    /// @{
    Block *parentBlock() const { return parent_; }
    Operation *parentOp() const;

    /** Next/previous op in the parent block; nullptr at the ends. */
    Operation *nextOp() const;
    Operation *prevOp() const;

    /**
     * Unlink from the parent block and destroy. Results must be unused;
     * use dropAllReferences()/replaceAllUsesWith first when needed.
     */
    void erase();

    /** Clear all operand references (use lists are updated). */
    void dropAllReferences();

    /** Move this op so it appears just before @p other in other's block. */
    void moveBefore(Operation *other);
    /// @}

    /** Preorder walk over this op and every nested op. */
    void walk(const std::function<void(Operation *)> &fn);

    /** Postorder walk (nested ops first). */
    void walkPostOrder(const std::function<void(Operation *)> &fn);

    /** Render this operation (and nested regions) as text. */
    std::string str() const;

  private:
    friend class Block;

    Operation(Context &ctx, std::string name);

    Context *ctx_;
    std::string name_;
    std::vector<std::unique_ptr<OpOperand>> operands_;
    std::vector<std::unique_ptr<Value>> results_;
    AttrMap attrs_;
    std::vector<std::unique_ptr<Region>> regions_;

    Block *parent_ = nullptr;
    std::list<std::unique_ptr<Operation>>::iterator self_;
};

/**
 * A straight-line sequence of operations with typed block arguments.
 */
class Block
{
  public:
    using OpList = std::list<std::unique_ptr<Operation>>;

    Block() = default;
    ~Block();

    Block(const Block &) = delete;
    Block &operator=(const Block &) = delete;

    /// @name Arguments
    /// @{
    Value *addArgument(Type type);
    std::size_t numArguments() const { return args_.size(); }
    Value *argument(std::size_t i) const;
    /// @}

    /// @name Operations
    /// @{
    OpList &operations() { return ops_; }
    const OpList &operations() const { return ops_; }
    bool empty() const { return ops_.empty(); }
    std::size_t size() const { return ops_.size(); }
    Operation *front() const;
    Operation *back() const;

    /** Append @p op and take ownership. @return the raw pointer. */
    Operation *append(std::unique_ptr<Operation> op);

    /** Insert @p op before @p anchor (or append when anchor is null). */
    Operation *insertBefore(Operation *anchor, std::unique_ptr<Operation> op);

    /** Unlink @p op from this block without destroying it. */
    std::unique_ptr<Operation> take(Operation *op);

    /** Ops in insertion order as raw pointers (stable snapshot). */
    std::vector<Operation *> opVector() const;
    /// @}

    Region *parentRegion() const { return parent_; }
    Operation *parentOp() const;

  private:
    friend class Operation;
    friend class Region;

    std::vector<std::unique_ptr<Value>> args_;
    OpList ops_;
    Region *parent_ = nullptr;
};

/**
 * A list of blocks owned by an operation.
 */
class Region
{
  public:
    explicit Region(Operation *owner) : owner_(owner) {}

    Region(const Region &) = delete;
    Region &operator=(const Region &) = delete;

    Operation *parentOp() const { return owner_; }

    bool empty() const { return blocks_.empty(); }
    std::size_t numBlocks() const { return blocks_.size(); }

    /** First block, creating it when the region is empty. */
    Block &entryBlock();

    /** First block; asserts the region is non-empty. */
    Block &front() const;

    Block &block(std::size_t i) const;

    Block &addBlock();

    const std::vector<std::unique_ptr<Block>> &blocks() const
    {
        return blocks_;
    }

  private:
    Operation *owner_;
    std::vector<std::unique_ptr<Block>> blocks_;
};

/**
 * Convenience owner of a top-level "builtin.module" operation.
 */
class Module
{
  public:
    explicit Module(Context &ctx);

    /** Adopt an existing builtin.module op (e.g. from the parser). */
    Module(Context &ctx, std::unique_ptr<Operation> op);

    Module(Module &&) = default;
    Module &operator=(Module &&) = default;

    Context &context() const { return *ctx_; }

    /** The underlying builtin.module operation. */
    Operation *op() const { return op_.get(); }

    /** The single body block of the module. */
    Block *body() const;

    /** Find a func.func with the given sym_name; nullptr when absent. */
    Operation *lookupFunction(const std::string &name) const;

    /** All func.func ops in the module body. */
    std::vector<Operation *> functions() const;

    /** Preorder walk over every op in the module. */
    void walk(const std::function<void(Operation *)> &fn) const;

    /** Textual form of the whole module. */
    std::string str() const;

  private:
    Context *ctx_;
    std::unique_ptr<Operation> op_;
};

/** Name of the module op every Module wraps. */
inline constexpr const char *kModuleOpName = "builtin.module";
/** Name of the function op. */
inline constexpr const char *kFuncOpName = "func.func";
/** Name of the function terminator. */
inline constexpr const char *kReturnOpName = "func.return";

} // namespace c4cam::ir

#endif // C4CAM_IR_IR_H
