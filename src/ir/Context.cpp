#include "ir/Context.h"

#include <cctype>
#include <sstream>

#include "support/Error.h"
#include "support/StringUtils.h"

namespace c4cam::ir {

namespace {

/** Canonical interning key: the printed form is unique per type. */
std::string
typeKey(const detail::TypeStorage &s)
{
    std::ostringstream oss;
    oss << static_cast<int>(s.kind);
    for (std::int64_t d : s.shape)
        oss << ':' << d;
    oss << '|' << static_cast<const void *>(s.element);
    oss << '|' << s.dialect << '.' << s.name;
    return oss.str();
}

} // namespace

Context::Context()
{
    auto scalar = [&](TypeKind k) {
        detail::TypeStorage s;
        s.kind = k;
        return intern(std::move(s));
    };
    f32_ = scalar(TypeKind::F32);
    f64_ = scalar(TypeKind::F64);
    i1_ = scalar(TypeKind::I1);
    i32_ = scalar(TypeKind::I32);
    i64_ = scalar(TypeKind::I64);
    index_ = scalar(TypeKind::Index);
}

Context::~Context() = default;

Type
Context::intern(detail::TypeStorage storage)
{
    std::string key = typeKey(storage);
    auto it = typePool_.find(key);
    if (it == typePool_.end()) {
        auto owned = std::make_unique<detail::TypeStorage>(std::move(storage));
        it = typePool_.emplace(key, std::move(owned)).first;
    }
    return Type(it->second.get());
}

Type
Context::tensorType(const std::vector<std::int64_t> &shape, Type element)
{
    C4CAM_ASSERT(element.isScalar(),
                 "tensor element must be scalar, got " << element.str());
    for (std::int64_t d : shape)
        C4CAM_CHECK(d >= 0, "tensor dimension must be non-negative: " << d);
    detail::TypeStorage s;
    s.kind = TypeKind::Tensor;
    s.shape = shape;
    s.element = element.impl_;
    return intern(std::move(s));
}

Type
Context::memrefType(const std::vector<std::int64_t> &shape, Type element)
{
    C4CAM_ASSERT(element.isScalar(),
                 "memref element must be scalar, got " << element.str());
    detail::TypeStorage s;
    s.kind = TypeKind::MemRef;
    s.shape = shape;
    s.element = element.impl_;
    return intern(std::move(s));
}

Type
Context::opaqueType(const std::string &dialect, const std::string &name)
{
    detail::TypeStorage s;
    s.kind = TypeKind::Opaque;
    s.dialect = dialect;
    s.name = name;
    return intern(std::move(s));
}

Type
Context::parseType(const std::string &raw)
{
    return parseTypeImpl(raw, 0);
}

Type
Context::parseTypeImpl(const std::string &raw, int depth)
{
    // Shaped types nest ("tensor<4xtensor<...>>") and each level costs
    // one stack frame; cap the depth instead of risking overflow.
    constexpr int kMaxTypeNestingDepth = 256;
    C4CAM_CHECK(depth < kMaxTypeNestingDepth,
                "type nesting depth exceeds limit of "
                << kMaxTypeNestingDepth);
    std::string text = trimString(raw);
    if (text == "f32")
        return f32();
    if (text == "f64")
        return f64();
    if (text == "i1")
        return i1();
    if (text == "i32")
        return i32();
    if (text == "i64")
        return i64();
    if (text == "index")
        return indexType();
    if (startsWith(text, "!")) {
        auto parts = splitString(text.substr(1), '.');
        C4CAM_CHECK(parts.size() == 2 && !parts[0].empty() &&
                        !parts[1].empty(),
                    "malformed dialect type '" << text << "'");
        return opaqueType(parts[0], parts[1]);
    }
    bool tensor = startsWith(text, "tensor<");
    bool memref = startsWith(text, "memref<");
    if (tensor || memref) {
        C4CAM_CHECK(text.back() == '>', "malformed shaped type '" << text
                    << "'");
        std::string inner =
            text.substr(7, text.size() - 8); // strip prefix + '>'
        // Consume leading `<int>x` dimensions; the remainder is the element
        // type (which may itself contain 'x', e.g. "index").
        std::vector<std::int64_t> shape;
        std::size_t pos = 0;
        while (pos < inner.size() &&
               std::isdigit(static_cast<unsigned char>(inner[pos]))) {
            std::size_t end = pos;
            while (end < inner.size() &&
                   std::isdigit(static_cast<unsigned char>(inner[end])))
                ++end;
            if (end >= inner.size() || inner[end] != 'x')
                break; // digits not followed by 'x': part of element type
            shape.push_back(std::stoll(inner.substr(pos, end - pos)));
            pos = end + 1;
        }
        C4CAM_CHECK(pos < inner.size(), "missing element type in '" << text
                    << "'");
        Type element = parseTypeImpl(inner.substr(pos), depth + 1);
        return tensor ? tensorType(shape, element)
                      : memrefType(shape, element);
    }
    C4CAM_USER_ERROR("cannot parse type '" << text << "'");
}

void
Context::registerOp(OpInfo info)
{
    C4CAM_ASSERT(!info.name.empty(), "op name must not be empty");
    C4CAM_ASSERT(!ops_.count(info.name),
                 "duplicate op registration: " << info.name);
    std::string name = info.name;
    ops_.emplace(std::move(name), std::move(info));
}

const OpInfo *
Context::lookupOp(const std::string &name) const
{
    auto it = ops_.find(name);
    return it == ops_.end() ? nullptr : &it->second;
}

bool
Context::isDialectLoaded(const std::string &name) const
{
    return dialects_.count(name) > 0;
}

std::vector<std::string>
Context::registeredOps() const
{
    std::vector<std::string> names;
    names.reserve(ops_.size());
    for (const auto &[name, info] : ops_)
        names.push_back(name);
    return names;
}

} // namespace c4cam::ir
