#ifndef C4CAM_IR_TYPE_H
#define C4CAM_IR_TYPE_H

/**
 * @file
 * Value types for the C4CAM IR.
 *
 * Types are immutable and interned in the Context (as in MLIR): two types
 * with the same structure compare equal by pointer. A Type is a cheap
 * value-semantics handle onto the interned storage.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace c4cam::ir {

class Context;

/** Discriminator for the built-in type hierarchy. */
enum class TypeKind {
    F32,     ///< 32-bit float scalar
    F64,     ///< 64-bit float scalar
    I1,      ///< boolean
    I32,     ///< 32-bit signless integer
    I64,     ///< 64-bit signless integer
    Index,   ///< target-width index (loop counters, device handles)
    Tensor,  ///< immutable shaped value, e.g. tensor<10x8192xf32>
    MemRef,  ///< mutable buffer, e.g. memref<10x32xf32>
    Opaque,  ///< dialect type, e.g. !cam.bank_id
};

namespace detail {

/** Interned type payload; owned by the Context. */
struct TypeStorage
{
    TypeKind kind;
    std::vector<std::int64_t> shape;   ///< Tensor/MemRef only.
    const TypeStorage *element = nullptr;
    std::string dialect;               ///< Opaque only.
    std::string name;                  ///< Opaque only.
};

} // namespace detail

/**
 * Handle to an interned type. Default-constructed handles are null; all
 * other handles are created through the Context factory methods.
 */
class Type
{
  public:
    Type() = default;

    /** @return true when this handle refers to a type. */
    explicit operator bool() const { return impl_ != nullptr; }

    bool operator==(const Type &other) const { return impl_ == other.impl_; }
    bool operator!=(const Type &other) const { return impl_ != other.impl_; }

    TypeKind kind() const;

    bool isF32() const { return impl_ && kind() == TypeKind::F32; }
    bool isF64() const { return impl_ && kind() == TypeKind::F64; }
    bool isI1() const { return impl_ && kind() == TypeKind::I1; }
    bool isI32() const { return impl_ && kind() == TypeKind::I32; }
    bool isI64() const { return impl_ && kind() == TypeKind::I64; }
    bool isIndex() const { return impl_ && kind() == TypeKind::Index; }
    bool isTensor() const { return impl_ && kind() == TypeKind::Tensor; }
    bool isMemRef() const { return impl_ && kind() == TypeKind::MemRef; }
    bool isOpaque() const { return impl_ && kind() == TypeKind::Opaque; }
    bool isShaped() const { return isTensor() || isMemRef(); }
    bool isScalar() const { return impl_ && !isShaped() && !isOpaque(); }
    bool isInteger() const { return isI1() || isI32() || isI64(); }
    bool isFloat() const { return isF32() || isF64(); }

    /** Shape of a Tensor/MemRef type. Asserts on other kinds. */
    const std::vector<std::int64_t> &shape() const;

    /** Rank of a Tensor/MemRef type. */
    std::size_t rank() const { return shape().size(); }

    /** Total element count of a Tensor/MemRef type. */
    std::int64_t numElements() const;

    /** Element type of a Tensor/MemRef type. */
    Type elementType() const;

    /** Dialect prefix of an Opaque type ("cam" in !cam.bank_id). */
    const std::string &opaqueDialect() const;

    /** Name of an Opaque type ("bank_id" in !cam.bank_id). */
    const std::string &opaqueName() const;

    /** MLIR-style rendering, e.g. "tensor<10x8192xf32>". */
    std::string str() const;

    /** Stable identity of the interned storage (hashing/dedup). */
    const void *opaqueId() const { return impl_; }

  private:
    friend class Context;
    friend struct TypeHash;

    explicit Type(const detail::TypeStorage *impl) : impl_(impl) {}

    const detail::TypeStorage *impl_ = nullptr;
};

/** Hash functor so Type can key unordered containers. */
struct TypeHash
{
    std::size_t
    operator()(const Type &t) const
    {
        return std::hash<const void *>()(t.impl_);
    }
};

} // namespace c4cam::ir

#endif // C4CAM_IR_TYPE_H
