#include "ir/Parser.h"

#include <cctype>
#include <map>

#include "support/Error.h"

namespace c4cam::ir {

namespace {

/**
 * Character-level recursive-descent parser for the generic op syntax.
 * Types are scanned as raw character runs (they contain no spaces) and
 * delegated to Context::parseType.
 */
class IRParser
{
  public:
    IRParser(Context &ctx, const std::string &text)
        : ctx_(ctx), text_(text)
    {}

    /** Ops/regions (and attribute arrays) nested deeper than this are
     *  rejected instead of risking a stack overflow. */
    static constexpr int kMaxNestingDepth = 256;

    std::unique_ptr<Operation>
    parseTopLevel()
    {
        skipWs();
        auto op = parseOp(nullptr);
        skipWs();
        C4CAM_CHECK(pos_ >= text_.size(),
                    "line " << line_ << ": trailing input after top-level op");
        return op;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        C4CAM_USER_ERROR("IR parse error at line " << line_ << ": " << what);
    }

    bool
    atEnd() const
    {
        return pos_ >= text_.size();
    }

    char
    peek()
    {
        if (atEnd())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char
    next()
    {
        char c = peek();
        ++pos_;
        if (c == '\n')
            ++line_;
        return c;
    }

    void
    skipWs()
    {
        while (!atEnd()) {
            char c = text_[pos_];
            if (std::isspace(static_cast<unsigned char>(c))) {
                next();
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                while (!atEnd() && text_[pos_] != '\n')
                    next();
            } else {
                break;
            }
        }
    }

    bool
    tryConsume(char c)
    {
        skipWs();
        if (!atEnd() && text_[pos_] == c) {
            next();
            return true;
        }
        return false;
    }

    bool
    tryConsume(const std::string &tok)
    {
        skipWs();
        if (text_.compare(pos_, tok.size(), tok) == 0) {
            for (std::size_t i = 0; i < tok.size(); ++i)
                next();
            return true;
        }
        return false;
    }

    void
    expect(char c)
    {
        skipWs();
        if (atEnd() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        next();
    }

    std::string
    parseIdent()
    {
        skipWs();
        std::string out;
        while (!atEnd()) {
            char c = text_[pos_];
            if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                c == '.') {
                out += next();
            } else {
                break;
            }
        }
        if (out.empty())
            fail("expected identifier");
        return out;
    }

    std::string
    parseValueName()
    {
        expect('%');
        std::string out = "%";
        out += parseIdent();
        return out;
    }

    std::string
    parseQuotedString()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = next();
            if (c == '"')
                break;
            if (c == '\\')
                c = next();
            out += c;
        }
        return out;
    }

    /** Scan a type as a raw run of non-space chars (respecting <...>). */
    Type
    parseTypeToken()
    {
        skipWs();
        std::string raw;
        int angle = 0;
        while (!atEnd()) {
            char c = text_[pos_];
            if (c == '<')
                ++angle;
            if (c == '>')
                --angle;
            bool delim = (c == ',' || c == ')' || c == '(' || c == '{' ||
                          c == '}' || c == ']' ||
                          std::isspace(static_cast<unsigned char>(c)));
            if (angle <= 0 && delim && c != '>')
                break;
            raw += next();
            if (angle == 0 && c == '>')
                break;
        }
        if (raw.empty())
            fail("expected type");
        return ctx_.parseType(raw);
    }

    Value *
    lookupValue(const std::string &name)
    {
        auto it = values_.find(name);
        if (it == values_.end())
            fail("use of undefined value " + name);
        return it->second;
    }

    Attribute
    parseAttrValue()
    {
        skipWs();
        char c = peek();
        if (c == '"')
            return Attribute(parseQuotedString());
        if (c == '[') {
            if (depth_ >= kMaxNestingDepth)
                fail("attribute nesting depth exceeds limit of " +
                     std::to_string(kMaxNestingDepth));
            ++depth_;
            next();
            std::vector<Attribute> elems;
            skipWs();
            if (!tryConsume(']')) {
                while (true) {
                    elems.push_back(parseAttrValue());
                    skipWs();
                    if (tryConsume(']'))
                        break;
                    expect(',');
                }
            }
            --depth_;
            return Attribute(std::move(elems));
        }
        if (tryConsume("true"))
            return Attribute(true);
        if (tryConsume("false"))
            return Attribute(false);
        if (tryConsume("unit"))
            return Attribute();
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
            // Number: integer unless it contains '.', 'e', or 'E'.
            std::string raw;
            if (c == '-')
                raw += next();
            bool is_float = false;
            while (!atEnd()) {
                char d = text_[pos_];
                if (std::isdigit(static_cast<unsigned char>(d))) {
                    raw += next();
                } else if (d == '.' || d == 'e' || d == 'E' || d == '+' ||
                           (d == '-' && !raw.empty() &&
                            (raw.back() == 'e' || raw.back() == 'E'))) {
                    is_float = true;
                    raw += next();
                } else {
                    break;
                }
            }
            try {
                if (is_float)
                    return Attribute(std::stod(raw));
                return Attribute(static_cast<std::int64_t>(std::stoll(raw)));
            } catch (const std::exception &) {
                fail("bad number literal '" + raw + "'");
            }
        }
        // Fall back to a type attribute (f32, tensor<...>, !cam.bank_id).
        return Attribute(parseTypeToken());
    }

    Operation::AttrMap
    parseAttrDict()
    {
        Operation::AttrMap attrs;
        expect('{');
        skipWs();
        if (tryConsume('}'))
            return attrs;
        while (true) {
            std::string key = parseIdent();
            skipWs();
            if (tryConsume('=')) {
                attrs[key] = parseAttrValue();
            } else {
                attrs[key] = Attribute(); // unit attribute
            }
            skipWs();
            if (tryConsume('}'))
                break;
            expect(',');
        }
        return attrs;
    }

    /**
     * Parse one operation and append it to @p block (when non-null).
     */
    std::unique_ptr<Operation>
    parseOp(Block *block)
    {
        if (depth_ >= kMaxNestingDepth)
            fail("op nesting depth exceeds limit of " +
                 std::to_string(kMaxNestingDepth));
        ++depth_;
        auto op = parseOpImpl(block);
        --depth_;
        return op;
    }

    std::unique_ptr<Operation>
    parseOpImpl(Block *block)
    {
        skipWs();
        // Optional result list.
        std::vector<std::string> result_names;
        std::size_t save_pos = pos_;
        int save_line = line_;
        if (peek() == '%') {
            while (true) {
                result_names.push_back(parseValueName());
                skipWs();
                if (tryConsume(','))
                    continue;
                break;
            }
            skipWs();
            if (!tryConsume('=')) {
                // Not a result list after all; rewind (shouldn't happen in
                // well-formed generic IR).
                pos_ = save_pos;
                line_ = save_line;
                result_names.clear();
            }
        }

        std::string op_name = parseQuotedString();

        // Operand list.
        expect('(');
        std::vector<std::string> operand_names;
        skipWs();
        if (!tryConsume(')')) {
            while (true) {
                operand_names.push_back(parseValueName());
                skipWs();
                if (tryConsume(')'))
                    break;
                expect(',');
            }
        }

        // Optional region list: " ({...}, {...})".
        std::vector<std::size_t> region_marks;
        bool has_regions = false;
        skipWs();
        std::size_t paren_pos = pos_;
        int paren_line = line_;
        if (!atEnd() && peek() == '(') {
            next();
            skipWs();
            if (!atEnd() && peek() == '{') {
                has_regions = true;
            } else {
                pos_ = paren_pos;
                line_ = paren_line;
            }
        }

        // Build the op skeleton now (operands resolved, no results yet:
        // results need types that come later, so we stage everything).
        std::vector<Value *> operands;
        operands.reserve(operand_names.size());
        for (const auto &name : operand_names)
            operands.push_back(lookupValue(name));

        // We must create the op before parsing regions so nested blocks
        // can be attached; results are added after the type signature, so
        // instead we parse regions into a detached holder op later. To
        // keep it simple, stage region text parsing after reading types
        // is not possible (values inside regions may capture outer
        // values, which is fine, but region parsing must happen in the
        // current scope). So: create op with empty results, parse
        // regions, then recreate with results? Instead we parse regions
        // into the op created with placeholder results: we create the op
        // AFTER regions only if it has none. For ops with regions we
        // create first with zero results, then attach results in place.
        std::unique_ptr<Operation> op;
        if (has_regions) {
            op = Operation::create(ctx_, op_name, operands, {}, {}, 0);
            while (true) {
                Region &region = op->addRegion();
                parseRegion(region);
                skipWs();
                if (tryConsume(','))
                    continue;
                expect(')');
                break;
            }
        }

        // Optional attribute dict.
        Operation::AttrMap attrs;
        skipWs();
        if (!atEnd() && peek() == '{')
            attrs = parseAttrDict();

        // Type signature.
        expect(':');
        expect('(');
        std::vector<Type> operand_types;
        skipWs();
        if (!tryConsume(')')) {
            while (true) {
                operand_types.push_back(parseTypeToken());
                skipWs();
                if (tryConsume(')'))
                    break;
                expect(',');
            }
        }
        skipWs();
        if (!tryConsume("->"))
            fail("expected '->' in op type signature");
        std::vector<Type> result_types;
        skipWs();
        if (tryConsume('(')) {
            skipWs();
            if (!tryConsume(')')) {
                while (true) {
                    result_types.push_back(parseTypeToken());
                    skipWs();
                    if (tryConsume(')'))
                        break;
                    expect(',');
                }
            }
        } else {
            result_types.push_back(parseTypeToken());
        }

        C4CAM_CHECK(operand_types.size() == operands.size(),
                    "line " << line_ << ": op '" << op_name << "' lists "
                    << operands.size() << " operands but "
                    << operand_types.size() << " operand types");
        for (std::size_t i = 0; i < operands.size(); ++i) {
            C4CAM_CHECK(operands[i]->type() == operand_types[i],
                        "line " << line_ << ": operand #" << i << " of '"
                        << op_name << "' has type "
                        << operands[i]->type().str() << " but signature says "
                        << operand_types[i].str());
        }
        C4CAM_CHECK(result_names.size() == result_types.size(),
                    "line " << line_ << ": op '" << op_name << "' defines "
                    << result_names.size() << " results but signature lists "
                    << result_types.size());

        if (!op) {
            op = Operation::create(ctx_, op_name, operands, result_types,
                                   std::move(attrs), 0);
        } else {
            // Attach results/attrs to the already-created region op via a
            // fresh op that steals the regions (results are immutable
            // after creation by design).
            auto fresh = Operation::create(ctx_, op_name, operands,
                                           result_types, std::move(attrs), 0);
            stealRegions(*op, *fresh);
            op = std::move(fresh);
        }

        for (std::size_t i = 0; i < result_names.size(); ++i) {
            const std::string &name = result_names[i];
            C4CAM_CHECK(!values_.count(name),
                        "line " << line_ << ": redefinition of " << name);
            values_[name] = op->result(i);
        }

        if (block)
            return op; // caller appends
        return op;
    }

    /** Move all regions of @p from into @p to (same op name/arity). */
    static void
    stealRegions(Operation &from, Operation &to)
    {
        for (std::size_t r = 0; r < from.numRegions(); ++r) {
            Region &src = from.region(r);
            Region &dst = to.addRegion();
            while (src.numBlocks() > 0) {
                // Move blocks by splicing ops; block arguments are
                // re-created and uses rewired.
                Block &sb = src.block(0);
                Block &db = dst.addBlock();
                for (std::size_t a = 0; a < sb.numArguments(); ++a) {
                    Value *old_arg = sb.argument(a);
                    Value *new_arg = db.addArgument(old_arg->type());
                    old_arg->replaceAllUsesWith(new_arg);
                }
                while (!sb.empty())
                    db.append(sb.take(sb.front()));
                removeFirstBlock(src);
            }
        }
    }

    static void removeFirstBlock(Region &region);

    void
    parseRegion(Region &region)
    {
        expect('{');
        // One or more blocks; a block header is optional for a single
        // argument-less entry block. An empty region body denotes one
        // empty block (that is how the printer renders it).
        bool first_block = true;
        while (true) {
            skipWs();
            if (tryConsume('}')) {
                if (region.numBlocks() == 0)
                    region.addBlock();
                break;
            }
            Block *block = nullptr;
            if (peek() == '^') {
                next();
                parseIdent(); // block label (positional; name ignored)
                block = &region.addBlock();
                skipWs();
                if (tryConsume('(')) {
                    while (true) {
                        std::string arg_name = parseValueName();
                        expect(':');
                        Type type = parseTypeToken();
                        Value *arg = block->addArgument(type);
                        C4CAM_CHECK(!values_.count(arg_name),
                                    "line " << line_ << ": redefinition of "
                                    << arg_name);
                        values_[arg_name] = arg;
                        skipWs();
                        if (tryConsume(')'))
                            break;
                        expect(',');
                    }
                }
                expect(':');
            } else {
                C4CAM_CHECK(first_block,
                            "line " << line_
                            << ": expected block header '^bbN:'");
                block = &region.addBlock();
            }
            first_block = false;
            // Ops until '}' or next '^'.
            while (true) {
                skipWs();
                if (atEnd())
                    fail("unterminated region");
                char c = peek();
                if (c == '}') {
                    next();
                    return parseRegionTail(region);
                }
                if (c == '^')
                    break; // next block
                block->append(parseOp(block));
            }
        }
    }

    /** Hook for after-region cleanup; nothing to do currently. */
    void
    parseRegionTail(Region &)
    {}

    Context &ctx_;
    const std::string &text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int depth_ = 0;
    std::map<std::string, Value *> values_;
};

void
IRParser::removeFirstBlock(Region &region)
{
    // Blocks are owned by the region in declaration order; removing the
    // first one is only used by stealRegions where the block is empty.
    auto &blocks = const_cast<std::vector<std::unique_ptr<Block>> &>(
        region.blocks());
    C4CAM_ASSERT(!blocks.empty() && blocks.front()->empty(),
                 "removeFirstBlock on non-empty block");
    blocks.erase(blocks.begin());
}

} // namespace

std::unique_ptr<Operation>
parseOperation(Context &ctx, const std::string &text)
{
    return IRParser(ctx, text).parseTopLevel();
}

Module
parseModule(Context &ctx, const std::string &text)
{
    auto op = parseOperation(ctx, text);
    C4CAM_CHECK(op->name() == kModuleOpName,
                "top-level op must be builtin.module, got '" << op->name()
                << "'");
    return Module(ctx, std::move(op));
}

} // namespace c4cam::ir
