#include "ir/Printer.h"

#include <map>
#include <sstream>

#include "ir/IR.h"
#include "support/Error.h"

namespace c4cam::ir {

namespace {

/** Stateful printer: assigns %N names in definition order. */
class Printer
{
  public:
    std::string
    print(Operation *op)
    {
        printOp(op, 0);
        return oss_.str();
    }

  private:
    std::string
    nameOf(Value *v)
    {
        auto it = names_.find(v);
        if (it != names_.end())
            return it->second;
        std::string name = "%";
        name += std::to_string(nextId_++);
        names_.emplace(v, name);
        return name;
    }

    void
    indent(int depth)
    {
        for (int i = 0; i < depth; ++i)
            oss_ << "  ";
    }

    void
    printOp(Operation *op, int depth)
    {
        indent(depth);
        if (op->numResults() > 0) {
            for (std::size_t i = 0; i < op->numResults(); ++i) {
                if (i)
                    oss_ << ", ";
                oss_ << nameOf(op->result(i));
            }
            oss_ << " = ";
        }
        oss_ << '"' << op->name() << "\"(";
        for (std::size_t i = 0; i < op->numOperands(); ++i) {
            if (i)
                oss_ << ", ";
            Value *v = op->operand(i);
            oss_ << (v ? nameOf(v) : "<<null>>");
        }
        oss_ << ")";

        if (op->numRegions() > 0) {
            oss_ << " (";
            for (std::size_t r = 0; r < op->numRegions(); ++r) {
                if (r)
                    oss_ << ", ";
                printRegion(op->region(r), depth);
            }
            oss_ << ")";
        }

        if (!op->attrs().empty()) {
            oss_ << " {";
            bool first = true;
            for (const auto &[key, value] : op->attrs()) {
                if (!first)
                    oss_ << ", ";
                oss_ << key;
                if (!value.isUnit())
                    oss_ << " = " << value.str();
                first = false;
            }
            oss_ << "}";
        }

        oss_ << " : (";
        for (std::size_t i = 0; i < op->numOperands(); ++i) {
            if (i)
                oss_ << ", ";
            oss_ << op->operand(i)->type().str();
        }
        oss_ << ") -> ";
        if (op->numResults() == 1) {
            oss_ << op->result(0)->type().str();
        } else {
            oss_ << "(";
            for (std::size_t i = 0; i < op->numResults(); ++i) {
                if (i)
                    oss_ << ", ";
                oss_ << op->result(i)->type().str();
            }
            oss_ << ")";
        }
        oss_ << "\n";
    }

    void
    printRegion(Region &region, int depth)
    {
        oss_ << "{\n";
        for (std::size_t b = 0; b < region.numBlocks(); ++b) {
            Block &block = region.block(b);
            if (block.numArguments() > 0 || region.numBlocks() > 1) {
                indent(depth);
                oss_ << "^bb" << b;
                if (block.numArguments() > 0) {
                    oss_ << "(";
                    for (std::size_t i = 0; i < block.numArguments(); ++i) {
                        if (i)
                            oss_ << ", ";
                        Value *arg = block.argument(i);
                        oss_ << nameOf(arg) << ": " << arg->type().str();
                    }
                    oss_ << ")";
                }
                oss_ << ":\n";
            }
            for (Operation *op : block.opVector())
                printOp(op, depth + 1);
        }
        indent(depth);
        oss_ << "}";
    }

    std::ostringstream oss_;
    std::map<Value *, std::string> names_;
    int nextId_ = 0;
};

} // namespace

std::string
printOperation(Operation *op)
{
    C4CAM_ASSERT(op, "printOperation(null)");
    return Printer().print(op);
}

} // namespace c4cam::ir
