#ifndef C4CAM_IR_CONTEXT_H
#define C4CAM_IR_CONTEXT_H

/**
 * @file
 * The IR context: type interning, dialect and op registries.
 *
 * One Context outlives every IR object created with it (modules, types,
 * attributes). Dialects register their operations (OpInfo) on load; the
 * verifier consults the registry to validate modules.
 */

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/Type.h"

namespace c4cam::ir {

class Context;
class Operation;

/** Static description of an op kind, registered by its dialect. */
struct OpInfo
{
    std::string name;            ///< Fully qualified, e.g. "cam.search".
    int minOperands = 0;
    int maxOperands = -1;        ///< -1: unbounded.
    int numResults = -1;         ///< -1: variadic.
    int numRegions = 0;
    bool isTerminator = false;
    /** Extra structural checks; throws CompilerError on violation. */
    std::function<void(Operation *)> verify;
};

/** Base class for dialects (torch, cim, cam, scf, ...). */
class Dialect
{
  public:
    virtual ~Dialect() = default;

    /** Namespace prefix of the dialect's ops ("cam" in "cam.search"). */
    virtual std::string name() const = 0;

    /** Register the dialect's ops and types into @p ctx. */
    virtual void initialize(Context &ctx) = 0;
};

/**
 * Owner of interned types and the dialect/op registries.
 */
class Context
{
  public:
    Context();
    ~Context();

    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;

    /// @name Built-in type factories
    /// @{
    Type f32() { return f32_; }
    Type f64() { return f64_; }
    Type i1() { return i1_; }
    Type i32() { return i32_; }
    Type i64() { return i64_; }
    Type indexType() { return index_; }
    /// @}

    /** Interned tensor type with @p shape and @p element type. */
    Type tensorType(const std::vector<std::int64_t> &shape, Type element);

    /** Interned memref type with @p shape and @p element type. */
    Type memrefType(const std::vector<std::int64_t> &shape, Type element);

    /** Interned dialect type, printed as !dialect.name. */
    Type opaqueType(const std::string &dialect, const std::string &name);

    /** Parse a type from its textual form; raises CompilerError. */
    Type parseType(const std::string &text);

    /** Register one op kind. Re-registration with same name is an error. */
    void registerOp(OpInfo info);

    /** @return the registered info for @p name, or nullptr. */
    const OpInfo *lookupOp(const std::string &name) const;

    /** Load a dialect once; subsequent loads of the same name are no-ops. */
    template <typename DialectT>
    void
    loadDialect()
    {
        auto d = std::make_unique<DialectT>();
        if (dialects_.count(d->name()))
            return;
        Dialect *raw = d.get();
        dialects_.emplace(d->name(), std::move(d));
        raw->initialize(*this);
    }

    /** @return true when a dialect with @p name has been loaded. */
    bool isDialectLoaded(const std::string &name) const;

    /** Names of all registered ops (for tooling/tests). */
    std::vector<std::string> registeredOps() const;

  private:
    Type intern(detail::TypeStorage storage);
    Type parseTypeImpl(const std::string &text, int depth);

    std::unordered_map<std::string,
                       std::unique_ptr<detail::TypeStorage>>
        typePool_;
    std::unordered_map<std::string, OpInfo> ops_;
    std::map<std::string, std::unique_ptr<Dialect>> dialects_;

    Type f32_, f64_, i1_, i32_, i64_, index_;
};

} // namespace c4cam::ir

#endif // C4CAM_IR_CONTEXT_H
