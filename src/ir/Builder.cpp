#include "ir/Builder.h"

#include "support/Error.h"

namespace c4cam::ir {

Operation *
OpBuilder::create(const std::string &name,
                  const std::vector<Value *> &operands,
                  const std::vector<Type> &result_types,
                  Operation::AttrMap attrs, int num_regions)
{
    C4CAM_ASSERT(block_, "OpBuilder has no insertion block");
    auto op = Operation::create(*ctx_, name, operands, result_types,
                                std::move(attrs), num_regions);
    return block_->insertBefore(anchor_, std::move(op));
}

Value *
OpBuilder::constantIndex(std::int64_t value)
{
    Operation *op = create("arith.constant", {}, {ctx_->indexType()},
                           {{"value", Attribute(value)}});
    return op->result(0);
}

Value *
OpBuilder::constantInt(std::int64_t value)
{
    Operation *op = create("arith.constant", {}, {ctx_->i64()},
                           {{"value", Attribute(value)}});
    return op->result(0);
}

Value *
OpBuilder::constantFloat(double value)
{
    Operation *op = create("arith.constant", {}, {ctx_->f32()},
                           {{"value", Attribute(value)}});
    return op->result(0);
}

Value *
OpBuilder::constantBool(bool value)
{
    Operation *op = create("arith.constant", {}, {ctx_->i1()},
                           {{"value", Attribute(value)}});
    return op->result(0);
}

} // namespace c4cam::ir
