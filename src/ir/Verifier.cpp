#include "ir/Verifier.h"

#include "ir/IR.h"
#include "support/Error.h"

namespace c4cam::ir {

namespace {

void
verifySingleOp(Operation *op)
{
    Context &ctx = op->context();
    const OpInfo *info = ctx.lookupOp(op->name());
    C4CAM_CHECK(info, "unregistered operation '" << op->name()
                << "' (is its dialect loaded?)");

    int num_operands = static_cast<int>(op->numOperands());
    C4CAM_CHECK(num_operands >= info->minOperands,
                "op '" << op->name() << "' expects at least "
                << info->minOperands << " operands, got " << num_operands);
    if (info->maxOperands >= 0) {
        C4CAM_CHECK(num_operands <= info->maxOperands,
                    "op '" << op->name() << "' expects at most "
                    << info->maxOperands << " operands, got "
                    << num_operands);
    }
    if (info->numResults >= 0) {
        C4CAM_CHECK(static_cast<int>(op->numResults()) == info->numResults,
                    "op '" << op->name() << "' expects " << info->numResults
                    << " results, got " << op->numResults());
    }
    C4CAM_CHECK(static_cast<int>(op->numRegions()) == info->numRegions,
                "op '" << op->name() << "' expects " << info->numRegions
                << " regions, got " << op->numRegions());

    for (std::size_t i = 0; i < op->numOperands(); ++i)
        C4CAM_CHECK(op->operand(i) != nullptr,
                    "op '" << op->name() << "' has null operand #" << i);

    // Terminator placement: a terminator must be the last op of its block.
    if (info->isTerminator && op->parentBlock()) {
        C4CAM_CHECK(op->parentBlock()->back() == op,
                    "terminator '" << op->name()
                    << "' is not the last op of its block");
    }

    if (info->verify)
        info->verify(op);
}

} // namespace

void
verifyOp(Operation *op)
{
    op->walk([](Operation *nested) { verifySingleOp(nested); });
}

void
verifyModule(const Module &module)
{
    verifyOp(module.op());
}

} // namespace c4cam::ir
