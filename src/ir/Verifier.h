#ifndef C4CAM_IR_VERIFIER_H
#define C4CAM_IR_VERIFIER_H

/**
 * @file
 * Structural verification of modules against the op registry.
 */

#include <string>

namespace c4cam::ir {

class Module;
class Operation;

/**
 * Verify @p module: every op must be registered, respect its operand /
 * result / region arity, have non-null operands, and pass its dialect
 * verifier. Raises CompilerError describing the first violation.
 */
void verifyModule(const Module &module);

/** Verify a single op subtree (same checks as verifyModule). */
void verifyOp(Operation *op);

} // namespace c4cam::ir

#endif // C4CAM_IR_VERIFIER_H
