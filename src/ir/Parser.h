#ifndef C4CAM_IR_PARSER_H
#define C4CAM_IR_PARSER_H

/**
 * @file
 * Parser for the generic-operation syntax emitted by the Printer.
 *
 * Together with printOperation this gives lossless IR round-trips, which
 * the test suite uses as a property check on every pipeline stage.
 */

#include <memory>
#include <string>

#include "ir/IR.h"

namespace c4cam::ir {

/**
 * Parse a single top-level operation (typically "builtin.module").
 * Raises CompilerError with a line number on malformed input.
 */
std::unique_ptr<Operation> parseOperation(Context &ctx,
                                          const std::string &text);

/** Parse a whole module; the top op must be builtin.module. */
Module parseModule(Context &ctx, const std::string &text);

} // namespace c4cam::ir

#endif // C4CAM_IR_PARSER_H
