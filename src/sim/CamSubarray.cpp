#include "sim/CamSubarray.h"

#include <algorithm>
#include <cmath>

#include "support/Error.h"

namespace c4cam::sim {

CamSubarray::CamSubarray(int rows, int cols, arch::CamDeviceType type,
                         int bits_per_cell)
    : rows_(rows), cols_(cols), type_(type), bits_(bits_per_cell)
{
    C4CAM_CHECK(rows > 0 && cols > 0, "subarray dims must be positive");
    cells_.assign(rows_, std::vector<CamCell>(cols_));
}

float
CamSubarray::quantize(float v) const
{
    if (type_ == arch::CamDeviceType::Acam)
        return v; // analog cells store continuous levels
    int levels = 1 << bits_;
    float q = std::round(v);
    q = std::clamp(q, 0.0f, float(levels - 1));
    return q;
}

void
CamSubarray::write(const std::vector<std::vector<float>> &data,
                   int row_offset)
{
    C4CAM_CHECK(row_offset >= 0 &&
                    row_offset + static_cast<int>(data.size()) <= rows_,
                "write exceeds subarray rows: offset " << row_offset
                << " + " << data.size() << " > " << rows_);
    for (std::size_t r = 0; r < data.size(); ++r) {
        C4CAM_CHECK(static_cast<int>(data[r].size()) <= cols_,
                    "write exceeds subarray columns: " << data[r].size()
                    << " > " << cols_);
        for (std::size_t c = 0; c < data[r].size(); ++c) {
            CamCell &cell = cells_[row_offset + r][c];
            float v = data[r][c];
            if (std::isnan(v)) {
                cell = CamCell{}; // don't care
            } else {
                float q = quantize(v);
                cell.lo = q;
                cell.hi = q;
                cell.wildcard = false;
            }
        }
    }
    writtenRows_ = std::max(writtenRows_,
                            row_offset + static_cast<int>(data.size()));
}

void
CamSubarray::writeRanges(const std::vector<std::vector<CamCell>> &cells,
                         int row_offset)
{
    C4CAM_CHECK(type_ == arch::CamDeviceType::Acam,
                "range programming requires an ACAM device");
    C4CAM_CHECK(row_offset >= 0 &&
                    row_offset + static_cast<int>(cells.size()) <= rows_,
                "writeRanges exceeds subarray rows");
    for (std::size_t r = 0; r < cells.size(); ++r)
        for (std::size_t c = 0; c < cells[r].size() &&
                                static_cast<int>(c) < cols_; ++c)
            cells_[row_offset + r][c] = cells[r][c];
    writtenRows_ = std::max(writtenRows_,
                            row_offset + static_cast<int>(cells.size()));
}

SearchResult
CamSubarray::search(const std::vector<float> &query, arch::SearchKind kind,
                    bool euclidean, int row_begin, int row_end,
                    double threshold) const
{
    C4CAM_CHECK(row_begin >= 0 && row_end <= rows_ && row_begin <= row_end,
                "search row window [" << row_begin << ", " << row_end
                << ") outside subarray with " << rows_ << " rows");
    C4CAM_CHECK(static_cast<int>(query.size()) <= cols_,
                "query wider than subarray: " << query.size() << " > "
                << cols_);

    // The quantized query is broadcast to every row; hoist the
    // per-element rounding/clamping out of the row loop.
    std::vector<float> quantized(query.size());
    for (std::size_t c = 0; c < query.size(); ++c)
        quantized[c] = quantize(query[c]);

    SearchResult result;
    result.values.reserve(static_cast<std::size_t>(row_end - row_begin));
    result.indices.reserve(static_cast<std::size_t>(row_end - row_begin));
    double best = std::numeric_limits<double>::infinity();
    for (int r = row_begin; r < row_end; ++r) {
        double dist = 0.0;
        const std::vector<CamCell> &row = cells_[static_cast<std::size_t>(r)];
        for (std::size_t c = 0; c < query.size(); ++c) {
            const CamCell &cell = row[c];
            float q = quantized[c];
            if (euclidean) {
                double d = cell.distanceTo(q);
                dist += d * d;
            } else {
                dist += cell.matches(q) ? 0.0 : 1.0;
            }
        }
        result.values.push_back(static_cast<float>(dist));
        result.indices.push_back(r);
        best = std::min(best, dist);
    }

    for (std::size_t i = 0; i < result.values.size(); ++i) {
        double d = result.values[i];
        bool matched = false;
        switch (kind) {
          case arch::SearchKind::Exact:
            matched = d == 0.0;
            break;
          case arch::SearchKind::Range:
            matched = d <= threshold;
            break;
          case arch::SearchKind::Best:
            matched = d == best;
            break;
        }
        if (matched)
            result.matchedRows.push_back(result.indices[i]);
    }
    return result;
}

} // namespace c4cam::sim
