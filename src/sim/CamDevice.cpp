#include "sim/CamDevice.h"

#include "sim/FaultInjector.h"
#include "support/Error.h"

namespace c4cam::sim {

CamDevice::CamDevice(const arch::ArchSpec &spec)
    : spec_(spec), tech_(arch::TechModel::forSpec(spec))
{
    spec_.validate();
}

CamDevice::CamDevice(const CamDevice &other)
    : spec_(other.spec_), tech_(other.tech_), timing_(other.timing_),
      banks_(other.banks_), handles_(other.handles_),
      subarrayCount_(other.subarrayCount_),
      writtenSubarrays_(other.writtenSubarrays_), writes_(other.writes_),
      fusionModel_(other.fusionModel_)
{
    // Deep-copy the programmed cell contents; the clone must never
    // alias the original's subarrays.
    for (const auto &[handle, sub] : other.storage_)
        storage_.emplace(handle, std::make_unique<CamSubarray>(*sub));
    // window_ stays default-constructed: the replica starts with a
    // fresh query window on top of the copied setup accounting.
    timing_.beginQueryWindow();
    // Replicas share the original's injector but fault independently:
    // each registers its own creation-ordered device id, so a scripted
    // "kill device 2" hits exactly one replica of the fleet.
    if (other.faults_) {
        faults_ = other.faults_;
        faultDevice_ = faults_->registerDevice();
    }
}

std::unique_ptr<CamDevice>
CamDevice::cloneProgrammed() const
{
    C4CAM_CHECK(timing_.depth() == 0,
                "cloneProgrammed while " << timing_.depth()
                << " timing scopes are open (clone between queries, "
                "not mid-execution)");
    C4CAM_CHECK(!fusedActive_,
                "cloneProgrammed while a fused multi-query window is "
                "open (finish the fused batch first)");
    return std::unique_ptr<CamDevice>(new CamDevice(*this));
}

const char *
CamDevice::kindName(HandleKind kind)
{
    switch (kind) {
      case HandleKind::Bank:
        return "bank";
      case HandleKind::Mat:
        return "mat";
      case HandleKind::Array:
        return "array";
      case HandleKind::Subarray:
        return "subarray";
    }
    return "unknown";
}

Handle
CamDevice::newHandle(HandleInfo info)
{
    handles_.push_back(info);
    return static_cast<Handle>(handles_.size() - 1);
}

const CamDevice::HandleInfo &
CamDevice::info(Handle handle, HandleKind expected) const
{
    // Handles arrive from interpreted cam IR, so a malformed or stale
    // value is the *program's* fault: diagnose it instead of indexing
    // handles_ out of bounds (negative and too-large are both UB).
    C4CAM_CHECK(handle >= 0 &&
                    handle < static_cast<Handle>(handles_.size()),
                "invalid CAM " << kindName(expected) << " handle "
                << handle << " (only " << handles_.size()
                << " handles allocated on this device)");
    const HandleInfo &hi = handles_[static_cast<std::size_t>(handle)];
    C4CAM_CHECK(hi.kind == expected, "CAM handle " << handle
                << " refers to a " << kindName(hi.kind) << ", expected a "
                << kindName(expected));
    return hi;
}

Handle
CamDevice::allocBank(int rows, int cols)
{
    C4CAM_CHECK(rows == spec_.rows && cols == spec_.cols,
                "alloc_bank geometry " << rows << "x" << cols
                << " does not match the architecture spec " << spec_.rows
                << "x" << spec_.cols);
    if (spec_.numBanks > 0) {
        C4CAM_CHECK(static_cast<int>(banks_.size()) < spec_.numBanks,
                    "bank allocation exceeds the configured "
                    << spec_.numBanks << " banks");
    }
    Bank bank;
    bank.rows = rows;
    bank.cols = cols;
    banks_.push_back(std::move(bank));
    HandleInfo hi;
    hi.kind = HandleKind::Bank;
    hi.bank = banks_.size() - 1;
    return newHandle(hi);
}

Handle
CamDevice::allocMat(Handle bank_handle)
{
    const HandleInfo bh = info(bank_handle, HandleKind::Bank); // by value: newHandle() reallocates handles_
    Bank &bank = banks_[bh.bank];
    C4CAM_CHECK(static_cast<int>(bank.mats.size()) < spec_.matsPerBank,
                "mat allocation exceeds " << spec_.matsPerBank
                << " mats per bank");
    bank.mats.emplace_back();
    HandleInfo hi;
    hi.kind = HandleKind::Mat;
    hi.bank = bh.bank;
    hi.mat = bank.mats.size() - 1;
    return newHandle(hi);
}

Handle
CamDevice::allocArray(Handle mat_handle)
{
    const HandleInfo mh = info(mat_handle, HandleKind::Mat);
    Mat &mat = banks_[mh.bank].mats[mh.mat];
    C4CAM_CHECK(static_cast<int>(mat.arrays.size()) < spec_.arraysPerMat,
                "array allocation exceeds " << spec_.arraysPerMat
                << " arrays per mat");
    mat.arrays.emplace_back();
    HandleInfo hi;
    hi.kind = HandleKind::Array;
    hi.bank = mh.bank;
    hi.mat = mh.mat;
    hi.array = mat.arrays.size() - 1;
    return newHandle(hi);
}

Handle
CamDevice::allocSubarray(Handle array_handle)
{
    const HandleInfo ah = info(array_handle, HandleKind::Array);
    ArrayUnit &array = banks_[ah.bank].mats[ah.mat].arrays[ah.array];
    C4CAM_CHECK(static_cast<int>(array.subarrays.size()) <
                    spec_.subarraysPerArray,
                "subarray allocation exceeds " << spec_.subarraysPerArray
                << " subarrays per array");
    HandleInfo hi;
    hi.kind = HandleKind::Subarray;
    hi.bank = ah.bank;
    hi.mat = ah.mat;
    hi.array = ah.array;
    hi.sub = array.subarrays.size();
    Handle handle = newHandle(hi);
    array.subarrays.push_back(handle);
    storage_.emplace(handle, std::make_unique<CamSubarray>(
                                 banks_[ah.bank].rows, banks_[ah.bank].cols,
                                 spec_.camType, spec_.bitsPerCell));
    ++subarrayCount_;
    return handle;
}

Handle
CamDevice::subarrayAt(std::int64_t bank, std::int64_t mat,
                      std::int64_t array, std::int64_t sub) const
{
    C4CAM_CHECK(bank >= 0 && bank < static_cast<std::int64_t>(banks_.size()),
                "subarrayAt: bank " << bank << " not allocated");
    const Bank &b = banks_[static_cast<std::size_t>(bank)];
    C4CAM_CHECK(mat >= 0 && mat < static_cast<std::int64_t>(b.mats.size()),
                "subarrayAt: mat " << mat << " not allocated in bank "
                << bank);
    const Mat &m = b.mats[static_cast<std::size_t>(mat)];
    C4CAM_CHECK(array >= 0 &&
                    array < static_cast<std::int64_t>(m.arrays.size()),
                "subarrayAt: array " << array << " not allocated");
    const ArrayUnit &a = m.arrays[static_cast<std::size_t>(array)];
    C4CAM_CHECK(sub >= 0 &&
                    sub < static_cast<std::int64_t>(a.subarrays.size()),
                "subarrayAt: subarray " << sub << " not allocated");
    return a.subarrays[static_cast<std::size_t>(sub)];
}

CamSubarray &
CamDevice::subarray(Handle handle)
{
    info(handle, HandleKind::Subarray);
    auto it = storage_.find(handle);
    C4CAM_ASSERT(it != storage_.end(),
                 "subarray handle " << handle << " has no storage");
    return *it->second;
}

void
CamDevice::writeValue(Handle subarray_handle,
                      const std::vector<std::vector<float>> &data,
                      int row_offset)
{
    if (faults_)
        faults_->checkAlive(faultDevice_);
    CamSubarray &sub = subarray(subarray_handle);
    bool first_write = sub.writtenRows() == 0;
    sub.write(data, row_offset);
    if (first_write && sub.writtenRows() > 0)
        ++writtenSubarrays_;
    ++writes_;

    // Rows are programmed sequentially; energy scales with cells written.
    double rows = static_cast<double>(data.size());
    double cells = 0.0;
    for (const auto &row : data)
        cells += static_cast<double>(row.size());
    TimingEngine::Phase saved = timing_.phase();
    timing_.setPhase(TimingEngine::Phase::Setup);
    timing_.post(rows * tech_.writeLatencyNsPerRow() * spec_.bitsPerCell,
                 cells * tech_.writeEnergyPjPerCell() * spec_.bitsPerCell);
    timing_.setPhase(saved);
}

void
CamDevice::writeRanges(Handle subarray_handle,
                       const std::vector<std::vector<CamCell>> &cells,
                       int row_offset)
{
    if (faults_)
        faults_->checkAlive(faultDevice_);
    CamSubarray &sub = subarray(subarray_handle);
    bool first_write = sub.writtenRows() == 0;
    sub.writeRanges(cells, row_offset);
    if (first_write && sub.writtenRows() > 0)
        ++writtenSubarrays_;
    ++writes_;

    double rows = static_cast<double>(cells.size());
    double cell_count = 0.0;
    for (const auto &row : cells)
        cell_count += static_cast<double>(row.size());
    TimingEngine::Phase saved = timing_.phase();
    timing_.setPhase(TimingEngine::Phase::Setup);
    // Analog ranges need two program pulses per cell (lo and hi).
    timing_.post(rows * tech_.writeLatencyNsPerRow() * 2.0,
                 cell_count * tech_.writeEnergyPjPerCell() * 2.0);
    timing_.setPhase(saved);
}

void
CamDevice::search(Handle subarray_handle, const std::vector<float> &query,
                  arch::SearchKind kind, bool euclidean, int row_begin,
                  int row_end, double threshold, bool selective)
{
    // The fault hook fires before ANY window state mutates (result
    // latch, search counter, posted cost), so a query aborted by a
    // TransientFault leaves the device exactly as it was -- the
    // property that makes a retried query bit-identical to a
    // fault-free run.
    double fault_latency_factor = 1.0;
    if (faults_)
        fault_latency_factor = faults_->onSearch(faultDevice_);
    CamSubarray &sub = subarray(subarray_handle);
    if (row_begin < 0)
        row_begin = 0;
    if (row_end < 0)
        row_end = sub.rows();

    window_.lastResult[subarray_handle] =
        sub.search(query, kind, euclidean, row_begin, row_end, threshold);
    ++window_.searches;

    // Every ML precharges each cycle; selective search confines the
    // sensing stage (and read-out) to the row window. Under the
    // TrueFused model the precharge + data-line drive of a subarray
    // is paid by the first query of the fused pass only: queries 2..K
    // against the same programmed subarray re-use the driven lines and
    // post the sense/match share alone (1x drive, Kx sense; paper
    // §IV). The breakdown accumulators mirror exactly what is posted
    // so the window totals always equal their sum.
    int sensed_rows = selective ? row_end - row_begin : sub.rows();
    bool pay_drive = true;
    if (fusedActive_ && fusionModel_ == FusionModel::TrueFused)
        pay_drive = fusedDriven_.insert(subarray_handle).second;
    arch::SearchEnergyBreakdown split = tech_.searchEnergyBreakdown(
        sub.rows(), sensed_rows, sub.cols(), kind);
    double latency = (tech_.searchLatencyNs(sub.cols()) +
                      tech_.senseLatencyNs(kind)) *
                     fault_latency_factor;
    double energy = split.sensePj;
    if (pay_drive) {
        latency += tech_.queryDriveLatencyNs() * fault_latency_factor;
        energy = split.total();
        window_.cellEnergy += split.cellPj;
        window_.driveEnergy += split.driverPj;
    }
    window_.senseEnergy += split.sensePj;
    timing_.setPhase(TimingEngine::Phase::Query);
    timing_.post(latency, energy);
}

const SearchResult &
CamDevice::read(Handle subarray_handle) const
{
    // Validate handle range/kind first so a bank/mat handle (or a
    // bogus value) gets a handle diagnostic, not a misleading
    // "no search yet" message or a raw std::out_of_range.
    info(subarray_handle, HandleKind::Subarray);
    auto it = window_.lastResult.find(subarray_handle);
    C4CAM_CHECK(it != window_.lastResult.end(),
                "cam.read on subarray " << subarray_handle
                << " before any cam.search was issued on it");
    return it->second;
}

void
CamDevice::postMerge(int fanout)
{
    timing_.setPhase(TimingEngine::Phase::Query);
    window_.mergeEnergy += tech_.mergeEnergyPj(fanout);
    timing_.post(tech_.mergeLatencyNs(fanout), tech_.mergeEnergyPj(fanout));
}

void
CamDevice::postQueryTransfer(std::int64_t elements)
{
    // Host-side query staging: word-width limited transfer at ~1 GHz.
    double words = static_cast<double>(elements) * 32.0 / spec_.wordWidth;
    timing_.setPhase(TimingEngine::Phase::Query);
    timing_.post(0.001 * words, 0.0005 * words);
}

void
CamDevice::beginQueryWindow()
{
    // Inside a fused window, the previous query's finished window is
    // folded into the fused totals before being replaced.
    if (fusedActive_ && windowsSinceFused_ > 0)
        foldWindowIntoFused();
    timing_.beginQueryWindow();
    // Replace the whole per-window object. This also drops last-search
    // results: a read-before-search in the new window must be
    // diagnosed exactly like on a fresh device, not silently served
    // stale data from the previous query.
    window_ = WindowState{};
    if (fusedActive_)
        ++windowsSinceFused_;
}

void
CamDevice::foldWindowIntoFused()
{
    const Cost &query = timing_.queryCost();
    fused_.total.latencyNs += query.latencyNs;
    fused_.total.energyPj += query.energyPj;
    fused_.cellEnergyPj += window_.cellEnergy;
    fused_.senseEnergyPj += window_.senseEnergy;
    fused_.driveEnergyPj += window_.driveEnergy;
    fused_.mergeEnergyPj += window_.mergeEnergy;
    fused_.searches += window_.searches;
    ++fused_.queriesFolded;
}

void
CamDevice::beginFusedWindow(int k)
{
    C4CAM_CHECK(k >= 1, "fused window needs k >= 1 queries, got " << k);
    C4CAM_CHECK(!fusedActive_,
                "beginFusedWindow while another fused window is open "
                "(fused windows do not nest)");
    C4CAM_CHECK(timing_.depth() == 0,
                "beginFusedWindow while " << timing_.depth()
                << " timing scopes are open");
    fused_ = FusedWindow{};
    fused_.k = k;
    fusedActive_ = true;
    windowsSinceFused_ = 0;
    fusedDriven_.clear();
}

void
CamDevice::setFusionModel(FusionModel model)
{
    C4CAM_CHECK(!fusedActive_,
                "setFusionModel while a fused multi-query window is "
                "open (the model must not change mid-batch)");
    fusionModel_ = model;
}

void
CamDevice::attachFaultInjector(std::shared_ptr<FaultInjector> injector)
{
    faults_ = std::move(injector);
    faultDevice_ = faults_ ? faults_->registerDevice() : -1;
}

void
CamDevice::abortQueryWindow()
{
    timing_.abortOpenScopes();
    if (fusedActive_)
        abortFusedWindow();
    // Fresh window on top of the preserved setup accounting; the
    // timing engine's window was already reset by abortOpenScopes().
    window_ = WindowState{};
}

void
CamDevice::abortFusedWindow()
{
    fusedActive_ = false;
    windowsSinceFused_ = 0;
    fused_ = FusedWindow{};
    fusedDriven_.clear();
}

FusedWindow
CamDevice::endFusedWindow()
{
    C4CAM_CHECK(fusedActive_,
                "endFusedWindow without an open fused window");
    C4CAM_CHECK(timing_.depth() == 0,
                "endFusedWindow while " << timing_.depth()
                << " timing scopes are open");
    if (windowsSinceFused_ > 0)
        foldWindowIntoFused();
    C4CAM_CHECK(fused_.queriesFolded == fused_.k,
                "fused window declared " << fused_.k
                << " queries but served " << fused_.queriesFolded);
    fusedActive_ = false;
    windowsSinceFused_ = 0;
    fusedDriven_.clear();
    return fused_;
}

PerfReport
CamDevice::report() const
{
    PerfReport report;
    report.setupLatencyNs = timing_.setupCost().latencyNs;
    report.setupEnergyPj = timing_.setupCost().energyPj;
    report.queryLatencyNs = timing_.queryCost().latencyNs;
    report.queryEnergyPj = timing_.queryCost().energyPj;
    report.cellEnergyPj = window_.cellEnergy;
    report.senseEnergyPj = window_.senseEnergy;
    report.driveEnergyPj = window_.driveEnergy;
    report.mergeEnergyPj = window_.mergeEnergy;
    report.searches = window_.searches;
    report.writes = writes_;
    report.subarraysUsed = writtenSubarrays_;
    report.subarraysAllocated = subarrayCount_;
    report.banksUsed = static_cast<std::int64_t>(banks_.size());
    return report;
}

} // namespace c4cam::sim
