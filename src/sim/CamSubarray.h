#ifndef C4CAM_SIM_CAMSUBARRAY_H
#define C4CAM_SIM_CAMSUBARRAY_H

/**
 * @file
 * Functional model of one CAM subarray.
 *
 * Stores ternary / multi-bit / analog cells and evaluates exact, best
 * and range (threshold) matches under Hamming or Euclidean metrics
 * (paper §II-B). Selective row search [27] restricts the active row
 * window so multiple data batches can share one subarray.
 */

#include <cstdint>
#include <limits>
#include <vector>

#include "arch/ArchSpec.h"
#include "arch/TechModel.h"

namespace c4cam::sim {

/** One CAM cell: a [lo, hi] acceptance range or a wildcard. */
struct CamCell
{
    float lo = 0.0f;
    float hi = 0.0f;
    bool wildcard = true; ///< unwritten cells match everything

    /** @return true when @p q falls inside the acceptance range. */
    bool
    matches(float q) const
    {
        return wildcard || (q >= lo && q <= hi);
    }

    /** Distance contribution of this cell for @p q. */
    double
    distanceTo(float q) const
    {
        if (wildcard)
            return 0.0;
        // Distance to the stored level (midpoint for ACAM ranges).
        return 0.5 * (lo + hi) - q;
    }
};

/** Result of reading back one search: per-row values and row indices. */
struct SearchResult
{
    /** Distance (hamming/eucl) per considered row; matches have the
     *  semantics of the issued search kind. */
    std::vector<float> values;
    /** Global row index per entry of @p values. */
    std::vector<std::int32_t> indices;
    /** Rows flagged as matching (exact: dist == 0; range: dist <= thr;
     *  best: rows achieving the minimum distance). */
    std::vector<std::int32_t> matchedRows;
};

/**
 * Functional CAM subarray with R x C cells.
 */
class CamSubarray
{
  public:
    CamSubarray(int rows, int cols, arch::CamDeviceType type,
                int bits_per_cell);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    /**
     * Program @p data (row-major, data[r][c]) starting at @p row_offset.
     * Values are quantized to the cell's level count (2^bits levels for
     * TCAM/MCAM); NaN values encode don't-care (wildcard) cells.
     */
    void write(const std::vector<std::vector<float>> &data, int row_offset);

    /**
     * Program analog acceptance ranges (ACAM): lo/hi per cell.
     */
    void writeRanges(const std::vector<std::vector<CamCell>> &cells,
                     int row_offset);

    /**
     * Search @p query against rows [row_begin, row_end).
     * @param kind exact / best / range matching
     * @param metric hamming or euclidean distance
     * @param threshold range-match threshold (ignored otherwise)
     */
    SearchResult search(const std::vector<float> &query,
                        arch::SearchKind kind, bool euclidean,
                        int row_begin, int row_end,
                        double threshold = 0.0) const;

    /** Search the full row window. */
    SearchResult
    search(const std::vector<float> &query, arch::SearchKind kind,
           bool euclidean) const
    {
        return search(query, kind, euclidean, 0, rows_);
    }

    /** Number of rows that contain written (non-wildcard) data. */
    int writtenRows() const { return writtenRows_; }

    /** Quantize @p v to the representable cell levels. */
    float quantize(float v) const;

  private:
    int rows_;
    int cols_;
    arch::CamDeviceType type_;
    int bits_;
    int writtenRows_ = 0;
    std::vector<std::vector<CamCell>> cells_; ///< [row][col]
};

} // namespace c4cam::sim

#endif // C4CAM_SIM_CAMSUBARRAY_H
