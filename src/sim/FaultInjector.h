#ifndef C4CAM_SIM_FAULTINJECTOR_H
#define C4CAM_SIM_FAULTINJECTOR_H

/**
 * @file
 * Seeded, deterministic fault injection for CamDevice.
 *
 * A FaultInjector is attached to a device tree (the original and every
 * cloneProgrammed() replica share one injector; each device registers
 * for a creation-ordered id) and fires scripted faults from a
 * FaultSpec: transient search failures, permanent device death, and
 * latency-spike windows. Every decision is a pure function of
 * (spec.seed, device id, that device's search ordinal), so a chaos run
 * is replayable from the single seed -- the property the chaos
 * differential tests lock.
 *
 * Fault classes map onto the serving tier's recovery taxonomy:
 *  - TransientFault (CompilerError): one search fails; the device is
 *    healthy afterwards. core::RetryPolicy retries these with bounded
 *    backoff, and because the fault fires at search *entry* -- before
 *    any window accounting or result latches mutate -- a retried query
 *    is bit-identical to a fault-free run.
 *  - PermanentFault (ExecutionError): the device is dead; every
 *    subsequent operation fails. Never retried; core::ShardedEngine
 *    quarantines the shard instead.
 *  - Latency spikes perturb the simulated latency multiplicatively
 *    without failing anything (they model slow cells / retention
 *    drift); recovery is the per-query deadline path.
 */

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/Error.h"

namespace c4cam {
class JsonValue;
}

namespace c4cam::sim {

/**
 * One search on one device failed transiently. Retryable: the device
 * (and any replica) remains fully usable.
 */
class TransientFault : public CompilerError
{
  public:
    explicit TransientFault(const std::string &msg)
        : CompilerError(msg)
    {}
};

/**
 * The device is permanently dead: every operation after the fault
 * fires fails with this. Derives from ExecutionError so the serving
 * tier's retry policy refuses to retry it.
 */
class PermanentFault : public ExecutionError
{
  public:
    explicit PermanentFault(const std::string &msg)
        : ExecutionError(msg)
    {}
};

/** One scripted fault. Fields irrelevant to a kind are ignored. */
struct FaultRule
{
    enum class Kind {
        Transient,    ///< fail search #atSearch (or randomly at `rate`)
        Kill,         ///< device dies after search #afterSearch succeeds
        LatencySpike, ///< multiply latency by `factor` for `count` searches
    };

    Kind kind = Kind::Transient;

    /** Device id the rule targets; -1 = every registered device. */
    int device = -1;

    /**
     * 1-based search ordinal (per device) the rule fires at. For
     * Transient: that exact search throws. For LatencySpike: the spike
     * window starts there. 0 = not ordinal-triggered (rate-only).
     */
    std::int64_t atSearch = 0;

    /**
     * Kill rules: the device's first `afterSearch` searches succeed,
     * then every operation fails. 0 = dead from the first search.
     */
    std::int64_t afterSearch = 0;

    /** LatencySpike: number of consecutive searches affected. */
    std::int64_t count = 1;

    /** LatencySpike: multiplicative latency factor (>= 1 sensible). */
    double factor = 1.0;

    /**
     * Transient: additional per-search random failure probability in
     * [0,1], drawn from the injector's per-device deterministic RNG.
     */
    double rate = 0.0;
};

/** A complete scripted fault scenario, parseable from JSON. */
struct FaultSpec
{
    /** Seed for every per-device RNG stream (mixed with device id). */
    std::uint64_t seed = 0x5EED5EEDull;

    /**
     * Global transient-failure probability applied to every search on
     * every device (convenience for `--fault-rate`; equivalent to one
     * all-device Transient rule with this rate).
     */
    double transientRate = 0.0;

    std::vector<FaultRule> rules;

    bool
    empty() const
    {
        return transientRate <= 0.0 && rules.empty();
    }

    /**
     * Parse from the chaos-spec JSON object:
     * {
     *   "seed": 1234,
     *   "transient_rate": 0.001,
     *   "rules": [
     *     {"kind": "transient", "device": 0, "at_search": 3},
     *     {"kind": "kill", "device": 1, "after_search": 10},
     *     {"kind": "latency_spike", "device": -1, "at_search": 5,
     *      "count": 2, "factor": 8.0},
     *     {"kind": "transient", "rate": 0.01}
     *   ]
     * }
     * Throws CompilerError on unknown kinds or out-of-range values.
     */
    static FaultSpec fromJson(const JsonValue &json);

    /** Parse a spec file (support::parseJsonFile, // comments ok). */
    static FaultSpec fromFile(const std::string &path);
};

/** Counters for everything the injector has fired (observability). */
struct FaultInjectorStats
{
    std::int64_t transientsFired = 0;
    std::int64_t killsFired = 0;
    std::int64_t latencySpikes = 0;
    std::int64_t searchesObserved = 0;
};

/**
 * The runtime fault engine: devices call in at operation boundaries;
 * the injector either throws a typed fault or returns a latency
 * factor. Thread-safe: replicas on serving threads share one injector
 * (one mutex around the per-device counters and RNG streams -- chaos
 * tests measure recovery behaviour, not injector throughput).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultSpec spec);

    /**
     * Register one device; returns its creation-ordered id. The
     * original device registers at attach time; every
     * cloneProgrammed() replica registers itself in clone order, so
     * ids are deterministic for a fixed construction sequence
     * (ServingEngine replicas in slot order, ShardedEngine shards in
     * slice order).
     */
    int registerDevice();

    /**
     * Search-entry hook: called by CamDevice::search() before any
     * window state mutates. Advances the device's search ordinal,
     * throws TransientFault / PermanentFault per the spec, and returns
     * the multiplicative latency factor for this search (1.0 almost
     * always).
     */
    double onSearch(int device);

    /**
     * Liveness gate for non-search operations (writes, reads): throws
     * PermanentFault iff a Kill rule has already fired for @p device.
     */
    void checkAlive(int device) const;

    /** True once a Kill rule has fired for @p device. */
    bool isDead(int device) const;

    FaultInjectorStats stats() const;

    const FaultSpec &spec() const { return spec_; }

  private:
    struct DeviceState
    {
        std::int64_t searches = 0; ///< ordinal of the last search seen
        bool dead = false;
        std::uint64_t rng = 0;
    };

    /** xorshift64* step on the device's stream; uniform in [0,1). */
    double nextUniform(DeviceState &dev);

    FaultSpec spec_;
    mutable std::mutex mutex_;
    std::vector<DeviceState> devices_;
    FaultInjectorStats stats_;
};

} // namespace c4cam::sim

#endif // C4CAM_SIM_FAULTINJECTOR_H
