#include "sim/Timing.h"

#include <algorithm>
#include <sstream>

#include "support/Error.h"

namespace c4cam::sim {

void
TimingEngine::beginScope(bool parallel)
{
    Scope scope;
    scope.parallel = parallel;
    scope.phase = phase_;
    scopes_.push_back(scope);
}

void
TimingEngine::fold(Scope &parent, const Scope &child)
{
    if (parent.parallel) {
        parent.queryAcc.latencyNs =
            std::max(parent.queryAcc.latencyNs, child.queryAcc.latencyNs);
        parent.setupAcc.latencyNs =
            std::max(parent.setupAcc.latencyNs, child.setupAcc.latencyNs);
    } else {
        parent.queryAcc.latencyNs += child.queryAcc.latencyNs;
        parent.setupAcc.latencyNs += child.setupAcc.latencyNs;
    }
    parent.queryAcc.energyPj += child.queryAcc.energyPj;
    parent.setupAcc.energyPj += child.setupAcc.energyPj;
}

void
TimingEngine::endScope()
{
    C4CAM_ASSERT(!scopes_.empty(), "endScope with no open scope");
    Scope child = scopes_.back();
    scopes_.pop_back();
    if (scopes_.empty()) {
        queryTotal_.latencyNs += child.queryAcc.latencyNs;
        queryTotal_.energyPj += child.queryAcc.energyPj;
        setupTotal_.latencyNs += child.setupAcc.latencyNs;
        setupTotal_.energyPj += child.setupAcc.energyPj;
    } else {
        fold(scopes_.back(), child);
    }
}

void
TimingEngine::post(double latency_ns, double energy_pj)
{
    C4CAM_ASSERT(latency_ns >= 0.0 && energy_pj >= 0.0,
                 "negative cost posted");
    Cost *acc = nullptr;
    if (scopes_.empty()) {
        // Top-level leaf cost: accumulate sequentially into the totals.
        acc = phase_ == Phase::Query ? &queryTotal_ : &setupTotal_;
        acc->latencyNs += latency_ns;
        acc->energyPj += energy_pj;
        return;
    }
    Scope &scope = scopes_.back();
    acc = phase_ == Phase::Query ? &scope.queryAcc : &scope.setupAcc;
    if (scope.parallel) {
        // A leaf inside a parallel scope behaves like one child.
        acc->latencyNs = std::max(acc->latencyNs, latency_ns);
    } else {
        acc->latencyNs += latency_ns;
    }
    acc->energyPj += energy_pj;
}

void
TimingEngine::reset()
{
    scopes_.clear();
    queryTotal_ = Cost{};
    setupTotal_ = Cost{};
    phase_ = Phase::Query;
}

std::string
PerfReport::str() const
{
    std::ostringstream oss;
    oss << "query: " << queryLatencyNs << " ns, " << queryEnergyPj
        << " pJ, " << avgPowerMw() << " mW | setup: " << setupLatencyNs
        << " ns, " << setupEnergyPj << " pJ | searches: " << searches
        << ", writes: " << writes << ", subarrays: " << subarraysUsed << "/"
        << subarraysAllocated << ", banks: " << banksUsed;
    return oss.str();
}

} // namespace c4cam::sim
