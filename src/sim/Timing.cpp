#include "sim/Timing.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/Error.h"
#include "support/Json.h"
#include "support/Trace.h"

namespace c4cam::sim {

void
TimingEngine::beginScope(bool parallel)
{
    Scope scope;
    scope.parallel = parallel;
    scope.phase = phase_;
    scopes_.push_back(scope);
}

void
TimingEngine::fold(Scope &parent, const Scope &child)
{
    if (parent.parallel) {
        parent.queryAcc.latencyNs =
            std::max(parent.queryAcc.latencyNs, child.queryAcc.latencyNs);
        parent.setupAcc.latencyNs =
            std::max(parent.setupAcc.latencyNs, child.setupAcc.latencyNs);
    } else {
        parent.queryAcc.latencyNs += child.queryAcc.latencyNs;
        parent.setupAcc.latencyNs += child.setupAcc.latencyNs;
    }
    parent.queryAcc.energyPj += child.queryAcc.energyPj;
    parent.setupAcc.energyPj += child.setupAcc.energyPj;
}

void
TimingEngine::endScope()
{
    C4CAM_ASSERT(!scopes_.empty(), "endScope with no open scope");
    Scope child = scopes_.back();
    scopes_.pop_back();
    if (scopes_.empty()) {
        window_.total.latencyNs += child.queryAcc.latencyNs;
        window_.total.energyPj += child.queryAcc.energyPj;
        setupTotal_.latencyNs += child.setupAcc.latencyNs;
        setupTotal_.energyPj += child.setupAcc.energyPj;
    } else {
        fold(scopes_.back(), child);
    }
}

void
TimingEngine::post(double latency_ns, double energy_pj)
{
    C4CAM_ASSERT(latency_ns >= 0.0 && energy_pj >= 0.0,
                 "negative cost posted");
    Cost *acc = nullptr;
    if (scopes_.empty()) {
        // Top-level leaf cost: accumulate sequentially into the totals.
        acc = phase_ == Phase::Query ? &window_.total : &setupTotal_;
        acc->latencyNs += latency_ns;
        acc->energyPj += energy_pj;
        return;
    }
    Scope &scope = scopes_.back();
    acc = phase_ == Phase::Query ? &scope.queryAcc : &scope.setupAcc;
    if (scope.parallel) {
        // A leaf inside a parallel scope behaves like one child.
        acc->latencyNs = std::max(acc->latencyNs, latency_ns);
    } else {
        acc->latencyNs += latency_ns;
    }
    acc->energyPj += energy_pj;
}

void
TimingEngine::reset()
{
    scopes_.clear();
    window_ = QueryWindow{};
    setupTotal_ = Cost{};
    phase_ = Phase::Query;
}

void
TimingEngine::abortOpenScopes()
{
    scopes_.clear();
    window_ = QueryWindow{};
    phase_ = Phase::Query;
}

QueryWindow
TimingEngine::beginQueryWindow()
{
    C4CAM_ASSERT(scopes_.empty(),
                 "beginQueryWindow with " << scopes_.size()
                 << " scopes still open");
    QueryWindow finished = window_;
    window_ = QueryWindow{};
    return finished;
}

void
FusedWindow::addQueryReport(const PerfReport &query)
{
    total.latencyNs += query.queryLatencyNs;
    total.energyPj += query.queryEnergyPj;
    cellEnergyPj += query.cellEnergyPj;
    senseEnergyPj += query.senseEnergyPj;
    driveEnergyPj += query.driveEnergyPj;
    mergeEnergyPj += query.mergeEnergyPj;
    searches += query.searches;
    // A fused window covering any partial result is itself partial --
    // the same min-fold PerfReport::addQueryWindow applies.
    coverage = std::min(coverage, query.coverage);
    ++queriesFolded;
}

PerfReport
FusedWindow::toReport(const PerfReport &setup) const
{
    PerfReport report = setup;
    report.queryLatencyNs = total.latencyNs;
    report.queryEnergyPj = total.energyPj;
    report.cellEnergyPj = cellEnergyPj;
    report.senseEnergyPj = senseEnergyPj;
    report.driveEnergyPj = driveEnergyPj;
    report.mergeEnergyPj = mergeEnergyPj;
    report.searches = searches;
    // Report the queries actually folded, not the declared width: an
    // under-filled window (aborted mid-batch) claiming k queries would
    // silently deflate every per-query average.
    report.queriesServed = queriesFolded;
    report.fusedBatchK = queriesFolded;
    report.coverage = std::min(setup.coverage, coverage);
    return report;
}

void
PerfReport::addQueryWindow(const PerfReport &query)
{
    queryLatencyNs += query.queryLatencyNs;
    queryEnergyPj += query.queryEnergyPj;
    cellEnergyPj += query.cellEnergyPj;
    senseEnergyPj += query.senseEnergyPj;
    driveEnergyPj += query.driveEnergyPj;
    mergeEnergyPj += query.mergeEnergyPj;
    searches += query.searches;
    // An aggregate covering any partial result is itself partial; min
    // keeps the default 1.0 untouched on fault-free paths.
    coverage = std::min(coverage, query.coverage);
}

void
PerfReport::addFullRun(const PerfReport &run)
{
    addQueryWindow(run);
    setupLatencyNs += run.setupLatencyNs;
    setupEnergyPj += run.setupEnergyPj;
    writes += run.writes;
    // Resource high-water marks, not last-run snapshots: heterogeneous
    // runs folded into one aggregate must not let a small final run
    // misreport utilization().
    subarraysUsed = std::max(subarraysUsed, run.subarraysUsed);
    subarraysAllocated = std::max(subarraysAllocated,
                                  run.subarraysAllocated);
    banksUsed = std::max(banksUsed, run.banksUsed);
}

std::string
PerfReport::str() const
{
    std::ostringstream oss;
    oss << "query: " << queryLatencyNs << " ns, " << queryEnergyPj
        << " pJ, " << avgPowerMw() << " mW | setup: " << setupLatencyNs
        << " ns, " << setupEnergyPj << " pJ | searches: " << searches
        << ", writes: " << writes << ", subarrays: " << subarraysUsed << "/"
        << subarraysAllocated << ", banks: " << banksUsed;
    if (queriesServed > 1)
        oss << " | queries: " << queriesServed << ", avg "
            << avgQueryLatencyNs() << " ns/query, amortized "
            << amortizedLatencyNs() << " ns/query";
    return oss.str();
}

namespace {

/** JSON has no inf/nan; clamp non-finite figures to 0 for serializing. */
JsonValue
finiteNumber(double v)
{
    return JsonValue(std::isfinite(v) ? v : 0.0);
}

} // namespace

JsonValue
PerfReport::toJson() const
{
    JsonValue obj = JsonValue::makeObject();
    obj.set("setup_latency_ns", finiteNumber(setupLatencyNs));
    obj.set("setup_energy_pj", finiteNumber(setupEnergyPj));
    obj.set("query_latency_ns", finiteNumber(queryLatencyNs));
    obj.set("query_energy_pj", finiteNumber(queryEnergyPj));
    obj.set("cell_energy_pj", finiteNumber(cellEnergyPj));
    obj.set("sense_energy_pj", finiteNumber(senseEnergyPj));
    obj.set("drive_energy_pj", finiteNumber(driveEnergyPj));
    obj.set("merge_energy_pj", finiteNumber(mergeEnergyPj));
    obj.set("searches", JsonValue(double(searches)));
    obj.set("writes", JsonValue(double(writes)));
    obj.set("subarrays_used", JsonValue(double(subarraysUsed)));
    obj.set("subarrays_allocated", JsonValue(double(subarraysAllocated)));
    obj.set("banks_used", JsonValue(double(banksUsed)));
    obj.set("queries_served", JsonValue(double(queriesServed)));
    obj.set("fused_batch_k", JsonValue(double(fusedBatchK)));
    // Attribution shares only exist for fused reports; emitting the
    // undivided totals under a per-query name would mislead consumers
    // of the archived bench JSON.
    if (fusedBatchK > 0) {
        obj.set("fused_drive_energy_per_query_pj",
                finiteNumber(fusedDriveEnergyPerQueryPj()));
        obj.set("fused_setup_energy_per_query_pj",
                finiteNumber(fusedSetupEnergyPerQueryPj()));
    }
    // Coverage is only interesting when a degraded serve dropped
    // shards; omitting the default keeps non-degraded report JSON
    // byte-identical to earlier builds (the differential tests
    // compare serialized reports).
    if (coverage < 1.0)
        obj.set("coverage", finiteNumber(coverage));
    obj.set("avg_power_mw", finiteNumber(avgPowerMw()));
    obj.set("avg_query_latency_ns", finiteNumber(avgQueryLatencyNs()));
    obj.set("avg_query_energy_pj", finiteNumber(avgQueryEnergyPj()));
    obj.set("amortized_latency_ns", finiteNumber(amortizedLatencyNs()));
    obj.set("amortized_energy_pj", finiteNumber(amortizedEnergyPj()));
    obj.set("edp_njs", finiteNumber(edpNanoJouleSeconds()));
    obj.set("utilization", finiteNumber(utilization()));
    return obj;
}

PerfReport
aggregateShardReports(const std::vector<PerfReport> &shards)
{
    PerfReport out;
    if (shards.empty())
        return out;
    out.queriesServed = shards.front().queriesServed;
    out.fusedBatchK = shards.front().fusedBatchK;
    for (const PerfReport &shard : shards) {
        // Shards run concurrently: the query's simulated time is the
        // slowest shard's, exactly like TimingEngine's parallel-scope
        // fold (max over children).
        out.setupLatencyNs = std::max(out.setupLatencyNs,
                                      shard.setupLatencyNs);
        out.queryLatencyNs = std::max(out.queryLatencyNs,
                                      shard.queryLatencyNs);
        out.setupEnergyPj += shard.setupEnergyPj;
        out.queryEnergyPj += shard.queryEnergyPj;
        out.cellEnergyPj += shard.cellEnergyPj;
        out.senseEnergyPj += shard.senseEnergyPj;
        out.driveEnergyPj += shard.driveEnergyPj;
        out.mergeEnergyPj += shard.mergeEnergyPj;
        out.coverage = std::min(out.coverage, shard.coverage);
        out.searches += shard.searches;
        out.writes += shard.writes;
        out.subarraysUsed += shard.subarraysUsed;
        out.banksUsed += shard.banksUsed;
        out.subarraysAllocated += shard.subarraysAllocated;
    }
    return out;
}

void
attachWindowBreakdown(support::TraceEvent &span, const PerfReport &perf)
{
    span.hasSim = true;
    span.simQueryLatencyNs = perf.queryLatencyNs;
    span.simQueryEnergyPj = perf.queryEnergyPj;
    span.simCellEnergyPj = perf.cellEnergyPj;
    span.simSenseEnergyPj = perf.senseEnergyPj;
    span.simDriveEnergyPj = perf.driveEnergyPj;
    span.simMergeEnergyPj = perf.mergeEnergyPj;
    span.simSetupLatencyNs = perf.setupLatencyNs;
    span.simSetupEnergyPj = perf.setupEnergyPj;
    span.simSearches = perf.searches;
    if (perf.fusedBatchK > 0)
        span.fusedK = perf.fusedBatchK;
}

} // namespace c4cam::sim
