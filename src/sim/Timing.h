#ifndef C4CAM_SIM_TIMING_H
#define C4CAM_SIM_TIMING_H

/**
 * @file
 * Scope-based timing/energy accounting for the CAM simulator.
 *
 * Hierarchy levels contribute nested scopes. A parallel scope finishes in
 * the time of its slowest child (max); a sequential scope in the sum of
 * its children. Energy always sums. This reproduces the latency/power
 * behaviour of the paper's hierarchy (parallel vs sequential access
 * modes, selective-search cycles, power-capped subarray activation)
 * without event-driven simulation.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace c4cam {
class JsonValue;
}

namespace c4cam::sim {

/** Accumulated cost of one scope (latency in ns, energy in pJ). */
struct Cost
{
    double latencyNs = 0.0;
    double energyPj = 0.0;
};

/**
 * Stack of parallel/sequential scopes with two accounting phases:
 * Setup (one-time data writes) and Query (search traffic).
 */
class TimingEngine
{
  public:
    enum class Phase { Setup, Query };

    /** Switch accounting phases; affects subsequent post() calls. */
    void setPhase(Phase phase) { phase_ = phase; }
    Phase phase() const { return phase_; }

    /** Open a scope; children combine with max (parallel) or sum. */
    void beginScope(bool parallel);

    /** Close the innermost scope, folding its cost into the parent. */
    void endScope();

    /** Record a leaf cost in the current scope and phase. */
    void post(double latency_ns, double energy_pj);

    /** Depth of the scope stack (0 at top level). */
    std::size_t depth() const { return scopes_.size(); }

    /// @name Totals (valid when all scopes are closed)
    /// @{
    const Cost &queryCost() const { return queryTotal_; }
    const Cost &setupCost() const { return setupTotal_; }
    /// @}

    /** Reset all accumulated state. */
    void reset();

    /**
     * Clear the query-phase totals while keeping the setup totals.
     * Requires all scopes to be closed. A persistent execution session
     * calls this before re-entering the query body so each query's cost
     * is accumulated from zero -- bit-identical to a fresh single-shot
     * run -- instead of being recovered by subtracting snapshots.
     */
    void resetQueryTotals();

  private:
    struct Scope
    {
        bool parallel;
        Phase phase;
        // For parallel scopes latency is the running max of children;
        // for sequential scopes the running sum.
        Cost queryAcc;
        Cost setupAcc;
    };

    void fold(Scope &parent, const Scope &child);

    std::vector<Scope> scopes_;
    Cost queryTotal_;
    Cost setupTotal_;
    Phase phase_ = Phase::Query;
};

/**
 * End-to-end performance summary of one compiled kernel execution.
 */
struct PerfReport
{
    double setupLatencyNs = 0.0;
    double setupEnergyPj = 0.0;
    double queryLatencyNs = 0.0;
    double queryEnergyPj = 0.0;

    /// @name Query-energy breakdown (sums to queryEnergyPj)
    /// @{
    double cellEnergyPj = 0.0;   ///< ML precharge across cells
    double senseEnergyPj = 0.0;  ///< sense amplifiers
    double driveEnergyPj = 0.0;  ///< data-line drivers
    double mergeEnergyPj = 0.0;  ///< reduction trees / peripherals
    /// @}

    std::int64_t searches = 0;
    std::int64_t writes = 0;
    std::int64_t subarraysUsed = 0;
    std::int64_t banksUsed = 0;
    std::int64_t subarraysAllocated = 0;

    /**
     * Number of queries the query-phase figures cover. A single
     * CompiledKernel::run() serves one query batch; an execution
     * session accumulates one count per runQuery() call. 0 means
     * "setup only" (no query executed yet) and keeps every derived
     * per-query figure finite.
     */
    std::int64_t queriesServed = 0;

    /** Average query-phase power; pJ/ns is numerically mW. */
    double
    avgPowerMw() const
    {
        return queryLatencyNs > 0.0 ? queryEnergyPj / queryLatencyNs : 0.0;
    }

    /// @name Per-query aggregates (guarded against queriesServed == 0)
    /// @{
    /** Mean query latency over the served queries. */
    double
    avgQueryLatencyNs() const
    {
        return queriesServed > 0 ? queryLatencyNs / double(queriesServed)
                                 : 0.0;
    }

    /** Mean query energy over the served queries. */
    double
    avgQueryEnergyPj() const
    {
        return queriesServed > 0 ? queryEnergyPj / double(queriesServed)
                                 : 0.0;
    }

    /** Per-query latency with the one-time setup amortized in. */
    double
    amortizedLatencyNs() const
    {
        return queriesServed > 0
                   ? (setupLatencyNs + queryLatencyNs) /
                         double(queriesServed)
                   : 0.0;
    }

    /** Per-query energy with the one-time setup amortized in. */
    double
    amortizedEnergyPj() const
    {
        return queriesServed > 0
                   ? (setupEnergyPj + queryEnergyPj) /
                         double(queriesServed)
                   : 0.0;
    }
    /// @}

    /** Energy-delay product in nJ*s. */
    double
    edpNanoJouleSeconds() const
    {
        return (queryEnergyPj * 1e-3) * (queryLatencyNs * 1e-9);
    }

    /** Fraction of allocated subarrays that were actually written. */
    double
    utilization() const
    {
        return subarraysAllocated > 0
                   ? double(subarraysUsed) / double(subarraysAllocated)
                   : 0.0;
    }

    /** One-line human-readable summary. */
    std::string str() const;

    /**
     * Structured report for machine consumption. Every derived metric
     * is guarded so empty-query reports serialize as finite numbers
     * (never inf/nan, which are not valid JSON).
     */
    JsonValue toJson() const;
};

} // namespace c4cam::sim

#endif // C4CAM_SIM_TIMING_H
