#ifndef C4CAM_SIM_TIMING_H
#define C4CAM_SIM_TIMING_H

/**
 * @file
 * Scope-based timing/energy accounting for the CAM simulator.
 *
 * Hierarchy levels contribute nested scopes. A parallel scope finishes in
 * the time of its slowest child (max); a sequential scope in the sum of
 * its children. Energy always sums. This reproduces the latency/power
 * behaviour of the paper's hierarchy (parallel vs sequential access
 * modes, selective-search cycles, power-capped subarray activation)
 * without event-driven simulation.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace c4cam {
class JsonValue;
}
namespace c4cam::support {
struct TraceEvent;
}

namespace c4cam::sim {

/** Accumulated cost of one scope (latency in ns, energy in pJ). */
struct Cost
{
    double latencyNs = 0.0;
    double energyPj = 0.0;
};

/**
 * How a fused multi-query window charges the device (paper §IV).
 *
 * ExactSerial (the default): fusion only re-attributes cost. Every
 * query of the fused pass posts the full search cost, so the fused
 * totals equal the serial sum bit for bit and every per-query report
 * stays identical to serial serving -- the invariant the differential
 * tests lock.
 *
 * TrueFused: model what the hardware actually buys. The ML precharge
 * and data-line drive of a subarray are charged once per fused pass --
 * the first query to search a subarray pays the full cost, queries
 * 2..K against the same programmed subarray pay only the sense/merge
 * share (no drive latency, no cell/driver energy). Fused totals come
 * in strictly below the serial sum for K >= 2; outputs are unaffected
 * (the model changes cost posting, never match results), and the
 * per-query reports of queries 2..K are honestly cheaper than their
 * serial counterparts.
 */
enum class FusionModel
{
    ExactSerial,
    TrueFused,
};

/**
 * Query-phase accounting for one served query: everything that starts
 * from zero when a new query window opens. Setup accounting is
 * device-lifetime state and intentionally not part of this object --
 * replacing the window is what gives a persistent session per-query
 * figures that are bit-identical to a fresh single-shot run (no
 * subtraction of snapshots, no field-by-field resets to forget).
 */
struct QueryWindow
{
    Cost total;
};

/**
 * Accounting of one fused multi-query window: K query vectors driven
 * through one programmed device pass per search. The device folds
 * each of the K per-query windows into this object. What the totals
 * mean depends on the device's FusionModel: under ExactSerial they
 * are by construction exactly the sum of the serial windows (the
 * invariant the differential tests lock) and fusion only buys the
 * amortized attribution -- drive energy and one-time setup charged
 * once for the batch, 1/K shares per query; under TrueFused the
 * folded windows themselves are cheaper (drive charged once per
 * subarray per pass), so the totals come in strictly below the
 * serial sum.
 */
struct FusedWindow
{
    std::int64_t k = 0;             ///< declared batch width
    std::int64_t queriesFolded = 0; ///< query windows folded so far
    Cost total;                     ///< sum over the K query windows

    /// @name Query-energy breakdown summed over the batch
    /// @{
    double cellEnergyPj = 0.0;
    double senseEnergyPj = 0.0;
    double driveEnergyPj = 0.0;
    double mergeEnergyPj = 0.0;
    /// @}

    std::int64_t searches = 0;

    /** Min over the folded queries' coverage: a fused window covering
     *  any degraded (partial top-k) result is itself partial. */
    double coverage = 1.0;

    /// @name Amortized per-query attribution (guarded against k == 0)
    /// @{
    double
    latencyPerQueryNs() const
    {
        return k > 0 ? total.latencyNs / double(k) : 0.0;
    }
    double
    energyPerQueryPj() const
    {
        return k > 0 ? total.energyPj / double(k) : 0.0;
    }
    /** Drive energy attributed to one query of the fused pass. */
    double
    driveEnergyPerQueryPj() const
    {
        return k > 0 ? driveEnergyPj / double(k) : 0.0;
    }
    /// @}

    /**
     * Fold one served query's report into the fused totals (the
     * PerfReport-sourced counterpart of the device's window fold; the
     * host-only fallback uses it to synthesize fused accounting).
     * Does not advance queriesFolded bookkeeping by more than one.
     */
    void addQueryReport(const struct PerfReport &query);

    /**
     * Render as a PerfReport: query fields from the fused totals on
     * top of @p setup's one-time fields. queriesServed and fusedBatchK
     * report the queries actually folded (== k for a full window; an
     * under-filled or aborted window must never deflate per-query
     * averages by claiming the declared width), and coverage carries
     * the min-fold over the folded queries.
     */
    struct PerfReport toReport(const struct PerfReport &setup) const;
};

/**
 * Stack of parallel/sequential scopes with two accounting phases:
 * Setup (one-time data writes) and Query (search traffic).
 *
 * Not thread-safe: a TimingEngine belongs to exactly one CamDevice,
 * and a device serves one query at a time. Concurrency comes from
 * device replicas (CamDevice::cloneProgrammed), each with its own
 * engine.
 */
class TimingEngine
{
  public:
    enum class Phase { Setup, Query };

    /** Switch accounting phases; affects subsequent post() calls. */
    void setPhase(Phase phase) { phase_ = phase; }
    Phase phase() const { return phase_; }

    /** Open a scope; children combine with max (parallel) or sum. */
    void beginScope(bool parallel);

    /** Close the innermost scope, folding its cost into the parent. */
    void endScope();

    /** Record a leaf cost in the current scope and phase. */
    void post(double latency_ns, double energy_pj);

    /** Depth of the scope stack (0 at top level). */
    std::size_t depth() const { return scopes_.size(); }

    /// @name Totals (valid when all scopes are closed)
    /// @{
    const Cost &queryCost() const { return window_.total; }
    const Cost &setupCost() const { return setupTotal_; }

    /** The current query-window accounting object. */
    const QueryWindow &queryWindow() const { return window_; }
    /// @}

    /** Reset all accumulated state. */
    void reset();

    /**
     * Start a fresh query window: the current QueryWindow object is
     * replaced wholesale while the device-lifetime setup totals stay.
     * Requires all scopes to be closed. A persistent execution session
     * calls this before re-entering the query body so each query's cost
     * is accumulated from zero -- bit-identical to a fresh single-shot
     * run -- instead of being recovered by subtracting snapshots.
     * @return the finished window (the previous query's accounting).
     */
    QueryWindow beginQueryWindow();

    /**
     * Fault-recovery cleanup: discard every open scope (and the
     * partial query window accumulated so far) without touching the
     * device-lifetime setup totals. A fault thrown mid-execution
     * (sim::FaultInjector) unwinds past the runtime's beginScope/
     * endScope pairs and would otherwise leave the stack open, making
     * the next beginQueryWindow() assert. After this call the engine
     * is ready for a fresh query window, and setup accounting -- which
     * the replica paid once at programming time -- is preserved so a
     * retried query's report stays bit-identical to a fault-free run.
     */
    void abortOpenScopes();

    /** @deprecated Alias of beginQueryWindow() (pre-window API name). */
    void resetQueryTotals() { beginQueryWindow(); }

  private:
    struct Scope
    {
        bool parallel;
        Phase phase;
        // For parallel scopes latency is the running max of children;
        // for sequential scopes the running sum.
        Cost queryAcc;
        Cost setupAcc;
    };

    void fold(Scope &parent, const Scope &child);

    std::vector<Scope> scopes_;
    QueryWindow window_;
    Cost setupTotal_;
    Phase phase_ = Phase::Query;
};

/**
 * End-to-end performance summary of one compiled kernel execution.
 */
struct PerfReport
{
    double setupLatencyNs = 0.0;
    double setupEnergyPj = 0.0;
    double queryLatencyNs = 0.0;
    double queryEnergyPj = 0.0;

    /// @name Query-energy breakdown (sums to queryEnergyPj)
    /// @{
    double cellEnergyPj = 0.0;   ///< ML precharge across cells
    double senseEnergyPj = 0.0;  ///< sense amplifiers
    double driveEnergyPj = 0.0;  ///< data-line drivers
    double mergeEnergyPj = 0.0;  ///< reduction trees / peripherals
    /// @}

    std::int64_t searches = 0;
    std::int64_t writes = 0;
    std::int64_t subarraysUsed = 0;
    std::int64_t banksUsed = 0;
    std::int64_t subarraysAllocated = 0;

    /**
     * Number of queries the query-phase figures cover. A single
     * CompiledKernel::run() serves one query batch; an execution
     * session accumulates one count per runQuery() call. 0 means
     * "setup only" (no query executed yet) and keeps every derived
     * per-query figure finite.
     */
    std::int64_t queriesServed = 0;

    /**
     * Fraction of the stored rows this report's results actually
     * cover. 1.0 for every ordinary serve. A degraded sharded serve
     * (core::ShardedEngine with allowDegraded, some shards
     * quarantined) sets it to survivingRows/totalRows so a partial
     * top-k is never silently indistinguishable from a full one.
     * Serialized to JSON only when < 1.0, keeping non-degraded report
     * JSON byte-identical to pre-fault-tolerance builds.
     */
    double coverage = 1.0;

    /**
     * Fused-batch width: > 0 when the query-phase figures describe one
     * fused multi-query device pass of this many query vectors
     * (CamDevice::beginFusedWindow). The totals still equal the sum of
     * the per-query windows; the fused* accessors attribute the
     * amortizable components (drive energy, one-time setup) as 1/K
     * shares per query. 0 for ordinary per-query reports.
     */
    std::int64_t fusedBatchK = 0;

    /** Average query-phase power; pJ/ns is numerically mW. */
    double
    avgPowerMw() const
    {
        return queryLatencyNs > 0.0 ? queryEnergyPj / queryLatencyNs : 0.0;
    }

    /// @name Per-query aggregates (guarded against queriesServed == 0)
    /// @{
    /** Mean query latency over the served queries. */
    double
    avgQueryLatencyNs() const
    {
        return queriesServed > 0 ? queryLatencyNs / double(queriesServed)
                                 : 0.0;
    }

    /** Mean query energy over the served queries. */
    double
    avgQueryEnergyPj() const
    {
        return queriesServed > 0 ? queryEnergyPj / double(queriesServed)
                                 : 0.0;
    }

    /** Per-query latency with the one-time setup amortized in. */
    double
    amortizedLatencyNs() const
    {
        return queriesServed > 0
                   ? (setupLatencyNs + queryLatencyNs) /
                         double(queriesServed)
                   : 0.0;
    }

    /** Per-query energy with the one-time setup amortized in. */
    double
    amortizedEnergyPj() const
    {
        return queriesServed > 0
                   ? (setupEnergyPj + queryEnergyPj) /
                         double(queriesServed)
                   : 0.0;
    }
    /// @}

    /// @name Fused-batch attribution (zero unless fusedBatchK > 0 --
    /// a non-fused report has no fused share to attribute, and
    /// returning the undivided total here would mislabel it)
    /// @{
    /** Drive energy attributed to one query of a fused pass. */
    double
    fusedDriveEnergyPerQueryPj() const
    {
        return fusedBatchK > 0 ? driveEnergyPj / double(fusedBatchK)
                               : 0.0;
    }

    /** Setup energy attributed to one query of a fused pass. */
    double
    fusedSetupEnergyPerQueryPj() const
    {
        return fusedBatchK > 0 ? setupEnergyPj / double(fusedBatchK)
                               : 0.0;
    }
    /// @}

    /** Energy-delay product in nJ*s. */
    double
    edpNanoJouleSeconds() const
    {
        return (queryEnergyPj * 1e-3) * (queryLatencyNs * 1e-9);
    }

    /** Fraction of allocated subarrays that were actually written. */
    double
    utilization() const
    {
        return subarraysAllocated > 0
                   ? double(subarraysUsed) / double(subarraysAllocated)
                   : 0.0;
    }

    /// @name Aggregation (shared by sessions and the serving engine)
    /// @{
    /**
     * Fold one served query's report into this aggregate: query-phase
     * latency/energy, the energy breakdown and the search counter sum;
     * setup fields are left alone (setup is paid once per session).
     */
    void addQueryWindow(const PerfReport &query);

    /**
     * Fold a full single-shot run into this aggregate: like
     * addQueryWindow() but also re-pays the setup fields -- the
     * non-persistent fallback reprograms the device on every call and
     * the aggregate must reflect that.
     */
    void addFullRun(const PerfReport &run);
    /// @}

    /** One-line human-readable summary. */
    std::string str() const;

    /**
     * Structured report for machine consumption. Every derived metric
     * is guarded so empty-query reports serialize as finite numbers
     * (never inf/nan, which are not valid JSON).
     */
    JsonValue toJson() const;
};

/**
 * Deterministic aggregation of per-shard reports for one query served
 * scatter-gather across M programmed shards (core::ShardedEngine).
 *
 * Simulated time is parallel -- the query waits for the slowest
 * shard, so latency fields (setup and query) take the max. Energy,
 * the breakdown, and the resource/traffic counters are physical
 * totals and sum in fixed shard order (bit-reproducible: same shards,
 * same order, same doubles). queriesServed and fusedBatchK come from
 * the first report (identical across shards of one query by
 * construction). Empty input returns a zero report.
 *
 * Note this is deliberately NOT bit-identical to a single device of
 * the combined size: per-search cell energy scales with the
 * subarray's physical row count, so M quarter-size devices spend less
 * cell energy than one full-size device. Outputs are bit-identical
 * under sharding; energy honestly reflects the different hardware.
 */
PerfReport aggregateShardReports(const std::vector<PerfReport> &shards);

/**
 * Window <-> span linkage: copy @p perf's simulated per-window
 * breakdown (drive/sense/cell/merge energy, search/setup cost, the
 * fused width) onto @p span and mark it sim-carrying. The serving
 * layers call this on every execute span so one trace record holds
 * both the host wall-clock interval and the device's simulated cost
 * for the same query window.
 */
void attachWindowBreakdown(support::TraceEvent &span,
                           const PerfReport &perf);

} // namespace c4cam::sim

#endif // C4CAM_SIM_TIMING_H
