#include "sim/FaultInjector.h"

#include <cmath>

#include "support/Json.h"

namespace c4cam::sim {

namespace {

FaultRule::Kind
parseKind(const std::string &kind)
{
    if (kind == "transient")
        return FaultRule::Kind::Transient;
    if (kind == "kill")
        return FaultRule::Kind::Kill;
    if (kind == "latency_spike")
        return FaultRule::Kind::LatencySpike;
    C4CAM_USER_ERROR("fault spec: unknown rule kind '"
                     << kind
                     << "' (expected transient | kill | latency_spike)");
}

/** splitmix64: decorrelate the shared seed into per-device streams. */
std::uint64_t
mixSeed(std::uint64_t seed, int device)
{
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (std::uint64_t(device) + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z = z ^ (z >> 31);
    return z != 0 ? z : 0x5EED5EEDull; // xorshift state must be non-zero
}

} // namespace

FaultSpec
FaultSpec::fromJson(const JsonValue &json)
{
    C4CAM_CHECK(json.isObject(), "fault spec: top level must be an object");
    FaultSpec spec;
    spec.seed = std::uint64_t(json.getInt("seed", 0x5EED5EED));
    spec.transientRate = json.getNumber("transient_rate", 0.0);
    C4CAM_CHECK(spec.transientRate >= 0.0 && spec.transientRate <= 1.0,
                "fault spec: transient_rate must be in [0,1], got "
                    << spec.transientRate);
    if (const JsonValue *rules = json.find("rules")) {
        C4CAM_CHECK(rules->isArray(), "fault spec: rules must be an array");
        for (const JsonValue &entry : rules->asArray()) {
            C4CAM_CHECK(entry.isObject(),
                        "fault spec: each rule must be an object");
            FaultRule rule;
            rule.kind = parseKind(entry.getString("kind", "transient"));
            rule.device = int(entry.getInt("device", -1));
            rule.atSearch = entry.getInt("at_search", 0);
            rule.afterSearch = entry.getInt("after_search", 0);
            rule.count = entry.getInt("count", 1);
            rule.factor = entry.getNumber("factor", 1.0);
            rule.rate = entry.getNumber("rate", 0.0);
            C4CAM_CHECK(rule.rate >= 0.0 && rule.rate <= 1.0,
                        "fault spec: rule rate must be in [0,1], got "
                            << rule.rate);
            C4CAM_CHECK(rule.factor >= 0.0 && std::isfinite(rule.factor),
                        "fault spec: latency factor must be finite and "
                        "non-negative, got "
                            << rule.factor);
            C4CAM_CHECK(rule.atSearch >= 0 && rule.afterSearch >= 0 &&
                            rule.count >= 0,
                        "fault spec: search ordinals and counts must be "
                        "non-negative");
            spec.rules.push_back(rule);
        }
    }
    return spec;
}

FaultSpec
FaultSpec::fromFile(const std::string &path)
{
    return fromJson(parseJsonFile(path));
}

FaultInjector::FaultInjector(FaultSpec spec)
    : spec_(std::move(spec))
{}

int
FaultInjector::registerDevice()
{
    std::lock_guard<std::mutex> lock(mutex_);
    int id = int(devices_.size());
    DeviceState dev;
    dev.rng = mixSeed(spec_.seed, id);
    devices_.push_back(dev);
    return id;
}

double
FaultInjector::nextUniform(DeviceState &dev)
{
    // xorshift64*: fast, deterministic, good enough for fault draws.
    std::uint64_t x = dev.rng;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    dev.rng = x;
    return double((x * 0x2545F4914F6CDD1Dull) >> 11) * 0x1.0p-53;
}

double
FaultInjector::onSearch(int device)
{
    std::lock_guard<std::mutex> lock(mutex_);
    C4CAM_ASSERT(device >= 0 && device < int(devices_.size()),
                 "fault injector: unregistered device " << device);
    DeviceState &dev = devices_[device];
    ++stats_.searchesObserved;

    if (dev.dead)
        throw PermanentFault("device " + std::to_string(device) +
                             " is permanently dead (injected fault)");

    // The ordinal of *this* search, 1-based. Advancing before the
    // fault decision means a retried search gets a fresh ordinal --
    // the Nth-search rule fires exactly once, and rate draws advance.
    std::int64_t ordinal = ++dev.searches;

    double factor = 1.0;
    bool transient = false;
    for (const FaultRule &rule : spec_.rules) {
        if (rule.device != -1 && rule.device != device)
            continue;
        switch (rule.kind) {
        case FaultRule::Kind::Transient:
            if (rule.atSearch > 0 && rule.atSearch == ordinal)
                transient = true;
            if (rule.rate > 0.0 && nextUniform(dev) < rule.rate)
                transient = true;
            break;
        case FaultRule::Kind::Kill:
            if (ordinal > rule.afterSearch)
                dev.dead = true;
            break;
        case FaultRule::Kind::LatencySpike:
            if (rule.atSearch > 0 && ordinal >= rule.atSearch &&
                ordinal < rule.atSearch + rule.count)
                factor *= rule.factor;
            break;
        }
    }
    if (spec_.transientRate > 0.0 && nextUniform(dev) < spec_.transientRate)
        transient = true;

    if (dev.dead) {
        ++stats_.killsFired;
        throw PermanentFault("device " + std::to_string(device) +
                             " died at search " + std::to_string(ordinal) +
                             " (injected fault)");
    }
    if (transient) {
        ++stats_.transientsFired;
        throw TransientFault("transient fault on device " +
                             std::to_string(device) + " at search " +
                             std::to_string(ordinal));
    }
    if (factor != 1.0)
        ++stats_.latencySpikes;
    return factor;
}

void
FaultInjector::checkAlive(int device) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    C4CAM_ASSERT(device >= 0 && device < int(devices_.size()),
                 "fault injector: unregistered device " << device);
    if (devices_[device].dead)
        throw PermanentFault("device " + std::to_string(device) +
                             " is permanently dead (injected fault)");
}

bool
FaultInjector::isDead(int device) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return device >= 0 && device < int(devices_.size()) &&
           devices_[device].dead;
}

FaultInjectorStats
FaultInjector::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace c4cam::sim
