#ifndef C4CAM_SIM_CAMDEVICE_H
#define C4CAM_SIM_CAMDEVICE_H

/**
 * @file
 * Hierarchical CAM accelerator: banks -> mats -> arrays -> subarrays.
 *
 * This is the simulation backend the lowered cam dialect calls into
 * (paper §III-D2 "the cam operations are mapped to function calls of a
 * CAM simulator"). It combines the functional CamSubarray model with the
 * TechModel cost model and the scope-based TimingEngine.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "arch/ArchSpec.h"
#include "arch/TechModel.h"
#include "sim/CamSubarray.h"
#include "sim/Timing.h"

namespace c4cam::sim {

class FaultInjector;

/** Opaque handle to an allocated hierarchy unit. */
using Handle = std::int64_t;

/**
 * The CAM accelerator instance for one ArchSpec.
 *
 * Threading model: a CamDevice is single-threaded -- it serves one
 * query at a time and keeps per-query accounting in a QueryWindow
 * object. Concurrent serving uses one device *replica* per worker,
 * created with cloneProgrammed() so the one-time programming cost is
 * paid (and accounted) only once.
 */
class CamDevice
{
  public:
    explicit CamDevice(const arch::ArchSpec &spec);

    CamDevice(CamDevice &&) = default;
    CamDevice &operator=(CamDevice &&) = default;

    /**
     * Replicate this already-programmed device: the clone shares no
     * state with the original (cell contents are deep-copied) but
     * reports the identical setup cost, allocation counters and handle
     * numbering, and starts with a fresh query window. Cloning is pure
     * host work -- no simulated latency/energy is charged -- which is
     * what makes N-replica serving setups cheap: program once, clone
     * N-1 times, serve N queries concurrently.
     */
    std::unique_ptr<CamDevice> cloneProgrammed() const;

    const arch::ArchSpec &spec() const { return spec_; }
    const arch::TechModel &tech() const { return tech_; }

    /// @name Allocation (mirrors cam.alloc_*)
    /// @{
    /** Allocate a bank of subarrays with @p rows x @p cols geometry. */
    Handle allocBank(int rows, int cols);
    Handle allocMat(Handle bank);
    Handle allocArray(Handle mat);
    Handle allocSubarray(Handle array);
    /// @}

    /// @name Data path (mirrors cam.write_value / search / read)
    /// @{
    /**
     * Program @p data into @p subarray starting at @p row_offset.
     * Accounted as setup cost.
     */
    void writeValue(Handle subarray,
                    const std::vector<std::vector<float>> &data,
                    int row_offset = 0);

    /**
     * Program analog acceptance ranges (ACAM) into @p subarray.
     * Accounted as setup cost (two program pulses per cell: lo and
     * hi levels).
     */
    void writeRanges(Handle subarray,
                     const std::vector<std::vector<CamCell>> &cells,
                     int row_offset = 0);

    /**
     * Search @p query on @p subarray. Only rows in
     * [row_begin, row_end) are sensed/read out; negative bounds mean
     * the full subarray. With @p selective set (selective search [27])
     * the sense-amplifier energy is confined to the window; without it
     * the whole subarray senses. Accounted as query cost.
     */
    void search(Handle subarray, const std::vector<float> &query,
                arch::SearchKind kind, bool euclidean, int row_begin = -1,
                int row_end = -1, double threshold = 0.0,
                bool selective = false);

    /** Read back the results of the last search on @p subarray. */
    const SearchResult &read(Handle subarray) const;
    /// @}

    /// @name Timing scopes (driven by the loop structure)
    /// @{
    TimingEngine &timing() { return timing_; }

    /** Post the cost of merging partial results across @p fanout units. */
    void postMerge(int fanout);

    /** Post host<->device query transfer cost for @p elements values. */
    void postQueryTransfer(std::int64_t elements);
    /// @}

    /**
     * Start a fresh query accounting window: the per-window object
     * (query-phase latency/energy totals, query-energy breakdown,
     * search counter and last-search results) is replaced wholesale
     * while all setup costs, programmed data and allocation state
     * stay. A persistent execution session calls this before each
     * query so that report() describes exactly one query on top of the
     * shared setup -- matching a single-shot run bit-for-bit.
     */
    void beginQueryWindow();

    /// @name Fault injection (chaos testing)
    /// @{
    /**
     * Attach a shared fault injector: this device registers itself for
     * a creation-ordered id, and every later cloneProgrammed() replica
     * registers its own id on the same injector. From then on each
     * search consults the injector (which may throw TransientFault /
     * PermanentFault or scale the search's simulated latency), and
     * writes/reads fail once the device is scripted dead. Pass nullptr
     * to detach.
     */
    void attachFaultInjector(std::shared_ptr<FaultInjector> injector);

    const std::shared_ptr<FaultInjector> &faultInjector() const
    {
        return faults_;
    }

    /** This device's id on the attached injector; -1 when detached. */
    int faultDevice() const { return faultDevice_; }

    /**
     * Fault-recovery cleanup: unconditionally return the device to a
     * servable between-queries state after an exception unwound
     * mid-execution. Discards open timing scopes, any open fused
     * window, and the partial query window; keeps all programmed data
     * and setup accounting. The serving tier calls this on every
     * failure path before releasing a replica back to the pool, so a
     * retried query starts from the exact state a fault-free query
     * would see.
     */
    void abortQueryWindow();
    /// @}

    /// @name Fused multi-query windows
    /// @{
    /**
     * Select how fused windows charge the device (default
     * FusionModel::ExactSerial; see sim::FusionModel). Must be set
     * between queries, never while a fused window is open; clones
     * inherit the model. Under TrueFused the first search a fused pass
     * performs on each subarray posts the full cost and later searches
     * on the same subarray skip the drive latency and the cell/driver
     * energy -- the hardware's one-precharge-serves-K behaviour (paper
     * §IV). Outside fused windows the model is irrelevant: serial
     * queries always post full cost.
     */
    void setFusionModel(FusionModel model);
    FusionModel fusionModel() const { return fusionModel_; }

    /**
     * Open a fused accounting window for @p k queries: the caller
     * drives the K query vectors through the programmed device as one
     * pass -- each query still in its own query window -- and the
     * device folds every finished window into one FusedWindow. What
     * the window's totals mean depends on the FusionModel: under
     * ExactSerial (default) they are exactly the sum of K serial
     * windows and every per-query report stays bit-identical to serial
     * serving (fusion amortizes only the *attribution*: drive energy
     * and setup shares, see FusedWindow / PerfReport::fused*); under
     * TrueFused the drive/precharge of each subarray is charged once
     * per pass, so the totals come in strictly below the serial sum
     * while outputs stay bit-identical. Fused windows do not nest, and
     * the device cannot be cloned while one is open.
     */
    void beginFusedWindow(int k);

    /**
     * Close the fused window after exactly k queries were served and
     * return its accounting.
     */
    FusedWindow endFusedWindow();

    bool fusedWindowActive() const { return fusedActive_; }

    /**
     * Discard an open fused window without the served-count check
     * (error-path cleanup: a query failed mid-batch and the partial
     * fused accounting is meaningless). Per-query windows and all
     * setup state are unaffected.
     */
    void abortFusedWindow();
    /// @}

    /** Snapshot of all counters and accumulated costs. */
    PerfReport report() const;

    /// @name Introspection
    /// @{
    std::int64_t numBanks() const
    {
        return static_cast<std::int64_t>(banks_.size());
    }
    std::int64_t numAllocatedSubarrays() const { return subarrayCount_; }
    CamSubarray &subarray(Handle handle);

    /**
     * Handle of the subarray at hierarchy coordinates
     * (bank, mat, array, subarray); it must have been allocated.
     */
    Handle subarrayAt(std::int64_t bank, std::int64_t mat,
                      std::int64_t array, std::int64_t sub) const;
    /// @}

  private:
    struct ArrayUnit
    {
        std::vector<Handle> subarrays;
    };
    struct Mat
    {
        std::vector<ArrayUnit> arrays;
    };
    struct Bank
    {
        int rows;
        int cols;
        std::vector<Mat> mats;
    };

    enum class HandleKind { Bank, Mat, Array, Subarray };

    struct HandleInfo
    {
        HandleKind kind;
        std::size_t bank;
        std::size_t mat = 0;
        std::size_t array = 0;
        std::size_t sub = 0;
    };

    /**
     * Per-query-window device accounting: the query-energy breakdown,
     * the search counter and the last-search results. Replaced as one
     * object by beginQueryWindow() (the timing engine swaps its own
     * QueryWindow in lockstep), so "reset" bugs where one counter is
     * forgotten cannot happen.
     */
    struct WindowState
    {
        std::int64_t searches = 0;
        double cellEnergy = 0.0;
        double senseEnergy = 0.0;
        double driveEnergy = 0.0;
        double mergeEnergy = 0.0;
        /** Hash map: one insert per search is on the serving hot
         *  path, and nothing iterates this container in key order. */
        std::unordered_map<Handle, SearchResult> lastResult;
    };

    /** Deep copy for cloneProgrammed(). */
    CamDevice(const CamDevice &other);

    /** Fold the finished query window into the open fused window. */
    void foldWindowIntoFused();

    static const char *kindName(HandleKind kind);
    Handle newHandle(HandleInfo info);
    const HandleInfo &info(Handle handle, HandleKind expected) const;

    arch::ArchSpec spec_;
    arch::TechModel tech_;
    TimingEngine timing_;

    std::vector<Bank> banks_;
    std::vector<HandleInfo> handles_;
    std::map<Handle, std::unique_ptr<CamSubarray>> storage_;

    std::int64_t subarrayCount_ = 0;
    std::int64_t writtenSubarrays_ = 0;
    std::int64_t writes_ = 0;

    WindowState window_;

    /// @name Fault injection state
    /// @{
    std::shared_ptr<FaultInjector> faults_;
    int faultDevice_ = -1;
    /// @}

    /// @name Fused multi-query window state
    /// @{
    bool fusedActive_ = false;
    /** Query windows opened since the fused window began. */
    std::int64_t windowsSinceFused_ = 0;
    FusedWindow fused_;
    FusionModel fusionModel_ = FusionModel::ExactSerial;
    /** Subarrays already driven in the open fused pass (TrueFused:
     *  their precharge/drive is paid; later searches sense only). */
    std::unordered_set<Handle> fusedDriven_;
    /// @}
};

} // namespace c4cam::sim

#endif // C4CAM_SIM_CAMDEVICE_H
