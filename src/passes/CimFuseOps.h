#ifndef C4CAM_PASSES_CIMFUSEOPS_H
#define C4CAM_PASSES_CIMFUSEOPS_H

/**
 * @file
 * cim-fuse-ops (paper §III-D1, Fig. 5b).
 *
 * Fuses chains of per-op cim.execute blocks in a function into a single
 * execute block so the similarity analysis can see the whole kernel.
 * Values that only flow between fused bodies become internal; values
 * used outside remain yielded.
 */

#include "ir/Pass.h"

namespace c4cam::passes {

/** Fuses all cim.execute groups of each function into one. */
class CimFuseOpsPass : public ir::Pass
{
  public:
    std::string name() const override { return "cim-fuse-ops"; }
    void run(ir::Module &module) override;
};

} // namespace c4cam::passes

#endif // C4CAM_PASSES_CIMFUSEOPS_H
