#ifndef C4CAM_PASSES_CAMOPTIMIZATION_H
#define C4CAM_PASSES_CAMOPTIMIZATION_H

/**
 * @file
 * Post-mapping cam-level optimizations (paper §III-D2 "Built-in
 * optimizations").
 *
 * These passes retarget an already-mapped module without recompiling
 * from the frontend:
 *  - CamPowerOptPass: serialize the subarray-level loop so at most one
 *    subarray per array is active at a time (cam-power);
 *  - CamLatencyOptPass: parallelize every hierarchy loop (cam-base /
 *    latency-optimal).
 */

#include "ir/Pass.h"

namespace c4cam::passes {

/** Converts subarray-level scf.parallel loops into sequential scf.for. */
class CamPowerOptPass : public ir::Pass
{
  public:
    std::string name() const override { return "cam-power-opt"; }
    void run(ir::Module &module) override;

    /** Loops converted in the last run. */
    int converted() const { return converted_; }

  private:
    int converted_ = 0;
};

/** Converts hierarchy-level scf.for loops back into scf.parallel. */
class CamLatencyOptPass : public ir::Pass
{
  public:
    std::string name() const override { return "cam-latency-opt"; }
    void run(ir::Module &module) override;

    int converted() const { return converted_; }

  private:
    int converted_ = 0;
};

} // namespace c4cam::passes

#endif // C4CAM_PASSES_CAMOPTIMIZATION_H
