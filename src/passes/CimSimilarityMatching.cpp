#include "passes/CimSimilarityMatching.h"

#include <vector>

#include "dialects/cim/CimDialect.h"
#include "ir/Builder.h"
#include "support/Error.h"

namespace c4cam::passes {

using namespace ir;
namespace cimd = c4cam::dialects::cim;

namespace {

/** Non-yield body ops of an execute block, in order. */
std::vector<Operation *>
bodyOps(Operation *execute)
{
    std::vector<Operation *> ops;
    for (Operation *op : cimd::executeBody(execute)->opVector())
        if (op->name() != cimd::kYield)
            ops.push_back(op);
    return ops;
}

/** DotProdSimPattern: transpose(stored)->v1, matmul(query, v1)->v2,
 *  topk(v2). */
bool
matchDotProduct(const std::vector<Operation *> &ops, Value *&stored,
                Value *&query, Operation *&topk)
{
    if (ops.size() != 3 || ops[0]->name() != cimd::kTranspose ||
        ops[1]->name() != cimd::kMatmul || ops[2]->name() != cimd::kTopk)
        return false;
    if (ops[1]->operand(1) != ops[0]->result(0))
        return false;
    if (ops[2]->operand(0) != ops[1]->result(0))
        return false;
    stored = ops[0]->operand(0);
    query = ops[1]->operand(0);
    topk = ops[2];
    return true;
}

/** EuclNormPattern: sub(query, stored)->v1, norm(v1)->v2, topk(v2). */
bool
matchEuclNorm(const std::vector<Operation *> &ops, Value *&stored,
              Value *&query, Operation *&topk)
{
    if (ops.size() != 3 || ops[0]->name() != cimd::kSub ||
        ops[1]->name() != cimd::kNorm || ops[2]->name() != cimd::kTopk)
        return false;
    if (ops[1]->operand(0) != ops[0]->result(0))
        return false;
    if (ops[2]->operand(0) != ops[1]->result(0))
        return false;
    query = ops[0]->operand(0);
    stored = ops[0]->operand(1);
    topk = ops[2];
    return true;
}

/** CosSimPattern: norm(query)->v1, norm(stored)->v2,
 *  transpose(stored)->v3, matmul(query, v3)->v4, div(v4, v1, v2). */
bool
matchCosine(const std::vector<Operation *> &ops, Value *&stored,
            Value *&query, Operation *&div)
{
    if (ops.size() != 5 || ops[0]->name() != cimd::kNorm ||
        ops[1]->name() != cimd::kNorm ||
        ops[2]->name() != cimd::kTranspose ||
        ops[3]->name() != cimd::kMatmul || ops[4]->name() != cimd::kDiv)
        return false;
    if (ops[4]->numOperands() != 3)
        return false;
    if (ops[3]->operand(1) != ops[2]->result(0))
        return false;
    if (ops[4]->operand(0) != ops[3]->result(0))
        return false;
    // div(m, |q|, |s|): norms must match the matmul operands.
    if (ops[4]->operand(1) != ops[0]->result(0) ||
        ops[4]->operand(2) != ops[1]->result(0))
        return false;
    if (ops[0]->operand(0) != ops[3]->operand(0) ||
        ops[1]->operand(0) != ops[2]->operand(0))
        return false;
    query = ops[3]->operand(0);
    stored = ops[2]->operand(0);
    div = ops[4];
    return true;
}

/** Rewrite one matching execute body to cim.similarity. */
bool
rewriteExecute(Context &ctx, Operation *execute)
{
    std::vector<Operation *> ops = bodyOps(execute);
    Value *stored = nullptr;
    Value *query = nullptr;
    Operation *tail = nullptr;
    std::string metric;

    if (matchDotProduct(ops, stored, query, tail)) {
        metric = cimd::kMetricDot;
    } else if (matchEuclNorm(ops, stored, query, tail)) {
        metric = cimd::kMetricEucl;
    } else if (matchCosine(ops, stored, query, tail)) {
        metric = cimd::kMetricCos;
    } else {
        return false;
    }

    Block *body = cimd::executeBody(execute);
    Operation *yield = body->back();
    bool has_topk = tail->name() == cimd::kTopk;

    Operation::AttrMap attrs;
    attrs["metric"] = Attribute(metric);
    if (has_topk) {
        attrs["k"] = Attribute(tail->intAttrOr("k", 1));
        attrs["largest"] = Attribute(
            tail->boolAttrOr("largest", metric != cimd::kMetricEucl));
    } else {
        // Cosine without top-k: produce the full score matrix.
        attrs["partial"] = Attribute();
    }

    std::vector<Type> result_types;
    for (std::size_t i = 0; i < tail->numResults(); ++i)
        result_types.push_back(tail->result(i)->type());
    if (result_types.size() == 1) {
        // cim.similarity always has (values, indices) results; indices
        // mirror the values shape for the partial form.
        result_types.push_back(result_types[0]);
    }

    OpBuilder builder(ctx);
    builder.setInsertionPoint(ops.front());
    Operation *similarity = builder.create(
        cimd::kSimilarity, {stored, query}, result_types, attrs);

    // Redirect the yield (and anything else) off the old tail results.
    for (std::size_t i = 0; i < tail->numResults(); ++i)
        tail->result(i)->replaceAllUsesWith(similarity->result(i));

    // Erase the matched ops back-to-front (uses before defs).
    (void)yield;
    for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
        (*it)->dropAllReferences();
        (*it)->erase();
    }
    return true;
}

} // namespace

void
CimSimilarityMatchingPass::run(Module &module)
{
    rewritten_ = 0;
    std::vector<Operation *> executes;
    module.walk([&](Operation *op) {
        if (op->name() == cimd::kExecute)
            executes.push_back(op);
    });
    for (Operation *execute : executes)
        if (rewriteExecute(module.context(), execute))
            ++rewritten_;
}

} // namespace c4cam::passes
