#include "passes/CamOptimization.h"

#include "dialects/std/StdDialects.h"
#include "ir/Builder.h"
#include "support/Error.h"

namespace c4cam::passes {

using namespace ir;
namespace scfd = c4cam::dialects::scf;

namespace {

/**
 * Swap a loop op between scf.parallel and scf.for, moving its body.
 * @return the replacement loop.
 */
Operation *
convertLoop(Operation *loop, bool to_parallel)
{
    OpBuilder builder(loop->context());
    builder.setInsertionPoint(loop);
    Value *lb = loop->operand(0);
    Value *ub = loop->operand(1);
    Value *step = loop->operand(2);
    std::string level = loop->strAttrOr("level", "");
    Operation *replacement =
        to_parallel ? scfd::createParallel(builder, lb, ub, step, level)
                    : scfd::createFor(builder, lb, ub, step);
    if (!to_parallel && !level.empty())
        replacement->setAttr("level", Attribute(level));

    Block *old_body = scfd::loopBody(loop);
    Block *new_body = scfd::loopBody(replacement);
    old_body->argument(0)->replaceAllUsesWith(new_body->argument(0));
    while (!old_body->empty())
        new_body->append(old_body->take(old_body->front()));

    loop->dropAllReferences();
    loop->erase();
    return replacement;
}

int
convertLevelLoops(Module &module, const std::string &from_op,
                  const std::string &level, bool to_parallel)
{
    std::vector<Operation *> targets;
    module.walk([&](Operation *op) {
        if (op->name() == from_op && op->strAttrOr("level", "") == level)
            targets.push_back(op);
    });
    for (Operation *op : targets)
        convertLoop(op, to_parallel);
    return static_cast<int>(targets.size());
}

} // namespace

void
CamPowerOptPass::run(Module &module)
{
    converted_ = convertLevelLoops(module, "scf.parallel", "subarray",
                                   /*to_parallel=*/false);
}

void
CamLatencyOptPass::run(Module &module)
{
    converted_ = 0;
    for (const char *level : {"bank", "mat", "array", "subarray"})
        converted_ += convertLevelLoops(module, "scf.for", level,
                                        /*to_parallel=*/true);
}

} // namespace c4cam::passes
