#include "passes/CimPartition.h"

#include "dialects/cim/CimDialect.h"
#include "dialects/std/StdDialects.h"
#include "ir/Builder.h"
#include "support/Error.h"

namespace c4cam::passes {

using namespace ir;
namespace cimd = c4cam::dialects::cim;
namespace scfd = c4cam::dialects::scf;

namespace {

/** Fused similarity group: acquire + execute{similarity} + release. */
struct SimilarityGroup
{
    Operation *acquire;
    Operation *execute;
    Operation *release;
    Operation *similarity;
};

std::vector<SimilarityGroup>
collectGroups(Module &module)
{
    std::vector<SimilarityGroup> groups;
    for (Operation *func : module.functions()) {
        for (Operation *op : func->region(0).front().opVector()) {
            if (op->name() != cimd::kExecute)
                continue;
            std::vector<Operation *> body;
            for (Operation *inner :
                 cimd::executeBody(op)->opVector())
                if (inner->name() != cimd::kYield)
                    body.push_back(inner);
            if (body.size() != 1 ||
                body[0]->name() != cimd::kSimilarity)
                continue;
            if (body[0]->boolAttrOr("partial", false))
                continue; // already partitioned
            Operation *acquire = op->operand(0)->definingOp();
            Operation *release = nullptr;
            for (OpOperand *use : op->operand(0)->uses())
                if (use->owner()->name() == cimd::kRelease)
                    release = use->owner();
            C4CAM_CHECK(acquire && release,
                        "similarity execute without acquire/release");
            groups.push_back({acquire, op, release, body[0]});
        }
    }
    return groups;
}

void
partitionGroup(Context &ctx, const arch::ArchSpec &spec,
               SimilarityGroup group)
{
    Operation *similarity = group.similarity;
    std::string metric = similarity->strAttr("metric");
    C4CAM_CHECK(metric != cimd::kMetricCos,
                "cim-partition: cosine similarity is not tileable "
                "(normalization is not additive); run it unpartitioned");

    Value *stored = similarity->operand(0);
    Value *query = similarity->operand(1);
    Type stored_t = stored->type();
    Type query_t = query->type();
    std::int64_t n = stored_t.shape()[0];
    std::int64_t d = stored_t.shape()[1];
    std::int64_t q = query_t.shape()[0];
    std::int64_t tile = spec.cols;
    C4CAM_CHECK(query_t.shape()[1] == d,
                "similarity operands disagree on feature dim");
    if (tile >= d) {
        return; // fits in one subarray row: nothing to do
    }
    C4CAM_CHECK(d % tile == 0,
                "cim-partition requires the feature dim (" << d
                << ") to be divisible by the subarray width (" << tile
                << ")");

    std::int64_t k = similarity->intAttrOr("k", 1);
    bool largest = similarity->boolAttrOr(
        "largest", metric == cimd::kMetricDot);

    OpBuilder builder(ctx);
    builder.setInsertionPoint(group.acquire);

    Type acc_t = ctx.tensorType({q, n}, ctx.f32());
    Value *acc_init =
        builder.create("tensor.empty", {}, {acc_t})->result(0);
    Value *lb = builder.constantIndex(0);
    Value *ub = builder.constantIndex(d);
    Value *step = builder.constantIndex(tile);

    // scf.for %j = 0 to d step tile iter_args(%acc = %acc_init)
    Operation *loop = builder.create("scf.for", {lb, ub, step, acc_init},
                                     {acc_t}, {}, 1);
    Block &body = loop->region(0).addBlock();
    Value *iv = body.addArgument(ctx.indexType());
    Value *acc = body.addArgument(acc_t);

    OpBuilder body_builder(ctx);
    body_builder.setInsertionPointToEnd(&body);

    auto slice = [&](Value *src, std::int64_t rows) -> Value * {
        Type slice_t = ctx.tensorType({rows, tile}, ctx.f32());
        return body_builder
            .create("tensor.extract_slice", {src, iv}, {slice_t},
                    {{"static_offsets",
                      Attribute(std::vector<Attribute>{
                          Attribute(std::int64_t(0)),
                          Attribute(std::int64_t(-1))})},
                     {"static_sizes",
                      Attribute(std::vector<Attribute>{
                          Attribute(rows), Attribute(tile)})},
                     {"static_strides",
                      Attribute(std::vector<Attribute>{
                          Attribute(std::int64_t(1)),
                          Attribute(std::int64_t(1))})}})
            ->result(0);
    };
    Value *query_slice = slice(query, q);
    Value *stored_slice = slice(stored, n);

    // Partial similarity on the slices inside its own execute group.
    Operation *execute = cimd::createAcquireExecuteRelease(
        body_builder, {query_slice, stored_slice}, {acc_t, acc_t});
    OpBuilder exec_builder(ctx);
    exec_builder.setInsertionPointToEnd(cimd::executeBody(execute));
    Operation *partial = exec_builder.create(
        cimd::kSimilarity, {stored_slice, query_slice}, {acc_t, acc_t},
        {{"metric", Attribute(metric)}, {"partial", Attribute()}});
    exec_builder.create(cimd::kYield,
                        {partial->result(0), partial->result(1)}, {});

    // Accumulate: merge_partial(handle, acc, partial) -> new acc.
    // The merge op sits between execute and release, like Fig. 5d.
    Value *handle = execute->operand(0);
    body_builder.setInsertionPoint(
        cimd::executeBody(execute)->parentOp()->nextOp());
    Operation *merge = body_builder.create(
        cimd::kMergePartial, {handle, acc, execute->result(0)}, {acc_t},
        {{"what", Attribute("values")},
         {"kind", Attribute("similarity " + metric)},
         {"direction", Attribute("horizontal")}});
    body_builder.setInsertionPointToEnd(&body);
    body_builder.create("scf.yield", {merge->result(0)}, {});

    // Final top-k on the accumulated scores.
    builder.setInsertionPointAfter(loop);
    std::vector<Type> result_types = {similarity->result(0)->type(),
                                      similarity->result(1)->type()};
    Operation *topk = builder.create(
        cimd::kTopk, {loop->result(0)}, result_types,
        {{"k", Attribute(k)}, {"largest", Attribute(largest)}});

    // Rewire the old group's outside uses and erase it. The execute may
    // yield any subset of the similarity results (e.g. only indices), so
    // map each result through the old yield's operands.
    Operation *old_yield = cimd::executeBody(group.execute)->back();
    for (std::size_t i = 0; i < group.execute->numResults(); ++i) {
        Value *yielded = old_yield->operand(i);
        std::size_t sim_idx = yielded->index();
        C4CAM_ASSERT(yielded->definingOp() == similarity,
                     "fused execute must yield similarity results");
        group.execute->result(i)->replaceAllUsesWith(
            topk->result(sim_idx));
    }
    group.release->dropAllReferences();
    group.release->erase();
    group.execute->dropAllReferences();
    group.execute->erase();
    group.acquire->dropAllReferences();
    group.acquire->erase();
}

} // namespace

void
CimPartitionPass::run(Module &module)
{
    for (SimilarityGroup &group : collectGroups(module))
        partitionGroup(module.context(), spec_, group);
}

} // namespace c4cam::passes
