#ifndef C4CAM_PASSES_CIMTOLOOPS_H
#define C4CAM_PASSES_CIMTOLOOPS_H

/**
 * @file
 * cim-to-loops: the host fallback path of Fig. 3 ("loops: lower to
 * loops, and optimize").
 *
 * Lowers a fused cim.similarity kernel into plain scf loop nests over
 * memrefs with scalar arith -- no cim/cam ops remain except the final
 * top-k selection. Execution blocks that are not offloaded to a CIM
 * accelerator follow this pipeline to LLVM in the paper; here the
 * loop form runs on the interpreter's scalar ops.
 */

#include "ir/Pass.h"

namespace c4cam::passes {

/** Lowers fused cim.similarity kernels to scf/arith/memref loops. */
class CimToLoopsPass : public ir::Pass
{
  public:
    std::string name() const override { return "cim-to-loops"; }
    void run(ir::Module &module) override;

    /** Kernels lowered in the last run. */
    int lowered() const { return lowered_; }

  private:
    int lowered_ = 0;
};

} // namespace c4cam::passes

#endif // C4CAM_PASSES_CIMTOLOOPS_H
