#include "passes/Canonicalize.h"

#include <map>
#include <set>

#include "ir/Builder.h"
#include "ir/Rewrite.h"
#include "support/Error.h"
#include "support/StringUtils.h"

namespace c4cam::passes {

using namespace ir;

bool
isPure(const std::string &op_name)
{
    // Pure value computations; everything else (cam/cim device calls,
    // memref mutation, control flow, terminators) is conservatively
    // treated as effectful.
    static const std::set<std::string> pure = {
        "arith.constant",  "arith.addi",     "arith.subi",
        "arith.muli",      "arith.divsi",    "arith.remsi",
        "arith.minsi",     "arith.maxsi",    "arith.addf",
        "arith.subf",      "arith.mulf",     "arith.divf",
        "arith.minimumf",  "arith.maximumf", "arith.cmpi",
        "arith.cmpf",      "arith.select",   "arith.index_cast",
        "arith.sitofp",    "arith.fptosi",   "tensor.extract_slice",
        "tensor.empty",    "memref.subview",
        "bufferization.to_memref", "bufferization.to_tensor",
    };
    return pure.count(op_name) > 0;
}

namespace {

/** Constant integer value of @p v, when defined by arith.constant. */
bool
constantInt(Value *v, std::int64_t &out)
{
    Operation *def = v->definingOp();
    if (!def || def->name() != "arith.constant")
        return false;
    const Attribute &attr = def->attr("value");
    if (!attr.isInt())
        return false;
    out = attr.asInt();
    return true;
}

/** Fold integer arithmetic over two constants. */
class FoldIntBinary : public RewritePattern
{
  public:
    FoldIntBinary() : RewritePattern("", /*benefit=*/2) {}

    bool
    matchAndRewrite(Operation *op, PatternRewriter &rewriter) const override
    {
        const std::string &name = op->name();
        if (!startsWith(name, "arith.") || op->numOperands() != 2 ||
            op->numResults() != 1)
            return false;
        std::int64_t lhs = 0;
        std::int64_t rhs = 0;
        if (!constantInt(op->operand(0), lhs) ||
            !constantInt(op->operand(1), rhs))
            return false;

        std::int64_t folded = 0;
        if (name == "arith.addi")
            folded = lhs + rhs;
        else if (name == "arith.subi")
            folded = lhs - rhs;
        else if (name == "arith.muli")
            folded = lhs * rhs;
        else if (name == "arith.divsi" && rhs != 0)
            folded = lhs / rhs;
        else if (name == "arith.remsi" && rhs != 0)
            folded = lhs % rhs;
        else if (name == "arith.minsi")
            folded = std::min(lhs, rhs);
        else if (name == "arith.maxsi")
            folded = std::max(lhs, rhs);
        else
            return false;

        Operation *constant = rewriter.create(
            "arith.constant", {}, {op->result(0)->type()},
            {{"value", Attribute(folded)}});
        rewriter.replaceOp(op, {constant->result(0)});
        return true;
    }
};

/** Fold arith.cmpi over two constants. */
class FoldCmpi : public RewritePattern
{
  public:
    FoldCmpi() : RewritePattern("arith.cmpi", /*benefit=*/2) {}

    bool
    matchAndRewrite(Operation *op, PatternRewriter &rewriter) const override
    {
        std::int64_t lhs = 0;
        std::int64_t rhs = 0;
        if (!constantInt(op->operand(0), lhs) ||
            !constantInt(op->operand(1), rhs))
            return false;
        std::string pred = op->strAttr("predicate");
        bool result = false;
        if (pred == "eq")
            result = lhs == rhs;
        else if (pred == "ne")
            result = lhs != rhs;
        else if (pred == "slt")
            result = lhs < rhs;
        else if (pred == "sle")
            result = lhs <= rhs;
        else if (pred == "sgt")
            result = lhs > rhs;
        else if (pred == "sge")
            result = lhs >= rhs;
        else
            return false;
        Operation *constant = rewriter.create(
            "arith.constant", {}, {op->result(0)->type()},
            {{"value", Attribute(result)}});
        rewriter.replaceOp(op, {constant->result(0)});
        return true;
    }
};

/** x + 0, x - 0, x * 1, x * 0, 0 + x, 1 * x identities. */
class AlgebraicIdentity : public RewritePattern
{
  public:
    AlgebraicIdentity() : RewritePattern("", /*benefit=*/1) {}

    bool
    matchAndRewrite(Operation *op, PatternRewriter &rewriter) const override
    {
        const std::string &name = op->name();
        if (op->numOperands() != 2 || op->numResults() != 1)
            return false;
        std::int64_t lhs = 0;
        std::int64_t rhs = 0;
        bool lhs_const = constantInt(op->operand(0), lhs);
        bool rhs_const = constantInt(op->operand(1), rhs);

        if (name == "arith.addi") {
            if (rhs_const && rhs == 0) {
                rewriter.replaceOp(op, {op->operand(0)});
                return true;
            }
            if (lhs_const && lhs == 0) {
                rewriter.replaceOp(op, {op->operand(1)});
                return true;
            }
        } else if (name == "arith.subi") {
            if (rhs_const && rhs == 0) {
                rewriter.replaceOp(op, {op->operand(0)});
                return true;
            }
        } else if (name == "arith.muli") {
            if (rhs_const && rhs == 1) {
                rewriter.replaceOp(op, {op->operand(0)});
                return true;
            }
            if (lhs_const && lhs == 1) {
                rewriter.replaceOp(op, {op->operand(1)});
                return true;
            }
        }
        return false;
    }
};

/** Remove scf.if with a constant-false condition; inline nothing. */
class FoldDeadIf : public RewritePattern
{
  public:
    FoldDeadIf() : RewritePattern("scf.if", /*benefit=*/3) {}

    bool
    matchAndRewrite(Operation *op, PatternRewriter &rewriter) const override
    {
        Operation *def = op->operand(0)->definingOp();
        if (!def || def->name() != "arith.constant")
            return false;
        const Attribute &value = def->attr("value");
        bool cond = value.isBool() ? value.asBool() : value.asInt() != 0;
        if (cond)
            return false; // constant-true: keeping the guard is harmless
        rewriter.eraseOp(op);
        return true;
    }
};

/** De-duplicate identical arith.constant ops within one block. */
int
dedupConstants(Block &block)
{
    int removed = 0;
    std::map<std::pair<std::string, const void *>, Value *> seen;
    for (Operation *op : block.opVector()) {
        for (std::size_t r = 0; r < op->numRegions(); ++r)
            for (auto &nested : op->region(r).blocks())
                removed += dedupConstants(*nested);
        if (op->name() != "arith.constant")
            continue;
        // Key on value text + result type identity.
        auto key = std::make_pair(op->attr("value").str(),
                                  op->result(0)->type().opaqueId());
        auto it = seen.find(key);
        if (it == seen.end()) {
            seen.emplace(key, op->result(0));
        } else {
            op->result(0)->replaceAllUsesWith(it->second);
            op->erase();
            ++removed;
        }
    }
    return removed;
}

/** Erase pure ops whose results are all unused; iterate to fixpoint. */
int
eliminateDeadCode(Operation *root)
{
    int removed = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<Operation *> dead;
        root->walkPostOrder([&](Operation *op) {
            if (op == root || !isPure(op->name()))
                return;
            for (std::size_t i = 0; i < op->numResults(); ++i)
                if (op->result(i)->hasUses())
                    return;
            dead.push_back(op);
        });
        for (Operation *op : dead) {
            // Post-order walk may list an op nested in another dead op
            // that was already erased; guard via parent pointer.
            if (!op->parentBlock())
                continue;
            op->dropAllReferences();
            op->erase();
            ++removed;
            changed = true;
        }
    }
    return removed;
}

} // namespace

void
CanonicalizePass::run(Module &module)
{
    removed_ = 0;

    RewritePatternSet patterns;
    patterns.insert<FoldIntBinary>();
    patterns.insert<FoldCmpi>();
    patterns.insert<AlgebraicIdentity>();
    patterns.insert<FoldDeadIf>();
    applyPatternsGreedily(module.op(), patterns);

    removed_ += dedupConstants(*module.body());
    removed_ += eliminateDeadCode(module.op());
}

} // namespace c4cam::passes
