#ifndef C4CAM_PASSES_CAMMAPPING_H
#define C4CAM_PASSES_CAMMAPPING_H

/**
 * @file
 * cim-to-cam conversion + cam-map (paper §III-D2, Fig. 6).
 *
 * Rewrites a fused cim.similarity kernel into the device-level program:
 *
 *  1. setup loops that walk the hierarchy (banks -> mats -> arrays ->
 *     subarrays), allocate units (cam.alloc_*) and program the stored
 *     data tiles (cam.write_value), with bufferization of the captured
 *     tensors;
 *  2. a per-query loop whose hierarchy loop nest issues cam.search /
 *     cam.read and accumulates partial distances with
 *     cam.merge_partial_subarray, followed by a final top-k.
 *
 * Optimization targets (paper §IV-C1):
 *  - base/latency: every level uses scf.parallel;
 *  - power: at most maxActiveSubarrays subarrays of an array are active
 *    at a time (the subarray loop becomes sequential / chunked);
 *  - density: selective search [27] packs floor(rows/batch) data batches
 *    per subarray, searched in that many sequential cycles.
 *
 * Note on staging: the paper partitions at cim level and maps at cam
 * level; here the tiling is re-derived inside cam-map because the
 * tile -> (bank, mat, array, subarray, batch) assignment must be
 * computed jointly with the hierarchy walk. The standalone cim-partition
 * pass implements the paper's Fig. 5d form for the host/loops path.
 */

#include "arch/ArchSpec.h"
#include "ir/Pass.h"

namespace c4cam::passes {

/** Static mapping summary computed by cam-map (also used by Table I). */
struct MappingPlan
{
    std::int64_t queries = 0;      ///< Q
    std::int64_t storedRows = 0;   ///< N
    std::int64_t featureDim = 0;   ///< D
    std::int64_t rowTiles = 0;     ///< ceil(N / rows)
    std::int64_t colTiles = 0;     ///< ceil(D / cols)
    std::int64_t batchRows = 0;    ///< rows per packed batch
    std::int64_t batchesPerSubarray = 1;
    std::int64_t logicalTiles = 0; ///< rowTiles * colTiles
    std::int64_t physicalSubarrays = 0;
    std::int64_t banks = 0;

    /** Compute the plan for a (N x D) kernel on @p spec. */
    static MappingPlan compute(const arch::ArchSpec &spec,
                               std::int64_t queries, std::int64_t n,
                               std::int64_t d);
};

/** Lowers fused cim.similarity kernels to the mapped cam form. */
class CamMappingPass : public ir::Pass
{
  public:
    explicit CamMappingPass(arch::ArchSpec spec) : spec_(std::move(spec)) {}

    std::string name() const override { return "cam-map"; }
    void run(ir::Module &module) override;

    /** Plan of the last mapped kernel (for reporting/tests). */
    const MappingPlan &plan() const { return plan_; }

  private:
    arch::ArchSpec spec_;
    MappingPlan plan_;
};

} // namespace c4cam::passes

#endif // C4CAM_PASSES_CAMMAPPING_H
