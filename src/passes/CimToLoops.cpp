#include "passes/CimToLoops.h"

#include "dialects/cim/CimDialect.h"
#include "dialects/std/StdDialects.h"
#include "ir/Builder.h"
#include "support/Error.h"

namespace c4cam::passes {

using namespace ir;
namespace cimd = c4cam::dialects::cim;
namespace scfd = c4cam::dialects::scf;

namespace {

struct Kernel
{
    Operation *acquire;
    Operation *execute;
    Operation *release;
    Operation *similarity;
};

std::vector<Kernel>
collectKernels(Module &module)
{
    std::vector<Kernel> kernels;
    for (Operation *func : module.functions()) {
        for (Operation *op : func->region(0).front().opVector()) {
            if (op->name() != cimd::kExecute)
                continue;
            std::vector<Operation *> body;
            for (Operation *inner : cimd::executeBody(op)->opVector())
                if (inner->name() != cimd::kYield)
                    body.push_back(inner);
            if (body.size() != 1 || body[0]->name() != cimd::kSimilarity)
                continue;
            Operation *acquire = op->operand(0)->definingOp();
            Operation *release = nullptr;
            for (OpOperand *use : op->operand(0)->uses())
                if (use->owner()->name() == cimd::kRelease)
                    release = use->owner();
            C4CAM_CHECK(acquire && release,
                        "similarity execute without acquire/release");
            kernels.push_back({acquire, op, release, body[0]});
        }
    }
    return kernels;
}

void
lowerKernel(Context &ctx, Kernel kernel)
{
    Operation *similarity = kernel.similarity;
    std::string metric = similarity->strAttr("metric");
    C4CAM_CHECK(metric == cimd::kMetricDot ||
                    metric == cimd::kMetricEucl,
                "cim-to-loops supports dot/eucl similarity, got '"
                << metric << "'");

    Value *stored = similarity->operand(0);
    Value *query = similarity->operand(1);
    std::int64_t n = stored->type().shape()[0];
    std::int64_t d = stored->type().shape()[1];
    std::int64_t q = query->type().shape()[0];
    std::int64_t k = similarity->intAttrOr("k", 1);
    bool largest = similarity->boolAttrOr(
        "largest", metric == cimd::kMetricDot);

    OpBuilder b(ctx);
    b.setInsertionPoint(kernel.acquire);

    Type f32 = ctx.f32();
    Value *qmem = b.create("bufferization.to_memref", {query},
                           {ctx.memrefType({q, d}, f32)})
                      ->result(0);
    Value *smem = b.create("bufferization.to_memref", {stored},
                           {ctx.memrefType({n, d}, f32)})
                      ->result(0);
    Value *scores = b.create("memref.alloc", {},
                             {ctx.memrefType({q, n}, f32)})
                        ->result(0);

    Value *c0 = b.constantIndex(0);
    Value *c1 = b.constantIndex(1);
    Value *cq = b.constantIndex(q);
    Value *cn = b.constantIndex(n);
    Value *cd = b.constantIndex(d);

    // for qi in 0..Q { for ni in 0..N { acc over D } }
    Operation *q_loop = scfd::createFor(b, c0, cq, c1);
    OpBuilder qb(ctx);
    qb.setInsertionPointToEnd(scfd::loopBody(q_loop));
    Value *qi = scfd::inductionVar(q_loop);

    Operation *n_loop = scfd::createFor(qb, c0, cn, c1);
    OpBuilder nb(ctx);
    nb.setInsertionPointToEnd(scfd::loopBody(n_loop));
    Value *ni = scfd::inductionVar(n_loop);

    Value *zero = nb.constantFloat(0.0);
    Operation *d_loop =
        nb.create("scf.for", {c0, cd, c1, zero}, {f32}, {}, 1);
    Block &d_body = d_loop->region(0).addBlock();
    Value *di = d_body.addArgument(ctx.indexType());
    Value *acc = d_body.addArgument(f32);
    OpBuilder db(ctx);
    db.setInsertionPointToEnd(&d_body);

    Value *qv = db.create("memref.load", {qmem, qi, di}, {f32})
                    ->result(0);
    Value *sv = db.create("memref.load", {smem, ni, di}, {f32})
                    ->result(0);
    Value *contrib = nullptr;
    if (metric == cimd::kMetricDot) {
        contrib = db.create("arith.mulf", {qv, sv}, {f32})->result(0);
    } else {
        Value *diff = db.create("arith.subf", {qv, sv}, {f32})
                          ->result(0);
        contrib =
            db.create("arith.mulf", {diff, diff}, {f32})->result(0);
    }
    Value *next =
        db.create("arith.addf", {acc, contrib}, {f32})->result(0);
    db.create("scf.yield", {next}, {});

    Value *score = d_loop->result(0);
    if (metric == cimd::kMetricEucl) {
        // Match torch.norm semantics so the values (not only the
        // indices) agree with the torch-level reference.
        score = nb.create("math.sqrt", {score}, {f32})->result(0);
    }
    nb.create("memref.store", {score, scores, qi, ni}, {});

    // Final top-k on the host score matrix.
    b.setInsertionPointAfter(q_loop);
    Operation *topk = b.create(
        cimd::kTopk, {scores},
        {ctx.memrefType({q, k}, f32), ctx.memrefType({q, k}, ctx.i64())},
        {{"k", Attribute(k)}, {"largest", Attribute(largest)}});
    Value *values_tensor =
        b.create("bufferization.to_tensor", {topk->result(0)},
                 {ctx.tensorType({q, k}, f32)})
            ->result(0);
    Value *indices_tensor =
        b.create("bufferization.to_tensor", {topk->result(1)},
                 {ctx.tensorType({q, k}, f32)})
            ->result(0);

    Operation *old_yield = cimd::executeBody(kernel.execute)->back();
    for (std::size_t i = 0; i < kernel.execute->numResults(); ++i) {
        Value *yielded = old_yield->operand(i);
        C4CAM_ASSERT(yielded->definingOp() == similarity,
                     "lowered execute must yield similarity results");
        Value *replacement = yielded->index() == 0 ? values_tensor
                                                   : indices_tensor;
        kernel.execute->result(i)->replaceAllUsesWith(replacement);
    }
    kernel.release->dropAllReferences();
    kernel.release->erase();
    kernel.execute->dropAllReferences();
    kernel.execute->erase();
    kernel.acquire->dropAllReferences();
    kernel.acquire->erase();
}

} // namespace

void
CimToLoopsPass::run(Module &module)
{
    lowered_ = 0;
    for (Kernel &kernel : collectKernels(module)) {
        lowerKernel(module.context(), kernel);
        ++lowered_;
    }
}

} // namespace c4cam::passes
