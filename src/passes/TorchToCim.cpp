#include "passes/TorchToCim.h"

#include <map>

#include "dialects/cim/CimDialect.h"
#include "dialects/torch/TorchDialect.h"
#include "ir/Builder.h"
#include "support/Error.h"

namespace c4cam::passes {

using namespace ir;
namespace cimd = c4cam::dialects::cim;
namespace torchd = c4cam::dialects::torch;

namespace {

/** torch.aten op name -> cim op name. */
const std::map<std::string, std::string> &
conversionTable()
{
    static const std::map<std::string, std::string> table = {
        {torchd::kTranspose, cimd::kTranspose},
        {torchd::kMm, cimd::kMatmul},
        {torchd::kMatmul, cimd::kMatmul},
        {torchd::kSub, cimd::kSub},
        {torchd::kDiv, cimd::kDiv},
        {torchd::kNorm, cimd::kNorm},
        {torchd::kTopk, cimd::kTopk},
    };
    return table;
}

} // namespace

void
TorchToCimPass::run(Module &module)
{
    OpBuilder builder(module.context());
    // Snapshot: we rewrite while iterating.
    std::vector<Operation *> torch_ops;
    for (Operation *func : module.functions())
        for (Operation *op : func->region(0).front().opVector())
            if (conversionTable().count(op->name()))
                torch_ops.push_back(op);

    for (Operation *op : torch_ops) {
        const std::string &cim_name = conversionTable().at(op->name());
        builder.setInsertionPoint(op);

        std::vector<Type> result_types;
        for (std::size_t i = 0; i < op->numResults(); ++i)
            result_types.push_back(op->result(i)->type());

        Operation *execute = cimd::createAcquireExecuteRelease(
            builder, op->operandValues(), result_types);

        // Body: the cim twin of the torch op, capturing the same outer
        // SSA values, then cim.yield.
        OpBuilder body_builder(module.context());
        body_builder.setInsertionPointToEnd(cimd::executeBody(execute));
        Operation *cim_op = body_builder.create(
            cim_name, op->operandValues(), result_types, op->attrs());
        std::vector<Value *> yields;
        for (std::size_t i = 0; i < cim_op->numResults(); ++i)
            yields.push_back(cim_op->result(i));
        body_builder.create(cimd::kYield, yields, {});

        for (std::size_t i = 0; i < op->numResults(); ++i)
            op->result(i)->replaceAllUsesWith(execute->result(i));
        op->erase();
    }
}

} // namespace c4cam::passes
