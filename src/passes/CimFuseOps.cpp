#include "passes/CimFuseOps.h"

#include <map>
#include <set>

#include "dialects/cim/CimDialect.h"
#include "ir/Builder.h"
#include "support/Error.h"

namespace c4cam::passes {

using namespace ir;
namespace cimd = c4cam::dialects::cim;

namespace {

struct ExecGroup
{
    Operation *acquire;
    Operation *execute;
    Operation *release;
};

/** Collect (acquire, execute, release) groups in program order. */
std::vector<ExecGroup>
collectGroups(Block &body)
{
    std::vector<ExecGroup> groups;
    for (Operation *op : body.opVector()) {
        if (op->name() != cimd::kExecute)
            continue;
        Value *handle = op->operand(0);
        Operation *acquire = handle->definingOp();
        C4CAM_CHECK(acquire && acquire->name() == cimd::kAcquire,
                    "cim.execute handle does not come from cim.acquire");
        Operation *release = nullptr;
        for (OpOperand *use : handle->uses()) {
            if (use->owner()->name() == cimd::kRelease)
                release = use->owner();
        }
        C4CAM_CHECK(release, "cim.execute device is never released");
        groups.push_back({acquire, op, release});
    }
    return groups;
}

void
fuseFunction(Context &ctx, Block &body)
{
    std::vector<ExecGroup> groups = collectGroups(body);
    if (groups.size() < 2)
        return;

    // Map old execute results to the values yielded inside their body,
    // so cross-execute dataflow becomes direct SSA flow after inlining.
    std::map<Value *, Value *> result_to_yielded;
    for (const ExecGroup &group : groups) {
        Operation *yield = cimd::executeBody(group.execute)->back();
        for (std::size_t i = 0; i < group.execute->numResults(); ++i)
            result_to_yielded[group.execute->result(i)] =
                yield->operand(i);
    }

    // Fused results: old execute results that are used outside the fused
    // bodies (and outside the release ops we are deleting).
    std::set<Operation *> fused_ops;
    for (const ExecGroup &group : groups) {
        fused_ops.insert(group.acquire);
        fused_ops.insert(group.execute);
        fused_ops.insert(group.release);
        for (Operation *op : cimd::executeBody(group.execute)->opVector())
            fused_ops.insert(op);
    }

    std::vector<Value *> outer_results;   // old execute results
    std::vector<Type> result_types;
    for (const ExecGroup &group : groups) {
        for (std::size_t i = 0; i < group.execute->numResults(); ++i) {
            Value *result = group.execute->result(i);
            bool used_outside = false;
            for (OpOperand *use : result->uses())
                if (!fused_ops.count(use->owner()))
                    used_outside = true;
            if (used_outside) {
                outer_results.push_back(result);
                result_types.push_back(result->type());
            }
        }
    }

    // Captured operands: every non-handle operand of the old executes
    // that is not itself a fused execute result.
    std::vector<Value *> captures;
    std::set<Value *> seen;
    for (const ExecGroup &group : groups) {
        for (std::size_t i = 1; i < group.execute->numOperands(); ++i) {
            Value *operand = group.execute->operand(i);
            if (result_to_yielded.count(operand))
                continue;
            if (seen.insert(operand).second)
                captures.push_back(operand);
        }
    }

    // Build the fused group before the first old acquire.
    OpBuilder builder(ctx);
    builder.setInsertionPoint(groups.front().acquire);
    Operation *fused =
        cimd::createAcquireExecuteRelease(builder, captures, result_types);
    Block *fused_body = cimd::executeBody(fused);

    // Inline bodies in order (dropping their yields).
    for (const ExecGroup &group : groups) {
        Block *old_body = cimd::executeBody(group.execute);
        std::vector<Operation *> ops = old_body->opVector();
        for (Operation *op : ops) {
            if (op->name() == cimd::kYield) {
                op->dropAllReferences();
                op->erase();
                continue;
            }
            fused_body->append(old_body->take(op));
        }
    }

    // Rewire: old execute results -> internal yielded values (for uses
    // inside the fused body) and -> fused execute results (outside).
    std::vector<Value *> yield_values;
    for (std::size_t i = 0; i < outer_results.size(); ++i)
        yield_values.push_back(result_to_yielded.at(outer_results[i]));

    for (const ExecGroup &group : groups) {
        for (std::size_t i = 0; i < group.execute->numResults(); ++i) {
            Value *result = group.execute->result(i);
            result->replaceAllUsesWith(result_to_yielded.at(result));
        }
    }
    for (std::size_t i = 0; i < outer_results.size(); ++i) {
        // outer_results entries were rewired to the yielded value; now
        // redirect the *outside* uses to the fused execute results.
        Value *yielded = yield_values[i];
        std::vector<OpOperand *> uses = yielded->uses();
        for (OpOperand *use : uses) {
            Operation *owner = use->owner();
            bool inside = owner->parentBlock() == fused_body;
            if (!inside)
                use->set(fused->result(i));
        }
    }

    OpBuilder yield_builder(ctx);
    yield_builder.setInsertionPointToEnd(fused_body);
    yield_builder.create(cimd::kYield, yield_values, {});

    // Delete the old shells.
    for (const ExecGroup &group : groups) {
        group.release->dropAllReferences();
        group.release->erase();
        group.execute->dropAllReferences();
        group.execute->erase();
        group.acquire->dropAllReferences();
        group.acquire->erase();
    }
}

} // namespace

void
CimFuseOpsPass::run(Module &module)
{
    for (Operation *func : module.functions())
        fuseFunction(module.context(), func->region(0).front());
}

} // namespace c4cam::passes
