#ifndef C4CAM_PASSES_TORCHTOCIM_H
#define C4CAM_PASSES_TORCHTOCIM_H

/**
 * @file
 * torch-to-cim conversion (paper §III-D, Fig. 5a).
 *
 * Each supported torch.aten op is wrapped in its own
 * cim.acquire / cim.execute / cim.release group with the equivalent cim
 * op inside, reflecting the CINM-style programming model: at this stage
 * every op could run on a separate (non-)CIM device.
 */

#include "ir/Pass.h"

namespace c4cam::passes {

/** Lowers torch.aten.* ops into per-op cim.execute blocks. */
class TorchToCimPass : public ir::Pass
{
  public:
    std::string name() const override { return "torch-to-cim"; }
    void run(ir::Module &module) override;
};

} // namespace c4cam::passes

#endif // C4CAM_PASSES_TORCHTOCIM_H
