#ifndef C4CAM_PASSES_CIMSIMILARITYMATCHING_H
#define C4CAM_PASSES_CIMSIMILARITYMATCHING_H

/**
 * @file
 * Similarity pattern matching (paper Algorithm 1, Fig. 5c).
 *
 * Inspects each cim.execute body and, when its op list and dataflow
 * match one of the known similarity patterns, replaces the body with a
 * single cim.similarity op:
 *
 *  - DotProdSimPattern : transpose -> matmul -> topk      (metric dot)
 *  - EuclNormPattern   : sub -> norm -> topk              (metric eucl)
 *  - CosSimPattern     : norm, norm, transpose, matmul, div (metric cos)
 */

#include "ir/Pass.h"

namespace c4cam::passes {

/** Rewrites matching execute bodies to cim.similarity. */
class CimSimilarityMatchingPass : public ir::Pass
{
  public:
    std::string name() const override { return "cim-similarity-match"; }
    void run(ir::Module &module) override;

    /** Number of execute blocks rewritten in the last run. */
    int rewritten() const { return rewritten_; }

  private:
    int rewritten_ = 0;
};

} // namespace c4cam::passes

#endif // C4CAM_PASSES_CIMSIMILARITYMATCHING_H
