#include "passes/CamMapping.h"

#include "dialects/cam/CamDialect.h"
#include "dialects/cim/CimDialect.h"
#include "dialects/std/StdDialects.h"
#include "ir/Builder.h"
#include "support/Error.h"

namespace c4cam::passes {

using namespace ir;
namespace camd = c4cam::dialects::cam;
namespace cimd = c4cam::dialects::cim;
namespace scfd = c4cam::dialects::scf;

namespace {

std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** Fused similarity kernel to be mapped. */
struct Kernel
{
    Operation *acquire;
    Operation *execute;
    Operation *release;
    Operation *similarity;
};

std::vector<Kernel>
collectKernels(Module &module)
{
    std::vector<Kernel> kernels;
    for (Operation *func : module.functions()) {
        for (Operation *op : func->region(0).front().opVector()) {
            if (op->name() != cimd::kExecute)
                continue;
            std::vector<Operation *> body;
            for (Operation *inner : cimd::executeBody(op)->opVector())
                if (inner->name() != cimd::kYield)
                    body.push_back(inner);
            if (body.size() != 1 || body[0]->name() != cimd::kSimilarity)
                continue;
            Operation *acquire = op->operand(0)->definingOp();
            Operation *release = nullptr;
            for (OpOperand *use : op->operand(0)->uses())
                if (use->owner()->name() == cimd::kRelease)
                    release = use->owner();
            C4CAM_CHECK(acquire && release,
                        "similarity execute without acquire/release");
            kernels.push_back({acquire, op, release, body[0]});
        }
    }
    return kernels;
}

/**
 * Emits the mapped program for one kernel.
 */
class KernelMapper
{
  public:
    KernelMapper(Context &ctx, const arch::ArchSpec &spec, Kernel kernel)
        : ctx_(ctx), spec_(spec), kernel_(kernel), builder_(ctx)
    {}

    MappingPlan
    map()
    {
        analyze();
        builder_.setInsertionPoint(kernel_.acquire);
        emitBufferization();
        emitSetup();
        emitQueryLoop();
        rewireAndErase();
        return plan_;
    }

  private:
    void
    analyze()
    {
        Operation *similarity = kernel_.similarity;
        metric_ = similarity->strAttr("metric");
        C4CAM_CHECK(metric_ != cimd::kMetricCos,
                    "cam-map: cosine similarity requires host execution "
                    "(normalization is not additive across subarrays)");
        stored_ = similarity->operand(0);
        query_ = similarity->operand(1);
        Type stored_t = stored_->type();
        Type query_t = query_->type();
        C4CAM_CHECK(stored_t.rank() == 2 && query_t.rank() == 2,
                    "cam-map expects rank-2 stored/query tensors");
        n_ = stored_t.shape()[0];
        d_ = stored_t.shape()[1];
        q_ = query_t.shape()[0];
        C4CAM_CHECK(query_t.shape()[1] == d_,
                    "stored/query feature dims disagree");
        k_ = similarity->intAttrOr("k", 1);

        plan_ = MappingPlan::compute(spec_, q_, n_, d_);
    }

    Value *
    cIdx(std::int64_t v)
    {
        auto it = constants_.find(v);
        if (it != constants_.end())
            return it->second;
        // Constants are pinned before the first emitted op so they
        // dominate every later use regardless of emission order.
        Value *c = constBuilder_.constantIndex(v);
        constants_[v] = c;
        return c;
    }

    void
    emitBufferization()
    {
        Type stored_mr =
            ctx_.memrefType({n_, d_}, ctx_.f32());
        Type query_mr = ctx_.memrefType({q_, d_}, ctx_.f32());
        storedMem_ = builder_
                         .create("bufferization.to_memref", {stored_},
                                 {stored_mr})
                         ->result(0);
        // The stored tensor is consumed by the setup phase only; tagging
        // it lets a persistent session skip it on per-query re-entry.
        storedMem_->definingOp()->setAttr(camd::kPhaseAttr,
                                          Attribute(camd::kPhaseSetup));
        constBuilder_ = OpBuilder(ctx_);
        constBuilder_.setInsertionPoint(storedMem_->definingOp());
        queryMem_ = builder_
                        .create("bufferization.to_memref", {query_},
                                {query_mr})
                        ->result(0);
        distMem_ = builder_
                       .create("memref.alloc", {},
                               {ctx_.memrefType({q_, n_}, ctx_.f32())})
                       ->result(0);
        outValues_ = builder_
                         .create("memref.alloc", {},
                                 {ctx_.memrefType({q_, k_}, ctx_.f32())})
                         ->result(0);
        outIndices_ = builder_
                          .create("memref.alloc", {},
                                  {ctx_.memrefType({q_, k_}, ctx_.i64())})
                          ->result(0);
    }

    /** Open an scf.for in builder @p b; returns (loop, iv). */
    std::pair<Operation *, Value *>
    beginFor(OpBuilder &b, std::int64_t ub, const std::string &level)
    {
        Operation *loop =
            scfd::createFor(b, cIdx(0), cIdx(ub), cIdx(1));
        if (!level.empty())
            loop->setAttr("level", Attribute(level));
        b.setInsertionPointToEnd(scfd::loopBody(loop));
        return {loop, scfd::inductionVar(loop)};
    }

    /** Open an scf.parallel (or scf.for when @p parallel is false). */
    std::pair<Operation *, Value *>
    beginLoop(OpBuilder &b, std::int64_t ub, const std::string &level,
              bool parallel)
    {
        if (!parallel)
            return beginFor(b, ub, level);
        Operation *loop =
            scfd::createParallel(b, cIdx(0), cIdx(ub), cIdx(1), level);
        b.setInsertionPointToEnd(scfd::loopBody(loop));
        return {loop, scfd::inductionVar(loop)};
    }

    /** Emit `scf.if (lhs < rhs)` and move @p b inside. */
    Operation *
    beginIfLess(OpBuilder &b, Value *lhs, Value *rhs)
    {
        Value *cond =
            b.create("arith.cmpi", {lhs, rhs}, {ctx_.i1()},
                     {{"predicate", Attribute("slt")}})
                ->result(0);
        Operation *if_op = b.create("scf.if", {cond}, {}, {}, 1);
        if_op->region(0).addBlock();
        b.setInsertionPointToEnd(&if_op->region(0).front());
        return if_op;
    }

    Value *
    mul(OpBuilder &b, Value *a, Value *c)
    {
        return b.create("arith.muli", {a, c}, {ctx_.indexType()})
            ->result(0);
    }

    Value *
    add(OpBuilder &b, Value *a, Value *c)
    {
        return b.create("arith.addi", {a, c}, {ctx_.indexType()})
            ->result(0);
    }

    Value *
    minOf(OpBuilder &b, Value *a, Value *c)
    {
        return b.create("arith.minsi", {a, c}, {ctx_.indexType()})
            ->result(0);
    }

    Value *
    sub(OpBuilder &b, Value *a, Value *c)
    {
        return b.create("arith.subi", {a, c}, {ctx_.indexType()})
            ->result(0);
    }

    /** Linear physical subarray id of coordinates (b, m, a, s). */
    Value *
    physicalSubId(OpBuilder &b, Value *bank, Value *mat, Value *array,
                  Value *sub)
    {
        Value *acc = mul(b, bank, cIdx(spec_.matsPerBank));
        acc = add(b, acc, mat);
        acc = mul(b, acc, cIdx(spec_.arraysPerMat));
        acc = add(b, acc, array);
        acc = mul(b, acc, cIdx(spec_.subarraysPerArray));
        acc = add(b, acc, sub);
        return acc;
    }

    /**
     * Tile geometry for logical tile id (dynamic): returns
     * (rowOff, rowsHere, colOff, colsHere) as SSA values.
     */
    struct TileGeom
    {
        Value *rowOff;
        Value *rowsHere;
        Value *colOff;
        Value *colsHere;
    };

    TileGeom
    tileGeometry(OpBuilder &b, Value *tile)
    {
        Value *row_tile =
            b.create("arith.divsi", {tile, cIdx(plan_.colTiles)},
                     {ctx_.indexType()})
                ->result(0);
        Value *col_tile =
            b.create("arith.remsi", {tile, cIdx(plan_.colTiles)},
                     {ctx_.indexType()})
                ->result(0);
        TileGeom geom;
        geom.rowOff = mul(b, row_tile, cIdx(plan_.batchRows));
        geom.rowsHere =
            minOf(b, cIdx(plan_.batchRows), sub(b, cIdx(n_), geom.rowOff));
        geom.colOff = mul(b, col_tile, cIdx(spec_.cols));
        geom.colsHere =
            minOf(b, cIdx(spec_.cols), sub(b, cIdx(d_), geom.colOff));
        return geom;
    }

    /** memref.subview with dynamic offsets/sizes (rank 2). */
    Value *
    subview2d(OpBuilder &b, Value *src, Value *off0, Value *off1,
              Value *size0, Value *size1, Type elem)
    {
        Type result = ctx_.memrefType({0, 0}, elem);
        return b
            .create("memref.subview", {src, off0, off1, size0, size1},
                    {result},
                    {{"static_offsets",
                      Attribute(std::vector<Attribute>{
                          Attribute(std::int64_t(-1)),
                          Attribute(std::int64_t(-1))})},
                     {"static_sizes",
                      Attribute(std::vector<Attribute>{
                          Attribute(std::int64_t(-1)),
                          Attribute(std::int64_t(-1))})}})
            ->result(0);
    }

    //
    // Phase 1: setup -- allocate the hierarchy and program the tiles.
    //
    void
    emitSetup()
    {
        OpBuilder b = builder_;
        auto [bank_loop, bank_iv] = beginFor(b, plan_.banks, "bank");
        Value *bank = b.create(camd::kAllocBank,
                               {cIdx(spec_.rows), cIdx(spec_.cols)},
                               {camd::bankIdType(ctx_)})
                          ->result(0);

        auto [mat_loop, mat_iv] = beginFor(b, spec_.matsPerBank, "mat");
        // Allocate a mat only when its first subarray is in range.
        Value *mat_first = physicalSubId(b, bank_iv, mat_iv, cIdx(0),
                                         cIdx(0));
        beginIfLess(b, mat_first, cIdx(plan_.physicalSubarrays));
        Value *mat = b.create(camd::kAllocMat, {bank},
                              {camd::matIdType(ctx_)})
                         ->result(0);

        auto [array_loop, array_iv] =
            beginFor(b, spec_.arraysPerMat, "array");
        Value *array_first =
            physicalSubId(b, bank_iv, mat_iv, array_iv, cIdx(0));
        beginIfLess(b, array_first, cIdx(plan_.physicalSubarrays));
        Value *array = b.create(camd::kAllocArray, {mat},
                                {camd::arrayIdType(ctx_)})
                           ->result(0);

        auto [sub_loop, sub_iv] =
            beginFor(b, spec_.subarraysPerArray, "subarray");
        Value *phys = physicalSubId(b, bank_iv, mat_iv, array_iv, sub_iv);
        beginIfLess(b, phys, cIdx(plan_.physicalSubarrays));
        Value *sub_handle = b.create(camd::kAllocSubarray, {array},
                                     {camd::subarrayIdType(ctx_)})
                                ->result(0);

        // Statically unrolled batches (selective-search packing).
        for (std::int64_t batch = 0; batch < plan_.batchesPerSubarray;
             ++batch) {
            Value *tile = add(
                b, mul(b, phys, cIdx(plan_.batchesPerSubarray)),
                cIdx(batch));
            Operation *guard =
                beginIfLess(b, tile, cIdx(plan_.logicalTiles));
            TileGeom geom = tileGeometry(b, tile);
            Value *slice =
                subview2d(b, storedMem_, geom.rowOff, geom.colOff,
                          geom.rowsHere, geom.colsHere, ctx_.f32());
            b.create(camd::kWriteValue, {sub_handle, slice}, {},
                     {{"row_offset",
                       Attribute(batch * plan_.batchRows)}});
            b.setInsertionPointAfter(guard);
        }

        (void)mat_loop;
        (void)array_loop;
        (void)sub_loop;
        // Mark the whole setup nest: it programs the device once per
        // session and is skipped when a query re-enters the kernel.
        bank_loop->setAttr(camd::kPhaseAttr, Attribute(camd::kPhaseSetup));
        builder_.setInsertionPointAfter(bank_loop);
    }

    //
    // Phase 2: per-query search across the hierarchy.
    //
    void
    emitQueryLoop()
    {
        OpBuilder b = builder_;
        auto [q_loop, q_iv] = beginFor(b, q_, "query");
        q_loop->setAttr(camd::kPhaseAttr, Attribute(camd::kPhaseQuery));

        bool bank_par = spec_.bankMode == arch::AccessMode::Parallel;
        bool mat_par = spec_.matMode == arch::AccessMode::Parallel;
        bool array_par = spec_.arrayMode == arch::AccessMode::Parallel;

        auto [bank_loop, bank_iv] =
            beginLoop(b, plan_.banks, "bank", bank_par);
        auto [mat_loop, mat_iv] =
            beginLoop(b, spec_.matsPerBank, "mat", mat_par);
        auto [array_loop, array_iv] =
            beginLoop(b, spec_.arraysPerMat, "array", array_par);

        // Subarray level: base -> parallel; power -> sequential or
        // chunked (maxActiveSubarrays active at a time).
        int max_active = spec_.maxActiveSubarrays;
        bool sub_par = spec_.subarrayMode == arch::AccessMode::Parallel &&
                       (max_active == 0 ||
                        max_active >= spec_.subarraysPerArray);
        Value *sub_iv = nullptr;
        Operation *outer_sub_loop = nullptr;
        if (sub_par || max_active <= 1) {
            auto [loop, iv] = beginLoop(b, spec_.subarraysPerArray,
                                        "subarray", sub_par);
            outer_sub_loop = loop;
            sub_iv = iv;
        } else {
            // Chunked: sequential over ceil(S/k) chunks, parallel inside.
            std::int64_t chunks =
                ceilDiv(spec_.subarraysPerArray, max_active);
            auto [chunk_loop, chunk_iv] =
                beginFor(b, chunks, "subarray_chunk");
            outer_sub_loop = chunk_loop;
            auto [inner_loop, inner_iv] =
                beginLoop(b, max_active, "subarray", true);
            (void)inner_loop;
            sub_iv = add(b, mul(b, chunk_iv, cIdx(max_active)), inner_iv);
            Operation *bound_guard =
                beginIfLess(b, sub_iv, cIdx(spec_.subarraysPerArray));
            (void)bound_guard;
        }

        Value *phys = physicalSubId(b, bank_iv, mat_iv, array_iv, sub_iv);
        beginIfLess(b, phys, cIdx(plan_.physicalSubarrays));
        Value *sub_handle =
            b.create(camd::kGetSubarray,
                     {bank_iv, mat_iv, array_iv, sub_iv},
                     {camd::subarrayIdType(ctx_)})
                ->result(0);

        // Batches are searched in sequential cycles (selective search).
        for (std::int64_t batch = 0; batch < plan_.batchesPerSubarray;
             ++batch) {
            Value *tile =
                add(b, mul(b, phys, cIdx(plan_.batchesPerSubarray)),
                    cIdx(batch));
            Operation *guard =
                beginIfLess(b, tile, cIdx(plan_.logicalTiles));
            TileGeom geom = tileGeometry(b, tile);

            Value *qslice = subview2d(b, queryMem_, q_iv, geom.colOff,
                                      cIdx(1), geom.colsHere, ctx_.f32());
            Value *row_begin = cIdx(batch * plan_.batchRows);
            Value *row_end = add(b, row_begin, geom.rowsHere);
            Operation::AttrMap search_attrs = {
                {"kind", Attribute(camd::kKindBest)},
                {"metric", Attribute(metric_ == cimd::kMetricEucl
                                         ? camd::kMetricEucl
                                         : camd::kMetricHamming)}};
            if (spec_.selectiveSearch)
                search_attrs["selective"] = Attribute();
            b.create(camd::kSearch,
                     {sub_handle, qslice, row_begin, row_end}, {},
                     std::move(search_attrs));
            Operation *read =
                b.create(camd::kRead, {sub_handle},
                         {ctx_.memrefType({0}, ctx_.f32()),
                          ctx_.memrefType({0}, ctx_.i64())},
                         {{"kind", Attribute(camd::kKindBest)}});

            Value *acc = subview2d(b, distMem_, q_iv, geom.rowOff,
                                   cIdx(1), geom.rowsHere, ctx_.f32());
            b.create(camd::kMergePartialSubarray,
                     {sub_handle, acc, read->result(0)},
                     {ctx_.memrefType({0, 0}, ctx_.f32())},
                     {{"what", Attribute("values")},
                      {"direction", Attribute("horizontal")}});
            b.setInsertionPointAfter(guard);
        }

        (void)mat_loop;
        (void)array_loop;
        (void)outer_sub_loop;

        // After the hierarchy nest (still per query): final top-k.
        b.setInsertionPointAfter(bank_loop);
        Value *dist_row = subview2d(b, distMem_, q_iv, cIdx(0), cIdx(1),
                                    cIdx(n_), ctx_.f32());
        // Accumulated CAM values are distances (hamming for dot-encoded
        // binary data, squared euclidean otherwise): smaller is better.
        Operation *topk = b.create(
            cimd::kTopk, {dist_row},
            {ctx_.memrefType({1, k_}, ctx_.f32()),
             ctx_.memrefType({1, k_}, ctx_.i64())},
            {{"k", Attribute(k_)}, {"largest", Attribute(false)}});
        Value *out_v = subview2d(b, outValues_, q_iv, cIdx(0), cIdx(1),
                                 cIdx(k_), ctx_.f32());
        Value *out_i = subview2d(b, outIndices_, q_iv, cIdx(0), cIdx(1),
                                 cIdx(k_), ctx_.i64());
        b.create("memref.copy", {topk->result(0), out_v}, {});
        b.create("memref.copy", {topk->result(1), out_i}, {});

        builder_.setInsertionPointAfter(q_loop);
    }

    void
    rewireAndErase()
    {
        OpBuilder &b = builder_;
        Type values_t = ctx_.tensorType({q_, k_}, ctx_.f32());
        Type indices_t = ctx_.tensorType({q_, k_}, ctx_.f32());
        Value *values_tensor =
            b.create("bufferization.to_tensor", {outValues_}, {values_t})
                ->result(0);
        Value *indices_tensor =
            b.create("bufferization.to_tensor", {outIndices_},
                     {indices_t})
                ->result(0);

        Operation *old_yield = cimd::executeBody(kernel_.execute)->back();
        for (std::size_t i = 0; i < kernel_.execute->numResults(); ++i) {
            Value *yielded = old_yield->operand(i);
            C4CAM_ASSERT(yielded->definingOp() == kernel_.similarity,
                         "mapped execute must yield similarity results");
            Value *replacement = yielded->index() == 0 ? values_tensor
                                                       : indices_tensor;
            kernel_.execute->result(i)->replaceAllUsesWith(replacement);
        }
        kernel_.release->dropAllReferences();
        kernel_.release->erase();
        kernel_.execute->dropAllReferences();
        kernel_.execute->erase();
        kernel_.acquire->dropAllReferences();
        kernel_.acquire->erase();
    }

    Context &ctx_;
    const arch::ArchSpec &spec_;
    Kernel kernel_;
    OpBuilder builder_;
    OpBuilder constBuilder_{ctx_};
    MappingPlan plan_;

    std::string metric_;
    Value *stored_ = nullptr;
    Value *query_ = nullptr;
    std::int64_t n_ = 0;
    std::int64_t d_ = 0;
    std::int64_t q_ = 0;
    std::int64_t k_ = 1;

    Value *storedMem_ = nullptr;
    Value *queryMem_ = nullptr;
    Value *distMem_ = nullptr;
    Value *outValues_ = nullptr;
    Value *outIndices_ = nullptr;

    std::map<std::int64_t, Value *> constants_;
};

} // namespace

MappingPlan
MappingPlan::compute(const arch::ArchSpec &spec, std::int64_t queries,
                     std::int64_t n, std::int64_t d)
{
    MappingPlan plan;
    plan.queries = queries;
    plan.storedRows = n;
    plan.featureDim = d;
    plan.batchRows = std::min<std::int64_t>(n, spec.rows);
    plan.rowTiles = ceilDiv(n, spec.rows);
    plan.colTiles = ceilDiv(d, spec.cols);
    plan.logicalTiles = plan.rowTiles * plan.colTiles;
    plan.batchesPerSubarray = 1;
    if (spec.selectiveSearch && plan.batchRows < spec.rows)
        plan.batchesPerSubarray =
            std::max<std::int64_t>(1, spec.rows / plan.batchRows);
    plan.physicalSubarrays =
        ceilDiv(plan.logicalTiles, plan.batchesPerSubarray);
    std::int64_t per_bank = spec.subarraysPerBank();
    plan.banks = spec.numBanks > 0
                     ? spec.numBanks
                     : ceilDiv(plan.physicalSubarrays, per_bank);
    return plan;
}

void
CamMappingPass::run(Module &module)
{
    std::vector<Kernel> kernels = collectKernels(module);
    C4CAM_CHECK(!kernels.empty(),
                "cam-map: no fused cim.similarity kernel found (run "
                "torch-to-cim, cim-fuse-ops and cim-similarity-match "
                "first)");
    for (Kernel &kernel : kernels) {
        KernelMapper mapper(module.context(), spec_, kernel);
        plan_ = mapper.map();
    }
}

} // namespace c4cam::passes
