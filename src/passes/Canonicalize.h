#ifndef C4CAM_PASSES_CANONICALIZE_H
#define C4CAM_PASSES_CANONICALIZE_H

/**
 * @file
 * Canonicalization: constant folding, algebraic simplification, common
 * constant de-duplication and dead-code elimination.
 *
 * Runs as a cleanup after the structural lowerings; keeps generated
 * modules (especially the density-unrolled cam mappings) small before
 * interpretation.
 */

#include "ir/Pass.h"

namespace c4cam::passes {

/**
 * Folds arith expressions over constants, de-duplicates identical
 * arith.constant ops per block, and erases side-effect-free ops whose
 * results are unused.
 */
class CanonicalizePass : public ir::Pass
{
  public:
    std::string name() const override { return "canonicalize"; }
    void run(ir::Module &module) override;

    /** Ops removed (folded or DCE'd) in the last run. */
    int removed() const { return removed_; }

  private:
    int removed_ = 0;
};

/** @return true when @p op_name has no observable side effects. */
bool isPure(const std::string &op_name);

} // namespace c4cam::passes

#endif // C4CAM_PASSES_CANONICALIZE_H
