#ifndef C4CAM_PASSES_CIMPARTITION_H
#define C4CAM_PASSES_CIMPARTITION_H

/**
 * @file
 * Compulsory partitioning (paper §III-D1, Fig. 5d).
 *
 * Kernels usually exceed one processing element (a CAM subarray), so the
 * cim-level similarity is tiled along the feature dimension into
 * device-compatible column slices. Each slice computes a partial
 * similarity; cim.merge_partial accumulates them; one final cim.topk
 * produces the kernel result. Tiling is hardware-agnostic -- only the
 * subarray column count is consumed from the spec; hierarchy placement
 * happens later in cam-map.
 */

#include "arch/ArchSpec.h"
#include "ir/Pass.h"

namespace c4cam::passes {

/** Tiles cim.similarity ops to the subarray width of @p spec. */
class CimPartitionPass : public ir::Pass
{
  public:
    explicit CimPartitionPass(arch::ArchSpec spec) : spec_(std::move(spec))
    {}

    std::string name() const override { return "cim-partition"; }
    void run(ir::Module &module) override;

  private:
    arch::ArchSpec spec_;
};

} // namespace c4cam::passes

#endif // C4CAM_PASSES_CIMPARTITION_H
