#include "runtime/OpSupport.h"

#include <algorithm>

#include "dialects/cam/CamDialect.h"
#include "dialects/cim/CimDialect.h"
#include "dialects/torch/TorchDialect.h"
#include "ir/IR.h"
#include "support/Error.h"

namespace c4cam::rt {

namespace camd = c4cam::dialects::cam;
namespace cimd = c4cam::dialects::cim;
namespace torchd = c4cam::dialects::torch;

const std::vector<std::string> &
knownOpMnemonics()
{
    static const std::vector<std::string> known = {
        "arith.constant", "arith.index_cast", "arith.fptosi",
        "arith.sitofp", "arith.select", "arith.cmpi", "arith.cmpf",
        "arith.addi", "arith.subi", "arith.muli", "arith.divsi",
        "arith.remsi", "arith.minsi", "arith.maxsi", "arith.addf",
        "arith.subf", "arith.mulf", "arith.divf", "arith.minimumf",
        "arith.maximumf", "math.sqrt",
        "scf.for", "scf.parallel", "scf.if", "scf.yield",
        "memref.alloc", "memref.dealloc", "memref.copy",
        "memref.subview", "memref.load", "memref.store",
        "tensor.extract_slice", "tensor.empty",
        "bufferization.to_memref", "bufferization.to_tensor",
        "func.return",
        torchd::kTranspose, torchd::kMm, torchd::kMatmul, torchd::kSub,
        torchd::kDiv, torchd::kNorm, torchd::kTopk,
        cimd::kAcquire, cimd::kRelease, cimd::kExecute, cimd::kYield,
        cimd::kTranspose, cimd::kMatmul, cimd::kSub, cimd::kNorm,
        cimd::kDiv, cimd::kTopk, cimd::kSimilarity, cimd::kMergePartial,
        camd::kAllocBank, camd::kAllocMat, camd::kAllocArray,
        camd::kAllocSubarray, camd::kGetSubarray, camd::kWriteValue,
        camd::kSearch, camd::kRead, camd::kMergePartialSubarray,
    };
    return known;
}

namespace {

/** Classic Levenshtein distance (both strings are short mnemonics). */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1);
    std::vector<std::size_t> curr(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        curr[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, sub});
        }
        std::swap(prev, curr);
    }
    return prev[b.size()];
}

/** sym_name of the func.func enclosing @p op, or empty. */
std::string
enclosingFunctionName(ir::Operation *op)
{
    for (ir::Operation *parent = op; parent; parent = parent->parentOp())
        if (parent->name() == ir::kFuncOpName)
            return parent->strAttrOr("sym_name", "");
    return "";
}

} // namespace

std::string
nearestKnownMnemonic(const std::string &name)
{
    std::string best;
    std::size_t best_dist = name.size() / 2 + 1;
    for (const std::string &candidate : knownOpMnemonics()) {
        std::size_t dist = editDistance(name, candidate);
        if (dist < best_dist) {
            best_dist = dist;
            best = candidate;
        }
    }
    return best;
}

void
throwUnknownOp(const char *backend, ir::Operation *op)
{
    std::ostringstream oss;
    oss << backend << ": unsupported op '" << op->name() << "'";
    std::string func = enclosingFunctionName(op);
    if (!func.empty())
        oss << " in function '" << func << "'";
    std::string nearest = nearestKnownMnemonic(op->name());
    if (!nearest.empty())
        oss << "; did you mean '" << nearest << "'?";
    C4CAM_USER_ERROR(oss.str());
}

} // namespace c4cam::rt
