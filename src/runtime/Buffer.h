#ifndef C4CAM_RUNTIME_BUFFER_H
#define C4CAM_RUNTIME_BUFFER_H

/**
 * @file
 * Runtime data values: strided buffers (memrefs/tensors) and scalars.
 *
 * A Buffer is a view (shape + strides + offset) onto shared storage, so
 * memref.subview / tensor.extract_slice are O(1) aliases, exactly like
 * MLIR's memref descriptors.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "support/Error.h"

namespace c4cam::rt {

/** Element type of a buffer. */
enum class DType { F32, I64 };

/**
 * A strided view onto shared dense storage.
 */
class Buffer
{
  public:
    /** Allocate a zero-initialized buffer with row-major layout. */
    static std::shared_ptr<Buffer> alloc(DType dtype,
                                         std::vector<std::int64_t> shape);

    /** Allocate a rank-2 f32 buffer from nested init data. */
    static std::shared_ptr<Buffer>
    fromMatrix(const std::vector<std::vector<float>> &rows);

    DType dtype() const { return dtype_; }
    const std::vector<std::int64_t> &shape() const { return shape_; }
    std::size_t rank() const { return shape_.size(); }

    std::int64_t
    numElements() const
    {
        std::int64_t n = 1;
        for (auto d : shape_)
            n *= d;
        return n;
    }

    /** Element read as double (converts I64 transparently). */
    double at(const std::vector<std::int64_t> &index) const;

    /** Element write from double. */
    void set(const std::vector<std::int64_t> &index, double value);

    /** Integer element accessors. */
    std::int64_t atInt(const std::vector<std::int64_t> &index) const;
    void setInt(const std::vector<std::int64_t> &index, std::int64_t value);

    /**
     * Create an O(1) sub-view: @p offsets/@p sizes per dimension
     * (strides stay those of this view).
     */
    std::shared_ptr<Buffer> subview(const std::vector<std::int64_t> &offsets,
                                    const std::vector<std::int64_t> &sizes)
        const;

    /** Deep-copy @p src into this view (shapes must match). */
    void copyFrom(const Buffer &src);

    /** Fill every element with @p value. */
    void fill(double value);

    /**
     * Overwrite this view's elements (row-major order) from @p flat;
     * sizes must match. The flat-vector counterpart of copyFrom for
     * views whose shapes differ but element counts agree.
     */
    void copyFromFlat(const std::vector<double> &flat);

    /** Elementwise accumulate @p flat into this view (row-major). */
    void addFromFlat(const std::vector<double> &flat);

    /** Flatten this view into a dense row-major vector of doubles. */
    std::vector<double> toVector() const;

    /** toVector into a caller-owned vector (capacity is reused). */
    void readInto(std::vector<double> &out) const;

    /** True when the view's elements are dense in row-major order. */
    bool isContiguous() const;

    /** Rank-2 view flattened into rows of floats (for CAM writes). */
    std::vector<std::vector<float>> toMatrix() const;

    /** Short debug rendering: dtype, shape and first elements. */
    std::string str() const;

  private:
    /** make_shared access token (keeps construction factory-only). */
    struct Private
    {
        explicit Private() = default;
    };

    /** One-allocation creation (object + control block fused). */
    static std::shared_ptr<Buffer> create();

    std::int64_t linearIndex(const std::vector<std::int64_t> &index) const;

    /** Row-major visit of every element's storage slot. */
    template <typename Fn> void forEachLinear(Fn &&fn) const;

  public:
    explicit Buffer(Private) {}

  private:

    DType dtype_ = DType::F32;
    std::vector<std::int64_t> shape_;
    std::vector<std::int64_t> strides_;
    std::int64_t offset_ = 0;
    std::shared_ptr<std::vector<double>> storage_;
};

using BufferPtr = std::shared_ptr<Buffer>;

/**
 * Any value an interpreter register can hold: an integer (covers index /
 * i1 / i64 / device handles), a float, or a buffer.
 */
class RtValue
{
  public:
    RtValue() : v_(std::int64_t(0)) {}
    explicit RtValue(std::int64_t i) : v_(i) {}
    explicit RtValue(double d) : v_(d) {}
    explicit RtValue(BufferPtr b) : v_(std::move(b)) {}

    bool isInt() const { return std::holds_alternative<std::int64_t>(v_); }
    bool isFloat() const { return std::holds_alternative<double>(v_); }
    bool isBuffer() const { return std::holds_alternative<BufferPtr>(v_); }

    std::int64_t
    asInt() const
    {
        C4CAM_ASSERT(isInt(), "runtime value is not an integer");
        return std::get<std::int64_t>(v_);
    }

    double
    asFloat() const
    {
        if (isInt())
            return static_cast<double>(std::get<std::int64_t>(v_));
        C4CAM_ASSERT(isFloat(), "runtime value is not a float");
        return std::get<double>(v_);
    }

    const BufferPtr &
    asBuffer() const
    {
        C4CAM_ASSERT(isBuffer(), "runtime value is not a buffer");
        return std::get<BufferPtr>(v_);
    }

    /// @name In-place scalar stores
    /// Replay-loop fast path for the fused superops: a type-stable
    /// scalar slot (the overwhelmingly common case in a loop) takes a
    /// predicted branch + direct store instead of the construct /
    /// move-assign / destroy dance of `slot = RtValue(...)`.
    /// @{
    void
    setInt(std::int64_t i)
    {
        if (auto *p = std::get_if<std::int64_t>(&v_))
            *p = i;
        else
            v_.emplace<std::int64_t>(i);
    }

    void
    setFloat(double d)
    {
        if (auto *p = std::get_if<double>(&v_))
            *p = d;
        else
            v_.emplace<double>(d);
    }
    /// @}

  private:
    std::variant<std::int64_t, double, BufferPtr> v_;
};

/** Wrap kernel argument buffers as interpreter values. */
std::vector<RtValue> toRtValues(const std::vector<BufferPtr> &args);

} // namespace c4cam::rt

#endif // C4CAM_RUNTIME_BUFFER_H
