#ifndef C4CAM_RUNTIME_HOSTKERNELS_H
#define C4CAM_RUNTIME_HOSTKERNELS_H

/**
 * @file
 * Host tensor kernels shared by the tree-walking interpreter and the
 * execution-plan replay engine.
 *
 * These implement the functional semantics of the torch/cim tensor ops
 * (the paper's host reference path). They are pure functions of their
 * inputs -- safe to call from any thread -- and both execution back
 * ends dispatch into the same implementations, so the plan replay
 * cannot drift numerically from the tree walk.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/Buffer.h"

namespace c4cam::rt::host {

/** Transpose of a rank-2 tensor. */
BufferPtr transpose2d(const BufferPtr &in);

/** Rank-2 matrix product (f32 accumulate in double). */
BufferPtr matmul(const BufferPtr &a, const BufferPtr &b);

/**
 * Elementwise subtraction with the KNN broadcast form:
 * same-shape a-b, or (QxD) - (NxD) -> QxNxD.
 */
BufferPtr subBroadcast(const BufferPtr &a, const BufferPtr &b);

/** Elementwise division of two same-element-count tensors. */
BufferPtr elementwiseDiv(const BufferPtr &a, const BufferPtr &b);

/** L-p norm (p in {1, 2}) over the last dimension. */
BufferPtr normLastDim(const BufferPtr &in, int p);

/** Top-k along the last dim. @return {values, indices}. */
std::pair<BufferPtr, BufferPtr> topk(const BufferPtr &in, std::int64_t k,
                                     bool largest);

/**
 * Fresh I64 buffer: every element of @p in plus @p offset. The
 * sharding layer uses this to remap a shard's row-local topk indices
 * into the global stored-vector axis (global = local + slice.begin).
 * Exact for |value + offset| < 2^53 (buffer storage is double).
 */
BufferPtr offsetIndices(const BufferPtr &in, std::int64_t offset);

/** Elementwise sum of two same-element-count tensors (merge partial). */
BufferPtr elementwiseAdd(const BufferPtr &a, const BufferPtr &b);

/** Cosine renormalization: m[q][n] / (qn[q] * sn[n] + 1e-12). */
BufferPtr cosineDiv(const BufferPtr &m, const BufferPtr &qn,
                    const BufferPtr &sn);

/**
 * Element-count-preserving copy of @p src into @p dst (shapes may
 * differ, e.g. 1xN row views vs N vectors). @p what names the op for
 * the size-mismatch diagnostic.
 */
void copyInto(const BufferPtr &src, const BufferPtr &dst,
              const char *what = "memref.copy");

/**
 * In-place elementwise accumulate @p partial into @p acc (flattened,
 * row-major over acc's shape). @p what names the op for diagnostics.
 */
void addInto(const BufferPtr &acc, const BufferPtr &partial,
             const char *what = "cam.merge_partial_subarray");

} // namespace c4cam::rt::host

#endif // C4CAM_RUNTIME_HOSTKERNELS_H
