/**
 * @file
 * ExecutionPlan bytecode passes: constant folding, loop-invariant
 * subview hoisting, superop fusion, dead-slot elimination + frame
 * compaction, and the plan disassembler.
 *
 * Invariants every pass preserves (this is what keeps optimized plans
 * bit-identical to unoptimized plans and the tree walk, including the
 * simulated PerfReports):
 *
 *  - device ops (Cam*, CimAcquire), timing scopes (Begin*Scope /
 *    EndScope) and cost-posting ops (TopkOp, CamMergePartialSub) are
 *    never created, removed or reordered relative to each other;
 *  - only instructions that cannot throw are eliminated or folded
 *    (DivI/RemI keep their division-by-zero diagnostics, CheckPosStep
 *    only folds when the step is provably positive);
 *  - a hoisted Subview only moves within host-pure straight-line code
 *    of a loop that provably runs at least once.
 */

#include "runtime/PlanOptimizer.h"

#include <algorithm>
#include <array>
#include <iomanip>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "runtime/ExecutionPlan.h"
#include "support/Error.h"

namespace c4cam::rt {

namespace {

using Programs = std::array<std::vector<Instr> *, 3>;

/** Per-slot compile-time constant info: a slot is constant iff every
 *  write to it, across all three phase programs, is a ConstInt with
 *  the same immediate, and it is not a function argument (run()
 *  stores the caller's args into those slots). */
struct ConstInfo
{
    std::vector<char> isConst;
    std::vector<std::int64_t> value;

    bool get(std::int32_t slot, std::int64_t *out) const
    {
        if (slot < 0 || static_cast<std::size_t>(slot) >= isConst.size() ||
            !isConst[static_cast<std::size_t>(slot)])
            return false;
        *out = value[static_cast<std::size_t>(slot)];
        return true;
    }
};

ConstInfo
analyzeConsts(const Programs &progs,
              const std::vector<std::int32_t> &arg_slots,
              std::int32_t num_slots)
{
    ConstInfo info;
    info.isConst.assign(static_cast<std::size_t>(num_slots), 0);
    info.value.assign(static_cast<std::size_t>(num_slots), 0);
    std::vector<char> conflicted(static_cast<std::size_t>(num_slots), 0);
    auto writeNonConst = [&](std::int32_t slot) {
        if (slot < 0)
            return;
        conflicted[static_cast<std::size_t>(slot)] = 1;
        info.isConst[static_cast<std::size_t>(slot)] = 0;
    };
    for (std::int32_t slot : arg_slots)
        writeNonConst(slot);
    for (const std::vector<Instr> *prog : progs) {
        for (const Instr &in : *prog) {
            if (in.op == Opcode::ConstInt && in.r >= 0) {
                std::size_t r = static_cast<std::size_t>(in.r);
                if (conflicted[r])
                    continue;
                if (!info.isConst[r]) {
                    info.isConst[r] = 1;
                    info.value[r] = in.imm;
                } else if (info.value[r] != in.imm) {
                    writeNonConst(in.r);
                }
                continue;
            }
            writeNonConst(in.r);
            writeNonConst(in.r2);
        }
    }
    return info;
}

bool
evalCmpIPred(std::int64_t a, std::int64_t b, std::int64_t pred)
{
    switch (static_cast<CmpIPred>(pred)) {
      case CmpIPred::Eq:
        return a == b;
      case CmpIPred::Ne:
        return a != b;
      case CmpIPred::Slt:
        return a < b;
      case CmpIPred::Sle:
        return a <= b;
      case CmpIPred::Sgt:
        return a > b;
      case CmpIPred::Sge:
        return a >= b;
    }
    return false;
}

/** Fold one integer binop; false when the op is not foldable or would
 *  change runtime diagnostics (division by zero, INT64_MIN / -1). */
bool
evalIntBinop(Opcode op, std::int64_t a, std::int64_t b, std::int64_t *out)
{
    switch (op) {
      case Opcode::AddI:
        *out = a + b;
        return true;
      case Opcode::SubI:
        *out = a - b;
        return true;
      case Opcode::MulI:
        *out = a * b;
        return true;
      case Opcode::MinI:
        *out = std::min(a, b);
        return true;
      case Opcode::MaxI:
        *out = std::max(a, b);
        return true;
      case Opcode::DivI:
        if (b == 0 ||
            (a == std::numeric_limits<std::int64_t>::min() && b == -1))
            return false;
        *out = a / b;
        return true;
      case Opcode::RemI:
        if (b == 0 ||
            (a == std::numeric_limits<std::int64_t>::min() && b == -1))
            return false;
        *out = a % b;
        return true;
      default:
        return false;
    }
}

void
rewriteToConstInt(Instr &in, std::int64_t value)
{
    Instr out;
    out.op = Opcode::ConstInt;
    out.r = in.r;
    out.imm = value;
    in = out;
}

void
rewriteToJump(Instr &in)
{
    Instr out;
    out.op = Opcode::Jump;
    out.target = in.target;
    in = out;
}

void
rewriteToNop(Instr &in)
{
    in = Instr{};
    in.op = Opcode::Nop;
}

/** Remove Nop placeholders; branch targets pointing at a removed
 *  instruction are redirected to the next surviving one. */
int
compactNops(std::vector<Instr> &prog)
{
    std::vector<std::int32_t> map(prog.size() + 1, 0);
    std::int32_t next = 0;
    bool any = false;
    for (std::size_t i = 0; i < prog.size(); ++i) {
        map[i] = next;
        if (prog[i].op == Opcode::Nop)
            any = true;
        else
            ++next;
    }
    map[prog.size()] = next;
    if (!any)
        return 0;
    std::vector<Instr> out;
    out.reserve(static_cast<std::size_t>(next));
    for (Instr &in : prog) {
        if (in.op == Opcode::Nop)
            continue;
        if (in.target >= 0)
            in.target = map[static_cast<std::size_t>(in.target)];
        out.push_back(std::move(in));
    }
    int removed = static_cast<int>(prog.size() - out.size());
    prog = std::move(out);
    return removed;
}

bool
isBranching(Opcode op)
{
    switch (op) {
      case Opcode::Jump:
      case Opcode::BranchIfFalse:
      case Opcode::BranchIfGe:
      case Opcode::Return:
      case Opcode::Halt:
      case Opcode::FusedCmpBranch:
      case Opcode::FusedAddJump:
        return true;
      default:
        return false;
    }
}

bool
isIntPairOp(Opcode op)
{
    return op == Opcode::AddI || op == Opcode::SubI ||
           op == Opcode::MulI || op == Opcode::MinI || op == Opcode::MaxI;
}

bool
isFloatPairOp(Opcode op)
{
    return op == Opcode::AddF || op == Opcode::SubF ||
           op == Opcode::MulF || op == Opcode::DivF ||
           op == Opcode::MinF || op == Opcode::MaxF;
}

/** Dense IntSub code for a fusable int opcode (isIntPairOp holds). */
std::int64_t
intSubCode(Opcode op)
{
    switch (op) {
      case Opcode::AddI:
        return static_cast<std::int64_t>(IntSub::Add);
      case Opcode::SubI:
        return static_cast<std::int64_t>(IntSub::Sub);
      case Opcode::MulI:
        return static_cast<std::int64_t>(IntSub::Mul);
      case Opcode::MinI:
        return static_cast<std::int64_t>(IntSub::Min);
      default:
        return static_cast<std::int64_t>(IntSub::Max);
    }
}

/** Dense FloatSub code for a fusable float opcode. */
std::int64_t
floatSubCode(Opcode op)
{
    switch (op) {
      case Opcode::AddF:
        return static_cast<std::int64_t>(FloatSub::Add);
      case Opcode::SubF:
        return static_cast<std::int64_t>(FloatSub::Sub);
      case Opcode::MulF:
        return static_cast<std::int64_t>(FloatSub::Mul);
      case Opcode::DivF:
        return static_cast<std::int64_t>(FloatSub::Div);
      case Opcode::MinF:
        return static_cast<std::int64_t>(FloatSub::Min);
      default:
        return static_cast<std::int64_t>(FloatSub::Max);
    }
}

/** Instructions safe to delete when their results are never read: no
 *  device/cost side effects, no control flow, cannot throw. */
bool
isPure(Opcode op)
{
    switch (op) {
      case Opcode::ConstInt:
      case Opcode::ConstFloat:
      case Opcode::Copy:
      case Opcode::CastToInt:
      case Opcode::CastToFloat:
      case Opcode::Sqrt:
      case Opcode::Select:
      case Opcode::CmpI:
      case Opcode::CmpF:
      case Opcode::AddI:
      case Opcode::SubI:
      case Opcode::MulI:
      case Opcode::MinI:
      case Opcode::MaxI:
      case Opcode::AddF:
      case Opcode::SubF:
      case Opcode::MulF:
      case Opcode::DivF:
      case Opcode::MinF:
      case Opcode::MaxF:
      case Opcode::AllocBuf:
      case Opcode::FusedIntPair:  // sub-ops restricted to the pure set
      case Opcode::FusedFloatPair:
      case Opcode::FusedCopyPair:
        return true;
      default:
        return false;
    }
}

} // namespace

//
// Pass 1: constant folding
//

int
PlanOptimizer::runConstantFolding(ExecutionPlan &plan)
{
    Programs progs = {&plan.full_, &plan.setup_, &plan.query_};
    int folded = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        ConstInfo consts = analyzeConsts(
            {progs[0], progs[1], progs[2]}, plan.argSlots_, plan.numSlots_);
        for (std::vector<Instr> *prog : progs) {
            for (Instr &in : *prog) {
                std::int64_t a = 0;
                std::int64_t b = 0;
                switch (in.op) {
                  case Opcode::AddI:
                  case Opcode::SubI:
                  case Opcode::MulI:
                  case Opcode::DivI:
                  case Opcode::RemI:
                  case Opcode::MinI:
                  case Opcode::MaxI: {
                    std::int64_t v = 0;
                    if (consts.get(in.a, &a) && consts.get(in.b, &b) &&
                        evalIntBinop(in.op, a, b, &v)) {
                        rewriteToConstInt(in, v);
                        changed = true;
                        ++folded;
                    }
                    break;
                  }
                  case Opcode::CmpI:
                    if (consts.get(in.a, &a) && consts.get(in.b, &b)) {
                        rewriteToConstInt(
                            in, evalCmpIPred(a, b, in.imm) ? 1 : 0);
                        changed = true;
                        ++folded;
                    }
                    break;
                  case Opcode::Select:
                    if (consts.get(in.a, &a)) {
                        std::int32_t src = a != 0 ? in.b : in.c;
                        Instr out;
                        out.op = Opcode::Copy;
                        out.a = src;
                        out.r = in.r;
                        in = out;
                        changed = true;
                        ++folded;
                    }
                    break;
                  case Opcode::CheckPosStep:
                    if (consts.get(in.a, &a) && a > 0) {
                        rewriteToNop(in);
                        changed = true;
                        ++folded;
                    }
                    break;
                  case Opcode::BranchIfFalse:
                    if (consts.get(in.a, &a)) {
                        if (a == 0)
                            rewriteToJump(in);
                        else
                            rewriteToNop(in);
                        changed = true;
                        ++folded;
                    }
                    break;
                  case Opcode::BranchIfGe:
                    if (consts.get(in.a, &a) && consts.get(in.b, &b)) {
                        if (a >= b)
                            rewriteToJump(in);
                        else
                            rewriteToNop(in);
                        changed = true;
                        ++folded;
                    }
                    break;
                  default:
                    break;
                }
            }
        }
        if (changed)
            for (std::vector<Instr> *prog : progs)
                compactNops(*prog);
    }
    return folded;
}

//
// Pass 2: loop-invariant subview hoisting
//

int
PlanOptimizer::runSubviewHoisting(ExecutionPlan &plan)
{
    Programs progs = {&plan.full_, &plan.setup_, &plan.query_};
    int hoisted = 0;
    for (std::vector<Instr> *prog_ptr : progs) {
        std::vector<Instr> &prog = *prog_ptr;
        bool changed = true;
        while (changed) {
            changed = false;
            ConstInfo consts = analyzeConsts(
                {progs[0], progs[1], progs[2]}, plan.argSlots_,
                plan.numSlots_);
            std::unordered_set<std::int32_t> targets;
            for (const Instr &in : prog)
                if (in.target >= 0)
                    targets.insert(in.target);
            for (std::size_t j = 0; j < prog.size() && !changed; ++j) {
                const Instr &back = prog[j];
                // A backward Jump is a loop back-edge; its target is
                // the loop-head bounds check.
                if (back.op != Opcode::Jump || back.target < 0 ||
                    static_cast<std::size_t>(back.target) >= j)
                    continue;
                std::size_t h = static_cast<std::size_t>(back.target);
                const Instr &head = prog[h];
                if (head.op != Opcode::BranchIfGe || h == 0)
                    continue;
                // The loop must be entered by falling into the head
                // (otherwise the trip-count reasoning below is void).
                std::size_t head_preds = 0;
                for (const Instr &in : prog)
                    if (in.target == static_cast<std::int32_t>(h))
                        ++head_preds;
                if (head_preds != 1)
                    continue;
                // Guaranteed >= 1 trip: iv is initialized right before
                // the head from a constant lower bound, the upper
                // bound is constant, and lb < ub. (PlanBuilder always
                // emits `Copy lb -> iv` at head-1; CheckPosStep has
                // already guaranteed a positive step.)
                std::int64_t lb = 0;
                std::int64_t ub = 0;
                if (!consts.get(head.b, &ub))
                    continue;
                const Instr &init = prog[h - 1];
                if (init.r != head.a)
                    continue;
                if (init.op == Opcode::Copy) {
                    if (!consts.get(init.a, &lb))
                        continue;
                } else if (init.op == Opcode::ConstInt) {
                    lb = init.imm;
                } else {
                    continue;
                }
                if (lb >= ub)
                    continue;
                // Slots written anywhere in the loop body.
                std::vector<char> written(
                    static_cast<std::size_t>(plan.numSlots_), 0);
                for (std::size_t i = h; i <= j; ++i) {
                    if (prog[i].r >= 0)
                        written[static_cast<std::size_t>(prog[i].r)] = 1;
                    if (prog[i].r2 >= 0)
                        written[static_cast<std::size_t>(prog[i].r2)] = 1;
                }
                // Scan the straight-line prefix of the body: every
                // instruction here executes on every iteration, so a
                // Subview with loop-invariant operands can move above
                // the head. Stop at the first branch or branch target
                // (conditionally-executed code must not be hoisted: a
                // guard may be protecting the slice bounds).
                for (std::size_t i = h + 1; i < j; ++i) {
                    const Instr &in = prog[i];
                    if (isBranching(in.op) ||
                        targets.count(static_cast<std::int32_t>(i)))
                        break;
                    if (in.op != Opcode::Subview)
                        continue;
                    bool invariant =
                        in.a >= 0 &&
                        !written[static_cast<std::size_t>(in.a)];
                    const ExecutionPlan::SliceSpec &spec =
                        plan.slices_[static_cast<std::size_t>(in.aux)];
                    auto checkDims =
                        [&](const std::vector<ExecutionPlan::SliceDim>
                                &dims) {
                            for (const ExecutionPlan::SliceDim &dim : dims)
                                if (dim.slot >= 0 &&
                                    written[static_cast<std::size_t>(
                                        dim.slot)])
                                    invariant = false;
                        };
                    checkDims(spec.offsets);
                    checkDims(spec.sizes);
                    if (!invariant)
                        continue;
                    // The result slot must have no other writer in the
                    // body, or hoisting would change which write wins.
                    bool sole_writer = true;
                    for (std::size_t k = h; k <= j && sole_writer; ++k)
                        if (k != i && (prog[k].r == in.r ||
                                       prog[k].r2 == in.r))
                            sole_writer = false;
                    if (!sole_writer)
                        continue;
                    // Move prog[i] to position h (just above the
                    // head). Old indices [h, i) shift down by one;
                    // i itself is not a branch target (checked above).
                    for (Instr &fix : prog)
                        if (fix.target >=
                                static_cast<std::int32_t>(h) &&
                            fix.target < static_cast<std::int32_t>(i))
                            ++fix.target;
                    Instr sub = prog[i];
                    prog.erase(prog.begin() +
                               static_cast<std::ptrdiff_t>(i));
                    prog.insert(prog.begin() +
                                    static_cast<std::ptrdiff_t>(h),
                                sub);
                    ++hoisted;
                    changed = true;
                    break;
                }
            }
        }
    }
    return hoisted;
}

//
// Pass 3: superop fusion
//

int
PlanOptimizer::runSuperopFusion(ExecutionPlan &plan, int *collapsed_writes)
{
    Programs progs = {&plan.full_, &plan.setup_, &plan.query_};
    int fused = 0;
    for (std::vector<Instr> *prog_ptr : progs) {
        std::vector<Instr> &prog = *prog_ptr;
        std::unordered_set<std::int32_t> targets;
        for (const Instr &in : prog)
            if (in.target >= 0)
                targets.insert(in.target);
        std::vector<Instr> out;
        out.reserve(prog.size());
        std::vector<std::int32_t> map(prog.size() + 1, 0);
        std::size_t i = 0;
        const std::size_t n = prog.size();
        while (i < n) {
            map[i] = static_cast<std::int32_t>(out.size());
            const Instr &x = prog[i];
            // Fusing (i, i+1) is legal only when control cannot enter
            // at i+1; a jump to i runs both halves, same as before.
            if (i + 1 < n &&
                !targets.count(static_cast<std::int32_t>(i + 1))) {
                const Instr &y = prog[i + 1];
                Instr f;
                bool match = false;
                if (x.op == Opcode::CmpI &&
                    y.op == Opcode::BranchIfFalse && y.a == x.r) {
                    f.op = Opcode::FusedCmpBranch;
                    f.a = x.a;
                    f.b = x.b;
                    f.imm = x.imm;
                    f.r = x.r;
                    f.target = y.target;
                    match = true;
                } else if (x.op == Opcode::AddI && y.op == Opcode::Jump) {
                    f.op = Opcode::FusedAddJump;
                    f.a = x.a;
                    f.b = x.b;
                    f.r = x.r;
                    f.target = y.target;
                    match = true;
                } else if (x.op == Opcode::Subview &&
                           y.op == Opcode::CamSearch && y.b == x.r) {
                    f.op = Opcode::FusedSubviewSearch;
                    f.a = y.a;       // subarray handle
                    f.b = x.a;       // subview source buffer
                    f.r = x.r;       // subview result
                    f.aux = x.aux;   // slice spec
                    f.imm = y.aux;   // search spec
                    match = true;
                } else if (isIntPairOp(x.op) && isIntPairOp(y.op)) {
                    f.op = Opcode::FusedIntPair;
                    f.a = x.a;
                    f.b = x.b;
                    f.r = x.r;
                    f.c = y.a;
                    f.extra = {y.b};
                    f.r2 = y.r;
                    f.imm = intSubCode(x.op) | (intSubCode(y.op) << 8);
                    match = true;
                } else if (isFloatPairOp(x.op) && isFloatPairOp(y.op)) {
                    f.op = Opcode::FusedFloatPair;
                    f.a = x.a;
                    f.b = x.b;
                    f.r = x.r;
                    f.c = y.a;
                    f.extra = {y.b};
                    f.r2 = y.r;
                    f.imm = floatSubCode(x.op) | (floatSubCode(y.op) << 8);
                    match = true;
                } else if (x.op == Opcode::Copy && y.op == Opcode::Copy) {
                    f.op = Opcode::FusedCopyPair;
                    f.a = x.a;
                    f.r = x.r;
                    f.c = y.a;
                    f.r2 = y.r;
                    match = true;
                }
                if (match) {
                    map[i + 1] = static_cast<std::int32_t>(out.size());
                    out.push_back(std::move(f));
                    i += 2;
                    ++fused;
                    continue;
                }
            }
            out.push_back(x);
            ++i;
        }
        map[n] = static_cast<std::int32_t>(out.size());
        for (Instr &in : out)
            if (in.target >= 0)
                in.target = map[static_cast<std::size_t>(in.target)];
        prog = std::move(out);
    }

    // Chain collapse. Fusion above only merges dispatches; the frame
    // traffic of the pair is unchanged. Here op2 operands that name
    // op1's result slot switch to register forwarding (kFusedChainX/Y),
    // and results whose every reader -- across all three phase
    // programs, the aux tables and the fused op itself -- is
    // chain-internal stop being stored at all (r = -1). DSE later
    // compacts the freed slots away.
    std::vector<std::uint32_t> reads(
        static_cast<std::size_t>(plan.numSlots_), 0);
    auto count = [&](std::int32_t slot) {
        if (slot >= 0)
            ++reads[static_cast<std::size_t>(slot)];
    };
    for (std::vector<Instr> *prog : progs) {
        for (const Instr &in : *prog) {
            count(in.a);
            count(in.b);
            count(in.c);
            for (std::int32_t slot : in.extra)
                count(slot);
        }
    }
    for (const ExecutionPlan::SliceSpec &spec : plan.slices_) {
        for (const ExecutionPlan::SliceDim &dim : spec.offsets)
            count(dim.slot);
        for (const ExecutionPlan::SliceDim &dim : spec.sizes)
            count(dim.slot);
    }
    for (const ExecutionPlan::TopkSpec &spec : plan.topks_)
        count(spec.kSlot);
    for (const ExecutionPlan::SimilaritySpec &spec : plan.sims_)
        count(spec.kSlot);
    for (const ExecutionPlan::SearchSpec &spec : plan.searches_) {
        count(spec.rowBeginSlot);
        count(spec.rowEndSlot);
    }
    int collapsed = 0;
    for (std::vector<Instr> *prog : progs) {
        for (Instr &in : *prog) {
            switch (in.op) {
              case Opcode::FusedIntPair:
              case Opcode::FusedFloatPair: {
                if (in.r < 0)
                    break;
                std::uint32_t internal = 0;
                if (in.c == in.r) {
                    in.imm |= kFusedChainX;
                    in.c = -1;
                    ++internal;
                }
                if (!in.extra.empty() && in.extra[0] == in.r) {
                    in.imm |= kFusedChainY;
                    in.extra.clear();
                    ++internal;
                }
                // reads[r] counts a/b self-references too, so a pair
                // whose op1 consumes r's previous value keeps the
                // store.
                if (internal != 0 &&
                    reads[static_cast<std::size_t>(in.r)] == internal) {
                    in.r = -1;
                    ++collapsed;
                }
                break;
              }
              case Opcode::FusedCmpBranch:
              case Opcode::FusedSubviewSearch:
                // The branch decision / the search consume the result
                // in-op; with no slot readers the store is dead.
                if (in.r >= 0 &&
                    reads[static_cast<std::size_t>(in.r)] == 0) {
                    in.r = -1;
                    ++collapsed;
                }
                break;
              case Opcode::FusedCopyPair:
                // Copy a->r; Copy r->r2 with r otherwise unread is
                // plain forwarding: Copy a->r2.
                if (in.c == in.r && in.r >= 0 &&
                    reads[static_cast<std::size_t>(in.r)] == 1) {
                    in.op = Opcode::Copy;
                    in.r = in.r2;
                    in.r2 = -1;
                    in.c = -1;
                    ++collapsed;
                }
                break;
              default:
                break;
            }
        }
    }
    if (collapsed_writes)
        *collapsed_writes += collapsed;
    return fused;
}

//
// Pass 4: dead-slot elimination + frame compaction
//

int
PlanOptimizer::runDeadSlotElimination(ExecutionPlan &plan)
{
    Programs progs = {&plan.full_, &plan.setup_, &plan.query_};
    int removed = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<char> live(static_cast<std::size_t>(plan.numSlots_),
                               0);
        auto mark = [&](std::int32_t slot) {
            if (slot >= 0)
                live[static_cast<std::size_t>(slot)] = 1;
        };
        for (std::int32_t slot : plan.argSlots_)
            mark(slot);
        // Slots referenced by aux tables (dynamic slice dims, dynamic
        // k, dynamic search row ranges) are reads.
        for (const ExecutionPlan::SliceSpec &spec : plan.slices_) {
            for (const ExecutionPlan::SliceDim &dim : spec.offsets)
                mark(dim.slot);
            for (const ExecutionPlan::SliceDim &dim : spec.sizes)
                mark(dim.slot);
        }
        for (const ExecutionPlan::TopkSpec &spec : plan.topks_)
            mark(spec.kSlot);
        for (const ExecutionPlan::SimilaritySpec &spec : plan.sims_)
            mark(spec.kSlot);
        for (const ExecutionPlan::SearchSpec &spec : plan.searches_) {
            mark(spec.rowBeginSlot);
            mark(spec.rowEndSlot);
        }
        for (std::vector<Instr> *prog : progs) {
            for (const Instr &in : *prog) {
                mark(in.a);
                mark(in.b);
                mark(in.c);
                for (std::int32_t slot : in.extra)
                    mark(slot);
            }
        }
        for (std::vector<Instr> *prog : progs) {
            for (Instr &in : *prog) {
                if (!isPure(in.op) || in.r < 0)
                    continue;
                if (live[static_cast<std::size_t>(in.r)])
                    continue;
                if (in.r2 >= 0 && live[static_cast<std::size_t>(in.r2)])
                    continue;
                rewriteToNop(in);
                changed = true;
                ++removed;
            }
        }
        if (changed)
            for (std::vector<Instr> *prog : progs)
                compactNops(*prog);
    }
    return removed;
}

void
PlanOptimizer::compactFrame(ExecutionPlan &plan)
{
    Programs progs = {&plan.full_, &plan.setup_, &plan.query_};
    std::vector<std::int32_t> remap(
        static_cast<std::size_t>(plan.numSlots_), -1);
    std::int32_t next = 0;
    auto touch = [&](std::int32_t slot) {
        if (slot >= 0 && remap[static_cast<std::size_t>(slot)] < 0)
            remap[static_cast<std::size_t>(slot)] = next++;
    };
    for (std::int32_t slot : plan.argSlots_)
        touch(slot);
    for (std::vector<Instr> *prog : progs) {
        for (const Instr &in : *prog) {
            touch(in.a);
            touch(in.b);
            touch(in.c);
            touch(in.r);
            touch(in.r2);
            for (std::int32_t slot : in.extra)
                touch(slot);
        }
    }
    for (const ExecutionPlan::SliceSpec &spec : plan.slices_) {
        for (const ExecutionPlan::SliceDim &dim : spec.offsets)
            touch(dim.slot);
        for (const ExecutionPlan::SliceDim &dim : spec.sizes)
            touch(dim.slot);
    }
    for (const ExecutionPlan::TopkSpec &spec : plan.topks_)
        touch(spec.kSlot);
    for (const ExecutionPlan::SimilaritySpec &spec : plan.sims_)
        touch(spec.kSlot);
    for (const ExecutionPlan::SearchSpec &spec : plan.searches_) {
        touch(spec.rowBeginSlot);
        touch(spec.rowEndSlot);
    }

    auto fix = [&](std::int32_t &slot) {
        if (slot >= 0)
            slot = remap[static_cast<std::size_t>(slot)];
    };
    for (std::vector<Instr> *prog : progs) {
        for (Instr &in : *prog) {
            fix(in.a);
            fix(in.b);
            fix(in.c);
            fix(in.r);
            fix(in.r2);
            for (std::int32_t &slot : in.extra)
                fix(slot);
        }
    }
    for (ExecutionPlan::SliceSpec &spec : plan.slices_) {
        for (ExecutionPlan::SliceDim &dim : spec.offsets)
            fix(dim.slot);
        for (ExecutionPlan::SliceDim &dim : spec.sizes)
            fix(dim.slot);
    }
    for (ExecutionPlan::TopkSpec &spec : plan.topks_)
        fix(spec.kSlot);
    for (ExecutionPlan::SimilaritySpec &spec : plan.sims_)
        fix(spec.kSlot);
    for (ExecutionPlan::SearchSpec &spec : plan.searches_) {
        fix(spec.rowBeginSlot);
        fix(spec.rowEndSlot);
    }
    for (std::int32_t &slot : plan.argSlots_)
        fix(slot);
    plan.numSlots_ = next;
}

//
// Pipeline driver
//

std::shared_ptr<const ExecutionPlan>
PlanOptimizer::optimize(const ExecutionPlan &plan,
                        const PlanOptOptions &options,
                        PlanOptReport *report)
{
    auto out = std::make_shared<ExecutionPlan>(plan);
    PlanOptReport local;
    PlanOptReport &rep = report ? *report : local;
    rep = PlanOptReport{};
    rep.slotsBefore = plan.numSlots();
    auto snap = [&](const char *pass) {
        if (options.collectDumps)
            rep.passDumps.emplace_back(pass, disassemble(*out));
    };
    snap("input");
    if (options.constantFolding) {
        rep.foldedInstructions = runConstantFolding(*out);
        snap("constant-folding");
    }
    if (options.subviewHoisting) {
        rep.hoistedSubviews = runSubviewHoisting(*out);
        snap("subview-hoisting");
    }
    if (options.superopFusion) {
        rep.fusedSuperops = runSuperopFusion(*out, &rep.collapsedWrites);
        snap("superop-fusion");
    }
    if (options.deadSlotElimination) {
        rep.removedInstructions = runDeadSlotElimination(*out);
        compactFrame(*out);
        snap("dead-slot-elimination");
    }
    rep.slotsAfter = out->numSlots();
    return out;
}

//
// Disassembler
//

namespace {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Jump: return "Jump";
      case Opcode::BranchIfFalse: return "BranchIfFalse";
      case Opcode::BranchIfGe: return "BranchIfGe";
      case Opcode::Copy: return "Copy";
      case Opcode::CheckPosStep: return "CheckPosStep";
      case Opcode::BeginSeqScope: return "BeginSeqScope";
      case Opcode::BeginParScope: return "BeginParScope";
      case Opcode::EndScope: return "EndScope";
      case Opcode::Return: return "Return";
      case Opcode::Halt: return "Halt";
      case Opcode::ConstInt: return "ConstInt";
      case Opcode::ConstFloat: return "ConstFloat";
      case Opcode::CastToInt: return "CastToInt";
      case Opcode::CastToFloat: return "CastToFloat";
      case Opcode::Sqrt: return "Sqrt";
      case Opcode::Select: return "Select";
      case Opcode::CmpI: return "CmpI";
      case Opcode::CmpF: return "CmpF";
      case Opcode::AddI: return "AddI";
      case Opcode::SubI: return "SubI";
      case Opcode::MulI: return "MulI";
      case Opcode::DivI: return "DivI";
      case Opcode::RemI: return "RemI";
      case Opcode::MinI: return "MinI";
      case Opcode::MaxI: return "MaxI";
      case Opcode::AddF: return "AddF";
      case Opcode::SubF: return "SubF";
      case Opcode::MulF: return "MulF";
      case Opcode::DivF: return "DivF";
      case Opcode::MinF: return "MinF";
      case Opcode::MaxF: return "MaxF";
      case Opcode::AllocBuf: return "AllocBuf";
      case Opcode::CopyBuf: return "CopyBuf";
      case Opcode::Subview: return "Subview";
      case Opcode::LoadF: return "LoadF";
      case Opcode::LoadI: return "LoadI";
      case Opcode::Store: return "Store";
      case Opcode::Transpose2d: return "Transpose2d";
      case Opcode::MatmulOp: return "MatmulOp";
      case Opcode::SubBroadcastOp: return "SubBroadcastOp";
      case Opcode::DivElem: return "DivElem";
      case Opcode::DivCosine: return "DivCosine";
      case Opcode::NormOp: return "NormOp";
      case Opcode::TopkOp: return "TopkOp";
      case Opcode::SimilarityOp: return "SimilarityOp";
      case Opcode::MergePartial: return "MergePartial";
      case Opcode::CimAcquire: return "CimAcquire";
      case Opcode::CamAllocBank: return "CamAllocBank";
      case Opcode::CamAllocMat: return "CamAllocMat";
      case Opcode::CamAllocArray: return "CamAllocArray";
      case Opcode::CamAllocSubarray: return "CamAllocSubarray";
      case Opcode::CamGetSubarray: return "CamGetSubarray";
      case Opcode::CamWriteValue: return "CamWriteValue";
      case Opcode::CamSearch: return "CamSearch";
      case Opcode::CamRead: return "CamRead";
      case Opcode::CamMergePartialSub: return "CamMergePartialSub";
      case Opcode::Nop: return "Nop";
      case Opcode::FusedIntPair: return "FusedIntPair";
      case Opcode::FusedFloatPair: return "FusedFloatPair";
      case Opcode::FusedCopyPair: return "FusedCopyPair";
      case Opcode::FusedCmpBranch: return "FusedCmpBranch";
      case Opcode::FusedAddJump: return "FusedAddJump";
      case Opcode::FusedSubviewSearch: return "FusedSubviewSearch";
    }
    return "?";
}

bool
usesImm(Opcode op)
{
    switch (op) {
      case Opcode::ConstInt:
      case Opcode::CmpI:
      case Opcode::CmpF:
      case Opcode::CheckPosStep:
      case Opcode::NormOp:
      case Opcode::CamWriteValue:
      case Opcode::FusedCmpBranch:
      case Opcode::FusedSubviewSearch:
        return true;
      default:
        return false;
    }
}

void
printInstr(std::ostream &os, const Instr &in, std::size_t idx)
{
    os << "  " << std::setw(4) << idx << "  " << std::left
       << std::setw(19) << opcodeName(in.op) << std::right;
    if (in.r >= 0)
        os << " r=s" << in.r;
    if (in.r2 >= 0)
        os << " r2=s" << in.r2;
    if (in.a >= 0)
        os << " a=s" << in.a;
    if (in.b >= 0)
        os << " b=s" << in.b;
    if (in.c >= 0)
        os << " c=s" << in.c;
    if (!in.extra.empty()) {
        os << " extra=[";
        for (std::size_t k = 0; k < in.extra.size(); ++k)
            os << (k ? "," : "") << "s" << in.extra[k];
        os << "]";
    }
    if (in.target >= 0)
        os << " -> @" << in.target;
    if (in.aux >= 0)
        os << " aux=#" << in.aux;
    if (in.op == Opcode::FusedIntPair) {
        static const char *const kIntSub[] = {"AddI", "SubI", "MulI",
                                              "MinI", "MaxI"};
        os << " ops=" << kIntSub[in.imm & 0xff] << "+"
           << kIntSub[(in.imm >> 8) & 0xff];
    } else if (in.op == Opcode::FusedFloatPair) {
        static const char *const kFloatSub[] = {"AddF", "SubF", "MulF",
                                                "DivF", "MinF", "MaxF"};
        os << " ops=" << kFloatSub[in.imm & 0xff] << "+"
           << kFloatSub[(in.imm >> 8) & 0xff];
    } else if (usesImm(in.op) || in.imm != 0)
        os << " imm=" << (in.op == Opcode::FusedCmpBranch
                              ? in.imm & 0xff
                              : in.imm);
    if (in.op == Opcode::FusedIntPair || in.op == Opcode::FusedFloatPair) {
        if (in.imm & (kFusedChainX | kFusedChainY)) {
            os << " chain=";
            if (in.imm & kFusedChainX)
                os << "x";
            if (in.imm & kFusedChainY)
                os << "y";
        }
    }
    if (in.op == Opcode::ConstFloat)
        os << " fimm=" << in.fimm;
    os << "\n";
}

} // namespace

std::string
PlanOptimizer::disassemble(const ExecutionPlan &plan)
{
    std::ostringstream os;
    os << "plan '" << plan.entry_ << "': " << plan.numArgs_
       << " args, " << plan.numSlots_ << " slots"
       << (plan.phased_ ? ", phased" : "") << "\n";
    os << "arg slots: [";
    for (std::size_t i = 0; i < plan.argSlots_.size(); ++i)
        os << (i ? "," : "") << "s" << plan.argSlots_[i];
    os << "]\n";
    auto printSliceDims =
        [&os](const std::vector<ExecutionPlan::SliceDim> &dims) {
            os << "[";
            for (std::size_t k = 0; k < dims.size(); ++k) {
                os << (k ? "," : "");
                if (dims[k].slot >= 0)
                    os << "s" << dims[k].slot;
                else
                    os << dims[k].imm;
            }
            os << "]";
        };
    struct Phase
    {
        const char *name;
        const std::vector<Instr> *prog;
    };
    const Phase phases[] = {{"full", &plan.full_},
                            {"setup", &plan.setup_},
                            {"query", &plan.query_}};
    for (const Phase &phase : phases) {
        os << "phase " << phase.name << " (" << phase.prog->size()
           << " instrs):\n";
        for (std::size_t i = 0; i < phase.prog->size(); ++i)
            printInstr(os, (*phase.prog)[i], i);
    }
    if (!plan.slices_.empty()) {
        os << "slices (" << plan.slices_.size() << "):\n";
        for (std::size_t i = 0; i < plan.slices_.size(); ++i) {
            os << "  #" << i << " offsets=";
            printSliceDims(plan.slices_[i].offsets);
            os << " sizes=";
            printSliceDims(plan.slices_[i].sizes);
            os << "\n";
        }
    }
    if (!plan.topks_.empty()) {
        os << "topks (" << plan.topks_.size() << "):\n";
        for (std::size_t i = 0; i < plan.topks_.size(); ++i) {
            const ExecutionPlan::TopkSpec &spec = plan.topks_[i];
            os << "  #" << i << " k=";
            if (spec.kSlot >= 0)
                os << "s" << spec.kSlot;
            else
                os << spec.k;
            os << " largest=" << (spec.largest ? 1 : 0)
               << " postMergeCost=" << (spec.postMergeCost ? 1 : 0)
               << "\n";
        }
    }
    if (!plan.searches_.empty()) {
        os << "searches (" << plan.searches_.size() << "):\n";
        for (std::size_t i = 0; i < plan.searches_.size(); ++i) {
            const ExecutionPlan::SearchSpec &spec = plan.searches_[i];
            os << "  #" << i << " kind=" << spec.kind
               << " euclidean=" << (spec.euclidean ? 1 : 0)
               << " selective=" << (spec.selective ? 1 : 0)
               << " threshold=" << spec.threshold << " rows=[";
            if (spec.rowBeginSlot >= 0)
                os << "s" << spec.rowBeginSlot;
            else
                os << spec.rowBegin;
            os << ",";
            if (spec.rowEndSlot >= 0)
                os << "s" << spec.rowEndSlot;
            else
                os << spec.rowEnd;
            os << ")\n";
        }
    }
    return os.str();
}

} // namespace c4cam::rt
