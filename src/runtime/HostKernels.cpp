#include "runtime/HostKernels.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "support/Error.h"

namespace c4cam::rt::host {

BufferPtr
transpose2d(const BufferPtr &in)
{
    C4CAM_CHECK(in->rank() == 2, "transpose requires a rank-2 tensor");
    auto out = Buffer::alloc(in->dtype(), {in->shape()[1], in->shape()[0]});
    for (std::int64_t i = 0; i < in->shape()[0]; ++i)
        for (std::int64_t j = 0; j < in->shape()[1]; ++j)
            out->set({j, i}, in->at({i, j}));
    return out;
}

BufferPtr
matmul(const BufferPtr &a, const BufferPtr &b)
{
    C4CAM_CHECK(a->rank() == 2 && b->rank() == 2,
                "matmul requires rank-2 tensors");
    C4CAM_CHECK(a->shape()[1] == b->shape()[0],
                "matmul inner dims mismatch: " << a->shape()[1] << " vs "
                << b->shape()[0]);
    auto out = Buffer::alloc(DType::F32, {a->shape()[0], b->shape()[1]});
    for (std::int64_t i = 0; i < a->shape()[0]; ++i) {
        for (std::int64_t j = 0; j < b->shape()[1]; ++j) {
            double acc = 0.0;
            for (std::int64_t k = 0; k < a->shape()[1]; ++k)
                acc += a->at({i, k}) * b->at({k, j});
            out->set({i, j}, acc);
        }
    }
    return out;
}

namespace {

/** Row-major delinearization of @p i into @p index for @p shape. */
void
delinearize(std::int64_t i, const std::vector<std::int64_t> &shape,
            std::vector<std::int64_t> &index)
{
    std::int64_t rem = i;
    for (int d = static_cast<int>(shape.size()) - 1; d >= 0; --d) {
        index[static_cast<std::size_t>(d)] =
            rem % shape[static_cast<std::size_t>(d)];
        rem /= shape[static_cast<std::size_t>(d)];
    }
}

} // namespace

BufferPtr
subBroadcast(const BufferPtr &a, const BufferPtr &b)
{
    if (a->shape() == b->shape()) {
        auto out = Buffer::alloc(DType::F32, a->shape());
        std::vector<double> av = a->toVector();
        std::vector<double> bv = b->toVector();
        std::vector<std::int64_t> index(a->rank(), 0);
        for (std::int64_t i = 0; i < a->numElements(); ++i) {
            delinearize(i, a->shape(), index);
            out->set(index, av[static_cast<std::size_t>(i)] -
                                bv[static_cast<std::size_t>(i)]);
        }
        return out;
    }
    // KNN broadcast: (QxD) - (NxD) -> QxNxD.
    C4CAM_CHECK(a->rank() == 2 && b->rank() == 2 &&
                    a->shape()[1] == b->shape()[1],
                "sub broadcast requires QxD and NxD operands");
    std::int64_t q_count = a->shape()[0];
    std::int64_t n_count = b->shape()[0];
    std::int64_t depth = a->shape()[1];
    auto out = Buffer::alloc(DType::F32, {q_count, n_count, depth});
    for (std::int64_t q = 0; q < q_count; ++q)
        for (std::int64_t n = 0; n < n_count; ++n)
            for (std::int64_t d = 0; d < depth; ++d)
                out->set({q, n, d}, a->at({q, d}) - b->at({n, d}));
    return out;
}

BufferPtr
elementwiseDiv(const BufferPtr &a, const BufferPtr &b)
{
    C4CAM_CHECK(a->numElements() == b->numElements(),
                "elementwise div shape mismatch");
    auto out = Buffer::alloc(DType::F32, a->shape());
    std::vector<double> av = a->toVector();
    std::vector<double> bv = b->toVector();
    std::vector<std::int64_t> index(a->rank(), 0);
    for (std::int64_t i = 0; i < a->numElements(); ++i) {
        delinearize(i, a->shape(), index);
        out->set(index, av[static_cast<std::size_t>(i)] /
                            bv[static_cast<std::size_t>(i)]);
    }
    return out;
}

BufferPtr
elementwiseAdd(const BufferPtr &a, const BufferPtr &b)
{
    C4CAM_CHECK(a->numElements() == b->numElements(),
                "elementwise add size mismatch");
    auto out = Buffer::alloc(DType::F32, a->shape());
    std::vector<double> av = a->toVector();
    std::vector<double> bv = b->toVector();
    std::vector<std::int64_t> index(out->rank(), 0);
    for (std::int64_t i = 0; i < out->numElements(); ++i) {
        delinearize(i, out->shape(), index);
        out->set(index, av[static_cast<std::size_t>(i)] +
                            bv[static_cast<std::size_t>(i)]);
    }
    return out;
}

BufferPtr
cosineDiv(const BufferPtr &m, const BufferPtr &qn, const BufferPtr &sn)
{
    C4CAM_CHECK(m->rank() == 2, "cosine div requires a QxN matrix");
    auto out = Buffer::alloc(DType::F32, m->shape());
    std::vector<double> qv = qn->toVector();
    std::vector<double> sv = sn->toVector();
    for (std::int64_t q = 0; q < m->shape()[0]; ++q)
        for (std::int64_t n = 0; n < m->shape()[1]; ++n)
            out->set({q, n},
                     m->at({q, n}) /
                         (qv[static_cast<std::size_t>(q)] *
                          sv[static_cast<std::size_t>(n)] + 1e-12));
    return out;
}

BufferPtr
normLastDim(const BufferPtr &in, int p)
{
    C4CAM_CHECK(in->rank() >= 1, "norm requires rank >= 1");
    std::vector<std::int64_t> out_shape(in->shape().begin(),
                                        in->shape().end() - 1);
    if (out_shape.empty())
        out_shape.push_back(1);
    auto out = Buffer::alloc(DType::F32, out_shape);
    std::int64_t inner = in->shape().back();
    std::int64_t outer = in->numElements() / std::max<std::int64_t>(inner, 1);
    std::vector<double> flat = in->toVector();
    std::vector<std::int64_t> index(out->rank(), 0);
    for (std::int64_t o = 0; o < outer; ++o) {
        double acc = 0.0;
        for (std::int64_t i = 0; i < inner; ++i) {
            double v = flat[static_cast<std::size_t>(o * inner + i)];
            acc += p == 1 ? std::abs(v) : v * v;
        }
        double result = p == 1 ? acc : std::sqrt(acc);
        delinearize(o, out->shape(), index);
        out->set(index, result);
    }
    return out;
}

void
copyInto(const BufferPtr &src, const BufferPtr &dst, const char *what)
{
    C4CAM_CHECK(src->numElements() == dst->numElements(),
                what << " size mismatch: " << src->numElements() << " vs "
                << dst->numElements());
    dst->copyFromFlat(src->toVector());
}

void
addInto(const BufferPtr &acc, const BufferPtr &partial, const char *what)
{
    C4CAM_CHECK(acc->numElements() == partial->numElements(),
                what << " size mismatch: " << acc->numElements() << " vs "
                << partial->numElements());
    acc->addFromFlat(partial->toVector());
}

std::pair<BufferPtr, BufferPtr>
topk(const BufferPtr &in, std::int64_t k, bool largest)
{
    C4CAM_CHECK(k >= 1, "topk requires k >= 1");
    std::int64_t inner = in->rank() >= 1 ? in->shape().back() : 1;
    C4CAM_CHECK(k <= inner, "topk k=" << k << " exceeds dimension size "
                << inner);
    std::int64_t outer = in->numElements() / std::max<std::int64_t>(inner, 1);

    std::vector<std::int64_t> out_shape(in->shape().begin(),
                                        in->shape().end() - 1);
    out_shape.push_back(k);
    auto values = Buffer::alloc(DType::F32, out_shape);
    auto indices = Buffer::alloc(DType::I64, out_shape);

    std::vector<double> flat = in->toVector();
    std::vector<std::int64_t> order(static_cast<std::size_t>(inner));
    std::vector<std::int64_t> index(out_shape.size(), 0);
    for (std::int64_t o = 0; o < outer; ++o) {
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::int64_t a, std::int64_t b) {
                             double va = flat[static_cast<std::size_t>(
                                 o * inner + a)];
                             double vb = flat[static_cast<std::size_t>(
                                 o * inner + b)];
                             return largest ? va > vb : va < vb;
                         });
        for (std::int64_t j = 0; j < k; ++j) {
            std::int64_t rem = o;
            for (int d = static_cast<int>(out_shape.size()) - 2; d >= 0;
                 --d) {
                index[static_cast<std::size_t>(d)] =
                    rem % out_shape[static_cast<std::size_t>(d)];
                rem /= out_shape[static_cast<std::size_t>(d)];
            }
            index.back() = j;
            values->set(index, flat[static_cast<std::size_t>(
                                   o * inner + order[static_cast<
                                       std::size_t>(j)])]);
            indices->setInt(index, order[static_cast<std::size_t>(j)]);
        }
    }
    return {values, indices};
}

BufferPtr
offsetIndices(const BufferPtr &in, std::int64_t offset)
{
    auto out = Buffer::alloc(DType::I64, in->shape());
    std::vector<double> flat = in->toVector();
    for (double &v : flat)
        v += static_cast<double>(offset);
    out->copyFromFlat(flat);
    return out;
}

} // namespace c4cam::rt::host
