#ifndef C4CAM_RUNTIME_INTERPRETER_H
#define C4CAM_RUNTIME_INTERPRETER_H

/**
 * @file
 * Reference executor for C4CAM IR at every abstraction level.
 *
 * - torch/cim tensor ops run on the host (functional reference, used for
 *   validation -- this doubles as the paper's "lower to loops" path);
 * - scf/arith/memref ops implement the lowered control structure;
 * - cam ops dispatch into the CamDevice simulator, which accounts
 *   latency/energy through scope-based timing driven by the loop
 *   structure (scf.parallel opens a parallel scope, scf.for a
 *   sequential one).
 */

#include <map>
#include <string>
#include <vector>

#include "ir/IR.h"
#include "runtime/Buffer.h"
#include "sim/CamDevice.h"

namespace c4cam::rt {

/**
 * Interprets one module; optionally attached to a CAM simulator.
 */
class Interpreter
{
  public:
    /**
     * Which portion of a phase-annotated function to execute. The
     * cam-map pass tags top-level ops with a "phase" attribute
     * (see dialects::cam::kPhaseAttr); untagged ops belong to both
     * phases. Interpreter state (the SSA environment) persists across
     * calls, which is what makes Setup-then-repeated-Query execution
     * on one Interpreter instance work: the query body re-reads the
     * device handles and memrefs the setup prologue evaluated.
     */
    enum class ExecPhase {
        Full,      ///< run everything (the classic single-shot path)
        SetupOnly, ///< run the setup prologue, skip the query body
        QueryOnly, ///< re-enter the query body, skip the setup prologue
    };

    /**
     * @param module  the IR to execute (any pipeline stage)
     * @param device  CAM simulator backing cam.* ops; may be nullptr
     *                when the module contains no cam ops.
     */
    explicit Interpreter(ir::Module &module,
                         sim::CamDevice *device = nullptr);

    /**
     * Execute function @p name with @p args (one RtValue per entry-block
     * argument). @return the values of func.return (empty for
     * ExecPhase::SetupOnly, which stops before the query body).
     */
    std::vector<RtValue> callFunction(const std::string &name,
                                      const std::vector<RtValue> &args,
                                      ExecPhase phase = ExecPhase::Full);

    /**
     * Whether @p func carries the cam-map phase annotations required
     * for SetupOnly/QueryOnly execution (i.e. at least one top-level
     * op is tagged phase="query").
     */
    static bool hasPhaseMarkers(ir::Operation *func);

    sim::CamDevice *device() const { return device_; }

  private:
    RtValue get(ir::Value *value) const;
    void set(ir::Value *value, RtValue rt_value);

    /**
     * Run all ops of @p block. @return the operands of the terminator
     * (func.return / scf.yield / cim.yield) or empty.
     */
    std::vector<RtValue> runBlock(ir::Block &block);

    /**
     * Run the top-level ops of @p block restricted to @p phase
     * (Full applies no filtering; runBlock delegates here).
     * SetupOnly skips query-tagged ops (and any op whose operands are
     * not evaluated yet because they depend on query results);
     * QueryOnly skips setup-tagged ops, relying on their results still
     * being present in the environment from a prior SetupOnly run.
     */
    std::vector<RtValue> runTopLevel(ir::Block &block, ExecPhase phase);

    /** True when every operand of @p op has a value in the env. */
    bool operandsReady(ir::Operation *op) const;

    void runOp(ir::Operation *op);

    /// @name Dialect-specific handlers
    /// @{
    void runArith(ir::Operation *op);
    void runScf(ir::Operation *op);
    void runMemRef(ir::Operation *op);
    void runTensorOp(ir::Operation *op);
    void runTorch(ir::Operation *op);
    void runCim(ir::Operation *op);
    void runCam(ir::Operation *op);
    /// @}

    /// @name Host tensor kernels shared by torch and cim handlers
    /// @{
    BufferPtr transpose2d(const BufferPtr &in);
    BufferPtr matmul(const BufferPtr &a, const BufferPtr &b);
    BufferPtr subBroadcast(const BufferPtr &a, const BufferPtr &b);
    BufferPtr normLastDim(const BufferPtr &in, int p);
    /** Top-k along the last dim. @return {values, indices}. */
    std::pair<BufferPtr, BufferPtr> topk(const BufferPtr &in,
                                         std::int64_t k, bool largest);
    /// @}

    /** Resolve static+dynamic offset/size lists of slicing ops. */
    void resolveSlice(ir::Operation *op,
                      std::vector<std::int64_t> &offsets,
                      std::vector<std::int64_t> &sizes);

    ir::Module &module_;
    sim::CamDevice *device_;
    std::map<ir::Value *, RtValue> env_;
    std::int64_t nextCimHandle_ = 1;
};

} // namespace c4cam::rt

#endif // C4CAM_RUNTIME_INTERPRETER_H
