#ifndef C4CAM_RUNTIME_INTERPRETER_H
#define C4CAM_RUNTIME_INTERPRETER_H

/**
 * @file
 * Reference executor for C4CAM IR at every abstraction level.
 *
 * - torch/cim tensor ops run on the host (functional reference, used for
 *   validation -- this doubles as the paper's "lower to loops" path);
 * - scf/arith/memref ops implement the lowered control structure;
 * - cam ops dispatch into the CamDevice simulator, which accounts
 *   latency/energy through scope-based timing driven by the loop
 *   structure (scf.parallel opens a parallel scope, scf.for a
 *   sequential one).
 *
 * Threading model: the Interpreter itself is an immutable view over
 * one lowered module. All per-execution mutable state (the SSA
 * environment, cim handle counter, attached device) lives in an
 * explicit ExecutionState, so one Interpreter can serve many threads
 * concurrently as long as each thread brings its own ExecutionState
 * (and its own CamDevice replica -- devices are single-threaded).
 */

#include <map>
#include <string>
#include <vector>

#include "ir/IR.h"
#include "runtime/Buffer.h"
#include "sim/CamDevice.h"

namespace c4cam::rt {

/**
 * All mutable state of one kernel execution: the SSA environment, the
 * cim-handle counter and the device the cam ops dispatch into.
 *
 * Separating this from the Interpreter is what makes concurrent
 * serving possible: the module (and the Interpreter over it) is shared
 * read-only across threads while every in-flight execution owns one
 * ExecutionState. A persistent session keeps one state alive across
 * queries (the query body re-reads the device handles the setup
 * prologue evaluated); a serving engine forks one state per device
 * replica after setup.
 */
class ExecutionState
{
  public:
    explicit ExecutionState(sim::CamDevice *device = nullptr)
        : device_(device)
    {}

    /** Device backing cam.* ops; may be nullptr for host-only IR. */
    sim::CamDevice *device() const { return device_; }

    /**
     * Replicate this (post-setup) state for another device replica.
     * The SSA environment is copied shallowly: setup-phase results are
     * immutable once programmed (the query body only allocates fresh
     * buffers), so replicas may safely share them. Device handles are
     * plain integers and stay valid on @p device when it is a
     * CamDevice::cloneProgrammed() copy of this state's device (clones
     * preserve handle numbering).
     */
    ExecutionState forkForReplica(sim::CamDevice *device) const;

    /// @name Environment access (used by the interpreter)
    /// @{
    bool has(ir::Value *value) const
    {
        return env_.find(value) != env_.end();
    }

    RtValue get(ir::Value *value) const;
    void set(ir::Value *value, RtValue rt_value);

    /** Allocate the next cim.acquire handle. */
    std::int64_t takeCimHandle() { return nextCimHandle_++; }
    /// @}

  private:
    sim::CamDevice *device_ = nullptr;
    std::map<ir::Value *, RtValue> env_;
    std::int64_t nextCimHandle_ = 1;
};

/**
 * Interprets one module. The instance is stateless apart from its
 * built-in default ExecutionState (used by the legacy single-threaded
 * entry points); the explicit-state callFunction overload is const and
 * safe to call from many threads concurrently.
 */
class Interpreter
{
  public:
    /**
     * Which portion of a phase-annotated function to execute. The
     * cam-map pass tags top-level ops with a "phase" attribute
     * (see dialects::cam::kPhaseAttr); untagged ops belong to both
     * phases. The ExecutionState persists across calls, which is what
     * makes Setup-then-repeated-Query execution work: the query body
     * re-reads the device handles and memrefs the setup prologue
     * evaluated.
     */
    enum class ExecPhase {
        Full,      ///< run everything (the classic single-shot path)
        SetupOnly, ///< run the setup prologue, skip the query body
        QueryOnly, ///< re-enter the query body, skip the setup prologue
    };

    /**
     * @param module  the IR to execute (any pipeline stage)
     * @param device  CAM simulator backing cam.* ops of the *default*
     *                state; may be nullptr when the module contains no
     *                cam ops.
     */
    explicit Interpreter(ir::Module &module,
                         sim::CamDevice *device = nullptr);

    /**
     * Execute function @p name with @p args (one RtValue per entry-block
     * argument) on the built-in default state. @return the values of
     * func.return (empty for ExecPhase::SetupOnly, which stops before
     * the query body).
     */
    std::vector<RtValue> callFunction(const std::string &name,
                                      const std::vector<RtValue> &args,
                                      ExecPhase phase = ExecPhase::Full);

    /**
     * Execute function @p name with @p args on an explicit @p state.
     * Const and re-entrant: concurrent calls are safe provided each
     * thread passes a distinct ExecutionState (attached to a distinct
     * CamDevice, if any). The module is only read.
     */
    std::vector<RtValue> callFunction(ExecutionState &state,
                                      const std::string &name,
                                      const std::vector<RtValue> &args,
                                      ExecPhase phase = ExecPhase::Full)
        const;

    /**
     * Whether @p func carries the cam-map phase annotations required
     * for SetupOnly/QueryOnly execution (i.e. at least one top-level
     * op is tagged phase="query").
     */
    static bool hasPhaseMarkers(ir::Operation *func);

    sim::CamDevice *device() const { return state_.device(); }

    /** The built-in default state (the legacy single-threaded path). */
    ExecutionState &state() { return state_; }
    const ExecutionState &state() const { return state_; }

  private:
    ir::Module &module_;
    ExecutionState state_;
};

} // namespace c4cam::rt

#endif // C4CAM_RUNTIME_INTERPRETER_H
